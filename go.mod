module branchlab

go 1.24
