package branchlab_test

import (
	"bytes"
	"testing"

	"branchlab"
)

// TestFacadeEndToEnd exercises the public API the way the quickstart
// example does: workload -> predictor -> screening -> IPC.
func TestFacadeEndToEnd(t *testing.T) {
	spec, ok := branchlab.Workload("605.mcf_s")
	if !ok {
		t.Fatal("workload missing")
	}
	const budget = 300_000
	tr := branchlab.RecordTrace(spec, 0, budget)
	if tr.Len() != budget {
		t.Fatalf("trace length %d", tr.Len())
	}

	pred := branchlab.NewTAGESCL(8)
	col := branchlab.NewCollector(budget / 2)
	stats := branchlab.Run(tr.Stream(), pred, col)
	if stats.Insts != budget {
		t.Errorf("Insts = %d", stats.Insts)
	}
	if acc := stats.Accuracy(); acc < 0.8 || acc > 0.99 {
		t.Errorf("mcf-like accuracy = %v, outside plausible band", acc)
	}

	rep := branchlab.ScreenH2Ps(col, budget/2)
	if len(rep.Set()) == 0 {
		t.Error("no H2Ps screened on mcf-like workload")
	}

	res := branchlab.SimulateIPC(tr.Stream(), branchlab.SkylakeConfig(),
		branchlab.PipelineOptions{Predictor: branchlab.NewTAGESCL(8)})
	perfect := branchlab.SimulateIPC(tr.Stream(), branchlab.SkylakeConfig(),
		branchlab.PipelineOptions{PerfectBP: true})
	if !(res.IPC > 0 && res.IPC < perfect.IPC) {
		t.Errorf("IPC ordering: predicted %v vs perfect %v", res.IPC, perfect.IPC)
	}
}

func TestFacadePredictorRegistry(t *testing.T) {
	if len(branchlab.PredictorNames()) < 8 {
		t.Error("predictor registry too small")
	}
	p, err := branchlab.NewPredictor("gshare")
	if err != nil || p == nil {
		t.Fatalf("NewPredictor(gshare): %v", err)
	}
	if _, err := branchlab.NewPredictor("bogus"); err == nil {
		t.Error("bogus predictor accepted")
	}
}

func TestFacadeSuites(t *testing.T) {
	if len(branchlab.SPECint2017Like()) != 9 || len(branchlab.LCFLike()) != 6 {
		t.Error("suite sizes wrong")
	}
	if len(branchlab.Experiments()) != 16 {
		t.Errorf("experiment registry has %d entries, want 16", len(branchlab.Experiments()))
	}
}

func TestFacadePhases(t *testing.T) {
	spec, _ := branchlab.Workload("620.omnetpp_s")
	s := spec.Stream(0, 400_000)
	defer branchlab.CloseStream(s)
	k := branchlab.CountPhases(s, 50_000, 16)
	if k < 2 {
		t.Errorf("phases = %d, want >= 2 for a phased workload", k)
	}
}

func TestFacadeHelperSaveLoad(t *testing.T) {
	spec, _ := branchlab.Workload("605.mcf_s")
	cfg := branchlab.DefaultHelperConfig()
	cfg.Epochs = 2
	tr := branchlab.RecordTrace(spec, 0, 200_000)

	col := branchlab.NewCollector(100_000)
	branchlab.Run(tr.Stream(), branchlab.NewTAGESCL(8), col)
	hh := branchlab.ScreenH2Ps(col, 100_000).HeavyHitters()
	if len(hh) == 0 {
		t.Skip("no H2P at this budget")
	}
	m := branchlab.TrainHelper(cfg, hh[0].IP, tr)
	var buf bytes.Buffer
	if err := branchlab.SaveHelper(&buf, m); err != nil {
		t.Fatalf("SaveHelper: %v", err)
	}
	loaded, err := branchlab.LoadHelper(&buf)
	if err != nil {
		t.Fatalf("LoadHelper: %v", err)
	}
	if !loaded.Quantized() {
		t.Error("loaded helper not quantized")
	}
}
