// Package core is the paper's measurement framework: it drives traces
// through predictors, collects per-slice per-branch statistics, screens
// for systematically hard-to-predict (H2P) branches with the paper's
// criteria, ranks heavy hitters, and aggregates H2P appearance across
// application inputs — the machinery behind Tables I and II and Figs 2-4.
package core

import (
	"sort"

	"branchlab/internal/bp"
	"branchlab/internal/trace"
)

// BranchStats are execution/misprediction counters for one static branch.
type BranchStats struct {
	Execs    uint64
	Mispreds uint64
}

// Accuracy returns 1 - mispredictions/executions (1 when never executed).
func (b BranchStats) Accuracy() float64 {
	if b.Execs == 0 {
		return 1
	}
	return 1 - float64(b.Mispreds)/float64(b.Execs)
}

// SliceStats aggregates one fixed-length instruction slice, the unit of
// the paper's methodology (30M instructions there, scaled here).
type SliceStats struct {
	Index     int
	Insts     uint64
	CondExecs uint64
	Mispreds  uint64
	PerBranch map[uint64]*BranchStats
}

// Accuracy returns the slice's overall conditional accuracy.
func (s *SliceStats) Accuracy() float64 {
	if s.CondExecs == 0 {
		return 1
	}
	return 1 - float64(s.Mispreds)/float64(s.CondExecs)
}

// Observer receives per-instruction callbacks during a measurement run.
// Implementations include the Collector and the analysis substrates
// (dependency graphs, recurrence tracking, BBV collection).
type Observer interface {
	// Inst is called for every instruction with its global index.
	Inst(i uint64, inst *trace.Inst)
	// Branch is called for every conditional branch after prediction.
	Branch(i uint64, inst *trace.Inst, pred bool)
}

// Collector splits a run into slices and accumulates per-branch counters.
type Collector struct {
	SliceLen uint64
	Slices   []*SliceStats
	cur      *SliceStats
}

// NewCollector returns a Collector with the given slice length.
func NewCollector(sliceLen uint64) *Collector {
	if sliceLen == 0 {
		panic("core: zero slice length")
	}
	return &Collector{SliceLen: sliceLen}
}

// Inst implements Observer.
func (c *Collector) Inst(i uint64, inst *trace.Inst) {
	if c.cur == nil || i/c.SliceLen != uint64(c.cur.Index) {
		c.cur = &SliceStats{
			Index:     int(i / c.SliceLen),
			PerBranch: make(map[uint64]*BranchStats),
		}
		c.Slices = append(c.Slices, c.cur)
	}
	c.cur.Insts++
}

// Branch implements Observer.
func (c *Collector) Branch(i uint64, inst *trace.Inst, pred bool) {
	s := c.cur
	if s == nil {
		return
	}
	s.CondExecs++
	b := s.PerBranch[inst.IP]
	if b == nil {
		b = &BranchStats{}
		s.PerBranch[inst.IP] = b
	}
	b.Execs++
	if pred != inst.Taken {
		s.Mispreds++
		b.Mispreds++
	}
}

// Totals sums per-branch counters over all slices.
func (c *Collector) Totals() map[uint64]*BranchStats {
	out := make(map[uint64]*BranchStats)
	for _, s := range c.Slices {
		for ip, b := range s.PerBranch {
			t := out[ip]
			if t == nil {
				t = &BranchStats{}
				out[ip] = t
			}
			t.Execs += b.Execs
			t.Mispreds += b.Mispreds
		}
	}
	return out
}

// Accuracy returns overall conditional accuracy across all slices.
func (c *Collector) Accuracy() float64 {
	var execs, miss uint64
	for _, s := range c.Slices {
		execs += s.CondExecs
		miss += s.Mispreds
	}
	if execs == 0 {
		return 1
	}
	return 1 - float64(miss)/float64(execs)
}

// AccuracyExcluding returns conditional accuracy ignoring the given IPs,
// Table I's "Avg. Acc. excl. H2Ps" column.
func (c *Collector) AccuracyExcluding(exclude map[uint64]bool) float64 {
	var execs, miss uint64
	for _, s := range c.Slices {
		for ip, b := range s.PerBranch {
			if exclude[ip] {
				continue
			}
			execs += b.Execs
			miss += b.Mispreds
		}
	}
	if execs == 0 {
		return 1
	}
	return 1 - float64(miss)/float64(execs)
}

// StaticBranches returns the number of distinct conditional-branch IPs
// observed over the whole run.
func (c *Collector) StaticBranches() int { return len(c.Totals()) }

// MedianStaticPerSlice returns the median count of distinct branch IPs
// per slice (Table I "Median per Slice").
func (c *Collector) MedianStaticPerSlice() int {
	if len(c.Slices) == 0 {
		return 0
	}
	counts := make([]int, len(c.Slices))
	for i, s := range c.Slices {
		counts[i] = len(s.PerBranch)
	}
	sort.Ints(counts)
	return counts[len(counts)/2]
}

// RunStats summarizes a measurement pass.
type RunStats struct {
	Insts     uint64
	CondExecs uint64
	Mispreds  uint64
}

// Accuracy returns overall conditional accuracy.
func (r RunStats) Accuracy() float64 {
	if r.CondExecs == 0 {
		return 1
	}
	return 1 - float64(r.Mispreds)/float64(r.CondExecs)
}

// MPKI returns mispredictions per thousand instructions.
func (r RunStats) MPKI() float64 {
	if r.Insts == 0 {
		return 0
	}
	return 1000 * float64(r.Mispreds) / float64(r.Insts)
}

// targetTrainer is the optional predictor extension trained with the
// branch target as well as the direction (TAGE-SC-L's IMLI component
// keys on it). Run resolves the assertion once per run, not once per
// branch: this is the simulator's innermost loop.
type targetTrainer interface {
	TrainWithTarget(ip, target uint64, taken, pred bool)
}

// Run drives the stream through the predictor (the CBP-style measurement
// loop: predict at fetch, train at retire, observe all control flow) and
// fans events out to the observers. Runs with no observers — the
// pure-MPKI sweeps — take a specialized loop with no fan-out work.
func Run(s trace.Stream, p bp.Predictor, obs ...Observer) RunStats {
	tt, _ := p.(targetTrainer)
	bo, _ := p.(bp.BranchObserver)
	if len(obs) == 0 {
		return runNoObservers(s, p, tt, bo)
	}
	var st RunStats
	var inst trace.Inst
	var i uint64
	for s.Next(&inst) {
		for _, o := range obs {
			o.Inst(i, &inst)
		}
		if inst.Kind == trace.KindCondBr {
			st.CondExecs++
			pred := p.Predict(inst.IP)
			if pred != inst.Taken {
				st.Mispreds++
			}
			if tt != nil {
				tt.TrainWithTarget(inst.IP, inst.Target, inst.Taken, pred)
			} else {
				p.Train(inst.IP, inst.Taken, pred)
			}
			for _, o := range obs {
				o.Branch(i, &inst, pred)
			}
		} else if inst.Kind.IsBranch() {
			if bo != nil {
				bo.ObserveBranch(inst.IP, inst.Target, inst.Kind, inst.Taken)
			}
		}
		i++
	}
	st.Insts = i
	return st
}

// Observe replays a stream through observers with no predictor at all.
// The analysis substrates (dependency graphs, recurrence tracking, BBV
// collection, register-value tracking, CNN history collection) consume
// only trace-visible signals — their Branch callbacks ignore the
// prediction — so analysis passes that used to drag a predictor through
// the trace for nothing skip prediction work entirely. Branch callbacks
// receive the resolved direction as the prediction (never counted as a
// misprediction).
func Observe(s trace.Stream, obs ...Observer) RunStats {
	var st RunStats
	var inst trace.Inst
	var i uint64
	for s.Next(&inst) {
		for _, o := range obs {
			o.Inst(i, &inst)
		}
		if inst.Kind == trace.KindCondBr {
			st.CondExecs++
			for _, o := range obs {
				o.Branch(i, &inst, inst.Taken)
			}
		}
		i++
	}
	st.Insts = i
	return st
}

// runNoObservers is Run's fast path for pure-MPKI measurement: identical
// prediction/training semantics, no observer fan-out in the loop body.
func runNoObservers(s trace.Stream, p bp.Predictor, tt targetTrainer, bo bp.BranchObserver) RunStats {
	var st RunStats
	var inst trace.Inst
	var i uint64
	for s.Next(&inst) {
		if inst.Kind == trace.KindCondBr {
			st.CondExecs++
			pred := p.Predict(inst.IP)
			if pred != inst.Taken {
				st.Mispreds++
			}
			if tt != nil {
				tt.TrainWithTarget(inst.IP, inst.Target, inst.Taken, pred)
			} else {
				p.Train(inst.IP, inst.Taken, pred)
			}
		} else if inst.Kind.IsBranch() {
			if bo != nil {
				bo.ObserveBranch(inst.IP, inst.Target, inst.Kind, inst.Taken)
			}
		}
		i++
	}
	st.Insts = i
	return st
}
