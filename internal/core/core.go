// Package core is the paper's measurement framework: it drives traces
// through predictors, collects per-slice per-branch statistics, screens
// for systematically hard-to-predict (H2P) branches with the paper's
// criteria, ranks heavy hitters, and aggregates H2P appearance across
// application inputs — the machinery behind Tables I and II and Figs 2-4.
package core

import (
	"sort"

	"branchlab/internal/bp"
	"branchlab/internal/trace"
)

// BranchStats are execution/misprediction counters for one static branch.
type BranchStats struct {
	Execs    uint64
	Mispreds uint64
}

// Accuracy returns 1 - mispredictions/executions (1 when never executed).
func (b BranchStats) Accuracy() float64 {
	if b.Execs == 0 {
		return 1
	}
	return 1 - float64(b.Mispreds)/float64(b.Execs)
}

// SliceStats aggregates one fixed-length instruction slice, the unit of
// the paper's methodology (30M instructions there, scaled here).
type SliceStats struct {
	Index     int
	Insts     uint64
	CondExecs uint64
	Mispreds  uint64
	PerBranch map[uint64]*BranchStats
}

// Accuracy returns the slice's overall conditional accuracy.
func (s *SliceStats) Accuracy() float64 {
	if s.CondExecs == 0 {
		return 1
	}
	return 1 - float64(s.Mispreds)/float64(s.CondExecs)
}

// Observer receives per-instruction callbacks during a measurement run.
// Implementations include the Collector and the analysis substrates
// (dependency graphs, recurrence tracking, BBV collection).
//
// Observers must treat *inst as read-only: the measurement loops
// iterate trace blocks in place, so the pointer aliases shared backing
// storage (a cached trace buffer) and a mutation would corrupt every
// later replay of the same trace.
type Observer interface {
	// Inst is called for every instruction with its global index.
	Inst(i uint64, inst *trace.Inst)
	// Branch is called for every conditional branch after prediction.
	Branch(i uint64, inst *trace.Inst, pred bool)
}

// Collector splits a run into slices and accumulates per-branch counters.
type Collector struct {
	SliceLen uint64
	Slices   []*SliceStats
	cur      *SliceStats
	// end is the first instruction index past cur's slice; comparing
	// against it replaces a per-instruction division in Inst.
	end uint64 //lint:ignore mergecomplete cursor cache: Merge nils cur, forcing the next Inst to re-resolve the slice and rewrite end
}

// NewCollector returns a Collector with the given slice length.
func NewCollector(sliceLen uint64) *Collector {
	if sliceLen == 0 {
		panic("core: zero slice length")
	}
	return &Collector{SliceLen: sliceLen}
}

// Inst implements Observer.
func (c *Collector) Inst(i uint64, inst *trace.Inst) {
	if c.cur == nil || i >= c.end || i < c.end-c.SliceLen {
		c.setSlice(i / c.SliceLen)
	}
	c.cur.Insts++
}

// setSlice makes the slice with the given index current: the last
// slice (the sequential append case), an existing entry (continuing a
// collector after Merge), or a new entry inserted in sorted position.
func (c *Collector) setSlice(idx uint64) {
	n := len(c.Slices)
	pos := n
	if n > 0 && uint64(c.Slices[n-1].Index) >= idx {
		pos = sort.Search(n, func(k int) bool { return uint64(c.Slices[k].Index) >= idx })
	}
	if pos < n && uint64(c.Slices[pos].Index) == idx {
		c.cur = c.Slices[pos]
	} else {
		c.cur = &SliceStats{
			Index:     int(idx),
			PerBranch: make(map[uint64]*BranchStats),
		}
		c.Slices = append(c.Slices, nil)
		copy(c.Slices[pos+1:], c.Slices[pos:])
		c.Slices[pos] = c.cur
	}
	c.end = (idx + 1) * c.SliceLen
}

// Branch implements Observer.
func (c *Collector) Branch(i uint64, inst *trace.Inst, pred bool) {
	s := c.cur
	if s == nil {
		return
	}
	s.CondExecs++
	b := s.PerBranch[inst.IP]
	if b == nil {
		b = &BranchStats{}
		s.PerBranch[inst.IP] = b
	}
	b.Execs++
	if pred != inst.Taken {
		s.Mispreds++
		b.Mispreds++
	}
}

// Merge folds other's slices into c, combining slices that share an
// index by summing their counters. Both collectors must have been fed
// global instruction indices (core.ObserveFrom for shard replays) and
// use the same slice length.
//
// Merging is exact: per-slice counters are order-independent sums, so
// splitting one trace across workers at any boundaries and merging the
// shard collectors in any grouping yields byte-identical statistics to
// a single sequential pass. other must not be used afterwards (its
// per-branch maps are adopted, not copied).
func (c *Collector) Merge(other *Collector) {
	if other.SliceLen != c.SliceLen {
		panic("core: merging collectors with different slice lengths")
	}
	merged := make([]*SliceStats, 0, len(c.Slices)+len(other.Slices))
	i, j := 0, 0
	for i < len(c.Slices) || j < len(other.Slices) {
		switch {
		case j >= len(other.Slices) || (i < len(c.Slices) && c.Slices[i].Index < other.Slices[j].Index):
			merged = append(merged, c.Slices[i])
			i++
		case i >= len(c.Slices) || other.Slices[j].Index < c.Slices[i].Index:
			merged = append(merged, other.Slices[j])
			j++
		default: // same slice index observed by both shards
			a, b := c.Slices[i], other.Slices[j]
			a.Insts += b.Insts
			a.CondExecs += b.CondExecs
			a.Mispreds += b.Mispreds
			for ip, bb := range b.PerBranch {
				t := a.PerBranch[ip]
				if t == nil {
					a.PerBranch[ip] = bb
					continue
				}
				t.Execs += bb.Execs
				t.Mispreds += bb.Mispreds
			}
			merged = append(merged, a)
			i++
			j++
		}
	}
	c.Slices = merged
	// Invalidate the append cursor: the next Inst re-resolves its slice
	// (reusing the merged entry if its index is already present).
	c.cur = nil
}

// Totals sums per-branch counters over all slices.
func (c *Collector) Totals() map[uint64]*BranchStats {
	out := make(map[uint64]*BranchStats)
	for _, s := range c.Slices {
		for ip, b := range s.PerBranch {
			t := out[ip]
			if t == nil {
				t = &BranchStats{}
				out[ip] = t
			}
			t.Execs += b.Execs
			t.Mispreds += b.Mispreds
		}
	}
	return out
}

// Accuracy returns overall conditional accuracy across all slices.
func (c *Collector) Accuracy() float64 {
	var execs, miss uint64
	for _, s := range c.Slices {
		execs += s.CondExecs
		miss += s.Mispreds
	}
	if execs == 0 {
		return 1
	}
	return 1 - float64(miss)/float64(execs)
}

// AccuracyExcluding returns conditional accuracy ignoring the given IPs,
// Table I's "Avg. Acc. excl. H2Ps" column.
func (c *Collector) AccuracyExcluding(exclude map[uint64]bool) float64 {
	var execs, miss uint64
	for _, s := range c.Slices {
		for ip, b := range s.PerBranch {
			if exclude[ip] {
				continue
			}
			execs += b.Execs
			miss += b.Mispreds
		}
	}
	if execs == 0 {
		return 1
	}
	return 1 - float64(miss)/float64(execs)
}

// StaticBranches returns the number of distinct conditional-branch IPs
// observed over the whole run.
func (c *Collector) StaticBranches() int { return len(c.Totals()) }

// MedianStaticPerSlice returns the median count of distinct branch IPs
// per slice (Table I "Median per Slice").
func (c *Collector) MedianStaticPerSlice() int {
	if len(c.Slices) == 0 {
		return 0
	}
	counts := make([]int, len(c.Slices))
	for i, s := range c.Slices {
		counts[i] = len(s.PerBranch)
	}
	sort.Ints(counts)
	return counts[len(counts)/2]
}

// RunStats summarizes a measurement pass.
type RunStats struct {
	Insts     uint64
	CondExecs uint64
	Mispreds  uint64
}

// Accuracy returns overall conditional accuracy.
func (r RunStats) Accuracy() float64 {
	if r.CondExecs == 0 {
		return 1
	}
	return 1 - float64(r.Mispreds)/float64(r.CondExecs)
}

// MPKI returns mispredictions per thousand instructions.
func (r RunStats) MPKI() float64 {
	if r.Insts == 0 {
		return 0
	}
	return 1000 * float64(r.Mispreds) / float64(r.Insts)
}

// targetTrainer is the optional predictor extension trained with the
// branch target as well as the direction (TAGE-SC-L's IMLI component
// keys on it). Run resolves the assertion once per run, not once per
// branch: this is the simulator's innermost loop.
type targetTrainer interface {
	TrainWithTarget(ip, target uint64, taken, pred bool)
}

// Run drives the stream through the predictor (the CBP-style measurement
// loop: predict at fetch, train at retire, observe all control flow) and
// fans events out to the observers. The loop iterates the trace in
// blocks (zero-copy when the stream serves them natively, e.g. any
// Buffer replay), so the per-instruction cost is the predictor and the
// observers, not stream dispatch. Runs with no observers — the
// pure-MPKI sweeps — take a specialized loop with no fan-out work.
func Run(s trace.Stream, p bp.Predictor, obs ...Observer) RunStats {
	return RunBlocks(trace.AsBlocks(s, trace.DefaultBlockLen), p, obs...)
}

// RunBlocks is Run over an explicit block stream. Callers that already
// hold a BlockStream (or need to control the block size, e.g. the
// equivalence tests) use it directly; Run is RunBlocks over AsBlocks.
func RunBlocks(bs trace.BlockStream, p bp.Predictor, obs ...Observer) RunStats {
	tt, _ := p.(targetTrainer)
	bo, _ := p.(bp.BranchObserver)
	if len(obs) == 0 {
		return runNoObservers(bs, p, tt, bo)
	}
	var st RunStats
	var i uint64
	for blk := bs.NextBlock(); len(blk) > 0; blk = bs.NextBlock() {
		for j := range blk {
			inst := &blk[j]
			for _, o := range obs {
				o.Inst(i, inst)
			}
			if inst.Kind == trace.KindCondBr {
				st.CondExecs++
				pred := p.Predict(inst.IP)
				if pred != inst.Taken {
					st.Mispreds++
				}
				if tt != nil {
					tt.TrainWithTarget(inst.IP, inst.Target, inst.Taken, pred)
				} else {
					p.Train(inst.IP, inst.Taken, pred)
				}
				for _, o := range obs {
					o.Branch(i, inst, pred)
				}
			} else if inst.Kind.IsBranch() {
				if bo != nil {
					bo.ObserveBranch(inst.IP, inst.Target, inst.Kind, inst.Taken)
				}
			}
			i++
		}
	}
	st.Insts = i
	return st
}

// Observe replays a stream through observers with no predictor at all.
// The analysis substrates (dependency graphs, recurrence tracking, BBV
// collection, register-value tracking, CNN history collection) consume
// only trace-visible signals — their Branch callbacks ignore the
// prediction — so analysis passes that used to drag a predictor through
// the trace for nothing skip prediction work entirely. Branch callbacks
// receive the resolved direction as the prediction (never counted as a
// misprediction).
func Observe(s trace.Stream, obs ...Observer) RunStats {
	return ObserveFrom(s, 0, obs...)
}

// ObserveFrom is Observe with observers numbered from a base global
// index: instruction k of the stream is reported as base+k. It is the
// shard replay entry point — index-keyed observers (slice collectors,
// BBV windows, recurrence trackers) over a slice-aligned range of a
// long trace see the same indices they would in a whole-trace pass, so
// per-shard results Merge back exactly. The returned stats count only
// this stream's instructions.
func ObserveFrom(s trace.Stream, base uint64, obs ...Observer) RunStats {
	return observeBlocks(trace.AsBlocks(s, trace.DefaultBlockLen), base, obs...)
}

// ObserveBlocks is Observe over an explicit block stream.
func ObserveBlocks(bs trace.BlockStream, obs ...Observer) RunStats {
	return observeBlocks(bs, 0, obs...)
}

func observeBlocks(bs trace.BlockStream, base uint64, obs ...Observer) RunStats {
	var st RunStats
	i := base
	for blk := bs.NextBlock(); len(blk) > 0; blk = bs.NextBlock() {
		for j := range blk {
			inst := &blk[j]
			for _, o := range obs {
				o.Inst(i, inst)
			}
			if inst.Kind == trace.KindCondBr {
				st.CondExecs++
				for _, o := range obs {
					o.Branch(i, inst, inst.Taken)
				}
			}
			i++
		}
	}
	st.Insts = i - base
	return st
}

// runNoObservers is Run's fast path for pure-MPKI measurement: identical
// prediction/training semantics, no observer fan-out in the loop body.
// Predictors that implement bp.BlockRunner (TAGE-SC-L) consume whole
// blocks in one call — the innermost loop then lives inside the
// predictor with its dispatch inlined, and the driver/predictor boundary
// costs one interface call per block instead of several per branch.
func runNoObservers(bs trace.BlockStream, p bp.Predictor, tt targetTrainer, bo bp.BranchObserver) RunStats {
	var st RunStats
	var i uint64
	if br, ok := p.(bp.BlockRunner); ok {
		for blk := bs.NextBlock(); len(blk) > 0; blk = bs.NextBlock() {
			cond, miss := br.RunBlock(blk)
			st.CondExecs += cond
			st.Mispreds += miss
			i += uint64(len(blk))
		}
		st.Insts = i
		return st
	}
	for blk := bs.NextBlock(); len(blk) > 0; blk = bs.NextBlock() {
		for j := range blk {
			inst := &blk[j]
			if inst.Kind == trace.KindCondBr {
				st.CondExecs++
				pred := p.Predict(inst.IP)
				if pred != inst.Taken {
					st.Mispreds++
				}
				if tt != nil {
					tt.TrainWithTarget(inst.IP, inst.Target, inst.Taken, pred)
				} else {
					p.Train(inst.IP, inst.Taken, pred)
				}
			} else if inst.Kind.IsBranch() {
				if bo != nil {
					bo.ObserveBranch(inst.IP, inst.Target, inst.Kind, inst.Taken)
				}
			}
		}
		i += uint64(len(blk))
	}
	st.Insts = i
	return st
}
