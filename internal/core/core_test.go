package core

import (
	"testing"
	"testing/quick"

	"branchlab/internal/bp"
	"branchlab/internal/trace"
	"branchlab/internal/xrand"
)

// fixedPredictor always predicts a constant direction.
type fixedPredictor struct{ dir bool }

func (f fixedPredictor) Predict(uint64) bool      { return f.dir }
func (f fixedPredictor) Train(uint64, bool, bool) {}
func (f fixedPredictor) Name() string             { return "fixed" }

// buildTrace makes a trace with interleaved branches: ip 0xA00 always
// taken (predicted correctly by fixed-taken), ip 0xB00 never taken
// (always mispredicted by fixed-taken), with ALU filler between.
func buildTrace(branchPairs int, fillerPer int) *trace.Buffer {
	b := trace.NewBuffer(0)
	for i := 0; i < branchPairs; i++ {
		for f := 0; f < fillerPer; f++ {
			b.Append(trace.Inst{IP: 0x100, Kind: trace.KindALU,
				DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})
		}
		b.Append(trace.Inst{IP: 0xA00, Kind: trace.KindCondBr, Taken: true, Target: 0xC00,
			DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})
		b.Append(trace.Inst{IP: 0xB00, Kind: trace.KindCondBr, Taken: false, Target: 0xC00,
			DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})
	}
	return b
}

func TestRunCountsAndAccuracy(t *testing.T) {
	tr := buildTrace(1000, 3)
	st := Run(tr.Stream(), fixedPredictor{dir: true})
	if st.Insts != uint64(tr.Len()) {
		t.Errorf("Insts = %d, want %d", st.Insts, tr.Len())
	}
	if st.CondExecs != 2000 {
		t.Errorf("CondExecs = %d", st.CondExecs)
	}
	if st.Mispreds != 1000 {
		t.Errorf("Mispreds = %d", st.Mispreds)
	}
	if st.Accuracy() != 0.5 {
		t.Errorf("Accuracy = %v", st.Accuracy())
	}
	if st.MPKI() <= 0 {
		t.Error("MPKI should be positive")
	}
}

func TestCollectorSlices(t *testing.T) {
	tr := buildTrace(1000, 3) // 5 insts per pair = 5000 insts
	col := NewCollector(1000)
	Run(tr.Stream(), fixedPredictor{dir: true}, col)
	if len(col.Slices) != 5 {
		t.Fatalf("slices = %d, want 5", len(col.Slices))
	}
	for _, s := range col.Slices {
		if s.Insts != 1000 {
			t.Errorf("slice %d has %d insts", s.Index, s.Insts)
		}
		if len(s.PerBranch) != 2 {
			t.Errorf("slice %d has %d branches", s.Index, len(s.PerBranch))
		}
		if b := s.PerBranch[0xB00]; b == nil || b.Accuracy() != 0 {
			t.Errorf("slice %d: 0xB00 stats wrong: %+v", s.Index, b)
		}
		if b := s.PerBranch[0xA00]; b == nil || b.Accuracy() != 1 {
			t.Errorf("slice %d: 0xA00 stats wrong: %+v", s.Index, b)
		}
	}
	if col.Accuracy() != 0.5 {
		t.Errorf("collector accuracy = %v", col.Accuracy())
	}
	if acc := col.AccuracyExcluding(map[uint64]bool{0xB00: true}); acc != 1 {
		t.Errorf("accuracy excluding 0xB00 = %v", acc)
	}
	if col.StaticBranches() != 2 {
		t.Errorf("StaticBranches = %d", col.StaticBranches())
	}
	if col.MedianStaticPerSlice() != 2 {
		t.Errorf("MedianStaticPerSlice = %d", col.MedianStaticPerSlice())
	}
}

func TestCollectorPanicsOnZeroSlice(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCollector(0) did not panic")
		}
	}()
	NewCollector(0)
}

func TestCriteriaScaling(t *testing.T) {
	c := PaperCriteria()
	if c.MinExecs != 15000 || c.MinMispreds != 1000 || c.SliceLen != 30_000_000 {
		t.Fatalf("paper criteria wrong: %+v", c)
	}
	s := c.Scaled(3_000_000) // 10x smaller slices
	if s.MinExecs != 1500 || s.MinMispreds != 100 {
		t.Errorf("scaled criteria wrong: %+v", s)
	}
	if s.MaxAccuracy != c.MaxAccuracy {
		t.Error("accuracy threshold must not scale")
	}
	tiny := c.Scaled(1000)
	if tiny.MinExecs < 16 || tiny.MinMispreds < 4 {
		t.Errorf("tiny scaling below floors: %+v", tiny)
	}
	same := c.Scaled(30_000_000)
	if same != c {
		t.Error("scaling to the same length should be identity")
	}
}

func TestScreeningFindsOnlyQualifyingBranches(t *testing.T) {
	tr := buildTrace(1000, 3)
	col := NewCollector(1000)
	Run(tr.Stream(), fixedPredictor{dir: true}, col)
	crit := Criteria{MaxAccuracy: 0.99, MinExecs: 100, MinMispreds: 50, SliceLen: 1000}
	rep := crit.Screen(col)
	set := rep.Set()
	if !set[0xB00] {
		t.Error("0xB00 (0% accuracy, 200 execs/slice) should be an H2P")
	}
	if set[0xA00] {
		t.Error("0xA00 (100% accuracy) must not be an H2P")
	}
	if rep.Slices[0xB00] != 5 {
		t.Errorf("0xB00 should qualify in all 5 slices, got %d", rep.Slices[0xB00])
	}
	if got := rep.AvgPerSlice(); got != 1 {
		t.Errorf("AvgPerSlice = %v", got)
	}
	if got := rep.MispredShare(); got != 1 {
		t.Errorf("MispredShare = %v (all mispredictions come from 0xB00)", got)
	}
	if got := rep.AvgExecsPerH2PPerSlice(); got != 200 {
		t.Errorf("AvgExecsPerH2PPerSlice = %v, want 200", got)
	}
}

func TestScreeningExecThreshold(t *testing.T) {
	// A branch below the execution threshold must not screen, no matter
	// how inaccurate: that is the rare-branch category by definition.
	tr := buildTrace(1000, 3)
	col := NewCollector(1000)
	Run(tr.Stream(), fixedPredictor{dir: true}, col)
	crit := Criteria{MaxAccuracy: 0.99, MinExecs: 1000, MinMispreds: 50, SliceLen: 1000}
	if rep := crit.Screen(col); len(rep.Set()) != 0 {
		t.Errorf("nothing should qualify with MinExecs=1000/slice, got %v", rep.Set())
	}
}

func TestHeavyHitters(t *testing.T) {
	// Three hard branches with different execution weights.
	b := trace.NewBuffer(0)
	rng := xrand.New(1)
	add := func(ip uint64, n int) {
		for i := 0; i < n; i++ {
			b.Append(trace.Inst{IP: ip, Kind: trace.KindCondBr, Taken: rng.Bool(0.5),
				Target: ip + 64, DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})
		}
	}
	add(0x1, 6000)
	add(0x2, 3000)
	add(0x3, 1000)
	col := NewCollector(100000)
	Run(b.Stream(), fixedPredictor{dir: true}, col)
	crit := Criteria{MaxAccuracy: 0.99, MinExecs: 500, MinMispreds: 10, SliceLen: 100000}
	hh := crit.Screen(col).HeavyHitters()
	if len(hh) != 3 {
		t.Fatalf("heavy hitters = %d, want 3", len(hh))
	}
	if hh[0].IP != 0x1 || hh[1].IP != 0x2 || hh[2].IP != 0x3 {
		t.Errorf("ranking wrong: %+v", hh)
	}
	if hh[2].CumMispredFrac != 1.0 {
		t.Errorf("final cumulative fraction = %v, want 1", hh[2].CumMispredFrac)
	}
	if !(hh[0].CumMispredFrac > 0.4 && hh[0].CumMispredFrac < 0.8) {
		t.Errorf("top hitter covers %v of mispredictions, want ~0.6", hh[0].CumMispredFrac)
	}
}

func TestCrossInputAggregation(t *testing.T) {
	mkReport := func(ips ...uint64) *H2PReport {
		r := &H2PReport{Slices: make(map[uint64]int)}
		for _, ip := range ips {
			r.Slices[ip] = 1
		}
		return r
	}
	agg := Aggregate([]*H2PReport{
		mkReport(1, 2, 3),
		mkReport(2, 3),
		mkReport(2, 3, 4),
		mkReport(2),
	})
	if agg.Total() != 4 {
		t.Errorf("Total = %d", agg.Total())
	}
	if agg.AppearingIn(3) != 2 { // 2 (4x) and 3 (3x)
		t.Errorf("AppearingIn(3) = %d", agg.AppearingIn(3))
	}
	if agg.AppearingIn(1) != 4 {
		t.Errorf("AppearingIn(1) = %d", agg.AppearingIn(1))
	}
	if got := agg.AvgPerInput(); got != 2.25 {
		t.Errorf("AvgPerInput = %v", got)
	}
}

func TestRegValueTracker(t *testing.T) {
	b := trace.NewBuffer(0)
	// Write r8=5, r9=7, branch; write r8=5 again, branch; write r8=9, branch.
	write := func(reg uint8, val uint64) {
		b.Append(trace.Inst{IP: 0x10, Kind: trace.KindALU, DstReg: reg, DstValue: val,
			SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})
	}
	branch := func() {
		b.Append(trace.Inst{IP: 0xAA, Kind: trace.KindCondBr, Taken: true, Target: 0x100,
			DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})
	}
	write(8, 5)
	write(9, 7)
	branch()
	write(8, 5)
	branch()
	write(8, 9)
	branch()

	tr := NewRegValueTracker(0xAA, 8, 18)
	Run(b.Stream(), fixedPredictor{dir: true}, tr)
	if tr.Execs() != 3 {
		t.Fatalf("Execs = %d", tr.Execs())
	}
	pts := tr.Points()
	find := func(reg uint8, val uint32) uint64 {
		for _, p := range pts {
			if p.Reg == reg && p.Value == val {
				return p.Count
			}
		}
		return 0
	}
	if find(8, 5) != 2 {
		t.Errorf("r8=5 count = %d, want 2", find(8, 5))
	}
	if find(8, 9) != 1 {
		t.Errorf("r8=9 count = %d, want 1", find(8, 9))
	}
	if find(9, 7) != 3 {
		t.Errorf("r9=7 count = %d, want 3 (sticky last-write)", find(9, 7))
	}
	if tr.DistinctValues(8) != 2 {
		t.Errorf("DistinctValues(8) = %d", tr.DistinctValues(8))
	}
	if tr.DistinctValues(10) != 0 {
		t.Errorf("DistinctValues(10) = %d", tr.DistinctValues(10))
	}
}

func TestRegValueTrackerBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range tracker did not panic")
		}
	}()
	NewRegValueTracker(0xAA, 30, 18)
}

func TestRunWithRealPredictor(t *testing.T) {
	// End-to-end smoke: gshare over the synthetic trace learns the
	// all-taken branch and the all-not-taken branch perfectly.
	tr := buildTrace(2000, 2)
	col := NewCollector(2000)
	st := Run(tr.Stream(), bp.NewGShare(12, 8), col)
	if st.Accuracy() < 0.95 {
		t.Errorf("gshare on trivial branches: %v", st.Accuracy())
	}
}

// TestCriteriaScalingPreservesRates checks, property-style, that scaled
// thresholds keep the paper's per-instruction rates (modulo integer
// truncation and the small-slice floors).
func TestCriteriaScalingPreservesRates(t *testing.T) {
	base := PaperCriteria()
	if err := quick.Check(func(raw uint32) bool {
		sliceLen := uint64(raw%100_000_000) + 1_000_000
		s := base.Scaled(sliceLen)
		wantExecs := float64(base.MinExecs) * float64(sliceLen) / float64(base.SliceLen)
		wantMiss := float64(base.MinMispreds) * float64(sliceLen) / float64(base.SliceLen)
		okExecs := float64(s.MinExecs) >= wantExecs-1 && float64(s.MinExecs) <= wantExecs+1
		okMiss := float64(s.MinMispreds) >= wantMiss-1 && float64(s.MinMispreds) <= wantMiss+1
		return (okExecs || s.MinExecs == 16) && (okMiss || s.MinMispreds == 4)
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestCollectorConservation: per-branch counters must sum to the slice
// totals for arbitrary branch mixes.
func TestCollectorConservation(t *testing.T) {
	rng := xrand.New(12)
	b := trace.NewBuffer(0)
	for i := 0; i < 20000; i++ {
		ip := 0x100 + uint64(rng.Intn(50))*64
		b.Append(trace.Inst{IP: ip, Kind: trace.KindCondBr, Taken: rng.Bool(0.5),
			Target: ip + 64, DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})
	}
	col := NewCollector(3000)
	Run(b.Stream(), fixedPredictor{dir: true}, col)
	for _, s := range col.Slices {
		var execs, miss uint64
		for _, bs := range s.PerBranch {
			execs += bs.Execs
			miss += bs.Mispreds
		}
		if execs != s.CondExecs || miss != s.Mispreds {
			t.Fatalf("slice %d: per-branch sums (%d,%d) != totals (%d,%d)",
				s.Index, execs, miss, s.CondExecs, s.Mispreds)
		}
	}
}
