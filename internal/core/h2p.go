package core

import "sort"

// Criteria are the paper's H2P screening thresholds (§III-A): a branch in
// a slice is an H2P if its accuracy is below MaxAccuracy, it executed at
// least MinExecs times, and it produced at least MinMispreds
// mispredictions. The published numbers are defined per 30M-instruction
// slice; Scaled preserves the rates at other slice lengths.
type Criteria struct {
	MaxAccuracy float64
	MinExecs    uint64
	MinMispreds uint64
	SliceLen    uint64 // slice length the thresholds are calibrated for
}

// PaperCriteria returns the thresholds exactly as published: accuracy
// < 0.99, >= 15,000 executions and >= 1,000 mispredictions per
// 30M-instruction slice.
func PaperCriteria() Criteria {
	return Criteria{MaxAccuracy: 0.99, MinExecs: 15000, MinMispreds: 1000, SliceLen: 30_000_000}
}

// Scaled returns the criteria adjusted to a different slice length,
// scaling the count thresholds linearly (the thresholds are rates in
// disguise: 0.5 executions and ~0.033 mispredictions per 1k
// instructions).
func (c Criteria) Scaled(sliceLen uint64) Criteria {
	if sliceLen == 0 || sliceLen == c.SliceLen {
		return c
	}
	ratio := float64(sliceLen) / float64(c.SliceLen)
	s := c
	s.SliceLen = sliceLen
	s.MinExecs = uint64(float64(c.MinExecs) * ratio)
	s.MinMispreds = uint64(float64(c.MinMispreds) * ratio)
	if s.MinExecs < 16 {
		s.MinExecs = 16
	}
	if s.MinMispreds < 4 {
		s.MinMispreds = 4
	}
	return s
}

// H2PsInSlice returns the branch IPs qualifying as H2Ps in one slice.
func (c Criteria) H2PsInSlice(s *SliceStats) []uint64 {
	var out []uint64
	for ip, b := range s.PerBranch {
		if b.Accuracy() < c.MaxAccuracy && b.Execs >= c.MinExecs && b.Mispreds >= c.MinMispreds {
			out = append(out, ip)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Screen applies the criteria to every slice of a collector and returns
// the aggregate H2P report.
func (c Criteria) Screen(col *Collector) *H2PReport {
	r := &H2PReport{
		Criteria:   c,
		SliceCount: len(col.Slices),
		PerSlice:   make([][]uint64, len(col.Slices)),
		Slices:     make(map[uint64]int),
	}
	for i, s := range col.Slices {
		ips := c.H2PsInSlice(s)
		r.PerSlice[i] = ips
		for _, ip := range ips {
			r.Slices[ip]++
		}
	}
	r.totals = col.Totals()
	for _, s := range col.Slices {
		r.allMispreds += s.Mispreds
		r.allCondExecs += s.CondExecs
	}
	return r
}

// H2PReport aggregates screening results over a run.
type H2PReport struct {
	Criteria   Criteria
	SliceCount int
	// PerSlice lists qualifying IPs per slice.
	PerSlice [][]uint64
	// Slices counts, per IP, the number of slices in which it qualified.
	Slices map[uint64]int

	totals       map[uint64]*BranchStats
	allMispreds  uint64
	allCondExecs uint64
}

// Set returns all IPs that qualified in at least one slice.
func (r *H2PReport) Set() map[uint64]bool {
	out := make(map[uint64]bool, len(r.Slices))
	for ip := range r.Slices {
		out[ip] = true
	}
	return out
}

// AvgPerSlice returns the mean number of H2Ps per slice (Table I "Avg per
// Slice").
func (r *H2PReport) AvgPerSlice() float64 {
	if r.SliceCount == 0 {
		return 0
	}
	total := 0
	for _, ips := range r.PerSlice {
		total += len(ips)
	}
	return float64(total) / float64(r.SliceCount)
}

// MispredShare returns the fraction of all mispredictions caused by the
// H2P set (Table I "% Mispreds due to H2Ps").
func (r *H2PReport) MispredShare() float64 {
	if r.allMispreds == 0 {
		return 0
	}
	var h2p uint64
	for ip := range r.Slices {
		h2p += r.totals[ip].Mispreds
	}
	return float64(h2p) / float64(r.allMispreds)
}

// AvgExecsPerH2PPerSlice returns mean dynamic executions per H2P per
// slice (Table I "Avg. Dyn. Execs per H2P per Slice").
func (r *H2PReport) AvgExecsPerH2PPerSlice() float64 {
	if len(r.Slices) == 0 || r.SliceCount == 0 {
		return 0
	}
	var execs uint64
	for ip := range r.Slices {
		execs += r.totals[ip].Execs
	}
	return float64(execs) / float64(len(r.Slices)) / float64(r.SliceCount)
}

// HeavyHitter is one H2P ranked by dynamic execution count.
type HeavyHitter struct {
	IP       uint64
	Execs    uint64
	Mispreds uint64
	// CumMispredFrac is the cumulative fraction of ALL mispredictions
	// covered by this and higher-ranked H2Ps (Fig 2's y-axis).
	CumMispredFrac float64
}

// HeavyHitters ranks the H2P set by total dynamic executions and computes
// the cumulative misprediction coverage of Fig 2.
func (r *H2PReport) HeavyHitters() []HeavyHitter {
	out := make([]HeavyHitter, 0, len(r.Slices))
	for ip := range r.Slices {
		t := r.totals[ip]
		out = append(out, HeavyHitter{IP: ip, Execs: t.Execs, Mispreds: t.Mispreds})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Execs != out[j].Execs {
			return out[i].Execs > out[j].Execs
		}
		return out[i].IP < out[j].IP
	})
	var cum uint64
	for i := range out {
		cum += out[i].Mispreds
		if r.allMispreds > 0 {
			out[i].CumMispredFrac = float64(cum) / float64(r.allMispreds)
		}
	}
	return out
}

// CrossInput aggregates H2P appearance over multiple inputs of one
// workload (Table I "H2P Appearance Across Inputs").
type CrossInput struct {
	// InputsPerH2P counts, per IP, how many inputs screened it as an H2P.
	InputsPerH2P map[uint64]int
	// PerInput holds each input's H2P set size.
	PerInput []int
}

// Aggregate combines per-input H2P reports.
func Aggregate(reports []*H2PReport) *CrossInput {
	c := &CrossInput{InputsPerH2P: make(map[uint64]int)}
	for _, r := range reports {
		set := r.Set()
		c.PerInput = append(c.PerInput, len(set))
		for ip := range set {
			c.InputsPerH2P[ip]++
		}
	}
	return c
}

// Total returns the number of distinct H2Ps over all inputs.
func (c *CrossInput) Total() int { return len(c.InputsPerH2P) }

// AppearingIn returns how many H2Ps appear in at least k inputs.
func (c *CrossInput) AppearingIn(k int) int {
	n := 0
	for _, cnt := range c.InputsPerH2P {
		if cnt >= k {
			n++
		}
	}
	return n
}

// AvgPerInput returns the mean H2P set size per input.
func (c *CrossInput) AvgPerInput() float64 {
	if len(c.PerInput) == 0 {
		return 0
	}
	total := 0
	for _, n := range c.PerInput {
		total += n
	}
	return float64(total) / float64(len(c.PerInput))
}
