package core

import (
	"sort"

	"branchlab/internal/trace"
)

// RegValueTracker reproduces the Fig 10 methodology: for every dynamic
// execution of a target branch, record the value most recently written to
// each of the tracked registers (the paper tracks 18 and keeps the low 32
// bits).
type RegValueTracker struct {
	Target   uint64
	FirstReg uint8 // first tracked register
	NumRegs  uint8 // number of tracked registers (paper: 18)

	lastValue [trace.NumRegs]uint32
	lastValid [trace.NumRegs]bool

	// counts maps reg<<32|value to occurrences.
	counts map[uint64]uint64
	execs  uint64
}

// NewRegValueTracker tracks registers [first, first+n) before executions
// of target.
func NewRegValueTracker(target uint64, first, n uint8) *RegValueTracker {
	if int(first)+int(n) > trace.NumRegs {
		panic("core: tracked register range out of bounds")
	}
	return &RegValueTracker{
		Target:   target,
		FirstReg: first,
		NumRegs:  n,
		counts:   make(map[uint64]uint64),
	}
}

// Inst implements Observer: it shadows the architectural register file's
// most recent writes and snapshots them at each target execution.
func (t *RegValueTracker) Inst(_ uint64, inst *trace.Inst) {
	if inst.DstReg != trace.NoReg {
		t.lastValue[inst.DstReg] = uint32(inst.DstValue)
		t.lastValid[inst.DstReg] = true
	}
	if inst.Kind == trace.KindCondBr && inst.IP == t.Target {
		t.execs++
		for r := t.FirstReg; r < t.FirstReg+t.NumRegs; r++ {
			if t.lastValid[r] {
				t.counts[uint64(r)<<32|uint64(t.lastValue[r])]++
			}
		}
	}
}

// Branch implements Observer.
func (t *RegValueTracker) Branch(uint64, *trace.Inst, bool) {}

// Execs returns how many target executions were observed.
func (t *RegValueTracker) Execs() uint64 { return t.execs }

// RegValue is one (register, value) point with its occurrence count, a
// data point of Fig 10.
type RegValue struct {
	Reg   uint8
	Value uint32
	Count uint64
}

// Points returns all observed (register, value, count) triples sorted by
// register then value.
func (t *RegValueTracker) Points() []RegValue {
	out := make([]RegValue, 0, len(t.counts))
	for k, c := range t.counts {
		out = append(out, RegValue{Reg: uint8(k >> 32), Value: uint32(k), Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Reg != out[j].Reg {
			return out[i].Reg < out[j].Reg
		}
		return out[i].Value < out[j].Value
	})
	return out
}

// DistinctValues returns the number of distinct values seen for reg.
func (t *RegValueTracker) DistinctValues(reg uint8) int {
	n := 0
	for k := range t.counts {
		if uint8(k>>32) == reg {
			n++
		}
	}
	return n
}
