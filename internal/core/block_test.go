package core

import (
	"testing"

	"branchlab/internal/bp"
	"branchlab/internal/engine"
	"branchlab/internal/trace"
	"branchlab/internal/xrand"
)

// histPredictor is a little gshare: stateful and history-sensitive, so
// any reordering, skip or duplication of branches in the replay loop
// changes its predictions and is caught by the equivalence tests.
type histPredictor struct {
	hist    uint64
	table   [1 << 12]int8
	trains  int
	targets int
	seen    uint64
}

func (p *histPredictor) idx(ip uint64) uint64 { return (ip ^ p.hist) & (1<<12 - 1) }
func (p *histPredictor) Predict(ip uint64) bool {
	return p.table[p.idx(ip)] >= 0
}
func (p *histPredictor) Train(ip uint64, taken, pred bool) {
	i := p.idx(ip)
	if taken && p.table[i] < 3 {
		p.table[i]++
	}
	if !taken && p.table[i] > -4 {
		p.table[i]--
	}
	p.hist = p.hist<<1 | b2u(taken)
	p.trains++
}
func (p *histPredictor) TrainWithTarget(ip, target uint64, taken, pred bool) {
	p.targets++
	p.hist ^= target << 3
	p.Train(ip, taken, pred)
}
func (p *histPredictor) ObserveBranch(ip, target uint64, kind trace.Kind, taken bool) {
	p.hist = p.hist<<2 ^ ip ^ target
	p.seen++
}
func (p *histPredictor) Name() string { return "hist-test" }

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// randomTrace mixes every instruction class with a handful of branch
// IPs whose directions are pseudo-random.
func randomTrace(n int, seed uint64) *trace.Buffer {
	r := xrand.New(seed)
	b := trace.NewBuffer(n)
	for i := 0; i < n; i++ {
		inst := trace.Inst{IP: uint64(0x1000 + 4*i%512), Kind: trace.KindALU,
			DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}}
		switch r.Intn(10) {
		case 0, 1, 2:
			inst.Kind = trace.KindCondBr
			inst.IP = uint64(0xA000 + 64*r.Intn(12))
			inst.Taken = r.Bool(0.6)
			inst.Target = inst.IP + 32
		case 3:
			inst.Kind = trace.KindJump
			inst.Target = uint64(0xC000 + 64*r.Intn(4))
			inst.Taken = true
		case 4:
			inst.Kind = trace.KindLoad
			inst.MemAddr = r.Uint64() % (1 << 20)
			inst.DstReg = uint8(r.Intn(30))
		}
		b.Append(inst)
	}
	return b
}

// runPerInst is the pre-block reference loop: one Stream.Next per
// instruction, semantics identical to RunBlocks by construction.
func runPerInst(s trace.Stream, p bp.Predictor, obs ...Observer) RunStats {
	tt, _ := p.(interface {
		TrainWithTarget(ip, target uint64, taken, pred bool)
	})
	bo, _ := p.(bp.BranchObserver)
	var st RunStats
	var inst trace.Inst
	var i uint64
	for s.Next(&inst) {
		for _, o := range obs {
			o.Inst(i, &inst)
		}
		if inst.Kind == trace.KindCondBr {
			st.CondExecs++
			pred := p.Predict(inst.IP)
			if pred != inst.Taken {
				st.Mispreds++
			}
			if tt != nil {
				tt.TrainWithTarget(inst.IP, inst.Target, inst.Taken, pred)
			} else {
				p.Train(inst.IP, inst.Taken, pred)
			}
			for _, o := range obs {
				o.Branch(i, &inst, pred)
			}
		} else if inst.Kind.IsBranch() {
			if bo != nil {
				bo.ObserveBranch(inst.IP, inst.Target, inst.Kind, inst.Taken)
			}
		}
		i++
	}
	st.Insts = i
	return st
}

func assertCollectorsEqual(t *testing.T, got, want *Collector, label string) {
	t.Helper()
	if got.SliceLen != want.SliceLen {
		t.Fatalf("%s: slice length %d != %d", label, got.SliceLen, want.SliceLen)
	}
	if len(got.Slices) != len(want.Slices) {
		t.Fatalf("%s: %d slices, want %d", label, len(got.Slices), len(want.Slices))
	}
	for i, w := range want.Slices {
		g := got.Slices[i]
		if g.Index != w.Index || g.Insts != w.Insts || g.CondExecs != w.CondExecs || g.Mispreds != w.Mispreds {
			t.Fatalf("%s: slice %d header differs: %+v != %+v", label, i, *g, *w)
		}
		if len(g.PerBranch) != len(w.PerBranch) {
			t.Fatalf("%s: slice %d has %d branches, want %d", label, i, len(g.PerBranch), len(w.PerBranch))
		}
		for ip, wb := range w.PerBranch {
			gb := g.PerBranch[ip]
			if gb == nil || *gb != *wb {
				t.Fatalf("%s: slice %d branch %#x differs: %+v != %+v", label, i, ip, gb, wb)
			}
		}
	}
}

// The block-based loop must produce bit-identical statistics and
// collector contents to the per-instruction reference at every block
// size — the property that lets every replay site switch to blocks
// without any artifact changing.
func TestRunBlocksEquivalentToPerInstruction(t *testing.T) {
	tr := randomTrace(20_000, 7)
	wantCol := NewCollector(3_000)
	wantPred := &histPredictor{}
	want := runPerInst(tr.Stream(), wantPred, wantCol)
	if want.CondExecs == 0 || want.Mispreds == 0 {
		t.Fatal("degenerate reference run")
	}
	for _, n := range []int{1, 3, 17, 255, 4096, 30_000} {
		col := NewCollector(3_000)
		pred := &histPredictor{}
		got := RunBlocks(trace.Blocks(tr.Stream(), n), pred, col)
		if got != want {
			t.Fatalf("block=%d: stats %+v != %+v", n, got, want)
		}
		if pred.hist != wantPred.hist || pred.trains != wantPred.trains ||
			pred.targets != wantPred.targets || pred.seen != wantPred.seen {
			t.Fatalf("block=%d: predictor state diverged", n)
		}
		assertCollectorsEqual(t, col, wantCol, "block run")
	}
	// Run over the buffer's native block serving, and the no-observer
	// fast path, agree too.
	pred := &histPredictor{}
	if got := Run(tr.Stream(), pred); got != want {
		t.Fatalf("native fast path: stats %+v != %+v", got, want)
	}
	if pred.hist != wantPred.hist {
		t.Fatal("native fast path: predictor state diverged")
	}
}

func TestObserveBlocksEquivalent(t *testing.T) {
	tr := randomTrace(10_000, 11)
	wantCol := NewCollector(1_000)
	want := Observe(tr.Stream(), wantCol)
	for _, n := range []int{1, 7, 1024} {
		col := NewCollector(1_000)
		got := ObserveBlocks(trace.Blocks(tr.Stream(), n), col)
		if got != want {
			t.Fatalf("block=%d: stats %+v != %+v", n, got, want)
		}
		assertCollectorsEqual(t, col, wantCol, "observe blocks")
	}
}

// Splitting a trace at slice boundaries, observing each shard with
// global indices, and merging the shard collectors must reproduce the
// sequential collector exactly.
func TestCollectorMergeMatchesSequential(t *testing.T) {
	const sliceLen = 1_000
	tr := randomTrace(10_500, 13) // deliberately not slice-aligned overall
	want := NewCollector(sliceLen)
	Observe(tr.Stream(), want)

	for _, shardLen := range []int{sliceLen, 3 * sliceLen, 4_000} {
		var parts []*Collector
		for lo := 0; lo < tr.Len(); lo += shardLen {
			hi := lo + shardLen
			if hi > tr.Len() {
				hi = tr.Len()
			}
			c := NewCollector(sliceLen)
			st := ObserveFrom(tr.Slice(lo, hi).Stream(), uint64(lo), c)
			if st.Insts != uint64(hi-lo) {
				t.Fatalf("shard stats counted %d insts, want %d", st.Insts, hi-lo)
			}
			parts = append(parts, c)
		}
		acc := parts[0]
		for _, p := range parts[1:] {
			acc.Merge(p)
		}
		assertCollectorsEqual(t, acc, want, "sharded")
	}

	// Mid-slice splits overlap a slice index; Merge must sum them.
	a, b := NewCollector(sliceLen), NewCollector(sliceLen)
	ObserveFrom(tr.Slice(0, 2_500).Stream(), 0, a)
	ObserveFrom(tr.Slice(2_500, tr.Len()).Stream(), 2_500, b)
	a.Merge(b)
	assertCollectorsEqual(t, a, want, "mid-slice split")
}

// The merged collector must keep accepting observations: Merge
// invalidates the append cursor, and a later observation whose slice
// index is already resident (or belongs between resident slices) must
// resolve into the sorted slice list instead of appending a duplicate.
func TestCollectorMergeThenObserve(t *testing.T) {
	const sliceLen = 1_000
	tr := randomTrace(6_000, 17)
	want := NewCollector(sliceLen)
	Observe(tr.Stream(), want)

	a, b := NewCollector(sliceLen), NewCollector(sliceLen)
	ObserveFrom(tr.Slice(0, 2_000).Stream(), 0, a)
	ObserveFrom(tr.Slice(2_000, 4_000).Stream(), 2_000, b)
	a.Merge(b)
	ObserveFrom(tr.Slice(4_000, 6_000).Stream(), 4_000, a)
	assertCollectorsEqual(t, a, want, "merge then observe")

	// Out-of-order shard arrival: the merged collector already holds
	// slices 0-2 (2 partially) and 4-5; the remaining middle range
	// must fold into the existing slice-2 entry and insert slice 3 in
	// sorted position.
	c, d := NewCollector(sliceLen), NewCollector(sliceLen)
	ObserveFrom(tr.Slice(0, 2_500).Stream(), 0, c)
	ObserveFrom(tr.Slice(4_000, 6_000).Stream(), 4_000, d)
	c.Merge(d)
	ObserveFrom(tr.Slice(2_500, 4_000).Stream(), 2_500, c)
	assertCollectorsEqual(t, c, want, "observe into merged gap")
}

func TestCollectorMergePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on slice-length mismatch")
		}
	}()
	NewCollector(100).Merge(NewCollector(200))
}

// Shard collectors built concurrently on the engine pool and merged in
// order (and in a different grouping) reproduce the sequential result;
// run under -race this doubles as the data-race check for the
// split/merge pattern the experiment drivers use.
func TestCollectorShardsParallelAndAssociative(t *testing.T) {
	const sliceLen = 500
	tr := randomTrace(12_000, 23)
	want := NewCollector(sliceLen)
	Observe(tr.Stream(), want)

	shard := func(w, shardLen int) *Collector {
		lo := w * shardLen
		hi := lo + shardLen
		if hi > tr.Len() {
			hi = tr.Len()
		}
		c := NewCollector(sliceLen)
		ObserveFrom(tr.Slice(lo, hi).Stream(), uint64(lo), c)
		return c
	}
	const shardLen = 3 * sliceLen
	n := (tr.Len() + shardLen - 1) / shardLen
	build := func() []*Collector {
		return engine.Map(engine.New(4), n, func(w int) *Collector { return shard(w, shardLen) })
	}

	left := build()
	acc := left[0]
	for _, p := range left[1:] {
		acc.Merge(p)
	}
	assertCollectorsEqual(t, acc, want, "left fold")

	// Right-leaning grouping: merge the tail first.
	right := build()
	tail := right[n-1]
	for i := n - 2; i >= 1; i-- {
		right[i].Merge(tail)
		tail = right[i]
	}
	right[0].Merge(tail)
	assertCollectorsEqual(t, right[0], want, "right fold")
}
