package experiments

import (
	"context"
	"errors"
	"testing"
	"time"

	"branchlab/internal/engine"
	"branchlab/internal/report"
)

// TestRunErrExpiredDeadlineFailsTyped: a deadline that cannot possibly
// be met fails the run with a typed deadline error and no artifact.
func TestRunErrExpiredDeadlineFailsTyped(t *testing.T) {
	r, ok := ByID("table1")
	if !ok {
		t.Fatal("table1 missing from the registry")
	}
	cfg := quickCfg()
	cfg.Deadline = time.Nanosecond
	art, err := r.RunErr(cfg)
	if art != nil {
		t.Fatal("expired run still produced an artifact")
	}
	if !engine.IsCancel(err) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunErr = %v, want a deadline cancellation", err)
	}
}

// TestRunErrGenerousDeadlineByteIdentical: a deadline the run meets
// changes no artifact byte relative to the unbounded run.
func TestRunErrGenerousDeadlineByteIdentical(t *testing.T) {
	r, ok := ByID("table2")
	if !ok {
		t.Fatal("table2 missing from the registry")
	}
	cfg := quickCfg()
	want, err := r.RunErr(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Deadline = time.Hour
	got, err := r.RunErr(cfg)
	if err != nil {
		t.Fatalf("generous deadline failed the run: %v", err)
	}
	if got.String() != want.String() {
		t.Fatal("artifact differs under a generous deadline")
	}
}

// TestRunCtxRecoversDriverPanic: a panicking driver becomes a typed
// error naming the driver; the process survives.
func TestRunCtxRecoversDriverPanic(t *testing.T) {
	r := Runner{ID: "boom", Title: "panics", Run: func(Config) *report.Artifact {
		panic("driver bug")
	}}
	art, err := r.RunCtx(context.Background(), quickCfg())
	if art != nil || err == nil {
		t.Fatalf("RunCtx(panicking driver) = %v, %v", art, err)
	}
	if engine.IsCancel(err) {
		t.Fatalf("driver panic misclassified as cancellation: %v", err)
	}
}

// TestRunCtxConvertsEngineAborts: an engine.Abort raised anywhere in a
// driver surfaces as the run's typed error.
func TestRunCtxConvertsEngineAborts(t *testing.T) {
	boom := errors.New("cell failure")
	r := Runner{ID: "abort", Title: "aborts", Run: func(Config) *report.Artifact {
		engine.Abort(boom)
		return nil
	}}
	_, err := r.RunCtx(context.Background(), quickCfg())
	if !errors.Is(err, boom) {
		t.Fatalf("RunCtx(aborting driver) = %v, want %v", err, boom)
	}
}

// TestRunCtxPreCancelled: an already-cancelled run context fails fast
// with a typed error, before any driver work.
func TestRunCtxPreCancelled(t *testing.T) {
	r := Runner{ID: "never", Title: "never runs", Run: func(Config) *report.Artifact {
		t.Error("driver ran under a pre-cancelled context")
		return nil
	}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.RunCtx(ctx, quickCfg())
	if !engine.IsCancel(err) {
		t.Fatalf("RunCtx(cancelled) = %v, want a cancellation", err)
	}
}
