package experiments

import (
	"fmt"

	"branchlab/internal/bp"
	"branchlab/internal/core"
	"branchlab/internal/engine"
	"branchlab/internal/phase"
	"branchlab/internal/report"
	"branchlab/internal/workload"
)

// PhaseCond prototypes the paper's §V-B proposal: condition branch
// statistics on on-chip phase recognition so that rare branches whose
// behaviour is stable within a phase but shifts across phases keep
// usable statistics. It compares a flat bimodal table against the same
// table replicated per detected phase, on the LCF suite where rare
// branches dominate, and reports the accuracy specifically over
// low-execution-count branches.
func PhaseCond(cfg Config) *report.Artifact {
	a := &report.Artifact{ID: "phasecond",
		Title: "Extension (§V-B): phase-conditioned statistics for rare branches"}
	tab := report.NewTable("", "application",
		"flat acc", "conditioned acc", "flat rare-acc", "conditioned rare-acc", "phases")

	// "Cold" here means the sub-1000-execs-per-30M population of Fig 8,
	// scaled to the configured budget; these branches are too rare for
	// global history yet frequent enough that per-phase counters train.
	rareThreshold := uint64(float64(10000) * float64(cfg.Budget) / 30e6)
	if rareThreshold < 32 {
		rareThreshold = 32
	}

	var flatRareSum, condRareSum float64
	n := 0
	// One work unit per application: both the flat and conditioned runs.
	type pcRow struct {
		flatAcc, condAcc float64
		flatRare         float64
		condRare         float64
		phases           int
	}
	rows := engine.MapSlice(cfg.Pool(), workload.LCFLike(),
		func(s *workload.Spec, _ int) pcRow {
			tr := cfg.RecordTrace(s, 0)

			flatCol := core.NewCollector(cfg.SliceLen)
			core.Run(tr.Stream(), bp.NewBimodal(14), flatCol)

			cond := phase.NewConditionedPredictor(1024, 16,
				func() bp.Predictor { return bp.NewBimodal(14) })
			condCol := core.NewCollector(cfg.SliceLen)
			core.Run(tr.Stream(), cond, condCol)

			rareAcc := func(col *core.Collector) float64 {
				var execs, miss uint64
				for _, b := range col.Totals() {
					if b.Execs <= rareThreshold {
						execs += b.Execs
						miss += b.Mispreds
					}
				}
				if execs == 0 {
					return 1
				}
				return 1 - float64(miss)/float64(execs)
			}
			return pcRow{
				flatAcc:  flatCol.Accuracy(),
				condAcc:  condCol.Accuracy(),
				flatRare: rareAcc(flatCol),
				condRare: rareAcc(condCol),
				phases:   cond.NumPhases(),
			}
		})
	for i, s := range workload.LCFLike() {
		r := rows[i]
		flatRareSum += r.flatRare
		condRareSum += r.condRare
		n++
		tab.AddRow(s.Name, f4(r.flatAcc), f4(r.condAcc),
			f4(r.flatRare), f4(r.condRare), d(r.phases))
	}
	a.Tables = append(a.Tables, tab)
	if n > 0 {
		a.Notes = append(a.Notes, fmt.Sprintf(
			"rare-branch (<=%d execs) accuracy: flat %s vs phase-conditioned %s over %d applications",
			rareThreshold, f4(flatRareSum/float64(n)), f4(condRareSum/float64(n)), n))
	}
	a.Notes = append(a.Notes,
		"this is the paper's proposed direction, not a published figure; bimodal tables isolate the conditioning effect from history-based mechanisms",
		"boundary result: naive whole-predictor conditioning does not pay at this scale — per-phase cold start eats the gains and the signature detector under-segments LCF phases; internal/phase tests show the win when phases are detectable and per-phase visits are short, matching the paper's note that the deployment mechanics are future work")
	return a
}
