package experiments

import (
	"fmt"

	"branchlab/internal/core"
	"branchlab/internal/engine"
	"branchlab/internal/report"
	"branchlab/internal/simpoint"
	"branchlab/internal/stats"
	"branchlab/internal/workload"
)

// Table1 reproduces Table I: per-benchmark phase counts, static branch
// footprint, TAGE-SC-L 8KB accuracy (overall and excluding H2Ps), H2P
// populations and their appearance across application inputs, and the
// share of mispredictions concentrated in H2Ps.
func Table1(cfg Config) *report.Artifact {
	a := &report.Artifact{ID: "table1", Title: "SPECint-like suite summary (TAGE-SC-L 8KB)"}
	tab := report.NewTable("",
		"benchmark", "phases", "static", "med/slice", "acc", "acc-xH2P",
		"inputs", "H2P tot", "H2P 3+in", "avg/input", "avg/slice", "execs/H2P/slice", "%mispred H2P")

	var sumPhases, sumAcc, sumAccX, sumPerSlice, sumShare, sumExecs float64
	specs := workload.SPECint2017Like()
	inputsOf := func(s *workload.Spec) int {
		if s.NumInputs > cfg.MaxInputs {
			return cfg.MaxInputs
		}
		return s.NumInputs
	}

	// One work unit per (benchmark, input) pair: record, predict, screen
	// and count phases. Units are keyed so the merge below reassembles
	// per-benchmark slices in input order. The screening run is memoized
	// and shared with the other SPECint drivers; the basic-block vectors
	// ignore predictions entirely (BBVCollector.Branch is a no-op), so
	// phase counting rides a cheap predictor-free pass instead.
	type t1Key struct{ bench, input int }
	var keys []t1Key
	for bi, s := range specs {
		for in := 0; in < inputsOf(s); in++ {
			keys = append(keys, t1Key{bi, in})
		}
	}
	type t1Cell struct {
		rep    *core.H2PReport
		col    *core.Collector
		phases int
	}
	// The BBV pass shards each trace at slice boundaries: the shard
	// collectors merge to the exact sequential vector sequence, so
	// phase counts are unchanged at any worker count. The worker
	// budget is divided between the two levels — when the per-cell
	// sweep already fills the pool, the inner pass runs sequentially
	// instead of nesting another full pool per in-flight cell.
	pool := cfg.Pool()
	innerPool := engine.New(max(1, pool.Workers()/max(1, len(keys))))
	cells := engine.MapSlice(pool, keys, func(k t1Key, _ int) t1Cell {
		tr := cfg.RecordTrace(specs[k.bench], k.input)
		rep, col := screenBranches(cfg, specs[k.bench], k.input, tr)
		bbv := observeSliced(cfg, innerPool, tr,
			func() *simpoint.BBVCollector {
				return simpoint.NewBBVCollector(cfg.SliceLen, simpoint.DefaultDim)
			},
			(*simpoint.BBVCollector).Merge)
		c := t1Cell{
			rep:    rep,
			phases: simpoint.ChooseK(bbv.Vectors(), 20, 1).K,
		}
		// Only input 0's collector feeds the per-slice columns.
		if k.input == 0 {
			c.col = col
		}
		return c
	})

	perBench := make([][]t1Cell, len(specs))
	for i, k := range keys {
		perBench[k.bench] = append(perBench[k.bench], cells[i])
	}

	for bi, s := range specs {
		inputs := inputsOf(s)
		var reports []*core.H2PReport
		phases := 0
		for _, c := range perBench[bi] {
			reports = append(reports, c.rep)
			phases += c.phases
		}
		agg := core.Aggregate(reports)

		// Input-0 metrics for the per-slice columns.
		col0, rep0 := perBench[bi][0].col, reports[0]
		set0 := rep0.Set()
		acc := col0.Accuracy()
		accX := col0.AccuracyExcluding(set0)
		avgPhases := float64(phases) / float64(inputs)

		tab.AddRow(s.Name,
			f2(avgPhases),
			d(col0.StaticBranches()),
			d(col0.MedianStaticPerSlice()),
			f3(acc), f3(accX),
			d(inputs),
			d(agg.Total()),
			d(agg.AppearingIn(3)),
			f2(agg.AvgPerInput()),
			f2(rep0.AvgPerSlice()),
			f2(rep0.AvgExecsPerH2PPerSlice()),
			pct(rep0.MispredShare()))
		sumPhases += avgPhases
		sumAcc += acc
		sumAccX += accX
		sumPerSlice += rep0.AvgPerSlice()
		sumShare += rep0.MispredShare()
		sumExecs += rep0.AvgExecsPerH2PPerSlice()
	}
	n := float64(len(specs))
	tab.AddRow("MEAN", f2(sumPhases/n), "", "", f3(sumAcc/n), f3(sumAccX/n), "", "", "", "",
		f2(sumPerSlice/n), f2(sumExecs/n), pct(sumShare/n))
	a.Tables = append(a.Tables, tab)
	a.Notes = append(a.Notes,
		"paper means: 9.5 phases, acc 0.952, acc-xH2P 0.984, 10 H2Ps/slice causing 55.3% of mispredictions")
	return a
}

// Fig2 reproduces Fig 2: the cumulative fraction of each benchmark's
// mispredictions covered by its H2Ps ranked by dynamic execution count.
func Fig2(cfg Config) *report.Artifact {
	a := &report.Artifact{ID: "fig2", Title: "Cumulative misprediction fraction of ranked H2P heavy hitters"}
	chart := report.NewChart("cumulative fraction vs n-th heavy hitter")
	tab := report.NewTable("", "benchmark", "H2Ps", "top1", "top5", "top10", "all")
	var top5sum float64
	var nBench int
	specs := workload.SPECint2017Like()
	// One work unit per benchmark: record, screen, rank heavy hitters.
	hitters := engine.MapSlice(cfg.Pool(), specs, func(s *workload.Spec, _ int) []core.HeavyHitter {
		tr := cfg.RecordTrace(s, 0)
		rep, _ := screenBranches(cfg, s, 0, tr)
		return rep.HeavyHitters()
	})
	for i, s := range specs {
		hh := hitters[i]
		if len(hh) == 0 {
			tab.AddRow(s.Name, "0", "-", "-", "-", "-")
			continue
		}
		at := func(n int) float64 {
			if n > len(hh) {
				n = len(hh)
			}
			return hh[n-1].CumMispredFrac
		}
		tab.AddRow(s.Name, d(len(hh)), f3(at(1)), f3(at(5)), f3(at(10)), f3(at(len(hh))))
		top5sum += at(5)
		nBench++
		xs := make([]float64, 0, 50)
		ys := make([]float64, 0, 50)
		for i := 0; i < len(hh) && i < 50; i++ {
			xs = append(xs, float64(i+1))
			ys = append(ys, hh[i].CumMispredFrac)
		}
		chart.Add(s.Name, xs, ys)
	}
	a.Tables = append(a.Tables, tab)
	a.Charts = append(a.Charts, chart)
	if nBench > 0 {
		a.Notes = append(a.Notes, fmt.Sprintf(
			"top-5 heavy hitters cover %s of mispredictions on average (paper: 37%%)",
			pct(top5sum/float64(nBench))))
	}
	return a
}

// Table2 reproduces Table II: LCF static branch IPs, average dynamic
// executions per static branch, average per-branch accuracy, and H2P
// counts under TAGE-SC-L 8KB.
func Table2(cfg Config) *report.Artifact {
	a := &report.Artifact{ID: "table2", Title: "LCF summary branch statistics (TAGE-SC-L 8KB)"}
	tab := report.NewTable("", "application", "static IPs", "execs/branch", "acc/branch", "H2Ps")
	var sumStatic, sumExecs, sumAcc, sumH2P float64
	specs := workload.LCFLike()
	// One work unit per application; the per-branch accuracy fold walks
	// IP-sorted totals so the float sum is deterministic.
	type t2Row struct {
		n        int
		execsPer float64
		accPer   float64
		h2ps     float64
	}
	rows := engine.MapSlice(cfg.Pool(), specs, func(s *workload.Spec, _ int) t2Row {
		tr := cfg.RecordTrace(s, 0)
		rep, col := screenBranches(cfg, s, 0, tr)
		totals := sortedTotals(col)
		var execs uint64
		var accSum float64
		for _, b := range totals {
			execs += b.Execs
			accSum += b.Accuracy()
		}
		n := len(totals)
		return t2Row{
			n:        n,
			execsPer: float64(execs) / float64(n),
			accPer:   accSum / float64(n),
			h2ps:     rep.AvgPerSlice(),
		}
	})
	for i, s := range specs {
		r := rows[i]
		tab.AddRow(s.Name, d(r.n), f2(r.execsPer), f3(r.accPer), f2(r.h2ps))
		sumStatic += float64(r.n)
		sumExecs += r.execsPer
		sumAcc += r.accPer
		sumH2P += r.h2ps
	}
	k := float64(len(specs))
	tab.AddRow("MEAN", f2(sumStatic/k), f2(sumExecs/k), f3(sumAcc/k), f2(sumH2P/k))
	a.Tables = append(a.Tables, tab)
	a.Notes = append(a.Notes,
		"paper means (per 30M-instruction trace): 14,072 static IPs, 612.8 execs/branch, 0.85 accuracy, 5.2 H2Ps; static counts here scale with the configured budget")
	return a
}

// Fig3 reproduces Fig 3: the LCF-wide distributions of per-branch dynamic
// mispredictions, dynamic executions, and prediction accuracy.
func Fig3(cfg Config) *report.Artifact {
	a := &report.Artifact{ID: "fig3", Title: "LCF per-branch distributions (TAGE-SC-L 8KB)"}
	mispredH := stats.NewHistogram(0, 1, 10, 50, 100, 500, 1000, 5000)
	execH := stats.NewHistogram(0, 100, 1000, 10000, 100000, 1000000)
	accH := stats.NewHistogram(0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.99, 1.0000001)
	// One work unit per application returning its per-branch totals; the
	// shared histograms are filled during the in-order merge.
	for _, totals := range engine.MapSlice(cfg.Pool(), workload.LCFLike(),
		func(s *workload.Spec, _ int) []branchTotal {
			tr := cfg.RecordTrace(s, 0)
			_, col := screenBranches(cfg, s, 0, tr)
			return sortedTotals(col)
		}) {
		for _, b := range totals {
			mispredH.Add(float64(b.Mispreds))
			execH.Add(float64(b.Execs))
			accH.Add(b.Accuracy())
		}
	}
	for _, h := range []struct {
		name string
		h    *stats.Histogram
	}{{"dynamic mispredictions", mispredH}, {"dynamic executions", execH}, {"prediction accuracy", accH}} {
		tab := report.NewTable(h.name, "bin", "fraction of static branch IPs")
		fr := h.h.Fraction()
		for i := range h.h.Counts {
			tab.AddRow(h.h.BinLabel(i), f4(fr[i]))
		}
		if h.h.Over > 0 {
			tab.AddRow("overflow", f4(float64(h.h.Over)/float64(h.h.Total)))
		}
		a.Tables = append(a.Tables, tab)
	}
	// Headline checks from the paper text.
	under100 := float64(execH.Counts[0]) / float64(execH.Total)
	highAcc := float64(accH.Counts[len(accH.Counts)-1]) / float64(accH.Total)
	lowAcc := float64(accH.Counts[0]+accH.Under) / float64(accH.Total)
	a.Notes = append(a.Notes,
		fmt.Sprintf("branches with <100 execs: %s (paper: 85%% at 30M budget)", pct(under100)),
		fmt.Sprintf("branches with accuracy >= 0.99: %s (paper: 55%%)", pct(highAcc)),
		fmt.Sprintf("branches with accuracy <= 0.10: %s (paper: 12%%)", pct(lowAcc)))
	return a
}

// Fig4 reproduces Fig 4: rare branches have a wide accuracy spread. (a)
// is the accuracy-vs-executions scatter (summarized here by bin); (b) is
// the standard deviation of accuracy in 100-execution bins.
func Fig4(cfg Config) *report.Artifact {
	a := &report.Artifact{ID: "fig4", Title: "Accuracy spread vs dynamic execution count (LCF)"}
	bs := stats.NewBinnedStdDev(100)
	// Per-application work units; the merge feeds the binned accumulator
	// in application order over IP-sorted branches, making the per-bin
	// float folds deterministic.
	for _, totals := range engine.MapSlice(cfg.Pool(), workload.LCFLike(),
		func(s *workload.Spec, _ int) []branchTotal {
			tr := cfg.RecordTrace(s, 0)
			_, col := screenBranches(cfg, s, 0, tr)
			return sortedTotals(col)
		}) {
		for _, b := range totals {
			bs.Add(float64(b.Execs), b.Accuracy())
		}
	}
	tab := report.NewTable("accuracy stddev per 100-execution bin",
		"execs bin", "branches", "mean acc", "stddev acc")
	bins := bs.Bins()
	limit := 15
	var first stats.Bin
	for i, b := range bins {
		if i == 0 {
			first = b
		}
		if i < limit {
			tab.AddRow(fmt.Sprintf("%.0f-%.0f", b.Lo, b.Hi), d(b.N), f3(b.Mean), f3(b.StdDev))
		}
	}
	a.Tables = append(a.Tables, tab)
	if len(bins) > 1 {
		a.Notes = append(a.Notes, fmt.Sprintf(
			"first bin stddev %s vs next bin %s (paper: 0.35 dropping to 0.08)",
			f3(first.StdDev), f3(bins[1].StdDev)))
	}
	chart := report.NewChart("stddev of accuracy vs execution-count bin")
	xs, ys := make([]float64, 0, len(bins)), make([]float64, 0, len(bins))
	for i, b := range bins {
		if i >= 40 {
			break
		}
		xs = append(xs, b.Lo)
		ys = append(ys, b.StdDev)
	}
	chart.Add("stddev", xs, ys)
	a.Charts = append(a.Charts, chart)
	return a
}
