package experiments

import (
	"reflect"
	"testing"

	"branchlab/internal/core"
	"branchlab/internal/pipeline"
	"branchlab/internal/tage"
	"branchlab/internal/trace"
	"branchlab/internal/workload"
)

// The replay loops adapt any stream to blocks internally; this sweep
// pins the property the whole PR rests on: forcing every block size —
// including pathological ones — through the full measurement stack
// (TAGE screening + pipeline timing) on a real workload trace changes
// no result bit. Together with the artifact determinism tests (which
// cover the native DefaultBlockLen path end to end) this verifies
// `-run all` output is block-size-independent.
func TestBlockSizeSweepByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration sweep")
	}
	spec, ok := workload.ByName("605.mcf_s")
	if !ok {
		t.Fatal("workload missing")
	}
	tr := spec.Record(0, 150_000)
	const sliceLen = 50_000

	wantCol := core.NewCollector(sliceLen)
	wantStats := core.Run(tr.Stream(), tage.New(tage.Config8KB()), wantCol)
	wantRep := core.PaperCriteria().Scaled(sliceLen).Screen(wantCol)
	wantIPC := pipeline.New(pipeline.Skylake()).Run(tr.Stream(),
		pipeline.Options{Predictor: tage.New(tage.Config8KB())})

	for _, n := range []int{1, 37, 1_000, 8_192, 200_000} {
		col := core.NewCollector(sliceLen)
		st := core.RunBlocks(trace.Blocks(tr.Stream(), n), tage.New(tage.Config8KB()), col)
		if st != wantStats {
			t.Fatalf("block=%d: run stats %+v != %+v", n, st, wantStats)
		}
		rep := core.PaperCriteria().Scaled(sliceLen).Screen(col)
		if !reflect.DeepEqual(rep.Set(), wantRep.Set()) {
			t.Fatalf("block=%d: screened H2P set differs", n)
		}
		if !reflect.DeepEqual(rep.HeavyHitters(), wantRep.HeavyHitters()) {
			t.Fatalf("block=%d: heavy-hitter ranking differs", n)
		}
		if !reflect.DeepEqual(col.Totals(), wantCol.Totals()) {
			t.Fatalf("block=%d: per-branch totals differ", n)
		}
		res := pipeline.New(pipeline.Skylake()).RunBlocks(
			trace.Blocks(tr.Stream(), n),
			pipeline.Options{Predictor: tage.New(tage.Config8KB())})
		if res != wantIPC {
			t.Fatalf("block=%d: pipeline result %+v != %+v", n, res, wantIPC)
		}
	}
}
