package experiments

import (
	"fmt"

	"branchlab/internal/cnn"
	"branchlab/internal/core"
	"branchlab/internal/engine"
	"branchlab/internal/report"
	"branchlab/internal/stats"
	"branchlab/internal/tage"
	"branchlab/internal/workload"
)

// Alloc reproduces the §IV-A allocation-churn study: H2P branches consume
// tagged-table storage at extreme rates (the paper reports a median of
// 13,093 allocations against 3,990 unique entries per H2P, versus 4 and 4
// for ordinary branches, with each H2P claiming ~3.6% of all allocation
// events versus <0.01%).
func Alloc(cfg Config) *report.Artifact {
	a := &report.Artifact{ID: "alloc", Title: "TAGE tagged-entry allocation churn: H2P vs non-H2P"}
	var h2pAllocs, h2pUnique, otherAllocs, otherUnique []uint64
	var h2pShare, otherShare []float64

	// One work unit per benchmark, classifying its branches in IP order so
	// the per-class slices (and the float means over them) merge
	// deterministically.
	type allocClass struct {
		allocs, unique []uint64
		share          []float64
	}
	type allocResult struct{ h2p, other allocClass }
	results := engine.MapSlice(cfg.Pool(), workload.SPECint2017Like(),
		func(s *workload.Spec, _ int) allocResult {
			tr := cfg.RecordTrace(s, 0)
			pred := tage.New(tage.Config8KB())
			telemetry := pred.EnableAllocTracking()
			col := core.NewCollector(cfg.SliceLen)
			core.Run(tr.Stream(), pred, col)
			set := core.PaperCriteria().Scaled(cfg.SliceLen).Screen(col).Set()
			var res allocResult
			for _, b := range sortedTotals(col) {
				if b.Execs < 32 {
					continue // ignore branches with no meaningful allocation history
				}
				cls := &res.other
				if set[b.IP] {
					cls = &res.h2p
				}
				cls.allocs = append(cls.allocs, telemetry.Allocs(b.IP))
				cls.unique = append(cls.unique, uint64(telemetry.UniqueEntries(b.IP)))
				cls.share = append(cls.share, telemetry.ShareOfAllocs(b.IP))
			}
			return res
		})
	for _, res := range results {
		h2pAllocs = append(h2pAllocs, res.h2p.allocs...)
		h2pUnique = append(h2pUnique, res.h2p.unique...)
		h2pShare = append(h2pShare, res.h2p.share...)
		otherAllocs = append(otherAllocs, res.other.allocs...)
		otherUnique = append(otherUnique, res.other.unique...)
		otherShare = append(otherShare, res.other.share...)
	}

	tab := report.NewTable("", "class", "branches", "median allocs", "median unique entries", "mean share of allocs")
	tab.AddRow("H2P", d(len(h2pAllocs)),
		f2(stats.MedianUint64(h2pAllocs)), f2(stats.MedianUint64(h2pUnique)),
		pct(stats.Mean(h2pShare)))
	tab.AddRow("non-H2P", d(len(otherAllocs)),
		f2(stats.MedianUint64(otherAllocs)), f2(stats.MedianUint64(otherUnique)),
		pct(stats.Mean(otherShare)))
	a.Tables = append(a.Tables, tab)
	a.Notes = append(a.Notes,
		"paper medians: 13,093 allocations / 3,990 unique entries per H2P vs 4 / 4 per ordinary branch; shares 3.6% vs <0.01% (absolute counts scale with trace length)")
	return a
}

// CNN reproduces the §V-C demonstration: offline-trained 2-bit CNN helper
// predictors, trained on traces from multiple application inputs, beat
// the online TAGE-SC-L baseline on the specific H2Ps they target when
// deployed on an unseen input.
func CNN(cfg Config) *report.Artifact {
	a := &report.Artifact{ID: "cnn", Title: "CNN helper predictors on H2P heavy hitters"}
	mcfg := cnn.DefaultConfig()
	tab := report.NewTable("", "benchmark", "H2P", "TAGE acc", "helper acc", "improvement")
	var improved, total int

	// One work unit per benchmark: train offline on early inputs, deploy
	// on an unseen one. Units that find no usable H2P return nil.
	type cnnRow struct {
		cells  []string
		better bool
	}
	rows := engine.MapSlice(cfg.Pool(), []string{"605.mcf_s", "657.xz_s", "641.leela_s"},
		func(s string, _ int) *cnnRow {
			spec, ok := workload.ByName(s)
			if !ok {
				return nil
			}
			tr0 := cfg.RecordTrace(spec, 0)
			target := topHeavyHitter(cfg, spec, tr0)
			if target == 0 {
				return nil
			}
			// Offline training: samples aggregated over the first two
			// inputs, replaying the already-recorded input-0 trace.
			var samples []cnn.Sample
			trainInputs := 2
			if spec.NumInputs < 2 {
				trainInputs = 1
			}
			for in := 0; in < trainInputs; in++ {
				tr := tr0
				if in > 0 {
					tr = cfg.RecordTrace(spec, in)
				}
				// The history collector reads resolved directions only
				// (its Branch callback is a no-op): no predictor needed.
				hc := cnn.NewHistoryCollector(mcfg, target)
				core.Observe(tr.Stream(), hc)
				samples = append(samples, hc.Samples...)
			}
			model := cnn.NewModel(mcfg)
			model.Train(samples)

			// Deployment: an input never seen during training.
			evalInput := trainInputs % spec.NumInputs
			evalTrace := cfg.RecordTrace(spec, evalInput)

			// The baseline eval pass is exactly a screening run of the
			// eval input; the memoized collector serves it.
			_, colBase := screenBranches(cfg, spec, evalInput, evalTrace)
			baseStats := colBase.Totals()[target]
			if baseStats == nil || baseStats.Execs == 0 {
				return nil
			}

			overlay := cnn.NewOverlay(mcfg, tage.New(tage.Config8KB()))
			overlay.Attach(target, model)
			colHelper := core.NewCollector(cfg.SliceLen)
			core.Run(evalTrace.Stream(), overlay, colHelper)
			helperStats := colHelper.Totals()[target]

			baseAcc := baseStats.Accuracy()
			helperAcc := helperStats.Accuracy()
			return &cnnRow{
				cells: []string{s, fmt.Sprintf("%#x", target), f3(baseAcc), f3(helperAcc),
					fmt.Sprintf("%+.1f%%", 100*(helperAcc-baseAcc))},
				better: helperAcc > baseAcc,
			}
		})
	for _, r := range rows {
		if r == nil {
			continue
		}
		tab.AddRow(r.cells...)
		total++
		if r.better {
			improved++
		}
	}
	a.Tables = append(a.Tables, tab)
	a.Notes = append(a.Notes, fmt.Sprintf(
		"%d/%d helpers beat the online baseline on an unseen input; weights quantized to 2-bit magnitudes for deployment",
		improved, total))
	return a
}
