// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver regenerates its artifact from scratch
// — workload synthesis, prediction, screening, timing — and returns a
// report.Artifact whose shape is compared against the published result in
// EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"time"

	"branchlab/internal/core"
	"branchlab/internal/engine"
	"branchlab/internal/pipeline"
	"branchlab/internal/report"
	"branchlab/internal/tage"
	"branchlab/internal/trace"
	"branchlab/internal/tracecache"
	"branchlab/internal/tracestore"
	"branchlab/internal/workload"
)

// Config scales every experiment. The paper's traces are 10B
// instructions with 30M-instruction slices; these budgets shrink both
// while core.Criteria.Scaled keeps the screening thresholds equivalent.
type Config struct {
	Budget     uint64 // instructions per workload run
	SliceLen   uint64 // slice length for screening/phases
	PipeScales []int  // pipeline capacity scaling factors
	StorageKB  []int  // TAGE-SC-L budgets for the limit study
	MaxInputs  int    // cap on application inputs per workload
	Workers    int    // engine workers per experiment (0 = NumCPU)

	// RecordShards, when > 1, records each trace by generating disjoint
	// instruction ranges on up to that many engine workers
	// (program.RecordSharded; each recording's worker count is capped
	// by Workers). Sharded recording is byte-identical to sequential
	// recording, so artifacts are unaffected in every mode. Note the
	// worker budgets multiply: drivers recording several traces
	// concurrently run up to Workers x min(Workers, RecordShards)
	// generation goroutines, so the knob pays off on hosts with spare
	// cores relative to the per-cell parallelism.
	RecordShards int

	// Cache, when non-nil, is the shared trace cache: every driver
	// records (workload, input) traces through it, so one `-run all`
	// invocation synthesizes each trace once instead of once per driver.
	// The cache is slice-granular — its LRU cap evicts cold fixed-size
	// slices of a trace rather than whole recordings, and evicted
	// slices re-materialize deterministically on demand — so nil vs
	// non-nil, any cap and any slice size are all byte-identical.
	Cache *tracecache.Cache

	// CacheSlice is the trace cache's slice granularity in instructions
	// (0 = whole-trace entries, the pre-slice behaviour). Build Cache
	// through NewCache so the configured geometry is the one the cache
	// actually evicts and re-materializes at.
	CacheSlice uint64

	// Store, when non-nil, is the persistent on-disk tier beneath the
	// trace cache (DESIGN.md §11): recordings and refills write
	// through to it, evicted slices promote back zero-copy, and a
	// trace already stored restores without recording at all — across
	// process restarts. NewCache attaches it; like the cache itself,
	// attached vs not is byte-identical in every artifact.
	Store *tracestore.Store

	// CkptSlice is the payload checkpoint spacing in instructions
	// captured during first recording (0 = no checkpoints). With
	// checkpoints in the cache header, an evicted-slice refill resumes
	// from the nearest checkpoint at or below the missing window —
	// O(window) instead of O(prefix + window) — and sharded
	// re-recording needs no overlapping prefix skims. Checkpoints never
	// change a trace byte: checkpointed and checkpoint-free runs are
	// byte-identical in every artifact.
	CkptSlice uint64

	// Deadline bounds one driver run end to end (0 = none). It is
	// applied by Runner.RunErr: the run's pools and recordings share a
	// context that expires after this duration, and an expired run
	// fails with a typed cancellation error (engine.CancelError, which
	// lists the work units that did complete) instead of partial or
	// wrong artifacts. A deadline generous enough for the run to finish
	// changes no artifact byte (DESIGN.md §9).
	Deadline time.Duration

	// ctx, when non-nil, bounds every pool and recording built from
	// this configuration. It is set by Runner.RunCtx/RunErr; drivers
	// never touch it directly.
	ctx context.Context
}

// Context returns the run-bounding context (Background when none).
func (c Config) Context() context.Context {
	if c.ctx == nil {
		return context.Background()
	}
	return c.ctx
}

// NewCache constructs the shared trace cache for this configuration:
// at most maxBytes of resident instruction data (<= 0 unbounded),
// evicted and re-materialized at CacheSlice granularity, persisted
// through Store when one is configured. Callers assign the result to
// Cache.
func (c Config) NewCache(maxBytes int64) *tracecache.Cache {
	cache := tracecache.NewSliced(maxBytes, c.CacheSlice)
	cache.SetStore(c.Store)
	return cache
}

// Pool returns the engine pool the experiment's work units run on,
// bound to the run context: cancelling or timing out the run stops
// every Map dispatched on it with a typed error.
func (c Config) Pool() *engine.Pool {
	p := engine.New(c.Workers)
	if c.ctx != nil {
		p = p.WithContext(c.ctx)
	}
	return p
}

// RecordTrace materializes one workload input's trace at the configured
// budget, through the shared cache when one is configured. All drivers
// record through this so concurrent work units requesting the same trace
// coalesce onto a single recording. With RecordShards > 1 the recording
// itself runs sharded across engine workers (byte-identical output).
// The returned trace replays identically whether it is a plain buffer
// (nil cache) or a cache view re-materializing evicted slices on
// demand (Spec.RecordRange, the reseed-and-skim path).
// Recording honours the run context: a cancelled or expired run fails
// with a typed error escalated to the Runner.RunErr boundary — a
// truncated trace is never returned.
func (c Config) RecordTrace(s *workload.Spec, input int) trace.Replayable {
	ctx := c.Context()
	var (
		tr  trace.Replayable
		err error
	)
	switch {
	case c.Cache == nil && c.RecordShards > 1:
		tr, err = s.RecordShardedFromCtx(ctx, input, c.Budget, c.Pool(), c.RecordShards, nil)
	case c.Cache == nil:
		tr, err = s.RecordCtx(ctx, input, c.Budget)
	default:
		tr, err = c.Cache.RecordCtx(ctx, s.Name, input, c.Budget,
			s.CacheSource(input, c.Budget, c.Pool(), c.RecordShards, c.CkptSlice))
	}
	if err != nil {
		engine.Abort(err)
	}
	return tr
}

// Default returns the configuration used for EXPERIMENTS.md.
func Default() Config {
	return Config{
		Budget:     3_000_000,
		SliceLen:   750_000,
		PipeScales: []int{1, 2, 4, 8, 16, 32},
		StorageKB:  []int{8, 64, 128, 256, 512, 1024},
		MaxInputs:  3,
		CacheSlice: tracecache.DefaultSliceInsts,
		CkptSlice:  tracecache.DefaultSliceInsts,
	}
}

// Quick returns a reduced configuration for tests and smoke runs.
func Quick() Config {
	return Config{
		Budget:     400_000,
		SliceLen:   200_000,
		PipeScales: []int{1, 4, 16},
		StorageKB:  []int{8, 64, 1024},
		MaxInputs:  2,
		CacheSlice: tracecache.DefaultSliceInsts,
		CkptSlice:  tracecache.DefaultSliceInsts,
	}
}

// Runner is a named experiment driver.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) *report.Artifact
}

// RunCtx runs the driver bounded by ctx, converting every in-band
// failure into the error return: engine aborts (typed unit errors,
// cancellations, injected faults) unwind here, and an arbitrary driver
// panic is isolated into an error naming the driver instead of killing
// the process. A nil error means the artifact is complete and
// byte-identical to an unbounded run.
func (r Runner) RunCtx(ctx context.Context, cfg Config) (art *report.Artifact, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg.ctx = ctx
	defer func() {
		rec := recover()
		if rec == nil {
			return
		}
		art = nil
		if aerr := engine.Recovered(rec); aerr != nil {
			err = fmt.Errorf("experiments %s: %w", r.ID, aerr)
			return
		}
		err = fmt.Errorf("experiments %s: driver panicked: %v\n%s", r.ID, rec, debug.Stack())
	}()
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("experiments %s: %w", r.ID, cerr)
	}
	return r.Run(cfg), nil
}

// RunErr is RunCtx under cfg.Deadline: with a deadline set the whole
// driver — recording, screening, timing — must finish within it or
// fail with a typed deadline error (partial results are reported
// through engine.CancelError's completed-unit list, never as partial
// artifacts).
func (r Runner) RunErr(cfg Config) (*report.Artifact, error) {
	//lint:ignore ctxflow RunErr is the deadline root: it mints the run context from cfg.Deadline, there is no caller context to thread
	ctx := context.Background()
	if cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
		defer cancel()
	}
	return r.RunCtx(ctx, cfg)
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"fig1", "IPC vs pipeline scaling, SPECint-like suite", Fig1},
		{"table1", "SPECint-like summary statistics", Table1},
		{"fig2", "Cumulative mispredictions of H2P heavy hitters", Fig2},
		{"table2", "LCF summary branch statistics", Table2},
		{"fig3", "LCF distributions: mispredictions, executions, accuracy", Fig3},
		{"fig4", "Accuracy vs dynamic executions; per-bin stddev", Fig4},
		{"fig5", "IPC vs pipeline scaling, LCF suite", Fig5},
		{"table3", "Dependency branches of top H2P heavy hitters", Table3},
		{"fig6", "History-position distributions of dependency branches", Fig6},
		{"fig7", "TAGE storage scaling 8KB-1024KB x pipeline scale", Fig7},
		{"fig8", "IPC opportunity remaining after perfecting frequent branches", Fig8},
		{"fig9", "Median recurrence interval distribution", Fig9},
		{"fig10", "Register values preceding top H2P executions", Fig10},
		{"alloc", "TAGE allocation churn: H2P vs non-H2P (§IV-A)", Alloc},
		{"cnn", "CNN helper predictors on H2P branches (§V-C)", CNN},
		{"phasecond", "Extension: phase-conditioned rare-branch statistics (§V-B)", PhaseCond},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// --- shared helpers ----------------------------------------------------

// recordSuite materializes one trace per workload (input 0), one engine
// work unit per workload, through the configured trace cache.
func recordSuite(cfg Config, pool *engine.Pool, specs []*workload.Spec) map[string]trace.Replayable {
	bufs := engine.MapSlice(pool, specs, func(s *workload.Spec, _ int) trace.Replayable {
		return cfg.RecordTrace(s, 0)
	})
	out := make(map[string]trace.Replayable, len(specs))
	for i, s := range specs {
		out[s.Name] = bufs[i]
	}
	return out
}

// observeSliced replays a recorded trace through predictor-free
// observers split at slice boundaries across pool workers, merging the
// shard observers in trace order. mk builds one observer per shard;
// merge folds src (the later shard) into dst. Splitting at slice
// boundaries with global indices (core.ObserveFrom) makes exact-merge
// observers — BBV collectors, slice collectors — byte-identical to a
// sequential core.Observe pass at any worker count, which is what lets
// one long trace's analysis use every worker instead of one.
func observeSliced[O core.Observer](cfg Config, pool *engine.Pool, tr trace.Replayable, mk func() O, merge func(dst, src O)) O {
	sliceLen := int(cfg.SliceLen)
	nSlices := (tr.Len() + sliceLen - 1) / sliceLen
	shards := pool.Workers()
	if shards > nSlices {
		shards = nSlices
	}
	if shards <= 1 {
		o := mk()
		core.Observe(tr.Stream(), o)
		return o
	}
	per := (nSlices + shards - 1) / shards
	parts := engine.Map(pool, shards, func(w int) O {
		lo := w * per * sliceLen
		hi := lo + per*sliceLen
		o := mk()
		core.ObserveFrom(tr.Range(lo, hi).Stream(), uint64(lo), o)
		return o
	})
	acc := parts[0]
	for _, p := range parts[1:] {
		merge(acc, p)
	}
	return acc
}

// branchTotal pairs a static branch IP with its whole-run counters.
type branchTotal struct {
	IP uint64
	core.BranchStats
}

// sortedTotals returns a collector's per-branch totals in ascending IP
// order. Iterating the Totals map directly is randomized by the runtime,
// which makes any float accumulation over it nondeterministic between
// runs; every driver that folds totals into float sums or shared
// histograms goes through this instead.
func sortedTotals(col *core.Collector) []branchTotal {
	m := col.Totals()
	out := make([]branchTotal, 0, len(m))
	for ip, b := range m {
		out = append(out, branchTotal{ip, *b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out
}

// screenH2Ps runs TAGE-SC-L 8KB over a trace and returns the screened
// H2P report plus the collector.
func screenH2Ps(tr trace.Replayable, sliceLen uint64) (*core.H2PReport, *core.Collector) {
	col := core.NewCollector(sliceLen)
	core.Run(tr.Stream(), tage.New(tage.Config8KB()), col)
	rep := core.PaperCriteria().Scaled(sliceLen).Screen(col)
	return rep, col
}

// screened pairs one screening pass's outputs for memoization.
type screened struct {
	rep *core.H2PReport
	col *core.Collector
}

// screenBranches screens one workload input under the baseline
// predictor, memoized in the shared cache: ten drivers screen the same
// input-0 traces under identical criteria, so one TAGE run per
// (workload, input) serves them all. tr must be the (s, input) trace at
// the configured budget — callers pass the buffer they already hold so
// the uncached path records exactly as often as before. The returned
// report and collector are shared across drivers and must be treated as
// read-only (all their methods are).
func screenBranches(cfg Config, s *workload.Spec, input int, tr trace.Replayable) (*core.H2PReport, *core.Collector) {
	key := fmt.Sprintf("h2p/%s/%d/%d/%d", s.Name, input, cfg.Budget, cfg.SliceLen)
	v := cfg.Cache.Memo(key, func() any {
		rep, col := screenH2Ps(tr, cfg.SliceLen)
		return screened{rep, col}
	}).(screened)
	return v.rep, v.col
}

// ipcRun times a trace on the pipeline at the given scale.
func ipcRun(tr trace.Replayable, scale int, opt pipeline.Options) pipeline.Result {
	return pipeline.New(pipeline.Skylake().Scaled(scale)).Run(tr.Stream(), opt)
}

// ipcCell is ipcRun memoized in the shared cache. sig names the
// prediction regime (e.g. "tage-8kb", "perfect"); it must uniquely
// determine opt's behaviour together with (workload, budget, scale),
// since fig5/fig7/fig8 re-time identical (workload, scale, regime)
// cells. tr must be the workload's input-0 trace at the configured
// budget. opt is invoked only on a miss — predictors are stateful, so
// each computed cell constructs its own.
func ipcCell(cfg Config, s *workload.Spec, tr trace.Replayable, scale int, sig string, opt func() pipeline.Options) pipeline.Result {
	key := fmt.Sprintf("ipc/%s/0/%d/%d/%s", s.Name, cfg.Budget, scale, sig)
	return cfg.Cache.Memo(key, func() any {
		return ipcRun(tr, scale, opt())
	}).(pipeline.Result)
}

func tagePred(kb int) pipeline.Options {
	return pipeline.Options{Predictor: tage.New(tage.NewConfig(kb))}
}

// geomean of a slice (positives assumed).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func d(v int) string       { return fmt.Sprintf("%d", v) }
func u(v uint64) string    { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// sortedIPs returns map keys in ascending order.
func sortedIPs(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for ip := range m {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
