// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver regenerates its artifact from scratch
// — workload synthesis, prediction, screening, timing — and returns a
// report.Artifact whose shape is compared against the published result in
// EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"math"
	"sort"

	"branchlab/internal/core"
	"branchlab/internal/engine"
	"branchlab/internal/pipeline"
	"branchlab/internal/report"
	"branchlab/internal/tage"
	"branchlab/internal/trace"
	"branchlab/internal/workload"
)

// Config scales every experiment. The paper's traces are 10B
// instructions with 30M-instruction slices; these budgets shrink both
// while core.Criteria.Scaled keeps the screening thresholds equivalent.
type Config struct {
	Budget     uint64 // instructions per workload run
	SliceLen   uint64 // slice length for screening/phases
	PipeScales []int  // pipeline capacity scaling factors
	StorageKB  []int  // TAGE-SC-L budgets for the limit study
	MaxInputs  int    // cap on application inputs per workload
	Workers    int    // engine workers per experiment (0 = NumCPU)
}

// Pool returns the engine pool the experiment's work units run on.
func (c Config) Pool() *engine.Pool { return engine.New(c.Workers) }

// Default returns the configuration used for EXPERIMENTS.md.
func Default() Config {
	return Config{
		Budget:     3_000_000,
		SliceLen:   750_000,
		PipeScales: []int{1, 2, 4, 8, 16, 32},
		StorageKB:  []int{8, 64, 128, 256, 512, 1024},
		MaxInputs:  3,
	}
}

// Quick returns a reduced configuration for tests and smoke runs.
func Quick() Config {
	return Config{
		Budget:     400_000,
		SliceLen:   200_000,
		PipeScales: []int{1, 4, 16},
		StorageKB:  []int{8, 64, 1024},
		MaxInputs:  2,
	}
}

// Runner is a named experiment driver.
type Runner struct {
	ID    string
	Title string
	Run   func(Config) *report.Artifact
}

// All returns every experiment in paper order.
func All() []Runner {
	return []Runner{
		{"fig1", "IPC vs pipeline scaling, SPECint-like suite", Fig1},
		{"table1", "SPECint-like summary statistics", Table1},
		{"fig2", "Cumulative mispredictions of H2P heavy hitters", Fig2},
		{"table2", "LCF summary branch statistics", Table2},
		{"fig3", "LCF distributions: mispredictions, executions, accuracy", Fig3},
		{"fig4", "Accuracy vs dynamic executions; per-bin stddev", Fig4},
		{"fig5", "IPC vs pipeline scaling, LCF suite", Fig5},
		{"table3", "Dependency branches of top H2P heavy hitters", Table3},
		{"fig6", "History-position distributions of dependency branches", Fig6},
		{"fig7", "TAGE storage scaling 8KB-1024KB x pipeline scale", Fig7},
		{"fig8", "IPC opportunity remaining after perfecting frequent branches", Fig8},
		{"fig9", "Median recurrence interval distribution", Fig9},
		{"fig10", "Register values preceding top H2P executions", Fig10},
		{"alloc", "TAGE allocation churn: H2P vs non-H2P (§IV-A)", Alloc},
		{"cnn", "CNN helper predictors on H2P branches (§V-C)", CNN},
		{"phasecond", "Extension: phase-conditioned rare-branch statistics (§V-B)", PhaseCond},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if r.ID == id {
			return r, true
		}
	}
	return Runner{}, false
}

// --- shared helpers ----------------------------------------------------

// recordSuite materializes one trace per workload (input 0), one engine
// work unit per workload.
func recordSuite(pool *engine.Pool, specs []*workload.Spec, budget uint64) map[string]*trace.Buffer {
	bufs := engine.MapSlice(pool, specs, func(s *workload.Spec, _ int) *trace.Buffer {
		return s.Record(0, budget)
	})
	out := make(map[string]*trace.Buffer, len(specs))
	for i, s := range specs {
		out[s.Name] = bufs[i]
	}
	return out
}

// branchTotal pairs a static branch IP with its whole-run counters.
type branchTotal struct {
	IP uint64
	core.BranchStats
}

// sortedTotals returns a collector's per-branch totals in ascending IP
// order. Iterating the Totals map directly is randomized by the runtime,
// which makes any float accumulation over it nondeterministic between
// runs; every driver that folds totals into float sums or shared
// histograms goes through this instead.
func sortedTotals(col *core.Collector) []branchTotal {
	m := col.Totals()
	out := make([]branchTotal, 0, len(m))
	for ip, b := range m {
		out = append(out, branchTotal{ip, *b})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].IP < out[j].IP })
	return out
}

// screenH2Ps runs TAGE-SC-L 8KB over a trace and returns the screened
// H2P report plus the collector.
func screenH2Ps(tr *trace.Buffer, sliceLen uint64) (*core.H2PReport, *core.Collector) {
	col := core.NewCollector(sliceLen)
	core.Run(tr.Stream(), tage.New(tage.Config8KB()), col)
	rep := core.PaperCriteria().Scaled(sliceLen).Screen(col)
	return rep, col
}

// ipcRun times a trace on the pipeline at the given scale.
func ipcRun(tr *trace.Buffer, scale int, opt pipeline.Options) pipeline.Result {
	return pipeline.New(pipeline.Skylake().Scaled(scale)).Run(tr.Stream(), opt)
}

func tagePred(kb int) pipeline.Options {
	return pipeline.Options{Predictor: tage.New(tage.NewConfig(kb))}
}

// geomean of a slice (positives assumed).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string  { return fmt.Sprintf("%.4f", v) }
func d(v int) string       { return fmt.Sprintf("%d", v) }
func u(v uint64) string    { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// sortedIPs returns map keys in ascending order.
func sortedIPs(m map[uint64]bool) []uint64 {
	out := make([]uint64, 0, len(m))
	for ip := range m {
		out = append(out, ip)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
