package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// The experiment drivers are integration tests of the whole system: each
// run synthesizes workloads, drives predictors and the pipeline, and must
// reproduce the paper's qualitative shape. Tests use the Quick config.

func quickCfg() Config {
	c := Quick()
	c.Budget = 300_000
	c.SliceLen = 150_000
	return c
}

func TestRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, r := range All() {
		if ids[r.ID] {
			t.Errorf("duplicate experiment id %q", r.ID)
		}
		ids[r.ID] = true
		if r.Title == "" || r.Run == nil {
			t.Errorf("experiment %q incomplete", r.ID)
		}
	}
	// Every table and figure of the paper must be covered.
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig8", "fig9", "fig10", "table1", "table2", "table3", "alloc", "cnn", "phasecond"} {
		if !ids[want] {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
	if _, ok := ByID("fig1"); !ok {
		t.Error("ByID(fig1) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) should fail")
	}
}

func parseRel(t *testing.T, tab string, row string, col int) float64 {
	t.Helper()
	for _, line := range strings.Split(tab, "\n") {
		if strings.HasPrefix(line, row) {
			fields := strings.Fields(strings.TrimPrefix(line, row))
			if col >= len(fields) {
				t.Fatalf("row %q has %d fields", row, len(fields))
			}
			var v float64
			if _, err := sscan(fields[col], &v); err != nil {
				t.Fatalf("parse %q: %v", fields[col], err)
			}
			return v
		}
	}
	t.Fatalf("row %q not found in:\n%s", row, tab)
	return 0
}

func sscan(s string, v *float64) (int, error) {
	return fmtSscan(s, v)
}

func TestFig1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	a := Fig1(quickCfg())
	if len(a.Tables) == 0 {
		t.Fatal("no tables")
	}
	tab := a.Tables[0].String()
	baseAt1 := parseRel(t, tab, "TAGE-SC-L 8KB", 0)
	perfAt1 := parseRel(t, tab, "Perfect BP", 0)
	h2pAt1 := parseRel(t, tab, "Perfect H2Ps", 0)
	t64At1 := parseRel(t, tab, "TAGE-SC-L 64KB", 0)
	if baseAt1 != 1.0 {
		t.Errorf("baseline not normalized: %v", baseAt1)
	}
	// Ordering: base <= 64KB <= perfect-H2P <= perfect.
	if !(t64At1 >= baseAt1-0.01 && h2pAt1 > t64At1 && perfAt1 > h2pAt1) {
		t.Errorf("regime ordering broken: 8KB=%v 64KB=%v H2P=%v perfect=%v",
			baseAt1, t64At1, h2pAt1, perfAt1)
	}
	// Fig 1's core claim: substantial opportunity, mostly captured by
	// perfecting H2Ps on SPEC-like workloads.
	if perfAt1 < 1.08 {
		t.Errorf("perfect-BP opportunity too small at 1x: %v", perfAt1)
	}
	if (h2pAt1-1)/(perfAt1-1) < 0.4 {
		t.Errorf("H2P share of opportunity too small: %v of %v", h2pAt1-1, perfAt1-1)
	}
	// Scaling grows the opportunity (last scale column).
	lastCol := len(quickCfg().PipeScales) - 1
	baseEnd := parseRel(t, tab, "TAGE-SC-L 8KB", lastCol)
	perfEnd := parseRel(t, tab, "Perfect BP", lastCol)
	if perfEnd/baseEnd <= perfAt1/baseAt1 {
		t.Errorf("relative opportunity should grow with scale: %v -> %v",
			perfAt1/baseAt1, perfEnd/baseEnd)
	}
}

func TestFig5H2PShareSmallerThanSPEC(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := quickCfg()
	spec := Fig1(cfg)
	lcf := Fig5(cfg)
	shareOf := func(tabStr string) float64 {
		base := parseRel(t, tabStr, "TAGE-SC-L 8KB", 0)
		h2p := parseRel(t, tabStr, "Perfect H2Ps", 0)
		perf := parseRel(t, tabStr, "Perfect BP", 0)
		return (h2p - base) / (perf - base)
	}
	specShare := shareOf(spec.Tables[0].String())
	lcfShare := shareOf(lcf.Tables[0].String())
	// The paper's Fig 1 vs Fig 5 contrast: H2Ps explain most of the SPEC
	// opportunity but a far smaller share of the LCF opportunity.
	if lcfShare >= specShare {
		t.Errorf("LCF H2P share (%v) should be below SPEC share (%v)", lcfShare, specShare)
	}
	if lcfShare > 0.6 {
		t.Errorf("LCF H2P share %v too high (paper: ~0.38)", lcfShare)
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	a := Table2(quickCfg())
	s := a.Tables[0].String()
	if !strings.Contains(s, "game") || !strings.Contains(s, "MEAN") {
		t.Fatalf("table2 missing rows:\n%s", s)
	}
	// Spot-check the suite contrast: game has the largest footprint and
	// the lowest accuracy of the suite.
	gameAcc := parseRel(t, s, "game", 2)
	nosqlAcc := parseRel(t, s, "nosql", 2)
	if gameAcc >= nosqlAcc {
		t.Errorf("game acc (%v) should be lowest; nosql %v", gameAcc, nosqlAcc)
	}
}

func TestFig3Distributions(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	a := Fig3(quickCfg())
	if len(a.Tables) != 3 {
		t.Fatalf("fig3 should render 3 distributions, got %d", len(a.Tables))
	}
	// The headline properties are asserted via the notes content.
	joined := strings.Join(a.Notes, "\n")
	if !strings.Contains(joined, "branches with <100 execs") {
		t.Errorf("missing notes: %s", joined)
	}
}

func TestFig4SpreadShrinksWithExecs(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	a := Fig4(quickCfg())
	if len(a.Notes) == 0 {
		t.Fatal("fig4 missing note")
	}
	// Parse "first bin stddev X vs next bin Y".
	var first, next float64
	if _, err := fmtSscanf(a.Notes[0], "first bin stddev %f vs next bin %f", &first, &next); err != nil {
		t.Fatalf("parse note %q: %v", a.Notes[0], err)
	}
	if first <= next {
		t.Errorf("accuracy spread should shrink with executions: %v -> %v", first, next)
	}
	if first < 0.15 {
		t.Errorf("first-bin spread %v too small (paper: 0.35)", first)
	}
}

func TestTable3AndFig6DependencyVariation(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := quickCfg()
	a := Table3(cfg)
	s := a.Tables[0].String()
	mcfFound := false
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "605.mcf_s") && !strings.Contains(line, "-") {
			mcfFound = true
			fields := strings.Fields(line)
			// benchmark target deps min max pos/dep
			var deps, minPos, maxPos float64
			fmtSscan(fields[2], &deps)
			fmtSscan(fields[3], &minPos)
			fmtSscan(fields[4], &maxPos)
			if deps < 1 {
				t.Error("mcf top H2P has no dependency branches")
			}
			if maxPos <= minPos {
				t.Errorf("no position variation: min %v max %v", minPos, maxPos)
			}
		}
	}
	if !mcfFound {
		t.Fatalf("mcf row missing:\n%s", s)
	}
}

func TestFig9HasLongIntervals(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := quickCfg()
	// Recurrence across phase revisits needs at least two full passes
	// through the phase schedule.
	cfg.Budget = 900_000
	a := Fig9(cfg)
	s := a.Tables[0].String()
	// Long-interval bins (>=10K) must hold a meaningful fraction of IPs.
	long := 0.0
	for _, row := range a.Tables[0].Rows {
		switch row[0] {
		case "10K-100K", "100K-1M", "1M-2M", "2M-4M", "4M-8M":
			var v float64
			fmtSscan(row[1], &v)
			long += v
		}
	}
	if long < 0.05 {
		t.Errorf("long recurrence intervals hold only %v of IPs:\n%s", long, s)
	}
}

func TestAllocChurnContrast(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	a := Alloc(quickCfg())
	s := a.Tables[0].String()
	h2pMed := parseRel(t, s, "H2P", 1)
	otherMed := parseRel(t, s, "non-H2P", 1)
	if h2pMed <= otherMed {
		t.Errorf("H2P median allocations (%v) must exceed non-H2P (%v)", h2pMed, otherMed)
	}
	if h2pMed < 10*otherMed {
		t.Errorf("churn contrast too weak: %v vs %v (paper: 13,093 vs 4)", h2pMed, otherMed)
	}
}

func TestQuickAndDefaultConfigsSane(t *testing.T) {
	for _, cfg := range []Config{Default(), Quick()} {
		if cfg.Budget == 0 || cfg.SliceLen == 0 || cfg.Budget < cfg.SliceLen {
			t.Errorf("bad config %+v", cfg)
		}
		if len(cfg.PipeScales) == 0 || cfg.PipeScales[0] != 1 {
			t.Errorf("pipe scales must start at 1x: %+v", cfg.PipeScales)
		}
		if len(cfg.StorageKB) == 0 || cfg.StorageKB[0] != 8 {
			t.Errorf("storage sweep must start at 8KB: %+v", cfg.StorageKB)
		}
	}
}

// fmt shims keep the test imports tidy.
func fmtSscan(s string, v *float64) (int, error)            { return fmt.Sscan(s, v) }
func fmtSscanf(s, f string, vs ...interface{}) (int, error) { return fmt.Sscanf(s, f, vs...) }
