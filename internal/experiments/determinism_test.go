package experiments

import (
	"runtime"
	"strings"
	"testing"
	"unsafe"

	"branchlab/internal/trace"
	"branchlab/internal/tracecache"
)

// instBytes mirrors the cache's per-instruction accounting unit.
const instBytes = int64(unsafe.Sizeof(trace.Inst{}))

// The engine's contract is that a parallel run merges work-unit results
// in submission order, so the rendered artifact of every experiment is
// byte-identical to a 1-worker run. fig5 exercises the trace-sharing
// IPC sweeps, table3 the per-benchmark analysis units.

func parallelWorkers() int {
	if n := runtime.NumCPU(); n > 1 {
		return n
	}
	// On a single-core host goroutine interleaving still exercises the
	// scheduler's merge paths.
	return 4
}

func TestParallelArtifactsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	for _, id := range []string{"fig5", "table3"} {
		t.Run(id, func(t *testing.T) {
			r, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not found", id)
			}
			seq := quickCfg()
			seq.Workers = 1
			par := quickCfg()
			par.Workers = parallelWorkers()
			want := r.Run(seq).String()
			got := r.Run(par).String()
			if want != got {
				t.Errorf("parallel artifact differs from sequential:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
					want, par.Workers, got)
			}
		})
	}
}

// The trace cache's contract is that serving a recording from memory —
// including coalescing concurrent recordings and replaying one buffer
// across drivers — cannot change any artifact byte. This runs the full
// registry (`-run all`) three ways: uncached sequential, cached
// sequential, cached parallel; all three renderings must be identical,
// and the cached runs must have recorded each (workload, input) exactly
// once (misses == resident entries, no evictions, every other request a
// hit) — the invocation-level dedup the cache exists to provide.
func TestCacheRunAllByteIdenticalAndRecordsOnce(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := quickCfg()
	cfg.Budget = 100_000
	cfg.SliceLen = 50_000

	runAll := func(cfg Config) string {
		var b strings.Builder
		for _, r := range All() {
			b.WriteString(r.Run(cfg).String())
			b.WriteByte('\n')
		}
		return b.String()
	}

	uncached := cfg
	uncached.Workers = 1
	want := runAll(uncached)

	for _, tc := range []struct {
		name    string
		workers int
		shards  int
	}{
		{"cache/workers=1", 1, 0},
		{"cache/parallel", parallelWorkers(), 0},
		// Sharded recording must leave every artifact byte untouched:
		// the recordings it produces are byte-identical to sequential.
		{"cache/parallel/recshards", parallelWorkers(), 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cached := cfg
			cached.Workers = tc.workers
			cached.RecordShards = tc.shards
			cached.Cache = tracecache.New(0)
			if got := runAll(cached); got != want {
				t.Errorf("cached artifacts differ from uncached (workers=%d)", tc.workers)
			}
			st := cached.Cache.Stats()
			if st.SliceEvictions != 0 {
				t.Fatalf("unbounded cache evicted %d slices", st.SliceEvictions)
			}
			if st.Misses != uint64(st.Entries) {
				t.Errorf("recorded %d traces for %d distinct (workload, input) keys: some trace was recorded more than once",
					st.Misses, st.Entries)
			}
			if st.Hits+st.Coalesced == 0 {
				t.Error("cache served no repeat requests; drivers are not recording through it")
			}
			if st.MemoHits == 0 {
				t.Error("memo served no repeat screenings/IPC cells; drivers are not memoizing derived results")
			}
		})
	}
}

// Slice-granular eviction must also be byte-invisible: a cache capped
// far below one trace's footprint, at a slice size that splits every
// trace, serves every driver re-materialized slices — and the full
// registry output must still match the uncached reference, with the
// memoized derived results computed from those re-materialized inputs.
func TestSliceEvictionRunAllByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := quickCfg()
	cfg.Budget = 100_000
	cfg.SliceLen = 50_000

	runAll := func(cfg Config) string {
		var b strings.Builder
		for _, r := range All() {
			b.WriteString(r.Run(cfg).String())
			b.WriteByte('\n')
		}
		return b.String()
	}

	uncached := cfg
	uncached.Workers = 1
	want := runAll(uncached)

	for _, tc := range []struct {
		name       string
		capInsts   int64 // cap in instructions' worth of slice bytes
		sliceInsts uint64
		ckptInsts  uint64 // checkpoint spacing (0 = skim-only refills)
		workers    int
	}{
		{"cap=2slices/slice=25k", 50_000, 25_000, 0, 1},
		{"cap=1slice/slice=40k", 40_000, 40_000, 0, 1},
		{"cap=2slices/slice=25k/parallel", 50_000, 25_000, 0, parallelWorkers()},
		// Checkpointed refills: resume-from-checkpoint must be as
		// byte-invisible as the skim path it replaces, at a spacing
		// matching the slice size and at an unaligned one.
		{"cap=2slices/slice=25k/ckpt=25k", 50_000, 25_000, 25_000, 1},
		{"cap=2slices/slice=25k/ckpt=10k/parallel", 50_000, 25_000, 10_000, parallelWorkers()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			capped := cfg
			capped.Workers = tc.workers
			capped.CacheSlice = tc.sliceInsts
			capped.CkptSlice = tc.ckptInsts
			capped.Cache = tracecache.NewSliced(tc.capInsts*instBytes, tc.sliceInsts)
			if got := runAll(capped); got != want {
				t.Errorf("capped slice-cache artifacts differ from uncached reference")
			}
			st := capped.Cache.Stats()
			if st.SliceEvictions == 0 || st.SliceRerecords == 0 {
				t.Fatalf("cap forced no slice eviction/re-record (stats %+v); the regime under test did not engage", st)
			}
			if tc.ckptInsts > 0 && st.SliceResumes == 0 {
				t.Fatalf("checkpointed run resumed no refill from a checkpoint (stats %+v); the regime under test did not engage", st)
			}
			if tc.ckptInsts == 0 && st.SliceResumes != 0 {
				t.Fatalf("checkpoint-free run somehow resumed %d refills", st.SliceResumes)
			}
			if st.BytesInUse > st.CapBytes {
				t.Errorf("resident bytes %d exceed cap %d", st.BytesInUse, st.CapBytes)
			}
		})
	}
}

// A second 1-worker run must also match: the drivers may not depend on
// map iteration order or any other per-process randomness.
func TestSequentialArtifactsReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	// fig4 folds per-branch accuracies into float bins and historically
	// iterated a map while doing it; it is the regression canary here.
	for _, id := range []string{"fig4", "table2"} {
		t.Run(id, func(t *testing.T) {
			r, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not found", id)
			}
			cfg := quickCfg()
			cfg.Workers = 1
			if a, b := r.Run(cfg).String(), r.Run(cfg).String(); a != b {
				t.Errorf("two sequential runs differ:\n%s\n---\n%s", a, b)
			}
		})
	}
}
