package experiments

import (
	"runtime"
	"testing"
)

// The engine's contract is that a parallel run merges work-unit results
// in submission order, so the rendered artifact of every experiment is
// byte-identical to a 1-worker run. fig5 exercises the trace-sharing
// IPC sweeps, table3 the per-benchmark analysis units.

func parallelWorkers() int {
	if n := runtime.NumCPU(); n > 1 {
		return n
	}
	// On a single-core host goroutine interleaving still exercises the
	// scheduler's merge paths.
	return 4
}

func TestParallelArtifactsByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	for _, id := range []string{"fig5", "table3"} {
		t.Run(id, func(t *testing.T) {
			r, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not found", id)
			}
			seq := quickCfg()
			seq.Workers = 1
			par := quickCfg()
			par.Workers = parallelWorkers()
			want := r.Run(seq).String()
			got := r.Run(par).String()
			if want != got {
				t.Errorf("parallel artifact differs from sequential:\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
					want, par.Workers, got)
			}
		})
	}
}

// A second 1-worker run must also match: the drivers may not depend on
// map iteration order or any other per-process randomness.
func TestSequentialArtifactsReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	// fig4 folds per-branch accuracies into float bins and historically
	// iterated a map while doing it; it is the regression canary here.
	for _, id := range []string{"fig4", "table2"} {
		t.Run(id, func(t *testing.T) {
			r, ok := ByID(id)
			if !ok {
				t.Fatalf("experiment %q not found", id)
			}
			cfg := quickCfg()
			cfg.Workers = 1
			if a, b := r.Run(cfg).String(), r.Run(cfg).String(); a != b {
				t.Errorf("two sequential runs differ:\n%s\n---\n%s", a, b)
			}
		})
	}
}
