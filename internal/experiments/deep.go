package experiments

import (
	"fmt"
	"sort"

	"branchlab/internal/core"
	"branchlab/internal/depgraph"
	"branchlab/internal/engine"
	"branchlab/internal/phase"
	"branchlab/internal/report"
	"branchlab/internal/stats"
	"branchlab/internal/trace"
	"branchlab/internal/workload"
)

// topHeavyHitter screens a workload's input-0 trace (memoized, shared
// with the other drivers screening the same trace) and returns the top
// H2P by dynamic executions (0 if none). tr must be that trace; drivers
// that need it afterwards pass the buffer they already hold.
func topHeavyHitter(cfg Config, s *workload.Spec, tr trace.Replayable) uint64 {
	rep, _ := screenBranches(cfg, s, 0, tr)
	hh := rep.HeavyHitters()
	if len(hh) == 0 {
		return 0
	}
	return hh[0].IP
}

// depAnalysis walks a trace through the dependency analyzer for one
// target branch, memoized in the shared cache: table3 and fig6 analyze
// the same (workload, target) pairs. The analyzer consumes only
// trace-visible operands (its Branch callback is a no-op), so the pass
// is predictor-free. The returned analyzer is shared and read-only.
func depAnalysis(cfg Config, s *workload.Spec, tr trace.Replayable, target uint64) *depgraph.Analyzer {
	key := fmt.Sprintf("depgraph/%s/0/%d/%d/%d/%#x",
		s.Name, cfg.Budget, depgraph.DefaultWindow, 4000, target)
	return cfg.Cache.Memo(key, func() any {
		an := depgraph.New(depgraph.DefaultWindow, 4000, target)
		core.Observe(tr.Stream(), an)
		return an
	}).(*depgraph.Analyzer)
}

// Table3 reproduces Table III: for the top H2P heavy hitter of each
// SPECint-like benchmark, the number of distinct dependency branches and
// the minimum/maximum global-history positions at which they appear.
func Table3(cfg Config) *report.Artifact {
	a := &report.Artifact{ID: "table3", Title: "Dependency branches of top H2P heavy hitters (5000-instruction window)"}
	tab := report.NewTable("", "benchmark", "target", "dep branches", "min pos", "max pos", "positions/dep")
	// One work unit per benchmark: screen for the top H2P, then walk the
	// same trace through the dependency analyzer.
	rows := engine.MapSlice(cfg.Pool(), workload.SPECint2017Like(),
		func(s *workload.Spec, _ int) []string {
			tr := cfg.RecordTrace(s, 0)
			target := topHeavyHitter(cfg, s, tr)
			if target == 0 {
				return []string{s.Name, "-", "0", "-", "-", "-"}
			}
			an := depAnalysis(cfg, s, tr, target)
			sum := an.Summarize(target)
			return []string{s.Name, fmt.Sprintf("%#x", target), d(sum.DepBranches),
				d(sum.MinPos), d(sum.MaxPos), f2(sum.PositionsPerDep)}
		})
	for _, row := range rows {
		tab.AddRow(row...)
	}
	a.Tables = append(a.Tables, tab)
	a.Notes = append(a.Notes,
		"paper: dependency counts 3-484; max positions 34-1,879 — within TAGE-SC-L 64KB's 3,000-bit history, yet poorly predicted")
	return a
}

// Fig6 reproduces Fig 6: the distribution of history positions at which
// each dependency branch of a top H2P appears. High spread per dependency
// branch is the paper's explanation for why exact pattern matching fails.
func Fig6(cfg Config) *report.Artifact {
	a := &report.Artifact{ID: "fig6", Title: "History-position distributions of dependency branches"}
	// One work unit per benchmark producing its whole table (nil when the
	// benchmark has no H2P to analyze).
	tables := engine.MapSlice(cfg.Pool(), workload.SPECint2017Like()[:4],
		func(s *workload.Spec, _ int) *report.Table { return fig6Table(s, cfg) })
	for _, tab := range tables {
		if tab != nil {
			a.Tables = append(a.Tables, tab)
		}
	}
	a.Notes = append(a.Notes,
		"each dependency branch appears at many positions with non-uniform recurrence — position-specific correlation cannot pin it down")
	return a
}

// fig6Table builds one benchmark's dependency-position table.
func fig6Table(s *workload.Spec, cfg Config) *report.Table {
	tr := cfg.RecordTrace(s, 0)
	target := topHeavyHitter(cfg, s, tr)
	if target == 0 {
		return nil
	}
	an := depAnalysis(cfg, s, tr, target)
	positions := an.Positions(target)
	// Group by dependency branch.
	type depStats struct {
		ip        uint64
		total     uint64
		positions []int
	}
	byDep := map[uint64]*depStats{}
	for _, p := range positions {
		ds := byDep[p.DepIP]
		if ds == nil {
			ds = &depStats{ip: p.DepIP}
			byDep[p.DepIP] = ds
		}
		ds.total += p.Count
		ds.positions = append(ds.positions, p.Pos)
	}
	deps := make([]*depStats, 0, len(byDep))
	for _, ds := range byDep {
		deps = append(deps, ds)
	}
	// Occurrence order with an IP tie-break: the map above feeds the sort
	// in randomized order, so without the tie-break equal-count deps
	// would land in different rows run to run.
	sort.Slice(deps, func(i, j int) bool {
		if deps[i].total != deps[j].total {
			return deps[i].total > deps[j].total
		}
		return deps[i].ip < deps[j].ip
	})
	tab := report.NewTable(fmt.Sprintf("%s target %#x", s.Name, target),
		"dep branch", "occurrences", "distinct positions", "min", "max")
	for i, ds := range deps {
		if i >= 8 {
			break
		}
		minP, maxP := ds.positions[0], ds.positions[0]
		for _, p := range ds.positions {
			if p < minP {
				minP = p
			}
			if p > maxP {
				maxP = p
			}
		}
		tab.AddRow(fmt.Sprintf("%#x", ds.ip), u(ds.total), d(len(ds.positions)), d(minP), d(maxP))
	}
	return tab
}

// Fig9 reproduces Fig 9: the distribution of per-branch median recurrence
// intervals over the LCF dataset, whose mass at 100K-1M instructions is
// the paper's evidence for exploitable long-timescale phases.
func Fig9(cfg Config) *report.Artifact {
	a := &report.Artifact{ID: "fig9", Title: "Median recurrence interval (MRI) distribution, LCF"}
	// One tracker per workload. Sharing a single tracker across the suite
	// (as this driver originally did) is wrong as well as unparallelizable:
	// every run restarts the instruction index at 0 while all workloads
	// share the 0x400000 IP space, so a branch IP carried over from the
	// previous workload makes `i - last` underflow and its median land in
	// the overflow bin. Per-workload trackers keep each (workload, IP)
	// distribution separate; the merge bins every median into one
	// suite-wide histogram.
	trackers := engine.MapSlice(cfg.Pool(), workload.LCFLike(),
		func(s *workload.Spec, _ int) *phase.RecurrenceTracker {
			tracker := phase.NewRecurrenceTracker()
			tr := cfg.RecordTrace(s, 0)
			core.Observe(tr.Stream(), tracker)
			return tracker
		})
	h := stats.NewHistogram(phase.MRIBins...)
	for _, tracker := range trackers {
		for _, m := range tracker.MedianIntervals() {
			h.Add(m)
		}
	}
	tab := report.NewTable("", "MRI bin", "fraction of static branch IPs")
	fr := h.Fraction()
	peak, peakIdx := 0.0, 0
	for i := range h.Counts {
		tab.AddRow(h.BinLabel(i), f4(fr[i]))
		// The paper's peak claim excludes the singleton bin.
		if i > 0 && fr[i] > peak {
			peak, peakIdx = fr[i], i
		}
	}
	a.Tables = append(a.Tables, tab)
	a.Notes = append(a.Notes, fmt.Sprintf(
		"non-singleton peak at bin %s (paper: 100K-1M at its 30M budget; bins scale with trace length)",
		h.BinLabel(peakIdx)))
	return a
}

// Fig10 reproduces Fig 10: the distribution of values written to the
// tracked registers immediately before executions of the top H2P of each
// benchmark — branch-specific, structured distributions that motivate
// value-aware helper predictors.
func Fig10(cfg Config) *report.Artifact {
	a := &report.Artifact{ID: "fig10", Title: "Register values preceding top H2P executions (18 tracked registers)"}
	// One work unit per benchmark producing its whole table.
	tables := engine.MapSlice(cfg.Pool(), workload.SPECint2017Like()[:6],
		func(s *workload.Spec, _ int) *report.Table { return fig10Table(s, cfg) })
	for _, tab := range tables {
		if tab != nil {
			a.Tables = append(a.Tables, tab)
		}
	}
	a.Notes = append(a.Notes,
		"distributions differ drastically across branches and carry recognizable structure (clustered values), as in the paper")
	return a
}

// fig10Table builds one benchmark's register-value table.
func fig10Table(s *workload.Spec, cfg Config) *report.Table {
	tr := cfg.RecordTrace(s, 0)
	target := topHeavyHitter(cfg, s, tr)
	if target == 0 {
		return nil
	}
	tracker := core.NewRegValueTracker(target, 8, 18)
	core.Observe(tr.Stream(), tracker)
	pts := tracker.Points()
	tab := report.NewTable(fmt.Sprintf("%s target %#x (%d executions)", s.Name, target, tracker.Execs()),
		"register", "distinct values", "top value", "top count")
	byReg := map[uint8][]core.RegValue{}
	for _, p := range pts {
		byReg[p.Reg] = append(byReg[p.Reg], p)
	}
	regs := make([]int, 0, len(byReg))
	for r := range byReg {
		regs = append(regs, int(r))
	}
	sort.Ints(regs)
	for _, r := range regs {
		vals := byReg[uint8(r)]
		top := vals[0]
		for _, v := range vals {
			if v.Count > top.Count {
				top = v
			}
		}
		tab.AddRow(fmt.Sprintf("r%d", r), d(len(vals)),
			fmt.Sprintf("%d", top.Value), u(top.Count))
	}
	return tab
}
