package experiments

import (
	"fmt"

	"branchlab/internal/engine"
	"branchlab/internal/pipeline"
	"branchlab/internal/report"
	"branchlab/internal/tage"
	"branchlab/internal/workload"
)

// Fig1 reproduces Fig 1: suite-geomean IPC relative to the baseline
// (TAGE-SC-L 8KB at 1x) as pipeline capacity scales, for four prediction
// regimes: TAGE-SC-L 8KB, TAGE-SC-L 64KB, perfect prediction of the H2P
// set, and perfect prediction of everything.
func Fig1(cfg Config) *report.Artifact {
	return ipcScalingFigure("fig1",
		"IPC vs pipeline capacity scaling (SPECint-like, relative to TAGE-SC-L 8KB at 1x)",
		workload.SPECint2017Like(), cfg)
}

// Fig5 reproduces Fig 5: the same study on the LCF suite, where perfect
// H2P prediction captures a much smaller share of the opportunity.
func Fig5(cfg Config) *report.Artifact {
	return ipcScalingFigure("fig5",
		"IPC vs pipeline capacity scaling (LCF, relative to TAGE-SC-L 8KB at 1x)",
		workload.LCFLike(), cfg)
}

func ipcScalingFigure(id, title string, specs []*workload.Spec, cfg Config) *report.Artifact {
	pool := cfg.Pool()
	traces := recordSuite(cfg, pool, specs)

	// Screen the H2P set per workload under the baseline predictor
	// (memoized: table drivers screen the same traces).
	sets := engine.MapSlice(pool, specs, func(s *workload.Spec, _ int) map[uint64]bool {
		rep, _ := screenBranches(cfg, s, 0, traces[s.Name])
		return rep.Set()
	})
	h2pSets := make(map[string]map[uint64]bool, len(specs))
	for i, s := range specs {
		h2pSets[s.Name] = sets[i]
	}

	regimes := []struct {
		name string
		sig  string
		opt  func(s *workload.Spec) pipeline.Options
	}{
		{"TAGE-SC-L 8KB", "tage-8kb", func(*workload.Spec) pipeline.Options { return tagePred(8) }},
		{"TAGE-SC-L 64KB", "tage-64kb", func(*workload.Spec) pipeline.Options { return tagePred(64) }},
		// The H2P set depends on the screening slice length, so it is
		// part of the regime signature.
		{"Perfect H2Ps", fmt.Sprintf("perfh2p/slice=%d", cfg.SliceLen), func(s *workload.Spec) pipeline.Options {
			return pipeline.Options{
				Predictor:  tage.New(tage.Config8KB()),
				PerfectIPs: h2pSets[s.Name],
			}
		}},
		{"Perfect BP", "perfect", func(*workload.Spec) pipeline.Options { return pipeline.Options{PerfectBP: true} }},
	}

	// One work unit per (regime, scale, workload) cell; cell index order
	// matches the sequential triple loop so the geomean folds see
	// workloads in suite order.
	nS, nW := len(cfg.PipeScales), len(specs)
	cells := engine.Map(pool, len(regimes)*nS*nW, func(i int) float64 {
		ri, si, wi := i/(nS*nW), (i/nW)%nS, i%nW
		s := specs[wi]
		reg := regimes[ri]
		return ipcCell(cfg, s, traces[s.Name], cfg.PipeScales[si], reg.sig,
			func() pipeline.Options { return reg.opt(s) }).IPC
	})

	// ipc[regime][scale] = geomean IPC.
	ipc := make([][]float64, len(regimes))
	for ri := range regimes {
		ipc[ri] = make([]float64, nS)
		for si := range cfg.PipeScales {
			base := (ri*nS + si) * nW
			ipc[ri][si] = geomean(cells[base : base+nW])
		}
	}
	base := ipc[0][0] // TAGE-SC-L 8KB at 1x

	a := &report.Artifact{ID: id, Title: title}
	tab := report.NewTable("Relative IPC (geomean over suite)",
		append([]string{"regime"}, scaleHeaders(cfg.PipeScales)...)...)
	chart := report.NewChart(title)
	for ri, reg := range regimes {
		row := []string{reg.name}
		xs := make([]float64, len(cfg.PipeScales))
		ys := make([]float64, len(cfg.PipeScales))
		for si := range cfg.PipeScales {
			rel := ipc[ri][si] / base
			row = append(row, f3(rel))
			xs[si] = float64(cfg.PipeScales[si])
			ys[si] = rel
		}
		tab.AddRow(row...)
		chart.Add(reg.name, xs, ys)
	}
	a.Tables = append(a.Tables, tab)
	a.Charts = append(a.Charts, chart)

	// The paper's headline numbers: opportunity at 1x and at 4x, and the
	// share of the opportunity attributable to H2Ps.
	for _, si := range []int{0, indexOf(cfg.PipeScales, 4)} {
		if si < 0 {
			continue
		}
		opp := ipc[3][si]/ipc[0][si] - 1
		h2pShare := 0.0
		if ipc[3][si] > ipc[0][si] {
			h2pShare = (ipc[2][si] - ipc[0][si]) / (ipc[3][si] - ipc[0][si])
		}
		a.Notes = append(a.Notes, fmt.Sprintf(
			"at %dx: perfect-BP IPC opportunity %s; perfect-H2P captures %s of it",
			cfg.PipeScales[si], pct(opp), pct(h2pShare)))
	}
	extra := ipc[1][0]/ipc[0][0] - 1
	a.Notes = append(a.Notes, fmt.Sprintf(
		"TAGE-SC-L 64KB over 8KB at 1x: %s additional IPC", pct(extra)))
	return a
}

// Fig7 reproduces Fig 7: for each LCF application, the fraction of the
// TAGE-8KB-to-perfect IPC gap closed by TAGE-SC-L at 8KB..1024KB, across
// pipeline scales.
func Fig7(cfg Config) *report.Artifact {
	pool := cfg.Pool()
	specs := workload.LCFLike()
	traces := recordSuite(cfg, pool, specs)
	a := &report.Artifact{ID: "fig7",
		Title: "Fraction of TAGE8->perfect IPC gap closed vs TAGE-SC-L storage"}

	// One work unit per (scale, workload) cell; each sweeps the storage
	// budgets against its own base/perfect gap. Cells are memoized, so
	// the TAGE-8KB/64KB and perfect runs shared with fig5 time once.
	nW := len(specs)
	rows := engine.Map(pool, len(cfg.PipeScales)*nW, func(i int) []float64 {
		scale, s := cfg.PipeScales[i/nW], specs[i%nW]
		tr := traces[s.Name]
		base := ipcCell(cfg, s, tr, scale, "tage-8kb", func() pipeline.Options { return tagePred(8) })
		perfect := ipcCell(cfg, s, tr, scale, "perfect", func() pipeline.Options { return pipeline.Options{PerfectBP: true} })
		gap := perfect.IPC - base.IPC
		fracs := make([]float64, len(cfg.StorageKB))
		for ki, kb := range cfg.StorageKB {
			if kb == 8 || gap <= 0 {
				continue
			}
			res := ipcCell(cfg, s, tr, scale, fmt.Sprintf("tage-%dkb", kb),
				func() pipeline.Options { return tagePred(kb) })
			fracs[ki] = (res.IPC - base.IPC) / gap
		}
		return fracs
	})

	for si, scale := range cfg.PipeScales {
		tab := report.NewTable(fmt.Sprintf("pipeline %dx", scale),
			append([]string{"application"}, kbHeaders(cfg.StorageKB)...)...)
		var maxClose float64
		for wi, s := range specs {
			row := []string{s.Name}
			for _, frac := range rows[si*nW+wi] {
				if frac > maxClose {
					maxClose = frac
				}
				row = append(row, f3(frac))
			}
			tab.AddRow(row...)
		}
		a.Tables = append(a.Tables, tab)
		a.Notes = append(a.Notes, fmt.Sprintf(
			"at %dx the best storage scaling closes %s of the gap", scale, pct(maxClose)))
	}
	return a
}

// Fig8 reproduces Fig 8: with the largest (1024KB) TAGE-SC-L, the
// fraction of the remaining IPC opportunity that survives even after
// perfectly predicting every branch with more than 1000 (and 100)
// dynamic executions — i.e. the share owed to rare branches.
func Fig8(cfg Config) *report.Artifact {
	pool := cfg.Pool()
	specs := workload.LCFLike()
	traces := recordSuite(cfg, pool, specs)
	kb := cfg.StorageKB[len(cfg.StorageKB)-1]
	a := &report.Artifact{ID: "fig8",
		Title: fmt.Sprintf("IPC opportunity remaining after perfecting frequent branches (TAGE-SC-L %dKB, 1x)", kb)}
	tab := report.NewTable("fraction of opportunity remaining",
		"application", "perfect >1000 execs", "perfect >100 execs")

	// One work unit per workload, each timing its four pipeline runs;
	// the base and perfect cells are memo hits when fig7 ran first.
	type fig8Row struct{ r1000, r100 float64 }
	results := engine.MapSlice(pool, specs, func(s *workload.Spec, _ int) fig8Row {
		tr := traces[s.Name]
		base := ipcCell(cfg, s, tr, 1, fmt.Sprintf("tage-%dkb", kb),
			func() pipeline.Options { return tagePred(kb) })
		perfect := ipcCell(cfg, s, tr, 1, "perfect",
			func() pipeline.Options { return pipeline.Options{PerfectBP: true} })
		gap := perfect.IPC - base.IPC
		rem := func(minExecs uint64) float64 {
			if gap <= 0 {
				return 0
			}
			res := ipcCell(cfg, s, tr, 1, fmt.Sprintf("minexec=%d/tage-%dkb", minExecs, kb),
				func() pipeline.Options {
					opt := tagePred(kb)
					opt.MinExecsPerfect = minExecs
					return opt
				})
			return (perfect.IPC - res.IPC) / gap
		}
		// The thresholds are defined against the paper's 30M-instruction
		// slices; scale them with the budget.
		scaleN := func(n uint64) uint64 {
			v := uint64(float64(n) * float64(cfg.Budget) / 30e6)
			if v < 8 {
				v = 8
			}
			return v
		}
		return fig8Row{r1000: rem(scaleN(1000)), r100: rem(scaleN(100))}
	})

	var sum1000, sum100 float64
	for i, s := range specs {
		sum1000 += results[i].r1000
		sum100 += results[i].r100
		tab.AddRow(s.Name, f3(results[i].r1000), f3(results[i].r100))
	}
	tab.AddRow("MEAN", f3(sum1000/float64(len(specs))), f3(sum100/float64(len(specs))))
	a.Tables = append(a.Tables, tab)
	a.Notes = append(a.Notes,
		"paper: on average 34.3% of the opportunity is due to branches with <1000 execs, 27.4% to <100")
	return a
}

func scaleHeaders(scales []int) []string {
	out := make([]string, len(scales))
	for i, s := range scales {
		out[i] = fmt.Sprintf("%dx", s)
	}
	return out
}

func kbHeaders(kbs []int) []string {
	out := make([]string, len(kbs))
	for i, kb := range kbs {
		out[i] = fmt.Sprintf("%dKB", kb)
	}
	return out
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}
