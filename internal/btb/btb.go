// Package btb models the front-end target-prediction structures that
// accompany a direction predictor in a real BPU: a set-associative
// branch target buffer for taken branches and indirect jumps, and a
// return address stack for call/return pairs. The pipeline model charges
// a fetch bubble when a taken branch's target is not known at fetch —
// a cost ChampSim models and IPC studies inherit.
package btb

import "branchlab/internal/trace"

// Config sizes the structures.
type Config struct {
	Sets int // BTB sets (power of two)
	Ways int // BTB associativity
	RAS  int // return-address-stack depth
}

// DefaultConfig matches a Skylake-class front end: 4K-entry 8-way BTB,
// 32-deep RAS.
func DefaultConfig() Config { return Config{Sets: 512, Ways: 8, RAS: 32} }

type entry struct {
	tag    uint64
	target uint64
	lru    uint64
	valid  bool
}

// Stats counts lookups and outcomes.
type Stats struct {
	Lookups    uint64
	Hits       uint64
	TargetMiss uint64 // hit, but stale target
	Misses     uint64
	RASCorrect uint64
	RASWrong   uint64
}

// BTB is the combined target predictor.
type BTB struct {
	cfg   Config
	table []entry
	clock uint64
	ras   []uint64
	rasSP int
	stats Stats
}

// New returns a BTB/RAS pair for the configuration.
func New(cfg Config) *BTB {
	if cfg.Sets <= 0 || cfg.Ways <= 0 {
		panic("btb: non-positive geometry")
	}
	// Round sets to a power of two.
	sets := 1
	for sets*2 <= cfg.Sets {
		sets *= 2
	}
	cfg.Sets = sets
	return &BTB{
		cfg:   cfg,
		table: make([]entry, cfg.Sets*cfg.Ways),
		ras:   make([]uint64, 0, cfg.RAS),
	}
}

// Stats returns accumulated counters.
func (b *BTB) Stats() Stats { return b.stats }

func (b *BTB) set(ip uint64) int {
	h := ip >> 2
	h ^= h >> 13
	return int(h) & (b.cfg.Sets - 1)
}

// Lookup predicts the target of the control-flow instruction at ip,
// before its outcome is known. It returns (target, true) on a BTB or RAS
// hit and (0, false) when the front end would have to stall for the
// target. Returns consult the RAS; everything else consults the BTB.
func (b *BTB) Lookup(ip uint64, kind trace.Kind) (uint64, bool) {
	b.stats.Lookups++
	if kind == trace.KindRet {
		if len(b.ras) == 0 {
			b.stats.Misses++
			return 0, false
		}
		return b.ras[len(b.ras)-1], true
	}
	base := b.set(ip) * b.cfg.Ways
	for w := 0; w < b.cfg.Ways; w++ {
		e := &b.table[base+w]
		if e.valid && e.tag == ip {
			b.clock++
			e.lru = b.clock
			b.stats.Hits++
			return e.target, true
		}
	}
	b.stats.Misses++
	return 0, false
}

// Update records the resolved control-flow instruction: calls push the
// RAS, returns pop it, and every taken branch installs/refreshes its BTB
// entry. It returns whether the earlier Lookup would have produced the
// correct target (used by the pipeline to charge redirect bubbles).
func (b *BTB) Update(ip, target uint64, kind trace.Kind, taken bool, predicted uint64, hit bool) bool {
	switch kind {
	case trace.KindCall:
		b.push(ip + 4)
	case trace.KindRet:
		correct := hit && predicted == target
		if len(b.ras) > 0 {
			b.ras = b.ras[:len(b.ras)-1]
		}
		if correct {
			b.stats.RASCorrect++
		} else {
			b.stats.RASWrong++
		}
		return correct
	}
	if !taken {
		// Not-taken branches need no target; the fall-through is known.
		return true
	}
	correct := hit && predicted == target
	if hit && predicted != target {
		b.stats.TargetMiss++
	}
	b.install(ip, target)
	return correct
}

func (b *BTB) push(ret uint64) {
	if len(b.ras) >= b.cfg.RAS {
		// Overflow drops the oldest entry, as hardware stacks do.
		copy(b.ras, b.ras[1:])
		b.ras = b.ras[:len(b.ras)-1]
	}
	b.ras = append(b.ras, ret)
}

func (b *BTB) install(ip, target uint64) {
	base := b.set(ip) * b.cfg.Ways
	victim := base
	for w := 0; w < b.cfg.Ways; w++ {
		e := &b.table[base+w]
		if e.valid && e.tag == ip {
			victim = base + w
			break
		}
		if !e.valid {
			victim = base + w
			break
		}
		if e.lru < b.table[victim].lru {
			victim = base + w
		}
	}
	b.clock++
	b.table[victim] = entry{tag: ip, target: target, lru: b.clock, valid: true}
}
