package btb

import (
	"testing"

	"branchlab/internal/trace"
)

func TestColdMissThenHit(t *testing.T) {
	b := New(DefaultConfig())
	if _, ok := b.Lookup(0x400, trace.KindCondBr); ok {
		t.Fatal("cold BTB hit")
	}
	b.Update(0x400, 0x900, trace.KindCondBr, true, 0, false)
	target, ok := b.Lookup(0x400, trace.KindCondBr)
	if !ok || target != 0x900 {
		t.Errorf("after install: target=%#x ok=%v", target, ok)
	}
}

func TestNotTakenNeedsNoTarget(t *testing.T) {
	b := New(DefaultConfig())
	if !b.Update(0x400, 0x900, trace.KindCondBr, false, 0, false) {
		t.Error("not-taken branch should never charge a target miss")
	}
}

func TestTargetChangeDetected(t *testing.T) {
	b := New(DefaultConfig())
	b.Update(0x400, 0x900, trace.KindIndirect, true, 0, false)
	pred, ok := b.Lookup(0x400, trace.KindIndirect)
	if !ok || pred != 0x900 {
		t.Fatal("install failed")
	}
	// The indirect branch now jumps elsewhere: the stale prediction must
	// be reported wrong and the entry retrained.
	if b.Update(0x400, 0xA00, trace.KindIndirect, true, pred, ok) {
		t.Error("stale target accepted as correct")
	}
	if pred, _ := b.Lookup(0x400, trace.KindIndirect); pred != 0xA00 {
		t.Errorf("entry not retrained: %#x", pred)
	}
	if b.Stats().TargetMiss == 0 {
		t.Error("target miss not counted")
	}
}

func TestRASPairing(t *testing.T) {
	b := New(DefaultConfig())
	// call at 0x100 -> return address 0x104.
	b.Update(0x100, 0x8000, trace.KindCall, true, 0, false)
	pred, ok := b.Lookup(0x8040, trace.KindRet)
	if !ok || pred != 0x104 {
		t.Fatalf("RAS predicted %#x, want 0x104", pred)
	}
	if !b.Update(0x8040, 0x104, trace.KindRet, true, pred, ok) {
		t.Error("correct return flagged wrong")
	}
	if b.Stats().RASCorrect != 1 {
		t.Errorf("RASCorrect = %d", b.Stats().RASCorrect)
	}
}

func TestRASNesting(t *testing.T) {
	b := New(DefaultConfig())
	b.Update(0x100, 0x8000, trace.KindCall, true, 0, false)
	b.Update(0x8000, 0x9000, trace.KindCall, true, 0, false)
	// Inner return first.
	pred, ok := b.Lookup(0x9040, trace.KindRet)
	if pred != 0x8004 {
		t.Errorf("inner return predicted %#x", pred)
	}
	b.Update(0x9040, 0x8004, trace.KindRet, true, pred, ok)
	pred, _ = b.Lookup(0x8040, trace.KindRet)
	if pred != 0x104 {
		t.Errorf("outer return predicted %#x", pred)
	}
}

func TestRASOverflowDropsOldest(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RAS = 2
	b := New(cfg)
	b.Update(0x100, 0x8000, trace.KindCall, true, 0, false) // ret 0x104 (dropped)
	b.Update(0x200, 0x8000, trace.KindCall, true, 0, false) // ret 0x204
	b.Update(0x300, 0x8000, trace.KindCall, true, 0, false) // ret 0x304
	pred, _ := b.Lookup(0x8040, trace.KindRet)
	if pred != 0x304 {
		t.Errorf("top of stack = %#x, want 0x304", pred)
	}
	b.Update(0x8040, 0x304, trace.KindRet, true, pred, true)
	pred, _ = b.Lookup(0x8040, trace.KindRet)
	if pred != 0x204 {
		t.Errorf("next = %#x, want 0x204", pred)
	}
}

func TestEmptyRASMisses(t *testing.T) {
	b := New(DefaultConfig())
	if _, ok := b.Lookup(0x8040, trace.KindRet); ok {
		t.Error("empty RAS produced a prediction")
	}
}

func TestLRUEvictionWithinSet(t *testing.T) {
	cfg := Config{Sets: 1, Ways: 2, RAS: 4}
	b := New(cfg)
	b.Update(0x100, 0x1, trace.KindJump, true, 0, false)
	b.Update(0x200, 0x2, trace.KindJump, true, 0, false)
	b.Lookup(0x100, trace.KindJump) // touch 0x100: 0x200 becomes LRU
	b.Update(0x300, 0x3, trace.KindJump, true, 0, false)
	if _, ok := b.Lookup(0x200, trace.KindJump); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := b.Lookup(0x100, trace.KindJump); !ok {
		t.Error("recently used entry evicted")
	}
}

func TestPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero ways")
		}
	}()
	New(Config{Sets: 4, Ways: 0})
}
