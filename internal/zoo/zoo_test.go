package zoo

import (
	"strings"
	"testing"

	"branchlab/internal/bp"
)

func TestAllNamesConstruct(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if p == nil {
			t.Errorf("New(%q) returned nil", name)
			continue
		}
		// Smoke: predict/train cycle must not panic.
		pred := p.Predict(0x400)
		p.Train(0x400, true, pred)
	}
}

func TestTAGEBudgetParsing(t *testing.T) {
	for _, name := range []string{"tage-8", "tage-sc-l-64", "tage-1024", "tage-sc-l-128kb"} {
		p, err := New(name)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if !strings.HasPrefix(p.Name(), "tage-sc-l-") {
			t.Errorf("New(%q).Name() = %q", name, p.Name())
		}
	}
	for _, bad := range []string{"tage-", "tage-0", "tage--5", "tage-abc"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
}

func TestTAGEReferenceParsing(t *testing.T) {
	// The reference prefix must not fall through to the generic "tage-"
	// budget parser ("reference-8" is not a budget).
	p, err := New("tage-reference-8")
	if err != nil {
		t.Fatalf("New(tage-reference-8): %v", err)
	}
	if p.Name() != "tage-sc-l-8KB-reference" {
		t.Errorf("Name() = %q", p.Name())
	}
	for _, bad := range []string{"tage-reference-", "tage-reference-0", "tage-reference-abc"} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%q) accepted", bad)
		}
	}
}

func TestUnknownNameError(t *testing.T) {
	_, err := New("frobnicator")
	if err == nil {
		t.Fatal("unknown predictor accepted")
	}
	//lint:ignore errcontract asserts the message names the unknown predictor for the CLI user; there is no sentinel to discriminate
	if !strings.Contains(err.Error(), "unknown predictor") {
		t.Errorf("error %q should name the problem", err)
	}
}

func TestDistinctInstances(t *testing.T) {
	a, _ := New("bimodal")
	b, _ := New("bimodal")
	// Train a hard; b must be unaffected (no shared state).
	for i := 0; i < 100; i++ {
		a.Train(0x400, true, false)
	}
	if !a.Predict(0x400) {
		t.Error("a did not learn")
	}
	var _ bp.Predictor = b
}
