// Package zoo is the predictor registry: it constructs any predictor in
// the repository by name, the glue used by the CLIs, benchmarks and the
// CBP-style comparison harness.
package zoo

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"branchlab/internal/bp"
	"branchlab/internal/tage"
)

// New constructs a predictor by name. Recognized names:
//
//	tage-sc-l-<kb>      TAGE-SC-L with a <kb> KB budget (8, 64, 128, ... 1024)
//	tage-<kb>           shorthand for the above
//	tage-reference-<kb> scalar reference TAGE-SC-L engine (test oracle /
//	                    benchmark baseline; predicts identically)
//	bimodal         4K-entry bimodal
//	gshare          16K-entry gshare, 12 history bits
//	gselect         gselect, 6 IP bits + 8 history bits
//	local           two-level local, 1K histories of 10 bits
//	perceptron      1K perceptrons over 32 history bits
//	ppm             4-table tagged PPM (history 4/8/16/32)
//	loop            loop predictor
//	tournament      bimodal + gshare under a chooser
//	static-taken, static-not-taken
func New(name string) (bp.Predictor, error) {
	switch name {
	case "bimodal":
		return bp.NewBimodal(12), nil
	case "gshare":
		return bp.NewGShare(14, 12), nil
	case "gselect":
		return bp.NewGSelect(6, 8), nil
	case "local":
		return bp.NewLocal(10, 10), nil
	case "perceptron":
		return bp.NewPerceptron(10, 32), nil
	case "ppm":
		return bp.NewPPM(12, 4, 8, 16, 32), nil
	case "loop":
		return bp.NewLoop(8), nil
	case "tournament":
		return bp.NewTournament(bp.NewBimodal(12), bp.NewGShare(14, 12), 12), nil
	case "static-taken":
		return bp.NewStatic(true), nil
	case "static-not-taken":
		return bp.NewStatic(false), nil
	}
	// The reference prefix must be checked before the generic "tage-"
	// prefixes, or "tage-reference-8" would parse "reference-8" as a
	// budget and fail.
	if strings.HasPrefix(name, "tage-reference-") {
		kbStr := strings.TrimSuffix(strings.TrimPrefix(name, "tage-reference-"), "kb")
		kb, err := strconv.Atoi(kbStr)
		if err != nil || kb <= 0 {
			return nil, fmt.Errorf("zoo: bad TAGE budget in %q", name)
		}
		return tage.NewReference(tage.NewConfig(kb)), nil
	}
	for _, prefix := range []string{"tage-sc-l-", "tage-"} {
		if strings.HasPrefix(name, prefix) {
			kbStr := strings.TrimSuffix(strings.TrimPrefix(name, prefix), "kb")
			kb, err := strconv.Atoi(kbStr)
			if err != nil || kb <= 0 {
				return nil, fmt.Errorf("zoo: bad TAGE budget in %q", name)
			}
			return tage.New(tage.NewConfig(kb)), nil
		}
	}
	return nil, fmt.Errorf("zoo: unknown predictor %q (try one of %s)", name, strings.Join(Names(), ", "))
}

// Names lists the canonical predictor names.
func Names() []string {
	names := []string{
		"bimodal", "gshare", "gselect", "local", "perceptron", "ppm",
		"loop", "tournament", "static-taken", "static-not-taken",
		"tage-sc-l-8", "tage-sc-l-64", "tage-sc-l-256", "tage-sc-l-1024",
		"tage-reference-8",
	}
	sort.Strings(names)
	return names
}
