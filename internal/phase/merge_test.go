package phase

import (
	"math"
	"reflect"
	"testing"

	"branchlab/internal/core"
	"branchlab/internal/trace"
	"branchlab/internal/xrand"
)

// branchTrace builds a trace of conditional branches over nBranches
// IPs with pseudo-random selection, each branch recurring at most
// maxExecs times so the per-shard reservoirs stay under capacity and
// the merge is exact.
func branchTrace(n, nBranches int, seed uint64) *trace.Buffer {
	r := xrand.New(seed)
	b := trace.NewBuffer(n)
	for i := 0; i < n; i++ {
		inst := trace.Inst{IP: 0x100, Kind: trace.KindALU,
			DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}}
		if r.Bool(0.3) {
			inst.Kind = trace.KindCondBr
			inst.IP = uint64(0xA000 + 64*r.Intn(nBranches))
			inst.Taken = r.Bool(0.5)
			inst.Target = inst.IP + 32
		}
		b.Append(inst)
	}
	return b
}

func assertTrackersEqual(t *testing.T, got, want *RecurrenceTracker, label string) {
	t.Helper()
	if !reflect.DeepEqual(got.execs, want.execs) {
		t.Fatalf("%s: exec counts differ", label)
	}
	if !reflect.DeepEqual(got.lastSeen, want.lastSeen) {
		t.Fatalf("%s: lastSeen differs", label)
	}
	if len(got.samples) != len(want.samples) {
		t.Fatalf("%s: %d sampled branches, want %d", label, len(got.samples), len(want.samples))
	}
	for ip, w := range want.samples {
		g := got.samples[ip]
		if g == nil || g.N != w.N || !reflect.DeepEqual(g.Sample, w.Sample) {
			t.Fatalf("%s: branch %#x samples differ: %+v != %+v", label, ip, g, w)
		}
	}
}

// Sharding a trace across trackers and merging in order must
// reproduce the sequential tracker bit-for-bit — including the
// reservoir contents — when per-shard interval counts stay under the
// reservoir capacity. The trace uses enough branch IPs that every
// branch recurs but none exceeds the capacity per shard.
func TestRecurrenceTrackerMergeExact(t *testing.T) {
	tr := branchTrace(40_000, 300, 3)
	want := NewRecurrenceTracker()
	core.Observe(tr.Stream(), want)

	for _, shards := range []int{2, 3, 5} {
		per := (tr.Len() + shards - 1) / shards
		var acc *RecurrenceTracker
		for w := 0; w < shards; w++ {
			lo := w * per
			hi := lo + per
			if hi > tr.Len() {
				hi = tr.Len()
			}
			part := NewRecurrenceTracker()
			core.ObserveFrom(tr.Slice(lo, hi).Stream(), uint64(lo), part)
			if acc == nil {
				acc = part
			} else {
				acc.Merge(part)
			}
		}
		assertTrackersEqual(t, acc, want, "shards")
		// The derived artifact agrees as well.
		wantMed := want.MedianIntervals()
		for ip, m := range acc.MedianIntervals() {
			if math.Abs(m-wantMed[ip]) > 0 {
				t.Fatalf("median for %#x differs: %v != %v", ip, m, wantMed[ip])
			}
		}
	}
}

// Branches crossing a shard boundary must contribute the boundary
// interval exactly once, and branches seen only in the later shard
// must carry their firstSeen across merges (three-way chain).
func TestRecurrenceTrackerMergeBoundary(t *testing.T) {
	mk := func(ips ...uint64) *trace.Buffer {
		b := trace.NewBuffer(len(ips))
		for _, ip := range ips {
			kind := trace.KindALU
			if ip != 0 {
				kind = trace.KindCondBr
			}
			b.Append(trace.Inst{IP: ip, Kind: kind, Taken: true,
				DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})
		}
		return b
	}
	// Branch A at indices 0 and 5 (interval 5, crossing both splits);
	// branch B at 4 and 5 is confined to the tail shards.
	tr := mk(0xA, 0, 0, 0, 0xB, 0xA)
	tr.Append(trace.Inst{IP: 0xB, Kind: trace.KindCondBr, Taken: true,
		DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})

	want := NewRecurrenceTracker()
	core.Observe(tr.Stream(), want)

	parts := make([]*RecurrenceTracker, 3)
	bounds := [][2]int{{0, 2}, {2, 5}, {5, 7}}
	for i, bd := range bounds {
		parts[i] = NewRecurrenceTracker()
		core.ObserveFrom(tr.Slice(bd[0], bd[1]).Stream(), uint64(bd[0]), parts[i])
	}
	parts[0].Merge(parts[1])
	parts[0].Merge(parts[2])
	assertTrackersEqual(t, parts[0], want, "boundary chain")
}

// Mergeable detectors replay the later shard's bucket stream, so the
// merged state is bit-identical to a sequential detector at any split
// — including splits inside a window.
func TestDetectorMergeExact(t *testing.T) {
	r := xrand.New(5)
	ips := make([]uint64, 5_000)
	for i := range ips {
		// Two alternating IP populations so phases actually allocate.
		base := uint64(0xA000)
		if (i/1024)%2 == 1 {
			base = 0xF0000
		}
		ips[i] = base + 64*uint64(r.Intn(40))
	}
	const window = 512
	want := NewMergeableDetector(window)
	for _, ip := range ips {
		want.Observe(ip)
	}
	if want.NumPhases() < 2 {
		t.Fatal("test stream should produce multiple phases")
	}

	for _, cut := range []int{100, 1024, 1500, 4999} {
		left, right := NewMergeableDetector(window), NewMergeableDetector(window)
		for _, ip := range ips[:cut] {
			left.Observe(ip)
		}
		for _, ip := range ips[cut:] {
			right.Observe(ip)
		}
		left.Merge(right)
		if left.NumPhases() != want.NumPhases() {
			t.Fatalf("cut %d: %d phases, want %d", cut, left.NumPhases(), want.NumPhases())
		}
		if !reflect.DeepEqual(left.History(), want.History()) {
			t.Fatalf("cut %d: history differs", cut)
		}
		if !reflect.DeepEqual(left.phases, want.phases) {
			t.Fatalf("cut %d: signatures differ", cut)
		}
		if left.curCount != want.curCount || !reflect.DeepEqual(left.cur, want.cur) {
			t.Fatalf("cut %d: in-progress window differs", cut)
		}
	}
}

func TestDetectorMergeRequiresMergeable(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic when merging non-mergeable detectors")
		}
	}()
	NewDetector(100).Merge(NewMergeableDetector(100))
}
