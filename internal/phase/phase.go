// Package phase provides the recurrence-interval instrumentation of Fig 9
// and an online phase detector with a phase-conditioned predictor wrapper,
// prototyping the paper's §V-B proposal to condition branch statistics on
// program phase.
package phase

import (
	"branchlab/internal/bp"
	"branchlab/internal/stats"
	"branchlab/internal/trace"
	"branchlab/internal/xrand"
)

// RecurrenceTracker records, per static branch IP, the distribution of
// recurrence intervals — the number of instructions between two
// consecutive dynamic executions of that IP (Fig 9). Intervals are
// reservoir-sampled per branch so hot branches stay bounded.
type RecurrenceTracker struct {
	firstSeen map[uint64]uint64
	lastSeen  map[uint64]uint64
	samples   map[uint64]*stats.Reservoir
	execs     map[uint64]uint64
}

// reservoirCap bounds the per-branch interval sample.
const reservoirCap = 64

// NewRecurrenceTracker returns an empty tracker.
func NewRecurrenceTracker() *RecurrenceTracker {
	return &RecurrenceTracker{
		firstSeen: make(map[uint64]uint64),
		lastSeen:  make(map[uint64]uint64),
		samples:   make(map[uint64]*stats.Reservoir),
		execs:     make(map[uint64]uint64),
	}
}

// Inst implements the core.Observer contract.
func (t *RecurrenceTracker) Inst(i uint64, inst *trace.Inst) {
	if inst.Kind != trace.KindCondBr {
		return
	}
	ip := inst.IP
	t.execs[ip]++
	if last, ok := t.lastSeen[ip]; ok {
		t.sampler(ip).Add(i - last)
	} else {
		t.firstSeen[ip] = i
	}
	t.lastSeen[ip] = i
}

func (t *RecurrenceTracker) sampler(ip uint64) *stats.Reservoir {
	r := t.samples[ip]
	if r == nil {
		r = stats.NewReservoir(reservoirCap, xrand.Mix64(ip))
		t.samples[ip] = r
	}
	return r
}

// Branch implements the core.Observer contract.
func (t *RecurrenceTracker) Branch(uint64, *trace.Inst, bool) {}

// Merge folds other — a tracker that observed the instructions
// immediately following t's, with global indices (core.ObserveFrom) —
// into t, stitching the boundary: a branch seen on both sides
// contributes the interval from t's last sighting to other's first, as
// a sequential pass would have recorded. other must not be used
// afterwards (its reservoirs are adopted).
//
// The merge is deterministic at any shard count and grouping, and
// exact — bit-identical samples to a sequential whole-trace pass —
// whenever each merged-in shard saw at most reservoirCap intervals per
// branch (the reservoir replay continues t's sampling stream
// verbatim). Hotter branches degrade to a deterministic two-stage
// subsample of the same interval distribution; Fig 9's driver keeps
// whole-trace passes so its artifact never depends on that case.
func (t *RecurrenceTracker) Merge(other *RecurrenceTracker) {
	for ip, n := range other.execs {
		t.execs[ip] += n
	}
	for ip, first := range other.firstSeen {
		if last, ok := t.lastSeen[ip]; ok {
			// Boundary interval, exactly where the sequential pass
			// would have added it: before other's own intervals.
			t.sampler(ip).Add(first - last)
		} else {
			t.firstSeen[ip] = first
		}
	}
	for ip, or := range other.samples {
		if r, ok := t.samples[ip]; ok {
			r.Merge(or)
		} else {
			t.samples[ip] = or
		}
	}
	for ip, last := range other.lastSeen {
		t.lastSeen[ip] = last
	}
}

// MedianIntervals returns each branch's median recurrence interval.
// Branches executed only once ("singletons") report 0 and land in the
// first histogram bin, as in the paper.
func (t *RecurrenceTracker) MedianIntervals() map[uint64]float64 {
	out := make(map[uint64]float64, len(t.execs))
	for ip := range t.execs {
		if r, ok := t.samples[ip]; ok {
			out[ip] = r.Median()
		} else {
			out[ip] = 0
		}
	}
	return out
}

// MRIBins are Fig 9's histogram bin edges (instructions).
var MRIBins = []float64{0, 1, 100, 1_000, 10_000, 100_000, 1_000_000,
	2_000_000, 4_000_000, 8_000_000, 16_000_000, 32_000_000}

// MRIHistogram bins the median recurrence intervals per static branch IP
// into the paper's Fig 9 bins.
func (t *RecurrenceTracker) MRIHistogram() *stats.Histogram {
	h := stats.NewHistogram(MRIBins...)
	for _, m := range t.MedianIntervals() {
		h.Add(m)
	}
	return h
}

// Detector is a lightweight online phase detector: it summarizes branch
// IPs over fixed windows into a signature vector and matches each window
// against previously seen phase signatures, allocating a new phase ID
// when nothing is close. This models the on-chip phase recognition the
// paper proposes for conditioning rare-branch statistics (§V-B).
type Detector struct {
	WindowLen uint64
	Dim       int
	Threshold float64 // max normalized L1 distance to match a phase

	cur       []float64
	curCount  uint64
	phases    [][]float64
	currentID int
	history   []int

	// mergeable detectors additionally record their bucket stream (two
	// bytes per observed branch) so a later detector's observations can
	// be replayed into an earlier one; see Merge.
	mergeable bool
	record    []uint16
}

// NewDetector returns a detector with the given window length in
// conditional branches.
func NewDetector(windowLen uint64) *Detector {
	return &Detector{
		WindowLen: windowLen,
		Dim:       32,
		Threshold: 0.55,
		currentID: -1,
	}
}

// NewMergeableDetector returns a detector that additionally records
// its per-branch bucket stream (two bytes per conditional branch), so a
// trace split across workers can be recombined with Merge into the
// exact detector state a sequential pass produces.
func NewMergeableDetector(windowLen uint64) *Detector {
	d := NewDetector(windowLen)
	d.mergeable = true
	return d
}

// Observe feeds one conditional branch IP. It returns the current phase
// ID (stable within a window).
func (d *Detector) Observe(ip uint64) int {
	// Bucket-count signature: the distribution of hashed branch IPs over
	// Dim buckets characterizes which code is executing.
	return d.observeBucket(uint16(xrand.Mix64(ip) % uint64(d.Dim)))
}

func (d *Detector) observeBucket(b uint16) int {
	if d.cur == nil {
		d.cur = make([]float64, d.Dim)
	}
	if d.mergeable {
		d.record = append(d.record, b)
	}
	d.cur[b]++
	d.curCount++
	if d.curCount >= d.WindowLen {
		d.classify()
	}
	if d.currentID < 0 {
		return 0
	}
	return d.currentID
}

// Merge replays other's observations into d, in order. Both detectors
// must be mergeable (phase matching is order-dependent — signatures
// drift and phases allocate on first sight — so the only way to
// recombine shards exactly is to replay the later shard's bucket
// stream through the earlier detector's state). The result is
// bit-identical to one detector observing the whole stream
// sequentially, at any split points and merge grouping. other must not
// be used afterwards.
func (d *Detector) Merge(other *Detector) {
	if !d.mergeable || !other.mergeable {
		panic("phase: Merge requires detectors built with NewMergeableDetector")
	}
	for _, b := range other.record {
		d.observeBucket(b)
	}
}

func (d *Detector) classify() {
	total := 0.0
	for _, v := range d.cur {
		total += v
	}
	if total > 0 {
		for i := range d.cur {
			d.cur[i] /= total
		}
	}
	best, bestDist := -1, d.Threshold
	for id, sig := range d.phases {
		dist := 0.0
		for i := range sig {
			diff := sig[i] - d.cur[i]
			if diff < 0 {
				diff = -diff
			}
			dist += diff
		}
		if dist < bestDist {
			best, bestDist = id, dist
		}
	}
	if best < 0 {
		d.phases = append(d.phases, append([]float64(nil), d.cur...))
		best = len(d.phases) - 1
	} else {
		// Drift the signature toward the latest window.
		sig := d.phases[best]
		for i := range sig {
			sig[i] = 0.9*sig[i] + 0.1*d.cur[i]
		}
	}
	d.currentID = best
	d.history = append(d.history, best)
	for i := range d.cur {
		d.cur[i] = 0
	}
	d.curCount = 0
}

// NumPhases returns how many distinct phases have been identified.
func (d *Detector) NumPhases() int { return len(d.phases) }

// History returns the sequence of per-window phase IDs.
func (d *Detector) History() []int { return d.history }

// ConditionedPredictor indexes a pool of sub-predictors by the current
// phase, so each phase trains its own statistics — the paper's proposed
// mechanism for rare branches whose behaviour is stable within a phase
// but unstable across phases. It implements bp.Predictor.
type ConditionedPredictor struct {
	detector *Detector
	mk       func() bp.Predictor
	subs     []bp.Predictor
	maxSubs  int
}

// NewConditionedPredictor builds a phase-conditioned predictor; mk
// constructs one sub-predictor per detected phase (up to maxPhases,
// after which phases share the last predictor).
func NewConditionedPredictor(windowLen uint64, maxPhases int, mk func() bp.Predictor) *ConditionedPredictor {
	if maxPhases < 1 {
		maxPhases = 1
	}
	return &ConditionedPredictor{
		detector: NewDetector(windowLen),
		mk:       mk,
		maxSubs:  maxPhases,
	}
}

func (c *ConditionedPredictor) sub() bp.Predictor {
	id := c.detector.currentID
	if id < 0 {
		id = 0
	}
	if id >= c.maxSubs {
		id = c.maxSubs - 1
	}
	for len(c.subs) <= id {
		c.subs = append(c.subs, c.mk())
	}
	return c.subs[id]
}

// Predict implements bp.Predictor.
func (c *ConditionedPredictor) Predict(ip uint64) bool { return c.sub().Predict(ip) }

// Train implements bp.Predictor. The phase detector advances at train
// time so prediction and training see the same phase.
func (c *ConditionedPredictor) Train(ip uint64, taken, pred bool) {
	c.sub().Train(ip, taken, pred)
	c.detector.Observe(ip)
}

// Name implements bp.Predictor.
func (c *ConditionedPredictor) Name() string { return "phase-conditioned" }

// NumPhases exposes the detector's phase count.
func (c *ConditionedPredictor) NumPhases() int { return c.detector.NumPhases() }
