package phase

import (
	"testing"

	"branchlab/internal/bp"
	"branchlab/internal/trace"
	"branchlab/internal/xrand"
)

func condAt(ip uint64) trace.Inst {
	return trace.Inst{IP: ip, Kind: trace.KindCondBr, Taken: true,
		DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}}
}

func TestRecurrenceIntervals(t *testing.T) {
	tr := NewRecurrenceTracker()
	// Branch 0xA executes every 10 instructions; 0xB every 100.
	for i := uint64(0); i < 1000; i++ {
		var inst trace.Inst
		switch {
		case i%10 == 0:
			inst = condAt(0xA)
		case i%100 == 1:
			inst = condAt(0xB)
		default:
			inst = trace.Inst{Kind: trace.KindALU}
		}
		tr.Inst(i, &inst)
	}
	med := tr.MedianIntervals()
	if med[0xA] != 10 {
		t.Errorf("median interval for 0xA = %v, want 10", med[0xA])
	}
	if med[0xB] != 100 {
		t.Errorf("median interval for 0xB = %v, want 100", med[0xB])
	}
}

func TestSingletonBranchesLandInFirstBin(t *testing.T) {
	tr := NewRecurrenceTracker()
	inst := condAt(0xC)
	tr.Inst(5, &inst)
	h := tr.MRIHistogram()
	if h.Counts[0] != 1 {
		t.Errorf("singleton not in first bin: %v", h.Counts)
	}
}

func TestMRIHistogramBins(t *testing.T) {
	tr := NewRecurrenceTracker()
	// Execute a branch twice, 500k instructions apart: median 500k lands
	// in the 100K-1M bin (index 5).
	a := condAt(0xD)
	tr.Inst(0, &a)
	tr.Inst(500_000, &a)
	h := tr.MRIHistogram()
	if h.Counts[5] != 1 {
		t.Errorf("500k interval not in 100K-1M bin: %v", h.Counts)
	}
	if h.BinLabel(5) != "100K-1M" {
		t.Errorf("bin label = %q", h.BinLabel(5))
	}
}

func TestDetectorSeparatesPhases(t *testing.T) {
	d := NewDetector(100)
	// Phase A: IPs 0x1000..0x1009; Phase B: IPs 0x9000..0x9009.
	var idsA, idsB []int
	for rep := 0; rep < 6; rep++ {
		for i := 0; i < 300; i++ {
			id := d.Observe(0x1000 + uint64(i%10)*64)
			if rep > 0 {
				idsA = append(idsA, id)
			}
		}
		for i := 0; i < 300; i++ {
			id := d.Observe(0x9000 + uint64(i%10)*64)
			if rep > 0 {
				idsB = append(idsB, id)
			}
		}
	}
	if d.NumPhases() < 2 {
		t.Fatalf("phases detected = %d, want >= 2", d.NumPhases())
	}
	if d.NumPhases() > 4 {
		t.Errorf("phases detected = %d, over-fragmented", d.NumPhases())
	}
	// After warmup, the dominant ID within each region must differ.
	if mode(idsA) == mode(idsB) {
		t.Error("detector assigned the same phase to both regions")
	}
}

func mode(xs []int) int {
	counts := map[int]int{}
	best, bestN := 0, -1
	for _, x := range xs {
		counts[x]++
		if counts[x] > bestN {
			best, bestN = x, counts[x]
		}
	}
	return best
}

func TestConditionedPredictorBeatsFlatOnPhaseFlippingBranch(t *testing.T) {
	// A rare branch whose direction is stable within a phase but flips
	// across phases, with phase visits shorter than 2-bit hysteresis can
	// absorb: the flat bimodal loses a fixed fraction of every visit,
	// while phase-conditioning gives each phase its own settled counters
	// (the paper's §V-B proposal for rare branches).
	runSeq := func(p bp.Predictor) float64 {
		correct, total := 0, 0
		for seg := 0; seg < 400; seg++ {
			ph := seg % 2
			// A burst of phase-signature branches lets the detector
			// identify the phase (each phase runs distinct code).
			for i := 0; i < 150; i++ {
				sigIP := 0x1000 + uint64(ph)*0x80000 + uint64(i%12)*64
				sp := p.Predict(sigIP)
				p.Train(sigIP, true, sp)
			}
			// The rare phase-dependent branch: few executions per visit.
			for i := 0; i < 6; i++ {
				ip := uint64(0xFFF0)
				taken := ph == 0
				pred := p.Predict(ip)
				if pred == taken {
					correct++
				}
				total++
				p.Train(ip, taken, pred)
			}
		}
		return float64(correct) / float64(total)
	}
	flat := runSeq(bp.NewBimodal(12))
	cond := runSeq(NewConditionedPredictor(75, 8, func() bp.Predictor { return bp.NewBimodal(12) }))
	if flat > 0.85 {
		t.Errorf("flat bimodal = %v; scenario should defeat plain hysteresis", flat)
	}
	if cond <= flat+0.1 {
		t.Errorf("phase-conditioned (%v) should clearly beat flat bimodal (%v)", cond, flat)
	}
}

func TestConditionedPredictorName(t *testing.T) {
	c := NewConditionedPredictor(64, 4, func() bp.Predictor { return bp.NewBimodal(4) })
	if c.Name() == "" {
		t.Error("empty name")
	}
	if c.NumPhases() != 0 {
		t.Error("phases before any observation")
	}
}

func TestRecurrenceTrackerIgnoresNonBranches(t *testing.T) {
	tr := NewRecurrenceTracker()
	inst := trace.Inst{Kind: trace.KindALU, IP: 0x1}
	for i := uint64(0); i < 100; i++ {
		tr.Inst(i, &inst)
	}
	if len(tr.MedianIntervals()) != 0 {
		t.Error("non-branches tracked")
	}
}

func TestDetectorDeterministic(t *testing.T) {
	mk := func() []int {
		d := NewDetector(50)
		rng := xrand.New(3)
		var ids []int
		for i := 0; i < 5000; i++ {
			ids = append(ids, d.Observe(0x1000+uint64(rng.Intn(30))*64))
		}
		return ids
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("detector not deterministic")
		}
	}
}
