package engine

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestNewDefaultsToNumCPU(t *testing.T) {
	for _, w := range []int{0, -1, -100} {
		if got := New(w).Workers(); got != runtime.NumCPU() {
			t.Errorf("New(%d).Workers() = %d, want %d", w, got, runtime.NumCPU())
		}
	}
	if got := New(3).Workers(); got != 3 {
		t.Errorf("New(3).Workers() = %d", got)
	}
}

func TestMapEmpty(t *testing.T) {
	if out := Map(New(4), 0, func(int) int { return 1 }); out != nil {
		t.Errorf("Map over 0 units = %v, want nil", out)
	}
}

func TestMapPreservesSubmissionOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 7, runtime.NumCPU()} {
		p := New(workers)
		out := Map(p, 100, func(i int) int { return i * i })
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapRunsEveryUnitExactlyOnce(t *testing.T) {
	var calls [200]int32
	Map(New(8), len(calls), func(i int) struct{} {
		atomic.AddInt32(&calls[i], 1)
		return struct{}{}
	})
	for i, c := range calls {
		if c != 1 {
			t.Errorf("unit %d ran %d times", i, c)
		}
	}
}

func TestMapActuallyRunsConcurrently(t *testing.T) {
	// Two units rendezvous with each other; a sequential scheduler would
	// deadlock, so the barrier completing proves concurrent execution.
	var barrier sync.WaitGroup
	barrier.Add(2)
	done := make(chan struct{})
	go func() {
		Map(New(2), 2, func(i int) struct{} {
			barrier.Done()
			barrier.Wait()
			return struct{}{}
		})
		close(done)
	}()
	<-done
}

func TestMapSingleWorkerIsSequential(t *testing.T) {
	// With one worker the units must run in index order on the calling
	// goroutine, so unsynchronized writes to shared state are safe.
	order := make([]int, 0, 50)
	Map(New(1), 50, func(i int) struct{} {
		order = append(order, i)
		return struct{}{}
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("1-worker order[%d] = %d", i, v)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Errorf("workers=%d: panic did not propagate", workers)
					return
				}
				err := Recovered(r)
				if err == nil {
					t.Errorf("workers=%d: panic value %v is not an engine abort", workers, r)
					return
				}
				var pe *PanicError
				if !errors.As(err, &pe) {
					t.Errorf("workers=%d: abort error %v is not a *PanicError", workers, err)
					return
				}
				if pe.Cell != 7 {
					t.Errorf("workers=%d: panic attributed to cell %d, want 7", workers, pe.Cell)
				}
				//lint:ignore errcontract asserts the panic value's text survives into the message; the panic value is a string, not a sentinel
				if !strings.Contains(err.Error(), "boom") {
					t.Errorf("workers=%d: panic error %v lost the cause", workers, err)
				}
				if len(pe.Stack) == 0 {
					t.Errorf("workers=%d: panic error carries no stack", workers)
				}
			}()
			Map(New(workers), 10, func(i int) int {
				if i == 7 {
					panic("boom")
				}
				return i
			})
		}()
	}
}

func TestMapSlice(t *testing.T) {
	in := []string{"a", "bb", "ccc"}
	out := MapSlice(New(4), in, func(s string, i int) int { return len(s) + i })
	want := []int{1, 3, 5}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}
