package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// leakCheck snapshots the goroutine count and returns a func that
// fails the test if stray goroutines remain after a grace period.
// Register it with t.Cleanup before exercising cancel/fault paths.
func leakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					base, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

func TestMapErrMatchesMap(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, err := MapErr(context.Background(), New(workers), 50,
			func(_ context.Context, i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: MapErr = %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapErrEmptyAndNilCtx(t *testing.T) {
	if out, err := MapErr(nil, New(4), 0, func(context.Context, int) (int, error) { return 0, nil }); out != nil || err != nil {
		t.Fatalf("MapErr(n=0) = %v, %v", out, err)
	}
	out, err := MapErr(nil, New(1), 3, func(context.Context, int) (int, error) { return 7, nil })
	if err != nil || len(out) != 3 {
		t.Fatalf("MapErr(nil ctx) = %v, %v", out, err)
	}
}

// TestMapErrUnitErrorAbortsRun: one failing unit fails the run with
// its own error, and undispatched units never start.
func TestMapErrUnitErrorAbortsRun(t *testing.T) {
	boom := errors.New("unit failure")
	for _, workers := range []int{1, 4} {
		defer leakCheck(t)()
		var started atomic.Int32
		_, err := MapErr(context.Background(), New(workers), 1000,
			func(_ context.Context, i int) (int, error) {
				started.Add(1)
				if i == 3 {
					return 0, boom
				}
				return i, nil
			})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: MapErr = %v, want %v", workers, err, boom)
		}
		if IsCancel(err) {
			t.Fatalf("workers=%d: unit error misclassified as cancellation", workers)
		}
		if n := started.Load(); n == 1000 {
			t.Errorf("workers=%d: all 1000 units ran despite early failure", workers)
		}
	}
}

// TestMapErrPanicBecomesTypedError: a panicking unit yields a
// *PanicError naming its cell; the process survives.
func TestMapErrPanicBecomesTypedError(t *testing.T) {
	for _, workers := range []int{1, 4} {
		defer leakCheck(t)()
		_, err := MapErr(context.Background(), New(workers), 10,
			func(_ context.Context, i int) (int, error) {
				if i == 4 {
					panic("poisoned cell")
				}
				return i, nil
			})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: MapErr = %v, want *PanicError", workers, err)
		}
		if pe.Cell != 4 || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: PanicError{Cell: %d, len(Stack): %d}", workers, pe.Cell, len(pe.Stack))
		}
	}
}

// TestMapErrCancelReportsCompleted: cancelling mid-run returns a
// *CancelError listing exactly the units that finished, drains
// promptly, and leaks nothing.
func TestMapErrCancelReportsCompleted(t *testing.T) {
	for _, workers := range []int{1, 4} {
		defer leakCheck(t)()
		ctx, cancel := context.WithCancel(context.Background())
		release := make(chan struct{})
		var completed atomic.Int32
		done := make(chan struct{})
		var err error
		go func() {
			defer close(done)
			_, err = MapErr(ctx, New(workers), 1000,
				func(ctx context.Context, i int) (int, error) {
					if i < workers { // first wave runs; the rest block on cancel
						completed.Add(1)
						return i, nil
					}
					select {
					case <-release:
						completed.Add(1)
						return i, nil
					case <-ctx.Done():
						return 0, ctx.Err()
					}
				})
		}()
		// Wait for the first wave, then cancel while units are in flight.
		for completed.Load() < int32(workers) {
			time.Sleep(time.Millisecond)
		}
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("workers=%d: MapErr did not return after cancel", workers)
		}
		close(release)
		var ce *CancelError
		if !errors.As(err, &ce) {
			t.Fatalf("workers=%d: MapErr = %v, want *CancelError", workers, err)
		}
		if !errors.Is(err, context.Canceled) || !IsCancel(err) {
			t.Errorf("workers=%d: CancelError %v does not unwrap to context.Canceled", workers, err)
		}
		if ce.Total != 1000 {
			t.Errorf("workers=%d: Total = %d, want 1000", workers, ce.Total)
		}
		if int32(len(ce.Completed)) != completed.Load() {
			t.Errorf("workers=%d: Completed lists %d units, %d actually finished",
				workers, len(ce.Completed), completed.Load())
		}
		for j := 1; j < len(ce.Completed); j++ {
			if ce.Completed[j-1] >= ce.Completed[j] {
				t.Fatalf("workers=%d: Completed not ascending: %v", workers, ce.Completed)
			}
		}
		if len(ce.Completed) == 1000 {
			t.Errorf("workers=%d: all units completed despite cancel", workers)
		}
	}
}

// TestMapErrDeadline: an already-expired deadline runs nothing and
// reports a deadline-class CancelError.
func TestMapErrDeadline(t *testing.T) {
	defer leakCheck(t)()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	var ran atomic.Int32
	_, err := MapErr(ctx, New(4), 100, func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	var ce *CancelError
	if !errors.As(err, &ce) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("MapErr past deadline = %v, want deadline CancelError", err)
	}
	if n := ran.Load(); n > 4 {
		t.Errorf("%d units ran against an expired deadline", n)
	}
}

// TestPoolWithContext: a pool-bound context cancels Map runs even when
// the caller passes none, and Map escalates via Abort.
func TestPoolWithContext(t *testing.T) {
	defer leakCheck(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := New(4).WithContext(ctx)
	defer func() {
		err := Recovered(recover())
		if err == nil {
			t.Fatal("Map on a canceled pool did not abort")
		}
		var ce *CancelError
		if !errors.As(err, &ce) {
			t.Fatalf("abort error = %v, want *CancelError", err)
		}
	}()
	Map(p, 10, func(i int) int { return i })
	t.Fatal("Map returned normally on a canceled pool")
}

// TestPoolContextMergesWithCallCtx: cancellation of either the pool
// context or the per-call context stops the run.
func TestPoolContextMergesWithCallCtx(t *testing.T) {
	defer leakCheck(t)()
	poolCtx, cancelPool := context.WithCancel(context.Background())
	defer cancelPool()
	p := New(2).WithContext(poolCtx)
	started := make(chan struct{})
	var once atomic.Bool
	done := make(chan error, 1)
	go func() {
		_, err := MapErr(context.Background(), p, 8, func(ctx context.Context, i int) (int, error) {
			if once.CompareAndSwap(false, true) {
				close(started)
			}
			<-ctx.Done()
			return 0, ctx.Err()
		})
		done <- err
	}()
	<-started
	cancelPool()
	select {
	case err := <-done:
		if !IsCancel(err) {
			t.Fatalf("MapErr = %v, want cancellation", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("pool-context cancel did not stop the run")
	}
}

// TestNestedMapAbortSurfacesInOuterUnit: an abort raised inside a
// nested Map is converted to the outer unit's typed error, not wrapped
// in a fresh PanicError.
func TestNestedMapAbortSurfacesInOuterUnit(t *testing.T) {
	defer leakCheck(t)()
	inner := errors.New("inner unit failed")
	_, err := MapErr(context.Background(), New(2), 4,
		func(_ context.Context, i int) (int, error) {
			sum := 0
			for _, v := range Map(New(2), 3, func(j int) int {
				if i == 2 && j == 1 {
					Abort(fmt.Errorf("cell (%d,%d): %w", i, j, inner))
				}
				return j
			}) {
				sum += v
			}
			return sum, nil
		})
	if !errors.Is(err, inner) {
		t.Fatalf("nested abort surfaced as %v, want %v", err, inner)
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		t.Fatalf("nested abort wrapped in PanicError: %v", err)
	}
}

// TestRecoveredIgnoresForeignPanics: Recovered must not swallow panics
// it does not own.
func TestRecoveredIgnoresForeignPanics(t *testing.T) {
	if err := Recovered("some panic"); err != nil {
		t.Fatalf("Recovered(foreign) = %v, want nil", err)
	}
	if err := Recovered(nil); err != nil {
		t.Fatalf("Recovered(nil) = %v, want nil", err)
	}
	want := errors.New("x")
	func() {
		defer func() {
			if got := Recovered(recover()); !errors.Is(got, want) {
				t.Fatalf("Recovered(Abort(x)) = %v, want %v", got, want)
			}
		}()
		Abort(want)
	}()
}

// TestAbortNil: Abort(nil) must still unwind with a non-nil error so
// a buggy call site cannot silently resume.
func TestAbortNil(t *testing.T) {
	defer func() {
		if err := Recovered(recover()); err == nil {
			t.Fatal("Abort(nil) recovered to nil error")
		}
	}()
	Abort(nil)
}

// TestMapErrDeterministicErrorSelection: with several failing units,
// the lowest-indexed non-cancellation error is reported regardless of
// scheduling.
func TestMapErrDeterministicErrorSelection(t *testing.T) {
	errA := errors.New("unit 3 failed")
	errB := errors.New("unit 9 failed")
	for trial := 0; trial < 20; trial++ {
		// Unit 9 waits until unit 3 has failed, so whenever both errors
		// are recorded the lower index must be the one reported.
		u3failed := make(chan struct{})
		_, err := MapErr(context.Background(), New(4), 10,
			func(_ context.Context, i int) (int, error) {
				switch i {
				case 3:
					close(u3failed)
					return 0, errA
				case 9:
					<-u3failed
					return 0, errB
				}
				return i, nil
			})
		if !errors.Is(err, errA) {
			t.Fatalf("trial %d: MapErr = %v, want %v", trial, err, errA)
		}
	}
}

// TestMapSliceErr mirrors TestMapSlice for the error-returning shape.
func TestMapSliceErr(t *testing.T) {
	in := []string{"a", "bb", "ccc"}
	out, err := MapSliceErr(context.Background(), New(4), in,
		func(_ context.Context, s string, i int) (int, error) { return len(s) + i, nil })
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 3, 5}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out[i], want[i])
		}
	}
}
