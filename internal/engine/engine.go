// Package engine is the parallel experiment engine: a worker-pool
// scheduler for independent simulation work units. Each unit is a pure
// function of its index; results are returned in submission order, so
// the merged output of a parallel run is byte-identical to a
// single-worker run. The experiment drivers express their inner loops —
// one unit per (workload, input, pipeline-scale, storage-budget) cell —
// as Map calls over a Pool.
package engine

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Pool schedules independent work units onto a fixed set of workers.
// The zero-cost construction holds no goroutines; workers are spawned
// per Map call and torn down when it returns.
type Pool struct {
	workers int
}

// New returns a pool with the given worker count; workers <= 0 selects
// runtime.NumCPU().
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.workers }

// Map runs fn(0) .. fn(n-1) on the pool and returns the n results
// indexed by submission order, regardless of completion order or worker
// count. fn must be safe to call from multiple goroutines; units must
// not depend on each other. A panic in any unit is re-raised on the
// calling goroutine after all workers have drained.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	var panicOnce sync.Once
	var panicked any
	var aborted atomic.Bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							// Capture the stack here, inside the unwinding
							// goroutine, so the re-raise on the caller keeps
							// the failing unit's frames.
							panicOnce.Do(func() {
								panicked = fmt.Errorf("engine: work unit %d panicked: %v\n%s",
									i, r, debug.Stack())
								aborted.Store(true)
							})
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		if aborted.Load() {
			break // a unit panicked; don't start the rest of the sweep
		}
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return out
}

// MapSlice runs fn over each element of in and returns the results in
// element order. It is Map with the common slice-of-inputs plumbing.
func MapSlice[S, T any](p *Pool, in []S, fn func(item S, i int) T) []T {
	return Map(p, len(in), func(i int) T { return fn(in[i], i) })
}
