// Package engine is the parallel experiment engine: a worker-pool
// scheduler for independent simulation work units. Each unit is a pure
// function of its index; results are returned in submission order, so
// the merged output of a parallel run is byte-identical to a
// single-worker run. The experiment drivers express their inner loops —
// one unit per (workload, input, pipeline-scale, storage-budget) cell —
// as Map calls over a Pool.
//
// Failure contract (DESIGN.md §9): a panicking or failing unit fails
// its run, never the process. MapErr returns typed errors — a
// *PanicError attributes a recovered panic to its work unit, a
// *CancelError reports a cancellation or deadline along with which
// units completed. Map keeps its no-error signature for the drivers'
// infallible sweeps by escalating failures as an abort panic that
// Recovered unwraps at the run boundary (experiments.Runner).
package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"branchlab/internal/faultinject"
)

// Pool schedules independent work units onto a fixed set of workers.
// The zero-cost construction holds no goroutines; workers are spawned
// per Map call and torn down when it returns. A pool may carry a
// context (WithContext) that bounds every Map/MapErr run scheduled on
// it.
type Pool struct {
	workers int
	ctx     context.Context
}

// New returns a pool with the given worker count; workers <= 0 selects
// runtime.NumCPU().
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers}
}

// WithContext returns a pool sharing p's worker budget whose runs are
// additionally bounded by ctx: Map aborts and MapErr returns a
// *CancelError once ctx is done.
func (p *Pool) WithContext(ctx context.Context) *Pool {
	return &Pool{workers: p.workers, ctx: ctx}
}

// Context returns the context bounding this pool's runs (never nil).
func (p *Pool) Context() context.Context {
	if p.ctx != nil {
		return p.ctx
	}
	return context.Background()
}

// Workers returns the configured worker count.
func (p *Pool) Workers() int { return p.workers }

// PanicError is a panic recovered inside a work unit, attributed to
// the unit (cell) that raised it. The run fails with this error; the
// process and the pool's other cells survive.
type PanicError struct {
	Cell  int    // work-unit index that panicked
	Value any    // the recovered panic value
	Stack []byte // stack of the panicking goroutine, captured at recovery
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: work unit %d panicked: %v\n%s", e.Cell, e.Value, e.Stack)
}

// CancelError reports a run stopped by context cancellation or
// deadline. Completed lists the work-unit indices that finished before
// the run stopped, in ascending order, for partial-result reporting.
type CancelError struct {
	Err       error // the cancellation cause (ctx.Err() or a unit's cancellation error)
	Completed []int // unit indices that completed successfully
	Total     int   // units the run was asked for
}

func (e *CancelError) Error() string {
	return fmt.Sprintf("engine: run canceled after %d/%d work units: %v", len(e.Completed), e.Total, e.Err)
}

// Unwrap exposes the cause so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) classify CancelErrors.
func (e *CancelError) Unwrap() error { return e.Err }

// abortPanic carries a typed error across the no-error Map signature.
// It is deliberately unexported: only Abort raises it and only
// Recovered unwraps it, so arbitrary panics stay distinguishable.
type abortPanic struct{ err error }

// Abort escalates err through call frames that have no error return
// (Map units, legacy recording wrappers). The nearest engine-aware
// recovery point — a MapErr unit or Recovered at a run boundary —
// converts it back into the typed error, unchanged.
func Abort(err error) {
	if err == nil {
		err = errors.New("engine: Abort(nil)")
	}
	//lint:ignore errcontract Abort is the documented escalation boundary: the typed abortPanic is recovered by MapErr/Recovered at every run boundary and converted back into the error
	panic(abortPanic{err})
}

// Recovered returns the typed error carried by an Abort panic, or nil
// if r is not one. Use at a recover() boundary:
//
//	defer func() {
//		if r := recover(); r != nil {
//			if err = engine.Recovered(r); err == nil {
//				panic(r) // not ours; keep unwinding
//			}
//		}
//	}()
func Recovered(r any) error {
	if ap, ok := r.(abortPanic); ok {
		return ap.err
	}
	return nil
}

// IsCancel reports whether err is cancellation-class: caused by a
// context being canceled or timing out rather than by the work itself
// failing. Cancellation-class failures are retryable with a fresh
// context; others are not.
func IsCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// MapErr runs fn(ctx, 0) .. fn(ctx, n-1) on the pool and returns the n
// results indexed by submission order. fn must be safe to call from
// multiple goroutines; units must not depend on each other.
//
// The ctx passed to every unit is canceled as soon as any unit fails
// or the caller's ctx (or the pool's, from WithContext) is done;
// pending units are not dispatched and in-flight units can bail at
// their next cancellation check. All workers are joined before MapErr
// returns — no goroutines outlive the call.
//
// On failure the result slice holds every completed unit's value and
// the error is typed: a unit panic surfaces as *PanicError, a
// cancellation or deadline as *CancelError, and any other unit error
// is returned as the unit produced it. When several units fail, the
// lowest-indexed non-cancellation error wins, so the reported failure
// does not depend on goroutine interleaving.
func MapErr[T any](ctx context.Context, p *Pool, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if p.ctx != nil && p.ctx != ctx {
		var cancel context.CancelFunc
		ctx, cancel = mergeContexts(ctx, p.ctx)
		defer cancel()
	}

	out := make([]T, n)
	done := make([]bool, n)
	errs := make([]error, n)

	runUnit := func(ctx context.Context, i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				if ae := Recovered(r); ae != nil {
					err = ae // a nested Map aborted; keep its typed error
				} else {
					err = &PanicError{Cell: i, Value: r, Stack: debug.Stack()}
				}
			}
		}()
		if ferr := faultinject.Fail(faultinject.EngineDispatch); ferr != nil {
			return fmt.Errorf("engine: work unit %d: %w", i, ferr)
		}
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		done[i] = true
		return nil
	}

	workers := p.workers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Sequential path: units run in index order on the calling
		// goroutine, checking cancellation between units.
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			if errs[i] = runUnit(ctx, i); errs[i] != nil {
				break
			}
		}
		return out, collectErr(ctx, errs, done, n)
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if runCtx.Err() != nil {
					continue // drain without running: prompt teardown after cancel
				}
				// out/done/errs are written at distinct indices only.
				if err := runUnit(runCtx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-runCtx.Done():
			i = n // stop dispatching; workers drain what's queued
		}
	}
	close(idx)
	wg.Wait()
	return out, collectErr(ctx, errs, done, n)
}

// collectErr reduces per-unit errors and the caller context into the
// single typed error MapErr reports. The lowest-indexed
// non-cancellation unit error wins; otherwise any cancellation (unit
// or context) becomes a *CancelError carrying the completed set.
func collectErr(ctx context.Context, errs []error, done []bool, n int) error {
	var cancelCause error
	for _, e := range errs {
		if e == nil {
			continue
		}
		if !IsCancel(e) {
			return e
		}
		if cancelCause == nil {
			cancelCause = e
		}
	}
	if ctx.Err() != nil {
		cancelCause = ctx.Err()
	}
	if cancelCause == nil {
		return nil
	}
	completed := make([]int, 0, n)
	for i, d := range done {
		if d {
			completed = append(completed, i)
		}
	}
	return &CancelError{Err: cancelCause, Completed: completed, Total: n}
}

// mergeContexts derives a context canceled when either parent is done,
// carrying values and deadline from primary.
func mergeContexts(primary, secondary context.Context) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(primary)
	stop := context.AfterFunc(secondary, cancel)
	return ctx, func() { stop(); cancel() }
}

// Map runs fn(0) .. fn(n-1) on the pool and returns the n results
// indexed by submission order, regardless of completion order or
// worker count. fn must be safe to call from multiple goroutines;
// units must not depend on each other. A failure — unit panic, pool
// context cancellation, injected fault — is escalated with Abort after
// all workers have drained; the typed error is recovered by the
// enclosing MapErr unit or by Recovered at the run boundary.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out, err := MapErr(p.Context(), p, n, func(_ context.Context, i int) (T, error) {
		return fn(i), nil
	})
	if err != nil {
		Abort(err)
	}
	return out
}

// MapSlice runs fn over each element of in and returns the results in
// element order. It is Map with the common slice-of-inputs plumbing.
func MapSlice[S, T any](p *Pool, in []S, fn func(item S, i int) T) []T {
	return Map(p, len(in), func(i int) T { return fn(in[i], i) })
}

// MapSliceErr is MapErr with the common slice-of-inputs plumbing.
func MapSliceErr[S, T any](ctx context.Context, p *Pool, in []S, fn func(ctx context.Context, item S, i int) (T, error)) ([]T, error) {
	return MapErr(ctx, p, len(in), func(ctx context.Context, i int) (T, error) {
		return fn(ctx, in[i], i)
	})
}
