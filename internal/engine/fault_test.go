//go:build faultinject

package engine

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"branchlab/internal/faultinject"
)

// findDispatchSeed returns a seed whose plan arms the engine/dispatch
// point with a trigger small enough to fire within n invocations.
func findDispatchSeed(t *testing.T, n int) uint64 {
	t.Helper()
	defer faultinject.Deactivate()
	for s := uint64(0); s < 512; s++ {
		if err := faultinject.Activate(s); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if faultinject.Fail(faultinject.EngineDispatch) != nil {
				return s
			}
		}
	}
	t.Fatal("no seed in [0,512) fires engine/dispatch — trigger derivation broken")
	return 0
}

// TestDispatchFaultFailsRunTyped: an injected dispatch fault fails the
// MapErr run with a typed, classifiable error, attributed to a work
// unit, and leaves no stray goroutines.
func TestDispatchFaultFailsRunTyped(t *testing.T) {
	seed := findDispatchSeed(t, 64)
	for _, workers := range []int{1, 4} {
		defer leakCheck(t)()
		if err := faultinject.Activate(seed); err != nil {
			t.Fatal(err)
		}
		var ran atomic.Int32
		_, err := MapErr(context.Background(), New(workers), 64,
			func(_ context.Context, i int) (int, error) {
				ran.Add(1)
				return i, nil
			})
		faultinject.Deactivate()
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("workers=%d: MapErr = %v, want injected fault", workers, err)
		}
		var fe *faultinject.Error
		if !errors.As(err, &fe) || fe.Point != faultinject.EngineDispatch {
			t.Fatalf("workers=%d: fault error %v lost its point", workers, err)
		}
		if IsCancel(err) {
			t.Fatalf("workers=%d: injected fault misclassified as cancellation", workers)
		}
		if ran.Load() == 64 {
			t.Errorf("workers=%d: every unit ran despite the dispatch fault", workers)
		}
	}
}

// TestDispatchFaultThroughMapAborts: the no-error Map surface
// escalates the same injected fault via Abort instead of crashing.
func TestDispatchFaultThroughMapAborts(t *testing.T) {
	seed := findDispatchSeed(t, 64)
	if err := faultinject.Activate(seed); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Deactivate()
	defer func() {
		err := Recovered(recover())
		if err == nil {
			t.Fatal("Map under an armed dispatch fault returned normally")
		}
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("Map abort error = %v, want injected fault", err)
		}
	}()
	Map(New(4), 64, func(i int) int { return i })
}
