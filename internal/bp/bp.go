// Package bp defines the branch-predictor interface used throughout the
// repository and implements the classical baseline predictors the paper
// surveys in §II: static, bimodal, gshare/gselect, two-level local,
// perceptron, PPM-style tagged matching, a loop predictor, and a
// tournament combiner.
//
// The deployment contract mirrors CBP2016: a predictor sees the
// instruction pointer at prediction time and is trained with the resolved
// direction at retirement; predictors that model path history additionally
// observe every control-flow instruction via the BranchObserver interface.
package bp

import "branchlab/internal/trace"

// Predictor predicts conditional branch directions.
//
// The driver calls Predict(ip), records the prediction, then calls
// Train(ip, taken, pred) with the resolved direction. Train is always
// called exactly once per Predict, in program order (retirement order in
// the simulated machine).
type Predictor interface {
	// Predict returns the predicted direction for the conditional branch
	// at ip.
	Predict(ip uint64) bool
	// Train updates the predictor with the resolved direction. pred must
	// be the value Predict returned for this dynamic branch.
	Train(ip uint64, taken, pred bool)
	// Name identifies the predictor in reports.
	Name() string
}

// BranchObserver is implemented by predictors that consume all
// control-flow instructions (not just conditionals) to build path or
// global history, as TAGE-SC-L does.
type BranchObserver interface {
	// ObserveBranch is called for every non-conditional control-flow
	// instruction at retirement. Conditional branches are delivered
	// through Train instead.
	ObserveBranch(ip, target uint64, kind trace.Kind, taken bool)
}

// BlockRunner is implemented by predictors that can process a whole
// replay block internally — predicting, training and observing every
// instruction in blk with the per-branch dispatch inlined — and return
// the conditional-branch and misprediction counts. The measurement
// loop's no-observer fast path hands blocks straight to it, reducing
// the driver/predictor boundary from several interface calls per branch
// to one per block.
//
// RunBlock must evolve predictor state exactly as the equivalent
// per-instruction sequence of Predict, Train/TrainWithTarget and
// ObserveBranch calls would: implementations are interchangeable with
// the scalar interface at any block boundary, and the measurement loop
// relies on that equivalence for byte-identical artifacts. blk follows
// the trace.BlockStream aliasing contract — it must be treated as
// read-only and not retained past the call.
type BlockRunner interface {
	RunBlock(blk []trace.Inst) (condExecs, mispreds uint64)
}

// Observe forwards a non-conditional branch to p if it implements
// BranchObserver.
func Observe(p Predictor, ip, target uint64, kind trace.Kind, taken bool) {
	if o, ok := p.(BranchObserver); ok {
		o.ObserveBranch(ip, target, kind, taken)
	}
}

// ctrInc and ctrDec saturate an n-bit two's-complement counter held in an
// int8, the building block of almost every table-based predictor.

func ctrInc(c int8, max int8) int8 {
	if c < max {
		return c + 1
	}
	return c
}

func ctrDec(c int8, min int8) int8 {
	if c > min {
		return c - 1
	}
	return c
}

// ctrUpdate moves a saturating counter toward taken (+) or not-taken (-)
// within [min, max].
func ctrUpdate(c int8, taken bool, min, max int8) int8 {
	if taken {
		return ctrInc(c, max)
	}
	return ctrDec(c, min)
}

// hashIP mixes an instruction pointer into a table index of width bits.
func hashIP(ip uint64, bits uint) uint64 {
	x := ip
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x & ((1 << bits) - 1)
}

// historyReg is a bounded global-history shift register, newest bit in the
// low position.
type historyReg struct {
	bits uint64
	len  uint
}

func (h *historyReg) push(taken bool) {
	h.bits <<= 1
	if taken {
		h.bits |= 1
	}
	if h.len < 64 {
		h.len++
	}
}

func (h *historyReg) value(n uint) uint64 {
	if n > 64 {
		n = 64
	}
	if n == 64 {
		return h.bits
	}
	return h.bits & ((1 << n) - 1)
}
