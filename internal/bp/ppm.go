package bp

import "fmt"

// PPM is a partial-pattern-matching predictor (Cleary & Witten 1984,
// applied to branches by Mudge et al. 1996): several tagged tables indexed
// by hashes of increasingly long global-history windows; the longest
// matching entry supplies the prediction. This is the mechanism at the
// heart of TAGE, implemented here without the usefulness machinery so the
// two can be compared in ablations.
type PPM struct {
	tables  []ppmTable
	base    *Bimodal
	hist    historyReg
	lastIdx []uint64 // per-table index cache from Predict
	lastTag []uint16
	lastIP  uint64
	valid   bool
}

type ppmTable struct {
	entries []ppmEntry
	bits    uint
	histLen uint
}

type ppmEntry struct {
	tag   uint16
	ctr   int8
	valid bool
}

// NewPPM returns a PPM predictor with the given table size (2^bits entries
// per table) and history lengths, one table per length.
func NewPPM(bits uint, histLens ...uint) *PPM {
	p := &PPM{
		base:    NewBimodal(bits),
		lastIdx: make([]uint64, len(histLens)),
		lastTag: make([]uint16, len(histLens)),
	}
	for _, hl := range histLens {
		p.tables = append(p.tables, ppmTable{
			entries: make([]ppmEntry, 1<<bits),
			bits:    bits,
			histLen: hl,
		})
	}
	return p
}

func (p *PPM) indexTag(ip uint64, t *ppmTable) (uint64, uint16) {
	h := p.hist.value(t.histLen)
	mixed := hashIP(ip^h*0x9e3779b97f4a7c15, 63)
	idx := mixed & ((1 << t.bits) - 1)
	tag := uint16(mixed>>t.bits) & 0x3FF
	return idx, tag
}

// Predict implements Predictor.
func (p *PPM) Predict(ip uint64) bool {
	pred := p.base.Predict(ip)
	for i := range p.tables {
		t := &p.tables[i]
		idx, tag := p.indexTag(ip, t)
		p.lastIdx[i], p.lastTag[i] = idx, tag
		e := &t.entries[idx]
		if e.valid && e.tag == tag {
			pred = e.ctr >= 0
		}
	}
	p.lastIP = ip
	p.valid = true
	return pred
}

// Train implements Predictor.
func (p *PPM) Train(ip uint64, taken, pred bool) {
	if !p.valid || p.lastIP != ip {
		for i := range p.tables {
			p.lastIdx[i], p.lastTag[i] = p.indexTag(ip, &p.tables[i])
		}
	}
	p.valid = false

	// Update the longest matching entry; on a miss, allocate in the
	// shortest table without a match for this branch.
	longest := -1
	for i := range p.tables {
		e := &p.tables[i].entries[p.lastIdx[i]]
		if e.valid && e.tag == p.lastTag[i] {
			longest = i
		}
	}
	if longest >= 0 {
		e := &p.tables[longest].entries[p.lastIdx[longest]]
		e.ctr = ctrUpdate(e.ctr, taken, -4, 3)
	}
	p.base.Train(ip, taken, pred)
	if pred != taken {
		for i := longest + 1; i < len(p.tables); i++ {
			e := &p.tables[i].entries[p.lastIdx[i]]
			if !e.valid || e.ctr == 0 || e.ctr == -1 {
				*e = ppmEntry{tag: p.lastTag[i], valid: true}
				if taken {
					e.ctr = 0
				} else {
					e.ctr = -1
				}
				break
			}
		}
	}
	p.hist.push(taken)
}

// Name implements Predictor.
func (p *PPM) Name() string { return fmt.Sprintf("ppm-%d", len(p.tables)) }
