package bp

import (
	"testing"

	"branchlab/internal/xrand"
)

// run feeds a sequence of (ip, taken) pairs through p and returns accuracy.
func run(p Predictor, seq func(i int) (uint64, bool), n int) float64 {
	correct := 0
	for i := 0; i < n; i++ {
		ip, taken := seq(i)
		pred := p.Predict(ip)
		if pred == taken {
			correct++
		}
		p.Train(ip, taken, pred)
	}
	return float64(correct) / float64(n)
}

// warm runs the sequence once to train, then measures on a second pass
// continuation.
func accuracyAfterWarmup(p Predictor, seq func(i int) (uint64, bool), warm, measure int) float64 {
	run(p, seq, warm)
	correct := 0
	for i := warm; i < warm+measure; i++ {
		ip, taken := seq(i)
		pred := p.Predict(ip)
		if pred == taken {
			correct++
		}
		p.Train(ip, taken, pred)
	}
	return float64(correct) / float64(measure)
}

func TestStatic(t *testing.T) {
	always := func(i int) (uint64, bool) { return 0x400, true }
	if acc := run(NewStatic(true), always, 100); acc != 1.0 {
		t.Errorf("static-taken on always-taken: %v", acc)
	}
	if acc := run(NewStatic(false), always, 100); acc != 0.0 {
		t.Errorf("static-not-taken on always-taken: %v", acc)
	}
	if NewStatic(true).Name() == NewStatic(false).Name() {
		t.Error("static names should differ")
	}
}

func TestBimodalLearnsBias(t *testing.T) {
	rng := xrand.New(1)
	biased := func(i int) (uint64, bool) { return 0x400, rng.Bool(0.9) }
	acc := accuracyAfterWarmup(NewBimodal(12), biased, 1000, 10000)
	if acc < 0.85 {
		t.Errorf("bimodal on 90%% biased branch: %v, want >= 0.85", acc)
	}
}

func TestBimodalPerfectOnAlwaysTaken(t *testing.T) {
	always := func(i int) (uint64, bool) { return 0x400, true }
	acc := accuracyAfterWarmup(NewBimodal(12), always, 10, 1000)
	if acc != 1.0 {
		t.Errorf("bimodal on always-taken after warmup: %v", acc)
	}
}

// patternSeq replays a fixed direction pattern at one IP.
func patternSeq(pattern []bool) func(i int) (uint64, bool) {
	return func(i int) (uint64, bool) { return 0x400, pattern[i%len(pattern)] }
}

func TestGShareLearnsPattern(t *testing.T) {
	// A short repeating pattern is a pure function of recent global
	// history, which gshare captures but bimodal cannot.
	pattern := []bool{true, true, false, true, false, false}
	g := accuracyAfterWarmup(NewGShare(14, 12), patternSeq(pattern), 5000, 5000)
	b := accuracyAfterWarmup(NewBimodal(14), patternSeq(pattern), 5000, 5000)
	if g < 0.98 {
		t.Errorf("gshare on periodic pattern: %v, want ~1.0", g)
	}
	if g <= b {
		t.Errorf("gshare (%v) should beat bimodal (%v) on patterns", g, b)
	}
}

func TestGShareLearnsCorrelation(t *testing.T) {
	// Branch B copies the direction of branch A two branches earlier.
	rng := xrand.New(2)
	var lastA bool
	seq := func(i int) (uint64, bool) {
		switch i % 2 {
		case 0:
			lastA = rng.Bool(0.5)
			return 0xA00, lastA
		default:
			return 0xB00, lastA
		}
	}
	acc := accuracyAfterWarmup(NewGShare(14, 8), seq, 20000, 20000)
	// A is unpredictable (50%), B is fully determined: overall ~75%+.
	if acc < 0.72 {
		t.Errorf("gshare on correlated pair: %v, want >= 0.72", acc)
	}
}

func TestGSelect(t *testing.T) {
	pattern := []bool{true, false, false, true}
	acc := accuracyAfterWarmup(NewGSelect(6, 8), patternSeq(pattern), 5000, 5000)
	if acc < 0.98 {
		t.Errorf("gselect on periodic pattern: %v", acc)
	}
}

func TestLocalLearnsPeriodicLocalPattern(t *testing.T) {
	// Two interleaved branches with different periodic patterns; local
	// histories disambiguate them without global pollution.
	p1 := []bool{true, true, false}
	p2 := []bool{false, true}
	n1, n2 := 0, 0
	seq := func(i int) (uint64, bool) {
		if i%2 == 0 {
			v := p1[n1%len(p1)]
			n1++
			return 0xA00, v
		}
		v := p2[n2%len(p2)]
		n2++
		return 0xB00, v
	}
	acc := accuracyAfterWarmup(NewLocal(10, 10), seq, 10000, 10000)
	if acc < 0.97 {
		t.Errorf("local on interleaved periodic branches: %v", acc)
	}
}

func TestPerceptronLearnsCorrelation(t *testing.T) {
	// Direction = XOR of two specific history positions with the rest of
	// the history as noise: linearly non-separable for a single weight but
	// the agreement-training still captures strong single-position
	// correlations. Use direction = history[3] (single position) which a
	// perceptron provably learns.
	rng := xrand.New(3)
	var hist []bool
	seq := func(i int) (uint64, bool) {
		var d bool
		if len(hist) >= 4 {
			d = hist[len(hist)-4]
		} else {
			d = rng.Bool(0.5)
		}
		// Interleave a noise branch so history has uncorrelated bits.
		if i%2 == 1 {
			d = rng.Bool(0.5)
			hist = append(hist, d)
			return 0xBEEF, d
		}
		hist = append(hist, d)
		return 0xA00, d
	}
	acc := accuracyAfterWarmup(NewPerceptron(10, 16), seq, 30000, 30000)
	if acc < 0.72 {
		t.Errorf("perceptron on position-correlated branch: %v, want >= 0.72", acc)
	}
}

func TestPPMLearnsLongPattern(t *testing.T) {
	pattern := make([]bool, 23) // prime-length pattern
	rng := xrand.New(4)
	for i := range pattern {
		pattern[i] = rng.Bool(0.5)
	}
	acc := accuracyAfterWarmup(NewPPM(12, 4, 8, 16, 32), patternSeq(pattern), 30000, 30000)
	if acc < 0.95 {
		t.Errorf("ppm on period-23 pattern: %v, want >= 0.95", acc)
	}
}

func TestLoopLearnsTripCount(t *testing.T) {
	// Loop with trip count 7: taken 6 times, then not taken.
	seq := func(i int) (uint64, bool) { return 0x500, i%7 != 6 }
	acc := accuracyAfterWarmup(NewLoop(8), seq, 7*10, 7*100)
	if acc != 1.0 {
		t.Errorf("loop predictor on fixed trip count: %v, want 1.0", acc)
	}
	l := NewLoop(8)
	run(l, seq, 7*10)
	if !l.Confident(0x500) {
		t.Error("loop predictor should be confident after repeated trips")
	}
	if l.Confident(0x999) {
		t.Error("loop predictor confident about unseen branch")
	}
}

func TestLoopIrregularTripResetsConfidence(t *testing.T) {
	rng := xrand.New(5)
	trip := 5
	k := 0
	seq := func(i int) (uint64, bool) {
		k++
		if k >= trip {
			k = 0
			trip = 3 + rng.Intn(8)
			return 0x500, false
		}
		return 0x500, true
	}
	l := NewLoop(8)
	run(l, seq, 5000)
	if l.Confident(0x500) {
		t.Error("loop predictor should not be confident about irregular trip counts")
	}
}

func TestTournamentPicksBetterComponent(t *testing.T) {
	// Pattern branch: gshare wins. Tournament should approach gshare.
	pattern := []bool{true, true, false, true, false, false}
	tour := NewTournament(NewBimodal(12), NewGShare(14, 12), 12)
	acc := accuracyAfterWarmup(tour, patternSeq(pattern), 10000, 10000)
	if acc < 0.95 {
		t.Errorf("tournament on pattern: %v, want >= 0.95 (gshare-level)", acc)
	}
}

func TestTournamentName(t *testing.T) {
	tour := NewTournament(NewBimodal(4), NewStatic(true), 4)
	if tour.Name() != "tournament(bimodal-4,static-taken)" {
		t.Errorf("unexpected name %q", tour.Name())
	}
}

func TestCtrUpdateSaturates(t *testing.T) {
	c := int8(1)
	c = ctrUpdate(c, true, -2, 1)
	if c != 1 {
		t.Errorf("inc at max moved to %d", c)
	}
	c = int8(-2)
	c = ctrUpdate(c, false, -2, 1)
	if c != -2 {
		t.Errorf("dec at min moved to %d", c)
	}
}

func TestHistoryReg(t *testing.T) {
	var h historyReg
	h.push(true)
	h.push(false)
	h.push(true)
	if h.value(3) != 0b101 {
		t.Errorf("history = %b, want 101", h.value(3))
	}
	if h.value(1) != 1 {
		t.Errorf("newest bit = %d", h.value(1))
	}
	for i := 0; i < 100; i++ {
		h.push(true)
	}
	if h.value(64) == 0 {
		t.Error("64-bit history should be saturated with ones")
	}
}

func TestObserveNoOpForPlainPredictors(t *testing.T) {
	// Must not panic for predictors without BranchObserver.
	Observe(NewBimodal(4), 0x1, 0x2, 6, true)
}

func BenchmarkGShare(b *testing.B) {
	g := NewGShare(14, 12)
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := uint64(0x400 + (i%64)*4)
		taken := rng.Bool(0.7)
		pred := g.Predict(ip)
		g.Train(ip, taken, pred)
	}
}

func BenchmarkPerceptron(b *testing.B) {
	p := NewPerceptron(10, 32)
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := uint64(0x400 + (i%64)*4)
		taken := rng.Bool(0.7)
		pred := p.Predict(ip)
		p.Train(ip, taken, pred)
	}
}
