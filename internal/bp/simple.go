package bp

import "fmt"

// Static predicts a fixed direction for every branch. It is the floor any
// dynamic predictor must beat.
type Static struct {
	Taken bool
}

// NewStatic returns a static predictor with the given fixed direction.
func NewStatic(taken bool) *Static { return &Static{Taken: taken} }

// Predict implements Predictor.
func (s *Static) Predict(uint64) bool { return s.Taken }

// Train implements Predictor; static predictors do not learn.
func (s *Static) Train(uint64, bool, bool) {}

// Name implements Predictor.
func (s *Static) Name() string {
	if s.Taken {
		return "static-taken"
	}
	return "static-not-taken"
}

// Bimodal is the classic per-IP table of 2-bit saturating counters.
type Bimodal struct {
	table []int8
	bits  uint
}

// NewBimodal returns a bimodal predictor with 2^bits counters.
func NewBimodal(bits uint) *Bimodal {
	return &Bimodal{table: make([]int8, 1<<bits), bits: bits}
}

// Predict implements Predictor.
func (b *Bimodal) Predict(ip uint64) bool {
	return b.table[hashIP(ip, b.bits)] >= 0
}

// Train implements Predictor.
func (b *Bimodal) Train(ip uint64, taken, _ bool) {
	i := hashIP(ip, b.bits)
	b.table[i] = ctrUpdate(b.table[i], taken, -2, 1)
}

// Name implements Predictor.
func (b *Bimodal) Name() string { return fmt.Sprintf("bimodal-%d", b.bits) }

// GShare XORs global history into the counter index (McFarling 1993),
// letting one table capture direction correlations between branches.
type GShare struct {
	table    []int8
	bits     uint
	histBits uint
	hist     historyReg
}

// NewGShare returns a gshare predictor with 2^bits counters and histBits
// of global history.
func NewGShare(bits, histBits uint) *GShare {
	if histBits > bits {
		histBits = bits
	}
	return &GShare{table: make([]int8, 1<<bits), bits: bits, histBits: histBits}
}

func (g *GShare) index(ip uint64) uint64 {
	return (hashIP(ip, g.bits) ^ g.hist.value(g.histBits)) & ((1 << g.bits) - 1)
}

// Predict implements Predictor.
func (g *GShare) Predict(ip uint64) bool { return g.table[g.index(ip)] >= 0 }

// Train implements Predictor.
func (g *GShare) Train(ip uint64, taken, _ bool) {
	i := g.index(ip)
	g.table[i] = ctrUpdate(g.table[i], taken, -2, 1)
	g.hist.push(taken)
}

// Name implements Predictor.
func (g *GShare) Name() string { return fmt.Sprintf("gshare-%d/%d", g.bits, g.histBits) }

// GSelect concatenates history and IP bits instead of XORing them.
type GSelect struct {
	table    []int8
	ipBits   uint
	histBits uint
	hist     historyReg
}

// NewGSelect returns a gselect predictor indexed by ipBits of IP hash
// concatenated with histBits of global history.
func NewGSelect(ipBits, histBits uint) *GSelect {
	return &GSelect{
		table:    make([]int8, 1<<(ipBits+histBits)),
		ipBits:   ipBits,
		histBits: histBits,
	}
}

func (g *GSelect) index(ip uint64) uint64 {
	return hashIP(ip, g.ipBits)<<g.histBits | g.hist.value(g.histBits)
}

// Predict implements Predictor.
func (g *GSelect) Predict(ip uint64) bool { return g.table[g.index(ip)] >= 0 }

// Train implements Predictor.
func (g *GSelect) Train(ip uint64, taken, _ bool) {
	i := g.index(ip)
	g.table[i] = ctrUpdate(g.table[i], taken, -2, 1)
	g.hist.push(taken)
}

// Name implements Predictor.
func (g *GSelect) Name() string { return fmt.Sprintf("gselect-%d+%d", g.ipBits, g.histBits) }

// Local is a two-level predictor with per-branch local histories (Yeh &
// Patt 1992): a first-level table of local history registers indexes a
// shared second-level pattern table of 2-bit counters.
type Local struct {
	histories []uint16
	pattern   []int8
	ipBits    uint
	histBits  uint
}

// NewLocal returns a two-level local predictor with 2^ipBits history
// registers of histBits bits each.
func NewLocal(ipBits, histBits uint) *Local {
	if histBits > 16 {
		histBits = 16
	}
	return &Local{
		histories: make([]uint16, 1<<ipBits),
		pattern:   make([]int8, 1<<histBits),
		ipBits:    ipBits,
		histBits:  histBits,
	}
}

func (l *Local) patternIndex(ip uint64) uint64 {
	h := l.histories[hashIP(ip, l.ipBits)]
	return uint64(h) & ((1 << l.histBits) - 1)
}

// Predict implements Predictor.
func (l *Local) Predict(ip uint64) bool { return l.pattern[l.patternIndex(ip)] >= 0 }

// Train implements Predictor.
func (l *Local) Train(ip uint64, taken, _ bool) {
	pi := l.patternIndex(ip)
	l.pattern[pi] = ctrUpdate(l.pattern[pi], taken, -2, 1)
	hi := hashIP(ip, l.ipBits)
	l.histories[hi] <<= 1
	if taken {
		l.histories[hi] |= 1
	}
}

// Name implements Predictor.
func (l *Local) Name() string { return fmt.Sprintf("local-%d/%d", l.ipBits, l.histBits) }
