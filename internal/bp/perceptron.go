package bp

import "fmt"

// Perceptron is the neural predictor of Jiménez & Lin (HPCA 2001): a table
// of weight vectors over global-history bits. Compared with exact pattern
// matching it damps uncorrelated history positions, the property the paper
// contrasts with PPM in §II.
type Perceptron struct {
	weights  [][]int8 // [entry][histLen+1], index 0 is the bias weight
	ipBits   uint
	histLen  int
	theta    int32
	hist     historyReg
	lastSum  int32
	lastIP   uint64
	haveLast bool
}

// NewPerceptron returns a perceptron predictor with 2^ipBits weight
// vectors over histLen history bits. The training threshold follows the
// published θ = ⌊1.93·h + 14⌋.
func NewPerceptron(ipBits uint, histLen int) *Perceptron {
	if histLen > 64 {
		histLen = 64
	}
	w := make([][]int8, 1<<ipBits)
	for i := range w {
		w[i] = make([]int8, histLen+1)
	}
	return &Perceptron{
		weights: w,
		ipBits:  ipBits,
		histLen: histLen,
		theta:   int32(1.93*float64(histLen)) + 14,
	}
}

func (p *Perceptron) sum(ip uint64) int32 {
	w := p.weights[hashIP(ip, p.ipBits)]
	s := int32(w[0])
	h := p.hist.bits
	for i := 1; i <= p.histLen; i++ {
		if h&1 != 0 {
			s += int32(w[i])
		} else {
			s -= int32(w[i])
		}
		h >>= 1
	}
	return s
}

// Predict implements Predictor.
func (p *Perceptron) Predict(ip uint64) bool {
	p.lastSum = p.sum(ip)
	p.lastIP = ip
	p.haveLast = true
	return p.lastSum >= 0
}

// Train implements Predictor.
func (p *Perceptron) Train(ip uint64, taken, pred bool) {
	s := p.lastSum
	if !p.haveLast || p.lastIP != ip {
		s = p.sum(ip)
	}
	p.haveLast = false
	mag := s
	if mag < 0 {
		mag = -mag
	}
	if pred != taken || mag <= p.theta {
		w := p.weights[hashIP(ip, p.ipBits)]
		w[0] = ctrUpdate(w[0], taken, -128, 127)
		h := p.hist.bits
		for i := 1; i <= p.histLen; i++ {
			agree := (h&1 != 0) == taken
			w[i] = ctrUpdate(w[i], agree, -128, 127)
			h >>= 1
		}
	}
	p.hist.push(taken)
}

// Name implements Predictor.
func (p *Perceptron) Name() string {
	return fmt.Sprintf("perceptron-%d/%d", p.ipBits, p.histLen)
}
