package bp

import "fmt"

// Loop predicts loop-exit branches by learning the trip count of regular
// loops (Sherwood & Calder 2000). A loop branch that is taken n-1 times
// and then not taken is predicted perfectly once the same trip count has
// been observed confTarget times in a row.
type Loop struct {
	entries []loopEntry
	bits    uint
}

type loopEntry struct {
	tag      uint16
	pastIter uint32
	currIter uint32
	conf     uint8
	dir      bool // the direction taken on loop-body iterations
	valid    bool
}

const loopConfTarget = 3

// NewLoop returns a loop predictor with 2^bits entries.
func NewLoop(bits uint) *Loop {
	return &Loop{entries: make([]loopEntry, 1<<bits), bits: bits}
}

func (l *Loop) lookup(ip uint64) (*loopEntry, uint16) {
	h := hashIP(ip, l.bits+14)
	return &l.entries[h&((1<<l.bits)-1)], uint16(h >> l.bits)
}

// Index returns ip's entry index and tag. A caller that both queries and
// trains the same branch (the TAGE-SC-L combiner's predict/retire pair)
// can hash once and use the *At variants with the cached pair.
func (l *Loop) Index(ip uint64) (uint32, uint16) {
	h := hashIP(ip, l.bits+14)
	return uint32(h & ((1 << l.bits) - 1)), uint16(h >> l.bits)
}

// Confident reports whether the loop predictor has a confident prediction
// for ip; combiners use it to gate the loop override.
func (l *Loop) Confident(ip uint64) bool {
	idx, tag := l.Index(ip)
	return l.ConfidentAt(idx, tag)
}

// ConfidentAt is Confident for a pair precomputed with Index.
func (l *Loop) ConfidentAt(idx uint32, tag uint16) bool {
	e := &l.entries[idx]
	return e.valid && e.tag == tag && e.conf >= loopConfTarget
}

// Predict implements Predictor. With no confident entry it predicts the
// loop-body direction "taken", the common backward-branch case.
func (l *Loop) Predict(ip uint64) bool {
	idx, tag := l.Index(ip)
	return l.PredictAt(idx, tag)
}

// PredictAt is Predict for a pair precomputed with Index.
func (l *Loop) PredictAt(idx uint32, tag uint16) bool {
	e := &l.entries[idx]
	if !e.valid || e.tag != tag {
		return true
	}
	if e.conf >= loopConfTarget && e.currIter+1 >= e.pastIter {
		return !e.dir // predicted exit
	}
	return e.dir
}

// Train implements Predictor.
func (l *Loop) Train(ip uint64, taken, _ bool) {
	idx, tag := l.Index(ip)
	l.TrainAt(idx, tag, taken)
}

// TrainAt is Train for a pair precomputed with Index.
func (l *Loop) TrainAt(idx uint32, tag uint16, taken bool) {
	e := &l.entries[idx]
	if !e.valid || e.tag != tag {
		// Allocate optimistically: assume the common "taken while looping"
		// shape; the first exit fixes pastIter.
		*e = loopEntry{tag: tag, dir: taken, currIter: 1, valid: true}
		return
	}
	e.currIter++
	if taken == e.dir {
		// Guard against non-loop branches saturating the iteration count.
		if e.currIter > 1<<20 {
			*e = loopEntry{}
		}
		return
	}
	// The branch left the loop: one full trip observed.
	if e.currIter == e.pastIter {
		if e.conf < 255 {
			e.conf++
		}
	} else {
		e.pastIter = e.currIter
		e.conf = 0
	}
	e.currIter = 0
}

// Name implements Predictor.
func (l *Loop) Name() string { return fmt.Sprintf("loop-%d", l.bits) }

// Tournament combines two predictors with a per-IP chooser table
// (McFarling's combining predictor).
type Tournament struct {
	a, b    Predictor
	chooser []int8 // >=0 selects a, <0 selects b
	bits    uint
	lastA   bool
	lastB   bool
	lastIP  uint64
	valid   bool
}

// NewTournament combines a and b under a 2^bits-entry chooser.
func NewTournament(a, b Predictor, bits uint) *Tournament {
	return &Tournament{a: a, b: b, chooser: make([]int8, 1<<bits), bits: bits}
}

// Predict implements Predictor.
func (t *Tournament) Predict(ip uint64) bool {
	t.lastA = t.a.Predict(ip)
	t.lastB = t.b.Predict(ip)
	t.lastIP = ip
	t.valid = true
	if t.chooser[hashIP(ip, t.bits)] >= 0 {
		return t.lastA
	}
	return t.lastB
}

// Train implements Predictor.
func (t *Tournament) Train(ip uint64, taken, pred bool) {
	pa, pb := t.lastA, t.lastB
	if !t.valid || t.lastIP != ip {
		pa = t.a.Predict(ip)
		pb = t.b.Predict(ip)
	}
	t.valid = false
	if pa != pb {
		i := hashIP(ip, t.bits)
		t.chooser[i] = ctrUpdate(t.chooser[i], pa == taken, -2, 1)
	}
	t.a.Train(ip, taken, pa)
	t.b.Train(ip, taken, pb)
}

// Name implements Predictor.
func (t *Tournament) Name() string {
	return fmt.Sprintf("tournament(%s,%s)", t.a.Name(), t.b.Name())
}
