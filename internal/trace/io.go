package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary trace format ("BLT1"):
//
//	magic   [4]byte  "BLT1"
//	records *        one varint-encoded record per instruction
//	         flags   byte: kind(4) | taken(1) | hasMem(1) | hasDst(1) | hasSrc(1)
//	         ipDelta zig-zag varint from previous IP
//	         target  varint (branches only)
//	         memAddr varint (hasMem)
//	         dstReg+dstValue (hasDst)
//	         srcRegs byte+byte (hasSrc; NoReg-padded)
//
// The format is delta- and presence-encoded so that long synthetic traces
// stored by cmd/tracegen stay compact (typically ~4-6 bytes/instruction).

var magic = [4]byte{'B', 'L', 'T', '1'}

// ErrBadMagic is returned when a trace file does not start with the
// expected header.
var ErrBadMagic = errors.New("trace: bad magic (not a BLT1 trace file)")

const (
	flagTaken  = 1 << 4
	flagHasMem = 1 << 5
	flagHasDst = 1 << 6
	flagHasSrc = 1 << 7
	kindMask   = 0x0F
)

// Writer encodes instructions to an io.Writer in the BLT1 format.
type Writer struct {
	w      *bufio.Writer
	lastIP uint64
	wrote  bool
	buf    [8 * binary.MaxVarintLen64]byte
}

// NewWriter returns a Writer that emits the BLT1 header on the first
// WriteInst call.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16)}
}

func zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// WriteInst appends one instruction to the trace.
func (w *Writer) WriteInst(inst *Inst) error {
	if !inst.Kind.Valid() {
		return fmt.Errorf("trace: invalid kind %d", inst.Kind)
	}
	if !w.wrote {
		if _, err := w.w.Write(magic[:]); err != nil {
			return err
		}
		w.wrote = true
	}
	flags := byte(inst.Kind) & kindMask
	if inst.Taken {
		flags |= flagTaken
	}
	hasMem := inst.Kind == KindLoad || inst.Kind == KindStore
	if hasMem {
		flags |= flagHasMem
	}
	hasDst := inst.DstReg != NoReg
	if hasDst {
		flags |= flagHasDst
	}
	hasSrc := inst.SrcRegs[0] != NoReg || inst.SrcRegs[1] != NoReg
	if hasSrc {
		flags |= flagHasSrc
	}

	b := w.buf[:0]
	b = append(b, flags)
	b = binary.AppendUvarint(b, zigzag(int64(inst.IP-w.lastIP)))
	w.lastIP = inst.IP
	if inst.Kind.IsBranch() {
		b = binary.AppendUvarint(b, inst.Target)
	}
	if hasMem {
		b = binary.AppendUvarint(b, inst.MemAddr)
	}
	if hasDst {
		b = append(b, inst.DstReg)
		b = binary.AppendUvarint(b, inst.DstValue)
	}
	if hasSrc {
		b = append(b, inst.SrcRegs[0], inst.SrcRegs[1])
	}
	_, err := w.w.Write(b)
	return err
}

// Flush writes any buffered data to the underlying writer. A trace with no
// instructions still gets a valid header.
func (w *Writer) Flush() error {
	if !w.wrote {
		if _, err := w.w.Write(magic[:]); err != nil {
			return err
		}
		w.wrote = true
	}
	return w.w.Flush()
}

// Reader decodes a BLT1 trace. It implements Stream; decoding errors are
// reported via Err after Next returns false.
type Reader struct {
	r      *bufio.Reader
	lastIP uint64
	opened bool
	err    error
}

// NewReader returns a Reader over r. The header is validated on the first
// Next call.
func NewReader(r io.Reader) *Reader {
	return &Reader{r: bufio.NewReaderSize(r, 1<<16)}
}

// Err returns the first error encountered while decoding, excluding a clean
// end of file.
func (r *Reader) Err() error { return r.err }

// fail records a mid-record decoding error. EOF inside a record means the
// file was truncated, which callers must be able to distinguish from a
// clean end of trace.
func (r *Reader) fail(err error) bool {
	if errors.Is(err, io.EOF) {
		err = io.ErrUnexpectedEOF
	}
	r.err = err
	return false
}

// Next implements Stream.
func (r *Reader) Next(inst *Inst) bool {
	if r.err != nil {
		return false
	}
	if !r.opened {
		var hdr [4]byte
		if _, err := io.ReadFull(r.r, hdr[:]); err != nil {
			r.err = err
			if errors.Is(err, io.EOF) {
				r.err = ErrBadMagic
			}
			return false
		}
		if hdr != magic {
			r.err = ErrBadMagic
			return false
		}
		r.opened = true
	}
	flags, err := r.r.ReadByte()
	if err != nil {
		if !errors.Is(err, io.EOF) {
			r.err = err
		}
		return false
	}
	*inst = Inst{
		Kind:    Kind(flags & kindMask),
		Taken:   flags&flagTaken != 0,
		DstReg:  NoReg,
		SrcRegs: [2]uint8{NoReg, NoReg},
	}
	if !inst.Kind.Valid() {
		r.err = fmt.Errorf("trace: invalid kind %d in stream", inst.Kind)
		return false
	}
	du, err := binary.ReadUvarint(r.r)
	if err != nil {
		return r.fail(err)
	}
	r.lastIP += uint64(unzigzag(du))
	inst.IP = r.lastIP
	if inst.Kind.IsBranch() {
		if inst.Target, err = binary.ReadUvarint(r.r); err != nil {
			return r.fail(err)
		}
	}
	if flags&flagHasMem != 0 {
		if inst.MemAddr, err = binary.ReadUvarint(r.r); err != nil {
			return r.fail(err)
		}
	}
	if flags&flagHasDst != 0 {
		if inst.DstReg, err = r.r.ReadByte(); err != nil {
			return r.fail(err)
		}
		if inst.DstValue, err = binary.ReadUvarint(r.r); err != nil {
			return r.fail(err)
		}
	}
	if flags&flagHasSrc != 0 {
		if inst.SrcRegs[0], err = r.r.ReadByte(); err != nil {
			return r.fail(err)
		}
		if inst.SrcRegs[1], err = r.r.ReadByte(); err != nil {
			return r.fail(err)
		}
	}
	return true
}
