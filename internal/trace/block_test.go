package trace

import (
	"errors"
	"testing"
)

// drainBlocks enumerates bs into a flat slice.
func drainBlocks(bs BlockStream) []Inst {
	var out []Inst
	for blk := bs.NextBlock(); len(blk) > 0; blk = bs.NextBlock() {
		out = append(out, blk...)
	}
	return out
}

// drainStream enumerates s via Next.
func drainStream(s Stream) []Inst {
	var out []Inst
	var inst Inst
	for s.Next(&inst) {
		out = append(out, inst)
	}
	return out
}

func bufferOf(insts []Inst) *Buffer {
	b := NewBuffer(len(insts))
	for _, inst := range insts {
		b.Append(inst)
	}
	return b
}

func sameInsts(t *testing.T, got, want []Inst, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d instructions, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: instruction %d differs: %+v != %+v", label, i, got[i], want[i])
		}
	}
}

// Any block size must enumerate exactly the per-instruction sequence,
// including sizes that do not divide the trace length and sizes larger
// than the trace.
func TestBlocksAdapterMatchesStream(t *testing.T) {
	insts := synthetic(1000)
	b := bufferOf(insts)
	for _, n := range []int{1, 3, 7, 256, 1000, 5000} {
		got := drainBlocks(Blocks(b.Stream(), n))
		sameInsts(t, got, insts, "adapter")
	}
	// n <= 0 selects the default block length.
	sameInsts(t, drainBlocks(Blocks(b.Stream(), 0)), insts, "default size")
}

func TestBufferServesNativeZeroCopyBlocks(t *testing.T) {
	insts := synthetic(100)
	b := bufferOf(insts)
	s := b.Stream()
	bs, ok := s.(BlockStream)
	if !ok {
		t.Fatal("Buffer.Stream should serve blocks natively")
	}
	if AsBlocks(s, 8) != bs {
		t.Error("AsBlocks should return the native block stream, not wrap it")
	}
	blk := bs.NextBlock()
	if len(blk) != 100 {
		t.Fatalf("expected the whole buffer in one block, got %d", len(blk))
	}
	if &blk[0] != &b.insts[0] {
		t.Error("native block is not a zero-copy view of the buffer")
	}
	// Prefix views serve blocks of the same backing array.
	pblk := b.Prefix(10).Stream().(BlockStream).NextBlock()
	if len(pblk) != 10 || &pblk[0] != &b.insts[0] {
		t.Error("prefix block is not a zero-copy view of the parent")
	}
}

func TestBufferBlockStreamSizes(t *testing.T) {
	insts := synthetic(100)
	b := bufferOf(insts)
	bs := b.BlockStream(32)
	var sizes []int
	for blk := bs.NextBlock(); len(blk) > 0; blk = bs.NextBlock() {
		sizes = append(sizes, len(blk))
	}
	want := []int{32, 32, 32, 4}
	if len(sizes) != len(want) {
		t.Fatalf("block sizes %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Fatalf("block sizes %v, want %v", sizes, want)
		}
	}
	sameInsts(t, drainBlocks(b.BlockStream(32)), insts, "sized blocks")
}

// Mixing Next and NextBlock on one reader walks a single cursor.
func TestBufferStreamMixedIteration(t *testing.T) {
	insts := synthetic(50)
	s := bufferOf(insts).Stream()
	var first Inst
	if !s.Next(&first) || first != insts[0] {
		t.Fatal("Next failed")
	}
	blk := s.(BlockStream).NextBlock()
	sameInsts(t, blk, insts[1:], "tail block after Next")
}

func TestSliceView(t *testing.T) {
	insts := synthetic(100)
	b := bufferOf(insts)
	sameInsts(t, drainStream(b.Slice(10, 40).Stream()), insts[10:40], "slice")
	if b.Slice(-5, 1000).Len() != 100 {
		t.Error("Slice should clamp out-of-range bounds")
	}
	if b.Slice(60, 40).Len() != 0 {
		t.Error("inverted bounds should yield an empty view")
	}
	if b.Slice(0, -2).Len() != 0 || b.Slice(-9, -2).Len() != 0 {
		t.Error("negative hi should clamp to an empty view, not panic")
	}
	// Appending to the view must not corrupt the parent.
	v := b.Slice(0, 10)
	v.Append(Inst{IP: 0xdead})
	if b.At(10) == (Inst{IP: 0xdead}) {
		t.Error("append to slice view leaked into parent")
	}
}

// closeSpy is a plain stream recording Close calls.
type closeSpy struct {
	s      Stream
	closed int
	err    error
}

func (c *closeSpy) Next(inst *Inst) bool { return c.s.Next(inst) }
func (c *closeSpy) Close() error         { c.closed++; return c.err }

// blockCloseSpy additionally serves blocks natively.
type blockCloseSpy struct {
	closeSpy
	bs BlockStream
}

func (c *blockCloseSpy) NextBlock() []Inst { return c.bs.NextBlock() }

// Limit used to re-wrap streams in a FuncStream, silently dropping the
// underlying Closer — CloseStream on the wrapper leaked the program
// generator's goroutine. It must forward Close now, on both the plain
// and the block-native path.
func TestLimitPropagatesClose(t *testing.T) {
	b := bufferOf(synthetic(100))
	plain := &closeSpy{s: FuncStream(b.Stream().Next)}
	if err := CloseStream(Limit(plain, 10)); err != nil || plain.closed != 1 {
		t.Errorf("plain Limit did not forward Close: closed=%d err=%v", plain.closed, err)
	}
	inner := b.Stream()
	native := &blockCloseSpy{closeSpy: closeSpy{s: inner}, bs: inner.(BlockStream)}
	if err := CloseStream(Limit(native, 10)); err != nil || native.closed != 1 {
		t.Errorf("block Limit did not forward Close: closed=%d err=%v", native.closed, err)
	}
	wantErr := errors.New("boom")
	failing := &closeSpy{s: FuncStream(b.Stream().Next), err: wantErr}
	if err := CloseStream(Limit(failing, 10)); !errors.Is(err, wantErr) {
		t.Errorf("Limit swallowed the Close error: %v", err)
	}
}

func TestLimitBlocks(t *testing.T) {
	insts := synthetic(100)
	b := bufferOf(insts)
	// Block-native limit, cut mid-block.
	l := Limit(b.Stream(), 37)
	if _, ok := l.(BlockStream); !ok {
		t.Fatal("Limit over a block-native stream should serve blocks")
	}
	sameInsts(t, drainBlocks(l.(BlockStream)), insts[:37], "limited blocks")
	// Per-instruction iteration agrees.
	sameInsts(t, drainStream(Limit(b.Stream(), 37)), insts[:37], "limited stream")
	// Limit beyond the end yields the whole trace.
	sameInsts(t, drainBlocks(Limit(b.Stream(), 1000).(BlockStream)), insts, "over-limit")
}

func TestConcatPropagatesClose(t *testing.T) {
	b := bufferOf(synthetic(30))
	spies := []*closeSpy{
		{s: FuncStream(b.Stream().Next)},
		{s: FuncStream(b.Stream().Next), err: errors.New("first")},
		{s: FuncStream(b.Stream().Next), err: errors.New("second")},
	}
	c := Concat(spies[0], spies[1], spies[2])
	// Drain the first substream only, then close.
	var inst Inst
	for i := 0; i < 35; i++ {
		c.Next(&inst)
	}
	err := CloseStream(c)
	for i, sp := range spies {
		if sp.closed != 1 {
			t.Errorf("substream %d closed %d times, want 1", i, sp.closed)
		}
	}
	//lint:ignore errcontract asserts which spy's Close error won by its distinguishing message; the spies mint ad-hoc errors, not sentinels
	if err == nil || err.Error() != "first" {
		t.Errorf("Concat should return the first Close error, got %v", err)
	}
}

func TestConcatBlocks(t *testing.T) {
	a, b := synthetic(85), synthetic(40)
	c := Concat(bufferOf(a).Stream(), bufferOf(b).Stream())
	bs, ok := c.(BlockStream)
	if !ok {
		t.Fatal("Concat should serve blocks")
	}
	sameInsts(t, drainBlocks(bs), append(append([]Inst{}, a...), b...), "concat blocks")
}

func TestEmptyStreamsYieldNoBlocks(t *testing.T) {
	if blk := bufferOf(nil).Stream().(BlockStream).NextBlock(); len(blk) != 0 {
		t.Error("empty buffer produced a block")
	}
	if blk := Blocks(bufferOf(nil).Stream(), 16).NextBlock(); len(blk) != 0 {
		t.Error("adapter over empty stream produced a block")
	}
	if blk := Concat().(BlockStream).NextBlock(); len(blk) != 0 {
		t.Error("empty concat produced a block")
	}
}
