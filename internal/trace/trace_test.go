package trace

import (
	"testing"
)

func TestKindString(t *testing.T) {
	if KindALU.String() != "alu" || KindCondBr.String() != "condbr" {
		t.Errorf("unexpected kind names: %v %v", KindALU, KindCondBr)
	}
	if Kind(200).String() == "" {
		t.Error("out-of-range kind should still render")
	}
}

func TestKindClassification(t *testing.T) {
	branches := []Kind{KindCondBr, KindJump, KindIndirect, KindCall, KindRet}
	for _, k := range branches {
		if !k.IsBranch() {
			t.Errorf("%v should be a branch", k)
		}
	}
	nonBranches := []Kind{KindALU, KindMul, KindDiv, KindFP, KindLoad, KindStore, KindNop}
	for _, k := range nonBranches {
		if k.IsBranch() {
			t.Errorf("%v should not be a branch", k)
		}
	}
	if !KindCondBr.IsCond() || KindJump.IsCond() {
		t.Error("IsCond misclassifies")
	}
}

func TestInstReadsWrites(t *testing.T) {
	i := Inst{DstReg: 3, SrcRegs: [2]uint8{1, NoReg}}
	if !i.Reads(1) || i.Reads(2) || i.Reads(NoReg) {
		t.Error("Reads misclassifies")
	}
	if !i.Writes(3) || i.Writes(1) || i.Writes(NoReg) {
		t.Error("Writes misclassifies")
	}
}

func synthetic(n int) []Inst {
	insts := make([]Inst, 0, n)
	ip := uint64(0x400000)
	for j := 0; j < n; j++ {
		inst := Inst{IP: ip, Kind: KindALU, DstReg: NoReg, SrcRegs: [2]uint8{NoReg, NoReg}}
		switch j % 5 {
		case 0:
			inst.Kind = KindCondBr
			inst.Taken = j%2 == 0
			inst.Target = ip + 0x40
			inst.SrcRegs[0] = uint8(j % 30)
		case 1:
			inst.Kind = KindLoad
			inst.MemAddr = uint64(j) * 64
			inst.DstReg = uint8(j % 30)
		case 2:
			inst.Kind = KindStore
			inst.MemAddr = uint64(j) * 8
			inst.SrcRegs[0] = uint8(j % 30)
		case 3:
			inst.DstReg = uint8(j % 30)
			inst.DstValue = uint64(j * 31)
			inst.SrcRegs[0] = uint8((j + 1) % 30)
			inst.SrcRegs[1] = uint8((j + 2) % 30)
		}
		insts = append(insts, inst)
		ip += 4
	}
	return insts
}

func TestBufferRoundTrip(t *testing.T) {
	insts := synthetic(1000)
	b := NewBuffer(0)
	for _, inst := range insts {
		b.Append(inst)
	}
	if b.Len() != len(insts) {
		t.Fatalf("Len = %d, want %d", b.Len(), len(insts))
	}
	s := b.Stream()
	var got Inst
	for i := range insts {
		if !s.Next(&got) {
			t.Fatalf("stream ended early at %d", i)
		}
		if got != insts[i] {
			t.Fatalf("inst %d mismatch: %+v != %+v", i, got, insts[i])
		}
	}
	if s.Next(&got) {
		t.Error("stream should be exhausted")
	}
	// Two streams over one buffer are independent.
	s1, s2 := b.Stream(), b.Stream()
	var a, c Inst
	s1.Next(&a)
	s1.Next(&a)
	s2.Next(&c)
	if c != insts[0] {
		t.Error("second stream not independent")
	}
}

func TestLimit(t *testing.T) {
	b := NewBuffer(0)
	for _, inst := range synthetic(100) {
		b.Append(inst)
	}
	if n := Count(Limit(b.Stream(), 37)); n != 37 {
		t.Errorf("Limit(37) yielded %d", n)
	}
	if n := Count(Limit(b.Stream(), 1000)); n != 100 {
		t.Errorf("Limit(1000) over 100 insts yielded %d", n)
	}
	if n := Count(Limit(b.Stream(), 0)); n != 0 {
		t.Errorf("Limit(0) yielded %d", n)
	}
}

func TestConcat(t *testing.T) {
	b1, b2 := NewBuffer(0), NewBuffer(0)
	for i, inst := range synthetic(10) {
		if i < 4 {
			b1.Append(inst)
		} else {
			b2.Append(inst)
		}
	}
	if n := Count(Concat(b1.Stream(), b2.Stream())); n != 10 {
		t.Errorf("Concat yielded %d, want 10", n)
	}
	if n := Count(Concat()); n != 0 {
		t.Errorf("empty Concat yielded %d", n)
	}
}

func TestRecord(t *testing.T) {
	b := NewBuffer(0)
	for _, inst := range synthetic(50) {
		b.Append(inst)
	}
	copied := Record(b.Stream())
	if copied.Len() != 50 {
		t.Fatalf("Record copied %d, want 50", copied.Len())
	}
	for i := 0; i < 50; i++ {
		if copied.At(i) != b.At(i) {
			t.Fatalf("inst %d differs after Record", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	b := NewBuffer(0)
	for _, inst := range synthetic(1000) {
		b.Append(inst)
	}
	sum := Summarize(b.Stream())
	if sum.Insts != 1000 {
		t.Errorf("Insts = %d", sum.Insts)
	}
	if sum.CondBranches != 200 {
		t.Errorf("CondBranches = %d, want 200", sum.CondBranches)
	}
	if sum.Loads != 200 || sum.Stores != 200 {
		t.Errorf("Loads/Stores = %d/%d, want 200/200", sum.Loads, sum.Stores)
	}
	if sum.TakenRate != 0.5 {
		t.Errorf("TakenRate = %v, want 0.5", sum.TakenRate)
	}
	if sum.StaticCondBr != 200 {
		t.Errorf("StaticCondBr = %d, want 200", sum.StaticCondBr)
	}
}

func TestCloseStream(t *testing.T) {
	if err := CloseStream(FuncStream(func(*Inst) bool { return false })); err != nil {
		t.Errorf("CloseStream on plain stream: %v", err)
	}
	cs := &closableStream{}
	if err := CloseStream(cs); err != nil || !cs.closed {
		t.Errorf("CloseStream did not close: err=%v closed=%v", err, cs.closed)
	}
}

type closableStream struct{ closed bool }

func (c *closableStream) Next(*Inst) bool { return false }
func (c *closableStream) Close() error    { c.closed = true; return nil }
