// Package trace defines the instruction-trace model shared by the whole
// simulator: instruction records, trace streams, in-memory trace buffers,
// and a compact binary file format.
//
// A trace is the only interface between workload generation and measurement:
// every analysis in this repository (prediction, pipeline timing, H2P
// screening, dependency graphs, phase detection) consumes a Stream and
// nothing else, mirroring the deployment assumptions of CBP2016 and
// ChampSim that the paper builds on.
package trace

import "fmt"

// Kind classifies an instruction for the timing model and the analyses.
type Kind uint8

// Instruction kinds. The branch kinds mirror the CBP/ChampSim taxonomy:
// conditional branches are the prediction targets; unconditional kinds
// still steer fetch and contribute to path history.
const (
	KindALU      Kind = iota // simple integer op
	KindMul                  // integer multiply
	KindDiv                  // integer divide
	KindFP                   // floating-point op
	KindLoad                 // memory read
	KindStore                // memory write
	KindCondBr               // conditional branch
	KindJump                 // unconditional direct jump
	KindIndirect             // unconditional indirect jump
	KindCall                 // direct call
	KindRet                  // return
	KindNop                  // no-op / other

	kindCount
)

var kindNames = [...]string{
	"alu", "mul", "div", "fp", "load", "store",
	"condbr", "jump", "indirect", "call", "ret", "nop",
}

// String returns a short lower-case mnemonic for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a defined instruction kind.
func (k Kind) Valid() bool { return k < kindCount }

// IsBranch reports whether k redirects control flow.
func (k Kind) IsBranch() bool { return k >= KindCondBr && k <= KindRet }

// IsCond reports whether k is a conditional branch.
func (k Kind) IsCond() bool { return k == KindCondBr }

// NumRegs is the number of architectural registers in the trace model.
const NumRegs = 32

// NoReg marks an unused register slot in an instruction record.
const NoReg = 0xFF

// Inst is one dynamic instruction. The fields mirror what the paper's
// methodology assumes is visible to analysis: the instruction pointer,
// instruction type, branch target and resolved direction (the CBP2016
// interface), plus register/memory operand identities and the written
// value, which power the dependency-graph and register-value studies
// (paper §IV-A, Fig 10).
type Inst struct {
	IP       uint64   // instruction pointer
	Target   uint64   // branch target (branches only)
	MemAddr  uint64   // effective address (loads/stores only)
	DstValue uint64   // value written to DstReg (analyses use low 32 bits)
	Kind     Kind     // instruction class
	Taken    bool     // resolved direction (conditional branches only)
	DstReg   uint8    // destination register or NoReg
	SrcRegs  [2]uint8 // source registers, NoReg-padded
}

// IsBranch reports whether the instruction redirects control flow.
func (i *Inst) IsBranch() bool { return i.Kind.IsBranch() }

// IsCondBranch reports whether the instruction is a conditional branch.
func (i *Inst) IsCondBranch() bool { return i.Kind == KindCondBr }

// Reads reports whether the instruction reads register r.
func (i *Inst) Reads(r uint8) bool {
	return r != NoReg && (i.SrcRegs[0] == r || i.SrcRegs[1] == r)
}

// Writes reports whether the instruction writes register r.
func (i *Inst) Writes(r uint8) bool { return r != NoReg && i.DstReg == r }

// Stream is a forward-only producer of instructions.
//
// Next fills *inst and returns true, or returns false at end of trace.
// After Next returns false, further calls must also return false.
type Stream interface {
	Next(inst *Inst) bool
}

// Closer is implemented by streams that hold resources (files, generator
// goroutines). Callers that receive a Stream should close it if it
// implements Closer.
type Closer interface {
	Close() error
}

// CloseStream closes s if it implements Closer.
func CloseStream(s Stream) error {
	if c, ok := s.(Closer); ok {
		return c.Close()
	}
	return nil
}

// FuncStream adapts a function to the Stream interface.
type FuncStream func(*Inst) bool

// Next implements Stream.
func (f FuncStream) Next(inst *Inst) bool { return f(inst) }

// Limit returns a stream that yields at most n instructions from s.
func Limit(s Stream, n uint64) Stream {
	remaining := n
	return FuncStream(func(inst *Inst) bool {
		if remaining == 0 {
			return false
		}
		if !s.Next(inst) {
			remaining = 0
			return false
		}
		remaining--
		return true
	})
}

// Concat returns a stream that yields all instructions of each stream in
// turn.
func Concat(streams ...Stream) Stream {
	idx := 0
	return FuncStream(func(inst *Inst) bool {
		for idx < len(streams) {
			if streams[idx].Next(inst) {
				return true
			}
			idx++
		}
		return false
	})
}

// Count drains s and returns the number of instructions it produced.
func Count(s Stream) uint64 {
	var inst Inst
	var n uint64
	for s.Next(&inst) {
		n++
	}
	return n
}

// Buffer is a materialized trace that can be replayed any number of times.
// Replaying one buffer across predictor/pipeline configurations is how the
// sweep experiments (Fig 1, Fig 5, Fig 7) hold the workload constant.
type Buffer struct {
	insts []Inst
}

// NewBuffer returns an empty buffer with capacity hint n.
func NewBuffer(n int) *Buffer {
	return &Buffer{insts: make([]Inst, 0, n)}
}

// recordCapMax bounds the up-front allocation of RecordSized: beyond
// ~16M instructions (roughly 640MB of records) growth proceeds by
// doubling, so a wildly overestimated hint cannot pre-commit the
// machine's memory.
const recordCapMax = 1 << 24

// Record drains s into a new Buffer. Callers that know the expected
// instruction count (e.g. a generation budget) should use RecordSized to
// avoid repeated slice regrowth on large recordings.
func Record(s Stream) *Buffer {
	return RecordSized(s, 1<<16)
}

// RecordSized drains s into a new Buffer whose capacity is sized from
// sizeHint, the expected instruction count. The hint only tunes the
// initial allocation; the recording is complete regardless.
func RecordSized(s Stream, sizeHint uint64) *Buffer {
	hint := sizeHint
	if hint < 1<<10 {
		hint = 1 << 10
	}
	if hint > recordCapMax {
		hint = recordCapMax
	}
	b := NewBuffer(int(hint))
	var inst Inst
	for s.Next(&inst) {
		b.insts = append(b.insts, inst)
	}
	return b
}

// Append adds one instruction to the buffer.
func (b *Buffer) Append(inst Inst) { b.insts = append(b.insts, inst) }

// Len returns the number of instructions in the buffer.
func (b *Buffer) Len() int { return len(b.insts) }

// At returns the i-th instruction.
func (b *Buffer) At(i int) Inst { return b.insts[i] }

// Stream returns a new independent reader over the buffer.
func (b *Buffer) Stream() Stream {
	i := 0
	return FuncStream(func(inst *Inst) bool {
		if i >= len(b.insts) {
			return false
		}
		*inst = b.insts[i]
		i++
		return true
	})
}

// Prefix returns a zero-copy view of the buffer's first n instructions
// (the whole buffer when n >= Len). The view shares the parent's backing
// array but caps its capacity, so appending to either afterwards cannot
// corrupt the other. Replaying a prefix is how the trace cache serves a
// smaller instruction budget from a longer recording of the same run.
func (b *Buffer) Prefix(n int) *Buffer {
	if n < 0 {
		n = 0
	}
	if n > len(b.insts) {
		n = len(b.insts)
	}
	return &Buffer{insts: b.insts[:n:n]}
}

// PrefixStream returns a reader over the buffer's first n instructions
// without materializing a view.
func (b *Buffer) PrefixStream(n int) Stream {
	return b.Prefix(n).Stream()
}

// Summary holds aggregate counts describing a trace.
type Summary struct {
	Insts        uint64 // total instructions
	CondBranches uint64 // dynamic conditional branches
	Branches     uint64 // all dynamic branches
	Loads        uint64 // dynamic loads
	Stores       uint64 // dynamic stores
	StaticCondBr int    // distinct conditional-branch IPs
	TakenRate    float64
}

// Summarize drains s and returns aggregate statistics.
func Summarize(s Stream) Summary {
	var sum Summary
	var inst Inst
	taken := uint64(0)
	static := make(map[uint64]struct{})
	for s.Next(&inst) {
		sum.Insts++
		switch {
		case inst.Kind == KindCondBr:
			sum.CondBranches++
			sum.Branches++
			static[inst.IP] = struct{}{}
			if inst.Taken {
				taken++
			}
		case inst.Kind.IsBranch():
			sum.Branches++
		case inst.Kind == KindLoad:
			sum.Loads++
		case inst.Kind == KindStore:
			sum.Stores++
		}
	}
	sum.StaticCondBr = len(static)
	if sum.CondBranches > 0 {
		sum.TakenRate = float64(taken) / float64(sum.CondBranches)
	}
	return sum
}
