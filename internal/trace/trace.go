// Package trace defines the instruction-trace model shared by the whole
// simulator: instruction records, trace streams, in-memory trace buffers,
// and a compact binary file format.
//
// A trace is the only interface between workload generation and measurement:
// every analysis in this repository (prediction, pipeline timing, H2P
// screening, dependency graphs, phase detection) consumes a Stream and
// nothing else, mirroring the deployment assumptions of CBP2016 and
// ChampSim that the paper builds on.
package trace

import "fmt"

// Kind classifies an instruction for the timing model and the analyses.
type Kind uint8

// Instruction kinds. The branch kinds mirror the CBP/ChampSim taxonomy:
// conditional branches are the prediction targets; unconditional kinds
// still steer fetch and contribute to path history.
const (
	KindALU      Kind = iota // simple integer op
	KindMul                  // integer multiply
	KindDiv                  // integer divide
	KindFP                   // floating-point op
	KindLoad                 // memory read
	KindStore                // memory write
	KindCondBr               // conditional branch
	KindJump                 // unconditional direct jump
	KindIndirect             // unconditional indirect jump
	KindCall                 // direct call
	KindRet                  // return
	KindNop                  // no-op / other

	kindCount
)

var kindNames = [...]string{
	"alu", "mul", "div", "fp", "load", "store",
	"condbr", "jump", "indirect", "call", "ret", "nop",
}

// String returns a short lower-case mnemonic for the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is a defined instruction kind.
func (k Kind) Valid() bool { return k < kindCount }

// IsBranch reports whether k redirects control flow.
func (k Kind) IsBranch() bool { return k >= KindCondBr && k <= KindRet }

// IsCond reports whether k is a conditional branch.
func (k Kind) IsCond() bool { return k == KindCondBr }

// NumRegs is the number of architectural registers in the trace model.
const NumRegs = 32

// NoReg marks an unused register slot in an instruction record.
const NoReg = 0xFF

// Inst is one dynamic instruction. The fields mirror what the paper's
// methodology assumes is visible to analysis: the instruction pointer,
// instruction type, branch target and resolved direction (the CBP2016
// interface), plus register/memory operand identities and the written
// value, which power the dependency-graph and register-value studies
// (paper §IV-A, Fig 10).
type Inst struct {
	IP       uint64   // instruction pointer
	Target   uint64   // branch target (branches only)
	MemAddr  uint64   // effective address (loads/stores only)
	DstValue uint64   // value written to DstReg (analyses use low 32 bits)
	Kind     Kind     // instruction class
	Taken    bool     // resolved direction (conditional branches only)
	DstReg   uint8    // destination register or NoReg
	SrcRegs  [2]uint8 // source registers, NoReg-padded
}

// IsBranch reports whether the instruction redirects control flow.
func (i *Inst) IsBranch() bool { return i.Kind.IsBranch() }

// IsCondBranch reports whether the instruction is a conditional branch.
func (i *Inst) IsCondBranch() bool { return i.Kind == KindCondBr }

// Reads reports whether the instruction reads register r.
func (i *Inst) Reads(r uint8) bool {
	return r != NoReg && (i.SrcRegs[0] == r || i.SrcRegs[1] == r)
}

// Writes reports whether the instruction writes register r.
func (i *Inst) Writes(r uint8) bool { return r != NoReg && i.DstReg == r }

// Stream is a forward-only producer of instructions.
//
// Next fills *inst and returns true, or returns false at end of trace.
// After Next returns false, further calls must also return false.
type Stream interface {
	Next(inst *Inst) bool
}

// BlockStream is a forward-only producer of instruction batches, the
// replay hot path: iterating a []Inst block amortizes the per-call
// interface dispatch of Stream.Next over thousands of instructions.
//
// NextBlock returns the next run of instructions in trace order, or an
// empty slice at end of trace (after which further calls must also
// return an empty slice). The returned slice is valid only until the
// next NextBlock call, and callers must not modify or retain it: block
// producers serve zero-copy views of shared backing storage (a cached
// Buffer, a generator batch, or — when the cache has a persistent
// store attached — a slice file mmap'd from disk, whose mapping the
// store keeps alive until it is closed). The blockalias analyzer
// enforces the no-retention rule statically (DESIGN.md §8).
type BlockStream interface {
	NextBlock() []Inst
}

// DefaultBlockLen is the block size the measurement loops use when
// adapting a plain Stream to block iteration. Large enough to amortize
// the per-block dispatch to nothing, small enough that an adapter's
// scratch block stays cache-resident.
const DefaultBlockLen = 4096

// blockAdapter batches a plain Stream into blocks of at most cap(buf)
// instructions through an owned scratch buffer.
type blockAdapter struct {
	s   Stream
	buf []Inst
}

// NextBlock implements BlockStream.
func (a *blockAdapter) NextBlock() []Inst {
	buf := a.buf[:0]
	for len(buf) < cap(buf) {
		var inst Inst
		if !a.s.Next(&inst) {
			break
		}
		buf = append(buf, inst)
	}
	return buf
}

// Close implements Closer by forwarding to the underlying stream.
func (a *blockAdapter) Close() error { return CloseStream(a.s) }

// Err forwards the underlying stream's terminal error, so StreamErr
// sees through the block adaptation.
func (a *blockAdapter) Err() error { return StreamErr(a.s) }

// Blocks adapts s to block iteration with blocks of at most n
// instructions (DefaultBlockLen if n <= 0). The adapter copies through
// a scratch buffer; block-native producers (Buffer streams, program
// generators) are better consumed via AsBlocks, which serves their
// storage zero-copy.
func Blocks(s Stream, n int) BlockStream {
	if n <= 0 {
		n = DefaultBlockLen
	}
	return &blockAdapter{s: s, buf: make([]Inst, 0, n)}
}

// AsBlocks returns s's native block serving when it has one, and
// Blocks(s, n) otherwise. The measurement loops call this once per run,
// so a Buffer replay iterates the recorded array directly with no
// per-instruction virtual calls or copies.
func AsBlocks(s Stream, n int) BlockStream {
	if bs, ok := s.(BlockStream); ok {
		return bs
	}
	return Blocks(s, n)
}

// Closer is implemented by streams that hold resources (files, generator
// goroutines). Callers that receive a Stream should close it if it
// implements Closer.
type Closer interface {
	Close() error
}

// CloseStream closes s if it implements Closer.
func CloseStream(s Stream) error {
	if c, ok := s.(Closer); ok {
		return c.Close()
	}
	return nil
}

// StreamErr returns the typed error that terminated s, if s tracks one
// (program generator streams do: cancellation, payload failure). A
// stream that ended with a non-nil StreamErr delivered a truncated
// prefix; consumers must discard what they read. Check after the
// stream reports end of trace.
func StreamErr(s any) error {
	if e, ok := s.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

// FuncStream adapts a function to the Stream interface.
type FuncStream func(*Inst) bool

// Next implements Stream.
func (f FuncStream) Next(inst *Inst) bool { return f(inst) }

// limitStream yields at most remaining instructions from s and
// forwards Close to it, so limiting a resource-holding stream (e.g. a
// program generator) does not leak its resources.
type limitStream struct {
	s         Stream
	remaining uint64
}

// Next implements Stream.
func (l *limitStream) Next(inst *Inst) bool {
	if l.remaining == 0 {
		return false
	}
	if !l.s.Next(inst) {
		l.remaining = 0
		return false
	}
	l.remaining--
	return true
}

// Close implements Closer by forwarding to the underlying stream.
func (l *limitStream) Close() error { return CloseStream(l.s) }

// limitBlockStream is limitStream over a block-native underlying
// stream: blocks are served zero-copy and truncated at the limit.
type limitBlockStream struct {
	*limitStream
	bs BlockStream
}

// NextBlock implements BlockStream. It may read ahead of the limit by
// up to one block from the underlying stream; the overshoot is
// discarded (Limit owns the remainder of the stream either way).
func (l *limitBlockStream) NextBlock() []Inst {
	if l.remaining == 0 {
		return nil
	}
	blk := l.bs.NextBlock()
	if len(blk) == 0 {
		l.remaining = 0
		return nil
	}
	if uint64(len(blk)) > l.remaining {
		blk = blk[:l.remaining]
	}
	l.remaining -= uint64(len(blk))
	return blk
}

// Limit returns a stream that yields at most n instructions from s.
// The result forwards Close to s, and serves blocks natively when s
// does.
func Limit(s Stream, n uint64) Stream {
	l := &limitStream{s: s, remaining: n}
	if bs, ok := s.(BlockStream); ok {
		return &limitBlockStream{limitStream: l, bs: bs}
	}
	return l
}

// concatStream yields all instructions of each stream in turn. Closing
// it closes every underlying stream (including already-drained ones:
// Close on a drained stream is the producer's no-op).
type concatStream struct {
	streams []Stream
	idx     int
	cur     BlockStream // block view of streams[idx], built lazily
}

// Next implements Stream.
func (c *concatStream) Next(inst *Inst) bool {
	for c.idx < len(c.streams) {
		if c.streams[c.idx].Next(inst) {
			return true
		}
		c.idx++
		c.cur = nil
	}
	return false
}

// NextBlock implements BlockStream, delegating to each substream's
// native block serving where available.
func (c *concatStream) NextBlock() []Inst {
	for c.idx < len(c.streams) {
		if c.cur == nil {
			c.cur = AsBlocks(c.streams[c.idx], DefaultBlockLen)
		}
		if blk := c.cur.NextBlock(); len(blk) > 0 {
			return blk
		}
		c.idx++
		c.cur = nil
	}
	return nil
}

// Close implements Closer: it closes every underlying stream and
// returns the first error.
func (c *concatStream) Close() error {
	var first error
	for _, s := range c.streams {
		if err := CloseStream(s); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Concat returns a stream that yields all instructions of each stream
// in turn. The result forwards Close to every underlying stream and
// serves blocks natively.
func Concat(streams ...Stream) Stream {
	return &concatStream{streams: streams}
}

// Count drains s and returns the number of instructions it produced.
func Count(s Stream) uint64 {
	bs := AsBlocks(s, DefaultBlockLen)
	var n uint64
	for blk := bs.NextBlock(); len(blk) > 0; blk = bs.NextBlock() {
		n += uint64(len(blk))
	}
	return n
}

// Replayable is a materialized trace servable any number of times: the
// contract between the trace cache and every measurement driver. A
// *Buffer is the contiguous implementation; the slice-granular trace
// cache serves a view that re-materializes evicted ranges on demand.
// Replays of one Replayable are always byte-identical to each other —
// implementations may differ in residency, never in content. Residency
// includes the disk tier: a cache-served view may hand out blocks
// backed by mmap'd store files (DESIGN.md §11), which stay mapped — and
// the blocks valid — until the store is closed, so stores are closed
// only after every replay they serve has completed.
type Replayable interface {
	// Len returns the trace length in instructions.
	Len() int
	// Stream returns a new independent reader over the trace.
	Stream() Stream
	// BlockStream returns a new independent block reader with blocks of
	// at most n instructions (an implementation-chosen size if n <= 0).
	BlockStream(n int) BlockStream
	// Range returns a zero-copy view of instructions [lo, hi), clamped
	// to the trace. Replaying slice-aligned ranges is how one trace
	// splits across engine workers.
	Range(lo, hi int) Replayable
}

// Buffer is a materialized trace that can be replayed any number of times.
// Replaying one buffer across predictor/pipeline configurations is how the
// sweep experiments (Fig 1, Fig 5, Fig 7) hold the workload constant.
type Buffer struct {
	insts []Inst
}

var _ Replayable = (*Buffer)(nil)

// NewBuffer returns an empty buffer with capacity hint n.
func NewBuffer(n int) *Buffer {
	return &Buffer{insts: make([]Inst, 0, n)}
}

// recordCapMax bounds the up-front allocation of RecordSized: beyond
// ~16M instructions (roughly 640MB of records) growth proceeds by
// doubling, so a wildly overestimated hint cannot pre-commit the
// machine's memory.
const recordCapMax = 1 << 24

// Record drains s into a new Buffer. Callers that know the expected
// instruction count (e.g. a generation budget) should use RecordSized to
// avoid repeated slice regrowth on large recordings.
func Record(s Stream) *Buffer {
	return RecordSized(s, 1<<16)
}

// RecordSized drains s into a new Buffer whose capacity is sized from
// sizeHint, the expected instruction count. The hint only tunes the
// initial allocation; the recording is complete regardless.
func RecordSized(s Stream, sizeHint uint64) *Buffer {
	hint := sizeHint
	if hint < 1<<10 {
		hint = 1 << 10
	}
	if hint > recordCapMax {
		hint = recordCapMax
	}
	b := NewBuffer(int(hint))
	var inst Inst
	for s.Next(&inst) {
		b.insts = append(b.insts, inst)
	}
	return b
}

// Append adds one instruction to the buffer.
func (b *Buffer) Append(inst Inst) { b.insts = append(b.insts, inst) }

// Len returns the number of instructions in the buffer.
func (b *Buffer) Len() int { return len(b.insts) }

// At returns the i-th instruction.
func (b *Buffer) At(i int) Inst { return b.insts[i] }

// FromSlice returns a Buffer that takes ownership of insts. It is the
// zero-copy assembly point for sharded recording, whose workers fill
// disjoint ranges of one backing array.
func FromSlice(insts []Inst) *Buffer {
	return &Buffer{insts: insts}
}

// bufferStream reads a buffer's backing array. It serves both the
// per-instruction Stream contract and zero-copy blocks: NextBlock
// returns subslices of the recorded array directly, so a buffer replay
// has no per-instruction virtual calls and no copies.
type bufferStream struct {
	insts []Inst
	pos   int
	block int
}

// Next implements Stream.
func (s *bufferStream) Next(inst *Inst) bool {
	if s.pos >= len(s.insts) {
		return false
	}
	*inst = s.insts[s.pos]
	s.pos++
	return true
}

// NextBlock implements BlockStream.
func (s *bufferStream) NextBlock() []Inst {
	if s.pos >= len(s.insts) {
		return nil
	}
	end := s.pos + s.block
	if end > len(s.insts) {
		end = len(s.insts)
	}
	blk := s.insts[s.pos:end]
	s.pos = end
	return blk
}

// Stream returns a new independent reader over the buffer. The reader
// serves blocks natively (zero-copy views of the recorded array).
func (b *Buffer) Stream() Stream {
	return &bufferStream{insts: b.insts, block: DefaultBlockLen}
}

// BlockStream returns a new independent block reader over the buffer
// with blocks of at most n instructions (DefaultBlockLen if n <= 0).
// Blocks are zero-copy views of the recorded array.
func (b *Buffer) BlockStream(n int) BlockStream {
	if n <= 0 {
		n = DefaultBlockLen
	}
	return &bufferStream{insts: b.insts, block: n}
}

// Slice returns a zero-copy view of instructions [lo, hi) (clamped to
// the buffer). Like Prefix, the view shares the backing array with its
// capacity capped, so appends cannot corrupt the parent. Replaying
// slice-aligned ranges is how one trace splits across engine workers.
func (b *Buffer) Slice(lo, hi int) *Buffer {
	if lo < 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi > len(b.insts) {
		hi = len(b.insts)
	}
	if lo > hi {
		lo = hi
	}
	return &Buffer{insts: b.insts[lo:hi:hi]}
}

// Range implements Replayable via Slice.
func (b *Buffer) Range(lo, hi int) Replayable { return b.Slice(lo, hi) }

// Prefix returns a zero-copy view of the buffer's first n instructions
// (the whole buffer when n >= Len). The view shares the parent's backing
// array but caps its capacity, so appending to either afterwards cannot
// corrupt the other. Replaying a prefix is how the trace cache serves a
// smaller instruction budget from a longer recording of the same run.
func (b *Buffer) Prefix(n int) *Buffer {
	if n < 0 {
		n = 0
	}
	if n > len(b.insts) {
		n = len(b.insts)
	}
	return &Buffer{insts: b.insts[:n:n]}
}

// PrefixStream returns a reader over the buffer's first n instructions
// without materializing a view.
func (b *Buffer) PrefixStream(n int) Stream {
	return b.Prefix(n).Stream()
}

// Summary holds aggregate counts describing a trace.
type Summary struct {
	Insts        uint64 // total instructions
	CondBranches uint64 // dynamic conditional branches
	Branches     uint64 // all dynamic branches
	Loads        uint64 // dynamic loads
	Stores       uint64 // dynamic stores
	StaticCondBr int    // distinct conditional-branch IPs
	TakenRate    float64
}

// Summarize drains s and returns aggregate statistics.
func Summarize(s Stream) Summary {
	var sum Summary
	var inst Inst
	taken := uint64(0)
	static := make(map[uint64]struct{})
	for s.Next(&inst) {
		sum.Insts++
		switch {
		case inst.Kind == KindCondBr:
			sum.CondBranches++
			sum.Branches++
			static[inst.IP] = struct{}{}
			if inst.Taken {
				taken++
			}
		case inst.Kind.IsBranch():
			sum.Branches++
		case inst.Kind == KindLoad:
			sum.Loads++
		case inst.Kind == KindStore:
			sum.Stores++
		}
	}
	sum.StaticCondBr = len(static)
	if sum.CondBranches > 0 {
		sum.TakenRate = float64(taken) / float64(sum.CondBranches)
	}
	return sum
}
