package trace

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"branchlab/internal/xrand"
)

func TestIORoundTrip(t *testing.T) {
	insts := synthetic(5000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range insts {
		if err := w.WriteInst(&insts[i]); err != nil {
			t.Fatalf("WriteInst: %v", err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	perInst := float64(buf.Len()) / float64(len(insts))
	if perInst > 12 {
		t.Errorf("encoding too large: %.1f bytes/inst", perInst)
	}

	r := NewReader(&buf)
	var got Inst
	for i := range insts {
		if !r.Next(&got) {
			t.Fatalf("reader ended early at %d: %v", i, r.Err())
		}
		if got != insts[i] {
			t.Fatalf("inst %d: got %+v want %+v", i, got, insts[i])
		}
	}
	if r.Next(&got) {
		t.Error("reader should be exhausted")
	}
	if r.Err() != nil {
		t.Errorf("unexpected error: %v", r.Err())
	}
}

func TestIOEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var inst Inst
	if r.Next(&inst) {
		t.Error("empty trace yielded an instruction")
	}
	if r.Err() != nil {
		t.Errorf("clean empty trace reported error: %v", r.Err())
	}
}

func TestIOBadMagic(t *testing.T) {
	r := NewReader(bytes.NewReader([]byte("NOPE....")))
	var inst Inst
	if r.Next(&inst) {
		t.Fatal("bad magic accepted")
	}
	if !errors.Is(r.Err(), ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", r.Err())
	}
}

func TestIOTruncated(t *testing.T) {
	insts := synthetic(100)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range insts {
		if err := w.WriteInst(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	// Chop the stream mid-record (every record is at least two bytes, so
	// removing one byte always splits the final record); the reader must
	// stop with an error, not hang or fabricate instructions.
	data := buf.Bytes()[:buf.Len()-1]
	r := NewReader(bytes.NewReader(data))
	var inst Inst
	n := 0
	for r.Next(&inst) {
		n++
	}
	if n >= 100 {
		t.Errorf("read %d instructions from truncated trace", n)
	}
	if r.Err() == nil {
		t.Error("truncated trace should surface an error")
	}
}

func TestIOInvalidKindRejected(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	inst := Inst{Kind: Kind(99)}
	if err := w.WriteInst(&inst); err == nil {
		t.Error("invalid kind accepted by writer")
	}
}

func TestZigzag(t *testing.T) {
	if err := quick.Check(func(v int64) bool {
		return unzigzag(zigzag(v)) == v
	}, nil); err != nil {
		t.Error(err)
	}
}

// TestIORandomInstProperty round-trips randomly generated instructions.
func TestIORandomInstProperty(t *testing.T) {
	rng := xrand.New(1)
	gen := func() Inst {
		inst := Inst{
			IP:      rng.Uint64() % (1 << 40),
			Kind:    Kind(rng.Intn(int(kindCount))),
			DstReg:  NoReg,
			SrcRegs: [2]uint8{NoReg, NoReg},
		}
		if inst.Kind.IsBranch() {
			inst.Target = rng.Uint64() % (1 << 40)
			inst.Taken = rng.Intn(2) == 0
		}
		if inst.Kind == KindLoad || inst.Kind == KindStore {
			inst.MemAddr = rng.Uint64() % (1 << 44)
		}
		if rng.Intn(2) == 0 {
			inst.DstReg = uint8(rng.Intn(NumRegs))
			inst.DstValue = rng.Uint64()
		}
		if rng.Intn(2) == 0 {
			inst.SrcRegs[0] = uint8(rng.Intn(NumRegs))
		}
		if rng.Intn(3) == 0 {
			inst.SrcRegs[1] = uint8(rng.Intn(NumRegs))
		}
		return inst
	}
	const n = 2000
	insts := make([]Inst, n)
	for i := range insts {
		insts[i] = gen()
	}
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := range insts {
		if err := w.WriteInst(&insts[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := NewReader(&buf)
	var got Inst
	for i := range insts {
		if !r.Next(&got) {
			t.Fatalf("ended early at %d: %v", i, r.Err())
		}
		want := insts[i]
		// Taken is only encoded for conditional branches; mem only for
		// loads/stores; target only for branches.
		if !want.Kind.IsBranch() {
			want.Target = 0
		}
		if want.Kind != KindLoad && want.Kind != KindStore {
			want.MemAddr = 0
		}
		if want.Kind != KindCondBr {
			// Direction is preserved bit-for-bit for all kinds in this
			// format (flagTaken), so no adjustment needed.
			_ = want
		}
		if want.DstReg == NoReg {
			want.DstValue = 0
		}
		if got != want {
			t.Fatalf("inst %d: got %+v want %+v", i, got, want)
		}
	}
}

func BenchmarkWriter(b *testing.B) {
	insts := synthetic(10000)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := w.WriteInst(&insts[i%len(insts)]); err != nil {
			b.Fatal(err)
		}
	}
}
