package cache

import "testing"

func small() *Cache {
	// 4KB, 4-way, 64B blocks = 16 sets.
	return New(Config{Name: "T", SizeKB: 4, Ways: 4, BlockBits: 6, HitLat: 2}, nil, 100)
}

func TestColdMissThenHit(t *testing.T) {
	c := small()
	if lat := c.Access(0x1000); lat != 102 {
		t.Errorf("cold miss latency = %d, want 102", lat)
	}
	if lat := c.Access(0x1000); lat != 2 {
		t.Errorf("hit latency = %d, want 2", lat)
	}
	if lat := c.Access(0x1004); lat != 2 {
		t.Errorf("same-block hit latency = %d, want 2", lat)
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 16 sets, 4 ways
	// Five blocks mapping to the same set (stride = sets*blockSize = 1024).
	addrs := []uint64{0, 1024, 2048, 3072, 4096}
	for _, a := range addrs {
		c.Access(a)
	}
	// addr 0 was LRU and must have been evicted.
	if lat := c.Access(0); lat == 2 {
		t.Error("LRU block still resident after overflow")
	}
	// addr 4096 must still hit.
	if lat := c.Access(4096); lat != 2 {
		t.Error("most recent block evicted")
	}
}

func TestLRUTouchedBlockSurvives(t *testing.T) {
	c := small()
	c.Access(0)
	c.Access(1024)
	c.Access(2048)
	c.Access(3072)
	c.Access(0) // touch: now 1024 is LRU
	c.Access(4096)
	if lat := c.Access(0); lat != 2 {
		t.Error("recently touched block was evicted")
	}
	if lat := c.Access(1024); lat == 2 {
		t.Error("true LRU block was not evicted")
	}
}

func TestHierarchyChainsLatency(t *testing.T) {
	h := NewHierarchy(DefaultHierarchy())
	lat := h.L1D.Access(0x8000)
	// Cold miss traverses L1D(4) + L2(8) + LLC(28) + mem(180).
	if lat != 4+8+28+180 {
		t.Errorf("cold chain latency = %d", lat)
	}
	if lat = h.L1D.Access(0x8000); lat != 4 {
		t.Errorf("warm L1D latency = %d", lat)
	}
	// The same line through the other L1 (instruction side) misses L1I
	// but hits the shared L2.
	h.L1I.Access(0x8000)
	if h.L2.Stats().Hits == 0 {
		t.Error("expected an L2 hit via the shared level")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty MissRate should be 0")
	}
	s = Stats{Hits: 3, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("MissRate = %v", s.MissRate())
	}
}

func TestNewPanicsOnBadWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for Ways=0")
		}
	}()
	New(Config{SizeKB: 4, Ways: 0, BlockBits: 6}, nil, 0)
}

func TestTinyCacheStillWorks(t *testing.T) {
	// Degenerate: capacity smaller than ways*block rounds to one set.
	c := New(Config{SizeKB: 1, Ways: 32, BlockBits: 6, HitLat: 1}, nil, 10)
	for i := uint64(0); i < 64; i++ {
		c.Access(i * 64)
	}
	if c.Stats().Misses == 0 {
		t.Error("expected misses in tiny cache")
	}
}

func BenchmarkAccess(b *testing.B) {
	h := NewHierarchy(DefaultHierarchy())
	for i := 0; i < b.N; i++ {
		h.L1D.Access(uint64(i*64) & 0xFFFFF)
	}
}
