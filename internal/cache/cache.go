// Package cache models a set-associative cache hierarchy with LRU
// replacement and fixed per-level latencies, the memory substrate of the
// pipeline timing model. The paper's ChampSim runs include a full cache
// hierarchy; IPC numbers are meaningless without load latency variance,
// so the reproduction models one too.
package cache

import "fmt"

// Config sizes one cache level.
type Config struct {
	Name      string
	SizeKB    int // total capacity
	Ways      int // associativity
	BlockBits uint
	HitLat    uint64 // access latency on hit, cycles
}

// Stats accumulates per-level access counts.
type Stats struct {
	Hits, Misses uint64
}

// MissRate returns misses / accesses, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// Cache is one level of a hierarchy. A nil lower level means misses go to
// memory at memLat.
type Cache struct {
	cfg  Config
	sets int
	tags []uint64
	// use holds LRU timestamps; 0 means the way is invalid (the clock
	// starts at 1), which folds the validity check into the timestamp
	// load on the per-instruction L1 lookup path.
	use    []uint64
	clock  uint64
	lower  *Cache
	memLat uint64
	stats  Stats
}

// New builds a cache level; lower may be nil, in which case misses cost
// memLat beyond the hit latency chain.
func New(cfg Config, lower *Cache, memLat uint64) *Cache {
	blockBytes := 1 << cfg.BlockBits
	blocks := cfg.SizeKB * 1024 / blockBytes
	if cfg.Ways <= 0 {
		panic("cache: non-positive associativity")
	}
	sets := blocks / cfg.Ways
	if sets == 0 {
		sets = 1
	}
	// Round sets down to a power of two for cheap indexing.
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	sets = p
	n := sets * cfg.Ways
	return &Cache{
		cfg:    cfg,
		sets:   sets,
		tags:   make([]uint64, n),
		use:    make([]uint64, n),
		lower:  lower,
		memLat: memLat,
	}
}

// Stats returns the access statistics for this level.
func (c *Cache) Stats() Stats { return c.stats }

// Name returns the configured level name.
func (c *Cache) Name() string { return c.cfg.Name }

// Access looks up addr, filling on miss, and returns the total latency of
// the access including lower levels.
func (c *Cache) Access(addr uint64) uint64 {
	c.clock++
	block := addr >> c.cfg.BlockBits
	set := int(block & uint64(c.sets-1))
	base := set * c.cfg.Ways
	// Slicing the set once elides per-way bounds checks in the probe
	// loop, the hottest lines of the timing model.
	tags := c.tags[base : base+c.cfg.Ways]
	use := c.use[base : base+c.cfg.Ways]
	for w, tag := range tags {
		if tag == block && use[w] != 0 {
			use[w] = c.clock
			c.stats.Hits++
			return c.cfg.HitLat
		}
	}
	c.stats.Misses++
	lat := c.cfg.HitLat
	if c.lower != nil {
		lat += c.lower.Access(addr)
	} else {
		lat += c.memLat
	}
	// Fill, evicting the LRU way; an invalid way (use 0) always loses
	// the min-scan to any valid way, and ties keep the lowest index, so
	// the victim is the first invalid way when one exists — the same
	// choice the explicit valid-bit scan made.
	victim := 0
	for w := 1; w < len(use); w++ {
		if use[w] < use[victim] {
			victim = w
		}
	}
	tags[victim] = block
	use[victim] = c.clock
	return lat
}

// Hierarchy is a Skylake-like three-level hierarchy with split L1.
type Hierarchy struct {
	L1I, L1D, L2, LLC *Cache
}

// HierarchyConfig parameterizes NewHierarchy.
type HierarchyConfig struct {
	L1IKB, L1DKB, L2KB, LLCKB int
	MemLat                    uint64
}

// DefaultHierarchy returns Skylake-like sizes: 32KB L1I/L1D, 256KB L2,
// 8MB LLC, 180-cycle memory.
func DefaultHierarchy() HierarchyConfig {
	return HierarchyConfig{L1IKB: 32, L1DKB: 32, L2KB: 256, LLCKB: 8192, MemLat: 180}
}

// NewHierarchy builds the three-level hierarchy.
func NewHierarchy(cfg HierarchyConfig) *Hierarchy {
	llc := New(Config{Name: "LLC", SizeKB: cfg.LLCKB, Ways: 16, BlockBits: 6, HitLat: 28}, nil, cfg.MemLat)
	l2 := New(Config{Name: "L2", SizeKB: cfg.L2KB, Ways: 8, BlockBits: 6, HitLat: 8}, llc, 0)
	l1i := New(Config{Name: "L1I", SizeKB: cfg.L1IKB, Ways: 8, BlockBits: 6, HitLat: 0}, l2, 0)
	l1d := New(Config{Name: "L1D", SizeKB: cfg.L1DKB, Ways: 8, BlockBits: 6, HitLat: 4}, l2, 0)
	return &Hierarchy{L1I: l1i, L1D: l1d, L2: l2, LLC: llc}
}

// String summarizes hit rates for debugging reports.
func (h *Hierarchy) String() string {
	return fmt.Sprintf("L1I %.3f | L1D %.3f | L2 %.3f | LLC %.3f miss",
		h.L1I.Stats().MissRate(), h.L1D.Stats().MissRate(),
		h.L2.Stats().MissRate(), h.LLC.Stats().MissRate())
}
