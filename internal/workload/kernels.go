package workload

import (
	"fmt"

	"branchlab/internal/program"
	"branchlab/internal/xrand"
)

// mix parameterizes the generator. Every workload is the same machine with
// different knob settings; the knobs control exactly the trace properties
// the paper measures.
type mix struct {
	// Hot, easy code: loops, periodic patterns, biased branches.
	loopTrip       int // base loop trip count
	loopCount      int // distinct loop-branch statics
	patterns       int // pattern-branch statics
	patternLen     int // pattern period
	patternsActive int // pattern branches exercised per phase
	biased         int // biased-branch statics
	biasedAcc      float64
	biasedPerRound int

	// H2P machinery: (dependency, h2p) pairs plus standalone hard
	// branches, with variable-distance correlation and noise.
	h2pPairs    int
	h2pSolo     int
	h2pNoise    float64 // P(h2p direction flips vs its dependency branch)
	h2pPerRound int
	maxGap      int  // max noise branches between dependency and h2p
	depEasy     bool // dependency branches nearly perfectly predictable
	// (still correlated with the H2P, but not H2Ps themselves)

	// Cold, rare code (dominant in the LCF suite).
	rareStaticPaper int // paper-scale static count; scaled by budget/30M
	rareMinStatic   int // floor after scaling
	rareLen         int // branches per cold burst
	rareEvery       int // rounds between bursts (0 = never)
	rareRandomFrac  float64
	// rarePhaseFlip is the fraction of cold branches whose preferred
	// direction depends on the current program phase: stable within a
	// phase, flipped across phases. These are the branches the paper's
	// §V-B phase-conditioning proposal targets.
	rarePhaseFlip float64
	// takenSkew is the fraction of pool branches whose preferred
	// direction is taken. Hot code skews toward taken; a branch whose
	// stable direction opposes the bimodal majority suffers destructive
	// aliasing when it executes too rarely to hold a tagged entry — the
	// rare-branch pathology of §IV-B, which should dominate the LCF
	// suite but stay mild in SPEC-like workloads.
	takenSkew float64

	// Structure.
	phases        int
	callDepth     int
	padding       int     // filler instructions per round
	memOps        int     // loads/stores per round
	memRandomFrac float64 // fraction of loads to cache-hostile addresses
}

// Branch-ID space layout. Stable across inputs so that H2Ps recur across
// application inputs (Table I's "3+ inputs" column).
const (
	idLoop    = 0
	idPattern = 200
	idBiased  = 1200
	idNoise   = 3400
	idDep     = 4000
	idH2P     = 4500
	idSolo    = 4800
	idRare    = 10000

	numNoise = 12
)

type gen struct {
	e     *program.Emitter
	r     *xrand.Rand
	m     mix
	input int

	h2pVal     []uint64 // random-walk state per pair
	soloVal    []uint64
	h2pPick    *xrand.Zipf // skewed selection -> heavy hitters (Fig 2)
	patCount   []uint64    // per-pattern execution counters
	noiseCount [numNoise]uint64

	rareStatic int
	rareCursor int
	strideAddr uint64
	round      uint64

	// Phase-walk position, fields (rather than run-loop locals) so a
	// checkpoint can capture and restore them (see CheckpointSave).
	ph      int    // current phase index
	phStart uint64 // instruction count at phase entry
}

func newGen(e *program.Emitter, m mix, input int) *gen {
	g := &gen{
		e:        e,
		r:        e.Rand(),
		m:        m,
		input:    input,
		h2pVal:   make([]uint64, m.h2pPairs),
		soloVal:  make([]uint64, m.h2pSolo),
		patCount: make([]uint64, max(1, m.patterns)),
	}
	for i := range g.h2pVal {
		g.h2pVal[i] = uint64(1000 + 64*i)
	}
	for i := range g.soloVal {
		g.soloVal[i] = uint64(7777 + 128*i)
	}
	if n := m.h2pPairs + m.h2pSolo; n > 0 {
		z, err := xrand.NewZipf(g.r, n, 1.1)
		if err != nil {
			// Unreachable: n > 0 is guarded above and the exponent is a
			// positive constant, but a mix-table edit that breaks this
			// should fail the run loudly — as a typed error attributed to
			// the recording, not a process-killing panic (the same
			// convention as ErrNonPositiveRanks).
			e.Abort(fmt.Errorf("workload: generator input %d: %w", input, err))
		}
		g.h2pPick = z
	}
	// Scale the cold footprint with the instruction budget, preserving
	// the paper's per-30M-slice static counts (DESIGN.md §1).
	g.rareStatic = int(float64(m.rareStaticPaper) * float64(e.Budget()) / 30e6)
	if g.rareStatic < m.rareMinStatic {
		g.rareStatic = m.rareMinStatic
	}
	// Everything up to here is a pure function of (mix, input, budget) —
	// no RNG draws — so it re-runs identically on a checkpoint resume,
	// which is what the Checkpointable contract requires.
	e.Checkpointable(g)
	return g
}

// CheckpointSave implements program.CheckpointPayload: the flattened
// mutable generator state. Everything else (mix knobs, Zipf weights,
// rareStatic) is derived deterministically in newGen and need not be
// saved.
func (g *gen) CheckpointSave() []uint64 {
	st := make([]uint64, 0, 5+len(g.h2pVal)+len(g.soloVal)+len(g.patCount)+numNoise)
	st = append(st, uint64(g.ph), g.phStart, g.round, uint64(g.rareCursor), g.strideAddr)
	st = append(st, g.h2pVal...)
	st = append(st, g.soloVal...)
	st = append(st, g.patCount...)
	return append(st, g.noiseCount[:]...)
}

// CheckpointRestore implements program.CheckpointPayload.
func (g *gen) CheckpointRestore(st []uint64) bool {
	want := 5 + len(g.h2pVal) + len(g.soloVal) + len(g.patCount) + numNoise
	if len(st) != want {
		return false
	}
	g.ph, g.phStart, g.round = int(st[0]), st[1], st[2]
	g.rareCursor, g.strideAddr = int(st[3]), st[4]
	st = st[5:]
	st = st[copy(g.h2pVal, st):]
	st = st[copy(g.soloVal, st):]
	st = st[copy(g.patCount, st):]
	copy(g.noiseCount[:], st)
	return true
}

func (g *gen) run() {
	e := g.e
	phases := max(1, g.m.phases)
	phaseLen := e.Budget() / uint64(2*phases)
	if phaseLen < 32768 {
		phaseLen = 32768
	}
	// One flat loop with the phase walk as explicit state (g.ph,
	// g.phStart): emission-identical to the nested phase loops it
	// replaced, and the top of each round is a checkpoint safe point —
	// the saved fields fully determine the continuation.
	for e.Running() {
		if e.InstCount()-g.phStart >= phaseLen {
			g.ph++
			if g.ph == phases {
				g.ph = 0
			}
			g.phStart = e.InstCount()
		}
		e.Checkpoint()
		g.roundExec(g.ph)
	}
}

func (g *gen) roundExec(ph int) {
	e := g.e
	if g.m.callDepth > 0 {
		e.Call(ph % 4)
	}
	g.loopNest(ph)
	g.patternBlock(ph)
	g.biasedBlock()
	for i := 0; i < g.m.h2pPerRound; i++ {
		g.hardExec()
	}
	if g.m.rareEvery > 0 && g.round%uint64(g.m.rareEvery) == 0 {
		g.rareBurst(ph)
	}
	g.memBlock(ph)
	e.Compute(g.m.padding)
	if g.m.callDepth > 0 {
		e.Ret()
	}
	g.round++
}

// loopNest emits a fixed-trip loop; the trip count is stable within a
// phase so the loop predictor and TAGE capture it fully.
func (g *gen) loopNest(ph int) {
	if g.m.loopCount == 0 {
		return
	}
	trip := g.m.loopTrip + ph%3 + g.input%2
	id := idLoop + ph%g.m.loopCount
	for j := 0; j < trip; j++ {
		g.e.Compute(3)
		g.e.CondBackward(id, j < trip-1)
	}
}

// patternBlock executes the phase's active window of hot, almost-always-
// taken branches with a rare deterministic flip (loop-exit-like shape,
// period 64-255). They model the well-predicted hot code that dominates
// real applications: individually >= 0.99 accurate so they never screen
// as H2Ps, but collectively a steady trickle of mispredictions.
func (g *gen) patternBlock(ph int) {
	if g.m.patterns == 0 {
		return
	}
	active := max(1, g.m.patternsActive)
	base := (ph * active) % g.m.patterns
	for k := 0; k < active; k++ {
		id := (base + k) % g.m.patterns
		period := 64 + xrand.Mix64(uint64(id)*0x5851f42d4c957f2d+uint64(g.input))%192
		taken := g.patCount[id]%period != period-1
		g.patCount[id]++
		g.e.Compute(2)
		g.e.Cond(idPattern+id, taken)
	}
}

// biasedBlock executes branches from a large pool of moderately biased
// statics. Each branch individually executes too rarely to meet the H2P
// screening thresholds — this is the paper's long tail of imperfect but
// non-systematic mispredictions, and the knob behind Table I's "Avg.
// Acc. excl. H2Ps" column.
func (g *gen) biasedBlock() {
	for k := 0; k < g.m.biasedPerRound; k++ {
		id := g.r.Intn(max(1, g.m.biased))
		h := xrand.Mix64(uint64(id)*31 + 7)
		sense := float64(h&0xFFFF)/65536 < g.m.takenSkew
		// Per-branch bias spread around the configured pool accuracy.
		p := g.m.biasedAcc + (float64(h>>8&0xFF)/255-0.5)*0.04
		if p > 0.999 {
			p = 0.999
		}
		taken := sense == g.r.Bool(p)
		g.e.Compute(2)
		g.e.Cond(idBiased+id, taken)
	}
}

// hardExec runs one execution of the H2P kernel: a dependency branch
// whose direction is a slowly-flipping function of a shared variable,
// a variable-length run of noise branches, and the H2P itself, whose
// direction copies the dependency branch with probability 1-h2pNoise.
// The variable gap reproduces the history-position variation of Fig 6;
// the shared variable gives the dependency-graph analysis (Table III) and
// the register-value study (Fig 10) real signal.
func (g *gen) hardExec() {
	e := g.e
	total := g.m.h2pPairs + g.m.h2pSolo
	if total == 0 {
		return
	}
	pick := g.h2pPick.Next()
	if pick < g.m.h2pPairs {
		i := pick
		g.h2pVal[i] += uint64(g.r.Intn(3)) - 1
		v := g.h2pVal[i]
		// Branch-specific clustered register values (Fig 10 structure).
		regVal := (v&0x3F)*uint64(37*(i+1)) + uint64(i)*1000
		e.SetVar(program.VarID(i), regVal)
		// The dependency branch reads a random-walk bit: a low bit flips
		// diffusively (hard, itself an H2P), a high bit flips rarely
		// (predictable, correlated but not screened).
		depBit := uint(4)
		if g.m.depEasy {
			depBit = 9
		}
		dDep := (v>>depBit)&1 == 1
		e.Compute(1)
		e.Cond(idDep+i, dDep, program.VarID(i))
		g.noiseRun(g.r.Intn(g.m.maxGap + 1))
		dH2P := dDep != g.r.Bool(g.m.h2pNoise)
		e.Cond(idH2P+i, dH2P, program.VarID(i))
		e.Compute(3)
		return
	}
	// Standalone hard branch: a random-walk bit with no helpful
	// correlation anywhere in history.
	i := pick - g.m.h2pPairs
	g.soloVal[i] += uint64(g.r.Intn(5)) - 2
	v := g.soloVal[i]
	vr := program.VarID(g.m.h2pPairs + i)
	e.SetVar(vr, (v&0xFF)*uint64(13*(i+1)))
	e.Cond(idSolo+i, (v>>2)&1 == 1, vr)
	e.Compute(3)
}

// noiseRun emits n always-taken branches between a dependency branch and
// its H2P. Their directions are trivially predictable — they never
// mispredict or screen — but the run length varies per execution, which
// is what scatters the dependency branch across global-history positions
// (Fig 6) and defeats exact pattern matching on the H2P.
func (g *gen) noiseRun(n int) {
	for j := 0; j < n; j++ {
		nid := g.r.Intn(numNoise)
		g.noiseCount[nid]++
		g.e.Compute(1)
		g.e.Cond(idNoise+nid, true)
	}
}

// rareBurst walks a run of cold static branches, sweeping the whole cold
// region cyclically. A given cold branch is therefore revisited only once
// per sweep of the region — the long recurrence timescale of Fig 9 —
// and executes just a handful of times per slice (Table II, Fig 3). The
// sweep origin shifts with the phase so phases still differ in the cold
// code they touch first.
func (g *gen) rareBurst(ph int) {
	if g.rareStatic == 0 {
		return
	}
	start := g.rareCursor
	g.rareCursor = (g.rareCursor + g.m.rareLen) % g.rareStatic
	for k := 0; k < g.m.rareLen; k++ {
		id := (start + ph + k) % g.rareStatic
		h := xrand.Mix64(uint64(id)*0x9e3779b97f4a7c15 + uint64(g.input)*1315423911)
		var taken bool
		if float64(h&0xFFFF)/65536 < g.m.rareRandomFrac {
			taken = g.r.Bool(0.5) // irreducibly random cold branch
		} else {
			sense := float64(h>>16&0xFFFF)/65536 < g.m.takenSkew
			if float64(h>>32&0xFFFF)/65536 < g.m.rarePhaseFlip {
				// Phase-dependent: the preferred direction is a
				// branch-specific deterministic function of the phase.
				sense = sense != (xrand.Mix64(h^uint64(ph)*0x9e3779b97f4a7c15)&1 == 1)
			}
			taken = sense == g.r.Bool(0.95)
		}
		g.e.Compute(2)
		g.e.Cond(idRare+id, taken)
	}
}

// memBlock emits the round's memory traffic: strided streams that hit in
// cache plus a configurable fraction of cache-hostile random accesses.
func (g *gen) memBlock(ph int) {
	for k := 0; k < g.m.memOps; k++ {
		if g.r.Float64() < g.m.memRandomFrac {
			g.e.Load(0x10000000 + g.r.Uint64()%(64<<20))
			continue
		}
		g.strideAddr += 64
		base := uint64(ph) << 22
		if k%4 == 3 {
			g.e.Store(0x4000000 + base + g.strideAddr%(1<<20))
		} else {
			g.e.Load(0x4000000 + base + g.strideAddr%(1<<20))
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
