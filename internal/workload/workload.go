// Package workload defines the synthetic benchmark suites that stand in
// for the paper's traces: nine SPECint-2017-like programs (Table I) and
// six large-code-footprint (LCF) applications (Table II).
//
// Each workload is a parameterized generator tuned to reproduce the
// trace-visible signature the paper reports for its counterpart: static
// branch footprint, TAGE-SC-L 8KB accuracy, the number of systematically
// hard-to-predict (H2P) branches, the share of mispredictions they cause,
// phase structure, and — for the LCF suite — the rare-branch execution
// distribution. See DESIGN.md §1 for the substitution argument.
package workload

import (
	"context"
	"fmt"

	"branchlab/internal/engine"
	"branchlab/internal/program"
	"branchlab/internal/trace"
	"branchlab/internal/tracecache"
	"branchlab/internal/xrand"
)

// PaperStats records the published Table I / Table II row a workload is
// modeled after, for documentation and experiment reports.
type PaperStats struct {
	StaticBranches  int     // total static branches (Table I) / branch IPs (Table II)
	Accuracy        float64 // TAGE-SC-L 8KB accuracy
	AccuracyExclH2P float64 // accuracy excluding H2Ps (Table I only)
	H2PsPerSlice    int     // static H2Ps per 30M slice
	MispredShareH2P float64 // fraction of mispredictions due to H2Ps
	ExecsPerBranch  float64 // avg dynamic execs per static branch (Table II)
}

// Spec is one synthetic workload.
type Spec struct {
	Name      string
	Suite     string // "specint2017" or "lcf"
	NumInputs int    // distinct application inputs (Table I "# App. Inputs")
	Paper     PaperStats
	mix       mix
}

// seed derives the deterministic seed for one (workload, input) pair.
func (s *Spec) seed(input int) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range []byte(s.Name) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return xrand.Mix64(h ^ uint64(input)*0x9e3779b97f4a7c15)
}

// Payload returns the program payload for one application input.
func (s *Spec) Payload(input int) program.Payload {
	if input < 0 || input >= s.NumInputs {
		panic(fmt.Sprintf("workload %s: input %d out of range [0,%d)", s.Name, input, s.NumInputs))
	}
	m := s.mix
	return func(e *program.Emitter) { newGen(e, m, input).run() }
}

// Stream starts the workload for one input with the given instruction
// budget. Callers should close the stream via trace.CloseStream when
// abandoning it early.
func (s *Spec) Stream(input int, budget uint64) trace.Stream {
	return program.Run(s.seed(input), budget, s.Payload(input))
}

// StreamCtx is Stream bounded by ctx: when ctx is done the generator
// unwinds at its next byte-safe point and trace.StreamErr reports a
// typed cancellation (a truncated prefix is never silently served).
func (s *Spec) StreamCtx(ctx context.Context, input int, budget uint64) trace.Stream {
	return program.RunCtx(ctx, s.seed(input), budget, s.Payload(input))
}

// Record materializes the trace for one input.
func (s *Spec) Record(input int, budget uint64) *trace.Buffer {
	return program.Record(s.seed(input), budget, s.Payload(input))
}

// RecordCtx is Record bounded by ctx; on cancellation or payload
// failure it returns a typed error and no buffer.
func (s *Spec) RecordCtx(ctx context.Context, input int, budget uint64) (*trace.Buffer, error) {
	return program.RecordCtx(ctx, s.seed(input), budget, s.Payload(input))
}

// RecordSharded materializes the same trace Record produces, generating
// disjoint instruction ranges on pool workers (program.RecordSharded).
// The result is byte-identical to Record at any shard count.
func (s *Spec) RecordSharded(input int, budget uint64, pool *engine.Pool, shards int) *trace.Buffer {
	return program.RecordSharded(s.seed(input), budget, s.Payload(input), pool, shards)
}

// RecordShardedFrom is RecordSharded resuming each worker from the
// nearest checkpoint at or below its range start
// (program.RecordShardedFrom): with checkpoints from a prior
// checkpointed recording of the same (input, budget), workers no
// longer skim overlapping prefixes — re-recording is embarrassingly
// parallel. Byte-identical to Record for any checkpoint list.
func (s *Spec) RecordShardedFrom(input int, budget uint64, pool *engine.Pool, shards int, ckpts []program.Checkpoint) *trace.Buffer {
	return program.RecordShardedFrom(s.seed(input), budget, s.Payload(input), pool, shards, ckpts)
}

// RecordShardedFromCtx is RecordShardedFrom bounded by ctx: shard
// workers check cancellation at byte-safe points and a cancelled
// recording returns a typed error, never a partial buffer.
func (s *Spec) RecordShardedFromCtx(ctx context.Context, input int, budget uint64, pool *engine.Pool, shards int, ckpts []program.Checkpoint) (*trace.Buffer, error) {
	return program.RecordShardedFromCtx(ctx, s.seed(input), budget, s.Payload(input), pool, shards, ckpts)
}

// RecordSlices materializes the same trace Record produces as
// independently owned arrays of sliceLen instructions each — the
// slice-granular trace cache's ingest path (program.RecordSlices).
// Concatenated, the arrays are byte-identical to Record at any
// (sliceLen, shards) combination. ckptEvery > 0 also captures payload
// checkpoints at that spacing; every registered generator is
// checkpointable, so the cache can later refill evicted slices in
// O(window) via RecordRangeFrom.
func (s *Spec) RecordSlices(input int, budget, sliceLen uint64, pool *engine.Pool, shards int, ckptEvery uint64) ([][]trace.Inst, []program.Checkpoint) {
	return program.RecordSlices(s.seed(input), budget, s.Payload(input), sliceLen, pool, shards, ckptEvery)
}

// RecordSlicesCtx is RecordSlices bounded by ctx — the cache's
// recording callback (CacheSource wires it into Source.Record).
// Cancellation or payload failure returns a typed error; partial
// slice arrays are never returned.
func (s *Spec) RecordSlicesCtx(ctx context.Context, input int, budget, sliceLen uint64, pool *engine.Pool, shards int, ckptEvery uint64) ([][]trace.Inst, []program.Checkpoint, error) {
	return program.RecordSlicesCtx(ctx, s.seed(input), budget, s.Payload(input), sliceLen, pool, shards, ckptEvery)
}

// RecordRange re-materializes instructions [lo, hi) of one input's
// trace at the given budget (program.RecordRange): the trace replays
// deterministically from its seed, the prefix is skimmed without being
// stored, and only the requested window allocates. Byte-identical to
// the same range of Record's output.
func (s *Spec) RecordRange(input int, budget, lo, hi uint64) []trace.Inst {
	return program.RecordRange(s.seed(input), budget, s.Payload(input), lo, hi)
}

// RecordRangeFrom is RecordRange resuming from ck
// (program.RecordRangeFrom): generation starts at ck.At instead of
// instruction zero, making the window cost independent of lo. The
// checkpoint must come from a checkpointed recording of the same
// (input, budget); on any mismatch the call fails (typed error, never
// wrong bytes) and the caller falls back to RecordRange.
func (s *Spec) RecordRangeFrom(input int, budget uint64, ck *program.Checkpoint, lo, hi uint64) ([]trace.Inst, error) {
	return program.RecordRangeFrom(s.seed(input), budget, s.Payload(input), ck, lo, hi)
}

// BudgetSensitive reports that this workload's traces are not
// prefix-comparable across budgets: every registered generator scales
// static structure with Emitter.Budget (the cold-code footprint, the
// phase length), so a trace recorded at budget B is not a prefix of
// the same workload recorded at B' > B. Callers keying recordings in a
// cache must key on the budget (tracecache.Source.BudgetSensitive)
// rather than serve truncated prefixes.
func (s *Spec) BudgetSensitive() bool { return true }

// CkptPerCacheSlice, passed as CacheSource's ckptEvery, captures one
// checkpoint per cache slice: the spacing follows whatever slice
// length the cache records this trace at.
const CkptPerCacheSlice = ^uint64(0)

// CacheSource is the tracecache.Source for one (input, budget) trace —
// the single place the cache's record/refill callbacks are wired to
// this package, shared by the experiments drivers, the facade and the
// CLIs. Recording runs on pool with the given shard count; ckptEvery
// is the checkpoint spacing (0 = no checkpoints, CkptPerCacheSlice =
// one per cache slice). Refills resume from the captured checkpoints
// (Resume) and fall back to the prefix skim (Range); both regenerate
// byte-identical windows.
func (s *Spec) CacheSource(input int, budget uint64, pool *engine.Pool, shards int, ckptEvery uint64) tracecache.Source {
	return tracecache.Source{
		BudgetSensitive: s.BudgetSensitive(),
		// The spacing is part of the recording's content identity: the
		// persistent store keys on it (the sentinel value is shared
		// with tracecache.CkptPerSlice and resolves to the slice
		// length there, exactly as Record resolves it below).
		CkptSpacing: ckptEvery,
		Record: func(ctx context.Context, sliceLen uint64) ([][]trace.Inst, []program.Checkpoint, error) {
			every := ckptEvery
			if every == CkptPerCacheSlice {
				every = sliceLen
			}
			return s.RecordSlicesCtx(ctx, input, budget, sliceLen, pool, shards, every)
		},
		Range: func(lo, hi uint64) []trace.Inst {
			return s.RecordRange(input, budget, lo, hi)
		},
		Resume: func(ck *program.Checkpoint, lo, hi uint64) ([]trace.Inst, error) {
			return s.RecordRangeFrom(input, budget, ck, lo, hi)
		},
	}
}

// SPECint2017Like returns the nine-benchmark suite modeled on Table I
// (603.gcc_s is excluded there and appears in the LCF suite, as in the
// paper).
func SPECint2017Like() []*Spec { return specSuite() }

// LCFLike returns the six large-code-footprint applications of Table II.
func LCFLike() []*Spec { return lcfSuite() }

// ByName returns the spec with the given name from either suite.
func ByName(name string) (*Spec, bool) {
	for _, s := range SPECint2017Like() {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range LCFLike() {
		if s.Name == name {
			return s, true
		}
	}
	return nil, false
}
