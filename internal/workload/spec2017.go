package workload

// specSuite defines the nine SPECint-2017-like workloads. The PaperStats
// columns are transcribed from Table I; the mix knobs are tuned so the
// generated traces reproduce the row's signature under TAGE-SC-L 8KB:
// overall accuracy, the H2P count per slice, and the share of
// mispredictions concentrated in H2Ps. EXPERIMENTS.md records the
// measured-vs-paper comparison.
func specSuite() []*Spec {
	common := mix{
		loopTrip:       8,
		loopCount:      6,
		patterns:       120,
		patternLen:     12,
		patternsActive: 6,
		biased:         600,
		maxGap:         5,
		rareLen:        10,
		rareEvery:      8,
		rareRandomFrac: 0.10,
		phases:         6,
		callDepth:      1,
		padding:        30,
		memOps:         6,
		memRandomFrac:  0.05,
		takenSkew:      0.88,
	}
	mk := func(f func(m *mix)) mix { m := common; f(&m); return m }

	return []*Spec{
		{
			Name: "600.perlbench_s", Suite: "specint2017", NumInputs: 4,
			Paper: PaperStats{StaticBranches: 13865, Accuracy: 0.987, AccuracyExclH2P: 0.989,
				H2PsPerSlice: 1, MispredShareH2P: 0.173},
			mix: mk(func(m *mix) {
				m.h2pPairs, m.h2pPerRound, m.h2pNoise = 1, 1, 0.15
				m.depEasy = true
				m.biasedPerRound, m.biasedAcc = 10, 0.99
				m.patterns, m.patternsActive = 300, 10
				m.biased = 1500
				m.rareStaticPaper, m.rareMinStatic = 12000, 400
				m.phases = 7
			}),
		},
		{
			Name: "605.mcf_s", Suite: "specint2017", NumInputs: 8,
			Paper: PaperStats{StaticBranches: 1755, Accuracy: 0.921, AccuracyExclH2P: 0.998,
				H2PsPerSlice: 10, MispredShareH2P: 0.969},
			mix: mk(func(m *mix) {
				m.h2pPairs, m.h2pPerRound, m.h2pNoise = 5, 8, 0.30
				m.maxGap = 6
				m.biasedPerRound, m.biasedAcc = 4, 0.998
				m.patterns, m.patternsActive = 40, 4
				m.biased = 120
				m.rareStaticPaper, m.rareMinStatic, m.rareEvery = 800, 64, 16
				m.phases = 11
			}),
		},
		{
			Name: "620.omnetpp_s", Suite: "specint2017", NumInputs: 5,
			Paper: PaperStats{StaticBranches: 7099, Accuracy: 0.975, AccuracyExclH2P: 0.994,
				H2PsPerSlice: 8, MispredShareH2P: 0.776},
			mix: mk(func(m *mix) {
				m.h2pPairs, m.h2pPerRound, m.h2pNoise = 4, 2, 0.18
				m.biasedPerRound, m.biasedAcc = 12, 0.993
				m.patterns, m.patternsActive = 200, 8
				m.biased = 800
				m.rareStaticPaper, m.rareMinStatic = 6000, 256
				m.phases = 12
			}),
		},
		{
			Name: "623.xalancbmk_s", Suite: "specint2017", NumInputs: 4,
			Paper: PaperStats{StaticBranches: 8563, Accuracy: 0.997, AccuracyExclH2P: 0.998,
				H2PsPerSlice: 6, MispredShareH2P: 0.286},
			mix: mk(func(m *mix) {
				m.h2pPairs, m.h2pPerRound, m.h2pNoise = 3, 1, 0.10
				m.loopTrip = 24
				m.biasedPerRound, m.biasedAcc = 8, 0.998
				m.patterns, m.patternsActive = 300, 14
				m.biased = 1200
				m.rareStaticPaper, m.rareMinStatic, m.rareEvery = 7000, 256, 12
				m.rareRandomFrac = 0.04
				m.phases = 7
			}),
		},
		{
			Name: "625.x264_s", Suite: "specint2017", NumInputs: 14,
			Paper: PaperStats{StaticBranches: 4892, Accuracy: 0.946, AccuracyExclH2P: 0.975,
				H2PsPerSlice: 1, MispredShareH2P: 0.542},
			mix: mk(func(m *mix) {
				m.h2pPairs, m.h2pPerRound, m.h2pNoise = 1, 5, 0.30
				m.depEasy = true
				m.maxGap = 2
				m.biasedPerRound, m.biasedAcc = 10, 0.97
				m.patterns, m.patternsActive = 150, 6
				m.biased = 700
				m.rareStaticPaper, m.rareMinStatic = 4000, 200
				m.phases = 14
			}),
		},
		{
			Name: "631.deepsjeng_s", Suite: "specint2017", NumInputs: 12,
			Paper: PaperStats{StaticBranches: 3162, Accuracy: 0.946, AccuracyExclH2P: 0.963,
				H2PsPerSlice: 13, MispredShareH2P: 0.312},
			mix: mk(func(m *mix) {
				m.h2pPairs, m.h2pSolo, m.h2pPerRound, m.h2pNoise = 6, 1, 4, 0.25
				m.biasedPerRound, m.biasedAcc = 20, 0.962
				m.patterns, m.patternsActive = 100, 5
				m.biased = 500
				m.rareStaticPaper, m.rareMinStatic = 2500, 128
				m.phases = 9
			}),
		},
		{
			Name: "641.leela_s", Suite: "specint2017", NumInputs: 10,
			Paper: PaperStats{StaticBranches: 3623, Accuracy: 0.880, AccuracyExclH2P: 0.960,
				H2PsPerSlice: 34, MispredShareH2P: 0.664},
			mix: mk(func(m *mix) {
				m.h2pPairs, m.h2pSolo, m.h2pPerRound, m.h2pNoise = 15, 4, 12, 0.35
				m.loopTrip = 5
				m.biasedPerRound, m.biasedAcc = 12, 0.955
				m.patterns, m.patternsActive = 80, 4
				m.biased = 400
				m.rareStaticPaper, m.rareMinStatic = 2800, 128
				m.phases = 9
			}),
		},
		{
			Name: "648.exchange2_s", Suite: "specint2017", NumInputs: 5,
			Paper: PaperStats{StaticBranches: 3765, Accuracy: 0.986, AccuracyExclH2P: 0.992,
				H2PsPerSlice: 7, MispredShareH2P: 0.447},
			mix: mk(func(m *mix) {
				m.h2pPairs, m.h2pSolo, m.h2pPerRound, m.h2pNoise = 3, 1, 1, 0.15
				m.biasedPerRound, m.biasedAcc = 10, 0.991
				m.patterns, m.patternsActive = 160, 7
				m.biased = 650
				m.rareStaticPaper, m.rareMinStatic = 3000, 128
				m.phases = 8
			}),
		},
		{
			Name: "657.xz_s", Suite: "specint2017", NumInputs: 5,
			Paper: PaperStats{StaticBranches: 2373, Accuracy: 0.897, AccuracyExclH2P: 0.980,
				H2PsPerSlice: 10, MispredShareH2P: 0.805},
			mix: mk(func(m *mix) {
				m.h2pPairs, m.h2pPerRound, m.h2pNoise = 5, 9, 0.35
				m.biasedPerRound, m.biasedAcc = 8, 0.985
				m.patterns, m.patternsActive = 60, 4
				m.biased = 300
				m.rareStaticPaper, m.rareMinStatic = 1800, 96
				m.phases = 8
			}),
		},
	}
}
