package workload

import (
	"testing"

	"branchlab/internal/engine"
	"branchlab/internal/trace"
)

// The slice-local checkpoint contract, property-tested over the whole
// registry: for every workload, resuming from any captured checkpoint
// is byte-identical to skimming from zero, at checkpoint spacings of
// one slice, three slices and beyond the trace length (no checkpoints
// at all — the fallback regime). Runs under -race in CI's slow lane.
func TestCheckpointResumeByteIdenticalAllWorkloads(t *testing.T) {
	const budget = 60_000
	const sliceLen = 15_000
	spacings := []uint64{sliceLen, 3 * sliceLen, budget * 2}
	for _, s := range append(SPECint2017Like(), LCFLike()...) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			want := s.Record(0, budget)
			for _, every := range spacings {
				arrs, cks := s.RecordSlices(0, budget, sliceLen, nil, 1, every)
				assertJoinEquals(t, arrs, want, s.Name)
				if every > budget {
					if len(cks) != 0 {
						t.Fatalf("spacing %d > budget captured %d checkpoints", every, len(cks))
					}
					continue
				}
				if len(cks) == 0 {
					t.Fatalf("spacing %d captured no checkpoints", every)
				}
				for i := range cks {
					ck := &cks[i]
					// A window starting at the capture point and one
					// starting mid-slice beyond it.
					for _, lo := range []uint64{ck.At, ck.At + 7000} {
						hi := lo + 4000
						if hi > budget {
							hi = budget
						}
						if lo >= hi {
							continue
						}
						got, err := s.RecordRangeFrom(0, budget, ck, lo, hi)
						if err != nil {
							t.Fatalf("resume ck@%d window [%d,%d): %v", ck.At, lo, hi, err)
						}
						for j, inst := range got {
							if inst != want.At(int(lo)+j) {
								t.Fatalf("resume ck@%d window [%d,%d): inst %d differs", ck.At, lo, hi, j)
							}
						}
					}
				}
			}
		})
	}
}

// Checkpoint capture must not depend on the shard count, and sharded
// re-recording from checkpoints must assemble the identical trace.
func TestCheckpointShardedRecordingByteIdentical(t *testing.T) {
	const budget = 80_000
	pool := engine.New(4)
	for _, name := range []string{"605.mcf_s", "game"} {
		s := mustSpec(t, name)
		want := s.Record(0, budget)
		arrs, cks := s.RecordSlices(0, budget, 20_000, nil, 1, 20_000)
		assertJoinEquals(t, arrs, want, name)
		if len(cks) == 0 {
			t.Fatalf("%s: no checkpoints captured", name)
		}
		_, shardedCks := s.RecordSlices(0, budget, 20_000, pool, 4, 20_000)
		if len(shardedCks) != len(cks) {
			t.Fatalf("%s: sharded capture found %d checkpoints, sequential %d", name, len(shardedCks), len(cks))
		}
		for i := range cks {
			if cks[i].At != shardedCks[i].At || cks[i].Rng != shardedCks[i].Rng {
				t.Fatalf("%s: checkpoint %d differs between shard counts", name, i)
			}
		}
		for _, shards := range []int{2, 5} {
			got := s.RecordShardedFrom(0, budget, pool, shards, cks)
			if got.Len() != want.Len() {
				t.Fatalf("%s shards=%d: length %d, want %d", name, shards, got.Len(), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				if got.At(i) != want.At(i) {
					t.Fatalf("%s shards=%d: instruction %d differs", name, shards, i)
				}
			}
		}
	}
}

func assertJoinEquals(t *testing.T, arrs [][]trace.Inst, want *trace.Buffer, label string) {
	t.Helper()
	n := 0
	for _, a := range arrs {
		for _, inst := range a {
			if inst != want.At(n) {
				t.Fatalf("%s: instruction %d differs from reference recording", label, n)
			}
			n++
		}
	}
	if n != want.Len() {
		t.Fatalf("%s: %d instructions, want %d", label, n, want.Len())
	}
}

// A checkpoint from one (input, budget) must not resume another: the
// typed-error path, not silent wrong bytes. The generator state layout
// is identical across inputs, so the RNG/emitter state is what makes
// the bytes diverge — this asserts the documented caller obligation
// (same triple) is what the exactness tests above actually rely on.
func TestCheckpointIsTripleSpecific(t *testing.T) {
	s := mustSpec(t, "605.mcf_s")
	const budget = 60_000
	_, cks := s.RecordSlices(0, budget, 15_000, nil, 1, 15_000)
	if len(cks) == 0 {
		t.Fatal("no checkpoints")
	}
	ck := &cks[len(cks)-1]
	// Same spec, different budget: the payload's derived structure
	// (rareStatic, phaseLen) differs, so bytes from a resume are not
	// comparable; the contract only promises exactness for the captured
	// triple. Resume may succeed mechanically — verify we are NOT
	// byte-identical to the other budget's reference, i.e. the test
	// above is not vacuously passing.
	other := s.Record(0, budget*2)
	got, err := s.RecordRangeFrom(0, budget*2, ck, ck.At, ck.At+2000)
	if err != nil {
		return // rejected outright: equally acceptable
	}
	same := true
	for j, inst := range got {
		if inst != other.At(int(ck.At)+j) {
			same = false
			break
		}
	}
	if same {
		t.Skip("budgets happen to agree over this window; nothing to assert")
	}
}
