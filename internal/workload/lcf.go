package workload

// lcfSuite defines the six large-code-footprint applications of Table II:
// 602.gcc_s plus five live-deployment workloads (game, RDBMS, NoSQL
// database, real-time analytics, streaming server). Their defining
// property is a cold static footprint executed in short, phase-shifting
// bursts: most static branch IPs run fewer than 100 times per slice, with
// a wide accuracy spread (Figs 3 and 4) and long recurrence intervals
// (Fig 9). Each carries only a handful of H2Ps (Table II).
func lcfSuite() []*Spec {
	common := mix{
		loopTrip:       7,
		loopCount:      5,
		patterns:       80,
		patternLen:     10,
		patternsActive: 5,
		biased:         400,
		biasedPerRound: 6,
		biasedAcc:      0.97,
		maxGap:         4,
		rareEvery:      1, // cold code on every round: the defining trait
		phases:         10,
		callDepth:      2,
		padding:        26,
		memOps:         8,
		memRandomFrac:  0.25,
		takenSkew:      0.55,
		rarePhaseFlip:  0.25,
	}
	mk := func(f func(m *mix)) mix { m := common; f(&m); return m }

	return []*Spec{
		{
			Name: "602.gcc_s", Suite: "lcf", NumInputs: 1,
			Paper: PaperStats{StaticBranches: 6152, ExecsPerBranch: 715.6, Accuracy: 0.88, H2PsPerSlice: 5},
			mix: mk(func(m *mix) {
				m.rareStaticPaper, m.rareMinStatic = 6000, 512
				m.rareLen, m.rareRandomFrac = 20, 0.30
				m.h2pPairs, m.h2pSolo, m.h2pPerRound, m.h2pNoise = 2, 1, 2, 0.30
			}),
		},
		{
			Name: "game", Suite: "lcf", NumInputs: 1,
			Paper: PaperStats{StaticBranches: 45996, ExecsPerBranch: 55.2, Accuracy: 0.73, H2PsPerSlice: 1},
			mix: mk(func(m *mix) {
				m.rareStaticPaper, m.rareMinStatic = 46000, 4096
				m.rareLen, m.rareRandomFrac = 40, 0.55
				m.h2pSolo, m.h2pPerRound, m.h2pNoise = 1, 2, 0.30
				m.biasedPerRound = 4
				m.phases = 12
			}),
		},
		{
			Name: "rdbms", Suite: "lcf", NumInputs: 1,
			Paper: PaperStats{StaticBranches: 16096, ExecsPerBranch: 314.3, Accuracy: 0.92, H2PsPerSlice: 8},
			mix: mk(func(m *mix) {
				m.rareStaticPaper, m.rareMinStatic = 16000, 1024
				m.rareLen, m.rareRandomFrac = 24, 0.13
				m.h2pPairs, m.h2pPerRound, m.h2pNoise = 4, 2, 0.25
				m.phases = 11
			}),
		},
		{
			Name: "nosql", Suite: "lcf", NumInputs: 1,
			Paper: PaperStats{StaticBranches: 7449, ExecsPerBranch: 331.0, Accuracy: 0.93, H2PsPerSlice: 2},
			mix: mk(func(m *mix) {
				m.rareStaticPaper, m.rareMinStatic = 7400, 512
				m.rareLen, m.rareRandomFrac = 18, 0.11
				m.h2pPairs, m.h2pPerRound, m.h2pNoise = 1, 2, 0.25
				m.phases = 9
			}),
		},
		{
			Name: "rt-analytics", Suite: "lcf", NumInputs: 1,
			Paper: PaperStats{StaticBranches: 5595, ExecsPerBranch: 856.0, Accuracy: 0.83, H2PsPerSlice: 6},
			mix: mk(func(m *mix) {
				m.rareStaticPaper, m.rareMinStatic = 5500, 640
				m.rareLen, m.rareRandomFrac = 20, 0.42
				m.h2pPairs, m.h2pPerRound, m.h2pNoise = 3, 3, 0.30
				m.phases = 8
			}),
		},
		{
			Name: "streaming", Suite: "lcf", NumInputs: 1,
			Paper: PaperStats{StaticBranches: 3144, ExecsPerBranch: 1404.7, Accuracy: 0.78, H2PsPerSlice: 6},
			mix: mk(func(m *mix) {
				m.rareStaticPaper, m.rareMinStatic = 3100, 768
				m.rareLen, m.rareRandomFrac = 20, 0.62
				m.h2pPairs, m.h2pPerRound, m.h2pNoise = 3, 6, 0.40
				m.phases = 8
			}),
		},
	}
}
