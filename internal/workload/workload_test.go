package workload

import (
	"bytes"
	"testing"

	"branchlab/internal/core"
	"branchlab/internal/engine"
	"branchlab/internal/tage"
	"branchlab/internal/trace"
	"branchlab/internal/tracecache"
	"branchlab/internal/tracestore"
)

func TestSuitesComplete(t *testing.T) {
	spec := SPECint2017Like()
	if len(spec) != 9 {
		t.Errorf("SPECint suite has %d workloads, want 9 (Table I)", len(spec))
	}
	lcf := LCFLike()
	if len(lcf) != 6 {
		t.Errorf("LCF suite has %d workloads, want 6 (Table II)", len(lcf))
	}
	names := map[string]bool{}
	for _, s := range append(spec, lcf...) {
		if names[s.Name] {
			t.Errorf("duplicate workload name %q", s.Name)
		}
		names[s.Name] = true
		if s.NumInputs < 1 {
			t.Errorf("%s: NumInputs = %d", s.Name, s.NumInputs)
		}
		if s.Paper.Accuracy <= 0.5 || s.Paper.Accuracy >= 1 {
			t.Errorf("%s: paper accuracy %v out of range", s.Name, s.Paper.Accuracy)
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("605.mcf_s"); !ok {
		t.Error("605.mcf_s not found")
	}
	if _, ok := ByName("game"); !ok {
		t.Error("game not found")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Error("nonexistent workload found")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	s, _ := ByName("605.mcf_s")
	a := s.Record(0, 100000)
	b := s.Record(0, 100000)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("instruction %d differs between identical runs", i)
		}
	}
}

func TestRecordShardedByteIdentical(t *testing.T) {
	pool := engine.New(4)
	for _, name := range []string{"605.mcf_s", "game"} {
		s, ok := ByName(name)
		if !ok {
			t.Fatalf("%s not found", name)
		}
		want := s.Record(0, 120_000)
		for _, shards := range []int{2, 5} {
			got := s.RecordSharded(0, 120_000, pool, shards)
			if got.Len() != want.Len() {
				t.Fatalf("%s shards=%d: length %d, want %d", name, shards, got.Len(), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				if got.At(i) != want.At(i) {
					t.Fatalf("%s shards=%d: instruction %d differs", name, shards, i)
				}
			}
		}
	}
}

func TestInputsDiffer(t *testing.T) {
	s, _ := ByName("605.mcf_s")
	a := s.Record(0, 50000)
	b := s.Record(1, 50000)
	same := 0
	n := a.Len()
	if b.Len() < n {
		n = b.Len()
	}
	for i := 0; i < n; i++ {
		if a.At(i) == b.At(i) {
			same++
		}
	}
	if same == n {
		t.Error("different inputs produced identical traces")
	}
}

func TestInputOutOfRangePanics(t *testing.T) {
	s, _ := ByName("605.mcf_s")
	defer func() {
		if recover() == nil {
			t.Error("out-of-range input did not panic")
		}
	}()
	s.Payload(s.NumInputs)
}

func TestBudgetRespected(t *testing.T) {
	s, _ := ByName("641.leela_s")
	st := s.Stream(0, 123456)
	n := trace.Count(st)
	trace.CloseStream(st)
	if n != 123456 {
		t.Errorf("stream yielded %d instructions, want 123456", n)
	}
}

func TestTraceShape(t *testing.T) {
	for _, s := range append(SPECint2017Like(), LCFLike()...) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			sum := trace.Summarize(trace.FuncStream(mkNext(s, 200000)))
			if sum.Insts != 200000 {
				t.Fatalf("insts = %d", sum.Insts)
			}
			density := float64(sum.CondBranches) / float64(sum.Insts)
			if density < 0.08 || density > 0.35 {
				t.Errorf("conditional branch density %v outside [0.08, 0.35]", density)
			}
			if sum.StaticCondBr < 50 {
				t.Errorf("static footprint %d too small", sum.StaticCondBr)
			}
			if sum.Loads == 0 || sum.Stores == 0 {
				t.Error("trace has no memory traffic")
			}
			if sum.TakenRate < 0.3 || sum.TakenRate > 0.95 {
				t.Errorf("taken rate %v looks wrong", sum.TakenRate)
			}
		})
	}
}

func mkNext(s *Spec, budget uint64) func(*trace.Inst) bool {
	st := s.Stream(0, budget)
	return st.Next
}

// TestLCFHasLargerFootprintAndLowerAccuracy checks the paper's defining
// suite-level contrast (Table I vs Table II): LCF applications have many
// more static branches per slice and significantly lower accuracy.
func TestLCFHasLargerFootprintAndLowerAccuracy(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	const budget = 600000
	measure := func(s *Spec) (float64, int) {
		st := s.Stream(0, budget)
		defer trace.CloseStream(st)
		col := core.NewCollector(budget)
		run := core.Run(st, tage.New(tage.Config8KB()), col)
		return run.Accuracy(), col.StaticBranches()
	}
	gameAcc, gameStatic := measure(mustSpec(t, "game"))
	mcfAcc, mcfStatic := measure(mustSpec(t, "605.mcf_s"))
	if gameAcc >= mcfAcc {
		t.Errorf("game accuracy (%v) should be below mcf (%v)", gameAcc, mcfAcc)
	}
	if gameStatic <= mcfStatic {
		t.Errorf("game static footprint (%d) should exceed mcf (%d)", gameStatic, mcfStatic)
	}
}

// TestCalibrationBands runs a quick TAGE-SC-L 8KB pass per workload and
// checks the measured accuracy lands within a loose band of the paper's
// Table I/II value. The tight comparison lives in EXPERIMENTS.md; this
// guards against regressions that would silently invalidate experiments.
func TestCalibrationBands(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	const budget = 600000
	const tolerance = 0.06
	for _, s := range append(SPECint2017Like(), LCFLike()...) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			st := s.Stream(0, budget)
			defer trace.CloseStream(st)
			run := core.Run(st, tage.New(tage.Config8KB()))
			if diff := run.Accuracy() - s.Paper.Accuracy; diff > tolerance || diff < -tolerance {
				t.Errorf("accuracy %.4f vs paper %.4f (|Δ| > %.2f)",
					run.Accuracy(), s.Paper.Accuracy, tolerance)
			}
		})
	}
}

// TestH2PCountsNearPaper verifies H2P screening finds approximately the
// Table I H2P population for a few representative workloads.
func TestH2PCountsNearPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	cases := []struct {
		name     string
		min, max int // acceptable per-slice band
	}{
		{"605.mcf_s", 6, 14},
		{"641.leela_s", 20, 50},
		{"600.perlbench_s", 1, 4},
		{"nosql", 1, 6},
	}
	const budget = 1_000_000
	const sliceLen = 500_000
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			s := mustSpec(t, c.name)
			st := s.Stream(0, budget)
			defer trace.CloseStream(st)
			col := core.NewCollector(sliceLen)
			core.Run(st, tage.New(tage.Config8KB()), col)
			rep := core.PaperCriteria().Scaled(sliceLen).Screen(col)
			avg := rep.AvgPerSlice()
			if avg < float64(c.min) || avg > float64(c.max) {
				t.Errorf("H2Ps per slice = %.1f, want in [%d, %d] (paper: %d)",
					avg, c.min, c.max, s.Paper.H2PsPerSlice)
			}
		})
	}
}

// TestH2PsRecurAcrossInputs checks Table I's key claim: the same static
// H2P branches appear across distinct application inputs.
func TestH2PsRecurAcrossInputs(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration test")
	}
	s := mustSpec(t, "605.mcf_s")
	const budget = 600000
	var reports []*core.H2PReport
	for input := 0; input < 3; input++ {
		st := s.Stream(input, budget)
		col := core.NewCollector(budget / 2)
		core.Run(st, tage.New(tage.Config8KB()), col)
		trace.CloseStream(st)
		reports = append(reports, core.PaperCriteria().Scaled(budget/2).Screen(col))
	}
	agg := core.Aggregate(reports)
	if agg.AppearingIn(3) == 0 {
		t.Error("no H2P recurs across all 3 inputs; Table I requires recurring H2Ps")
	}
}

func mustSpec(t *testing.T, name string) *Spec {
	t.Helper()
	s, ok := ByName(name)
	if !ok {
		t.Fatalf("workload %q not found", name)
	}
	return s
}

// TestTraceFileRoundTrip stores a realistic workload trace in the BLT1
// format and verifies the decoded stream drives a predictor to an
// identical outcome — the offline trace-library workflow of §V-B.
func TestTraceFileRoundTrip(t *testing.T) {
	s := mustSpec(t, "602.gcc_s")
	orig := s.Record(0, 100000)

	var buf bytes.Buffer
	w := trace.NewWriter(&buf)
	st := orig.Stream()
	var inst trace.Inst
	for st.Next(&inst) {
		if err := w.WriteInst(&inst); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	direct := core.Run(orig.Stream(), tage.New(tage.Config8KB()))
	decoded := core.Run(trace.NewReader(&buf), tage.New(tage.Config8KB()))
	if direct != decoded {
		t.Errorf("decoded trace diverges: %+v vs %+v", direct, decoded)
	}
}

// TestStoreRestartReuseAllWorkloads is the zoo-wide persistence drill:
// every registered workload records once into a shared trace store,
// then a simulated restart (fresh cache, fresh store handle, same
// directory) replays each — byte-identically and without a single
// re-recording. This is the store's whole contract in one test:
// content keys are stable across processes, headers restore without
// recording, and promoted slices carry exact bytes.
func TestStoreRestartReuseAllWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("records all 15 workloads twice")
	}
	const budget = 60_000
	dir := t.TempDir()
	all := append(SPECint2017Like(), LCFLike()...)

	replay := func(c *tracecache.Cache) map[string][]trace.Inst {
		out := make(map[string][]trace.Inst, len(all))
		for _, s := range all {
			src := s.CacheSource(0, budget, nil, 1, CkptPerCacheSlice)
			v := c.Record(s.Name, 0, budget, src)
			insts := make([]trace.Inst, 0, v.Len())
			var inst trace.Inst
			st := v.Stream()
			for st.Next(&inst) {
				insts = append(insts, inst)
			}
			out[s.Name] = insts
		}
		return out
	}

	st1, err := tracestore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	c1 := tracecache.NewSliced(0, 16384)
	c1.SetStore(st1)
	want := replay(c1)
	if m := c1.Stats().Misses; m != uint64(len(all)) {
		t.Fatalf("cold run performed %d recordings, want %d", m, len(all))
	}
	st1.Close()

	st2, err := tracestore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	c2 := tracecache.NewSliced(0, 16384)
	c2.SetStore(st2)
	got := replay(c2)
	cs := c2.Stats()
	if cs.Misses != 0 {
		t.Fatalf("warm run performed %d recordings, want 0", cs.Misses)
	}
	if cs.DiskHeaderHits != uint64(len(all)) {
		t.Fatalf("warm run restored %d headers, want %d", cs.DiskHeaderHits, len(all))
	}
	if ss := st2.Stats(); ss.SliceWrites != 0 || ss.Rejects != 0 {
		t.Fatalf("warm store stats = %+v, want no writes, no rejects", ss)
	}
	for _, s := range all {
		a, b := want[s.Name], got[s.Name]
		if len(a) != len(b) {
			t.Fatalf("%s: length %d vs %d across restart", s.Name, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: instruction %d differs across restart", s.Name, i)
			}
		}
	}
}
