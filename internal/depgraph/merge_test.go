package depgraph

import (
	"reflect"
	"testing"

	"branchlab/internal/trace"
	"branchlab/internal/xrand"
)

// depTrace builds a trace where several target branches read registers
// written by earlier instructions, so every target accumulates
// dependency branches at varied history positions.
func depTrace(n int, seed uint64) *trace.Buffer {
	r := xrand.New(seed)
	b := trace.NewBuffer(n)
	for i := 0; i < n; i++ {
		switch r.Intn(6) {
		case 0: // define a value
			b.Append(trace.Inst{IP: 0x100, Kind: trace.KindALU,
				DstReg: uint8(r.Intn(8)), DstValue: r.Uint64() & 0xFF,
				SrcRegs: [2]uint8{uint8(r.Intn(8)), trace.NoReg}})
		case 1, 2: // dependency-branch candidates reading a register
			b.Append(trace.Inst{IP: uint64(0xB000 + 64*r.Intn(6)), Kind: trace.KindCondBr,
				Taken: r.Bool(0.5), Target: 0xB800, DstReg: trace.NoReg,
				SrcRegs: [2]uint8{uint8(r.Intn(8)), trace.NoReg}})
		case 3: // target branches
			b.Append(trace.Inst{IP: uint64(0xD000 + 64*r.Intn(3)), Kind: trace.KindCondBr,
				Taken: r.Bool(0.5), Target: 0xD800, DstReg: trace.NoReg,
				SrcRegs: [2]uint8{uint8(r.Intn(8)), trace.NoReg}})
		default:
			b.Append(trace.Inst{IP: 0x104, Kind: trace.KindALU,
				DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})
		}
	}
	return b
}

func runAnalyzer(tr *trace.Buffer, targets ...uint64) *Analyzer {
	a := New(200, 0, targets...)
	s := tr.Stream()
	var inst trace.Inst
	var i uint64
	for s.Next(&inst) {
		a.Inst(i, &inst)
		i++
	}
	return a
}

// Splitting the target set across analyzers that each replay the whole
// trace, then merging, must equal one analyzer over the union: the
// supported sharding mode for Table III / Fig 6 style studies.
func TestMergeDisjointTargetsExact(t *testing.T) {
	tr := depTrace(30_000, 9)
	targets := []uint64{0xD000, 0xD040, 0xD080}
	want := runAnalyzer(tr, targets...)

	a := runAnalyzer(tr, targets[0])
	b := runAnalyzer(tr, targets[1])
	c := runAnalyzer(tr, targets[2])
	a.Merge(b)
	a.Merge(c)

	for _, target := range targets {
		if !reflect.DeepEqual(a.Positions(target), want.Positions(target)) {
			t.Fatalf("positions for target %#x differ after merge", target)
		}
		if a.Summarize(target) != want.Summarize(target) {
			t.Fatalf("summary for target %#x differs after merge", target)
		}
	}
	if s := want.Summarize(targets[0]); s.DepBranches == 0 || s.Execs == 0 {
		t.Fatal("degenerate trace: targets found no dependencies")
	}
}

// Merging analyzers that observed disjoint halves of the execs of the
// same target sums counts deterministically (the documented overlap
// semantics).
func TestMergeOverlappingTargetsSums(t *testing.T) {
	tr := depTrace(20_000, 21)
	const target = 0xD000
	a := runAnalyzer(tr, target)
	b := runAnalyzer(tr, target)
	merged := runAnalyzer(tr, target)
	merged.Merge(runAnalyzer(tr, target))

	sa, sb, sm := a.Summarize(target), b.Summarize(target), merged.Summarize(target)
	if sm.Execs != sa.Execs+sb.Execs || sm.Analyzed != sa.Analyzed+sb.Analyzed {
		t.Fatalf("merged exec counts %+v do not sum %+v + %+v", sm, sa, sb)
	}
	for _, p := range merged.Positions(target) {
		if p.Count%2 != 0 {
			t.Fatalf("doubled analyzer should have even counts, got %+v", p)
		}
	}
}
