// Package depgraph implements the operand dependency-graph analysis of
// §IV-A: for each dynamic execution of a target (H2P) branch, it computes
// the backward dataflow closure of the branch's condition operands over
// the prior instructions (the paper uses a 5,000-instruction window) and
// identifies *dependency branches* — earlier conditional branches that
// read a value in that closure — together with the global-history
// position at which each appeared to the BPU. The distribution of those
// positions (Fig 6) is the paper's evidence that H2P history correlations
// exist but move around, defeating exact pattern matching.
package depgraph

import (
	"math"
	"sort"

	"branchlab/internal/trace"
)

// DefaultWindow is the paper's backward-analysis window.
const DefaultWindow = 5000

// ringEntry is one instruction in the sliding window annotated with
// value-identity information: every register/memory write creates a new
// value named by the writer's sequence number.
type ringEntry struct {
	seq    uint64
	ip     uint64
	isCond bool
	// srcVals are the value IDs (writer sequence numbers) the
	// instruction read; 0 = unknown/outside window.
	srcVals [3]uint64
	dstsSeq bool // whether this instruction defined a value
}

// Analyzer tracks dependency branches for a set of target IPs. It
// implements the core.Observer contract.
//
// Only the per-target results participate in Merge: the supported
// sharding is by target set over replays of the same trace (see the
// Merge doc), so every field below the targets map is whole-trace
// replay state that each shard rebuilds identically from instruction
// zero — the mergecomplete annotations record that argument field by
// field.
type Analyzer struct {
	Window int //lint:ignore mergecomplete construction-time configuration; New gives every target-set shard the same value
	// MaxSamples bounds how many executions per target are analyzed (the
	// backward walk is O(Window)); 0 means analyze every execution.
	MaxSamples int //lint:ignore mergecomplete construction-time configuration, identical across target-set shards

	targets map[uint64]*targetState

	ring []ringEntry //lint:ignore mergecomplete whole-trace window state: every target-set shard replays the full trace and holds an identical window
	head int         //lint:ignore mergecomplete whole-trace window cursor, identical across target-set shards
	size int         //lint:ignore mergecomplete whole-trace window fill, identical across target-set shards

	regWriter [trace.NumRegs]uint64 //lint:ignore mergecomplete whole-trace value-identity state, identical across target-set shards
	memWriter map[uint64]uint64     //lint:ignore mergecomplete whole-trace value-identity state, identical across target-set shards
	seq       uint64                //lint:ignore mergecomplete whole-trace sequence counter, identical across target-set shards

	// scratch reused across analyses
	closure map[uint64]struct{} //lint:ignore mergecomplete per-call scratch, cleared at the top of every analyze
}

// targetState accumulates per-target results.
type targetState struct {
	// positions maps dependency-branch IP -> history position -> count.
	positions map[uint64]map[int]uint64
	analyzed  uint64
	execs     uint64
}

// New returns an Analyzer for the given target branch IPs.
func New(window, maxSamples int, targets ...uint64) *Analyzer {
	if window <= 0 {
		window = DefaultWindow
	}
	a := &Analyzer{
		Window:     window,
		MaxSamples: maxSamples,
		targets:    make(map[uint64]*targetState, len(targets)),
		ring:       make([]ringEntry, window),
		memWriter:  make(map[uint64]uint64),
		closure:    make(map[uint64]struct{}),
	}
	for _, t := range targets {
		a.targets[t] = &targetState{positions: make(map[uint64]map[int]uint64)}
	}
	return a
}

// Inst implements the observer contract.
func (a *Analyzer) Inst(_ uint64, inst *trace.Inst) {
	a.seq++
	e := ringEntry{seq: a.seq, ip: inst.IP, isCond: inst.Kind == trace.KindCondBr}
	for k, r := range inst.SrcRegs {
		if r != trace.NoReg {
			e.srcVals[k] = a.regWriter[r]
		}
	}
	if inst.Kind == trace.KindLoad {
		e.srcVals[2] = a.memWriter[inst.MemAddr>>3]
	}

	// Analyze *before* inserting the target itself, so the window holds
	// exactly the prior instructions.
	if e.isCond {
		if st, ok := a.targets[inst.IP]; ok {
			st.execs++
			if a.MaxSamples == 0 || st.analyzed < uint64(a.MaxSamples) {
				st.analyzed++
				a.analyze(st, e)
			}
		}
	}

	a.ring[a.head] = e
	a.head = (a.head + 1) % len(a.ring)
	if a.size < len(a.ring) {
		a.size++
	}
	if inst.DstReg != trace.NoReg {
		a.regWriter[inst.DstReg] = a.seq
	}
	if inst.Kind == trace.KindStore {
		a.memWriter[inst.MemAddr>>3] = a.seq
		// Bound the memory writer map: forget very old stores.
		if len(a.memWriter) > 1<<18 {
			for k, v := range a.memWriter {
				if a.seq-v > uint64(a.Window)*4 {
					delete(a.memWriter, k)
				}
			}
		}
	}
}

// Branch implements the observer contract.
func (a *Analyzer) Branch(uint64, *trace.Inst, bool) {}

// Merge folds other's per-target results into a. The supported
// sharding is by target set: several analyzers replay the same trace,
// each analyzing a disjoint subset of the targets, and merge to
// exactly the state one analyzer over the union would hold (per-target
// state never interacts across targets). Time-sharding a trace is not
// supported — the backward window, register/memory writer maps and the
// per-target MaxSamples cutoff all carry state across any split point.
// Overlapping targets merge deterministically by summing counts.
// other must not be used afterwards (its maps are adopted).
func (a *Analyzer) Merge(other *Analyzer) {
	for ip, ost := range other.targets {
		st := a.targets[ip]
		if st == nil {
			a.targets[ip] = ost
			continue
		}
		st.execs += ost.execs
		st.analyzed += ost.analyzed
		for dep, m := range ost.positions {
			t := st.positions[dep]
			if t == nil {
				st.positions[dep] = m
				continue
			}
			for pos, c := range m {
				t[pos] += c
			}
		}
	}
}

// analyze walks the window backwards from the target execution, expands
// the dataflow closure of the target's source values, and records every
// conditional branch that reads a closure value at its history position
// (1 = the branch immediately before the target).
func (a *Analyzer) analyze(st *targetState, target ringEntry) {
	closure := a.closure
	for k := range closure {
		delete(closure, k)
	}
	for _, v := range target.srcVals {
		if v != 0 {
			closure[v] = struct{}{}
		}
	}
	if len(closure) == 0 {
		return
	}
	minSeq := uint64(1)
	if a.seq > uint64(a.Window) {
		minSeq = a.seq - uint64(a.Window)
	}
	histPos := 0
	// Walk newest -> oldest. Because values are writer sequence numbers
	// and writers precede readers, one backward pass expands the closure
	// transitively: when we reach a writer, its own sources join the
	// closure before any older instruction is visited.
	for k := 1; k <= a.size; k++ {
		idx := a.head - k
		if idx < 0 {
			idx += len(a.ring)
		}
		e := &a.ring[idx]
		if e.seq < minSeq {
			break
		}
		if e.isCond {
			histPos++
		}
		_, inClosure := closure[e.seq]
		if inClosure {
			// This instruction defined a closure value: its inputs are
			// also ground-truth-relevant.
			for _, v := range e.srcVals {
				if v != 0 {
					closure[v] = struct{}{}
				}
			}
		}
		if e.isCond {
			reads := false
			for _, v := range e.srcVals {
				if v == 0 {
					continue
				}
				if _, ok := closure[v]; ok {
					reads = true
					break
				}
			}
			if reads {
				m := st.positions[e.ip]
				if m == nil {
					m = make(map[int]uint64)
					st.positions[e.ip] = m
				}
				m[histPos]++
			}
		}
	}
}

// PosCount is one (dependency branch, history position) observation
// count, a Fig 6 data point.
type PosCount struct {
	DepIP uint64
	Pos   int
	Count uint64
}

// Positions returns all recorded (dependency IP, position, count)
// triples for target, sorted by IP then position.
func (a *Analyzer) Positions(target uint64) []PosCount {
	st := a.targets[target]
	if st == nil {
		return nil
	}
	var out []PosCount
	for ip, m := range st.positions {
		for pos, c := range m {
			out = append(out, PosCount{DepIP: ip, Pos: pos, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DepIP != out[j].DepIP {
			return out[i].DepIP < out[j].DepIP
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

// Summary is the Table III row for one target.
type Summary struct {
	Target      uint64
	Execs       uint64
	Analyzed    uint64
	DepBranches int // distinct dependency-branch IPs
	MinPos      int // minimum observed history position
	MaxPos      int // maximum observed history position
	// PositionsPerDep is the mean number of distinct history positions a
	// dependency branch appears at — the variation the paper highlights.
	PositionsPerDep float64
}

// Summarize returns the Table III summary for target.
func (a *Analyzer) Summarize(target uint64) Summary {
	st := a.targets[target]
	if st == nil {
		return Summary{Target: target}
	}
	s := Summary{Target: target, Execs: st.execs, Analyzed: st.analyzed,
		DepBranches: len(st.positions), MinPos: math.MaxInt64}
	totalPositions := 0
	for _, m := range st.positions {
		totalPositions += len(m)
		for pos := range m {
			if pos < s.MinPos {
				s.MinPos = pos
			}
			if pos > s.MaxPos {
				s.MaxPos = pos
			}
		}
	}
	if s.DepBranches == 0 {
		s.MinPos = 0
	} else {
		s.PositionsPerDep = float64(totalPositions) / float64(s.DepBranches)
	}
	return s
}
