package depgraph

import (
	"testing"

	"branchlab/internal/trace"
)

const (
	rTarget = 10 // register read by the target branch
	rOther  = 11
)

func alu(ip uint64, dst uint8, srcs ...uint8) trace.Inst {
	inst := trace.Inst{IP: ip, Kind: trace.KindALU, DstReg: dst,
		SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}}
	for i, s := range srcs {
		inst.SrcRegs[i] = s
	}
	return inst
}

func condbr(ip uint64, srcs ...uint8) trace.Inst {
	inst := trace.Inst{IP: ip, Kind: trace.KindCondBr, Taken: true, Target: ip + 64,
		DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}}
	for i, s := range srcs {
		inst.SrcRegs[i] = s
	}
	return inst
}

func feed(a *Analyzer, insts []trace.Inst) {
	for i := range insts {
		a.Inst(uint64(i), &insts[i])
	}
}

func TestDirectDependencyDetected(t *testing.T) {
	// def r10; dep branch reads r10; unrelated branch; target reads r10.
	insts := []trace.Inst{
		alu(0x10, rTarget),
		condbr(0xD0, rTarget), // dependency branch, position 2
		condbr(0xE0, rOther),  // unrelated branch, position 1
		condbr(0xAA, rTarget), // target
	}
	a := New(100, 0, 0xAA)
	feed(a, insts)
	sum := a.Summarize(0xAA)
	if sum.Execs != 1 || sum.Analyzed != 1 {
		t.Fatalf("execs/analyzed = %d/%d", sum.Execs, sum.Analyzed)
	}
	if sum.DepBranches != 1 {
		t.Fatalf("DepBranches = %d, want 1 (0xE0 reads an unrelated value)", sum.DepBranches)
	}
	pos := a.Positions(0xAA)
	if len(pos) != 1 || pos[0].DepIP != 0xD0 || pos[0].Pos != 2 || pos[0].Count != 1 {
		t.Errorf("positions = %+v", pos)
	}
}

func TestTransitiveDependencyThroughALU(t *testing.T) {
	// def r11; branch reads r11; r10 = f(r11); target reads r10.
	// The branch reads a value in the transitive closure of the target's
	// operand, so it is a dependency branch.
	insts := []trace.Inst{
		alu(0x10, rOther),
		condbr(0xD0, rOther),
		alu(0x14, rTarget, rOther),
		condbr(0xAA, rTarget),
	}
	a := New(100, 0, 0xAA)
	feed(a, insts)
	if got := a.Summarize(0xAA).DepBranches; got != 1 {
		t.Errorf("transitive dependency missed: DepBranches = %d", got)
	}
}

func TestDependencyThroughMemory(t *testing.T) {
	// store r11 -> addr; branch reads r11; load addr -> r10; target
	// reads r10. The chain flows through memory.
	store := trace.Inst{IP: 0x20, Kind: trace.KindStore, MemAddr: 0x800,
		DstReg: trace.NoReg, SrcRegs: [2]uint8{rOther, trace.NoReg}}
	load := trace.Inst{IP: 0x24, Kind: trace.KindLoad, MemAddr: 0x800,
		DstReg: rTarget, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}}
	insts := []trace.Inst{
		alu(0x10, rOther),
		condbr(0xD0, rOther),
		store,
		load,
		condbr(0xAA, rTarget),
	}
	a := New(100, 0, 0xAA)
	feed(a, insts)
	if got := a.Summarize(0xAA).DepBranches; got != 1 {
		t.Errorf("memory-carried dependency missed: DepBranches = %d", got)
	}
}

func TestRedefinitionBreaksDependency(t *testing.T) {
	// A branch reads r10's OLD value; r10 is then redefined from an
	// unrelated source before the target reads it. The old-value reader
	// is NOT a dependency branch.
	insts := []trace.Inst{
		alu(0x10, rTarget),    // old def
		condbr(0xD0, rTarget), // reads old value
		alu(0x14, rTarget),    // fresh def, no sources
		condbr(0xAA, rTarget), // target reads fresh value
	}
	a := New(100, 0, 0xAA)
	feed(a, insts)
	if got := a.Summarize(0xAA).DepBranches; got != 0 {
		t.Errorf("stale-value reader misclassified: DepBranches = %d", got)
	}
}

func TestVariablePositionsAccumulate(t *testing.T) {
	// The same dependency branch appears at different history positions
	// across executions (the Fig 6 phenomenon).
	var insts []trace.Inst
	for rep := 0; rep < 10; rep++ {
		insts = append(insts, alu(0x10, rTarget))
		insts = append(insts, condbr(0xD0, rTarget))
		for j := 0; j < rep%4; j++ { // variable-length noise
			insts = append(insts, condbr(0xE0, rOther))
		}
		insts = append(insts, condbr(0xAA, rTarget))
	}
	a := New(100, 0, 0xAA)
	feed(a, insts)
	sum := a.Summarize(0xAA)
	if sum.DepBranches < 1 {
		t.Fatal("dependency branch not found")
	}
	positions := map[int]bool{}
	for _, p := range a.Positions(0xAA) {
		if p.DepIP == 0xD0 {
			positions[p.Pos] = true
		}
	}
	if len(positions) < 3 {
		t.Errorf("dependency branch seen at %d distinct positions, want >= 3 (variable gap)", len(positions))
	}
	if sum.MinPos >= sum.MaxPos {
		t.Errorf("min/max positions: %d/%d", sum.MinPos, sum.MaxPos)
	}
}

func TestWindowBoundsLookback(t *testing.T) {
	// A def + dependency branch far outside the window must not count.
	var insts []trace.Inst
	insts = append(insts, alu(0x10, rTarget))
	insts = append(insts, condbr(0xD0, rTarget))
	for i := 0; i < 200; i++ {
		insts = append(insts, alu(0x50, rOther)) // filler redefining nothing relevant
	}
	insts = append(insts, condbr(0xAA, rTarget))
	a := New(50, 0, 0xAA) // window much smaller than the gap
	feed(a, insts)
	if got := a.Summarize(0xAA).DepBranches; got != 0 {
		t.Errorf("window not respected: DepBranches = %d", got)
	}
}

func TestMaxSamplesBoundsWork(t *testing.T) {
	var insts []trace.Inst
	for rep := 0; rep < 50; rep++ {
		insts = append(insts, alu(0x10, rTarget))
		insts = append(insts, condbr(0xAA, rTarget))
	}
	a := New(100, 5, 0xAA)
	feed(a, insts)
	sum := a.Summarize(0xAA)
	if sum.Execs != 50 {
		t.Errorf("Execs = %d", sum.Execs)
	}
	if sum.Analyzed != 5 {
		t.Errorf("Analyzed = %d, want 5", sum.Analyzed)
	}
}

func TestUnknownTargetSummary(t *testing.T) {
	a := New(10, 0, 0xAA)
	sum := a.Summarize(0xBB)
	if sum.Execs != 0 || sum.DepBranches != 0 {
		t.Errorf("unknown target summary: %+v", sum)
	}
	if a.Positions(0xBB) != nil {
		t.Error("unknown target positions should be nil")
	}
}

func TestMultipleTargetsIndependent(t *testing.T) {
	insts := []trace.Inst{
		alu(0x10, rTarget),
		condbr(0xD0, rTarget),
		condbr(0xAA, rTarget), // target 1: dep at 0xD0
		alu(0x14, rOther),
		condbr(0xE0, rOther),
		condbr(0xBB, rOther), // target 2: dep at 0xE0
	}
	a := New(100, 0, 0xAA, 0xBB)
	feed(a, insts)
	p1 := a.Positions(0xAA)
	p2 := a.Positions(0xBB)
	if len(p1) == 0 || p1[0].DepIP != 0xD0 {
		t.Errorf("target 1 positions: %+v", p1)
	}
	foundE0 := false
	for _, p := range p2 {
		if p.DepIP == 0xE0 {
			foundE0 = true
		}
		if p.DepIP == 0xD0 {
			t.Error("target 2 must not inherit target 1's dependency (value was redefined)")
		}
	}
	if !foundE0 {
		t.Errorf("target 2 positions: %+v", p2)
	}
}
