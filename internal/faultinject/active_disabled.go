//go:build !faultinject

package faultinject

// Enabled reports whether this build carries the fault registry.
func Enabled() bool { return false }

// Active reports whether a fault plan is currently armed. Never true in
// this build.
func Active() bool { return false }

// Fail reports an injected failure at p. Always nil in this build; the
// compiler inlines the call away.
func Fail(Point) error { return nil }

// Chaos reports an injected behaviour-preserving stress at p. Always
// false in this build.
func Chaos(Point) bool { return false }

// Activate arms a seeded fault plan. This build has no registry, so it
// always returns ErrDisabled.
func Activate(uint64) error { return ErrDisabled }

// Deactivate disarms any active plan. No-op in this build.
func Deactivate() {}

// ActivateFromEnv arms a plan from the EnvSeed environment variable.
// If the variable is set in this build the caller asked for faults a
// no-op binary cannot deliver, so it returns ErrDisabled rather than
// silently running unfaulted; unset, it returns nil.
func ActivateFromEnv(lookup func(string) (string, bool)) error {
	if _, ok := lookup(EnvSeed); ok {
		return ErrDisabled
	}
	return nil
}
