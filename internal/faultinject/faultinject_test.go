package faultinject_test

import (
	"errors"
	"testing"

	"branchlab/internal/faultinject"
)

// TestErrorUnwrapsToInjected pins the classification contract: every
// injected failure satisfies errors.Is(err, ErrInjected) and exposes
// its site via errors.As.
func TestErrorUnwrapsToInjected(t *testing.T) {
	err := &faultinject.Error{Point: faultinject.CacheRecord, Hit: 3, Seed: 7}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("errors.Is(%v, ErrInjected) = false", err)
	}
	var fe *faultinject.Error
	if !errors.As(error(err), &fe) || fe.Point != faultinject.CacheRecord {
		t.Fatalf("errors.As failed to recover the point from %v", err)
	}
	if err.Error() == "" {
		t.Fatal("Error() returned empty message")
	}
}

// TestPointsCoverDocumentedCatalog keeps Points() in sync with the
// exported constants (and, transitively, the DESIGN.md §9 catalog).
func TestPointsCoverDocumentedCatalog(t *testing.T) {
	want := map[faultinject.Point]bool{
		faultinject.EngineDispatch: true,
		faultinject.CacheRecord:    true,
		faultinject.CacheResume:    true,
		faultinject.CacheEvict:     true,
		faultinject.StoreWrite:     true,
		faultinject.StoreRead:      true,
		faultinject.StoreCorrupt:   true,
	}
	got := faultinject.Points()
	if len(got) != len(want) {
		t.Fatalf("Points() = %v, want %d points", got, len(want))
	}
	for _, p := range got {
		if !want[p] {
			t.Errorf("Points() contains unregistered point %q", p)
		}
	}
}
