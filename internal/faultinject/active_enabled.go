//go:build faultinject

package faultinject

import (
	"fmt"
	"strconv"
	"sync/atomic"
)

// plan is one armed fault schedule. Each registered point carries an
// armed bit, a 1-based trigger count, and an invocation counter; the
// point fires on exactly its trigger-th invocation. All state derives
// from the seed, so two runs with the same seed inject the same fault
// at the same logical site regardless of goroutine interleaving —
// which goroutine *observes* the fault may differ, but the set of
// injected failures cannot.
type plan struct {
	seed   uint64
	points map[Point]*pointState
}

type pointState struct {
	armed   bool
	trigger uint64 // 1-based invocation count that fires
	chaotic bool   // Chaos point: fires on every invocation >= trigger
	count   atomic.Uint64
}

// active holds the armed plan, or nil. Swapped atomically so hot-path
// Fail/Chaos calls are a single load when disarmed.
var active atomic.Pointer[plan]

// Enabled reports whether this build carries the fault registry.
func Enabled() bool { return true }

// Active reports whether a fault plan is currently armed.
func Active() bool { return active.Load() != nil }

// Activate arms a deterministic fault plan derived from seed,
// replacing any previous plan and resetting all counters. Roughly half
// of all seeds arm each point; the trigger hit lands in [1, 32] so
// faults fire early enough for quick runs to reach them.
func Activate(seed uint64) error {
	p := &plan{seed: seed, points: make(map[Point]*pointState)}
	for _, pt := range Points() {
		h := pointHash(seed, pt)
		p.points[pt] = &pointState{
			armed:   (h>>5)%2 == 0,
			trigger: 1 + h%32,
			chaotic: pt == CacheEvict || pt == StoreCorrupt,
		}
	}
	active.Store(p)
	return nil
}

// Deactivate disarms the active plan.
func Deactivate() { active.Store(nil) }

// ActivateFromEnv arms a plan from the EnvSeed environment variable
// (decimal seed). Unset means no plan and nil error.
func ActivateFromEnv(lookup func(string) (string, bool)) error {
	v, ok := lookup(EnvSeed)
	if !ok {
		return nil
	}
	seed, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return fmt.Errorf("faultinject: bad %s=%q: %w", EnvSeed, v, err)
	}
	return Activate(seed)
}

// Fail reports an injected failure at p: non-nil exactly once, on the
// armed trigger-th invocation of the site.
func Fail(pt Point) error {
	pl := active.Load()
	if pl == nil {
		return nil
	}
	st, ok := pl.points[pt]
	if !ok || !st.armed || st.chaotic {
		return nil
	}
	if hit := st.count.Add(1); hit == st.trigger {
		return &Error{Point: pt, Hit: hit, Seed: pl.seed}
	}
	return nil
}

// Chaos reports an injected behaviour-preserving stress at p: true on
// every invocation from the armed trigger onward, so the stressed path
// stays stressed for the rest of the run.
func Chaos(pt Point) bool {
	pl := active.Load()
	if pl == nil {
		return false
	}
	st, ok := pl.points[pt]
	if !ok || !st.armed || !st.chaotic {
		return false
	}
	return st.count.Add(1) >= st.trigger
}
