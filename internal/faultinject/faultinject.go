// Package faultinject is a seeded, deterministic fault-point registry
// for exercising the failure paths the happy-path determinism matrix
// never reaches (DESIGN.md §9).
//
// Production code marks fault sites with two hooks:
//
//   - Fail(point) returns a typed *Error when the active plan injects a
//     failure at this site; the caller propagates it exactly like a real
//     error from the guarded operation.
//   - Chaos(point) reports that the plan injects a behaviour-preserving
//     stress at this site (e.g. evict every cached slice); the caller
//     takes the stressed path, which must stay byte-identical.
//
// In the default build ("!faultinject") both hooks are constant no-ops
// that the compiler inlines away, and Activate refuses to arm anything:
// shipping binaries cannot inject faults. Builds with the "faultinject"
// tag carry the registry; tests and the CI fault sweep activate a plan
// with Activate(seed) or the BRANCHLAB_FAULTSEED environment variable.
//
// A plan is a pure function of its seed: each registered point derives
// an armed bit and a trigger hit-count from seed and point name, and
// fires on exactly that invocation (atomic per-point counters, so
// exactly one goroutine observes the fault even under -race
// parallelism). The invariant the suite enforces is that an injected
// fault or cancellation may fail a run with a typed error, but can
// never produce non-byte-identical artifacts.
package faultinject

import (
	"errors"
	"fmt"
)

// Point names one fault site compiled into the tree. The catalog lives
// in DESIGN.md §9; keep both in sync.
type Point string

const (
	// EngineDispatch fails one work unit as the engine dispatches it
	// (internal/engine.MapErr): the unit reports a typed error instead
	// of running, and the whole Map aborts with it.
	EngineDispatch Point = "engine/dispatch"
	// CacheRecord fails a singleflight leader's recording
	// (tracecache.Cache.RecordCtx): the typed error propagates to every
	// coalesced waiter and the entry is withdrawn.
	CacheRecord Point = "tracecache/record"
	// CacheResume fails a checkpoint resume during an evicted-slice
	// refill (tracecache entry.refill): the refill falls back to the
	// exact skim path, so replays stay byte-identical.
	CacheResume Point = "tracecache/resume"
	// CacheEvict is a chaos point: it evicts every resident slice
	// regardless of the configured cap (tracecache evictLocked),
	// forcing later replays through the re-materialization paths.
	CacheEvict Point = "tracecache/evict"
	// StoreWrite fails a persistent-store slice or header write
	// (tracestore.Store): the write is dropped, the store stays
	// consistent, and the content simply remains re-recordable.
	StoreWrite Point = "tracestore/write"
	// StoreRead fails a persistent-store slice read before the file is
	// opened (tracestore.Store.PinSlice): the miss path re-records the
	// slice byte-identically.
	StoreRead Point = "tracestore/read"
	// StoreCorrupt is a chaos point: it flips one payload byte in a
	// slice file as it lands on disk (never in the in-memory array), so
	// the next read of that file must fail its checksum and fall back
	// to re-recording — the never-wrong-bytes drill.
	StoreCorrupt Point = "tracestore/corrupt"
)

// Points returns every registered fault point.
func Points() []Point {
	return []Point{EngineDispatch, CacheRecord, CacheResume, CacheEvict, StoreWrite, StoreRead, StoreCorrupt}
}

// EnvSeed is the environment variable ActivateFromEnv reads: a decimal
// plan seed. Set only in faultinject-tagged builds (the CLIs refuse it
// otherwise, so a sweep can never silently run unfaulted).
const EnvSeed = "BRANCHLAB_FAULTSEED"

// ErrInjected is the sentinel every injected failure wraps; callers and
// tests classify injected faults with errors.Is(err, ErrInjected).
var ErrInjected = errors.New("faultinject: injected fault")

// ErrDisabled is returned by Activate in builds without the
// "faultinject" tag.
var ErrDisabled = errors.New("faultinject: disabled in this build (rebuild with -tags faultinject)")

// Error is one injected failure, attributed to its site and the
// invocation count that triggered it. It unwraps to ErrInjected.
type Error struct {
	Point Point  // the site that fired
	Hit   uint64 // 1-based invocation count of the site when it fired
	Seed  uint64 // the plan seed, for reproducing the run
}

func (e *Error) Error() string {
	return fmt.Sprintf("faultinject: injected fault at %s (hit %d, seed %d)", e.Point, e.Hit, e.Seed)
}

// Unwrap makes errors.Is(err, ErrInjected) hold for every injection.
func (e *Error) Unwrap() error { return ErrInjected }

// mix is a splitmix64-style finalizer: the per-point trigger schedule
// is a pure function of (seed, point name), independent of execution
// order or goroutine interleaving.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// pointHash folds a point name into the plan seed (FNV-1a then mix).
func pointHash(seed uint64, p Point) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range []byte(p) {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return mix(h ^ mix(seed))
}
