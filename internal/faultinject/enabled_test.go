//go:build faultinject

package faultinject_test

import (
	"errors"
	"sync"
	"testing"

	"branchlab/internal/faultinject"
)

// TestPlanIsDeterministic: the same seed yields the same fired point
// set and hit counts across re-activations.
func TestPlanIsDeterministic(t *testing.T) {
	t.Cleanup(faultinject.Deactivate)
	type firing struct {
		point faultinject.Point
		hit   uint64
	}
	runPlan := func(seed uint64) []firing {
		if err := faultinject.Activate(seed); err != nil {
			t.Fatalf("Activate(%d) = %v", seed, err)
		}
		var fired []firing
		for i := 0; i < 64; i++ {
			for _, p := range faultinject.Points() {
				if err := faultinject.Fail(p); err != nil {
					var fe *faultinject.Error
					if !errors.As(err, &fe) {
						t.Fatalf("Fail(%s) returned untyped %v", p, err)
					}
					fired = append(fired, firing{fe.Point, fe.Hit})
				}
			}
		}
		return fired
	}
	for seed := uint64(0); seed < 16; seed++ {
		a, b := runPlan(seed), runPlan(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: %d firings vs %d on replay", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d firing %d: %+v vs %+v", seed, i, a[i], b[i])
			}
		}
	}
}

// TestFailFiresExactlyOnce: a Fail point fires on exactly one
// invocation even when hammered concurrently.
func TestFailFiresExactlyOnce(t *testing.T) {
	t.Cleanup(faultinject.Deactivate)
	// Find a seed that arms EngineDispatch.
	var armedSeed uint64
	found := false
	for s := uint64(0); s < 256 && !found; s++ {
		if err := faultinject.Activate(s); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if faultinject.Fail(faultinject.EngineDispatch) != nil {
				armedSeed, found = s, true
				break
			}
		}
	}
	if !found {
		t.Fatal("no seed in [0,256) arms engine/dispatch — trigger derivation broken")
	}
	if err := faultinject.Activate(armedSeed); err != nil {
		t.Fatal(err)
	}
	var fired sync.Map
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				if err := faultinject.Fail(faultinject.EngineDispatch); err != nil {
					if _, dup := fired.LoadOrStore("fired", err); dup {
						t.Error("engine/dispatch fired more than once")
					}
				}
			}
		}()
	}
	wg.Wait()
	if _, ok := fired.Load("fired"); !ok {
		t.Fatal("armed point never fired across 512 invocations")
	}
}

// TestChaosStaysOnAfterTrigger: a chaos point reports true for every
// invocation at or past its trigger, never before.
func TestChaosStaysOnAfterTrigger(t *testing.T) {
	t.Cleanup(faultinject.Deactivate)
	for s := uint64(0); s < 256; s++ {
		if err := faultinject.Activate(s); err != nil {
			t.Fatal(err)
		}
		on := false
		for i := 0; i < 64; i++ {
			got := faultinject.Chaos(faultinject.CacheEvict)
			if on && !got {
				t.Fatalf("seed %d: chaos turned off after firing (hit %d)", s, i+1)
			}
			on = on || got
		}
		if on {
			return // found at least one arming seed; contract verified
		}
	}
	t.Fatal("no seed in [0,256) arms tracecache/evict")
}

// TestChaosPointNeverFails and vice versa: the two hook classes are
// disjoint per point.
func TestHookClassesAreDisjoint(t *testing.T) {
	t.Cleanup(faultinject.Deactivate)
	for s := uint64(0); s < 64; s++ {
		if err := faultinject.Activate(s); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 64; i++ {
			if err := faultinject.Fail(faultinject.CacheEvict); err != nil {
				t.Fatalf("seed %d: Fail fired on chaos point CacheEvict: %v", s, err)
			}
			if faultinject.Chaos(faultinject.CacheRecord) {
				t.Fatalf("seed %d: Chaos fired on fail point CacheRecord", s)
			}
		}
	}
}

// TestActivateFromEnv parses the documented env contract.
func TestActivateFromEnv(t *testing.T) {
	t.Cleanup(faultinject.Deactivate)
	lookup := func(v string, ok bool) func(string) (string, bool) {
		return func(k string) (string, bool) {
			if k == faultinject.EnvSeed {
				return v, ok
			}
			return "", false
		}
	}
	if err := faultinject.ActivateFromEnv(lookup("", false)); err != nil || faultinject.Active() {
		t.Fatalf("unset env: err=%v active=%v", err, faultinject.Active())
	}
	if err := faultinject.ActivateFromEnv(lookup("17", true)); err != nil || !faultinject.Active() {
		t.Fatalf("seed 17: err=%v active=%v", err, faultinject.Active())
	}
	faultinject.Deactivate()
	if err := faultinject.ActivateFromEnv(lookup("not-a-number", true)); err == nil {
		t.Fatal("bad seed accepted")
	}
}
