//go:build !faultinject

package faultinject_test

import (
	"errors"
	"testing"

	"branchlab/internal/faultinject"
)

// TestDisabledBuildIsInert verifies the default build cannot inject:
// hooks are constant no-ops and arming is refused.
func TestDisabledBuildIsInert(t *testing.T) {
	if faultinject.Enabled() || faultinject.Active() {
		t.Fatal("disabled build reports itself enabled/active")
	}
	if err := faultinject.Activate(1); !errors.Is(err, faultinject.ErrDisabled) {
		t.Fatalf("Activate = %v, want ErrDisabled", err)
	}
	for _, p := range faultinject.Points() {
		if err := faultinject.Fail(p); err != nil {
			t.Fatalf("Fail(%s) = %v in disabled build", p, err)
		}
		if faultinject.Chaos(p) {
			t.Fatalf("Chaos(%s) = true in disabled build", p)
		}
	}
	faultinject.Deactivate() // must be a harmless no-op
}

// TestDisabledRefusesEnvSeed: a disabled binary asked to fault via the
// environment must fail loudly instead of silently running unfaulted.
func TestDisabledRefusesEnvSeed(t *testing.T) {
	lookup := func(k string) (string, bool) {
		if k == faultinject.EnvSeed {
			return "42", true
		}
		return "", false
	}
	if err := faultinject.ActivateFromEnv(lookup); !errors.Is(err, faultinject.ErrDisabled) {
		t.Fatalf("ActivateFromEnv with seed set = %v, want ErrDisabled", err)
	}
	unset := func(string) (string, bool) { return "", false }
	if err := faultinject.ActivateFromEnv(unset); err != nil {
		t.Fatalf("ActivateFromEnv with no seed = %v, want nil", err)
	}
}
