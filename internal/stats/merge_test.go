package stats

import (
	"reflect"
	"testing"
)

// Merging a never-overflowed right-hand reservoir replays its full
// observation sequence, so the merged state is bit-identical to one
// reservoir seeing the whole stream — even when the left side
// overflows during the fold.
func TestReservoirMergeExactWhenRightUnderCap(t *testing.T) {
	const k = 16
	stream := make([]uint64, 40)
	for i := range stream {
		stream[i] = uint64(i * 7)
	}
	for _, cut := range []int{0, 5, 24, 30} {
		right := stream[cut:]
		if len(right) > k {
			continue // right side would overflow; not the exact regime
		}
		want := NewReservoir(k, 99)
		for _, v := range stream {
			want.Add(v)
		}
		a := NewReservoir(k, 99)
		for _, v := range stream[:cut] {
			a.Add(v)
		}
		b := NewReservoir(k, 12345) // right seed is irrelevant under cap
		for _, v := range right {
			b.Add(v)
		}
		a.Merge(b)
		if a.N != want.N || !reflect.DeepEqual(a.Sample, want.Sample) {
			t.Fatalf("cut %d: merged reservoir differs: %+v != %+v", cut, a, want)
		}
	}
}

// An overflowed right side degrades to a deterministic subsample with
// the full observation count preserved.
func TestReservoirMergeOverflowedRight(t *testing.T) {
	const k = 8
	mk := func() (*Reservoir, *Reservoir) {
		a := NewReservoir(k, 1)
		for v := uint64(0); v < 10; v++ {
			a.Add(v)
		}
		b := NewReservoir(k, 2)
		for v := uint64(100); v < 130; v++ {
			b.Add(v)
		}
		return a, b
	}
	a1, b1 := mk()
	a1.Merge(b1)
	if a1.N != 40 {
		t.Fatalf("merged N = %d, want 40", a1.N)
	}
	if len(a1.Sample) != k {
		t.Fatalf("merged sample size %d, want %d", len(a1.Sample), k)
	}
	a2, b2 := mk()
	a2.Merge(b2)
	if !reflect.DeepEqual(a1.Sample, a2.Sample) {
		t.Fatal("overflowed merge is not deterministic")
	}
}
