// Package stats provides the small statistics toolkit used by the
// measurement framework: scalar aggregates, quantiles, explicit-bin
// histograms, reservoir sampling and binned scatter summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// GeoMean returns the geometric mean of xs; all values must be positive.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation, without modifying xs.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MedianUint64 returns the median of xs (as float64 to allow midpoints).
func MedianUint64(xs []uint64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]uint64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	n := len(sorted)
	if n%2 == 1 {
		return float64(sorted[n/2])
	}
	return (float64(sorted[n/2-1]) + float64(sorted[n/2])) / 2
}

// Histogram counts values into explicit, contiguous bins. Bin i covers
// [Edges[i], Edges[i+1]); the final bin is closed on the right.
type Histogram struct {
	Edges  []float64 // len = len(Counts)+1, strictly increasing
	Counts []uint64
	Total  uint64
	Under  uint64 // values below Edges[0]
	Over   uint64 // values above the last edge
}

// NewHistogram builds a histogram over the given edges. It panics if fewer
// than two edges are supplied or if they are not strictly increasing.
func NewHistogram(edges ...float64) *Histogram {
	if len(edges) < 2 {
		panic("stats: histogram needs at least two edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("stats: histogram edges must be strictly increasing")
		}
	}
	return &Histogram{Edges: edges, Counts: make([]uint64, len(edges)-1)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) { h.AddN(x, 1) }

// AddN records n identical observations.
func (h *Histogram) AddN(x float64, n uint64) {
	h.Total += n
	if x < h.Edges[0] {
		h.Under += n
		return
	}
	last := len(h.Edges) - 1
	if x > h.Edges[last] {
		h.Over += n
		return
	}
	if x == h.Edges[last] {
		h.Counts[last-1] += n
		return
	}
	idx := sort.SearchFloat64s(h.Edges, x)
	// SearchFloat64s returns the first edge >= x; the bin is the one to its
	// left unless x is exactly on an edge.
	if idx == len(h.Edges) || h.Edges[idx] != x {
		idx--
	}
	h.Counts[idx] += n
}

// Fraction returns each bin count divided by the total (including
// under/overflow) as parallel slices of labels and values.
func (h *Histogram) Fraction() []float64 {
	out := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return out
	}
	for i, c := range h.Counts {
		out[i] = float64(c) / float64(h.Total)
	}
	return out
}

// BinLabel renders bin i's range compactly (e.g. "100-1K").
func (h *Histogram) BinLabel(i int) string {
	return fmt.Sprintf("%s-%s", compact(h.Edges[i]), compact(h.Edges[i+1]))
}

func compact(v float64) string {
	abs := math.Abs(v)
	switch {
	case abs >= 1e6 && math.Mod(v, 1e6) == 0:
		return fmt.Sprintf("%gM", v/1e6)
	case abs >= 1e3 && math.Mod(v, 1e3) == 0:
		return fmt.Sprintf("%gK", v/1e3)
	case abs < 1 && abs > 0:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%g", v)
	}
}

// Reservoir keeps a uniform random sample of up to K values from a stream
// of unknown length (algorithm R). It is used where the paper computes
// per-branch medians over interval streams that may be arbitrarily long.
type Reservoir struct {
	K      int
	Sample []uint64
	N      uint64 // observations so far
	rng    uint64 // splitmix64 state; deterministic per tracker
}

// NewReservoir returns a reservoir of capacity k seeded deterministically.
func NewReservoir(k int, seed uint64) *Reservoir {
	return &Reservoir{K: k, Sample: make([]uint64, 0, k), rng: seed*2 + 1}
}

func (r *Reservoir) nextRand() uint64 {
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Add records one observation.
func (r *Reservoir) Add(v uint64) {
	r.N++
	if len(r.Sample) < r.K {
		r.Sample = append(r.Sample, v)
		return
	}
	j := r.nextRand() % r.N
	if j < uint64(r.K) {
		r.Sample[j] = v
	}
}

// Median returns the median of the sampled values (exact if fewer than K
// observations were made).
func (r *Reservoir) Median() float64 { return MedianUint64(r.Sample) }

// Merge folds o's observations into r, continuing r's own sampling
// stream. When o never overflowed (o.N <= o.K), o.Sample is its full
// observation sequence in arrival order, so the merge replays exactly
// the Adds a single sequential reservoir would have seen — the final
// state is bit-identical to never having split the stream, even if r
// overflows during the fold. When o did overflow, the fold replays o's
// surviving sample and accounts the dropped observations in N; the
// result is a deterministic two-stage subsample rather than an exact
// continuation. Sharded trackers size their shards so the per-shard
// reservoirs stay under capacity and the exact path applies.
func (r *Reservoir) Merge(o *Reservoir) {
	dropped := o.N - uint64(len(o.Sample))
	for _, v := range o.Sample {
		r.Add(v)
	}
	r.N += dropped
}

// BinnedStdDev groups (x, y) points into fixed-width x bins and reports the
// per-bin standard deviation of y, reproducing the methodology of Fig 4b.
type BinnedStdDev struct {
	Width float64
	bins  map[int][]float64
}

// NewBinnedStdDev returns an accumulator with the given bin width.
func NewBinnedStdDev(width float64) *BinnedStdDev {
	return &BinnedStdDev{Width: width, bins: make(map[int][]float64)}
}

// Add records one point.
func (b *BinnedStdDev) Add(x, y float64) {
	i := int(x / b.Width)
	b.bins[i] = append(b.bins[i], y)
}

// Bin holds one populated bin of a BinnedStdDev.
type Bin struct {
	Lo, Hi float64
	N      int
	Mean   float64
	StdDev float64
}

// Bins returns populated bins in increasing x order.
func (b *BinnedStdDev) Bins() []Bin {
	idxs := make([]int, 0, len(b.bins))
	for i := range b.bins {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]Bin, 0, len(idxs))
	for _, i := range idxs {
		ys := b.bins[i]
		out = append(out, Bin{
			Lo:     float64(i) * b.Width,
			Hi:     float64(i+1) * b.Width,
			N:      len(ys),
			Mean:   Mean(ys),
			StdDev: StdDev(ys),
		})
	}
	return out
}
