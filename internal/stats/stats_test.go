package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("StdDev of singleton should be 0")
	}
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !approx(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !approx(got, 10, 1e-9) {
		t.Errorf("GeoMean = %v, want 10", got)
	}
	if GeoMean([]float64{1, -1}) != 0 {
		t.Error("GeoMean with non-positive input should be 0")
	}
	if GeoMean(nil) != 0 {
		t.Error("GeoMean(nil) != 0")
	}
}

func TestMedianAndQuantile(t *testing.T) {
	xs := []float64{9, 1, 7, 3, 5}
	if got := Median(xs); got != 5 {
		t.Errorf("Median = %v", got)
	}
	if xs[0] != 9 {
		t.Error("Median must not modify input")
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("Q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 9 {
		t.Errorf("Q1 = %v", got)
	}
	if got := Quantile([]float64{1, 2}, 0.5); got != 1.5 {
		t.Errorf("interpolated median = %v", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) != 0")
	}
}

func TestMedianUint64(t *testing.T) {
	if got := MedianUint64([]uint64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := MedianUint64([]uint64{1, 2, 3, 10}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
	if MedianUint64(nil) != 0 {
		t.Error("empty median != 0")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(0, 10, 100, 1000)
	h.Add(-5)   // under
	h.Add(0)    // bin 0
	h.Add(9.99) // bin 0
	h.Add(10)   // bin 1 (left-closed)
	h.Add(500)  // bin 2
	h.Add(1000) // final bin closed on the right
	h.Add(1001) // over
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("under/over = %d/%d", h.Under, h.Over)
	}
	want := []uint64{2, 1, 2}
	for i, w := range want {
		if h.Counts[i] != w {
			t.Errorf("bin %d = %d, want %d", i, h.Counts[i], w)
		}
	}
	if h.Total != 7 {
		t.Errorf("Total = %d", h.Total)
	}
	fr := h.Fraction()
	if !approx(fr[0], 2.0/7.0, 1e-12) {
		t.Errorf("Fraction[0] = %v", fr[0])
	}
}

func TestHistogramEdgeMembershipProperty(t *testing.T) {
	h := NewHistogram(0, 1, 2, 4, 8, 16)
	if err := quick.Check(func(raw uint16) bool {
		x := float64(raw%200) / 10 // 0..19.9
		before := h.Total
		h.Add(x)
		if h.Total != before+1 {
			return false
		}
		// Every observation lands in exactly one counter.
		var sum uint64
		for _, c := range h.Counts {
			sum += c
		}
		return sum+h.Under+h.Over == h.Total
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramPanics(t *testing.T) {
	for _, edges := range [][]float64{{1}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", edges)
				}
			}()
			NewHistogram(edges...)
		}()
	}
}

func TestHistogramBinLabel(t *testing.T) {
	h := NewHistogram(0, 100, 1000, 1000000, 2000000)
	if got := h.BinLabel(1); got != "100-1K" {
		t.Errorf("BinLabel(1) = %q", got)
	}
	if got := h.BinLabel(3); got != "1M-2M" {
		t.Errorf("BinLabel(3) = %q", got)
	}
}

func TestReservoirExactWhenSmall(t *testing.T) {
	r := NewReservoir(100, 1)
	for i := uint64(1); i <= 9; i++ {
		r.Add(i)
	}
	if got := r.Median(); got != 5 {
		t.Errorf("median = %v, want 5", got)
	}
	if r.N != 9 {
		t.Errorf("N = %d", r.N)
	}
}

func TestReservoirSamplesUniformly(t *testing.T) {
	// Feed 10k values; the sampled median should approximate the true one.
	r := NewReservoir(512, 42)
	for i := uint64(0); i < 10000; i++ {
		r.Add(i)
	}
	med := r.Median()
	if med < 3500 || med > 6500 {
		t.Errorf("sampled median = %v, want ~5000", med)
	}
	if len(r.Sample) != 512 {
		t.Errorf("sample size = %d", len(r.Sample))
	}
}

func TestReservoirDeterministic(t *testing.T) {
	a, b := NewReservoir(16, 7), NewReservoir(16, 7)
	for i := uint64(0); i < 1000; i++ {
		a.Add(i)
		b.Add(i)
	}
	for i := range a.Sample {
		if a.Sample[i] != b.Sample[i] {
			t.Fatal("reservoirs with equal seeds diverged")
		}
	}
}

func TestBinnedStdDev(t *testing.T) {
	b := NewBinnedStdDev(100)
	// Bin [0,100): high spread; bin [100,200): no spread.
	for _, y := range []float64{0, 1, 0, 1} {
		b.Add(50, y)
	}
	for i := 0; i < 4; i++ {
		b.Add(150, 0.9)
	}
	bins := b.Bins()
	if len(bins) != 2 {
		t.Fatalf("bins = %d, want 2", len(bins))
	}
	if bins[0].Lo != 0 || bins[0].Hi != 100 || bins[1].Lo != 100 {
		t.Errorf("bin ranges wrong: %+v", bins)
	}
	if !approx(bins[0].StdDev, 0.5, 1e-12) {
		t.Errorf("bin0 stddev = %v, want 0.5", bins[0].StdDev)
	}
	if bins[1].StdDev != 0 {
		t.Errorf("bin1 stddev = %v, want 0", bins[1].StdDev)
	}
	if bins[0].N != 4 || bins[1].N != 4 {
		t.Errorf("bin counts: %+v", bins)
	}
}
