package xrand

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("step %d: %x != %x", i, av, bv)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Pinned values for seed 1234567; these guard against accidental
	// changes to the constants, which would silently change every
	// synthetic workload in the repository.
	s := NewSplitMix64(1234567)
	want := []uint64{
		0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("value %d: got %#x want %#x", i, got, w)
		}
	}
}

func TestMix64NotIdentity(t *testing.T) {
	seen := map[uint64]bool{}
	for i := uint64(0); i < 1000; i++ {
		h := Mix64(i)
		if h == i {
			t.Errorf("Mix64(%d) == input", i)
		}
		if seen[h] {
			t.Errorf("Mix64 collision at %d", i)
		}
		seen[h] = true
	}
}

func TestRandDeterministic(t *testing.T) {
	a, b := New(7), New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("diverged at step %d", i)
		}
	}
	c := New(8)
	same := 0
	a = New(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(3)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean of uniform = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	if err := quick.Check(func(n16 uint16) bool {
		n := int(n16%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniform(t *testing.T) {
	r := New(11)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	for i, c := range counts {
		got := float64(c) / trials
		if math.Abs(got-0.1) > 0.01 {
			t.Errorf("bucket %d frequency %v, want ~0.1", i, got)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(21)
	const trials = 100000
	hits := 0
	for i := 0; i < trials; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	p := float64(hits) / trials
	if math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency %v", p)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestZipfSkew(t *testing.T) {
	r := New(123)
	z, err := NewZipf(r, 100, 1.2)
	if err != nil {
		t.Fatalf("NewZipf: %v", err)
	}
	counts := make([]int, 100)
	const trials = 100000
	for i := 0; i < trials; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[90] {
		t.Errorf("Zipf not monotonically skewed: c0=%d c10=%d c90=%d",
			counts[0], counts[10], counts[90])
	}
	if counts[0] < trials/10 {
		t.Errorf("rank 0 got %d of %d draws, want a heavy head", counts[0], trials)
	}
}

func TestZipfInvalidArgs(t *testing.T) {
	cases := []struct {
		name string
		n    int
		s    float64
		want error
	}{
		{"zero ranks", 0, 1, ErrNonPositiveRanks},
		{"negative ranks", -5, 1, ErrNonPositiveRanks},
		{"zero exponent", 10, 0, ErrNonPositiveExponent},
		{"negative exponent", 10, -1.2, ErrNonPositiveExponent},
	}
	for _, tc := range cases {
		z, err := NewZipf(New(1), tc.n, tc.s)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: NewZipf(%d, %v) err = %v, want %v", tc.name, tc.n, tc.s, err, tc.want)
		}
		if z != nil {
			t.Errorf("%s: NewZipf returned non-nil sampler alongside error", tc.name)
		}
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ x, y, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.x, c.y)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%#x,%#x) = (%#x,%#x), want (%#x,%#x)",
				c.x, c.y, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}
