// Package xrand provides small, fast, deterministic pseudo-random number
// generators for workload synthesis and simulation.
//
// The generators here are deliberately independent of math/rand so that
// traces are bit-for-bit reproducible across Go releases: a workload is a
// pure function of its seed.
package xrand

import (
	"errors"
	"math"
)

// ErrZeroState is returned by SetState for the all-zero state, which a
// xoshiro generator cannot reach (and cannot leave: it would emit zeros
// forever). Checkpoint consumers use it to reject a zero-value
// Checkpoint that never went through a real capture.
var ErrZeroState = errors.New("xrand: all-zero generator state")

// ErrNonPositiveRanks is returned by NewZipf when the rank count is not
// positive: a Zipf distribution needs at least one rank to sample.
var ErrNonPositiveRanks = errors.New("xrand: Zipf rank count must be positive")

// ErrNonPositiveExponent is returned by NewZipf when the exponent is not
// positive: s <= 0 inverts or flattens the rank-frequency law and never
// describes the hot-code skew the samplers model.
var ErrNonPositiveExponent = errors.New("xrand: Zipf exponent must be positive")

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It is
// used both as a standalone generator and to seed Xoshiro256.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 hashes x with the splitmix64 finalizer. It is a convenient way to
// derive independent seeds and to hash instruction pointers.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Rand is a xoshiro256** generator: fast, high quality, 256-bit state.
type Rand struct {
	s [4]uint64
}

// New returns a Rand seeded from seed via splitmix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro must not be seeded with the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint32 returns a uniformly distributed 32-bit value.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// State returns the generator's 256-bit internal state. Together with
// SetState it lets deterministic replays checkpoint and restore a
// generator exactly: program.Checkpoint captures it at payload safe
// points, and the trace cache's evicted-slice refill restores it to
// resume mid-trace (see DESIGN.md §6).
func (r *Rand) State() [4]uint64 { return r.s }

// SetState restores a state captured with State. It returns
// ErrZeroState — leaving the generator unchanged — for the all-zero
// state, which xoshiro cannot reach: a zero value here means the
// caller's checkpoint was never captured, and a replay worker must be
// able to fall back to the skim path rather than die mid-run.
func (r *Rand) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return ErrZeroState
	}
	r.s = s
	return nil
}

// jumpPoly is the xoshiro256 jump polynomial of Blackman and Vigna: a
// Jump advances the stream by exactly 2^128 steps.
var jumpPoly = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}

// Jump advances the generator 2^128 steps, the canonical way to derive
// non-overlapping per-slice substreams from one seed: New(seed) jumped
// k times yields slice k's stream, and no two slices' sequences can
// collide for any realistic draw count. No production code path draws
// from jumped substreams yet — today's sharded recording replays the
// payload prefix instead (DESIGN.md §6); Jump is the substream
// primitive for the future slice-local payload contract.
func (r *Rand) Jump() {
	var s [4]uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s[0] ^= r.s[0]
				s[1] ^= r.s[1]
				s[2] ^= r.s[2]
				s[3] ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s = s
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		//lint:ignore errcontract Intn mirrors the math/rand API contract, which panics on non-positive n; callers pass literal or validated bounds
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection-free approximation is fine here:
	// the bias for n « 2^64 is far below anything a simulation can observe.
	hi, _ := mul64(r.Uint64(), uint64(n))
	return int(hi)
}

// Int63 returns a non-negative 63-bit value.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// NormFloat64 returns a normally distributed value (mean 0, stddev 1) using
// the polar Box-Muller transform.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Zipf samples integers in [0, n) with a Zipf-like rank-frequency
// distribution of exponent s, using inverse-CDF over precomputed weights.
type Zipf struct {
	cum []float64
	r   *Rand
}

// NewZipf builds a Zipf sampler over n ranks with exponent s (s > 0; larger
// s concentrates mass on low ranks). Invalid arguments return a typed
// error (ErrNonPositiveRanks, ErrNonPositiveExponent) rather than
// panicking, so callers deriving n from workload parameters can surface
// a configuration mistake instead of dying mid-synthesis.
func NewZipf(r *Rand, n int, s float64) (*Zipf, error) {
	if n <= 0 {
		return nil, ErrNonPositiveRanks
	}
	if s <= 0 {
		return nil, ErrNonPositiveExponent
	}
	cum := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		total += 1 / math.Pow(float64(i+1), s)
		cum[i] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Zipf{cum: cum, r: r}, nil
}

// Next returns the next sampled rank in [0, n).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	// Binary search for the first cumulative weight >= u.
	lo, hi := 0, len(z.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}
