package xrand

import (
	"errors"
	"testing"
)

func TestStateRoundTrip(t *testing.T) {
	r := New(7)
	for i := 0; i < 10; i++ {
		r.Uint64()
	}
	st := r.State()
	want := make([]uint64, 8)
	for i := range want {
		want[i] = r.Uint64()
	}
	if err := r.SetState(st); err != nil {
		t.Fatalf("SetState: %v", err)
	}
	for i, w := range want {
		if got := r.Uint64(); got != w {
			t.Fatalf("draw %d after SetState: %#x, want %#x", i, got, w)
		}
	}
}

func TestSetStateRejectsZero(t *testing.T) {
	r := New(1)
	before := r.State()
	err := r.SetState([4]uint64{})
	if !errors.Is(err, ErrZeroState) {
		t.Fatalf("SetState(zero) = %v, want ErrZeroState", err)
	}
	if r.State() != before {
		t.Error("failed SetState modified the generator")
	}
	// The generator must remain usable after the rejected restore.
	r.Uint64()
}

func TestJumpDeterministicAndDisjoint(t *testing.T) {
	// Jump is deterministic: two generators jumped from the same seed
	// agree exactly.
	a, b := New(11), New(11)
	a.Jump()
	b.Jump()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("jumped generators diverge")
		}
	}
	// A jumped stream does not collide with the base stream's prefix:
	// the jump advances by 2^128 steps, so the next draws must differ
	// from the original sequence.
	base := New(11)
	jumped := New(11)
	jumped.Jump()
	same := 0
	for i := 0; i < 64; i++ {
		if base.Uint64() == jumped.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("jumped stream repeats the base stream (%d/64 draws equal)", same)
	}
}

func TestJumpedStreamsIndependentPerSlice(t *testing.T) {
	// The per-slice reseeding pattern: slice k draws from New(seed)
	// jumped k times. Streams must be deterministic per slice index and
	// differ across slice indices.
	draw := func(jumps int) []uint64 {
		r := New(99)
		for j := 0; j < jumps; j++ {
			r.Jump()
		}
		out := make([]uint64, 16)
		for i := range out {
			out[i] = r.Uint64()
		}
		return out
	}
	s1a, s1b, s2 := draw(1), draw(1), draw(2)
	for i := range s1a {
		if s1a[i] != s1b[i] {
			t.Fatal("slice stream not reproducible")
		}
	}
	diff := false
	for i := range s1a {
		if s1a[i] != s2[i] {
			diff = true
		}
	}
	if !diff {
		t.Fatal("distinct slice indices produced identical streams")
	}
}
