package program

import (
	"errors"
	"reflect"
	"testing"

	"branchlab/internal/engine"
	"branchlab/internal/xrand"
)

// ckptState is the private state of ckptPayload: a random walk, a
// round counter and a small ring, exercising every kind of state a
// real generator carries (RNG-coupled values, counters, arrays).
type ckptState struct {
	x      uint64
	rounds uint64
	ring   [4]uint64
}

func (c *ckptState) CheckpointSave() []uint64 {
	st := make([]uint64, 0, 2+len(c.ring))
	st = append(st, c.x, c.rounds)
	return append(st, c.ring[:]...)
}

func (c *ckptState) CheckpointRestore(st []uint64) bool {
	if len(st) != 2+len(c.ring) {
		return false
	}
	c.x, c.rounds = st[0], st[1]
	copy(c.ring[:], st[2:])
	return true
}

// ckptPayload is a checkpointable payload covering branches, calls,
// filler and state-dependent control flow.
func ckptPayload(e *Emitter) {
	st := &ckptState{x: 1}
	e.Checkpointable(st)
	for e.Running() {
		e.Checkpoint()
		st.x += uint64(e.Rand().Intn(3))
		st.ring[st.rounds%4] = st.x
		e.Compute(1 + int(st.x%7))
		e.Cond(int(st.x%5), e.Rand().Bool(0.5))
		if st.rounds%11 == 3 {
			e.Call(1)
			e.Compute(2)
			e.Cond(9, st.ring[0]&1 == 1)
			e.Ret()
		}
		st.rounds++
	}
}

// Resuming from every captured checkpoint must reproduce the exact
// bytes of a fresh recording for windows anywhere at or after the
// capture point — the refill contract.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	const budget = 50_000
	want := Record(42, budget, ckptPayload)
	for _, every := range []uint64{1000, 7777, 20_000} {
		arrs, cks := RecordSlices(42, budget, ckptPayload, 5000, nil, 1, every)
		assertSameBuffer(t, joinSlices(arrs), want, "ckptEvery="+itoa(int(every)))
		if len(cks) == 0 {
			t.Fatalf("every=%d: no checkpoints captured", every)
		}
		for i, ck := range cks {
			if ck.At < every || (i > 0 && ck.At <= cks[i-1].At) {
				t.Fatalf("every=%d: checkpoint %d at %d out of order or trivial", every, i, ck.At)
			}
			for _, span := range []uint64{1, 512, 9999} {
				lo := ck.At
				hi := lo + span
				if hi > budget {
					hi = budget
				}
				got, err := RecordRangeFrom(42, budget, ckptPayload, &cks[i], lo, hi)
				if err != nil {
					t.Fatalf("every=%d ck@%d span=%d: %v", every, ck.At, span, err)
				}
				for j, inst := range got {
					if inst != want.At(int(lo)+j) {
						t.Fatalf("every=%d ck@%d: resumed inst %d differs", every, ck.At, j)
					}
				}
			}
		}
		// Resume to a window well past the checkpoint (generation crosses
		// other checkpoints' positions on the way).
		ck := cks[0]
		got, err := RecordRangeFrom(42, budget, ckptPayload, &ck, budget-500, budget)
		if err != nil {
			t.Fatal(err)
		}
		for j, inst := range got {
			if inst != want.At(int(budget-500)+j) {
				t.Fatalf("long resume: inst %d differs", j)
			}
		}
	}
}

// The capture rule is a pure function of the instruction index, so the
// checkpoint list must be identical at any shard count.
func TestCheckpointCaptureShardInvariant(t *testing.T) {
	const budget = 40_000
	_, want := RecordSlices(7, budget, ckptPayload, 4000, nil, 1, 3000)
	if len(want) == 0 {
		t.Fatal("sequential capture produced no checkpoints")
	}
	pool := engine.New(4)
	for _, shards := range []int{2, 3, 7} {
		_, got := RecordSlices(7, budget, ckptPayload, 4000, pool, shards, 3000)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("shards=%d: checkpoint list differs from sequential (%d vs %d checkpoints)",
				shards, len(got), len(want))
		}
	}
}

// RecordShardedFrom with checkpoints must assemble the identical
// buffer; workers resume instead of skimming.
func TestRecordShardedFromByteIdentical(t *testing.T) {
	const budget = 50_000
	want := Record(11, budget, ckptPayload)
	_, cks := RecordSlices(11, budget, ckptPayload, 5000, nil, 1, 5000)
	if len(cks) == 0 {
		t.Fatal("no checkpoints captured")
	}
	pool := engine.New(4)
	for _, shards := range []int{2, 3, 8} {
		got := RecordShardedFrom(11, budget, ckptPayload, pool, shards, cks)
		assertSameBuffer(t, got, want, "from-ckpt/shards="+itoa(shards))
	}
	// An empty list degrades to the skim path, still byte-identical.
	assertSameBuffer(t, RecordShardedFrom(11, budget, ckptPayload, pool, 3, nil), want, "from-nil")
}

// Payloads that never register are never captured: the fallback
// consumers see an empty list and skim.
func TestNonCheckpointablePayloadCapturesNothing(t *testing.T) {
	arrs, cks := RecordSlices(5, 20_000, countingPayload, 2000, nil, 1, 1000)
	if len(cks) != 0 {
		t.Fatalf("non-checkpointable payload captured %d checkpoints", len(cks))
	}
	assertSameBuffer(t, joinSlices(arrs), Record(5, 20_000, countingPayload), "fallback")
}

// Bad checkpoints must fail with typed errors — never panic a replay
// worker, never return wrong bytes.
func TestResumeRejectsBadCheckpoints(t *testing.T) {
	const budget = 20_000
	_, cks := RecordSlices(3, budget, ckptPayload, 2000, nil, 1, 2000)
	if len(cks) == 0 {
		t.Fatal("no checkpoints captured")
	}
	good := cks[0]

	// Zero-value checkpoint: rejected via the RNG's zero-state check.
	if _, err := RecordRangeFrom(3, budget, ckptPayload, &Checkpoint{}, 100, 200); !errors.Is(err, xrand.ErrZeroState) || !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("zero checkpoint: err = %v, want ErrBadCheckpoint wrapping ErrZeroState", err)
	}
	// Capture point past the requested range.
	if _, err := RecordRangeFrom(3, budget, ckptPayload, &good, good.At-1, good.At+100); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("ck.At > lo: err = %v, want ErrBadCheckpoint", err)
	}
	// Payload state the payload cannot accept.
	bad := good
	bad.Payload = []uint64{1, 2}
	if _, err := RecordRangeFrom(3, budget, ckptPayload, &bad, bad.At, bad.At+100); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("short state: err = %v, want ErrBadCheckpoint", err)
	}
	// A non-checkpointable payload handed a checkpoint must error, not
	// silently emit from mismatched state.
	if _, err := RecordRangeFrom(3, budget, countingPayload, &good, good.At, good.At+100); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("non-checkpointable resume: err = %v, want ErrBadCheckpoint", err)
	}
}

func TestNearestCheckpoint(t *testing.T) {
	cks := []Checkpoint{{At: 10}, {At: 30}, {At: 70}}
	for _, tc := range []struct {
		lo   uint64
		want int // index into cks, -1 for nil
	}{
		{0, -1}, {9, -1}, {10, 0}, {29, 0}, {30, 1}, {69, 1}, {70, 2}, {1000, 2},
	} {
		got := NearestCheckpoint(cks, tc.lo)
		if tc.want < 0 {
			if got != nil {
				t.Fatalf("lo=%d: got checkpoint at %d, want none", tc.lo, got.At)
			}
			continue
		}
		if got == nil || got.At != cks[tc.want].At {
			t.Fatalf("lo=%d: got %v, want checkpoint at %d", tc.lo, got, cks[tc.want].At)
		}
	}
	if NearestCheckpoint(nil, 100) != nil {
		t.Fatal("nil list returned a checkpoint")
	}
}
