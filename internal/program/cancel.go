// Cancellation: the recording half of the failure contract
// (DESIGN.md §9).
//
// A context threaded into a recording entry point (RunCtx, RecordCtx,
// RecordSlicesCtx, RecordShardedFromCtx) bounds the generation. The
// emitter checks it only at points where stopping is provably safe —
// payload checkpoint safe points (Emitter.Checkpoint), slice-window
// retirement, and batch flushes — and stopping means unwinding the
// payload and discarding everything materialized so far. A cancelled
// recording therefore returns (nil, err): it never returns a
// truncated or otherwise wrong byte sequence. The returned error
// matches both ErrCanceled and the context's own cause under
// errors.Is, so engine.IsCancel classifies it as retryable.
package program

import (
	"context"
	"errors"
	"fmt"
)

// ErrCanceled is the sentinel every cancelled-recording error matches
// (errors.Is). The concrete error also unwraps to the context cause
// (context.Canceled or context.DeadlineExceeded).
var ErrCanceled = errors.New("program: recording canceled")

// canceledError carries the context cause while also matching the
// package sentinel.
type canceledError struct{ cause error }

func (e *canceledError) Error() string {
	return fmt.Sprintf("program: recording canceled: %v", e.cause)
}

func (e *canceledError) Is(target error) bool { return target == ErrCanceled }

func (e *canceledError) Unwrap() error { return e.cause }

// bindContext attaches ctx to the emitter. With the background context
// Done() is nil, so every later check is a select hitting its default
// case — the no-context fast path costs one nil-channel poll.
func (e *Emitter) bindContext(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.ctx = ctx
	e.done = ctx.Done()
}

// checkCanceled unwinds the payload with a typed cancellation error if
// the recording's context is done. Called only at byte-safe points;
// see the file comment.
func (e *Emitter) checkCanceled() {
	select {
	case <-e.done:
		e.Abort(&canceledError{cause: e.ctx.Err()})
	default:
	}
}
