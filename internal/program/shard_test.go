package program

import (
	"runtime"
	"testing"
	"time"

	"branchlab/internal/engine"
	"branchlab/internal/trace"
)

// earlyPayload returns after a fixed instruction count, well under any
// test budget, exercising the short-trace assembly path.
func earlyPayload(e *Emitter) {
	for e.Running() && e.InstCount() < 7777 {
		e.Compute(5)
		e.Cond(1, e.Rand().Bool(0.3))
	}
}

func assertSameBuffer(t *testing.T, got, want *trace.Buffer, label string) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("%s: length %d, want %d", label, got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatalf("%s: instruction %d differs: %+v != %+v", label, i, got.At(i), want.At(i))
		}
	}
}

// Sharded recording's whole contract: byte-identical to sequential
// recording at any shard count, including counts that do not divide the
// budget and counts exceeding it.
func TestRecordShardedByteIdentical(t *testing.T) {
	const budget = 50_000
	want := Record(42, budget, countingPayload)
	pool := engine.New(4)
	for _, shards := range []int{1, 2, 3, 7, 16} {
		got := RecordSharded(42, budget, countingPayload, pool, shards)
		assertSameBuffer(t, got, want, "shards="+itoa(shards))
	}
	// nil pool selects a default pool.
	assertSameBuffer(t, RecordSharded(42, budget, countingPayload, nil, 3), want, "nil pool")
	// More shards than instructions degrades to one instruction per
	// shard (kept tiny: each shard replays its prefix).
	tiny := Record(42, 100, countingPayload)
	assertSameBuffer(t, RecordSharded(42, 100, countingPayload, pool, 137), tiny, "shards>budget")
}

func TestRecordShardedEarlyReturn(t *testing.T) {
	const budget = 60_000
	want := Record(9, budget, earlyPayload)
	if uint64(want.Len()) >= budget {
		t.Fatal("test payload should end before the budget")
	}
	pool := engine.New(3)
	for _, shards := range []int{2, 4, 9} {
		got := RecordSharded(9, budget, earlyPayload, pool, shards)
		assertSameBuffer(t, got, want, "early return")
	}
}

func TestRecordShardedZeroBudget(t *testing.T) {
	if got := RecordSharded(1, 0, countingPayload, engine.New(2), 4); got.Len() != 0 {
		t.Fatalf("zero budget recorded %d instructions", got.Len())
	}
}

// trace.Limit used to re-wrap streams in a FuncStream that dropped the
// Closer, so CloseStream on the limited stream silently leaked the
// generator goroutine behind it. The wrapper must release the producer.
func TestLimitedStreamCloseReleasesProducer(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 50; i++ {
		s := Run(uint64(i), 1<<40, countingPayload)
		limited := trace.Limit(s, 10)
		var inst trace.Inst
		for limited.Next(&inst) {
		}
		if err := trace.CloseStream(limited); err != nil {
			t.Fatalf("CloseStream: %v", err)
		}
	}
	// Producers exit asynchronously after the cancel; give them a beat.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+5 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before+5 {
		t.Errorf("goroutines grew from %d to %d: limited streams leak producers", before, n)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
