// Checkpointing: the slice-local payload contract (DESIGN.md §6).
//
// A payload is an arbitrary Go closure whose state evolves across the
// whole trace, which is why re-materializing instructions [lo, hi) has
// always required replaying the prefix [0, lo) to rebuild that state.
// A Checkpoint captures everything the continuation depends on — the
// xrand stream, the emitter's counters and call stack, and the
// payload's private state — at payload-declared safe points, so a
// later RecordRangeFrom resumes from the nearest checkpoint at or
// below lo instead of skimming the prefix: an evicted-slice refill
// becomes O(window) and sharded re-recording embarrassingly parallel.
//
// The contract a payload opts into:
//
//   - Its state object implements CheckpointPayload and is registered
//     with Emitter.Checkpointable before the first emission or RNG
//     draw. Setup before that point must be a pure function of the
//     seed/budget (no draws), because it re-runs on resume.
//   - It calls Emitter.Checkpoint() at safe points — positions where
//     CheckpointSave's result, together with the emitter state, fully
//     determines the rest of the generation (typically the top of the
//     main round loop). Between two safe points the payload may do
//     anything; captures only happen at the calls.
//   - CheckpointSave returns the private state as a flat []uint64;
//     CheckpointRestore reinstalls it, reporting false for a snapshot
//     it cannot accept (wrong length/shape), which makes the resume
//     fail with ErrBadCheckpoint instead of generating wrong bytes.
//
// Payloads that never register are simply never checkpointed: capture
// produces an empty list and every consumer falls back to the exact
// skim path, so checkpointing is strictly an optimization — resumed
// output is byte-identical to a skim from zero or it is an error.
package program

import (
	"errors"
	"fmt"
	"sort"
)

// ErrBadCheckpoint is returned (wrapped) when a checkpoint cannot
// resume the generation it claims to belong to: a zero-value or
// corrupt snapshot, a capture position past the requested range, a
// payload that rejects the saved state, or a payload that is not
// checkpointable at all. Callers fall back to the skim path.
var ErrBadCheckpoint = errors.New("program: checkpoint cannot resume this generation")

// Checkpoint is a resume point of one (seed, budget, payload)
// generation, captured at a payload safe point during recording. It is
// valid only for the exact triple it was captured from: all fields are
// deterministic functions of that triple and the capture position.
type Checkpoint struct {
	At      uint64    // instruction index the capture happened at
	Rng     [4]uint64 // xrand generator state
	CurIP   uint64    // emitter instruction pointer
	Callers []uint64  // emitter call stack (return addresses)
	Scratch uint8     // emitter rotating scratch register
	Payload []uint64  // payload-private state (CheckpointSave)
}

// CheckpointPayload is implemented by a payload's state object to opt
// into checkpointing (see the package comment for the full contract).
type CheckpointPayload interface {
	// CheckpointSave returns the payload-private state as a flat
	// []uint64. It is called at safe points during recording; the
	// returned slice is owned by the checkpoint and must not alias
	// mutable payload state.
	CheckpointSave() []uint64
	// CheckpointRestore reinstalls state returned by CheckpointSave,
	// reporting whether the snapshot is compatible. It is called at
	// most once, from Checkpointable, before any emission.
	CheckpointRestore(state []uint64) bool
}

// resumeAbort unwinds the payload goroutine when a resume turns out to
// be impossible mid-flight; recording converts it to an error.
type resumeAbort struct{ err error }

// Checkpointable registers the payload's state object for
// checkpointing. Payloads call it once, before their first emission or
// RNG draw. When the emitter is resuming from a checkpoint this is
// also the restore point: the saved private state is handed to
// p.CheckpointRestore immediately.
func (e *Emitter) Checkpointable(p CheckpointPayload) {
	e.ckptOwner = p
	if e.resuming {
		if !p.CheckpointRestore(e.resumeState) {
			//lint:ignore errcontract resumeAbort is a typed unwind recovered at the Record* run boundary and surfaced as ErrBadCheckpoint, never escaping to callers
			panic(resumeAbort{fmt.Errorf("%w: payload rejected the saved state (%d words)",
				ErrBadCheckpoint, len(e.resumeState))})
		}
		e.resuming = false
		e.resumeState = nil
	}
}

// Checkpoint declares a payload safe point. When capture is enabled
// (checkpointed recording) and the generation has crossed the next
// spacing threshold, the emitter snapshots its own state and the
// payload's; otherwise it is two compares. The capture rule — first
// safe point at or after each multiple of the spacing — is a pure
// function of the instruction index, so sharded recordings capture
// exactly the sequential list restricted to their ranges.
func (e *Emitter) Checkpoint() {
	// Safe points are also the cancellation points (DESIGN.md §9): the
	// payload declares that stopping here cannot corrupt anything, so
	// this is where a cancelled recording unwinds. Checked before the
	// spacing early-return so non-checkpointed recordings still cancel.
	e.checkCanceled()
	if e.ckptEvery == 0 || e.emitted < e.nextCkpt {
		return
	}
	e.nextCkpt = (e.emitted/e.ckptEvery + 1) * e.ckptEvery
	if e.ckptOwner == nil || e.emitted < e.ckptLo {
		return
	}
	e.ckpts = append(e.ckpts, Checkpoint{
		At:      e.emitted,
		Rng:     e.rng.State(),
		CurIP:   e.curIP,
		Callers: append([]uint64(nil), e.callers...),
		Scratch: e.scratch,
		Payload: e.ckptOwner.CheckpointSave(),
	})
}

// NearestCheckpoint returns the checkpoint with the greatest At not
// exceeding lo, or nil if none qualifies. ckpts must be sorted by At
// ascending, which every capture path produces.
func NearestCheckpoint(ckpts []Checkpoint, lo uint64) *Checkpoint {
	i := sort.Search(len(ckpts), func(i int) bool { return ckpts[i].At > lo })
	if i == 0 {
		return nil
	}
	return &ckpts[i-1]
}

// restore installs ck into a freshly seeded emitter, leaving it
// positioned exactly where the capture happened; the payload's private
// state is handed over when the payload calls Checkpointable.
func (e *Emitter) restore(ck *Checkpoint) error {
	if err := e.rng.SetState(ck.Rng); err != nil {
		return fmt.Errorf("%w: %w", ErrBadCheckpoint, err)
	}
	e.emitted = ck.At
	e.curIP = ck.CurIP
	e.callers = append([]uint64(nil), ck.Callers...)
	e.scratch = ck.Scratch
	e.resuming = true
	e.resumeState = ck.Payload
	return nil
}
