package program

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"branchlab/internal/engine"
	"branchlab/internal/trace"
)

// leakCheck snapshots the goroutine count and returns a func that
// fails the test if stray goroutines remain after a grace period.
func leakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					base, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// selfCancelPayload cancels its own context once the generation crosses
// at instructions, making mid-run cancellation deterministic: the next
// byte-safe point (flush, window retirement, or Checkpoint) aborts.
func selfCancelPayload(cancel context.CancelFunc, at uint64, checkpoint bool) Payload {
	return func(e *Emitter) {
		for e.Running() {
			if e.InstCount() >= at {
				cancel()
			}
			e.Compute(10)
			e.Cond(0, e.Rand().Bool(0.5))
			if checkpoint {
				e.Checkpoint()
			}
		}
	}
}

// TestRunCtxCancelEndsStreamTyped: cancelling a live stream's context
// ends it at a byte-safe point with Err matching ErrCanceled, without
// leaking the producer goroutine.
func TestRunCtxCancelEndsStreamTyped(t *testing.T) {
	defer leakCheck(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := RunCtx(ctx, 1, 10_000_000, selfCancelPayload(cancel, 100_000, false))
	n := trace.Count(s)
	if err := s.Err(); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Stream.Err() = %v, want ErrCanceled", err)
	}
	if !engine.IsCancel(s.Err()) {
		t.Fatal("cancellation error not classified by engine.IsCancel")
	}
	if n == 10_000_000 {
		t.Fatal("cancelled stream still delivered the full budget")
	}
}

// TestRunCtxUncancelledIsByteIdentical: running under a context that
// never fires changes nothing — same bytes as the context-free path.
func TestRunCtxUncancelledIsByteIdentical(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	want := Record(7, 50_000, countingPayload)
	s := RunCtx(ctx, 7, 50_000, countingPayload)
	got := trace.RecordSized(s, 50_000)
	if err := s.Err(); err != nil {
		t.Fatalf("uncancelled RunCtx stream erred: %v", err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("lengths differ: %d vs %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatalf("inst %d differs under an inert context", i)
		}
	}
}

// TestRecordCtxCancelReturnsTypedError: a cancelled recording returns
// (nil, err) — never a truncated buffer.
func TestRecordCtxCancelReturnsTypedError(t *testing.T) {
	defer leakCheck(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	buf, err := RecordCtx(ctx, 1, 10_000_000, selfCancelPayload(cancel, 100_000, false))
	if buf != nil {
		t.Fatalf("cancelled RecordCtx returned a %d-inst buffer", buf.Len())
	}
	if !errors.Is(err, ErrCanceled) || !engine.IsCancel(err) {
		t.Fatalf("RecordCtx = %v, want a typed cancellation", err)
	}
}

// TestRecordCtxPayloadPanicIsTypedError: a panicking payload fails the
// recording with an error carrying the panic, not the process.
func TestRecordCtxPayloadPanicIsTypedError(t *testing.T) {
	defer leakCheck(t)()
	buf, err := RecordCtx(context.Background(), 1, 1000, func(e *Emitter) {
		e.Compute(10)
		panic("payload bug")
	})
	if buf != nil || err == nil {
		t.Fatalf("RecordCtx(panicking payload) = %v, %v", buf, err)
	}
	if errors.Is(err, ErrCanceled) || engine.IsCancel(err) {
		t.Fatalf("payload panic misclassified as cancellation: %v", err)
	}
	//lint:ignore errcontract asserts the payload's panic value (a string) survives into the message; there is no sentinel to discriminate
	if !strings.Contains(err.Error(), "payload bug") {
		t.Fatalf("panic error lost the payload's panic value: %v", err)
	}
}

// TestRecordCtxAbortPropagates: Emitter.Abort's typed error is the
// recording's error.
func TestRecordCtxAbortPropagates(t *testing.T) {
	defer leakCheck(t)()
	boom := errors.New("impossible configuration")
	_, err := RecordCtx(context.Background(), 1, 1000, func(e *Emitter) {
		e.Compute(10)
		e.Abort(boom)
	})
	if !errors.Is(err, boom) {
		t.Fatalf("RecordCtx(aborting payload) = %v, want %v", err, boom)
	}
	if engine.IsCancel(err) {
		t.Fatal("payload abort misclassified as cancellation")
	}
}

// TestRecordSlicesCtxCancelViaCheckpointPoint: a payload's Checkpoint
// call is a cancellation point even for non-checkpointed recordings.
func TestRecordSlicesCtxCancelViaCheckpointPoint(t *testing.T) {
	defer leakCheck(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out, cks, err := RecordSlicesCtx(ctx, 1, 1_000_000, selfCancelPayload(cancel, 10_000, true),
		1_000_000, nil, 1, 0)
	if out != nil || cks != nil {
		t.Fatalf("cancelled RecordSlicesCtx returned data: %d slices, %d ckpts", len(out), len(cks))
	}
	if !errors.Is(err, ErrCanceled) || !engine.IsCancel(err) {
		t.Fatalf("RecordSlicesCtx = %v, want a typed cancellation", err)
	}
}

// TestRecordSlicesCtxCancelViaWindowRetirement: without any Checkpoint
// calls, retiring a filled slice window is the byte-safe point a
// cancelled direct-path recording unwinds at.
func TestRecordSlicesCtxCancelViaWindowRetirement(t *testing.T) {
	defer leakCheck(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out, _, err := RecordSlicesCtx(ctx, 1, 1_000_000, selfCancelPayload(cancel, 10_000, false),
		1_000, nil, 1, 0)
	if out != nil {
		t.Fatalf("cancelled RecordSlicesCtx returned %d slices", len(out))
	}
	if !errors.Is(err, ErrCanceled) || !engine.IsCancel(err) {
		t.Fatalf("RecordSlicesCtx = %v, want a typed cancellation", err)
	}
}

// TestRecordShardedFromCtxCancelTyped: a pre-cancelled sharded
// recording fails typed across the worker pool.
func TestRecordShardedFromCtxCancelTyped(t *testing.T) {
	defer leakCheck(t)()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	buf, err := RecordShardedFromCtx(ctx, 1, 100_000, countingPayload, engine.New(4), 4, nil)
	if buf != nil {
		t.Fatalf("cancelled sharded recording returned a %d-inst buffer", buf.Len())
	}
	if !engine.IsCancel(err) {
		t.Fatalf("RecordShardedFromCtx = %v, want a cancellation", err)
	}
}

// TestRecordShardedFromCtxUncancelledByteIdentical: the ctx-bound
// sharded path under an inert context matches sequential recording.
func TestRecordShardedFromCtxUncancelledByteIdentical(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	want := Record(11, 40_000, countingPayload)
	got, err := RecordShardedFromCtx(ctx, 11, 40_000, countingPayload, engine.New(4), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != want.Len() {
		t.Fatalf("lengths differ: %d vs %d", got.Len(), want.Len())
	}
	for i := 0; i < got.Len(); i++ {
		if got.At(i) != want.At(i) {
			t.Fatalf("inst %d differs under an inert context", i)
		}
	}
}

// TestStreamErrHelper: trace.StreamErr surfaces the typed error through
// the generic stream plumbing (block adapters included).
func TestStreamErrHelper(t *testing.T) {
	defer leakCheck(t)()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s := RunCtx(ctx, 1, 10_000_000, selfCancelPayload(cancel, 50_000, false))
	trace.Count(s)
	if err := trace.StreamErr(s); !errors.Is(err, ErrCanceled) {
		t.Fatalf("trace.StreamErr = %v, want ErrCanceled", err)
	}
	var plain any = s
	if err := trace.StreamErr(plain); !errors.Is(err, ErrCanceled) {
		t.Fatalf("StreamErr through any = %v, want ErrCanceled", err)
	}
}
