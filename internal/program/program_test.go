package program

import (
	"testing"

	"branchlab/internal/trace"
)

func countingPayload(e *Emitter) {
	for e.Running() {
		e.Compute(10)
		e.Cond(0, e.Rand().Bool(0.5))
	}
}

func TestBudgetExact(t *testing.T) {
	for _, budget := range []uint64{0, 1, 100, 12345} {
		s := Run(1, budget, countingPayload)
		n := trace.Count(s)
		trace.CloseStream(s)
		if n != budget {
			t.Errorf("budget %d: yielded %d instructions", budget, n)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := Record(42, 50000, countingPayload)
	b := Record(42, 50000, countingPayload)
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("instruction %d differs", i)
		}
	}
	c := Record(43, 50000, countingPayload)
	same := 0
	for i := 0; i < a.Len(); i++ {
		if a.At(i) == c.At(i) {
			same++
		}
	}
	if same == a.Len() {
		t.Error("different seeds produced identical traces")
	}
}

func TestEarlyCloseReleasesProducer(t *testing.T) {
	// A huge budget with an early Close must not leak or deadlock; run
	// many to amplify leaks.
	for i := 0; i < 50; i++ {
		s := Run(uint64(i), 1<<40, countingPayload)
		var inst trace.Inst
		for j := 0; j < 10; j++ {
			s.Next(&inst)
		}
		if err := s.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		// Double close is safe.
		if err := s.Close(); err != nil {
			t.Fatalf("second Close: %v", err)
		}
	}
}

func TestBranchIPsStable(t *testing.T) {
	var ip5, ip5b, ip9 uint64
	payload := func(e *Emitter) {
		ip5 = e.BranchIP(5)
		ip9 = e.BranchIP(9)
		e.Cond(5, true)
		e.Compute(100)
		ip5b = e.BranchIP(5)
		e.Cond(9, false)
	}
	b := Record(1, 1000, payload)
	if ip5 != ip5b {
		t.Error("BranchIP not stable across calls")
	}
	if ip5 == ip9 {
		t.Error("distinct branches share an IP")
	}
	var sawIP5, sawIP9 bool
	for i := 0; i < b.Len(); i++ {
		inst := b.At(i)
		if inst.Kind == trace.KindCondBr {
			switch inst.IP {
			case ip5:
				sawIP5 = true
				if !inst.Taken {
					t.Error("branch 5 should be taken")
				}
			case ip9:
				sawIP9 = true
				if inst.Taken {
					t.Error("branch 9 should be not-taken")
				}
			}
		}
	}
	if !sawIP5 || !sawIP9 {
		t.Error("emitted branches missing from trace")
	}
}

func TestSetVarDataflowVisible(t *testing.T) {
	const v = VarID(3)
	payload := func(e *Emitter) {
		e.SetVar(v, 0xBEEF)
		e.Cond(1, true, v)
	}
	b := Record(1, 10, payload)
	if b.Len() != 2 {
		t.Fatalf("trace length %d", b.Len())
	}
	def := b.At(0)
	use := b.At(1)
	if def.DstReg != v.reg() || def.DstValue != 0xBEEF {
		t.Errorf("def wrong: %+v", def)
	}
	if use.SrcRegs[0] != v.reg() {
		t.Errorf("use does not read var register: %+v", use)
	}
	if def.DstReg < 8 {
		t.Error("variable registers must avoid scratch range")
	}
}

func TestCondBackwardTargets(t *testing.T) {
	payload := func(e *Emitter) {
		e.Compute(5)
		e.CondBackward(100, true)
	}
	b := Record(1, 100, payload)
	var br *trace.Inst
	for i := 0; i < b.Len(); i++ {
		inst := b.At(i)
		if inst.Kind == trace.KindCondBr {
			br = &inst
			break
		}
	}
	if br == nil {
		t.Fatal("no branch emitted")
	}
	if br.Target >= br.IP {
		t.Errorf("CondBackward target %#x not below IP %#x", br.Target, br.IP)
	}
}

func TestCallRetBalance(t *testing.T) {
	payload := func(e *Emitter) {
		for e.Running() {
			e.Call(1)
			e.Compute(5)
			e.Call(2)
			e.Ret()
			e.Ret()
			e.Compute(3)
		}
	}
	b := Record(1, 10000, payload)
	calls, rets := 0, 0
	for i := 0; i < b.Len(); i++ {
		switch b.At(i).Kind {
		case trace.KindCall:
			calls++
		case trace.KindRet:
			rets++
		}
	}
	if calls == 0 {
		t.Fatal("no calls emitted")
	}
	if rets > calls {
		t.Errorf("more returns (%d) than calls (%d)", rets, calls)
	}
	if calls-rets > 2 {
		t.Errorf("call/ret unbalanced: %d vs %d", calls, rets)
	}
}

func TestRetWithoutCallIsNoop(t *testing.T) {
	b := Record(1, 100, func(e *Emitter) {
		e.Ret()
		e.Compute(3)
	})
	if b.Len() != 3 {
		t.Errorf("unexpected trace length %d (Ret should be a no-op)", b.Len())
	}
}

func TestMemoryOpsCarryAddresses(t *testing.T) {
	b := Record(1, 100, func(e *Emitter) {
		e.Load(0x1234)
		e.Store(0x5678)
		e.SetVarLoad(2, 0x9ABC, 7)
	})
	if b.At(0).Kind != trace.KindLoad || b.At(0).MemAddr != 0x1234 {
		t.Errorf("load wrong: %+v", b.At(0))
	}
	if b.At(1).Kind != trace.KindStore || b.At(1).MemAddr != 0x5678 {
		t.Errorf("store wrong: %+v", b.At(1))
	}
	ld := b.At(2)
	if ld.Kind != trace.KindLoad || ld.DstReg != VarID(2).reg() || ld.DstValue != 7 {
		t.Errorf("SetVarLoad wrong: %+v", ld)
	}
}

func TestIPsAdvanceWithinBlocks(t *testing.T) {
	b := Record(1, 50, func(e *Emitter) { e.Compute(50) })
	for i := 1; i < b.Len(); i++ {
		if b.At(i).IP != b.At(i-1).IP+4 {
			t.Fatalf("filler IPs not sequential at %d: %#x -> %#x",
				i, b.At(i-1).IP, b.At(i).IP)
		}
	}
}

func TestTakenBranchRedirectsIP(t *testing.T) {
	b := Record(1, 10, func(e *Emitter) {
		e.Cond(1, true)
		e.Compute(1)
		e.Cond(2, false)
		e.Compute(1)
	})
	br := b.At(0)
	next := b.At(1)
	if next.IP != br.Target {
		t.Errorf("taken branch: next IP %#x != target %#x", next.IP, br.Target)
	}
	br2 := b.At(2)
	next2 := b.At(3)
	if next2.IP != br2.IP+4 {
		t.Errorf("not-taken branch: next IP %#x != fallthrough %#x", next2.IP, br2.IP+4)
	}
}
