package program

import (
	"testing"

	"branchlab/internal/engine"
	"branchlab/internal/trace"
)

// joinSlices flattens per-slice arrays into one buffer for comparison.
func joinSlices(arrs [][]trace.Inst) *trace.Buffer {
	var all []trace.Inst
	for _, a := range arrs {
		all = append(all, a...)
	}
	return trace.FromSlice(all)
}

// Slice-granular recording's whole contract: concatenated slices are
// byte-identical to Record at any (sliceLen, shards) combination, and
// every slice but the last is exactly sliceLen long with its own
// backing array.
func TestRecordSlicesByteIdentical(t *testing.T) {
	const budget = 50_000
	want := Record(42, budget, countingPayload)
	pool := engine.New(4)
	for _, sliceLen := range []uint64{0, 1000, 4096, 7777, budget, budget * 2} {
		for _, shards := range []int{1, 2, 3, 7} {
			arrs, _ := RecordSlices(42, budget, countingPayload, sliceLen, pool, shards, 0)
			label := "sliceLen=" + itoa(int(sliceLen)) + "/shards=" + itoa(shards)
			assertSameBuffer(t, joinSlices(arrs), want, label)
			eff := sliceLen
			if eff == 0 || eff > budget {
				eff = budget
			}
			for i, a := range arrs {
				if i < len(arrs)-1 && uint64(len(a)) != eff {
					t.Fatalf("%s: slice %d has %d insts, want %d", label, i, len(a), eff)
				}
				if uint64(cap(a)) > eff {
					t.Fatalf("%s: slice %d capacity %d exceeds slice length %d (not independently owned)",
						label, i, cap(a), eff)
				}
			}
		}
	}
}

// Early-ending payloads must trim trailing slices the same way Record
// trims its buffer, at any shard count.
func TestRecordSlicesEarlyReturn(t *testing.T) {
	const budget = 60_000
	want := Record(9, budget, earlyPayload)
	if uint64(want.Len()) >= budget {
		t.Fatal("test payload should end before the budget")
	}
	pool := engine.New(3)
	for _, shards := range []int{1, 2, 4, 9} {
		arrs, _ := RecordSlices(9, budget, earlyPayload, 1000, pool, shards, 0)
		assertSameBuffer(t, joinSlices(arrs), want, "early/shards="+itoa(shards))
	}
}

func TestRecordSlicesZeroBudget(t *testing.T) {
	if arrs, _ := RecordSlices(1, 0, countingPayload, 100, engine.New(2), 4, 0); len(arrs) != 0 {
		t.Fatalf("zero budget recorded %d slices", len(arrs))
	}
}

// RecordRange is the cache's evicted-slice refill: any [lo, hi) window
// must reproduce exactly that range of the full recording.
func TestRecordRangeByteIdentical(t *testing.T) {
	const budget = 30_000
	want := Record(7, budget, countingPayload)
	for _, r := range [][2]uint64{
		{0, budget}, {0, 1}, {1, 2}, {12345, 23456}, {budget - 1, budget},
		{20_000, budget + 500}, // hi clamps to the budget
	} {
		got := RecordRange(7, budget, countingPayload, r[0], r[1])
		hi := r[1]
		if hi > budget {
			hi = budget
		}
		if uint64(len(got)) != hi-r[0] {
			t.Fatalf("range [%d,%d): got %d insts, want %d", r[0], r[1], len(got), hi-r[0])
		}
		for i, inst := range got {
			if inst != want.At(int(r[0])+i) {
				t.Fatalf("range [%d,%d): instruction %d differs", r[0], r[1], i)
			}
		}
	}
	if got := RecordRange(7, budget, countingPayload, 10, 10); got != nil {
		t.Fatalf("empty range returned %d insts", len(got))
	}
}
