// Package program is the synthetic-program substrate: it turns a workload
// payload — ordinary Go code calling an Emitter — into a deterministic
// instruction Stream with realistic control flow, register dataflow and
// memory behaviour.
//
// The emitter is the reproduction's substitute for tracing real binaries
// (see DESIGN.md §1): every analysis in the paper consumes only
// trace-visible signals (IPs, directions, operand registers, written
// values, addresses), and the emitter produces exactly those signals under
// workload control. Payload functions run in a producer goroutine and are
// pure functions of the seed, so a (payload, seed, budget) triple always
// yields the identical trace.
package program

import (
	"fmt"
	"sync"

	"branchlab/internal/engine"
	"branchlab/internal/trace"
	"branchlab/internal/xrand"
)

// VarID names a program variable. Variables map to stable architectural
// registers so that reads and writes form honest def-use chains for the
// dependency-graph analysis.
type VarID int

// reg maps a variable to its architectural register (r8..r27, leaving
// low registers for filler code and scratch).
func (v VarID) reg() uint8 { return uint8(8 + int(v)%20) }

// Payload is a synthetic program: it calls Emitter methods until Running
// reports false.
type Payload func(e *Emitter)

const (
	batchSize    = 8192
	branchStride = 64 // bytes of IP space per static branch region
)

// Emitter records the instructions a payload produces. Methods must only
// be called from the payload goroutine.
type Emitter struct {
	rng     *xrand.Rand
	budget  uint64
	emitted uint64

	baseIP  uint64
	curIP   uint64
	callers []uint64

	batch  []trace.Inst
	out    chan []trace.Inst
	cancel chan struct{}

	// Sharded-recording mode (see RecordSharded): instructions with
	// index < skip are generated but not materialized, instructions in
	// [skip, stopAt) append to direct, and reaching stopAt unwinds the
	// payload. stopAt == 0 disables early stop; direct == nil selects
	// the batching channel path. segs holds further pre-allocated
	// capacity-capped windows (slice-granular recording): when direct
	// fills to capacity it is retired to done and the next window takes
	// over, so one prefix replay materializes many independently owned
	// slice arrays.
	skip   uint64
	stopAt uint64
	direct []trace.Inst
	segs   [][]trace.Inst
	done   [][]trace.Inst

	// Checkpointing (see checkpoint.go): with ckptEvery > 0 the emitter
	// captures a Checkpoint at the first payload safe point at or after
	// each multiple of ckptEvery, storing only captures at index >=
	// ckptLo (sharded recorders skim the prefix but store only their own
	// range). resuming is set while a restored payload state waits for
	// the payload to claim it via Checkpointable; emitting in that
	// window is a contract violation and aborts the resume.
	ckptEvery   uint64
	nextCkpt    uint64
	ckptLo      uint64
	ckpts       []Checkpoint
	ckptOwner   CheckpointPayload
	resuming    bool
	resumeState []uint64

	scratch uint8 // rotating scratch register for filler code
}

// stopSignal unwinds the payload goroutine when the consumer closes the
// stream early.
type stopSignal struct{}

// Rand returns the emitter's deterministic random source. Payloads must
// draw all randomness from it.
func (e *Emitter) Rand() *xrand.Rand { return e.rng }

// Running reports whether the payload should keep generating. Payloads
// use it as their main loop condition; inner kernels of bounded size may
// overshoot by a fraction of a batch, which the stream truncates.
func (e *Emitter) Running() bool { return e.emitted < e.budget }

// InstCount returns the number of instructions emitted so far.
func (e *Emitter) InstCount() uint64 { return e.emitted }

// Budget returns the total instruction budget of this run. Payloads use
// it to scale structures that the paper defines per trace length (e.g.
// static code footprint per 30M-instruction slice).
func (e *Emitter) Budget() uint64 { return e.budget }

func (e *Emitter) emit(inst trace.Inst) {
	if e.resuming {
		// A resumed emitter whose payload emits before claiming the
		// saved state via Checkpointable would silently generate wrong
		// bytes: the payload restarted from its zero state while the
		// counters and RNG continued mid-trace. Abort to the skim path.
		panic(resumeAbort{fmt.Errorf("%w: payload emitted before Checkpointable", ErrBadCheckpoint)})
	}
	if e.emitted >= e.budget {
		return
	}
	if e.emitted >= e.skip {
		if e.direct != nil {
			e.direct = append(e.direct, inst)
			if len(e.direct) == cap(e.direct) && len(e.segs) > 0 {
				e.done = append(e.done, e.direct)
				e.direct = e.segs[0]
				e.segs = e.segs[1:]
			}
		} else {
			e.batch = append(e.batch, inst)
			if len(e.batch) >= batchSize {
				e.flush()
			}
		}
	}
	e.emitted++
	if e.stopAt != 0 && e.emitted >= e.stopAt {
		panic(stopSignal{})
	}
}

func (e *Emitter) flush() {
	if len(e.batch) == 0 {
		return
	}
	select {
	case e.out <- e.batch:
	case <-e.cancel:
		panic(stopSignal{})
	}
	e.batch = make([]trace.Inst, 0, batchSize)
}

// BranchIP returns the stable instruction pointer assigned to branch id.
func (e *Emitter) BranchIP(id int) uint64 {
	return e.baseIP + uint64(id)*branchStride
}

// Compute emits n filler computation instructions (ALU/MUL/FP mix) with
// plausible register pressure on the low registers.
func (e *Emitter) Compute(n int) {
	for i := 0; i < n && e.Running(); i++ {
		kind := trace.KindALU
		switch e.rng.Intn(16) {
		case 0:
			kind = trace.KindMul
		case 1:
			kind = trace.KindFP
		}
		dst := e.scratch
		e.scratch = (e.scratch + 1) & 7
		e.emit(trace.Inst{
			IP:       e.curIP,
			Kind:     kind,
			DstReg:   dst,
			DstValue: e.rng.Uint64() & 0xFFFF,
			SrcRegs:  [2]uint8{(dst + 1) & 7, (dst + 3) & 7},
		})
		e.curIP += 4
	}
}

// SetVar emits an ALU instruction writing value into v's register. The
// written value is visible to the register-value analysis (Fig 10) and
// the def-use chain to any branch reading v (Table III / Fig 6).
func (e *Emitter) SetVar(v VarID, value uint64) {
	e.emit(trace.Inst{
		IP:       e.curIP,
		Kind:     trace.KindALU,
		DstReg:   v.reg(),
		DstValue: value,
		SrcRegs:  [2]uint8{v.reg(), trace.NoReg},
	})
	e.curIP += 4
}

// SetVarLoad is SetVar through memory: a load from addr defines v.
func (e *Emitter) SetVarLoad(v VarID, addr, value uint64) {
	e.emit(trace.Inst{
		IP:       e.curIP,
		Kind:     trace.KindLoad,
		MemAddr:  addr,
		DstReg:   v.reg(),
		DstValue: value,
		SrcRegs:  [2]uint8{trace.NoReg, trace.NoReg},
	})
	e.curIP += 4
}

// Load emits a load from addr into a scratch register.
func (e *Emitter) Load(addr uint64) {
	dst := e.scratch
	e.scratch = (e.scratch + 1) & 7
	e.emit(trace.Inst{
		IP:      e.curIP,
		Kind:    trace.KindLoad,
		MemAddr: addr,
		DstReg:  dst,
		SrcRegs: [2]uint8{trace.NoReg, trace.NoReg},
	})
	e.curIP += 4
}

// Store emits a store to addr.
func (e *Emitter) Store(addr uint64) {
	e.emit(trace.Inst{
		IP:      e.curIP,
		Kind:    trace.KindStore,
		MemAddr: addr,
		DstReg:  trace.NoReg,
		SrcRegs: [2]uint8{e.scratch, trace.NoReg},
	})
	e.curIP += 4
}

// Cond emits the conditional branch id with the given resolved direction.
// reads lists the variables the branch condition depends on; they become
// the branch's source registers. The branch target is forward.
func (e *Emitter) Cond(id int, taken bool, reads ...VarID) {
	ip := e.BranchIP(id)
	e.condAt(ip, ip+branchStride/2, taken, reads)
}

// CondBackward emits branch id as a backward (loop-style) branch, the
// shape the IMLI component of TAGE-SC-L keys on.
func (e *Emitter) CondBackward(id int, taken bool, reads ...VarID) {
	ip := e.BranchIP(id)
	target := ip - 8*branchStride
	if target > ip { // underflow guard
		target = e.baseIP
	}
	e.condAt(ip, target, taken, reads)
}

func (e *Emitter) condAt(ip, target uint64, taken bool, reads []VarID) {
	inst := trace.Inst{
		IP:      ip,
		Kind:    trace.KindCondBr,
		Target:  target,
		Taken:   taken,
		DstReg:  trace.NoReg,
		SrcRegs: [2]uint8{trace.NoReg, trace.NoReg},
	}
	for i, v := range reads {
		if i >= 2 {
			break
		}
		inst.SrcRegs[i] = v.reg()
	}
	e.emit(inst)
	if taken {
		e.curIP = target
	} else {
		e.curIP = ip + 4
	}
}

// Call emits a direct call into function fn's region and tracks the
// return address.
func (e *Emitter) Call(fn int) {
	ip := e.curIP
	target := e.baseIP + 1<<20 + uint64(fn)*4096
	e.emit(trace.Inst{
		IP: ip, Kind: trace.KindCall, Target: target, Taken: true,
		DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg},
	})
	e.callers = append(e.callers, ip+4)
	e.curIP = target
}

// Ret returns from the innermost Call; without one it is a no-op jump.
func (e *Emitter) Ret() {
	if len(e.callers) == 0 {
		return
	}
	target := e.callers[len(e.callers)-1]
	e.callers = e.callers[:len(e.callers)-1]
	e.emit(trace.Inst{
		IP: e.curIP, Kind: trace.KindRet, Target: target, Taken: true,
		DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg},
	})
	e.curIP = target
}

// Jump emits an unconditional direct jump to branch id's region.
func (e *Emitter) Jump(id int) {
	target := e.BranchIP(id)
	e.emit(trace.Inst{
		IP: e.curIP, Kind: trace.KindJump, Target: target, Taken: true,
		DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg},
	})
	e.curIP = target
}

// Stream is the consumer side of a running payload. It implements
// trace.Stream and trace.Closer.
type Stream struct {
	out    chan []trace.Inst
	cancel chan struct{}
	cur    []trace.Inst
	idx    int
	once   sync.Once
}

// Run starts payload in a producer goroutine and returns the consuming
// stream. The stream yields at most budget instructions. Callers should
// Close the stream if they stop early; draining it fully also releases
// the producer.
func Run(seed, budget uint64, payload Payload) *Stream {
	s := &Stream{
		out:    make(chan []trace.Inst, 2),
		cancel: make(chan struct{}),
	}
	e := &Emitter{
		rng:    xrand.New(seed),
		budget: budget,
		baseIP: 0x400000,
		curIP:  0x400000,
		batch:  make([]trace.Inst, 0, batchSize),
		out:    s.out,
		cancel: s.cancel,
	}
	go func() {
		defer close(s.out)
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopSignal); !ok {
					panic(r)
				}
			}
		}()
		payload(e)
		e.flush()
	}()
	return s
}

// Next implements trace.Stream.
func (s *Stream) Next(inst *trace.Inst) bool {
	for s.idx >= len(s.cur) {
		batch, ok := <-s.out
		if !ok {
			return false
		}
		s.cur = batch
		s.idx = 0
	}
	*inst = s.cur[s.idx]
	s.idx++
	return true
}

// NextBlock implements trace.BlockStream: it hands the producer's
// batches to the consumer directly, so a block-based replay of a live
// generator copies no instructions at all.
func (s *Stream) NextBlock() []trace.Inst {
	if s.idx < len(s.cur) {
		blk := s.cur[s.idx:]
		s.idx = len(s.cur)
		return blk
	}
	batch, ok := <-s.out
	if !ok {
		return nil
	}
	s.cur = batch
	s.idx = len(batch)
	return batch
}

// Close implements trace.Closer: it releases the producer goroutine.
func (s *Stream) Close() error {
	s.once.Do(func() {
		close(s.cancel)
		// Drain so the producer's in-flight send completes.
		for range s.out {
		}
	})
	return nil
}

// Record runs payload to completion and materializes the trace. The
// buffer is pre-sized from the budget: payloads run until the budget is
// exhausted, so the recording's final length is the budget except for
// payloads that return early.
func Record(seed, budget uint64, payload Payload) *trace.Buffer {
	s := Run(seed, budget, payload)
	defer s.Close()
	return trace.RecordSized(s, budget)
}

// recordSegments generates instructions [lo, hi) of the (seed, budget,
// payload) trace synchronously — no producer goroutine, no channel —
// filling the pre-allocated capacity-capped windows segs in order and
// returning the windows that received instructions. The payload replays
// from the start with a freshly reseeded RNG (every shard derives the
// identical xrand stream from the trace seed), skims the prefix without
// materializing it, and unwinds as soon as the range is full. The
// window capacities must sum to at least hi-lo so no append ever
// reallocates a window.
//
// ckptEvery > 0 additionally captures payload checkpoints within
// [lo, hi) at that spacing (see checkpoint.go); from != nil resumes
// the replay at from.At instead of instruction zero — the O(window)
// refill path — and fails with ErrBadCheckpoint (wrapped) when the
// checkpoint cannot reproduce the generation, leaving the caller to
// fall back to a skim from zero.
func recordSegments(seed, budget uint64, payload Payload, lo, hi uint64, segs [][]trace.Inst, ckptEvery uint64, from *Checkpoint) ([][]trace.Inst, []Checkpoint, error) {
	e := &Emitter{
		rng:       xrand.New(seed),
		budget:    budget,
		baseIP:    0x400000,
		curIP:     0x400000,
		skip:      lo,
		stopAt:    hi,
		direct:    segs[0],
		segs:      segs[1:],
		ckptEvery: ckptEvery,
		nextCkpt:  ckptEvery, // never capture the trivial At=0 state
		ckptLo:    lo,
	}
	if from != nil {
		if from.At > lo {
			return nil, nil, fmt.Errorf("%w: captured at %d, past range start %d", ErrBadCheckpoint, from.At, lo)
		}
		if err := e.restore(from); err != nil {
			return nil, nil, err
		}
	}
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(stopSignal); ok {
					return
				}
				if ra, ok := r.(resumeAbort); ok {
					err = ra.err
					return
				}
				panic(r)
			}
		}()
		payload(e)
		if e.resuming {
			err = fmt.Errorf("%w: payload never registered via Checkpointable", ErrBadCheckpoint)
		}
		return
	}()
	if err != nil {
		return nil, nil, err
	}
	return append(e.done, e.direct), e.ckpts, nil
}

// recordRange is recordSegments with a single destination window and a
// skim from zero (no checkpoints involved, never fails).
func recordRange(seed, budget uint64, payload Payload, lo, hi uint64, dst []trace.Inst) []trace.Inst {
	out, _, _ := recordSegments(seed, budget, payload, lo, hi, [][]trace.Inst{dst}, 0, nil)
	return out[len(out)-1]
}

// RecordRange materializes instructions [lo, hi) of the (seed, budget,
// payload) trace into a freshly allocated array: the slice-granular
// trace cache's re-materialization path. The replay reseeds from the
// trace seed and skims the prefix without materializing it, so the
// returned range is byte-identical to the same range of a full
// recording — at the cost of regenerating (not storing) the lo
// instructions before the range.
func RecordRange(seed, budget uint64, payload Payload, lo, hi uint64) []trace.Inst {
	if hi > budget {
		hi = budget
	}
	if lo >= hi {
		return nil
	}
	return recordRange(seed, budget, payload, lo, hi, make([]trace.Inst, 0, hi-lo))
}

// RecordRangeFrom is RecordRange resuming from ck instead of skimming
// the prefix: generation starts at ck.At, so the refill costs
// O(lo-ck.At + window) regardless of lo — O(window) when checkpoints
// were captured at slice spacing. ck must come from a checkpointed
// recording of the identical (seed, budget, payload) triple with
// ck.At <= lo; a nil ck degrades to the skim path. The resumed bytes
// are byte-identical to the same range of a full recording, or the
// call fails (wrapping ErrBadCheckpoint, or xrand.ErrZeroState for a
// zero-value checkpoint) and the caller falls back to RecordRange —
// wrong bytes are never returned.
func RecordRangeFrom(seed, budget uint64, payload Payload, ck *Checkpoint, lo, hi uint64) ([]trace.Inst, error) {
	if hi > budget {
		hi = budget
	}
	if lo >= hi {
		return nil, nil
	}
	if ck == nil {
		return recordRange(seed, budget, payload, lo, hi, make([]trace.Inst, 0, hi-lo)), nil
	}
	segs, _, err := recordSegments(seed, budget, payload, lo, hi,
		[][]trace.Inst{make([]trace.Inst, 0, hi-lo)}, 0, ck)
	if err != nil {
		return nil, err
	}
	return segs[len(segs)-1], nil
}

// RecordSharded materializes the same trace Record produces by
// generating disjoint instruction ranges on pool workers. Worker w
// replays the payload deterministically from the trace seed, skims
// instructions before its range (generated, counted, not stored),
// writes its range directly into the shared backing array, and stops.
// The assembled buffer is byte-identical to sequential recording at any
// shard count: payloads are pure functions of the seed, so every
// replica emits the identical instruction sequence.
//
// Sharding trades total generation work for wall-clock and allocation
// traffic: shard w regenerates the w/shards prefix it discards, but the
// materialization path (batch copies, channel handoff, buffer growth)
// runs once per instruction across all workers and the shards record
// concurrently. See DESIGN.md §6 for why prefix replay — rather than
// per-slice generator reseeding — is what keeps the recording
// byte-identical for arbitrary payloads.
func RecordSharded(seed, budget uint64, payload Payload, pool *engine.Pool, shards int) *trace.Buffer {
	return RecordShardedFrom(seed, budget, payload, pool, shards, nil)
}

// RecordShardedFrom is RecordSharded with a checkpoint list from a
// prior checkpointed recording of the same (seed, budget, payload)
// triple: worker w resumes from the nearest checkpoint at or below its
// range start instead of skimming the prefix, so the shards' work no
// longer overlaps — re-recording is embarrassingly parallel, each
// worker generating O(budget/shards) instructions. A worker whose
// checkpoint cannot resume (or that has none at or below its range)
// falls back to the skim path, so the assembled buffer is
// byte-identical to sequential recording for any ckpts, including nil
// (which is exactly RecordSharded).
func RecordShardedFrom(seed, budget uint64, payload Payload, pool *engine.Pool, shards int, ckpts []Checkpoint) *trace.Buffer {
	if pool == nil {
		pool = engine.New(0)
	}
	if uint64(shards) > budget {
		shards = int(budget)
	}
	if shards <= 1 {
		return Record(seed, budget, payload)
	}
	chunk := (budget + uint64(shards) - 1) / uint64(shards)
	insts := make([]trace.Inst, budget)
	counts := engine.Map(pool, shards, func(w int) int {
		lo := uint64(w) * chunk
		hi := lo + chunk
		if hi > budget {
			hi = budget
		}
		if lo >= hi {
			return 0
		}
		// Each worker appends into its own zero-length, capacity-capped
		// window of the shared array, so writes stay disjoint.
		if ck := NearestCheckpoint(ckpts, lo); ck != nil {
			segs, _, err := recordSegments(seed, budget, payload, lo, hi,
				[][]trace.Inst{insts[lo:lo:hi]}, 0, ck)
			if err == nil {
				return len(segs[len(segs)-1])
			}
			// Unusable checkpoint: regenerate the window's prefix below.
		}
		return len(recordRange(seed, budget, payload, lo, hi, insts[lo:lo:hi]))
	})
	// A payload that returns before exhausting the budget ends every
	// shard at the same deterministic point; the first short shard is
	// the end of the trace.
	total := uint64(0)
	for w, n := range counts {
		total += uint64(n)
		lo := uint64(w) * chunk
		hi := lo + chunk
		if hi > budget {
			hi = budget
		}
		if uint64(n) < hi-lo {
			break
		}
	}
	return trace.FromSlice(insts[:total])
}

// RecordSlices materializes the same trace Record produces as
// consecutive, independently owned arrays of sliceLen instructions
// each (the last may be shorter): the ingest path of the slice-granular
// trace cache, which needs each slice to be individually evictable —
// dropping one array frees its memory, which views of a shared backing
// array (Buffer.Slice) cannot do. sliceLen == 0 or >= budget yields a
// single array. With shards > 1 the generation splits across pool
// workers at slice-aligned boundaries, each worker skimming its prefix
// and filling its own slice arrays (no copies, no channel handoff).
// The concatenated arrays are byte-identical to Record at any
// (sliceLen, shards) combination: payloads are pure functions of the
// seed.
//
// ckptEvery > 0 additionally captures payload checkpoints at that
// spacing (first safe point at or after each multiple; see
// checkpoint.go), returned sorted by capture index. The capture rule
// is a pure function of the instruction index, so the checkpoint list
// is identical at any shard count; a payload that never registers via
// Emitter.Checkpointable yields an empty list (the fallback consumers
// detect). ckptEvery == 0 disables capture.
func RecordSlices(seed, budget uint64, payload Payload, sliceLen uint64, pool *engine.Pool, shards int, ckptEvery uint64) ([][]trace.Inst, []Checkpoint) {
	if budget == 0 {
		return nil, nil
	}
	if sliceLen == 0 || sliceLen > budget {
		sliceLen = budget
	}
	nSlices := int((budget + sliceLen - 1) / sliceLen)
	// capOf is the exact capacity of slice si; windows never reallocate.
	capOf := func(si int) uint64 {
		lo := uint64(si) * sliceLen
		hi := lo + sliceLen
		if hi > budget {
			hi = budget
		}
		return hi - lo
	}
	mkWindows := func(s0, s1 int) [][]trace.Inst {
		ws := make([][]trace.Inst, 0, s1-s0)
		for si := s0; si < s1; si++ {
			ws = append(ws, make([]trace.Inst, 0, capOf(si)))
		}
		return ws
	}

	out := make([][]trace.Inst, nSlices)
	var cks []Checkpoint
	if pool == nil {
		pool = engine.New(0)
	}
	if shards > nSlices {
		shards = nSlices
	}
	if shards <= 1 {
		filled, c, _ := recordSegments(seed, budget, payload, 0, budget, mkWindows(0, nSlices), ckptEvery, nil)
		copy(out, filled)
		cks = c
	} else {
		// Shard boundaries align to slice boundaries so every window
		// belongs to exactly one worker.
		per := (nSlices + shards - 1) / shards
		parts := engine.Map(pool, shards, func(w int) []Checkpoint {
			s0 := w * per
			s1 := s0 + per
			if s1 > nSlices {
				s1 = nSlices
			}
			if s0 >= s1 {
				return nil
			}
			lo := uint64(s0) * sliceLen
			hi := uint64(s1) * sliceLen
			if hi > budget {
				hi = budget
			}
			filled, c, _ := recordSegments(seed, budget, payload, lo, hi, mkWindows(s0, s1), ckptEvery, nil)
			copy(out[s0:s1], filled)
			return c
		})
		// Workers capture within disjoint ascending ranges under the
		// same index-driven rule, so concatenation in worker order is
		// the sequential capture list.
		for _, p := range parts {
			cks = append(cks, p...)
		}
	}
	// A payload that returns before exhausting the budget ends every
	// replica at the same deterministic point: the first short slice is
	// the end of the trace, and everything after it is empty.
	for si, sl := range out {
		if uint64(len(sl)) < capOf(si) {
			if len(sl) == 0 {
				return out[:si], cks
			}
			return out[:si+1], cks
		}
	}
	return out, cks
}
