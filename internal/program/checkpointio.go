// Checkpoint serialization: the wire form of the slice-local payload
// contract, used by the persistent trace store (DESIGN.md §11) to carry
// a recording's checkpoint list across process restarts. A checkpoint
// is a pure function of (seed, budget, payload, capture index), so the
// serialized list is byte-stable across runs and safe to content-key.
package program

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrBadCheckpointData is returned (wrapped) when a serialized
// checkpoint list cannot be decoded: truncated input, or a length
// prefix pointing past the end. Callers treat the whole blob as
// unusable and fall back to checkpoint-free operation.
var ErrBadCheckpointData = errors.New("program: malformed serialized checkpoint list")

// decodeCkptMax bounds the element counts a decoder will allocate for
// before reading them, so a corrupt length prefix cannot demand
// gigabytes. Real lists are far smaller: one checkpoint per cache
// slice, a few dozen words of payload state each.
const decodeCkptMax = 1 << 20

// AppendCheckpoints appends the varint serialization of cks to b and
// returns the extended slice. The encoding is self-delimiting:
// DecodeCheckpoints reads exactly the bytes AppendCheckpoints wrote.
func AppendCheckpoints(b []byte, cks []Checkpoint) []byte {
	b = binary.AppendUvarint(b, uint64(len(cks)))
	for i := range cks {
		ck := &cks[i]
		b = binary.AppendUvarint(b, ck.At)
		for _, w := range ck.Rng {
			b = binary.AppendUvarint(b, w)
		}
		b = binary.AppendUvarint(b, ck.CurIP)
		b = binary.AppendUvarint(b, uint64(ck.Scratch))
		b = binary.AppendUvarint(b, uint64(len(ck.Callers)))
		for _, w := range ck.Callers {
			b = binary.AppendUvarint(b, w)
		}
		b = binary.AppendUvarint(b, uint64(len(ck.Payload)))
		for _, w := range ck.Payload {
			b = binary.AppendUvarint(b, w)
		}
	}
	return b
}

// DecodeCheckpoints decodes a list serialized by AppendCheckpoints from
// the front of b, returning the list and the number of bytes consumed.
// Any truncation or oversized length prefix fails with a typed error
// wrapping ErrBadCheckpointData; a partially decoded list is never
// returned.
func DecodeCheckpoints(b []byte) ([]Checkpoint, int, error) {
	off := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return 0, fmt.Errorf("%w: truncated at byte %d", ErrBadCheckpointData, off)
		}
		off += n
		return v, nil
	}
	count, err := next()
	if err != nil {
		return nil, 0, err
	}
	if count > decodeCkptMax {
		return nil, 0, fmt.Errorf("%w: implausible checkpoint count %d", ErrBadCheckpointData, count)
	}
	// Grow the list as elements decode rather than trusting the count
	// for a large up-front allocation (the count is validated above,
	// but each element still has to parse before it costs memory).
	cks := make([]Checkpoint, 0, min(count, 4096))
	for i := uint64(0); i < count; i++ {
		var ck Checkpoint
		if ck.At, err = next(); err != nil {
			return nil, 0, err
		}
		for j := range ck.Rng {
			if ck.Rng[j], err = next(); err != nil {
				return nil, 0, err
			}
		}
		if ck.CurIP, err = next(); err != nil {
			return nil, 0, err
		}
		scratch, err := next()
		if err != nil {
			return nil, 0, err
		}
		if scratch > 0xFF {
			return nil, 0, fmt.Errorf("%w: scratch register %d out of range", ErrBadCheckpointData, scratch)
		}
		ck.Scratch = uint8(scratch)
		nCallers, err := next()
		if err != nil {
			return nil, 0, err
		}
		if nCallers > decodeCkptMax {
			return nil, 0, fmt.Errorf("%w: implausible caller count %d", ErrBadCheckpointData, nCallers)
		}
		ck.Callers = make([]uint64, nCallers)
		for j := range ck.Callers {
			if ck.Callers[j], err = next(); err != nil {
				return nil, 0, err
			}
		}
		nPayload, err := next()
		if err != nil {
			return nil, 0, err
		}
		if nPayload > decodeCkptMax {
			return nil, 0, fmt.Errorf("%w: implausible payload length %d", ErrBadCheckpointData, nPayload)
		}
		ck.Payload = make([]uint64, nPayload)
		for j := range ck.Payload {
			if ck.Payload[j], err = next(); err != nil {
				return nil, 0, err
			}
		}
		cks = append(cks, ck)
	}
	return cks, off, nil
}
