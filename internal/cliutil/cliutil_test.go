package cliutil

import (
	"flag"
	"strings"
	"testing"
)

// ok is a valid baseline every case below perturbs.
func ok() RunFlags {
	return RunFlags{Budget: 1000, SliceLen: 100, Parallel: 0, RecShards: 0, CacheEnabled: true}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := ok().Validate(); err != nil {
		t.Fatalf("valid flags rejected: %v", err)
	}
	// The CI determinism matrix's shapes must stay valid.
	for _, f := range []RunFlags{
		{Budget: 400_000, SliceLen: 200_000, Parallel: 4, RecShards: 4, CacheEnabled: true},
		{Budget: 400_000, SliceLen: 200_000, Parallel: 1, RecShards: 1},
		{Budget: 400_000, SliceLen: 200_000, Parallel: 0, RecShards: 8}, // NumCPU pool: machine-dependent, never an error
	} {
		if err := f.Validate(); err != nil {
			t.Errorf("flags %+v rejected: %v", f, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*RunFlags)
		want string // substring of the error
	}{
		{"zero budget", func(f *RunFlags) { f.Budget = 0 }, "-budget"},
		{"zero slice", func(f *RunFlags) { f.SliceLen = 0 }, "-slice"},
		{"negative parallel", func(f *RunFlags) { f.Parallel = -1 }, "-parallel"},
		{"negative recshards", func(f *RunFlags) { f.RecShards = -2 }, "-recshards"},
		{"recshards oversubscribe", func(f *RunFlags) { f.Parallel, f.RecShards = 2, 4 }, "-recshards 4 exceeds"},
		{"cacheslice without cache", func(f *RunFlags) { f.CacheEnabled, f.CacheSliceSet = false, true }, "-cacheslice"},
		{"ckptslice without cache", func(f *RunFlags) { f.CacheEnabled, f.CkptSliceSet = false, true }, "-ckptslice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := ok()
			tc.mut(&f)
			err := f.Validate()
			if err == nil {
				t.Fatalf("flags %+v accepted, want error containing %q", f, tc.want)
			}
			//lint:ignore errcontract the table asserts the human-readable message names the offending flag; there is no sentinel to discriminate
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRecshardsOversubscribeOnlyWithExplicitParallel(t *testing.T) {
	// -parallel 0 (NumCPU) must never make -recshards an error: the
	// check would otherwise depend on the machine it runs on.
	f := ok()
	f.Parallel, f.RecShards = 0, 64
	if err := f.Validate(); err != nil {
		t.Fatalf("recshards with NumCPU pool rejected: %v", err)
	}
}

func TestProvided(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.Uint64("cacheslice", 42, "")
	fs.Uint64("ckptslice", 7, "")
	if err := fs.Parse([]string{"-cacheslice", "10"}); err != nil {
		t.Fatal(err)
	}
	if !Provided(fs, "cacheslice") {
		t.Error("explicitly set flag reported as default")
	}
	if Provided(fs, "ckptslice") {
		t.Error("defaulted flag reported as set")
	}
	if Provided(fs, "nonexistent") {
		t.Error("unknown flag reported as set")
	}
}
