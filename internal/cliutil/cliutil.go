// Package cliutil holds the flag plumbing cmd/experiments and
// cmd/bpsim share: validation of the recording/caching knobs whose
// silent misbehaviour used to be easy to trigger — -cacheslice or
// -ckptslice without an enabled trace cache (silently ignored), zero
// budgets or slice lengths (downstream division panics), and
// -recshards oversubscribing an explicit -parallel worker count.
package cliutil

import (
	"flag"
	"fmt"
	"time"
)

// RunFlags are the effective (post-default, post-override) values of
// the shared recording/caching knobs of one CLI invocation, plus
// whether the cache-geometry flags were explicitly provided (defaults
// never error; explicit flags that would be ignored do).
type RunFlags struct {
	Budget    uint64 // instruction budget of the run
	SliceLen  uint64 // screening/phase slice length
	Parallel  int    // engine workers (0 = NumCPU)
	RecShards int    // sharded-recording worker count (<= 1 = sequential)

	CacheEnabled  bool // a trace cache will exist in this invocation
	CacheSliceSet bool // -cacheslice explicitly provided
	CkptSliceSet  bool // -ckptslice explicitly provided

	StoreSet    bool  // -tracestore explicitly provided (persistent tier on)
	StoreCap    int64 // -tracestorecap value in MiB (0 = unbounded)
	StoreCapSet bool  // -tracestorecap explicitly provided

	Deadline    time.Duration // -deadline value (whole-invocation bound)
	DeadlineSet bool          // -deadline explicitly provided
}

// Validate rejects flag combinations that would silently misbehave.
// It returns the first problem found, phrased for the terminal.
func (f RunFlags) Validate() error {
	if f.Budget == 0 {
		return fmt.Errorf("-budget must be > 0")
	}
	if f.SliceLen == 0 {
		return fmt.Errorf("-slice must be > 0 (slice-keyed screening divides by it)")
	}
	if f.Parallel < 0 {
		return fmt.Errorf("-parallel must be >= 0 (0 selects NumCPU)")
	}
	if f.RecShards < 0 {
		return fmt.Errorf("-recshards must be >= 0")
	}
	if f.RecShards > 1 && f.Parallel > 0 && f.RecShards > f.Parallel {
		return fmt.Errorf("-recshards %d exceeds the -parallel %d worker pool: shards would queue, not run concurrently; raise -parallel or lower -recshards",
			f.RecShards, f.Parallel)
	}
	if f.CacheSliceSet && !f.CacheEnabled {
		return fmt.Errorf("-cacheslice has no effect without an enabled trace cache (enable -tracecache)")
	}
	if f.CkptSliceSet && !f.CacheEnabled {
		return fmt.Errorf("-ckptslice has no effect without an enabled trace cache (checkpoints live in cache headers; enable -tracecache)")
	}
	if f.StoreSet && !f.CacheEnabled {
		return fmt.Errorf("-tracestore has no effect without an enabled trace cache (the store is the cache's disk tier; enable -tracecache)")
	}
	if f.StoreCapSet && !f.StoreSet {
		return fmt.Errorf("-tracestorecap has no effect without -tracestore")
	}
	if f.StoreCapSet && f.StoreCap < 0 {
		return fmt.Errorf("-tracestorecap must be >= 0 MiB (0 = unbounded)")
	}
	if f.DeadlineSet && f.Deadline <= 0 {
		return fmt.Errorf("-deadline must be > 0 when set (an instantly expired run produces nothing)")
	}
	return nil
}

// Provided reports whether the named flag was explicitly set on the
// command line (as opposed to holding its default). fs == nil checks
// flag.CommandLine; call after flag.Parse.
func Provided(fs *flag.FlagSet, name string) bool {
	if fs == nil {
		fs = flag.CommandLine
	}
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
