package cliutil_test

import (
	"testing"

	"branchlab/internal/cliutil"
)

// FuzzValidateFlags checks Validate against an independent restatement
// of its acceptance rules: for every flag combination the two must
// agree on accept/reject, and Validate must never panic. The seed
// corpus covers each rule's boundary from both sides.
func FuzzValidateFlags(f *testing.F) {
	seed := func(budget, slice uint64, parallel, recshards int, cache, cacheSet, ckptSet bool) {
		f.Add(budget, slice, parallel, recshards, cache, cacheSet, ckptSet)
	}
	seed(30_000_000, 1_000_000, 0, 0, false, false, false) // defaults, valid
	seed(0, 1_000_000, 0, 0, false, false, false)          // zero budget
	seed(30_000_000, 0, 0, 0, false, false, false)         // zero slice
	seed(1, 1, -1, 0, false, false, false)                 // negative parallel
	seed(1, 1, 0, -1, false, false, false)                 // negative recshards
	seed(1, 1, 4, 8, false, false, false)                  // shards oversubscribe pool
	seed(1, 1, 8, 8, false, false, false)                  // shards == pool, valid
	seed(1, 1, 0, 8, false, false, false)                  // shards with NumCPU pool, valid
	seed(1, 1, 1, 1, false, false, false)                  // sequential shard, valid
	seed(1, 1, 0, 0, false, true, false)                   // cacheslice without cache
	seed(1, 1, 0, 0, false, false, true)                   // ckptslice without cache
	seed(1, 1, 0, 0, true, true, true)                     // cache geometry with cache, valid

	f.Fuzz(func(t *testing.T, budget, slice uint64, parallel, recshards int, cache, cacheSet, ckptSet bool) {
		fl := cliutil.RunFlags{
			Budget:        budget,
			SliceLen:      slice,
			Parallel:      parallel,
			RecShards:     recshards,
			CacheEnabled:  cache,
			CacheSliceSet: cacheSet,
			CkptSliceSet:  ckptSet,
		}
		err := fl.Validate()

		wantOK := budget > 0 &&
			slice > 0 &&
			parallel >= 0 &&
			recshards >= 0 &&
			!(recshards > 1 && parallel > 0 && recshards > parallel) &&
			(cache || !cacheSet) &&
			(cache || !ckptSet)
		if gotOK := err == nil; gotOK != wantOK {
			t.Errorf("Validate(%+v) = %v, independent oracle says ok=%v", fl, err, wantOK)
		}
		if err != nil && err.Error() == "" {
			t.Errorf("Validate(%+v) returned an error with no message", fl)
		}
	})
}
