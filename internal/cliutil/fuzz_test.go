package cliutil_test

import (
	"testing"
	"time"

	"branchlab/internal/cliutil"
)

// FuzzValidateFlags checks Validate against an independent restatement
// of its acceptance rules: for every flag combination the two must
// agree on accept/reject, and Validate must never panic. The seed
// corpus covers each rule's boundary from both sides.
func FuzzValidateFlags(f *testing.F) {
	seed := func(budget, slice uint64, parallel, recshards int, cache, cacheSet, ckptSet, storeSet bool, storeCap int64, storeCapSet bool, deadlineNs int64, deadlineSet bool) {
		f.Add(budget, slice, parallel, recshards, cache, cacheSet, ckptSet, storeSet, storeCap, storeCapSet, deadlineNs, deadlineSet)
	}
	seed(30_000_000, 1_000_000, 0, 0, false, false, false, false, 0, false, 0, false) // defaults, valid
	seed(0, 1_000_000, 0, 0, false, false, false, false, 0, false, 0, false)          // zero budget
	seed(30_000_000, 0, 0, 0, false, false, false, false, 0, false, 0, false)         // zero slice
	seed(1, 1, -1, 0, false, false, false, false, 0, false, 0, false)                 // negative parallel
	seed(1, 1, 0, -1, false, false, false, false, 0, false, 0, false)                 // negative recshards
	seed(1, 1, 4, 8, false, false, false, false, 0, false, 0, false)                  // shards oversubscribe pool
	seed(1, 1, 8, 8, false, false, false, false, 0, false, 0, false)                  // shards == pool, valid
	seed(1, 1, 0, 8, false, false, false, false, 0, false, 0, false)                  // shards with NumCPU pool, valid
	seed(1, 1, 1, 1, false, false, false, false, 0, false, 0, false)                  // sequential shard, valid
	seed(1, 1, 0, 0, false, true, false, false, 0, false, 0, false)                   // cacheslice without cache
	seed(1, 1, 0, 0, false, false, true, false, 0, false, 0, false)                   // ckptslice without cache
	seed(1, 1, 0, 0, true, true, true, false, 0, false, 0, false)                     // cache geometry with cache, valid
	seed(1, 1, 0, 0, false, false, false, true, 0, false, 0, false)                   // tracestore without cache
	seed(1, 1, 0, 0, true, false, false, true, 0, false, 0, false)                    // tracestore with cache, valid
	seed(1, 1, 0, 0, true, false, false, false, 256, true, 0, false)                  // storecap without tracestore
	seed(1, 1, 0, 0, true, false, false, true, -1, true, 0, false)                    // negative storecap
	seed(1, 1, 0, 0, true, false, false, true, 0, true, 0, false)                     // zero storecap (unbounded), valid
	seed(1, 1, 0, 0, true, false, false, true, 256, true, 0, false)                   // bounded storecap, valid
	seed(1, 1, 0, 0, false, false, false, false, -7, false, 0, false)                 // unset storecap ignores value
	seed(1, 1, 0, 0, false, false, false, false, 0, false, 0, true)                   // zero deadline, set
	seed(1, 1, 0, 0, false, false, false, false, 0, false, -1, true)                  // negative deadline, set
	seed(1, 1, 0, 0, false, false, false, false, 0, false, 1_000_000_000, true)       // positive deadline, valid
	seed(1, 1, 0, 0, false, false, false, false, 0, false, -5, false)                 // unset deadline ignores value

	f.Fuzz(func(t *testing.T, budget, slice uint64, parallel, recshards int, cache, cacheSet, ckptSet, storeSet bool, storeCap int64, storeCapSet bool, deadlineNs int64, deadlineSet bool) {
		fl := cliutil.RunFlags{
			Budget:        budget,
			SliceLen:      slice,
			Parallel:      parallel,
			RecShards:     recshards,
			CacheEnabled:  cache,
			CacheSliceSet: cacheSet,
			CkptSliceSet:  ckptSet,
			StoreSet:      storeSet,
			StoreCap:      storeCap,
			StoreCapSet:   storeCapSet,
			Deadline:      time.Duration(deadlineNs),
			DeadlineSet:   deadlineSet,
		}
		err := fl.Validate()

		wantOK := budget > 0 &&
			slice > 0 &&
			parallel >= 0 &&
			recshards >= 0 &&
			!(recshards > 1 && parallel > 0 && recshards > parallel) &&
			(cache || !cacheSet) &&
			(cache || !ckptSet) &&
			(cache || !storeSet) &&
			(storeSet || !storeCapSet) &&
			(!storeCapSet || storeCap >= 0) &&
			(!deadlineSet || deadlineNs > 0)
		if gotOK := err == nil; gotOK != wantOK {
			t.Errorf("Validate(%+v) = %v, independent oracle says ok=%v", fl, err, wantOK)
		}
		if err != nil && err.Error() == "" {
			t.Errorf("Validate(%+v) returned an error with no message", fl)
		}
	})
}
