// Package report renders experiment results as aligned ASCII tables,
// simple line charts and CSV, the output layer of cmd/experiments and
// EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; cells beyond the header count are dropped.
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.Headers) {
		cells = cells[:len(t.Headers)]
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", w+2, c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (quotes are not needed
// for the numeric/identifier content we emit).
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Series is one named line of (x, y) points for a Chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart renders one or more series as a rough ASCII line chart, enough to
// see the shape a paper figure plots.
type Chart struct {
	Title  string
	Width  int
	Height int
	Series []Series
}

// NewChart returns an empty chart with default dimensions.
func NewChart(title string) *Chart { return &Chart{Title: title, Width: 64, Height: 16} }

// Add appends a series.
func (c *Chart) Add(name string, x, y []float64) {
	c.Series = append(c.Series, Series{Name: name, X: x, Y: y})
}

// String renders the chart.
func (c *Chart) String() string {
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	if len(c.Series) == 0 {
		return b.String()
	}
	minX, maxX, minY, maxY := inf(), -inf(), inf(), -inf()
	for _, s := range c.Series {
		for i := range s.X {
			minX, maxX = min2(minX, s.X[i]), max2(maxX, s.X[i])
			minY, maxY = min2(minY, s.Y[i]), max2(maxY, s.Y[i])
		}
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, c.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", c.Width))
	}
	marks := "*o+x#@%&"
	for si, s := range c.Series {
		m := marks[si%len(marks)]
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(c.Width-1))
			row := c.Height - 1 - int((s.Y[i]-minY)/(maxY-minY)*float64(c.Height-1))
			grid[row][col] = m
		}
	}
	for r, rowBytes := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%7.3f ", maxY)
		} else if r == c.Height-1 {
			label = fmt.Sprintf("%7.3f ", minY)
		}
		fmt.Fprintf(&b, "%s|%s\n", label, rowBytes)
	}
	fmt.Fprintf(&b, "        %s\n", strings.Repeat("-", c.Width))
	fmt.Fprintf(&b, "        %-10.3g%*s\n", minX, c.Width-10, fmt.Sprintf("%.3g", maxX))
	for si, s := range c.Series {
		fmt.Fprintf(&b, "        %c = %s\n", marks[si%len(marks)], s.Name)
	}
	return b.String()
}

// Artifact bundles one experiment's rendered output.
type Artifact struct {
	ID     string // e.g. "fig1", "table2"
	Title  string
	Tables []*Table
	Charts []*Chart
	Notes  []string
}

// String renders the artifact.
func (a *Artifact) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "==== %s: %s ====\n", a.ID, a.Title)
	for _, t := range a.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, c := range a.Charts {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	for _, n := range a.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func inf() float64 { return 1e308 }
func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
