package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tab := NewTable("title", "name", "value")
	tab.AddRow("alpha", "1")
	tab.AddRow("beta-long-name", "2.5")
	s := tab.String()
	if !strings.Contains(s, "title") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), s)
	}
	// Columns must align: "value" header starts at the same offset as
	// row values.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "1") {
		t.Errorf("columns misaligned:\n%s", s)
	}
}

func TestTableExtraCellsDropped(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.AddRow("1", "2", "3", "4")
	if len(tab.Rows[0]) != 2 {
		t.Errorf("extra cells kept: %v", tab.Rows[0])
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "x", "y")
	tab.AddRow("1", "2")
	csv := tab.CSV()
	if csv != "x,y\n1,2\n" {
		t.Errorf("CSV = %q", csv)
	}
}

func TestChartRendering(t *testing.T) {
	c := NewChart("growth")
	c.Add("linear", []float64{1, 2, 3, 4}, []float64{1, 2, 3, 4})
	c.Add("flat", []float64{1, 2, 3, 4}, []float64{2, 2, 2, 2})
	s := c.String()
	if !strings.Contains(s, "growth") || !strings.Contains(s, "* = linear") {
		t.Errorf("chart incomplete:\n%s", s)
	}
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Error("series marks missing")
	}
}

func TestChartDegenerate(t *testing.T) {
	// Single point and constant series must not divide by zero.
	c := NewChart("one")
	c.Add("p", []float64{5}, []float64{7})
	if c.String() == "" {
		t.Error("empty render")
	}
	empty := NewChart("none")
	if !strings.Contains(empty.String(), "none") {
		t.Error("empty chart should still print its title")
	}
}

func TestArtifactString(t *testing.T) {
	a := &Artifact{ID: "figX", Title: "demo"}
	tab := NewTable("", "k")
	tab.AddRow("v")
	a.Tables = append(a.Tables, tab)
	a.Notes = append(a.Notes, "a note")
	s := a.String()
	for _, want := range []string{"figX", "demo", "k", "v", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("artifact missing %q:\n%s", want, s)
		}
	}
}
