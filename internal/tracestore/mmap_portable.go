//go:build !unix

package tracestore

import (
	"io"
	"os"
)

// mmapSupported reports whether this build maps slice files instead of
// reading them; it only selects which Stats counter a pin increments.
const mmapSupported = false

// mapFile is the portability fallback for hosts without syscall.Mmap:
// the file is read whole into a heap buffer. One copy instead of zero,
// identical bytes, identical verification — the rest of the store
// cannot tell the difference (mapped=false skips munmap on Close).
func mapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size == 0 {
		return nil, false, nil
	}
	data = make([]byte, size)
	if _, err := io.ReadFull(f, data); err != nil {
		return nil, false, err
	}
	return data, false, nil
}

// unmapFile releases a mapping produced by mapFile; heap buffers have
// nothing to release.
func unmapFile([]byte) error { return nil }
