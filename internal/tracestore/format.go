// On-disk format of the persistent trace store (DESIGN.md §11).
//
// A stored trace is one directory named by the content hash of its Key
// (workload name, input, budget, slice geometry, checkpoint spacing,
// format version, machine layout), holding:
//
//	header        the trace header: identity echo, recorded extent,
//	              serialized checkpoint list, trailing checksum
//	s<idx>        one file per slice: fixed 64-byte checksummed header
//	              followed by the raw instruction array
//
// Slice payloads are the in-memory representation of []trace.Inst
// dumped verbatim, which is what makes mmap serving zero-copy: the
// mapped payload *is* the slice array, no decode step. That makes the
// format machine-specific (endianness, field layout, padding), so every
// file carries a layout signature — the checksum of a fixed sentinel
// Inst's raw bytes — and a file written by an incompatible machine or
// an older format version is rejected exactly like a corrupt one:
// typed error, fall back to re-recording. Wrong bytes are never served.
//
// Integrity: every header field region and every payload carries an
// FNV-1a checksum. A torn write, a truncated file, or a flipped bit
// fails verification; the reader deletes the file and reports a typed
// reject so the caller re-records the content (byte-identically, since
// recording is deterministic).
package tracestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"unsafe"

	"branchlab/internal/program"
	"branchlab/internal/trace"
)

// FormatVersion is the on-disk format version. It participates in the
// content hash, so bumping it makes every existing store directory
// invisible (a cold miss) rather than a decode hazard; it is also
// echoed inside every file and checked on read, so a file renamed
// across versions still rejects cleanly.
const FormatVersion = 1

// Magic numbers of the two file kinds.
var (
	headerMagic = [4]byte{'B', 'L', 'S', 'H'}
	sliceMagic  = [4]byte{'B', 'L', 'S', 'S'}
)

// sliceHeaderSize is the fixed slice-file header length. The payload
// starts at this offset; it is a multiple of the instruction alignment,
// and mmap bases are page-aligned, so the mapped payload is always
// properly aligned for the zero-copy []trace.Inst cast.
const sliceHeaderSize = 64

// instBytes is the on-disk (== in-memory) size of one instruction.
const instBytes = uint64(unsafe.Sizeof(trace.Inst{}))

// Typed reject errors. ErrNotFound is the clean miss (no file);
// everything else wraps ErrReject — the "this file cannot be trusted"
// class that deletes the file and falls back to re-recording.
var (
	// ErrNotFound reports a clean miss: the store has no file for the
	// requested content.
	ErrNotFound = errors.New("tracestore: not in store")
	// ErrReject is the sentinel wrapped by every integrity failure:
	// bad magic, version or layout mismatch, truncation, checksum
	// failure, or an identity echo that does not match the request.
	// The offending file is removed; the caller re-records.
	ErrReject = errors.New("tracestore: stored file rejected")
)

// fnv1a is the checksum used throughout the format: cheap, stdlib-free
// of allocation, and ample for corruption detection (integrity, not
// authentication — the store directory is as trusted as the binary).
func fnv1a(b []byte) uint64 {
	h := uint64(1469598103934665603)
	for _, c := range b {
		h = (h ^ uint64(c)) * 1099511628211
	}
	return h
}

// layoutSig fingerprints this machine's in-memory trace.Inst layout:
// the FNV-1a of a sentinel instruction's raw bytes, folded with the
// struct size. Two builds agree on the signature exactly when a dumped
// instruction array from one is readable by the other.
func layoutSig() uint64 {
	var probe trace.Inst // zeroed whole, padding included
	probe.IP = 0x0123456789abcdef
	probe.Target = 0x1122334455667788
	probe.MemAddr = 0x99aabbccddeeff00
	probe.DstValue = 0xfedcba9876543210
	probe.Kind = trace.KindCondBr
	probe.Taken = true
	probe.DstReg = 0xAA
	probe.SrcRegs = [2]uint8{0xBB, 0xCC}
	raw := unsafe.Slice((*byte)(unsafe.Pointer(&probe)), unsafe.Sizeof(probe))
	size := instBytes // wrap-around multiply; as a const expr it overflows
	return fnv1a(raw) ^ (size * 0x9e3779b97f4a7c15)
}

// Key identifies one storable recording by content: everything the
// deterministic generation pipeline is a function of. Two processes
// (or two CI jobs) that would record byte-identical slice arrays
// compute equal keys; any divergence in geometry or spacing lands in a
// different directory instead of serving mismatched bytes.
type Key struct {
	Name      string // workload name
	Input     int    // application input index
	Budget    uint64 // instruction budget of the recording
	SliceLen  uint64 // slice granularity the arrays were recorded at
	CkptEvery uint64 // checkpoint capture spacing (0 = none)
}

// hash returns the content-address of k: the FNV-1a of its canonical
// encoding, format version and machine layout folded in, rendered as
// 16 hex digits (the store directory name).
func (k Key) hash() string {
	b := make([]byte, 0, 64)
	b = binary.AppendUvarint(b, FormatVersion)
	b = binary.AppendUvarint(b, layoutSig())
	b = binary.AppendUvarint(b, uint64(len(k.Name)))
	b = append(b, k.Name...)
	b = binary.AppendUvarint(b, uint64(k.Input))
	b = binary.AppendUvarint(b, k.Budget)
	b = binary.AppendUvarint(b, k.SliceLen)
	b = binary.AppendUvarint(b, k.CkptEvery)
	return fmt.Sprintf("%016x", fnv1a(b))
}

// appendKey appends k's identity echo (the fields, not the hash) for
// embedding in the header file, so a hash collision or a misplaced
// file is detected by comparison rather than trusted.
func appendKey(b []byte, k Key) []byte {
	b = binary.AppendUvarint(b, uint64(len(k.Name)))
	b = append(b, k.Name...)
	b = binary.AppendUvarint(b, uint64(k.Input))
	b = binary.AppendUvarint(b, k.Budget)
	b = binary.AppendUvarint(b, k.SliceLen)
	b = binary.AppendUvarint(b, k.CkptEvery)
	return b
}

// reject builds a typed integrity error for one file.
func reject(path, why string) error {
	return fmt.Errorf("%w: %s: %s", ErrReject, path, why)
}

// encodeHeader serializes a trace header file: identity echo, recorded
// extent, checkpoint list, trailing checksum over everything before it.
func encodeHeader(k Key, total uint64, ckpts []program.Checkpoint) []byte {
	b := make([]byte, 0, 256)
	b = append(b, headerMagic[:]...)
	b = binary.AppendUvarint(b, FormatVersion)
	b = binary.AppendUvarint(b, layoutSig())
	b = appendKey(b, k)
	b = binary.AppendUvarint(b, total)
	b = program.AppendCheckpoints(b, ckpts)
	var sum [8]byte
	binary.LittleEndian.PutUint64(sum[:], fnv1a(b))
	return append(b, sum[:]...)
}

// decodeHeader parses and verifies a header file against the requested
// key, returning the recorded extent and checkpoint list. Every
// mismatch — magic, version, layout, identity, truncation, checksum —
// is a typed reject.
//
//storegate:gate
func decodeHeader(path string, k Key, b []byte) (total uint64, ckpts []program.Checkpoint, err error) {
	if len(b) < len(headerMagic)+8 {
		return 0, nil, reject(path, "truncated header file")
	}
	body, sum := b[:len(b)-8], binary.LittleEndian.Uint64(b[len(b)-8:])
	if fnv1a(body) != sum {
		return 0, nil, reject(path, "header checksum mismatch")
	}
	if [4]byte(body[:4]) != headerMagic {
		return 0, nil, reject(path, "bad header magic")
	}
	off := 4
	next := func() (uint64, bool) {
		v, n := binary.Uvarint(body[off:])
		if n <= 0 {
			return 0, false
		}
		off += n
		return v, true
	}
	version, ok := next()
	if !ok || version != FormatVersion {
		return 0, nil, reject(path, fmt.Sprintf("format version %d (want %d)", version, FormatVersion))
	}
	sig, ok := next()
	if !ok || sig != layoutSig() {
		return 0, nil, reject(path, "machine layout mismatch")
	}
	nameLen, ok := next()
	if !ok || uint64(len(body)-off) < nameLen {
		return 0, nil, reject(path, "truncated identity echo")
	}
	name := string(body[off : off+int(nameLen)])
	off += int(nameLen)
	input, ok1 := next()
	budget, ok2 := next()
	sliceLen, ok3 := next()
	ckptEvery, ok4 := next()
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return 0, nil, reject(path, "truncated identity echo")
	}
	if name != k.Name || int(input) != k.Input || budget != k.Budget ||
		sliceLen != k.SliceLen || ckptEvery != k.CkptEvery {
		return 0, nil, reject(path, "identity echo does not match the requested key")
	}
	total, ok = next()
	if !ok {
		return 0, nil, reject(path, "truncated extent")
	}
	if total > k.Budget {
		return 0, nil, reject(path, fmt.Sprintf("recorded extent %d exceeds budget %d", total, k.Budget))
	}
	ckpts, n, cerr := program.DecodeCheckpoints(body[off:])
	if cerr != nil {
		return 0, nil, reject(path, cerr.Error())
	}
	if off+n != len(body) {
		return 0, nil, reject(path, "trailing bytes after checkpoint list")
	}
	return total, ckpts, nil
}

// encodeSliceHeader fills the fixed 64-byte slice-file header.
//
//	off  0  magic "BLSS"
//	off  4  format version (u32)
//	off  8  machine layout signature (u64)
//	off 16  slice index (u64)
//	off 24  instruction count (u64)
//	off 32  instruction size in bytes (u64)
//	off 40  payload FNV-1a (u64)
//	off 48  key-hash prefix (u64) — binds the slice to its trace
//	off 56  header FNV-1a over bytes [0,56) (u64)
//	off 64  payload: count raw instructions
func encodeSliceHeader(keyHash64 uint64, idx int, count uint64, payloadSum uint64) [sliceHeaderSize]byte {
	var h [sliceHeaderSize]byte
	copy(h[0:4], sliceMagic[:])
	binary.LittleEndian.PutUint32(h[4:8], FormatVersion)
	binary.LittleEndian.PutUint64(h[8:16], layoutSig())
	binary.LittleEndian.PutUint64(h[16:24], uint64(idx))
	binary.LittleEndian.PutUint64(h[24:32], count)
	binary.LittleEndian.PutUint64(h[32:40], instBytes)
	binary.LittleEndian.PutUint64(h[40:48], payloadSum)
	binary.LittleEndian.PutUint64(h[48:56], keyHash64)
	binary.LittleEndian.PutUint64(h[56:64], fnv1a(h[:56]))
	return h
}

// verifySliceFile checks a mapped (or read) slice file end to end:
// header integrity, identity, and the payload checksum — the full
// never-wrong-bytes gate. wantCount is the instruction count the
// caller's trace geometry demands of this slice.
func verifySliceFile(path string, data []byte, keyHash64 uint64, idx int, wantCount uint64) error {
	if len(data) < sliceHeaderSize {
		return reject(path, "truncated slice header")
	}
	h := data[:sliceHeaderSize]
	if fnv1a(h[:56]) != binary.LittleEndian.Uint64(h[56:64]) {
		return reject(path, "slice header checksum mismatch")
	}
	if [4]byte(h[0:4]) != sliceMagic {
		return reject(path, "bad slice magic")
	}
	if v := binary.LittleEndian.Uint32(h[4:8]); v != FormatVersion {
		return reject(path, fmt.Sprintf("format version %d (want %d)", v, FormatVersion))
	}
	if binary.LittleEndian.Uint64(h[8:16]) != layoutSig() {
		return reject(path, "machine layout mismatch")
	}
	if got := binary.LittleEndian.Uint64(h[16:24]); got != uint64(idx) {
		return reject(path, fmt.Sprintf("slice index %d (want %d)", got, idx))
	}
	count := binary.LittleEndian.Uint64(h[24:32])
	if count != wantCount {
		return reject(path, fmt.Sprintf("instruction count %d (want %d)", count, wantCount))
	}
	if binary.LittleEndian.Uint64(h[32:40]) != instBytes {
		return reject(path, "instruction size mismatch")
	}
	if binary.LittleEndian.Uint64(h[48:56]) != keyHash64 {
		return reject(path, "slice belongs to a different trace")
	}
	payload := data[sliceHeaderSize:]
	if uint64(len(payload)) != count*instBytes {
		return reject(path, fmt.Sprintf("payload is %d bytes (want %d)", len(payload), count*instBytes))
	}
	if fnv1a(payload) != binary.LittleEndian.Uint64(h[40:48]) {
		return reject(path, "payload checksum mismatch")
	}
	return nil
}

// payloadBytes views insts' backing memory as raw bytes — the zero-copy
// write path. The view aliases live cache data; it is only ever read.
func payloadBytes(insts []trace.Inst) []byte {
	if len(insts) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&insts[0])), uintptr(len(insts))*unsafe.Sizeof(trace.Inst{}))
}

// payloadInsts casts a verified payload back to the instruction array.
// The mmap path serves the cast zero-copy (the payload offset keeps the
// required alignment); a misaligned buffer — possible only on the
// portable read fallback — copies once into a fresh aligned array.
func payloadInsts(payload []byte, count uint64) []trace.Inst {
	if count == 0 {
		return []trace.Inst{}
	}
	if uintptr(unsafe.Pointer(&payload[0]))%unsafe.Alignof(trace.Inst{}) == 0 {
		return unsafe.Slice((*trace.Inst)(unsafe.Pointer(&payload[0])), count)
	}
	out := make([]trace.Inst, count)
	copy(payloadBytes(out), payload)
	return out
}

// keyHash64 is the numeric form of Key.hash embedded in slice files.
func (k Key) hash64() uint64 {
	var v uint64
	_, err := fmt.Sscanf(k.hash(), "%016x", &v)
	if err != nil {
		// hash() always renders 16 hex digits; unreachable.
		//lint:ignore errcontract the Sscanf input is hash()'s own fixed-width output, so this branch cannot be reached by any caller input
		panic(err)
	}
	return v
}
