//go:build faultinject

package tracestore

import (
	"errors"
	"testing"

	"branchlab/internal/faultinject"
)

// findFailSeed returns a seed arming pt as a Fail point with a trigger
// no later than maxTrigger invocations, plus that trigger count.
func findFailSeed(t *testing.T, pt faultinject.Point, maxTrigger uint64) (seed, trigger uint64) {
	t.Helper()
	defer faultinject.Deactivate()
	for s := uint64(0); s < 4096; s++ {
		if err := faultinject.Activate(s); err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= maxTrigger; i++ {
			if faultinject.Fail(pt) != nil {
				return s, i
			}
		}
	}
	t.Fatalf("no seed in [0,4096) fires %s within %d hits", pt, maxTrigger)
	return 0, 0
}

// findChaosSeed returns a seed whose plan turns on the pt chaos point
// from its very first invocation.
func findChaosSeed(t *testing.T, pt faultinject.Point) uint64 {
	t.Helper()
	defer faultinject.Deactivate()
	for s := uint64(0); s < 4096; s++ {
		if err := faultinject.Activate(s); err != nil {
			t.Fatal(err)
		}
		if faultinject.Chaos(pt) {
			return s
		}
	}
	t.Fatalf("no seed in [0,4096) enables chaos at %s on the first hit", pt)
	return 0
}

// TestStoreWriteFaultLeavesNoFile: an injected write fault drops the
// write cleanly — no partial file, a typed error, and the very next
// write of the same content succeeds.
func TestStoreWriteFaultLeavesNoFile(t *testing.T) {
	seed, trigger := findFailSeed(t, faultinject.StoreWrite, 32)
	if err := faultinject.Activate(seed); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Deactivate()

	s := mustOpen(t, t.TempDir(), 0)
	insts := testInsts(64, 1)
	var failed *faultinject.Error
	for i := uint64(0); i <= trigger; i++ {
		k := testKey()
		k.Input = int(i)
		err := s.WriteSlice(k, 0, insts)
		if err == nil {
			continue
		}
		if !errors.As(err, &failed) || failed.Point != faultinject.StoreWrite {
			t.Fatalf("write failed with %v, want the injected store fault", err)
		}
		// The faulted write must have left nothing: a pin is a clean
		// miss, and a retry persists and then serves.
		if _, perr := s.PinSlice(k, 0, 64); !errors.Is(perr, ErrNotFound) {
			t.Fatalf("faulted write left something servable: %v", perr)
		}
		if werr := s.WriteSlice(k, 0, insts); werr != nil {
			t.Fatalf("retry write after fault: %v", werr)
		}
		p, perr := s.PinSlice(k, 0, 64)
		if perr != nil {
			t.Fatal(perr)
		}
		if !sameInsts(p.PinnedInsts(), insts) {
			t.Fatal("retry after write fault served wrong bytes")
		}
		p.Unpin()
	}
	if failed == nil {
		t.Fatal("injected write fault never fired")
	}
	if st := s.Stats(); st.WriteErrors != 1 {
		t.Fatalf("WriteErrors = %d, want 1", st.WriteErrors)
	}
}

// TestStoreReadFaultIsTypedMiss: an injected read fault fails the pin
// with the typed injected error before any bytes are served; the file
// itself is untouched and serves on the next pin.
func TestStoreReadFaultIsTypedMiss(t *testing.T) {
	seed, trigger := findFailSeed(t, faultinject.StoreRead, 32)
	s := mustOpen(t, t.TempDir(), 0)
	insts := testInsts(64, 2)
	k := testKey()
	// One file per pin below: a pin served from the mapping cache never
	// reaches the read fault point, so each probe must open fresh.
	for i := uint64(0); i <= trigger; i++ {
		if err := s.WriteSlice(k, int(i), insts); err != nil {
			t.Fatal(err)
		}
	}
	if err := faultinject.Activate(seed); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Deactivate()

	var sawFault bool
	for i := uint64(0); i <= trigger; i++ {
		p, err := s.PinSlice(k, int(i), 64)
		if err != nil {
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("pin failed with %v, want the injected fault", err)
			}
			sawFault = true
			continue
		}
		if !sameInsts(p.PinnedInsts(), insts) {
			t.Fatal("pin under read-fault plan served wrong bytes")
		}
		p.Unpin()
	}
	if !sawFault {
		t.Fatal("injected read fault never fired")
	}
	if st := s.Stats(); st.ReadErrors != 1 || st.Rejects != 0 {
		t.Fatalf("stats = %+v, want 1 read error and no rejects", st)
	}
}

// TestStoreCorruptChaosRejectsOnRead is the never-wrong-bytes drill at
// the store layer: the chaos point flips a byte in every slice file as
// it lands on disk (the in-memory array stays pristine), and a fresh
// store over the same directory must checksum-reject the file rather
// than serve it.
func TestStoreCorruptChaosRejectsOnRead(t *testing.T) {
	seed := findChaosSeed(t, faultinject.StoreCorrupt)
	if err := faultinject.Activate(seed); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Deactivate()

	dir := t.TempDir()
	insts := testInsts(128, 3)
	k := testKey()
	s := mustOpen(t, dir, 0)
	if err := s.WriteSlice(k, 0, insts); err != nil {
		t.Fatal(err)
	}
	// The write corrupted the file, not the array.
	if !sameInsts(insts, testInsts(128, 3)) {
		t.Fatal("chaos corrupted the in-memory instruction array")
	}
	s.Close()

	s2 := mustOpen(t, dir, 0)
	if _, err := s2.PinSlice(k, 0, 128); !errors.Is(err, ErrReject) {
		t.Fatalf("corrupted slice served: %v", err)
	}
	if st := s2.Stats(); st.Rejects != 1 {
		t.Fatalf("rejects = %d, want 1", st.Rejects)
	}
}
