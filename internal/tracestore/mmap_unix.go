//go:build unix

package tracestore

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build maps slice files instead of
// reading them; it only selects which Stats counter a pin increments.
const mmapSupported = true

// mapFile loads a slice file for zero-copy serving: the whole file is
// mapped read-only and shared, so the returned bytes alias the page
// cache and cost no copy. The mapping stays valid until munmap — the
// store holds every mapping until Close, which is what lets pinned
// slices outlive RAM-tier eviction (DESIGN.md §11).
func mapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size == 0 {
		return nil, false, nil
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// unmapFile releases a mapping produced by mapFile.
func unmapFile(data []byte) error {
	if data == nil {
		return nil
	}
	return syscall.Munmap(data)
}
