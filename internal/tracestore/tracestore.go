// Package tracestore is the persistent, content-addressed on-disk tier
// beneath the RAM slice cache (DESIGN.md §11): recorded slices and
// checkpoint-bearing trace headers land in a directory store keyed by
// the content hash of what generated them, survive process restarts,
// and are served back zero-copy via mmap into the replay machinery.
//
// The store is an exactness-preserving cache, never an authority: every
// read re-verifies checksums, identity echoes, format version and
// machine layout, and anything that fails — torn write, flipped bit,
// stale version, foreign file — is deleted and reported as a typed
// reject so the caller re-records the content. Recording is
// deterministic, so the fallback is byte-identical to the stored bytes
// ever being served; the store can therefore be shared between CI jobs,
// capped, corrupted, or wiped without any run's artifacts changing.
//
// Concurrency: all methods are safe for concurrent use. Mappings are
// cached per slice file and held until Close, so a pinned slice stays
// valid across both RAM-tier eviction and disk-tier (cap) eviction of
// its backing file — an unlinked mapping remains readable. Close
// invalidates every pin; callers close the store only after all
// replays using it have completed.
package tracestore

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"branchlab/internal/faultinject"
	"branchlab/internal/program"
	"branchlab/internal/report"
	"branchlab/internal/trace"
)

// Store is one on-disk trace store rooted at a directory. The zero
// value is not usable; construct with Open. A nil *Store is valid
// everywhere and stores nothing (every read misses, every write is
// dropped), so callers thread it unconditionally.
type Store struct {
	dir      string
	maxBytes int64 // disk cap over payload files (0 = unbounded)

	mu       sync.Mutex
	dirBytes map[string]int64    // per-trace-directory byte totals
	dirOrder []string            // LRU over trace dirs: front = coldest
	maps     map[string]*mapping // verified mappings, keyed by file path
	stats    Stats
}

// mapping is one loaded slice file: the raw bytes (mmap'd or, on the
// portable fallback, heap-read) and the verified instruction view.
type mapping struct {
	raw    []byte
	mapped bool // raw came from mmap and needs munmap at Close
	insts  []trace.Inst
}

// Stats are the store's monotonic counters (plus point-in-time
// occupancy). Retrieved with Store.Stats; rendered with Table/String.
type Stats struct {
	HeaderHits   uint64 // trace headers served from disk
	HeaderMisses uint64 // header lookups with no stored file
	SliceHits    uint64 // slice pins served from verified stored files
	SliceMisses  uint64 // slice pins with no stored file
	Rejects      uint64 // files that failed verification (deleted)

	HeaderWrites uint64 // header files written
	SliceWrites  uint64 // slice files written
	WriteSkips   uint64 // writes skipped because the file already exists
	WriteErrors  uint64 // writes dropped on error (content stays re-recordable)
	ReadErrors   uint64 // reads failed before verification (treated as misses)

	Traces      int    // trace directories on disk
	BytesOnDisk int64  // bytes across all stored trace directories
	CapBytes    int64  // configured disk cap (0 = unbounded)
	DirsEvicted uint64 // trace directories evicted by the disk cap
	BytesMapped int64  // bytes currently mapped (or heap-resident) for serving
	MmapServing bool   // true when this build serves via mmap (zero-copy)
}

// Table renders the counters as a report table (for stderr diagnostics).
func (s Stats) Table() *report.Table {
	t := report.NewTable("trace store",
		"hdr hits", "hdr misses", "slice hits", "slice misses", "rejects",
		"writes", "skips", "io errors",
		"traces", "MiB on disk", "MiB cap", "evicted", "serving")
	capMiB := "unbounded"
	if s.CapBytes > 0 {
		capMiB = fmt.Sprintf("%.1f", float64(s.CapBytes)/(1<<20))
	}
	serving := "read"
	if s.MmapServing {
		serving = "mmap"
	}
	t.AddRow(
		fmt.Sprintf("%d", s.HeaderHits),
		fmt.Sprintf("%d", s.HeaderMisses),
		fmt.Sprintf("%d", s.SliceHits),
		fmt.Sprintf("%d", s.SliceMisses),
		fmt.Sprintf("%d", s.Rejects),
		fmt.Sprintf("%d", s.HeaderWrites+s.SliceWrites),
		fmt.Sprintf("%d", s.WriteSkips),
		fmt.Sprintf("%d", s.WriteErrors+s.ReadErrors),
		fmt.Sprintf("%d", s.Traces),
		fmt.Sprintf("%.1f", float64(s.BytesOnDisk)/(1<<20)),
		capMiB,
		fmt.Sprintf("%d", s.DirsEvicted),
		serving)
	return t
}

// String is a single-line rendering of the counters.
func (s Stats) String() string {
	return fmt.Sprintf("hdr=%d/%d slice=%d/%d rejects=%d writes=%d+%d skips=%d ioerr=%d/%d traces=%d bytes=%d evicted=%d",
		s.HeaderHits, s.HeaderHits+s.HeaderMisses,
		s.SliceHits, s.SliceHits+s.SliceMisses,
		s.Rejects, s.HeaderWrites, s.SliceWrites, s.WriteSkips,
		s.WriteErrors, s.ReadErrors, s.Traces, s.BytesOnDisk, s.DirsEvicted)
}

// WriteStats writes s's counters table to w — the one rendering both
// CLIs share. A nil store writes nothing.
func WriteStats(w io.Writer, s *Store) {
	if s == nil {
		return
	}
	fmt.Fprint(w, s.Stats().Table().String())
}

// Open opens (creating if needed) the store rooted at dir, holding at
// most maxBytes of stored trace data on disk (0 = unbounded; the cap
// counts file bytes, evicting whole least-recently-used trace
// directories). Existing contents are inventoried in sorted name order,
// so the initial eviction order is a pure function of the directory
// contents — no clocks, no mtimes (the determinism contract bans them).
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes < 0 {
		return nil, fmt.Errorf("tracestore: negative cap %d", maxBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		dirBytes: make(map[string]int64),
		maps:     make(map[string]*mapping),
	}
	s.stats.CapBytes = maxBytes
	s.stats.MmapServing = mmapSupported
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() && len(e.Name()) == 16 {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		var total int64
		files, err := os.ReadDir(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		for _, f := range files {
			if info, err := f.Info(); err == nil {
				total += info.Size()
			}
		}
		s.dirBytes[name] = total
		s.dirOrder = append(s.dirOrder, name)
	}
	s.accountLocked()
	s.evictLocked("")
	return s, nil
}

// Dir returns the store's root directory (for diagnostics).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// Stats returns a snapshot of the counters. A nil store reports zeros.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.accountLocked()
	return s.stats
}

// accountLocked refreshes the occupancy fields from the bookkeeping.
func (s *Store) accountLocked() {
	var total, mapped int64
	for _, b := range s.dirBytes {
		total += b
	}
	for _, m := range s.maps {
		mapped += int64(len(m.raw))
	}
	s.stats.Traces = len(s.dirBytes)
	s.stats.BytesOnDisk = total
	s.stats.BytesMapped = mapped
}

// touchLocked moves a trace directory to the warm end of the eviction
// order, inserting it if new. Recency is in-process access order seeded
// from the sorted inventory — deterministic, clock-free.
func (s *Store) touchLocked(name string) {
	for i, n := range s.dirOrder {
		if n == name {
			s.dirOrder = append(append(s.dirOrder[:i:i], s.dirOrder[i+1:]...), name)
			return
		}
	}
	s.dirOrder = append(s.dirOrder, name)
}

// evictLocked removes least-recently-used trace directories until the
// disk cap is met, never evicting keep (the directory being served or
// written right now). Mappings into evicted files stay valid: the files
// are unlinked, not unmapped, so outstanding pins keep their bytes.
func (s *Store) evictLocked(keep string) {
	if s.maxBytes == 0 {
		return
	}
	total := int64(0)
	for _, b := range s.dirBytes {
		total += b
	}
	for i := 0; total > s.maxBytes && i < len(s.dirOrder); {
		name := s.dirOrder[i]
		if name == keep {
			i++
			continue
		}
		os.RemoveAll(filepath.Join(s.dir, name))
		total -= s.dirBytes[name]
		delete(s.dirBytes, name)
		s.dirOrder = append(s.dirOrder[:i], s.dirOrder[i+1:]...)
		s.stats.DirsEvicted++
	}
}

// tracePath returns the directory holding k's files.
func (s *Store) tracePath(k Key) (dir, name string) {
	name = k.hash()
	return filepath.Join(s.dir, name), name
}

// WriteHeader persists k's trace header: recorded extent and checkpoint
// list. Idempotent (an existing header is left alone — same key, same
// bytes) and non-fatal on error: a failed write only costs a future
// re-record. Safe on a nil store.
func (s *Store) WriteHeader(k Key, total uint64, ckpts []program.Checkpoint) error {
	if s == nil {
		return nil
	}
	dir, name := s.tracePath(k)
	path := filepath.Join(dir, "header")
	s.mu.Lock()
	s.touchLocked(name)
	if _, err := os.Stat(path); err == nil {
		s.stats.WriteSkips++
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if err := faultinject.Fail(faultinject.StoreWrite); err != nil {
		s.noteWriteError()
		return err
	}
	b := encodeHeader(k, total, ckpts)
	if err := s.atomicWrite(dir, path, func(f *os.File) error {
		_, err := f.Write(b)
		return err
	}); err != nil {
		s.noteWriteError()
		return err
	}
	s.mu.Lock()
	s.stats.HeaderWrites++
	s.dirBytes[name] += int64(len(b))
	s.evictLocked(name)
	s.mu.Unlock()
	return nil
}

// ReadHeader loads and verifies k's trace header, returning the
// recorded extent and checkpoint list. ErrNotFound is a clean miss; a
// verification failure deletes the whole trace directory (its identity
// cannot be trusted) and returns a typed reject. Safe on a nil store.
func (s *Store) ReadHeader(k Key) (total uint64, ckpts []program.Checkpoint, err error) {
	if s == nil {
		return 0, nil, ErrNotFound
	}
	dir, name := s.tracePath(k)
	path := filepath.Join(dir, "header")
	if err := faultinject.Fail(faultinject.StoreRead); err != nil {
		s.noteReadError()
		return 0, nil, err
	}
	b, rerr := os.ReadFile(path)
	if rerr != nil {
		s.mu.Lock()
		s.stats.HeaderMisses++
		s.mu.Unlock()
		if errors.Is(rerr, os.ErrNotExist) {
			return 0, nil, ErrNotFound
		}
		s.noteReadError()
		return 0, nil, rerr
	}
	total, ckpts, err = decodeHeader(path, k, b)
	if err != nil {
		s.dropTrace(name)
		return 0, nil, err
	}
	s.mu.Lock()
	s.stats.HeaderHits++
	s.touchLocked(name)
	s.mu.Unlock()
	return total, ckpts, nil
}

// WriteSlice persists slice idx of k's recording. The payload is the
// instruction array's raw bytes (zero-copy on the write side too);
// insts is only read. Idempotent, non-fatal on error, safe on a nil
// store. The StoreCorrupt chaos point flips one payload byte in the
// file being written — never in insts — arming the never-wrong-bytes
// drill: the next process to read the file must reject it.
func (s *Store) WriteSlice(k Key, idx int, insts []trace.Inst) error {
	if s == nil {
		return nil
	}
	dir, name := s.tracePath(k)
	path := filepath.Join(dir, fmt.Sprintf("s%06d", idx))
	s.mu.Lock()
	s.touchLocked(name)
	if _, err := os.Stat(path); err == nil {
		s.stats.WriteSkips++
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if err := faultinject.Fail(faultinject.StoreWrite); err != nil {
		s.noteWriteError()
		return err
	}
	payload := payloadBytes(insts)
	hdr := encodeSliceHeader(k.hash64(), idx, uint64(len(insts)), fnv1a(payload))
	corrupt := len(payload) > 0 && faultinject.Chaos(faultinject.StoreCorrupt)
	err := s.atomicWrite(dir, path, func(f *os.File) error {
		if _, err := f.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := f.Write(payload); err != nil {
			return err
		}
		if corrupt {
			// Flip the first payload byte in the file only; the
			// in-memory array the RAM tier serves is untouched.
			if _, err := f.WriteAt([]byte{payload[0] ^ 0xFF}, sliceHeaderSize); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		s.noteWriteError()
		return err
	}
	s.mu.Lock()
	s.stats.SliceWrites++
	s.dirBytes[name] += int64(len(hdr)) + int64(len(payload))
	s.evictLocked(name)
	s.mu.Unlock()
	return nil
}

// atomicWrite writes a file via a uniquely named temp file in the same
// directory plus rename, so a concurrent writer or a crash can never
// leave a half-written file at path (readers see old, new, or nothing —
// and "nothing" just means re-record).
func (s *Store) atomicWrite(dir, path string, fill func(*os.File) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	f, err := os.CreateTemp(dir, "tmp-*")
	if err != nil {
		return fmt.Errorf("tracestore: %w", err)
	}
	tmp := f.Name()
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("tracestore: %w", err)
	}
	return nil
}

// Pin is one served slice: a verified instruction view over store-owned
// memory. The view stays valid until Store.Close regardless of RAM- or
// disk-tier eviction, but holding instruction slices past Unpin is the
// same bug class as retaining a trace.BlockStream block — the
// blockalias analyzer enforces the discipline statically.
type Pin struct {
	s     *Store
	insts []trace.Inst
}

// PinnedInsts returns the pinned instruction slice. Callers must not
// retain it (or any subslice) past Unpin.
func (p *Pin) PinnedInsts() []trace.Inst { return p.insts }

// Unpin releases the pin. The mapping itself stays cached for future
// pins of the same file; Unpin only ends this caller's right to the
// bytes.
func (p *Pin) Unpin() {
	p.insts = nil
}

// PinSlice serves slice idx of k's recording as a verified zero-copy
// instruction view. wantCount is the instruction count the caller's
// trace geometry requires; any stored file disagreeing with it — or
// failing any integrity check — is deleted and rejected. ErrNotFound
// is a clean miss. Safe on a nil store.
func (s *Store) PinSlice(k Key, idx int, wantCount uint64) (*Pin, error) {
	if s == nil {
		return nil, ErrNotFound
	}
	dir, name := s.tracePath(k)
	path := filepath.Join(dir, fmt.Sprintf("s%06d", idx))

	s.mu.Lock()
	if m, ok := s.maps[path]; ok {
		s.stats.SliceHits++
		s.touchLocked(name)
		s.mu.Unlock()
		//lint:ignore storegate the cached mapping passed verifySliceFile when it entered s.maps below; the taint engine's aliasing over-approximation cannot see that
		return &Pin{s: s, insts: m.insts}, nil
	}
	s.mu.Unlock()

	if err := faultinject.Fail(faultinject.StoreRead); err != nil {
		s.noteReadError()
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		s.mu.Lock()
		s.stats.SliceMisses++
		s.mu.Unlock()
		if errors.Is(err, os.ErrNotExist) {
			return nil, ErrNotFound
		}
		s.noteReadError()
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		s.noteReadError()
		return nil, err
	}
	raw, mapped, err := mapFile(f, info.Size())
	if err != nil {
		s.noteReadError()
		return nil, fmt.Errorf("tracestore: %w", err)
	}
	if err := verifySliceFile(path, raw, k.hash64(), idx, wantCount); err != nil {
		if mapped {
			unmapFile(raw)
		}
		s.rejectFile(path, name, int64(len(raw)))
		return nil, err
	}
	m := &mapping{
		raw:    raw,
		mapped: mapped,
		insts:  payloadInsts(raw[sliceHeaderSize:], wantCount),
	}

	s.mu.Lock()
	if prior, ok := s.maps[path]; ok {
		// Lost a race to another pinner of the same file; both
		// verified the same bytes, keep theirs.
		s.mu.Unlock()
		if m.mapped {
			unmapFile(m.raw)
		}
		m = prior
	} else {
		s.maps[path] = m
		s.mu.Unlock()
	}
	s.mu.Lock()
	s.stats.SliceHits++
	s.touchLocked(name)
	s.mu.Unlock()
	return &Pin{s: s, insts: m.insts}, nil
}

// rejectFile deletes one untrustworthy slice file and counts the
// reject; the rest of the trace directory stays (each file verifies
// independently).
func (s *Store) rejectFile(path, name string, size int64) {
	os.Remove(path)
	s.mu.Lock()
	s.stats.Rejects++
	if b, ok := s.dirBytes[name]; ok {
		if b -= size; b > 0 {
			s.dirBytes[name] = b
		} else {
			s.dirBytes[name] = 0
		}
	}
	s.mu.Unlock()
}

// dropTrace deletes an entire trace directory whose identity failed
// verification and counts the reject.
func (s *Store) dropTrace(name string) {
	os.RemoveAll(filepath.Join(s.dir, name))
	s.mu.Lock()
	s.stats.Rejects++
	delete(s.dirBytes, name)
	for i, n := range s.dirOrder {
		if n == name {
			s.dirOrder = append(s.dirOrder[:i], s.dirOrder[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

func (s *Store) noteWriteError() {
	s.mu.Lock()
	s.stats.WriteErrors++
	s.mu.Unlock()
}

func (s *Store) noteReadError() {
	s.mu.Lock()
	s.stats.ReadErrors++
	s.mu.Unlock()
}

// Close releases every cached mapping. It must only be called once all
// replays served by this store have completed: pins do not survive
// Close. The store directory itself is left intact — that persistence
// is the point. Safe on a nil store.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for path, m := range s.maps {
		if m.mapped {
			if err := unmapFile(m.raw); err != nil && first == nil {
				first = fmt.Errorf("tracestore: %w", err)
			}
		}
		delete(s.maps, path)
	}
	return first
}
