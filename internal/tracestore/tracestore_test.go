package tracestore

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"branchlab/internal/program"
	"branchlab/internal/trace"
)

// testInsts builds a deterministic instruction array: every field
// populated so checksums exercise the full struct, including branches.
func testInsts(n int, salt uint64) []trace.Inst {
	insts := make([]trace.Inst, n)
	for i := range insts {
		x := salt + uint64(i)*0x9e3779b97f4a7c15
		insts[i] = trace.Inst{
			IP:       0x400000 + x%4096,
			Target:   0x400000 + (x>>13)%4096,
			MemAddr:  x >> 7,
			DstValue: x,
			Kind:     trace.KindCondBr,
			Taken:    x%3 == 0,
			DstReg:   uint8(x % 16),
			SrcRegs:  [2]uint8{uint8(x % 13), uint8(x % 11)},
		}
	}
	return insts
}

func testKey() Key {
	return Key{Name: "zoo/test", Input: 2, Budget: 1 << 20, SliceLen: 4096, CkptEvery: 4096}
}

func testCkpts() []program.Checkpoint {
	return []program.Checkpoint{
		{At: 4096, Rng: [4]uint64{1, 2, 3, 4}, CurIP: 0x400123, Scratch: 7,
			Callers: []uint64{0x400001, 0x400002}, Payload: []uint64{9, 8, 7}},
		{At: 8192, Rng: [4]uint64{5, 6, 7, 8}, CurIP: 0x400456, Scratch: 3,
			Payload: []uint64{1}},
	}
}

func mustOpen(t *testing.T, dir string, cap int64) *Store {
	t.Helper()
	s, err := Open(dir, cap)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// sameInsts compares two instruction arrays for exact equality.
func sameInsts(a, b []trace.Inst) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRoundtripAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	k := testKey()
	insts := testInsts(4096, 1)
	tail := testInsts(100, 2)
	cks := testCkpts()

	s := mustOpen(t, dir, 0)
	if err := s.WriteSlice(k, 0, insts); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteSlice(k, 1, tail); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteHeader(k, k.Budget, cks); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory — the restart — must serve
	// identical bytes.
	s2 := mustOpen(t, dir, 0)
	total, gotCks, err := s2.ReadHeader(k)
	if err != nil {
		t.Fatal(err)
	}
	if total != k.Budget {
		t.Fatalf("total = %d, want %d", total, k.Budget)
	}
	if len(gotCks) != len(cks) || gotCks[0].At != cks[0].At ||
		gotCks[0].Rng != cks[0].Rng || gotCks[0].CurIP != cks[0].CurIP ||
		gotCks[0].Scratch != cks[0].Scratch ||
		len(gotCks[0].Callers) != 2 || gotCks[0].Callers[1] != 0x400002 ||
		len(gotCks[1].Payload) != 1 || gotCks[1].Payload[0] != 1 {
		t.Fatalf("checkpoints did not roundtrip: %+v", gotCks)
	}
	p0, err := s2.PinSlice(k, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if !sameInsts(p0.PinnedInsts(), insts) {
		t.Fatal("slice 0 bytes differ after reopen")
	}
	p0.Unpin()
	p1, err := s2.PinSlice(k, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !sameInsts(p1.PinnedInsts(), tail) {
		t.Fatal("slice 1 bytes differ after reopen")
	}
	p1.Unpin()
	st := s2.Stats()
	if st.HeaderHits != 1 || st.SliceHits != 2 || st.Rejects != 0 {
		t.Fatalf("stats = %v", st)
	}
}

func TestWriteIdempotent(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	k := testKey()
	insts := testInsts(64, 3)
	for i := 0; i < 3; i++ {
		if err := s.WriteSlice(k, 0, insts); err != nil {
			t.Fatal(err)
		}
		if err := s.WriteHeader(k, 64, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.SliceWrites != 1 || st.HeaderWrites != 1 || st.WriteSkips != 4 {
		t.Fatalf("writes=%d/%d skips=%d, want 1/1/4", st.SliceWrites, st.HeaderWrites, st.WriteSkips)
	}
}

func TestMissIsNotFound(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	k := testKey()
	if _, _, err := s.ReadHeader(k); !errors.Is(err, ErrNotFound) {
		t.Fatalf("ReadHeader miss = %v, want ErrNotFound", err)
	}
	if _, err := s.PinSlice(k, 0, 64); !errors.Is(err, ErrNotFound) {
		t.Fatalf("PinSlice miss = %v, want ErrNotFound", err)
	}
	st := s.Stats()
	if st.HeaderMisses != 1 || st.SliceMisses != 1 {
		t.Fatalf("stats = %v", st)
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	k := testKey()
	if err := s.WriteSlice(k, 0, testInsts(8, 0)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteHeader(k, 8, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ReadHeader(k); !errors.Is(err, ErrNotFound) {
		t.Fatal("nil ReadHeader must miss")
	}
	if _, err := s.PinSlice(k, 0, 8); !errors.Is(err, ErrNotFound) {
		t.Fatal("nil PinSlice must miss")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats(); got != (Stats{}) {
		t.Fatalf("nil Stats = %v", got)
	}
}

// slicePath digs out the on-disk path of a stored slice for the
// corruption tests.
func slicePath(s *Store, k Key, idx int) string {
	dir, _ := s.tracePath(k)
	return filepath.Join(dir, "s00000"+string(rune('0'+idx)))
}

func TestBitFlipRejected(t *testing.T) {
	dir := t.TempDir()
	k := testKey()
	insts := testInsts(512, 4)
	s := mustOpen(t, dir, 0)
	if err := s.WriteSlice(k, 0, insts); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Flip one payload byte on disk — the CI corruption drill, locally.
	path := slicePath(s, k, 0)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[sliceHeaderSize+17] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, 0)
	if _, err := s2.PinSlice(k, 0, 512); !errors.Is(err, ErrReject) {
		t.Fatalf("bit-flipped slice pinned: err = %v", err)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("rejected file was not deleted")
	}
	// The slot is now a clean miss, and a rewrite restores service.
	if _, err := s2.PinSlice(k, 0, 512); !errors.Is(err, ErrNotFound) {
		t.Fatalf("post-reject pin = %v, want ErrNotFound", err)
	}
	if err := s2.WriteSlice(k, 0, insts); err != nil {
		t.Fatal(err)
	}
	p, err := s2.PinSlice(k, 0, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !sameInsts(p.PinnedInsts(), insts) {
		t.Fatal("re-recorded slice differs")
	}
	p.Unpin()
	if st := s2.Stats(); st.Rejects != 1 {
		t.Fatalf("rejects = %d, want 1", st.Rejects)
	}
}

func TestTruncatedFilesRejected(t *testing.T) {
	dir := t.TempDir()
	k := testKey()
	s := mustOpen(t, dir, 0)
	if err := s.WriteSlice(k, 0, testInsts(512, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteHeader(k, 512, testCkpts()); err != nil {
		t.Fatal(err)
	}
	s.Close()

	for _, tc := range []struct {
		file string
		keep int64
	}{
		{slicePath(s, k, 0), sliceHeaderSize + 100}, // torn payload
		{slicePath(s, k, 0), 10},                    // torn header
		{filepath.Join(filepath.Dir(slicePath(s, k, 0)), "header"), 6},
	} {
		// Rebuild the fixture each round (rejects delete files).
		s1 := mustOpen(t, dir, 0)
		s1.WriteSlice(k, 0, testInsts(512, 5))
		s1.WriteHeader(k, 512, testCkpts())
		s1.Close()
		if err := os.Truncate(tc.file, tc.keep); err != nil {
			t.Fatal(err)
		}
		s2 := mustOpen(t, dir, 0)
		if filepath.Base(tc.file) == "header" {
			if _, _, err := s2.ReadHeader(k); !errors.Is(err, ErrReject) {
				t.Fatalf("truncated header accepted: %v", err)
			}
		} else {
			if _, err := s2.PinSlice(k, 0, 512); !errors.Is(err, ErrReject) {
				t.Fatalf("truncated slice accepted: %v", err)
			}
		}
		s2.Close()
	}
}

func TestVersionMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	k := testKey()
	s := mustOpen(t, dir, 0)
	if err := s.WriteSlice(k, 0, testInsts(64, 6)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Patch the version field and re-seal the header checksum, so the
	// file is internally consistent but from "the future": the reader
	// must reject on version, not checksum.
	path := slicePath(s, k, 0)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(b[4:8], FormatVersion+1)
	binary.LittleEndian.PutUint64(b[56:64], fnv1a(b[:56]))
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, 0)
	_, err = s2.PinSlice(k, 0, 64)
	if !errors.Is(err, ErrReject) {
		t.Fatalf("future-version slice accepted: %v", err)
	}
}

func TestWrongCountRejected(t *testing.T) {
	dir := t.TempDir()
	k := testKey()
	s := mustOpen(t, dir, 0)
	if err := s.WriteSlice(k, 0, testInsts(64, 7)); err != nil {
		t.Fatal(err)
	}
	// Caller geometry demands 128 instructions; the 64-inst file must
	// reject rather than serve a short array.
	if _, err := s.PinSlice(k, 0, 128); !errors.Is(err, ErrReject) {
		t.Fatal("short slice served against a larger want-count")
	}
}

func TestHeaderKeyMismatchRejected(t *testing.T) {
	dir := t.TempDir()
	k := testKey()
	s := mustOpen(t, dir, 0)
	if err := s.WriteHeader(k, 512, nil); err != nil {
		t.Fatal(err)
	}
	// Same hash directory, different identity echo: move the header
	// into the directory of a different key to simulate a collision or
	// a misplaced file.
	k2 := k
	k2.Budget = k.Budget * 2
	srcDir, _ := s.tracePath(k)
	dstDir, _ := s.tracePath(k2)
	if err := os.MkdirAll(dstDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(filepath.Join(srcDir, "header"), filepath.Join(dstDir, "header")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.ReadHeader(k2); !errors.Is(err, ErrReject) {
		t.Fatal("foreign header accepted")
	}
}

func TestDiskCapEvictsColdTraces(t *testing.T) {
	dir := t.TempDir()
	insts := testInsts(1024, 8) // 40 KiB + header per slice
	sliceBytes := int64(len(payloadBytes(insts))) + sliceHeaderSize

	s := mustOpen(t, dir, 3*sliceBytes+4096)
	keys := make([]Key, 5)
	for i := range keys {
		keys[i] = testKey()
		keys[i].Input = i
		if err := s.WriteSlice(keys[i], 0, insts); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.DirsEvicted == 0 {
		t.Fatal("cap never evicted")
	}
	if st.BytesOnDisk > 3*sliceBytes+4096 {
		t.Fatalf("disk over cap: %d", st.BytesOnDisk)
	}
	// The hottest (last-written) trace must still be resident.
	p, err := s.PinSlice(keys[4], 0, 1024)
	if err != nil {
		t.Fatalf("hottest trace evicted: %v", err)
	}
	p.Unpin()
	// The coldest must be gone.
	if _, err := s.PinSlice(keys[0], 0, 1024); !errors.Is(err, ErrNotFound) {
		t.Fatalf("coldest trace survived a full cap sweep: %v", err)
	}
}

func TestPinSurvivesDiskEviction(t *testing.T) {
	dir := t.TempDir()
	insts := testInsts(1024, 9)
	sliceBytes := int64(len(payloadBytes(insts))) + sliceHeaderSize
	s := mustOpen(t, dir, sliceBytes+512)

	k0 := testKey()
	if err := s.WriteSlice(k0, 0, insts); err != nil {
		t.Fatal(err)
	}
	p, err := s.PinSlice(k0, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Writing a second trace blows the cap and evicts k0's directory —
	// unlinking the mmap'd file under the live pin.
	k1 := testKey()
	k1.Input = 99
	if err := s.WriteSlice(k1, 0, insts); err != nil {
		t.Fatal(err)
	}
	if _, err := s.PinSlice(k0, 0, 1024); !errors.Is(err, ErrNotFound) {
		// The mapping cache may legitimately still serve it; accept a
		// hit too, but the pin below must hold either way.
		_ = err
	}
	if !sameInsts(p.PinnedInsts(), insts) {
		t.Fatal("pin did not survive disk eviction of its file")
	}
	p.Unpin()
}

func TestReopenInventoriesExisting(t *testing.T) {
	dir := t.TempDir()
	k := testKey()
	s := mustOpen(t, dir, 0)
	if err := s.WriteSlice(k, 0, testInsts(256, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteHeader(k, 256, nil); err != nil {
		t.Fatal(err)
	}
	want := s.Stats().BytesOnDisk
	s.Close()

	s2 := mustOpen(t, dir, 0)
	st := s2.Stats()
	if st.Traces != 1 || st.BytesOnDisk != want {
		t.Fatalf("reopen inventory: traces=%d bytes=%d, want 1/%d", st.Traces, st.BytesOnDisk, want)
	}
}

func TestConcurrentPinAndWrite(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	k := testKey()
	insts := testInsts(2048, 11)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := s.WriteSlice(k, i%4, insts); err != nil {
					t.Error(err)
					return
				}
				p, err := s.PinSlice(k, i%4, 2048)
				if err != nil {
					if errors.Is(err, ErrNotFound) {
						continue // racing the first write of this slot
					}
					t.Error(err)
					return
				}
				if !sameInsts(p.PinnedInsts(), insts) {
					t.Error("concurrent pin served wrong bytes")
					p.Unpin()
					return
				}
				p.Unpin()
			}
		}()
	}
	wg.Wait()
	if st := s.Stats(); st.Rejects != 0 {
		t.Fatalf("concurrent use produced rejects: %v", st)
	}
}

func TestKeyHashSensitivity(t *testing.T) {
	base := testKey()
	seen := map[string]Key{base.hash(): base}
	for _, k := range []Key{
		{Name: "zoo/test2", Input: 2, Budget: 1 << 20, SliceLen: 4096, CkptEvery: 4096},
		{Name: "zoo/test", Input: 3, Budget: 1 << 20, SliceLen: 4096, CkptEvery: 4096},
		{Name: "zoo/test", Input: 2, Budget: 1 << 21, SliceLen: 4096, CkptEvery: 4096},
		{Name: "zoo/test", Input: 2, Budget: 1 << 20, SliceLen: 8192, CkptEvery: 4096},
		{Name: "zoo/test", Input: 2, Budget: 1 << 20, SliceLen: 4096, CkptEvery: 0},
	} {
		h := k.hash()
		if prev, dup := seen[h]; dup {
			t.Fatalf("hash collision between %+v and %+v", prev, k)
		}
		seen[h] = k
	}
	if base.hash() != testKey().hash() {
		t.Fatal("hash is not a pure function of the key")
	}
}

func TestEmptySliceRoundtrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), 0)
	k := testKey()
	if err := s.WriteSlice(k, 0, nil); err != nil {
		t.Fatal(err)
	}
	p, err := s.PinSlice(k, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.PinnedInsts()) != 0 {
		t.Fatal("empty slice served instructions")
	}
	p.Unpin()
}
