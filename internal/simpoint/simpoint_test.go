package simpoint

import (
	"testing"

	"branchlab/internal/trace"
	"branchlab/internal/xrand"
)

// clusteredVectors builds n vectors around k well-separated centers.
func clusteredVectors(n, k, dim int, seed uint64) ([][]float64, []int) {
	rng := xrand.New(seed)
	centers := make([][]float64, k)
	for i := range centers {
		centers[i] = make([]float64, dim)
		for d := range centers[i] {
			centers[i][d] = float64(rng.Intn(20)) - 10
		}
	}
	vecs := make([][]float64, n)
	truth := make([]int, n)
	for i := range vecs {
		c := i % k
		truth[i] = c
		v := make([]float64, dim)
		for d := range v {
			v[d] = centers[c][d] + rng.NormFloat64()*0.05
		}
		vecs[i] = v
	}
	return vecs, truth
}

func TestKMeansRecoversClusters(t *testing.T) {
	vecs, truth := clusteredVectors(120, 3, 8, 1)
	res := KMeans(vecs, 3, 42)
	if res.K != 3 {
		t.Fatalf("K = %d", res.K)
	}
	// Same-truth points must share labels; different-truth points differ.
	label := map[int]int{}
	for i, l := range res.Labels {
		if want, ok := label[truth[i]]; ok {
			if l != want {
				t.Fatalf("cluster split: point %d", i)
			}
		} else {
			label[truth[i]] = l
		}
	}
	if len(label) != 3 || label[0] == label[1] || label[1] == label[2] || label[0] == label[2] {
		t.Errorf("clusters merged: %v", label)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	vecs, _ := clusteredVectors(60, 4, 6, 2)
	a := KMeans(vecs, 4, 9)
	b := KMeans(vecs, 4, 9)
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("k-means not deterministic for equal seeds")
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if res := KMeans(nil, 3, 1); res.K != 0 {
		t.Error("empty input should return K=0")
	}
	vecs := [][]float64{{1, 1}, {2, 2}}
	res := KMeans(vecs, 5, 1)
	if res.K != 2 {
		t.Errorf("k must clamp to n: %d", res.K)
	}
	// Identical points: must not loop or crash.
	same := [][]float64{{3, 3}, {3, 3}, {3, 3}}
	res = KMeans(same, 2, 1)
	if res.Inertia != 0 {
		t.Errorf("identical points inertia = %v", res.Inertia)
	}
}

func TestChooseKFindsPlantedK(t *testing.T) {
	vecs, _ := clusteredVectors(150, 5, 10, 3)
	res := ChooseK(vecs, 12, 7)
	if res.K < 4 || res.K > 7 {
		t.Errorf("ChooseK = %d for 5 planted clusters", res.K)
	}
}

func TestChooseKSingleCluster(t *testing.T) {
	vecs, _ := clusteredVectors(60, 1, 8, 4)
	res := ChooseK(vecs, 8, 7)
	if res.K > 2 {
		t.Errorf("ChooseK = %d for a single tight cluster", res.K)
	}
}

func TestBBVCollectorSlices(t *testing.T) {
	col := NewBBVCollector(100, 8)
	inst := trace.Inst{Kind: trace.KindCondBr, IP: 0xA0}
	other := trace.Inst{Kind: trace.KindALU}
	for i := uint64(0); i < 350; i++ {
		if i%3 == 0 {
			col.Inst(i, &inst)
		} else {
			col.Inst(i, &other)
		}
	}
	vecs := col.Vectors()
	if len(vecs) != 4 {
		t.Fatalf("vectors = %d, want 4 (3 full slices + partial)", len(vecs))
	}
	for i, v := range vecs {
		if len(v) != 8 {
			t.Fatalf("vector %d has dim %d", i, len(v))
		}
	}
}

func TestBBVDistinguishesPhases(t *testing.T) {
	// Phase A executes branches 1..10, phase B branches 100..110; the
	// projected vectors must cluster by phase.
	col := NewBBVCollector(1000, DefaultDim)
	var gi uint64
	emit := func(base uint64, n int) {
		for i := 0; i < n; i++ {
			inst := trace.Inst{Kind: trace.KindCondBr, IP: base + uint64(i%10)*64}
			col.Inst(gi, &inst)
			gi++
		}
	}
	for rep := 0; rep < 4; rep++ {
		emit(0x1000, 1000) // slice of phase A
		emit(0x9000, 1000) // slice of phase B
	}
	res := ChooseK(col.Vectors(), 6, 1)
	if res.K != 2 {
		t.Fatalf("phases detected = %d, want 2", res.K)
	}
	for i := 0; i+2 < len(res.Labels); i += 2 {
		if res.Labels[i] != res.Labels[0] || res.Labels[i+1] != res.Labels[1] {
			t.Fatalf("alternating phases not recovered: %v", res.Labels)
		}
	}
}

func TestPhasesEndToEnd(t *testing.T) {
	b := trace.NewBuffer(0)
	for rep := 0; rep < 6; rep++ {
		base := uint64(0x1000)
		if rep%2 == 1 {
			base = 0x8000
		}
		for i := 0; i < 500; i++ {
			b.Append(trace.Inst{Kind: trace.KindCondBr, IP: base + uint64(i%7)*64})
		}
	}
	res := Phases(b.Stream(), 500, 5)
	if res.K != 2 {
		t.Errorf("Phases found K=%d, want 2", res.K)
	}
}

func TestBBVCollectorPanicsOnZeroSlice(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for zero slice length")
		}
	}()
	NewBBVCollector(0, 8)
}
