// Package simpoint reimplements SimPoint-style phase analysis (Sherwood
// et al., ASPLOS 2002), the methodology the paper uses to verify that its
// traces cover multiple program phases (Table I "Avg # Phases"): collect
// a basic-block vector (BBV) per fixed-length slice, randomly project it
// to a low dimension, cluster with k-means, and select k with a BIC
// criterion.
package simpoint

import (
	"math"

	"branchlab/internal/trace"
	"branchlab/internal/xrand"
)

// DefaultDim is the projected BBV dimensionality (the SimPoint default is
// 15).
const DefaultDim = 15

// BBVCollector builds one projected basic-block vector per slice. It
// implements the core.Observer shape (Inst/Branch methods) so it can ride
// along any measurement run. Branch IPs act as basic-block identifiers:
// each conditional branch terminates a block, so its execution count is
// the block's count.
type BBVCollector struct {
	SliceLen uint64
	Dim      int
	vectors  [][]float64
	cur      []float64
	curIdx   int //lint:ignore mergecomplete cursor cache: Merge flushes cur to nil, so the next Inst re-resolves the slice index
	// end is the first instruction index past the current slice;
	// comparing against it replaces a per-instruction division.
	end uint64 //lint:ignore mergecomplete cursor cache: rewritten with curIdx on the cur == nil path of Inst
}

// NewBBVCollector returns a collector with the given slice length and
// projected dimension (DefaultDim if dim <= 0).
func NewBBVCollector(sliceLen uint64, dim int) *BBVCollector {
	if sliceLen == 0 {
		panic("simpoint: zero slice length")
	}
	if dim <= 0 {
		dim = DefaultDim
	}
	return &BBVCollector{SliceLen: sliceLen, Dim: dim}
}

// Inst implements the observer contract.
func (c *BBVCollector) Inst(i uint64, inst *trace.Inst) {
	if c.cur == nil || i >= c.end || i < c.end-c.SliceLen {
		c.flush()
		c.cur = make([]float64, c.Dim)
		c.curIdx = int(i / c.SliceLen)
		c.end = (uint64(c.curIdx) + 1) * c.SliceLen
	}
	if inst.Kind != trace.KindCondBr {
		return
	}
	// Random projection: each block IP deterministically contributes a
	// +-1 pattern across the projected dimensions.
	h := xrand.Mix64(inst.IP)
	for d := 0; d < c.Dim; d++ {
		if (h>>uint(d))&1 == 1 {
			c.cur[d]++
		} else {
			c.cur[d]--
		}
	}
}

// Branch implements the observer contract.
func (c *BBVCollector) Branch(uint64, *trace.Inst, bool) {}

func (c *BBVCollector) flush() {
	if c.cur == nil {
		return
	}
	// L1-normalize so slices of equal length but different branch density
	// remain comparable.
	total := 0.0
	for _, v := range c.cur {
		total += math.Abs(v)
	}
	if total > 0 {
		for d := range c.cur {
			c.cur[d] /= total
		}
	}
	c.vectors = append(c.vectors, c.cur)
	c.cur = nil
}

// Vectors returns the per-slice projected BBVs collected so far,
// finalizing the in-progress slice.
func (c *BBVCollector) Vectors() [][]float64 {
	c.flush()
	return c.vectors
}

// Merge appends other's slice vectors after c's. When a trace is split
// at SliceLen boundaries across workers — each shard observed with its
// global instruction indices (core.ObserveFrom) — every slice lands
// wholly in one shard, so merging the shard collectors in trace order
// reproduces exactly the vector sequence of a sequential whole-trace
// pass. other must not be used afterwards.
func (c *BBVCollector) Merge(other *BBVCollector) {
	if other.SliceLen != c.SliceLen || other.Dim != c.Dim {
		panic("simpoint: merging BBV collectors with different geometry")
	}
	c.flush()
	other.flush()
	c.vectors = append(c.vectors, other.vectors...)
}

// KMeansResult holds one clustering outcome.
type KMeansResult struct {
	K         int
	Labels    []int
	Centroids [][]float64
	Inertia   float64 // sum of squared distances to assigned centroids
	BIC       float64
}

// KMeans clusters vectors into k groups with deterministic k-means++
// seeding and Lloyd iterations.
func KMeans(vectors [][]float64, k int, seed uint64) KMeansResult {
	n := len(vectors)
	if n == 0 || k <= 0 {
		return KMeansResult{K: 0}
	}
	if k > n {
		k = n
	}
	dim := len(vectors[0])
	rng := xrand.New(seed)

	// k-means++ seeding.
	centroids := make([][]float64, 0, k)
	centroids = append(centroids, append([]float64(nil), vectors[rng.Intn(n)]...))
	dists := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, v := range vectors {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(v, c); d < best {
					best = d
				}
			}
			dists[i] = best
			total += best
		}
		if total == 0 {
			// All points coincide with centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), vectors[rng.Intn(n)]...))
			continue
		}
		r := rng.Float64() * total
		acc := 0.0
		pick := n - 1
		for i, d := range dists {
			acc += d
			if acc >= r {
				pick = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), vectors[pick]...))
	}

	labels := make([]int, n)
	for iter := 0; iter < 100; iter++ {
		changed := false
		for i, v := range vectors {
			best, bestD := 0, math.Inf(1)
			for j, c := range centroids {
				if d := sqDist(v, c); d < bestD {
					best, bestD = j, d
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
		}
		counts := make([]int, k)
		sums := make([][]float64, k)
		for j := range sums {
			sums[j] = make([]float64, dim)
		}
		for i, v := range vectors {
			counts[labels[i]]++
			for d, x := range v {
				sums[labels[i]][d] += x
			}
		}
		for j := range centroids {
			if counts[j] == 0 {
				continue // keep empty centroid in place
			}
			for d := range centroids[j] {
				centroids[j][d] = sums[j][d] / float64(counts[j])
			}
		}
		if !changed {
			break
		}
	}

	inertia := 0.0
	clusterSizes := make([]int, k)
	for i, v := range vectors {
		inertia += sqDist(v, centroids[labels[i]])
		clusterSizes[labels[i]]++
	}
	res := KMeansResult{K: k, Labels: labels, Centroids: centroids, Inertia: inertia}
	res.BIC = bic(clusterSizes, n, dim, inertia)
	return res
}

// bic is the spherical-Gaussian Bayesian information criterion of
// x-means, as used by SimPoint: mixture log-likelihood (including the
// cluster-assignment term Σ nᵢ·log(nᵢ/n), which penalizes gratuitous
// splits) minus a model-complexity penalty.
func bic(clusterSizes []int, n, dim int, inertia float64) float64 {
	k := len(clusterSizes)
	if n <= k {
		return math.Inf(-1)
	}
	variance := inertia / float64(n-k)
	if variance <= 0 {
		variance = 1e-12
	}
	ll := -0.5 * float64(n) * (float64(dim)*math.Log(2*math.Pi*variance) + 1)
	for _, ni := range clusterSizes {
		if ni > 0 {
			ll += float64(ni) * math.Log(float64(ni)/float64(n))
		}
	}
	params := float64(k)*float64(dim) + float64(k)
	return ll - 0.5*params*math.Log(float64(n))
}

// ChooseK runs k-means for k in [1, maxK] and returns the smallest k
// whose BIC reaches 90% of the best score, the SimPoint selection rule.
func ChooseK(vectors [][]float64, maxK int, seed uint64) KMeansResult {
	if len(vectors) == 0 {
		return KMeansResult{}
	}
	if maxK > len(vectors) {
		maxK = len(vectors)
	}
	results := make([]KMeansResult, 0, maxK)
	best := math.Inf(-1)
	for k := 1; k <= maxK; k++ {
		r := KMeans(vectors, k, seed+uint64(k))
		results = append(results, r)
		if r.BIC > best {
			best = r.BIC
		}
	}
	// BIC values are negative; "90% of the best" follows the SimPoint
	// convention of a threshold between the worst and best scores.
	worst := math.Inf(1)
	for _, r := range results {
		if r.BIC < worst {
			worst = r.BIC
		}
	}
	threshold := worst + 0.9*(best-worst)
	for _, r := range results {
		if r.BIC >= threshold {
			return r
		}
	}
	return results[len(results)-1]
}

// Phases counts the distinct phases of a trace: it collects BBVs at the
// given slice length and clusters them. It is the Table I "Avg # Phases"
// instrument.
func Phases(s trace.Stream, sliceLen uint64, maxK int) KMeansResult {
	col := NewBBVCollector(sliceLen, DefaultDim)
	bs := trace.AsBlocks(s, trace.DefaultBlockLen)
	var i uint64
	for blk := bs.NextBlock(); len(blk) > 0; blk = bs.NextBlock() {
		for j := range blk {
			col.Inst(i, &blk[j])
			i++
		}
	}
	return ChooseK(col.Vectors(), maxK, 12345)
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
