package simpoint

import (
	"reflect"
	"testing"

	"branchlab/internal/core"
	"branchlab/internal/trace"
	"branchlab/internal/xrand"
)

// phasedTrace alternates two branch-IP populations every sliceLen
// instructions so consecutive slices produce distinct BBVs.
func phasedTrace(n, sliceLen int, seed uint64) *trace.Buffer {
	r := xrand.New(seed)
	b := trace.NewBuffer(n)
	for i := 0; i < n; i++ {
		base := uint64(0xA000)
		if (i/sliceLen)%2 == 1 {
			base = 0x90000
		}
		inst := trace.Inst{IP: 0x100, Kind: trace.KindALU,
			DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}}
		if r.Bool(0.4) {
			inst.Kind = trace.KindCondBr
			inst.IP = base + 64*uint64(r.Intn(25))
			inst.Taken = r.Bool(0.5)
			inst.Target = inst.IP + 32
		}
		b.Append(inst)
	}
	return b
}

// Splitting a trace at slice boundaries across BBV collectors and
// merging them in order must reproduce the sequential vector sequence
// exactly — the property that lets Table 1's phase counting shard one
// trace across engine workers without changing any artifact byte.
func TestBBVMergeMatchesSequential(t *testing.T) {
	const sliceLen = 1_000
	tr := phasedTrace(10_500, sliceLen, 3) // trailing partial slice included
	want := NewBBVCollector(sliceLen, DefaultDim)
	core.Observe(tr.Stream(), want)
	wantVecs := want.Vectors()
	if len(wantVecs) != 11 {
		t.Fatalf("expected 11 slices, got %d", len(wantVecs))
	}

	for _, slicesPerShard := range []int{1, 2, 4} {
		shardLen := slicesPerShard * sliceLen
		var acc *BBVCollector
		for lo := 0; lo < tr.Len(); lo += shardLen {
			hi := lo + shardLen
			if hi > tr.Len() {
				hi = tr.Len()
			}
			c := NewBBVCollector(sliceLen, DefaultDim)
			core.ObserveFrom(tr.Slice(lo, hi).Stream(), uint64(lo), c)
			if acc == nil {
				acc = c
			} else {
				acc.Merge(c)
			}
		}
		if !reflect.DeepEqual(acc.Vectors(), wantVecs) {
			t.Fatalf("sharded vectors differ at %d slices per shard", slicesPerShard)
		}
	}

	// The downstream clustering decision is therefore identical too.
	if got, want := ChooseK(wantVecs, 8, 1).K, ChooseK(want.Vectors(), 8, 1).K; got != want {
		t.Fatalf("phase count changed: %d != %d", got, want)
	}
}

func TestBBVMergePanicsOnGeometryMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on geometry mismatch")
		}
	}()
	NewBBVCollector(100, 8).Merge(NewBBVCollector(200, 8))
}
