//go:build faultinject

package tracecache

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"branchlab/internal/faultinject"
)

// findFailSeed returns a seed arming pt as a Fail point with a trigger
// no later than maxTrigger invocations, plus that trigger count.
func findFailSeed(t *testing.T, pt faultinject.Point, maxTrigger uint64) (seed, trigger uint64) {
	t.Helper()
	defer faultinject.Deactivate()
	for s := uint64(0); s < 4096; s++ {
		if err := faultinject.Activate(s); err != nil {
			t.Fatal(err)
		}
		for i := uint64(1); i <= maxTrigger; i++ {
			if faultinject.Fail(pt) != nil {
				return s, i
			}
		}
	}
	t.Fatalf("no seed in [0,4096) fires %s within %d hits — trigger derivation broken", pt, maxTrigger)
	return 0, 0
}

// findChaosSeed returns a seed whose plan turns on the pt chaos point
// from its very first invocation.
func findChaosSeed(t *testing.T, pt faultinject.Point) uint64 {
	t.Helper()
	defer faultinject.Deactivate()
	for s := uint64(0); s < 4096; s++ {
		if err := faultinject.Activate(s); err != nil {
			t.Fatal(err)
		}
		if faultinject.Chaos(pt) {
			return s
		}
	}
	t.Fatalf("no seed in [0,4096) enables chaos at %s on the first hit", pt)
	return 0
}

// TestCacheRecordFaultPropagatesToWaiters: an injected recording fault
// fails the leader AND every coalesced waiter with the same typed
// error; the entry is withdrawn and the next call records cleanly.
func TestCacheRecordFaultPropagatesToWaiters(t *testing.T) {
	seed, trigger := findFailSeed(t, faultinject.CacheRecord, 32)
	defer leakCheck(t)()
	if err := faultinject.Activate(seed); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Deactivate()

	c := New(0)
	// Burn hits on distinct keys so the gated recording below lands
	// exactly on the trigger-th invocation of tracecache/record.
	for i := uint64(1); i < trigger; i++ {
		src := &source{n: 10}
		if _, err := c.RecordCtx(context.Background(), fmt.Sprintf("burn%d", i), 0, 10, src.Source()); err != nil {
			t.Fatalf("burn recording %d failed early: %v", i, err)
		}
	}

	src := newGateSource(50, false)
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.RecordCtx(context.Background(), "victim", 0, 50, src.Source())
		leaderDone <- err
	}()
	<-src.entered
	const waiters = 3
	waiterDone := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := c.RecordCtx(context.Background(), "victim", 0, 50, src.Source())
			waiterDone <- err
		}()
	}
	for c.Stats().Coalesced < waiters {
		time.Sleep(time.Millisecond)
	}
	close(src.release)

	check := func(who string, err error) {
		t.Helper()
		if !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("%s got %v, want the injected fault", who, err)
		}
		var fe *faultinject.Error
		if !errors.As(err, &fe) || fe.Point != faultinject.CacheRecord {
			t.Fatalf("%s error %v lost its fault point", who, err)
		}
	}
	check("leader", <-leaderDone)
	for i := 0; i < waiters; i++ {
		select {
		case err := <-waiterDone:
			check(fmt.Sprintf("waiter %d", i), err)
		case <-time.After(10 * time.Second):
			t.Fatalf("waiter %d never woke after the injected fault", i)
		}
	}
	if st := c.Stats(); uint64(st.Entries) != trigger-1 {
		t.Fatalf("faulted entry not withdrawn: %d entries, want %d", st.Entries, trigger-1)
	}
	// The fault fires exactly once; the retry records byte-identically.
	v, err := c.RecordCtx(context.Background(), "victim", 0, 50, src.Source())
	if err != nil {
		t.Fatalf("retry after injected fault: %v", err)
	}
	checkIdentity(t, drain(t, v), 0)
}

// TestCacheResumeFaultFallsBackByteIdentical: an injected resume fault
// degrades refills to the skim path — more skims, same bytes.
func TestCacheResumeFaultFallsBackByteIdentical(t *testing.T) {
	// The one-slice-cap replay below makes 7 resume-eligible refills
	// (slices at lo >= the first checkpoint), so the trigger must land
	// within them.
	seed, _ := findFailSeed(t, faultinject.CacheResume, 7)
	defer leakCheck(t)()

	replay := func() (vals []uint64, st Stats, resumes int64) {
		src := &ckptSource{source: source{n: 100}, every: 25}
		c := NewSliced(10*instBytes, 10) // one-slice cap: every pin refills
		v := c.Record("w", 0, 100, src.Source())
		return drain(t, v), c.Stats(), src.resumes.Load()
	}

	faultinject.Deactivate()
	clean, cleanStats, cleanResumes := replay()
	if cleanResumes == 0 {
		t.Fatal("baseline replay never resumed; the regime under test did not engage")
	}
	if err := faultinject.Activate(seed); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Deactivate()
	faulted, faultedStats, faultedResumes := replay()

	if len(clean) != len(faulted) {
		t.Fatalf("faulted replay length %d != clean %d", len(faulted), len(clean))
	}
	for i := range clean {
		if clean[i] != faulted[i] {
			t.Fatalf("inst %d differs under resume fault: %d vs %d — wrong bytes", i, faulted[i], clean[i])
		}
	}
	if faultedResumes >= cleanResumes {
		t.Fatalf("resume fault never forced a fallback (resumes %d clean vs %d faulted)",
			cleanResumes, faultedResumes)
	}
	if faultedStats.SliceSkims <= cleanStats.SliceSkims {
		t.Fatalf("skim counter did not absorb the faulted resume (%d clean vs %d faulted)",
			cleanStats.SliceSkims, faultedStats.SliceSkims)
	}
	if faultedStats.SliceResumes+faultedStats.SliceSkims != faultedStats.SliceRerecords {
		t.Fatalf("refill accounting broke under fault: %+v", faultedStats)
	}
}

// TestCacheEvictChaosByteIdentical: the eviction chaos point drops
// every resident slice on each eviction pass — even in an uncapped
// cache — and replays stay byte-identical through the refill paths.
func TestCacheEvictChaosByteIdentical(t *testing.T) {
	seed := findChaosSeed(t, faultinject.CacheEvict)
	defer leakCheck(t)()
	if err := faultinject.Activate(seed); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Deactivate()

	src := &ckptSource{source: source{n: 100}, every: 20}
	c := NewSliced(0, 10) // uncapped: only chaos can evict
	v := c.Record("w", 0, 100, src.Source())
	for pass := 0; pass < 2; pass++ {
		checkIdentity(t, drain(t, v), 0)
	}
	checkIdentity(t, drain(t, v.Range(33, 77)), 33)
	st := c.Stats()
	if st.SliceEvictions == 0 {
		t.Fatal("chaos never evicted a slice from the uncapped cache")
	}
	if st.SliceRerecords == 0 {
		t.Fatal("chaos evictions never forced a refill")
	}
	if src.records.Load() != 1 {
		t.Fatalf("full recorder ran %d times, want 1 (refills must be slice-granular)", src.records.Load())
	}
}
