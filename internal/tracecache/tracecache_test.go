package tracecache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"branchlab/internal/program"
	"branchlab/internal/trace"
)

// mkInsts builds instructions [lo, hi) of the synthetic test trace,
// whose DstValue encodes the global instruction index so prefix, slice
// and re-record identity are all checkable.
func mkInsts(lo, hi int) []trace.Inst {
	out := make([]trace.Inst, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, trace.Inst{IP: 0x400000 + uint64(i)*4, Kind: trace.KindALU, DstValue: uint64(i)})
	}
	return out
}

// mkBuffer is the whole test trace as a Buffer (the uncached reference).
func mkBuffer(n int) *trace.Buffer { return trace.FromSlice(mkInsts(0, n)) }

// source is a counting Source over an n-instruction deterministic trace.
type source struct {
	n       int
	records atomic.Int64 // full recordings performed
	ranges  atomic.Int64 // slice ranges re-materialized
}

func (s *source) Source() Source {
	return Source{
		Record: func(_ context.Context, sliceLen uint64) ([][]trace.Inst, []program.Checkpoint, error) {
			s.records.Add(1)
			if sliceLen == 0 || sliceLen >= uint64(s.n) {
				return [][]trace.Inst{mkInsts(0, s.n)}, nil, nil
			}
			var out [][]trace.Inst
			for lo := 0; lo < s.n; lo += int(sliceLen) {
				hi := lo + int(sliceLen)
				if hi > s.n {
					hi = s.n
				}
				out = append(out, mkInsts(lo, hi))
			}
			return out, nil, nil
		},
		Range: func(lo, hi uint64) []trace.Inst {
			s.ranges.Add(1)
			return mkInsts(int(lo), int(hi))
		},
	}
}

// WholeSource is Source without range re-materialization: the cache
// must fall back to whole-trace granularity for it.
func (s *source) WholeSource() Source {
	src := s.Source()
	src.Range = nil
	return src
}

func drain(t *testing.T, tr trace.Replayable) []uint64 {
	t.Helper()
	var out []uint64
	var inst trace.Inst
	s := tr.Stream()
	for s.Next(&inst) {
		out = append(out, inst.DstValue)
	}
	if len(out) != tr.Len() {
		t.Fatalf("stream yielded %d insts, Len() says %d", len(out), tr.Len())
	}
	return out
}

// checkIdentity verifies a drained view against the reference trace.
func checkIdentity(t *testing.T, vals []uint64, lo int) {
	t.Helper()
	for i, v := range vals {
		if v != uint64(lo+i) {
			t.Fatalf("inst %d has value %d, want %d", i, v, lo+i)
		}
	}
}

func TestPrefixServing(t *testing.T) {
	c := New(0)
	src := &source{n: 100}
	full := c.Record("w", 0, 100, src.Source())
	if full.Len() != 100 {
		t.Fatalf("full recording has %d insts, want 100", full.Len())
	}
	half := c.Record("w", 0, 50, src.Source())
	if got := src.records.Load(); got != 1 {
		t.Fatalf("recorder ran %d times, want 1 (prefix must be served from cache)", got)
	}
	if half.Len() != 50 {
		t.Fatalf("prefix has %d insts, want 50", half.Len())
	}
	checkIdentity(t, drain(t, half), 0)
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 hit, 1 entry", st)
	}
}

func TestLargerBudgetReRecords(t *testing.T) {
	c := New(0)
	small, large := &source{n: 50}, &source{n: 100}
	c.Record("w", 0, 50, small.Source())
	big := c.Record("w", 0, 100, large.Source())
	if small.records.Load()+large.records.Load() != 2 {
		t.Fatalf("recorders ran %d+%d times, want 2 total (larger budget must re-record)",
			small.records.Load(), large.records.Load())
	}
	if big.Len() != 100 {
		t.Fatalf("re-recording has %d insts, want 100", big.Len())
	}
	checkIdentity(t, drain(t, big), 0)
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (smaller recording replaced)", st.Entries)
	}
	// The replacement serves subsequent smaller requests.
	c.Record("w", 0, 50, small.Source())
	if small.records.Load() != 1 {
		t.Fatalf("small recorder ran %d times after replacement hit, want 1", small.records.Load())
	}
}

func TestBufferPrefixIsZeroCopyAndAppendSafe(t *testing.T) {
	parent := mkBuffer(10)
	view := parent.Prefix(4)
	if view.Len() != 4 {
		t.Fatalf("view len %d, want 4", view.Len())
	}
	// Appending to the view must not clobber parent[4].
	view.Append(trace.Inst{DstValue: 999})
	if got := parent.At(4).DstValue; got != 4 {
		t.Fatalf("append to prefix view corrupted parent: parent[4].DstValue = %d, want 4", got)
	}
	if got := view.At(4).DstValue; got != 999 {
		t.Fatalf("view append lost: view[4].DstValue = %d, want 999", got)
	}
	// Out-of-range prefixes clamp.
	if parent.Prefix(99).Len() != 10 || parent.Prefix(-1).Len() != 0 {
		t.Fatal("Prefix must clamp to [0, Len]")
	}
}

// TestSliceEvictionAccounting pins the exactness of the slice-level
// counters: resident bytes must equal the sum of resident slice arrays
// at every observable point, and evictions must drop exactly the
// least-recently-pinned slices.
func TestSliceEvictionAccounting(t *testing.T) {
	// 40-instruction trace in 10-instruction slices, cap = 2 slices.
	c := NewSliced(2*10*instBytes, 10)
	src := &source{n: 40}
	v := c.Record("w", 0, 40, src.Source())
	st := c.Stats()
	if st.Slices != 2 || st.SliceEvictions != 2 {
		t.Fatalf("after insert: %d slices resident, %d evicted; want 2 and 2", st.Slices, st.SliceEvictions)
	}
	if st.BytesInUse != 2*10*instBytes {
		t.Fatalf("bytes in use %d, want %d", st.BytesInUse, 2*10*instBytes)
	}
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (headers survive slice eviction)", st.Entries)
	}
	// Replay the whole view: evicted slices re-record, residency stays
	// at the cap, and the content is byte-identical to the reference.
	// A sequential scan through a cap half the trace thrashes: each
	// re-inserted slice evicts the next one the scan will need, so all
	// four slices re-record and the scan leaves the last two resident.
	checkIdentity(t, drain(t, v), 0)
	st = c.Stats()
	if src.ranges.Load() != 4 {
		t.Fatalf("replay re-recorded %d slices, want 4 (LRU thrash on a sequential scan)", src.ranges.Load())
	}
	if st.SliceRerecords != 4 {
		t.Fatalf("SliceRerecords = %d, want 4", st.SliceRerecords)
	}
	if st.BytesInUse != 2*10*instBytes || st.Slices != 2 {
		t.Fatalf("after replay: bytes=%d slices=%d, want cap-resident 2 slices (%d bytes)",
			st.BytesInUse, st.Slices, 2*10*instBytes)
	}
	if st.BytesInUse > c.maxBytes {
		t.Fatalf("resident bytes %d exceed the cap %d", st.BytesInUse, c.maxBytes)
	}
	// A fully resident range replays with no re-record: the last two
	// slices ([20,40)) are what the drain left resident.
	before := src.ranges.Load()
	checkIdentity(t, drain(t, v.Range(20, 40)), 20)
	if src.ranges.Load() != before {
		t.Fatalf("resident range replay re-recorded %d slices, want 0", src.ranges.Load()-before)
	}
}

// TestEvictedSliceReRecordByteIdentity forces eviction at several slice
// geometries and checks every replay (full, range, repeated) against
// the uncached reference — the byte-invisibility contract.
func TestEvictedSliceReRecordByteIdentity(t *testing.T) {
	const n = 100
	for _, sliceLen := range []uint64{1, 3, 7, 16, 64, 100, 1000} {
		// Cap of one slice: every replay step evicts its predecessor.
		c := NewSliced(int64(sliceLen)*instBytes, sliceLen)
		src := &source{n: n}
		v := c.Record("w", 0, n, src.Source())
		for pass := 0; pass < 2; pass++ {
			checkIdentity(t, drain(t, v), 0)
		}
		checkIdentity(t, drain(t, v.Range(33, 77)), 33)
		if v.Range(33, 77).Len() != 44 {
			t.Fatalf("sliceLen=%d: Range(33,77).Len() = %d, want 44", sliceLen, v.Range(33, 77).Len())
		}
		if sliceLen < n && src.ranges.Load() == 0 {
			t.Fatalf("sliceLen=%d: no slice was ever re-recorded under a one-slice cap", sliceLen)
		}
		if src.records.Load() != 1 {
			t.Fatalf("sliceLen=%d: full recorder ran %d times, want 1", sliceLen, src.records.Load())
		}
	}
}

// TestWholeTraceGranularityNoRange: a Source without Range caches as a
// single slice and refills through a full re-recording.
func TestWholeTraceGranularityNoRange(t *testing.T) {
	c := NewSliced(10*instBytes, 10) // cap smaller than the trace
	src := &source{n: 100}
	v := c.Record("w", 0, 100, src.WholeSource())
	checkIdentity(t, drain(t, v), 0)
	if src.records.Load() != 2 {
		t.Fatalf("recorder ran %d times, want 2 (initial + whole-trace refill)", src.records.Load())
	}
	if st := c.Stats(); st.SliceRerecords != 1 {
		t.Fatalf("SliceRerecords = %d, want 1", st.SliceRerecords)
	}
}

func TestLRUEviction(t *testing.T) {
	// Whole-trace slices (sliceLen >= budget), cap sized for two
	// 100-instruction recordings: classic entry-level LRU.
	c := NewSliced(2*100*instBytes, 100)
	a := &source{n: 100}
	b := &source{n: 100}
	cc := &source{n: 100}
	drain(t, c.Record("a", 0, 100, a.Source()))
	drain(t, c.Record("b", 0, 100, b.Source()))
	drain(t, c.Record("a", 0, 100, a.Source()))  // touch a: b is now LRU
	drain(t, c.Record("c", 0, 100, cc.Source())) // evicts b
	st := c.Stats()
	if st.SliceEvictions != 1 || st.Slices != 2 {
		t.Fatalf("stats = %+v, want 1 slice eviction and 2 resident slices", st)
	}
	if st.BytesInUse != 2*100*instBytes {
		t.Fatalf("bytes in use %d, want %d", st.BytesInUse, 2*100*instBytes)
	}
	// a survived (recently pinned): replaying it re-records nothing.
	drain(t, c.Record("a", 0, 100, a.Source()))
	if r := a.ranges.Load() + a.records.Load(); r != 1 {
		t.Fatalf("a recorded %d times total, want 1 (should have survived)", r)
	}
	// b was evicted: replaying it re-materializes.
	drain(t, c.Record("b", 0, 100, b.Source()))
	if b.ranges.Load() == 0 {
		t.Fatal("b should have been evicted and re-recorded on replay")
	}
}

func TestCapSmallerThanOneTrace(t *testing.T) {
	// A cache smaller than a single slice degrades to re-recording the
	// active slice every time — but still returns correct traces and
	// its accounted residency stays at zero after each pin.
	c := NewSliced(10*instBytes, 100)
	src := &source{n: 100}
	for i := 0; i < 3; i++ {
		v := c.Record("w", 0, 100, src.Source())
		if v.Len() != 100 {
			t.Fatalf("iteration %d: got %d insts, want 100", i, v.Len())
		}
		checkIdentity(t, drain(t, v), 0)
	}
	if src.records.Load() != 1 {
		t.Fatalf("full recorder ran %d times, want 1", src.records.Load())
	}
	if src.ranges.Load() != 3 {
		t.Fatalf("slice re-recorded %d times, want 3 (once per replay)", src.ranges.Load())
	}
	if st := c.Stats(); st.Slices != 0 || st.BytesInUse != 0 {
		t.Fatalf("stats = %+v, want no resident slices", st)
	}
}

// TestCappedResidencyBelowWholeTrace is the acceptance bound: replaying
// a whole trace through a small cap keeps accounted residency below one
// whole-trace footprint at every sample point.
func TestCappedResidencyBelowWholeTrace(t *testing.T) {
	const n = 1000
	cap := int64(3 * 100 * instBytes) // 3 of 10 slices
	c := NewSliced(cap, 100)
	src := &source{n: n}
	v := c.Record("w", 0, n, src.Source())
	whole := int64(n) * instBytes
	bs := v.BlockStream(64)
	for blk := bs.NextBlock(); len(blk) > 0; blk = bs.NextBlock() {
		if st := c.Stats(); st.BytesInUse > cap || st.BytesInUse >= whole {
			t.Fatalf("residency %d bytes exceeds cap %d (whole trace %d)", st.BytesInUse, cap, whole)
		}
	}
}

func TestSingleflight(t *testing.T) {
	c := New(0)
	src := &source{n: 5000}
	const goroutines = 16
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	lens := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			start.Wait()
			lens[g] = c.Record("w", 0, 5000, src.Source()).Len()
		}(g)
	}
	start.Done()
	done.Wait()
	if src.records.Load() != 1 {
		t.Fatalf("recorder ran %d times under %d concurrent requests, want 1", src.records.Load(), goroutines)
	}
	for g := 0; g < goroutines; g++ {
		if lens[g] != 5000 {
			t.Fatalf("goroutine %d got a %d-inst trace, want 5000", g, lens[g])
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits+coalesced", st, goroutines-1)
	}
}

// TestConcurrentEvictedReplay hammers a one-slice-cap cache from many
// goroutines: re-records coalesce per slice and every replay must be
// byte-identical (run under -race).
func TestConcurrentEvictedReplay(t *testing.T) {
	c := NewSliced(16*instBytes, 16)
	src := &source{n: 256}
	v := c.Record("w", 0, 256, src.Source())
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lo := (g * 13) % 200
			sub := v.Range(lo, lo+56)
			var inst trace.Inst
			s := sub.Stream()
			for i := 0; s.Next(&inst); i++ {
				if inst.DstValue != uint64(lo+i) {
					t.Errorf("goroutine %d: inst %d = %d, want %d", g, i, inst.DstValue, lo+i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(0)
	var records atomic.Int64
	const goroutines = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := "even"
			if g%2 == 1 {
				name = "odd"
			}
			src := &source{n: 1000}
			v := c.Record(name, g%4/2, 1000, src.Source())
			records.Add(src.records.Load())
			if v.Len() != 1000 {
				t.Errorf("bad recording length %d", v.Len())
			}
		}(g)
	}
	wg.Wait()
	// 2 names x 2 inputs = 4 distinct keys, each recorded exactly once.
	if records.Load() != 4 {
		t.Fatalf("recorder ran %d times, want 4", records.Load())
	}
	if st := c.Stats(); st.Misses != 4 || st.Entries != 4 {
		t.Fatalf("stats = %+v, want 4 misses and 4 entries", st)
	}
}

// TestMemoFromRematerializedSlices: a memoized derived result computed
// over re-materialized slices must equal the same computation over the
// uncached trace — re-materialization is byte-invisible to Memo inputs
// — and subsequent calls must be memo hits.
func TestMemoFromRematerializedSlices(t *testing.T) {
	sum := func(tr trace.Replayable) uint64 {
		var s uint64
		var inst trace.Inst
		st := tr.Stream()
		for st.Next(&inst) {
			s += inst.DstValue
		}
		return s
	}
	want := sum(mkBuffer(100))

	c := NewSliced(10*instBytes, 10) // one-slice cap: everything evicts
	src := &source{n: 100}
	v := c.Record("w", 0, 100, src.Source())
	var computes atomic.Int64
	got := c.Memo("sum/w/0", func() any {
		computes.Add(1)
		return sum(v)
	}).(uint64)
	if got != want {
		t.Fatalf("memo over re-materialized slices = %d, want %d", got, want)
	}
	if src.ranges.Load() == 0 {
		t.Fatal("memo computation never touched a re-materialized slice; cap is not forcing eviction")
	}
	again := c.Memo("sum/w/0", func() any {
		computes.Add(1)
		return sum(v)
	}).(uint64)
	if again != want || computes.Load() != 1 {
		t.Fatalf("second memo call recomputed (%d computes) or differed (%d)", computes.Load(), again)
	}
}

func TestMemoSingleflight(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	const goroutines = 16
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	vals := make([]any, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			start.Wait()
			vals[g] = c.Memo("screen/w/0", func() any {
				calls.Add(1)
				return &Stats{Hits: 42}
			})
		}(g)
	}
	start.Done()
	done.Wait()
	if calls.Load() != 1 {
		t.Fatalf("memo fn ran %d times under %d concurrent requests, want 1", calls.Load(), goroutines)
	}
	for g := 1; g < goroutines; g++ {
		if vals[g] != vals[0] {
			t.Fatalf("goroutine %d got a different memo value", g)
		}
	}
	st := c.Stats()
	if st.MemoMisses != 1 || st.MemoHits != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 memo miss and %d memo hits", st, goroutines-1)
	}
	// Distinct keys compute independently.
	c.Memo("screen/w/1", func() any { calls.Add(1); return nil })
	if calls.Load() != 2 {
		t.Fatalf("distinct memo key did not compute; calls = %d", calls.Load())
	}
}

func TestNilCacheMemoPassthrough(t *testing.T) {
	var c *Cache
	var calls atomic.Int64
	for i := 0; i < 2; i++ {
		c.Memo("k", func() any { calls.Add(1); return i })
	}
	if calls.Load() != 2 {
		t.Fatalf("nil cache memoized; calls = %d, want 2", calls.Load())
	}
}

func TestNilCachePassthrough(t *testing.T) {
	var c *Cache
	src := &source{n: 10}
	for i := 0; i < 2; i++ {
		if v := c.Record("w", 0, 10, src.Source()); v.Len() != 10 {
			t.Fatal("nil cache must pass recordings through")
		}
	}
	if src.records.Load() != 2 {
		t.Fatalf("nil cache recorded %d times, want 2 (no caching)", src.records.Load())
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
}

func TestStatsRendering(t *testing.T) {
	c := New(1 << 20)
	src := &source{n: 10}
	c.Record("w", 0, 10, src.Source())
	c.Record("w", 0, 10, src.Source())
	st := c.Stats()
	if st.String() == "" {
		t.Fatal("empty String rendering")
	}
	tab := st.Table()
	if len(tab.Rows) != 1 {
		t.Fatalf("stats table has %d rows, want 1", len(tab.Rows))
	}
	if tab.Rows[0][0] != "1" || tab.Rows[0][2] != "1" {
		t.Fatalf("stats table row = %v, want hits=1 misses=1", tab.Rows[0])
	}
	if len(tab.Headers) != len(tab.Rows[0]) {
		t.Fatalf("table has %d headers but %d cells", len(tab.Headers), len(tab.Rows[0]))
	}
}

// ckptSource is a counting Source over the same deterministic trace
// with fake checkpoints every `every` instructions and a Resume path,
// mirroring what a checkpointed workload recording provides.
type ckptSource struct {
	source
	every   int
	resumes atomic.Int64 // refills served via Resume
	skims   atomic.Int64 // refills that fell back to Range
	fail    bool         // make Resume fail, forcing the fallback
}

func (s *ckptSource) Source() Source {
	src := s.source.Source()
	src.Record = func(ctx context.Context, sliceLen uint64) ([][]trace.Inst, []program.Checkpoint, error) {
		arrs, _, _ := s.source.Source().Record(ctx, sliceLen)
		s.records.Store(s.source.records.Load()) // keep outer counter honest
		var cks []program.Checkpoint
		for at := s.every; at < s.n; at += s.every {
			// Only At matters to the cache; the resume closure below
			// regenerates from it directly.
			cks = append(cks, program.Checkpoint{At: uint64(at), Rng: [4]uint64{1, 0, 0, 0}})
		}
		return arrs, cks, nil
	}
	src.Resume = func(ck *program.Checkpoint, lo, hi uint64) ([]trace.Inst, error) {
		if ck.At > lo {
			return nil, errors.New("checkpoint past window")
		}
		if s.fail {
			return nil, errors.New("unusable checkpoint")
		}
		s.resumes.Add(1)
		return mkInsts(int(lo), int(hi)), nil
	}
	origRange := src.Range
	src.Range = func(lo, hi uint64) []trace.Inst {
		s.skims.Add(1)
		return origRange(lo, hi)
	}
	return src
}

// TestCheckpointResumeRefill: with checkpoints in the header, evicted
// slices past the first checkpoint refill through Resume; the counters
// separate resumes from skims and the bytes stay identical.
func TestCheckpointResumeRefill(t *testing.T) {
	// 100-inst trace, 10-inst slices, one-slice cap: every pin refills.
	src := &ckptSource{source: source{n: 100}, every: 25}
	c := NewSliced(10*instBytes, 10)
	v := c.Record("w", 0, 100, src.Source())
	checkIdentity(t, drain(t, v), 0)
	st := c.Stats()
	if st.SliceRerecords == 0 {
		t.Fatal("one-slice cap forced no refills; regime under test did not engage")
	}
	if st.SliceResumes == 0 {
		t.Fatalf("no refill resumed from a checkpoint (stats %+v)", st)
	}
	// Slices entirely below the first checkpoint (At=25) have no
	// checkpoint at or below them and must skim.
	if st.SliceSkims == 0 {
		t.Fatalf("refills below the first checkpoint should skim (stats %+v)", st)
	}
	if st.SliceResumes+st.SliceSkims != st.SliceRerecords {
		t.Fatalf("resumes (%d) + skims (%d) != re-records (%d)",
			st.SliceResumes, st.SliceSkims, st.SliceRerecords)
	}
	if got, want := src.resumes.Load()+src.skims.Load(), int64(st.SliceRerecords); got != want {
		t.Fatalf("source served %d refills, cache counted %d", got, want)
	}
}

// TestCheckpointResumeFailureFallsBack: a checkpoint the source cannot
// resume degrades to the skim path — correct bytes, counted as skims.
func TestCheckpointResumeFailureFallsBack(t *testing.T) {
	src := &ckptSource{source: source{n: 100}, every: 20, fail: true}
	c := NewSliced(10*instBytes, 10)
	v := c.Record("w", 0, 100, src.Source())
	checkIdentity(t, drain(t, v), 0)
	st := c.Stats()
	if st.SliceResumes != 0 {
		t.Fatalf("failing Resume still counted %d resumes", st.SliceResumes)
	}
	if st.SliceSkims == 0 || st.SliceSkims != st.SliceRerecords {
		t.Fatalf("all refills should have skimmed (stats %+v)", st)
	}
}

// TestConcurrentCheckpointResume hammers resume-capable refills from
// many goroutines under a one-slice cap (run under -race).
func TestConcurrentCheckpointResume(t *testing.T) {
	src := &ckptSource{source: source{n: 256}, every: 16}
	c := NewSliced(16*instBytes, 16)
	v := c.Record("w", 0, 256, src.Source())
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lo := (g * 29) % 200
			sub := v.Range(lo, lo+56)
			var inst trace.Inst
			s := sub.Stream()
			for i := 0; s.Next(&inst); i++ {
				if inst.DstValue != uint64(lo+i) {
					t.Errorf("goroutine %d: inst %d = %d, want %d", g, i, inst.DstValue, lo+i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.SliceResumes == 0 {
		t.Fatalf("concurrent replay never resumed from a checkpoint (stats %+v)", st)
	}
}

// budgetSource synthesizes a trace whose content depends on the budget
// — the payload shape that makes prefix serving wrong (see
// Source.BudgetSensitive). DstValue encodes (budget, index).
type budgetSource struct {
	budget  int
	records atomic.Int64
}

func (s *budgetSource) insts(lo, hi int) []trace.Inst {
	out := make([]trace.Inst, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, trace.Inst{IP: 0x400000 + uint64(i)*4, Kind: trace.KindALU,
			DstValue: uint64(s.budget)<<32 | uint64(i)})
	}
	return out
}

func (s *budgetSource) Source() Source {
	return Source{
		BudgetSensitive: true,
		Record: func(context.Context, uint64) ([][]trace.Inst, []program.Checkpoint, error) {
			s.records.Add(1)
			return [][]trace.Inst{s.insts(0, s.budget)}, nil, nil
		},
		Range: func(lo, hi uint64) []trace.Inst { return s.insts(int(lo), int(hi)) },
	}
}

// TestBudgetSensitiveNotServedPrefix is the regression test for the
// prefix-serving hazard: a budget-sensitive payload requested at a
// smaller budget than a cached recording must get its own recording at
// that budget, not a truncated prefix of the larger one — the two
// traces differ byte-for-byte for such payloads. (Before the fix the
// cache keyed only on (name, input) and served the wrong prefix.)
func TestBudgetSensitiveNotServedPrefix(t *testing.T) {
	c := New(0)
	big := &budgetSource{budget: 100}
	small := &budgetSource{budget: 50}
	c.Record("w", 0, 100, big.Source())
	half := c.Record("w", 0, 50, small.Source())
	if small.records.Load() != 1 {
		t.Fatalf("smaller budget was served without recording (%d recordings): truncated prefix of a budget-sensitive trace",
			small.records.Load())
	}
	if half.Len() != 50 {
		t.Fatalf("smaller-budget trace has %d insts, want 50", half.Len())
	}
	var inst trace.Inst
	st := half.Stream()
	for i := 0; st.Next(&inst); i++ {
		if want := uint64(50)<<32 | uint64(i); inst.DstValue != want {
			t.Fatalf("inst %d = %#x, want %#x (the budget-50 synthesis, not the budget-100 prefix)",
				i, inst.DstValue, want)
		}
	}
	// Each budget is its own entry; repeat requests at either budget hit.
	c.Record("w", 0, 100, big.Source())
	c.Record("w", 0, 50, small.Source())
	if big.records.Load() != 1 || small.records.Load() != 1 {
		t.Fatalf("repeat requests re-recorded (big=%d small=%d)", big.records.Load(), small.records.Load())
	}
	if stt := c.Stats(); stt.Entries != 2 {
		t.Fatalf("entries = %d, want 2 (one per budget)", stt.Entries)
	}
}
