package tracecache

import (
	"sync"
	"sync/atomic"
	"testing"

	"branchlab/internal/trace"
)

// mkBuffer builds a synthetic trace of n instructions whose DstValue
// encodes the instruction index, so prefix identity is checkable.
func mkBuffer(n int) *trace.Buffer {
	b := trace.NewBuffer(n)
	for i := 0; i < n; i++ {
		b.Append(trace.Inst{IP: 0x400000 + uint64(i)*4, Kind: trace.KindALU, DstValue: uint64(i)})
	}
	return b
}

// recorder returns a record func that counts its invocations.
func recorder(n int, calls *atomic.Int64) func() *trace.Buffer {
	return func() *trace.Buffer {
		calls.Add(1)
		return mkBuffer(n)
	}
}

func drain(t *testing.T, b *trace.Buffer) []uint64 {
	t.Helper()
	var out []uint64
	var inst trace.Inst
	s := b.Stream()
	for s.Next(&inst) {
		out = append(out, inst.DstValue)
	}
	return out
}

func TestPrefixServing(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	full := c.Record("w", 0, 100, recorder(100, &calls))
	if full.Len() != 100 {
		t.Fatalf("full recording has %d insts, want 100", full.Len())
	}
	half := c.Record("w", 0, 50, recorder(50, &calls))
	if got := calls.Load(); got != 1 {
		t.Fatalf("recorder ran %d times, want 1 (prefix must be served from cache)", got)
	}
	if half.Len() != 50 {
		t.Fatalf("prefix has %d insts, want 50", half.Len())
	}
	vals := drain(t, half)
	for i, v := range vals {
		if v != uint64(i) {
			t.Fatalf("prefix inst %d has value %d, want %d", i, v, i)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 miss, 1 hit, 1 entry", st)
	}
}

func TestLargerBudgetReRecords(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	c.Record("w", 0, 50, recorder(50, &calls))
	big := c.Record("w", 0, 100, recorder(100, &calls))
	if calls.Load() != 2 {
		t.Fatalf("recorder ran %d times, want 2 (larger budget must re-record)", calls.Load())
	}
	if big.Len() != 100 {
		t.Fatalf("re-recording has %d insts, want 100", big.Len())
	}
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1 (smaller recording replaced)", st.Entries)
	}
	// The replacement serves subsequent smaller requests.
	c.Record("w", 0, 50, recorder(50, &calls))
	if calls.Load() != 2 {
		t.Fatalf("recorder ran %d times after replacement hit, want 2", calls.Load())
	}
}

func TestBufferPrefixIsZeroCopyAndAppendSafe(t *testing.T) {
	parent := mkBuffer(10)
	view := parent.Prefix(4)
	if view.Len() != 4 {
		t.Fatalf("view len %d, want 4", view.Len())
	}
	// Appending to the view must not clobber parent[4].
	view.Append(trace.Inst{DstValue: 999})
	if got := parent.At(4).DstValue; got != 4 {
		t.Fatalf("append to prefix view corrupted parent: parent[4].DstValue = %d, want 4", got)
	}
	if got := view.At(4).DstValue; got != 999 {
		t.Fatalf("view append lost: view[4].DstValue = %d, want 999", got)
	}
	// Out-of-range prefixes clamp.
	if parent.Prefix(99).Len() != 10 || parent.Prefix(-1).Len() != 0 {
		t.Fatal("Prefix must clamp to [0, Len]")
	}
}

func TestLRUEviction(t *testing.T) {
	// Cap sized for two 100-instruction recordings.
	c := New(2 * 100 * instBytes)
	var calls atomic.Int64
	c.Record("a", 0, 100, recorder(100, &calls))
	c.Record("b", 0, 100, recorder(100, &calls))
	c.Record("a", 0, 100, recorder(100, &calls)) // touch a: b is now LRU
	c.Record("c", 0, 100, recorder(100, &calls)) // evicts b
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction and 2 entries", st)
	}
	if st.BytesInUse != 2*100*instBytes {
		t.Fatalf("bytes in use %d, want %d", st.BytesInUse, 2*100*instBytes)
	}
	calls.Store(0)
	c.Record("a", 0, 100, recorder(100, &calls))
	if calls.Load() != 0 {
		t.Fatal("a should have survived (recently used)")
	}
	c.Record("b", 0, 100, recorder(100, &calls))
	if calls.Load() != 1 {
		t.Fatal("b should have been evicted and re-recorded")
	}
}

func TestCapSmallerThanOneTrace(t *testing.T) {
	// A cache smaller than a single recording degrades to recording
	// every time, never caching — but still returns correct traces.
	c := New(10 * instBytes)
	var calls atomic.Int64
	for i := 0; i < 3; i++ {
		b := c.Record("w", 0, 100, recorder(100, &calls))
		if b.Len() != 100 {
			t.Fatalf("iteration %d: got %d insts, want 100", i, b.Len())
		}
	}
	if calls.Load() != 3 {
		t.Fatalf("recorder ran %d times, want 3", calls.Load())
	}
	if st := c.Stats(); st.Entries != 0 || st.BytesInUse != 0 {
		t.Fatalf("stats = %+v, want empty cache", st)
	}
}

func TestSingleflight(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	const goroutines = 16
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	bufs := make([]*trace.Buffer, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			start.Wait()
			bufs[g] = c.Record("w", 0, 5000, recorder(5000, &calls))
		}(g)
	}
	start.Done()
	done.Wait()
	if calls.Load() != 1 {
		t.Fatalf("recorder ran %d times under %d concurrent requests, want 1", calls.Load(), goroutines)
	}
	for g := 1; g < goroutines; g++ {
		if bufs[g] != bufs[0] {
			t.Fatalf("goroutine %d got a different buffer", g)
		}
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 miss and %d hits+coalesced", st, goroutines-1)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	const goroutines = 32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := "even"
			if g%2 == 1 {
				name = "odd"
			}
			b := c.Record(name, g%4/2, 1000, recorder(1000, &calls))
			if b.Len() != 1000 {
				t.Errorf("bad recording length %d", b.Len())
			}
		}(g)
	}
	wg.Wait()
	// 2 names x 2 inputs = 4 distinct keys, each recorded exactly once.
	if calls.Load() != 4 {
		t.Fatalf("recorder ran %d times, want 4", calls.Load())
	}
	if st := c.Stats(); st.Misses != 4 || st.Entries != 4 {
		t.Fatalf("stats = %+v, want 4 misses and 4 entries", st)
	}
}

func TestMemoSingleflight(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	const goroutines = 16
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(goroutines)
	vals := make([]any, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer done.Done()
			start.Wait()
			vals[g] = c.Memo("screen/w/0", func() any {
				calls.Add(1)
				return &Stats{Hits: 42}
			})
		}(g)
	}
	start.Done()
	done.Wait()
	if calls.Load() != 1 {
		t.Fatalf("memo fn ran %d times under %d concurrent requests, want 1", calls.Load(), goroutines)
	}
	for g := 1; g < goroutines; g++ {
		if vals[g] != vals[0] {
			t.Fatalf("goroutine %d got a different memo value", g)
		}
	}
	st := c.Stats()
	if st.MemoMisses != 1 || st.MemoHits != goroutines-1 {
		t.Fatalf("stats = %+v, want 1 memo miss and %d memo hits", st, goroutines-1)
	}
	// Distinct keys compute independently.
	c.Memo("screen/w/1", func() any { calls.Add(1); return nil })
	if calls.Load() != 2 {
		t.Fatalf("distinct memo key did not compute; calls = %d", calls.Load())
	}
}

func TestNilCacheMemoPassthrough(t *testing.T) {
	var c *Cache
	var calls atomic.Int64
	for i := 0; i < 2; i++ {
		c.Memo("k", func() any { calls.Add(1); return i })
	}
	if calls.Load() != 2 {
		t.Fatalf("nil cache memoized; calls = %d, want 2", calls.Load())
	}
}

func TestNilCachePassthrough(t *testing.T) {
	var c *Cache
	var calls atomic.Int64
	for i := 0; i < 2; i++ {
		if b := c.Record("w", 0, 10, recorder(10, &calls)); b.Len() != 10 {
			t.Fatal("nil cache must pass recordings through")
		}
	}
	if calls.Load() != 2 {
		t.Fatalf("nil cache recorded %d times, want 2 (no caching)", calls.Load())
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil cache stats = %+v, want zero", st)
	}
}

func TestStatsRendering(t *testing.T) {
	c := New(1 << 20)
	var calls atomic.Int64
	c.Record("w", 0, 10, recorder(10, &calls))
	c.Record("w", 0, 10, recorder(10, &calls))
	st := c.Stats()
	if st.String() == "" {
		t.Fatal("empty String rendering")
	}
	tab := st.Table()
	if len(tab.Rows) != 1 {
		t.Fatalf("stats table has %d rows, want 1", len(tab.Rows))
	}
	if tab.Rows[0][0] != "1" || tab.Rows[0][2] != "1" {
		t.Fatalf("stats table row = %v, want hits=1 misses=1", tab.Rows[0])
	}
}
