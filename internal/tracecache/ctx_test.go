package tracecache

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"
	"time"

	"branchlab/internal/engine"
	"branchlab/internal/program"
	"branchlab/internal/trace"
)

// leakCheck snapshots the goroutine count and returns a func that
// fails the test if stray goroutines remain after a grace period.
// Register with defer before exercising cancel/failure paths.
func leakCheck(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > base {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					base, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
}

// gateSource is a source whose Record blocks until released, so tests
// can coalesce waiters on a known in-flight leader. honorCtx makes the
// block cancellable (the leader returns ctx.Err()); calls after the
// first complete immediately, so a hand-off can succeed.
type gateSource struct {
	source
	mu       sync.Mutex
	entered  chan struct{} // closed when the first Record starts
	release  chan struct{}
	honorCtx bool
	calls    int
}

func newGateSource(n int, honorCtx bool) *gateSource {
	return &gateSource{
		source:   source{n: n},
		entered:  make(chan struct{}),
		release:  make(chan struct{}),
		honorCtx: honorCtx,
	}
}

func (s *gateSource) Source() Source {
	src := s.source.Source()
	inner := src.Record
	src.Record = func(ctx context.Context, sliceLen uint64) ([][]trace.Inst, []program.Checkpoint, error) {
		s.mu.Lock()
		s.calls++
		first := s.calls == 1
		s.mu.Unlock()
		if first {
			close(s.entered)
			if s.honorCtx {
				select {
				case <-s.release:
				case <-ctx.Done():
					return nil, nil, ctx.Err()
				}
			} else {
				<-s.release
			}
		}
		return inner(ctx, sliceLen)
	}
	return src
}

// TestRecordCtxPreCanceled: an already-cancelled context fails typed
// before any recording work starts.
func TestRecordCtxPreCanceled(t *testing.T) {
	defer leakCheck(t)()
	c := New(0)
	src := &source{n: 10}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v, err := c.RecordCtx(ctx, "w", 0, 10, src.Source())
	if v != nil || !engine.IsCancel(err) {
		t.Fatalf("RecordCtx(pre-cancelled) = %v, %v; want nil and a cancellation error", v, err)
	}
	if src.records.Load() != 0 {
		t.Fatalf("pre-cancelled call still recorded %d times", src.records.Load())
	}
	if st := c.Stats(); st.Entries != 0 || st.Misses != 0 {
		t.Fatalf("pre-cancelled call left state behind: %+v", st)
	}
}

// TestWaiterDetachOnCancel: a waiter cancelled while coalesced detaches
// with a typed error; the leader's recording completes and serves both
// the leader and later callers.
func TestWaiterDetachOnCancel(t *testing.T) {
	defer leakCheck(t)()
	c := New(0)
	src := newGateSource(100, false)

	leaderDone := make(chan error, 1)
	go func() {
		v, err := c.RecordCtx(context.Background(), "w", 0, 100, src.Source())
		if err == nil {
			checkIdentity(t, drain(t, v), 0)
		}
		leaderDone <- err
	}()
	<-src.entered

	ctx, cancel := context.WithCancel(context.Background())
	waiterDone := make(chan error, 1)
	go func() {
		_, err := c.RecordCtx(ctx, "w", 0, 100, src.Source())
		waiterDone <- err
	}()
	// Wait until the waiter has coalesced on the in-flight leader.
	for c.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-waiterDone:
		if !engine.IsCancel(err) {
			t.Fatalf("detached waiter got %v, want a cancellation error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled waiter did not detach from the in-flight leader")
	}

	// The leader is unaffected: release it and it records normally.
	close(src.release)
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader failed after waiter detach: %v", err)
	}
	if src.records.Load() != 1 {
		t.Fatalf("recorder ran %d times, want 1", src.records.Load())
	}
	// Later callers are served from the completed entry.
	v, err := c.RecordCtx(context.Background(), "w", 0, 100, src.Source())
	if err != nil {
		t.Fatal(err)
	}
	checkIdentity(t, drain(t, v), 0)
}

// TestLeaderCancelHandsOff: a leader cancelled mid-recording gets a
// typed error, and a surviving waiter takes over the recording under
// its own context — it gets correct bytes, not the leader's failure.
func TestLeaderCancelHandsOff(t *testing.T) {
	defer leakCheck(t)()
	c := New(0)
	src := newGateSource(100, true)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.RecordCtx(leaderCtx, "w", 0, 100, src.Source())
		leaderDone <- err
	}()
	<-src.entered

	waiterDone := make(chan error, 1)
	var waiterView trace.Replayable
	go func() {
		v, err := c.RecordCtx(context.Background(), "w", 0, 100, src.Source())
		waiterView = v
		waiterDone <- err
	}()
	for c.Stats().Coalesced == 0 {
		time.Sleep(time.Millisecond)
	}
	cancelLeader()

	select {
	case err := <-leaderDone:
		if !engine.IsCancel(err) {
			t.Fatalf("cancelled leader got %v, want a cancellation error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled leader did not return")
	}
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("waiter inherited the leader's cancellation: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("waiter never took over the cancelled leader's recording")
	}
	checkIdentity(t, drain(t, waiterView), 0)
	if src.calls != 2 {
		t.Fatalf("source recorded %d times, want 2 (cancelled attempt + hand-off)", src.calls)
	}
}

// TestSourceFailurePropagatesToWaiters: a leader whose source fails for
// a non-cancellation reason fails every coalesced waiter with the same
// typed error; the entry is withdrawn, so the next call records fresh.
func TestSourceFailurePropagatesToWaiters(t *testing.T) {
	defer leakCheck(t)()
	c := New(0)
	boom := errors.New("source exploded")
	entered := make(chan struct{})
	release := make(chan struct{})
	var calls int
	var mu sync.Mutex
	failing := Source{
		Record: func(context.Context, uint64) ([][]trace.Inst, []program.Checkpoint, error) {
			mu.Lock()
			calls++
			first := calls == 1
			mu.Unlock()
			if first {
				close(entered)
				<-release
				return nil, nil, boom
			}
			return [][]trace.Inst{mkInsts(0, 10)}, nil, nil
		},
	}

	leaderDone := make(chan error, 1)
	go func() {
		_, err := c.RecordCtx(context.Background(), "w", 0, 10, failing)
		leaderDone <- err
	}()
	<-entered
	const waiters = 4
	waiterDone := make(chan error, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, err := c.RecordCtx(context.Background(), "w", 0, 10, failing)
			waiterDone <- err
		}()
	}
	for c.Stats().Coalesced < waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)
	if err := <-leaderDone; !errors.Is(err, boom) {
		t.Fatalf("leader got %v, want %v", err, boom)
	}
	for i := 0; i < waiters; i++ {
		select {
		case err := <-waiterDone:
			if !errors.Is(err, boom) {
				t.Fatalf("waiter %d got %v, want the leader's %v", i, err, boom)
			}
		case <-time.After(10 * time.Second):
			t.Fatalf("waiter %d never woke after the leader's failure", i)
		}
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("failed recording left %d entries resident", st.Entries)
	}
	// The failure was not cached: a fresh call records and succeeds.
	v, err := c.RecordCtx(context.Background(), "w", 0, 10, failing)
	if err != nil {
		t.Fatalf("retry after withdrawn failure: %v", err)
	}
	checkIdentity(t, drain(t, v), 0)
}

// TestBadSourceTyped: a malformed recording (middle slice not exactly
// sliceLen) fails with ErrBadSource instead of panicking, and nothing
// malformed is ever resident.
func TestBadSourceTyped(t *testing.T) {
	defer leakCheck(t)()
	c := NewSliced(0, 10)
	bad := Source{
		Record: func(_ context.Context, sliceLen uint64) ([][]trace.Inst, []program.Checkpoint, error) {
			// Three slices, middle one short: structurally malformed.
			return [][]trace.Inst{mkInsts(0, 10), mkInsts(10, 15), mkInsts(20, 30)}, nil, nil
		},
		Range: func(lo, hi uint64) []trace.Inst { return mkInsts(int(lo), int(hi)) },
	}
	v, err := c.RecordCtx(context.Background(), "w", 0, 30, bad)
	if v != nil || !errors.Is(err, ErrBadSource) {
		t.Fatalf("RecordCtx(malformed) = %v, %v; want nil, ErrBadSource", v, err)
	}
	if st := c.Stats(); st.Entries != 0 || st.Slices != 0 {
		t.Fatalf("malformed recording left state resident: %+v", st)
	}
	// A well-formed source under the same key then records cleanly.
	src := &source{n: 30}
	good, err := c.RecordCtx(context.Background(), "w", 0, 30, src.Source())
	if err != nil {
		t.Fatal(err)
	}
	checkIdentity(t, drain(t, good), 0)
}

// TestLegacyRecordAbortsOnBadSource: the no-error Record surface
// escalates ErrBadSource via engine.Abort rather than panicking raw or
// returning a malformed trace.
func TestLegacyRecordAbortsOnBadSource(t *testing.T) {
	c := NewSliced(0, 10)
	bad := Source{
		Record: func(context.Context, uint64) ([][]trace.Inst, []program.Checkpoint, error) {
			return [][]trace.Inst{mkInsts(0, 3), mkInsts(10, 30)}, nil, nil
		},
		Range: func(lo, hi uint64) []trace.Inst { return mkInsts(int(lo), int(hi)) },
	}
	defer func() {
		err := engine.Recovered(recover())
		if err == nil {
			t.Fatal("legacy Record on a malformed source did not abort")
		}
		if !errors.Is(err, ErrBadSource) {
			t.Fatalf("abort error = %v, want ErrBadSource", err)
		}
	}()
	c.Record("w", 0, 30, bad)
	t.Fatal("legacy Record returned normally for a malformed source")
}

// TestNilCacheRecordCtxPropagatesError: the nil-cache passthrough
// propagates source errors instead of swallowing them.
func TestNilCacheRecordCtxPropagatesError(t *testing.T) {
	var c *Cache
	boom := errors.New("no trace today")
	_, err := c.RecordCtx(context.Background(), "w", 0, 10, Source{
		Record: func(context.Context, uint64) ([][]trace.Inst, []program.Checkpoint, error) {
			return nil, nil, boom
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("nil-cache RecordCtx = %v, want %v", err, boom)
	}
}
