package tracecache

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"branchlab/internal/trace"
	"branchlab/internal/tracestore"
)

// withStore opens a store over dir and attaches it to a fresh cache.
func withStore(t *testing.T, dir string, maxBytes int64, sliceInsts uint64) (*Cache, *tracestore.Store) {
	t.Helper()
	st, err := tracestore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	c := NewSliced(maxBytes, sliceInsts)
	c.SetStore(st)
	return c, st
}

// storedSliceFiles returns every slice file under the store directory.
func storedSliceFiles(t *testing.T, dir string) []string {
	t.Helper()
	var out []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasPrefix(d.Name(), "s") {
			out = append(out, path)
		}
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStoreWarmRestartZeroRecordings is the tentpole invariant: a
// second process (a fresh cache over the same store directory) serves
// the same content with zero recordings and zero refills — header and
// every slice promote from disk, byte-identical.
func TestStoreWarmRestartZeroRecordings(t *testing.T) {
	dir := t.TempDir()

	cold := &source{n: 100}
	c1, st1 := withStore(t, dir, 0, 25)
	checkIdentity(t, drain(t, c1.Record("w", 0, 100, cold.Source())), 0)
	if got := cold.records.Load(); got != 1 {
		t.Fatalf("cold run recorded %d times, want 1", got)
	}
	if w := st1.Stats().SliceWrites; w != 4 {
		t.Fatalf("cold run wrote %d slices through, want 4", w)
	}
	st1.Close()

	// The restart: fresh cache, fresh store handle, same directory.
	warm := &source{n: 100}
	c2, st2 := withStore(t, dir, 0, 25)
	checkIdentity(t, drain(t, c2.Record("w", 0, 100, warm.Source())), 0)
	if got := warm.records.Load(); got != 0 {
		t.Fatalf("warm run recorded %d times, want 0", got)
	}
	if got := warm.ranges.Load(); got != 0 {
		t.Fatalf("warm run refilled %d ranges, want 0", got)
	}
	cs := c2.Stats()
	if cs.Misses != 0 || cs.DiskHeaderHits != 1 || cs.DiskSliceHits != 4 {
		t.Fatalf("warm stats = %+v, want 0 misses, 1 disk header, 4 disk slices", cs)
	}
	ss := st2.Stats()
	if ss.SliceWrites != 0 || ss.SliceHits != 4 || ss.HeaderHits != 1 {
		t.Fatalf("warm store stats = %+v, want pure hits, no writes", ss)
	}
}

// TestStoreDemoteThenPromote pins the promote/demote cycle inside one
// process: the RAM cap evicts slices (demotion is free — write-through
// already persisted them), and re-touching them promotes from disk
// instead of re-materializing.
func TestStoreDemoteThenPromote(t *testing.T) {
	src := &source{n: 100}
	// Cap below one 25-inst slice's footprint: every pin evicts its
	// predecessor, so a second replay walks entirely through the store.
	c, _ := withStore(t, t.TempDir(), 25*instBytes, 25)
	v := c.Record("w", 0, 100, src.Source())
	checkIdentity(t, drain(t, v), 0)
	checkIdentity(t, drain(t, v), 0)
	if got := src.ranges.Load(); got != 0 {
		t.Fatalf("refilled %d ranges despite the store tier, want 0", got)
	}
	st := c.Stats()
	if st.DiskSliceHits == 0 || st.SliceEvictions == 0 {
		t.Fatalf("stats = %+v, want evictions and disk promotions", st)
	}
	if st.SliceRerecords != 0 {
		t.Fatalf("stats = %+v, want 0 re-records (all promotions)", st)
	}
}

// TestStoreCorruptionFallsBackByteIdentically is the corruption drill:
// flip a byte in a stored slice between processes; the warm run must
// reject the file and re-materialize identical bytes.
func TestStoreCorruptionFallsBackByteIdentically(t *testing.T) {
	dir := t.TempDir()
	cold := &source{n: 100}
	c1, st1 := withStore(t, dir, 0, 25)
	want := drain(t, c1.Record("w", 0, 100, cold.Source()))
	st1.Close()

	files := storedSliceFiles(t, dir)
	if len(files) != 4 {
		t.Fatalf("stored %d slice files, want 4", len(files))
	}
	b, err := os.ReadFile(files[2])
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x40
	if err := os.WriteFile(files[2], b, 0o644); err != nil {
		t.Fatal(err)
	}

	warm := &source{n: 100}
	c2, _ := withStore(t, dir, 0, 25)
	got := drain(t, c2.Record("w", 0, 100, warm.Source()))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("byte divergence at inst %d after corruption fallback", i)
		}
	}
	cs := c2.Stats()
	if cs.DiskRejects != 1 {
		t.Fatalf("stats = %+v, want exactly 1 disk reject", cs)
	}
	if cs.DiskSliceHits != 3 || cs.SliceRerecords != 1 {
		t.Fatalf("stats = %+v, want 3 promotions + 1 re-record", cs)
	}
	// The re-record wrote the healthy bytes back: a third process
	// promotes everything again.
	again := &source{n: 100}
	c3, _ := withStore(t, dir, 0, 25)
	checkIdentity(t, drain(t, c3.Record("w", 0, 100, again.Source())), 0)
	if c3.Stats().DiskSliceHits != 4 {
		t.Fatal("re-recorded slice was not written back to the store")
	}
}

// TestStoreCorruptHeaderFallsBack covers the other file kind: a
// corrupted header is rejected, the trace re-records, and the header is
// re-persisted.
func TestStoreCorruptHeaderFallsBack(t *testing.T) {
	dir := t.TempDir()
	cold := &source{n: 100}
	c1, st1 := withStore(t, dir, 0, 25)
	drain(t, c1.Record("w", 0, 100, cold.Source()))
	st1.Close()

	var header string
	filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err == nil && !d.IsDir() && d.Name() == "header" {
			header = path
		}
		return nil
	})
	if header == "" {
		t.Fatal("no header stored")
	}
	b, _ := os.ReadFile(header)
	b[len(b)/2] ^= 0x01
	os.WriteFile(header, b, 0o644)

	warm := &source{n: 100}
	c2, st2 := withStore(t, dir, 0, 25)
	checkIdentity(t, drain(t, c2.Record("w", 0, 100, warm.Source())), 0)
	if got := warm.records.Load(); got != 1 {
		t.Fatalf("header reject must force a recording, got %d", got)
	}
	if c2.Stats().DiskRejects != 1 {
		t.Fatalf("stats = %+v, want 1 disk reject", c2.Stats())
	}
	if st2.Stats().HeaderWrites != 1 {
		t.Fatal("recovered header was not re-persisted")
	}
}

// TestStoreWholeTraceGranularity exercises the store under a source
// with no Range callback (single-slice entries).
func TestStoreWholeTraceGranularity(t *testing.T) {
	dir := t.TempDir()
	cold := &source{n: 80}
	c1, _ := withStore(t, dir, 0, 25)
	checkIdentity(t, drain(t, c1.Record("w", 0, 80, cold.WholeSource())), 0)

	warm := &source{n: 80}
	c2, _ := withStore(t, dir, 0, 25)
	checkIdentity(t, drain(t, c2.Record("w", 0, 80, warm.WholeSource())), 0)
	if warm.records.Load() != 0 {
		t.Fatal("whole-trace entry did not warm-start from the store")
	}
}

// TestStoreKeySeparatesGeometry: the same workload recorded at a
// different slice length or budget is different stored content — a
// warm lookup under changed geometry must miss, not serve wrong-shaped
// slices.
func TestStoreKeySeparatesGeometry(t *testing.T) {
	dir := t.TempDir()
	a := &source{n: 100}
	c1, _ := withStore(t, dir, 0, 25)
	drain(t, c1.Record("w", 0, 100, a.Source()))

	b := &source{n: 100}
	c2, _ := withStore(t, dir, 0, 50) // different slice geometry
	checkIdentity(t, drain(t, c2.Record("w", 0, 100, b.Source())), 0)
	if b.records.Load() != 1 {
		t.Fatal("changed slice geometry served the old store content")
	}

	d := &source{n: 60}
	c3, _ := withStore(t, dir, 0, 25) // same geometry, different budget
	checkIdentity(t, drain(t, c3.Record("w", 0, 60, d.Source())), 0)
	if d.records.Load() != 1 {
		t.Fatal("changed budget served the old store content")
	}
}

// TestStoreConcurrentPromoteDemote hammers promote/demote from many
// goroutines under a cap that guarantees continuous eviction — the
// -race companion to the byte-identity checks. Every goroutine drains
// full replays while slices continuously promote from disk and evict
// (unpinning mid-flight), and every value must still be exact.
func TestStoreConcurrentPromoteDemote(t *testing.T) {
	src := &source{n: 256}
	c, _ := withStore(t, t.TempDir(), 32*instBytes, 16)
	v := c.Record("w", 0, 256, src.Source())
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				var inst trace.Inst
				i := 0
				s := v.Stream()
				for s.Next(&inst) {
					if inst.DstValue != uint64(i) {
						errs <- fmt.Sprintf("rep %d inst %d: got %d", rep, i, inst.DstValue)
						return
					}
					i++
				}
				if i != 256 {
					errs <- fmt.Sprintf("rep %d: short replay (%d insts)", rep, i)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	if st := c.Stats(); st.DiskSliceHits == 0 {
		t.Fatalf("stats = %+v, want disk promotions under the cap", st)
	}
}
