// Package tracecache is a content-keyed, concurrency-safe cache of
// recorded workload traces, shared across one experiments invocation.
//
// Every figure/table driver materializes the same (workload, input)
// traces independently, so a full `cmd/experiments -run all` run used to
// synthesize each trace up to ~10 times. The cache keys recordings on
// (workload name, input, budget) and deduplicates them two ways:
//
//   - Singleflight: concurrent requests for the same key block on one
//     in-flight recording instead of each recording their own copy.
//   - Prefix serving: a request whose budget is at most a cached
//     buffer's budget is served a zero-copy prefix view of that buffer
//     (trace.Buffer.Prefix), never a re-recording.
//
// Served buffers replay through the block pipeline: Buffer streams
// serve zero-copy instruction blocks (trace.BlockStream), so a cache
// hit costs the lock and LRU touch and nothing per instruction. The
// record callback may itself be a sharded recording
// (program.RecordSharded) — the cache is agnostic to how the bytes
// were produced because sharded and sequential recordings are
// byte-identical.
//
// Prefix serving is a truncation of the longer recording — the first b
// instructions of the same program run — not a re-synthesis at the
// smaller budget. Generators may scale static structure with the budget
// (see program.Emitter.Budget), so the two differ in general; within one
// experiments invocation every driver records at the same configured
// budget, which keeps `-run all` output byte-identical to uncached runs
// while recording each (workload, input, max-budget) trace exactly once.
//
// Memory is bounded by a configurable cap with LRU eviction; evicted
// traces re-record on next use (deterministically, so results are
// unaffected — only the hit/miss counters change). Counters are exposed
// as report-friendly Stats for the CLIs to print to stderr.
package tracecache

import (
	"container/list"
	"fmt"
	"sync"
	"unsafe"

	"branchlab/internal/report"
	"branchlab/internal/trace"
)

// instBytes is the in-memory footprint of one recorded instruction.
const instBytes = int64(unsafe.Sizeof(trace.Inst{}))

// key identifies one recordable trace. Budget is deliberately not part
// of the key: one entry per (workload, input) holds the largest budget
// recorded so far and serves smaller budgets as prefixes.
type key struct {
	name  string
	input int
}

// entry is one cached (or in-flight) recording.
type entry struct {
	key    key
	budget uint64        // budget the recording was requested at
	buf    *trace.Buffer // nil while the recording is in flight
	bytes  int64
	ready  chan struct{} // closed when buf is set
	elem   *list.Element // LRU position; nil while in flight or after eviction
}

// memoEntry is one cached (or in-flight) derived result (see Memo).
type memoEntry struct {
	val   any
	ok    bool          // false if the computation panicked
	ready chan struct{} // closed when val/ok are set
}

// Stats are the cache's lifetime counters. Hits+Coalesced+Misses is the
// total number of Record calls; MemoHits+MemoMisses the Memo calls.
type Stats struct {
	Hits       uint64 // served from a completed recording
	Coalesced  uint64 // blocked on another goroutine's in-flight recording
	Misses     uint64 // initiated a recording (== recordings performed)
	Evictions  uint64 // entries dropped by the LRU memory cap
	Entries    int    // completed recordings currently resident
	BytesInUse int64  // resident trace bytes
	CapBytes   int64  // configured cap (0 = unbounded)
	MemoHits   uint64 // derived results served from memory (incl. coalesced)
	MemoMisses uint64 // derived results computed
}

// Table renders the counters as a report table (for stderr diagnostics).
func (s Stats) Table() *report.Table {
	t := report.NewTable("trace cache",
		"hits", "coalesced", "misses", "evictions", "entries", "MiB in use", "MiB cap",
		"memo hits", "memo misses")
	capMiB := "unbounded"
	if s.CapBytes > 0 {
		capMiB = fmt.Sprintf("%.1f", float64(s.CapBytes)/(1<<20))
	}
	t.AddRow(
		fmt.Sprintf("%d", s.Hits),
		fmt.Sprintf("%d", s.Coalesced),
		fmt.Sprintf("%d", s.Misses),
		fmt.Sprintf("%d", s.Evictions),
		fmt.Sprintf("%d", s.Entries),
		fmt.Sprintf("%.1f", float64(s.BytesInUse)/(1<<20)),
		capMiB,
		fmt.Sprintf("%d", s.MemoHits),
		fmt.Sprintf("%d", s.MemoMisses))
	return t
}

// String is a single-line rendering of the counters.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d coalesced=%d misses=%d evictions=%d entries=%d bytes=%d memo=%d/%d",
		s.Hits, s.Coalesced, s.Misses, s.Evictions, s.Entries, s.BytesInUse,
		s.MemoHits, s.MemoHits+s.MemoMisses)
}

// Cache is a concurrency-safe trace cache. The zero value is not usable;
// construct with New. A nil *Cache is valid everywhere and disables
// caching (every Record call records).
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	entries  map[key]*entry
	memos    map[string]*memoEntry
	lru      list.List // front = least recently used
	stats    Stats
}

// New returns a cache holding at most maxBytes of recorded trace data
// (the instruction arrays; bookkeeping overhead is not counted).
// maxBytes <= 0 means unbounded.
func New(maxBytes int64) *Cache {
	c := &Cache{
		maxBytes: maxBytes,
		entries:  make(map[key]*entry),
		memos:    make(map[string]*memoEntry),
	}
	c.lru.Init()
	return c
}

// Record returns the trace for (name, input) truncated to budget
// instructions, invoking record to materialize it on a miss. record must
// produce the deterministic recording for exactly this (name, input,
// budget) triple; it is called without the cache lock held, so it may be
// arbitrarily slow and may itself use the cache under different keys.
//
// Concurrent calls for the same key share one recording. A call whose
// budget exceeds the resident entry's re-records at the larger budget
// and replaces it.
func (c *Cache) Record(name string, input int, budget uint64, record func() *trace.Buffer) *trace.Buffer {
	if c == nil {
		return record()
	}
	k := key{name, input}
	c.mu.Lock()
	for {
		e := c.entries[k]
		if e == nil {
			break
		}
		if e.buf == nil {
			// In flight on another goroutine. Wait for it; if it was
			// requested at a sufficient budget it serves this call too,
			// otherwise loop and re-record larger.
			sufficient := e.budget >= budget
			if sufficient {
				c.stats.Coalesced++
			}
			c.mu.Unlock()
			<-e.ready
			c.mu.Lock()
			if sufficient && e.buf != nil {
				if e.elem != nil {
					c.lru.MoveToBack(e.elem)
				}
				buf := e.buf
				c.mu.Unlock()
				return prefixView(buf, budget)
			}
			// Too small — or the recording panicked (buf still nil, entry
			// withdrawn): loop and record it ourselves.
			continue
		}
		if e.budget >= budget {
			c.stats.Hits++
			if e.elem != nil {
				c.lru.MoveToBack(e.elem)
			}
			buf := e.buf
			c.mu.Unlock()
			return prefixView(buf, budget)
		}
		// Resident but recorded at a smaller budget: drop it and
		// re-record at the larger one.
		c.drop(e)
		break
	}

	e := &entry{key: k, budget: budget, ready: make(chan struct{})}
	c.entries[k] = e
	c.stats.Misses++
	c.mu.Unlock()

	// If record panics, withdraw the entry and wake waiters before
	// re-raising, so coalesced goroutines retry instead of deadlocking.
	done := false
	defer func() {
		if done {
			return
		}
		c.mu.Lock()
		if c.entries[k] == e {
			delete(c.entries, k)
		}
		close(e.ready)
		c.mu.Unlock()
	}()
	buf := record()
	done = true

	c.mu.Lock()
	e.buf = buf
	e.bytes = int64(buf.Len()) * instBytes
	close(e.ready)
	if c.entries[k] == e {
		e.elem = c.lru.PushBack(e)
		c.bytes += e.bytes
		c.stats.Entries++
		c.evictLocked()
	}
	c.mu.Unlock()
	return prefixView(buf, budget)
}

// Memo returns the value computed by fn for key, computing it at most
// once per cache lifetime; concurrent callers of the same key block on
// the single computation. It memoizes derived analysis results (H2P
// screenings, IPC cells) that are deterministic functions of cached
// traces and configuration — results small enough that, unlike traces,
// they are exempt from the LRU cap and never evicted. (The largest
// memoized values are screening collectors, roughly 1% of the footprint
// of the trace they summarize; retaining every one for an invocation is
// deliberate and costs far less than a single extra trace.) Callers
// must treat returned values as immutable: the same object is handed to
// every caller of the key. A nil *Cache computes every call.
func (c *Cache) Memo(key string, fn func() any) any {
	if c == nil {
		return fn()
	}
	for {
		c.mu.Lock()
		if e, ok := c.memos[key]; ok {
			c.stats.MemoHits++
			c.mu.Unlock()
			<-e.ready
			if e.ok {
				return e.val
			}
			continue // computation panicked and was withdrawn; retry
		}
		e := &memoEntry{ready: make(chan struct{})}
		c.memos[key] = e
		c.stats.MemoMisses++
		c.mu.Unlock()

		defer func() {
			if !e.ok {
				c.mu.Lock()
				if c.memos[key] == e {
					delete(c.memos, key)
				}
				close(e.ready)
				c.mu.Unlock()
			}
		}()
		val := fn()

		c.mu.Lock()
		e.val = val
		e.ok = true
		close(e.ready)
		c.mu.Unlock()
		return val
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.BytesInUse = c.bytes
	s.CapBytes = c.maxBytes
	return s
}

// drop removes a resident entry from the map and LRU (caller holds mu).
func (c *Cache) drop(e *entry) {
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
	}
	if e.elem != nil {
		c.lru.Remove(e.elem)
		e.elem = nil
		c.bytes -= e.bytes
		c.stats.Entries--
	}
}

// evictLocked enforces the memory cap, least-recently-used first
// (caller holds mu). In-flight entries are never in the LRU list and so
// are never evicted. Waiters holding an evicted entry's buffer keep it
// alive independently of the cache.
func (c *Cache) evictLocked() {
	if c.maxBytes <= 0 {
		return
	}
	for c.bytes > c.maxBytes {
		front := c.lru.Front()
		if front == nil {
			return
		}
		e := front.Value.(*entry)
		c.drop(e)
		c.stats.Evictions++
	}
}

// prefixView serves a request of the given budget from buf. Budgets at
// or above the recorded length get the buffer itself (the common case in
// one experiments invocation, where all budgets are equal); smaller
// budgets get a zero-copy prefix view.
func prefixView(buf *trace.Buffer, budget uint64) *trace.Buffer {
	if budget >= uint64(buf.Len()) {
		return buf
	}
	return buf.Prefix(int(budget))
}
