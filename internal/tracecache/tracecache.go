// Package tracecache is a content-keyed, concurrency-safe cache of
// recorded workload traces, shared across one experiments invocation.
//
// Every figure/table driver materializes the same (workload, input)
// traces independently, so a full `cmd/experiments -run all` run used to
// synthesize each trace up to ~10 times. The cache keys recordings on
// (workload name, input, budget) and deduplicates them two ways:
//
//   - Singleflight: concurrent requests for the same key block on one
//     in-flight recording instead of each recording their own copy.
//   - Prefix serving: a request whose budget is at most a cached
//     trace's budget is served a zero-copy prefix view, never a
//     re-recording.
//
// Storage is slice-granular: a cached trace is a small header plus
// fixed-size slice entries, each an independently owned (and therefore
// independently evictable and garbage-collectable) instruction array.
// Record returns a trace.Replayable view that serves zero-copy
// instruction blocks from resident slices; the LRU memory cap evicts
// cold slices, not whole recordings, so the cache's memory bound is the
// union of the drivers' live slice working sets instead of N whole
// traces. A request touching an evicted slice re-materializes exactly
// that range under per-slice singleflight through the deterministic
// skim path (Source.Range — reseed from the trace seed, regenerate the
// prefix without storing it, fill only the missing window), so sharing
// and eviction stay byte-invisible to every driver.
//
// Refills resume from checkpoints when the recording captured them
// (Source.Record's second return): the permanent header keeps the
// checkpoint list, and a refill resumes from the nearest checkpoint at
// or below the missing window (Source.Resume) instead of skimming the
// whole prefix — O(window) instead of O(prefix + window). A checkpoint
// that cannot resume (or a payload that captured none) falls back to
// the skim path; Stats separates the two regimes (SliceResumes vs
// SliceSkims).
//
// Prefix serving is a truncation of the longer recording — the first b
// instructions of the same program run — not a re-synthesis at the
// smaller budget. Generators may scale static structure with the budget
// (see program.Emitter.Budget), so the two differ in general: sources
// for such payloads must declare Source.BudgetSensitive, which keys
// their entries on the budget and turns a smaller-budget request into
// its own recording rather than a wrong truncated prefix. Within one
// experiments invocation every driver records at the same configured
// budget, so either keying records each (workload, input) trace exactly
// once and `-run all` output stays byte-identical to uncached runs.
//
// Counters are exposed as report-friendly Stats for the CLIs to print
// to stderr (WriteStats, behind the shared -cachestats flag).
package tracecache

import (
	"container/list"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"sync"
	"unsafe"

	"branchlab/internal/engine"
	"branchlab/internal/faultinject"
	"branchlab/internal/program"
	"branchlab/internal/report"
	"branchlab/internal/trace"
	"branchlab/internal/tracestore"
)

// CkptPerSlice is the Source.CkptSpacing sentinel declaring that the
// recording captures one checkpoint per cache slice, whatever slice
// length the cache chooses (workload.CkptPerCacheSlice wires through to
// this). The cache resolves it to the entry's slice length when
// deriving the persistent-store key.
const CkptPerSlice = ^uint64(0)

// ErrBadSource is the sentinel wrapped when a Source produces a
// malformed recording (middle slices not exactly sliceLen long). The
// error fails the requesting call and every coalesced waiter; the
// entry is withdrawn so nothing malformed is ever served.
var ErrBadSource = errors.New("tracecache: source produced a malformed recording")

// instBytes is the in-memory footprint of one recorded instruction.
const instBytes = int64(unsafe.Sizeof(trace.Inst{}))

// DefaultSliceInsts is the default slice granularity in instructions
// (~10 MiB of records): large enough that per-slice bookkeeping and
// re-record skims amortize to nothing, small enough that eviction
// tracks a driver's slice-shaped working set instead of whole traces.
const DefaultSliceInsts = 1 << 18

// Source materializes one deterministic trace for the cache. All
// callbacks must derive from the same (generator, seed, budget) triple:
// Range(lo, hi) and Resume(ck, lo, hi) must reproduce exactly the
// bytes Record put at [lo, hi).
type Source struct {
	// Record materializes the whole trace as consecutive, independently
	// owned arrays of sliceLen instructions each (the last may be
	// shorter; sliceLen == 0 or >= the trace length means one array),
	// plus any payload checkpoints captured along the way (sorted by
	// capture index; empty for non-checkpointable payloads). Called
	// once per cache miss, outside the cache lock. ctx bounds the
	// recording: a cancelled or failed Record returns a typed error and
	// no arrays — partial recordings are never returned (the program
	// layer enforces this; see DESIGN.md §9).
	Record func(ctx context.Context, sliceLen uint64) ([][]trace.Inst, []program.Checkpoint, error)

	// Range re-materializes instructions [lo, hi) of the same trace by
	// skimming the prefix — the refill path of last resort. nil
	// disables slice granularity for this trace: it is cached as a
	// single slice and evicts whole.
	Range func(lo, hi uint64) []trace.Inst

	// Resume re-materializes instructions [lo, hi) starting from a
	// checkpoint Record captured (ck.At <= lo), making the refill cost
	// independent of lo. An error (a checkpoint that cannot resume)
	// falls back to Range; wrong bytes are never served. nil disables
	// checkpoint resume for this trace.
	Resume func(ck *program.Checkpoint, lo, hi uint64) ([]trace.Inst, error)

	// BudgetSensitive declares that the payload's static structure
	// scales with the recording budget, so a shorter trace is NOT a
	// prefix of a longer one (see workload.Spec.BudgetSensitive). The
	// cache then keys this trace on (name, input, budget) and never
	// serves it as a truncated prefix of a different budget.
	BudgetSensitive bool

	// CkptSpacing is the checkpoint spacing Record captures at (0 =
	// none, CkptPerSlice = one per cache slice). It only parameterizes
	// the persistent-store content key — the recording itself takes its
	// spacing through Record's closure — but it must match what Record
	// does: two recordings that differ in checkpoint capture are
	// different stored artifacts.
	CkptSpacing uint64
}

// key identifies one recordable trace. For budget-insensitive sources
// budget stays zero and one entry per (workload, input) holds the
// largest budget recorded so far, serving smaller budgets as prefixes;
// budget-sensitive sources carry their budget in the key, because for
// them a prefix of a longer recording is not the same trace.
type key struct {
	name   string
	input  int
	budget uint64
}

// entry is the header of one cached (or in-flight) recording: identity,
// recorded extent, and the slice table. Headers are a few dozen bytes
// and live for the cache lifetime; only slice arrays are evictable.
type entry struct {
	key      key
	budget   uint64 // budget the recording was requested at
	total    uint64 // instructions actually recorded (== budget unless the payload ended early)
	sliceLen uint64 // slice granularity of this entry (== total extent when whole-trace)
	slices   []*sliceEnt
	// Persistent-store identity: store is non-nil when the cache had a
	// store attached at recording time, so evicted slices promote from
	// disk before falling back to re-materialization, and
	// refills/recordings write through. Captured per entry: views must
	// keep serving through the same store even if the cache detaches it
	// later.
	skey  tracestore.Key
	store *tracestore.Store
	rng   func(lo, hi uint64) []trace.Inst // deterministic skim refill for [lo, hi)
	// Checkpoint machinery: ckpts (sorted by At, captured during the
	// first recording) and resume make refills O(window). Both may be
	// empty/nil — the skim path is always available. Checkpoints live
	// in the permanent header: a few hundred words per trace, exempt
	// from the LRU cap like the header itself.
	ckpts  []program.Checkpoint
	resume func(ck *program.Checkpoint, lo, hi uint64) ([]trace.Inst, error)
	ready  chan struct{} // closed when slices/total (or err) are set
	// err is the leader's terminal failure, set before ready closes. A
	// cancellation-class err means the leader's caller went away and a
	// surviving waiter should take over the recording (hand-off); any
	// other err fails every waiter too. Entries with err set are
	// already withdrawn from the map.
	err error
}

// refill re-materializes [lo, hi), resuming from the nearest
// checkpoint when possible and reporting which regime served it.
// Called without the cache lock held.
func (e *entry) refill(lo, hi uint64) (data []trace.Inst, resumed bool) {
	if e.resume != nil {
		if ck := program.NearestCheckpoint(e.ckpts, lo); ck != nil {
			if ferr := faultinject.Fail(faultinject.CacheResume); ferr == nil {
				if data, err := e.resume(ck, lo, hi); err == nil {
					return data, true
				}
			}
			// An unusable checkpoint — or an injected resume fault —
			// degrades to the exact skim path: slower, same bytes.
		}
	}
	return e.rng(lo, hi), false
}

// sliceEnt is one independently accounted, independently evictable
// slice of a cached trace. insts == nil means evicted; ready != nil
// means a re-record is in flight on another goroutine.
type sliceEnt struct {
	e     *entry
	idx   int
	insts []trace.Inst
	bytes int64
	elem  *list.Element // LRU position; nil while evicted or in flight
	ready chan struct{}
	// pin holds the store pin when insts is a disk-promoted mmap view;
	// eviction unpins it (the bytes themselves stay valid until the
	// store closes, so streams already holding blocks are unaffected).
	pin *tracestore.Pin
}

// lo returns the global index of the slice's first instruction.
func (se *sliceEnt) lo() uint64 { return uint64(se.idx) * se.e.sliceLen }

// memoEntry is one cached (or in-flight) derived result (see Memo).
type memoEntry struct {
	val   any
	ok    bool          // false if the computation panicked
	ready chan struct{} // closed when val/ok are set
}

// Stats are the cache's lifetime counters. Hits+Coalesced+Misses is the
// total number of Record calls; MemoHits+MemoMisses the Memo calls; the
// Slice* counters track the slice-granular serving underneath.
type Stats struct {
	Hits      uint64 // trace served from a completed recording
	Coalesced uint64 // blocked on another goroutine's in-flight recording
	Misses    uint64 // initiated a full recording (== recordings performed)

	SliceHits      uint64 // slice ranges served from resident arrays (the RAM tier)
	SliceRerecords uint64 // evicted slices re-materialized on demand (resumes + skims)
	SliceResumes   uint64 // re-materializations resumed from a checkpoint (O(window))
	SliceSkims     uint64 // re-materializations that skimmed the prefix (O(prefix + window))
	SliceEvictions uint64 // slices dropped by the LRU memory cap

	// Disk tier (zero unless a tracestore is attached; the store's own
	// Stats carry the write/reject detail).
	DiskHeaderHits uint64 // recordings avoided entirely: header restored from the store
	DiskSliceHits  uint64 // evicted slices promoted from the store instead of re-materialized
	DiskRejects    uint64 // stored files that failed verification and fell back to re-record

	Entries    int   // trace headers resident (completed recordings)
	Slices     int   // slice arrays currently resident
	BytesInUse int64 // resident instruction bytes across all slices
	CapBytes   int64 // configured cap (0 = unbounded)

	MemoHits   uint64 // derived results served from memory (incl. coalesced)
	MemoMisses uint64 // derived results computed
}

// Table renders the counters as a report table (for stderr diagnostics).
func (s Stats) Table() *report.Table {
	t := report.NewTable("trace cache",
		"hits", "coalesced", "misses",
		"slice hits", "re-records", "ckpt resumes", "skim refills", "evictions",
		"disk hdrs", "disk hits", "disk rejects",
		"traces", "slices", "MiB in use", "MiB cap",
		"memo hits", "memo misses")
	capMiB := "unbounded"
	if s.CapBytes > 0 {
		capMiB = fmt.Sprintf("%.1f", float64(s.CapBytes)/(1<<20))
	}
	t.AddRow(
		fmt.Sprintf("%d", s.Hits),
		fmt.Sprintf("%d", s.Coalesced),
		fmt.Sprintf("%d", s.Misses),
		fmt.Sprintf("%d", s.SliceHits),
		fmt.Sprintf("%d", s.SliceRerecords),
		fmt.Sprintf("%d", s.SliceResumes),
		fmt.Sprintf("%d", s.SliceSkims),
		fmt.Sprintf("%d", s.SliceEvictions),
		fmt.Sprintf("%d", s.DiskHeaderHits),
		fmt.Sprintf("%d", s.DiskSliceHits),
		fmt.Sprintf("%d", s.DiskRejects),
		fmt.Sprintf("%d", s.Entries),
		fmt.Sprintf("%d", s.Slices),
		fmt.Sprintf("%.1f", float64(s.BytesInUse)/(1<<20)),
		capMiB,
		fmt.Sprintf("%d", s.MemoHits),
		fmt.Sprintf("%d", s.MemoMisses))
	return t
}

// String is a single-line rendering of the counters.
func (s Stats) String() string {
	return fmt.Sprintf("hits=%d coalesced=%d misses=%d slices=%d/%d sliceops=%d/%d/%d refills=%d/%d disk=%d/%d/%d bytes=%d memo=%d/%d",
		s.Hits, s.Coalesced, s.Misses, s.Slices, s.Entries,
		s.SliceHits, s.SliceRerecords, s.SliceEvictions,
		s.SliceResumes, s.SliceSkims,
		s.DiskHeaderHits, s.DiskSliceHits, s.DiskRejects, s.BytesInUse,
		s.MemoHits, s.MemoHits+s.MemoMisses)
}

// StatsFlag registers the shared -cachestats flag (used by both
// cmd/experiments and cmd/bpsim) on fs, or flag.CommandLine when fs is
// nil, and returns the destination.
func StatsFlag(fs *flag.FlagSet) *bool {
	if fs == nil {
		fs = flag.CommandLine
	}
	return fs.Bool("cachestats", true, "print the trace cache counters table to stderr on exit")
}

// WriteStats writes c's counters table to w — the one rendering both
// CLIs share. A nil cache writes nothing.
func WriteStats(w io.Writer, c *Cache) {
	if c == nil {
		return
	}
	fmt.Fprint(w, c.Stats().Table().String())
}

// Cache is a concurrency-safe trace cache. The zero value is not usable;
// construct with New or NewSliced. A nil *Cache is valid everywhere and
// disables caching (every Record call records).
type Cache struct {
	mu         sync.Mutex
	maxBytes   int64
	sliceInsts uint64
	store      *tracestore.Store // persistent tier, or nil (RAM-only)
	bytes      int64
	entries    map[key]*entry
	memos      map[string]*memoEntry
	lru        list.List // front = least recently used slice
	stats      Stats
}

// New returns a cache holding at most maxBytes of recorded trace data
// (the instruction arrays; bookkeeping overhead is not counted), with
// the default slice granularity. maxBytes <= 0 means unbounded.
func New(maxBytes int64) *Cache {
	return NewSliced(maxBytes, DefaultSliceInsts)
}

// NewSliced is New with an explicit slice granularity in instructions.
// sliceInsts == 0 disables slice granularity: traces are cached as
// single slices and evict whole, the pre-slice behaviour.
func NewSliced(maxBytes int64, sliceInsts uint64) *Cache {
	c := &Cache{
		maxBytes:   maxBytes,
		sliceInsts: sliceInsts,
		entries:    make(map[key]*entry),
		memos:      make(map[string]*memoEntry),
	}
	c.lru.Init()
	return c
}

// SetStore attaches the persistent on-disk tier (DESIGN.md §11): new
// recordings and refills write through to s, evicted slices promote
// back from it (checksum-verified, zero-copy), and a trace whose
// header s already holds is restored without recording at all. Call
// before the first Record — the store key is derived per entry at
// recording time — and close s only after every replay served by this
// cache has completed. nil detaches; a nil *Cache ignores the call.
func (c *Cache) SetStore(s *tracestore.Store) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.store = s
	c.mu.Unlock()
}

// storeKeyFor derives the persistent-store content key of one entry:
// everything the recorded bytes are a function of. CkptPerSlice
// resolves to the entry's actual slice length, so the key is stable
// across processes configured with the same geometry.
func storeKeyFor(name string, input int, budget, sliceLen uint64, src Source) tracestore.Key {
	spacing := src.CkptSpacing
	if spacing == CkptPerSlice {
		spacing = sliceLen
	}
	return tracestore.Key{
		Name:      name,
		Input:     input,
		Budget:    budget,
		SliceLen:  sliceLen,
		CkptEvery: spacing,
	}
}

// Record returns the trace for (name, input) truncated to budget
// instructions, invoking src to materialize it on a miss. src must
// produce the deterministic recording for exactly this (name, input,
// budget) triple; its callbacks run without the cache lock held, so
// they may be arbitrarily slow and may themselves use the cache under
// different keys.
//
// The returned view replays through resident slices zero-copy and
// re-materializes evicted slices on demand — resuming from a stored
// checkpoint when the recording captured one at or below the missing
// window (Source.Resume), skimming the prefix otherwise (Source.Range)
// — so replays are byte-identical to an uncached recording under any
// cap. Concurrent calls for the same key share one recording. For
// budget-insensitive sources a call whose budget exceeds the resident
// entry's re-records at the larger budget and replaces it; a
// budget-sensitive source (Source.BudgetSensitive) keys each budget
// separately instead, since its traces are not prefix-comparable.
func (c *Cache) Record(name string, input int, budget uint64, src Source) trace.Replayable {
	v, err := c.RecordCtx(context.Background(), name, input, budget, src)
	if err != nil {
		// The background context cannot cancel, so only a source failure
		// lands here; escalate it to the run boundary rather than serve
		// nothing (the legacy surface has no error return).
		engine.Abort(err)
	}
	return v
}

// canceledErr is the typed error a cancelled Record call returns; it
// classifies as cancellation under engine.IsCancel.
func canceledErr(ctx context.Context) error {
	return fmt.Errorf("tracecache: recording canceled: %w", ctx.Err())
}

// RecordCtx is Record bounded by ctx, with the failure contract of
// DESIGN.md §9:
//
//   - A caller cancelled while coalesced on another goroutine's
//     recording detaches immediately with a typed cancellation error;
//     the leader and the other waiters are unaffected.
//   - A leader cancelled mid-recording withdraws its entry and wakes
//     the waiters; each surviving waiter retries, so the first to
//     re-enter takes over the recording under its own context
//     (hand-off). The cancelled caller gets a typed cancellation
//     error.
//   - A leader whose source fails for a non-cancellation reason (a
//     malformed recording — ErrBadSource —, a payload abort, an
//     injected fault) propagates that same typed error to every
//     current waiter; the entry is withdrawn, so later calls retry
//     fresh.
//
// In every case the cache never serves partial or wrong bytes: a
// successful return is byte-identical to an uncached recording.
func (c *Cache) RecordCtx(ctx context.Context, name string, input int, budget uint64, src Source) (trace.Replayable, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if c == nil {
		arrs, _, err := src.Record(ctx, 0)
		if err != nil {
			return nil, err
		}
		return trace.FromSlice(joinArrays(arrs)), nil
	}
	k := key{name: name, input: input}
	if src.BudgetSensitive {
		// This payload's structure scales with the budget: a shorter
		// trace is not a prefix of a longer one, so each budget is its
		// own trace identity.
		k.budget = budget
	}
	c.mu.Lock()
	for {
		if ctx.Err() != nil {
			c.mu.Unlock()
			return nil, canceledErr(ctx)
		}
		e := c.entries[k]
		if e == nil {
			break
		}
		if e.slices == nil {
			// In flight on another goroutine. Wait for it; if it was
			// requested at a sufficient budget it serves this call too,
			// otherwise loop and re-record larger.
			sufficient := e.budget >= budget
			if sufficient {
				c.stats.Coalesced++
			}
			c.mu.Unlock()
			select {
			case <-e.ready:
			case <-ctx.Done():
				// Detach: the leader's recording proceeds for the other
				// waiters; only this caller stops waiting.
				return nil, canceledErr(ctx)
			}
			c.mu.Lock()
			if e.err != nil && !engine.IsCancel(e.err) {
				// The leader's failure would fail this call identically.
				err := e.err
				c.mu.Unlock()
				return nil, err
			}
			if sufficient && e.slices != nil {
				v := viewOf(c, e, budget)
				c.mu.Unlock()
				return v, nil
			}
			// Leader cancelled (hand-off: the loop re-enters and this
			// caller may take over), recorded too small, or panicked:
			// retry.
			continue
		}
		if e.budget >= budget {
			c.stats.Hits++
			v := viewOf(c, e, budget)
			c.mu.Unlock()
			return v, nil
		}
		// Resident but recorded at a smaller budget: drop it and
		// re-record at the larger one.
		c.drop(e)
		break
	}

	e := &entry{key: k, budget: budget, ready: make(chan struct{})}
	e.sliceLen = c.sliceInsts
	if e.sliceLen == 0 || e.sliceLen > budget || src.Range == nil {
		e.sliceLen = budget
	}
	e.rng = src.Range
	e.resume = src.Resume
	if e.rng == nil {
		// Whole-trace granularity: the single slice refills through a
		// full re-recording. Refills are deliberately context-free (a
		// replay must be able to finish after the recording context is
		// gone); a failure escalates to the run boundary.
		record := src.Record
		e.rng = func(lo, hi uint64) []trace.Inst {
			//lint:ignore ctxflow refills are deliberately context-free per the comment above: a replay must be able to finish after the recording context is gone
			arrs, _, err := record(context.Background(), 0)
			if err != nil {
				engine.Abort(err)
			}
			return joinArrays(arrs)[lo:hi]
		}
		e.resume = nil
	}
	if c.store != nil && budget > 0 {
		e.store = c.store
		e.skey = storeKeyFor(name, input, budget, e.sliceLen, src)
	}
	c.entries[k] = e
	c.mu.Unlock()

	// If the recording (or the warm restore) panics, withdraw the entry
	// and wake waiters before re-raising, so coalesced goroutines retry
	// instead of deadlocking.
	done := false
	defer func() {
		if done {
			return
		}
		c.mu.Lock()
		if c.entries[k] == e {
			delete(c.entries, k)
		}
		close(e.ready)
		c.mu.Unlock()
	}()

	// Warm start: a persisted header for this exact content restores
	// the entry with every slice "evicted" — no recording at all. Pins
	// then promote slices from the store (checksum-verified) and fall
	// back to deterministic re-materialization per slice, so a stale or
	// partial store degrades gracefully and never changes bytes.
	if e.store != nil {
		if total, ckpts, herr := e.store.ReadHeader(e.skey); herr == nil {
			done = true
			c.mu.Lock()
			e.total = total
			e.ckpts = ckpts
			nslices := 0
			if total > 0 {
				nslices = int((total + e.sliceLen - 1) / e.sliceLen)
			}
			e.slices = make([]*sliceEnt, nslices)
			for i := range e.slices {
				e.slices[i] = &sliceEnt{e: e, idx: i}
			}
			close(e.ready)
			c.stats.DiskHeaderHits++
			if c.entries[k] == e {
				c.stats.Entries++
			}
			v := viewOf(c, e, budget)
			c.mu.Unlock()
			return v, nil
		} else if errors.Is(herr, tracestore.ErrReject) {
			c.mu.Lock()
			c.stats.DiskRejects++
			c.mu.Unlock()
		}
	}
	c.mu.Lock()
	c.stats.Misses++
	c.mu.Unlock()
	arrs, ckpts, err := src.Record(ctx, e.sliceLen)
	if err == nil {
		if ferr := faultinject.Fail(faultinject.CacheRecord); ferr != nil {
			err = fmt.Errorf("tracecache: record %s/%d: %w", name, input, ferr)
		}
	}
	if err == nil {
		for i, a := range arrs {
			// Middle slices must be exactly sliceLen: the slice index math
			// (global index / sliceLen) depends on it.
			if i < len(arrs)-1 && uint64(len(a)) != e.sliceLen {
				err = fmt.Errorf("%w: Source.Record(%d) slice %d has %d insts",
					ErrBadSource, e.sliceLen, i, len(a))
				break
			}
		}
	}
	done = true
	if err != nil {
		// Withdraw the entry and publish the failure to every waiter.
		// Cancellation-class errors let a surviving waiter take over;
		// anything else fails them with the same typed error.
		c.mu.Lock()
		e.err = err
		if c.entries[k] == e {
			delete(c.entries, k)
		}
		close(e.ready)
		c.mu.Unlock()
		return nil, err
	}

	c.mu.Lock()
	e.ckpts = ckpts
	e.slices = make([]*sliceEnt, len(arrs))
	for i, a := range arrs {
		e.slices[i] = &sliceEnt{e: e, idx: i, insts: a, bytes: int64(len(a)) * instBytes}
		e.total += uint64(len(a))
	}
	close(e.ready)
	if c.entries[k] == e {
		for _, se := range e.slices {
			se.elem = c.lru.PushBack(se)
			c.bytes += se.bytes
			c.stats.Slices++
		}
		c.stats.Entries++
		c.evictLocked()
	}
	v := viewOf(c, e, budget)
	total := e.total
	c.mu.Unlock()

	// Write through to the persistent tier, from the leader's local
	// arrays (eviction may already be nil-ing e.slices[*].insts under
	// the lock). Slices land before the header: a process that crashes
	// mid-write leaves at worst a headerless directory (a clean miss)
	// or a header whose missing slices refill deterministically —
	// never a header promising wrong bytes. Write failures only cost a
	// future re-record; they are counted by the store and dropped here.
	if e.store != nil {
		for i, a := range arrs {
			_ = e.store.WriteSlice(e.skey, i, a)
		}
		_ = e.store.WriteHeader(e.skey, total, ckpts)
	}
	return v, nil
}

// pin returns slice si's instruction array, re-materializing it under
// per-slice singleflight if it was evicted. The caller keeps the array
// alive independently of any subsequent eviction.
func (c *Cache) pin(e *entry, si int) []trace.Inst {
	c.mu.Lock()
	for {
		se := e.slices[si]
		if se.insts != nil {
			c.stats.SliceHits++
			if se.elem != nil {
				c.lru.MoveToBack(se.elem)
			}
			data := se.insts
			c.mu.Unlock()
			return data
		}
		if se.ready != nil {
			// Re-record in flight on another goroutine; wait and retry
			// (the refill may be evicted again before we wake).
			ch := se.ready
			c.mu.Unlock()
			<-ch
			c.mu.Lock()
			continue
		}
		se.ready = make(chan struct{})
		c.mu.Unlock()

		lo := se.lo()
		hi := lo + e.sliceLen
		if hi > e.total {
			hi = e.total
		}
		// On panic, withdraw the in-flight marker and wake waiters
		// before re-raising so they retry instead of deadlocking.
		done := false
		defer func() {
			if done {
				return
			}
			c.mu.Lock()
			close(se.ready)
			se.ready = nil
			c.mu.Unlock()
		}()
		// Promotion order: disk tier first (verified zero-copy mmap of
		// the stored bytes), then deterministic re-materialization. A
		// stored file that fails verification is deleted by the store
		// and the refill below regenerates the identical bytes — the
		// never-wrong-bytes fallback.
		var data []trace.Inst
		var pin *tracestore.Pin
		resumed := false
		if e.store != nil {
			if p, perr := e.store.PinSlice(e.skey, si, hi-lo); perr == nil {
				data = p.PinnedInsts()
				pin = p
			} else if errors.Is(perr, tracestore.ErrReject) {
				c.mu.Lock()
				c.stats.DiskRejects++
				c.mu.Unlock()
			}
		}
		if pin == nil {
			data, resumed = e.refill(lo, hi)
		}
		done = true

		c.mu.Lock()
		// The cache is the pin's owner: the slice is retained together
		// with se.pin, unpinned at eviction, and the backing mapping
		// outlives every replay (store close ordering, DESIGN.md §11).
		//lint:ignore blockalias the entry owns the pin for the slice's resident lifetime
		se.insts = data
		se.pin = pin
		se.bytes = int64(len(data)) * instBytes
		close(se.ready)
		se.ready = nil
		if pin != nil {
			c.stats.DiskSliceHits++
		} else {
			c.stats.SliceRerecords++
			if resumed {
				c.stats.SliceResumes++
			} else {
				c.stats.SliceSkims++
			}
		}
		if c.entries[e.key] == e {
			se.elem = c.lru.PushBack(se)
			c.bytes += se.bytes
			c.stats.Slices++
			c.evictLocked()
		}
		c.mu.Unlock()
		// A re-materialized slice is new content for the persistent
		// tier: write it through (outside the lock, from the local
		// array) so the next process promotes instead of refilling.
		if pin == nil && e.store != nil {
			_ = e.store.WriteSlice(e.skey, si, data)
		}
		// Serving materialized slice contents to replays is the view
		// contract; the entry keeps the pin alive until the slice is
		// evicted, and the mapping until the store closes.
		//lint:ignore blockalias the entry keeps the pin (and its mapping) alive for every served replay
		return data
	}
}

// Memo returns the value computed by fn for key, computing it at most
// once per cache lifetime; concurrent callers of the same key block on
// the single computation. It memoizes derived analysis results (H2P
// screenings, IPC cells) that are deterministic functions of cached
// traces and configuration — results small enough that, unlike traces,
// they are exempt from the LRU cap and never evicted. (The largest
// memoized values are screening collectors, roughly 1% of the footprint
// of the trace they summarize; retaining every one for an invocation is
// deliberate and costs far less than a single extra trace.) Inputs
// served from re-materialized slices are byte-identical to the original
// recording, so a memo computed before an eviction is still exact for
// every caller after it. Callers must treat returned values as
// immutable: the same object is handed to every caller of the key. A
// nil *Cache computes every call.
func (c *Cache) Memo(key string, fn func() any) any {
	if c == nil {
		return fn()
	}
	for {
		c.mu.Lock()
		if e, ok := c.memos[key]; ok {
			c.stats.MemoHits++
			c.mu.Unlock()
			<-e.ready
			if e.ok {
				return e.val
			}
			continue // computation panicked and was withdrawn; retry
		}
		e := &memoEntry{ready: make(chan struct{})}
		c.memos[key] = e
		c.stats.MemoMisses++
		c.mu.Unlock()

		defer func() {
			if !e.ok {
				c.mu.Lock()
				if c.memos[key] == e {
					delete(c.memos, key)
				}
				close(e.ready)
				c.mu.Unlock()
			}
		}()
		val := fn()

		c.mu.Lock()
		e.val = val
		e.ok = true
		close(e.ready)
		c.mu.Unlock()
		return val
	}
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.BytesInUse = c.bytes
	s.CapBytes = c.maxBytes
	return s
}

// drop removes a resident entry and all its resident slices from the
// map and LRU (caller holds mu). Views already handed out keep working:
// they hold the entry and re-materialize through its rng, un-accounted.
func (c *Cache) drop(e *entry) {
	if c.entries[e.key] == e {
		delete(c.entries, e.key)
		c.stats.Entries--
	}
	for _, se := range e.slices {
		if se.elem != nil {
			c.lru.Remove(se.elem)
			se.elem = nil
			c.bytes -= se.bytes
			c.stats.Slices--
		}
	}
}

// evictLocked enforces the memory cap, least-recently-used slice first
// (caller holds mu). In-flight slices are never in the LRU list and so
// are never evicted. Streams holding an evicted slice's array keep it
// alive independently of the cache; eviction only drops the cache's
// reference and its accounting.
func (c *Cache) evictLocked() {
	maxBytes := c.maxBytes
	if faultinject.Chaos(faultinject.CacheEvict) {
		// Chaos point: evict every resident slice regardless of the cap,
		// forcing later replays through the re-materialization paths.
		// Refills are deterministic, so artifacts stay byte-identical —
		// that invariant is what the fault sweep asserts.
		maxBytes = 1
	}
	if maxBytes <= 0 {
		return
	}
	for c.bytes > maxBytes {
		front := c.lru.Front()
		if front == nil {
			return
		}
		se := front.Value.(*sliceEnt)
		c.lru.Remove(se.elem)
		se.elem = nil
		se.insts = nil
		if se.pin != nil {
			// Disk-promoted slice: demotion is free — the bytes are
			// already on disk, so dropping the pin is the whole write-back
			// (streams holding blocks stay valid until the store closes).
			se.pin.Unpin()
			se.pin = nil
		}
		c.bytes -= se.bytes
		se.bytes = 0
		c.stats.Slices--
		c.stats.SliceEvictions++
	}
}

// joinArrays concatenates per-slice arrays into one (zero-copy for the
// single-array case) — the nil-cache and whole-trace fallback.
func joinArrays(arrs [][]trace.Inst) []trace.Inst {
	if len(arrs) == 1 {
		return arrs[0]
	}
	n := 0
	for _, a := range arrs {
		n += len(a)
	}
	out := make([]trace.Inst, 0, n)
	for _, a := range arrs {
		out = append(out, a...)
	}
	return out
}

// viewOf serves a request of the given budget from e (caller holds mu).
// Budgets at or above the recorded length get the whole trace; smaller
// budgets get a prefix view — both zero-copy window descriptors.
func viewOf(c *Cache, e *entry, budget uint64) *view {
	n := e.total
	if budget < n {
		n = budget
	}
	return &view{c: c, e: e, off: 0, n: int(n)}
}

// view is a trace.Replayable window [off, off+n) of a cached trace. It
// holds no instruction data itself: streams pin one slice at a time, so
// a replay's live set is one slice per active stream regardless of
// trace length.
type view struct {
	c   *Cache
	e   *entry
	off int
	n   int
}

var _ trace.Replayable = (*view)(nil)

// Len implements trace.Replayable.
func (v *view) Len() int { return v.n }

// Range implements trace.Replayable.
func (v *view) Range(lo, hi int) trace.Replayable {
	if lo < 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi > v.n {
		hi = v.n
	}
	if lo > hi {
		lo = hi
	}
	return &view{c: v.c, e: v.e, off: v.off + lo, n: hi - lo}
}

// Stream implements trace.Replayable. The reader serves blocks natively
// (zero-copy views of resident slice arrays, one pin per slice).
func (v *view) Stream() trace.Stream { return &viewStream{v: v} }

// BlockStream implements trace.Replayable: blocks of at most n
// instructions (up to a whole slice per block when n <= 0).
func (v *view) BlockStream(n int) trace.BlockStream {
	if n < 0 {
		n = 0
	}
	return &viewStream{v: v, blockCap: n}
}

// viewStream reads a view in trace order. It implements trace.Stream
// and trace.BlockStream; blocks are zero-copy windows of one slice
// array, clipped to the view and to blockCap when set.
type viewStream struct {
	v        *view
	pos      int // next unserved view-relative index
	blockCap int
	cur      []trace.Inst // block handed out by fill, consumed by Next
	curIdx   int
}

// nextWindow pins the slice containing the next instruction and returns
// the largest servable window of it.
func (s *viewStream) nextWindow() []trace.Inst {
	if s.pos >= s.v.n {
		return nil
	}
	e := s.v.e
	g := uint64(s.v.off + s.pos)
	si := int(g / e.sliceLen)
	data := s.v.c.pin(e, si)
	so := int(g - uint64(si)*e.sliceLen)
	end := len(data)
	if rem := s.v.n - s.pos; end-so > rem {
		end = so + rem
	}
	if s.blockCap > 0 && end-so > s.blockCap {
		end = so + s.blockCap
	}
	blk := data[so:end:end]
	s.pos += len(blk)
	return blk
}

// NextBlock implements trace.BlockStream.
func (s *viewStream) NextBlock() []trace.Inst {
	if s.curIdx < len(s.cur) {
		// Hand out the remainder of a window partially consumed by Next.
		blk := s.cur[s.curIdx:]
		s.cur, s.curIdx = nil, 0
		return blk
	}
	s.cur, s.curIdx = nil, 0
	return s.nextWindow()
}

// Next implements trace.Stream.
func (s *viewStream) Next(inst *trace.Inst) bool {
	for s.curIdx >= len(s.cur) {
		s.cur, s.curIdx = s.nextWindow(), 0
		if len(s.cur) == 0 {
			return false
		}
	}
	*inst = s.cur[s.curIdx]
	s.curIdx++
	return true
}
