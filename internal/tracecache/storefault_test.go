//go:build faultinject

package tracecache

import (
	"testing"

	"branchlab/internal/faultinject"
	"branchlab/internal/tracestore"
)

// TestStoreCorruptChaosWarmRunByteIdentical is the end-to-end
// never-wrong-bytes drill: with the StoreCorrupt chaos point armed,
// every slice file lands on disk with a flipped byte. A warm restart
// must restore the header, checksum-reject every corrupted slice, and
// re-materialize identical bytes — corruption costs re-records, never
// correctness.
func TestStoreCorruptChaosWarmRunByteIdentical(t *testing.T) {
	seed := findChaosSeed(t, faultinject.StoreCorrupt)
	dir := t.TempDir()

	// Clean cold run (no plan armed): the uncorrupted reference bytes.
	faultinject.Deactivate()
	ref := &source{n: 100}
	cRef := NewSliced(0, 25)
	want := drain(t, cRef.Record("w", 0, 100, ref.Source()))

	// Corrupting cold run: every write-through lands flipped.
	if err := faultinject.Activate(seed); err != nil {
		t.Fatal(err)
	}
	defer faultinject.Deactivate()
	st1, err := tracestore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	cold := &source{n: 100}
	c1 := NewSliced(0, 25)
	c1.SetStore(st1)
	got := drain(t, c1.Record("w", 0, 100, cold.Source()))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cold run inst %d differs under corrupt chaos — in-memory bytes touched", i)
		}
	}
	st1.Close()

	// Warm restart: header restores (headers are not slice payloads, so
	// the chaos point does not touch them), every slice pin rejects,
	// and refills regenerate the identical trace.
	st2, err := tracestore.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	warm := &source{n: 100}
	c2 := NewSliced(0, 25)
	c2.SetStore(st2)
	got = drain(t, c2.Record("w", 0, 100, warm.Source()))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("warm run inst %d differs after corruption fallback", i)
		}
	}
	cs := c2.Stats()
	if cs.DiskHeaderHits != 1 {
		t.Fatalf("warm run did not restore the header: %+v", cs)
	}
	if cs.DiskRejects != 4 || cs.SliceRerecords != 4 {
		t.Fatalf("stats = %+v, want all 4 slices rejected and re-recorded", cs)
	}
	if warm.records.Load() != 0 {
		t.Fatal("slice-level fallback escalated to a full re-recording")
	}
}
