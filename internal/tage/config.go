// Package tage implements the TAGE-SC-L branch predictor (Seznec,
// CBP2016): a bimodal base table, a set of partially-tagged tables indexed
// by geometrically increasing global-history lengths (TAGE), a loop
// predictor (L), and a statistical corrector (SC) that arbitrates between
// the available predictions.
//
// The implementation is written from scratch for this reproduction. It
// keeps the structural elements the paper's measurements depend on —
// longest-match PPM-style lookup, usefulness-driven allocation and
// reclamation of tagged entries, geometric history series (max length
// 1,000 at the 8KB budget and 3,000 at 64KB and above, matching §IV-A),
// and SC/loop arbitration — while simplifying low-level bit-packing
// details that do not affect behaviour shape.
//
// Storage budgets from 8KB to 1024KB reproduce the limit study of §IV-B
// (Fig 7).
package tage

import (
	"fmt"
	"math"
)

// Config sizes every component of a TAGE-SC-L instance.
type Config struct {
	Name      string
	SizeKB    int
	NumTables int // tagged tables
	MinHist   int // shortest tagged history length
	MaxHist   int // longest tagged history length

	LogBimodal uint   // log2 entries in the bimodal base table
	LogTagged  []uint // log2 entries per tagged table
	TagBits    []uint // tag width per tagged table

	UseLoop bool
	LogLoop uint // log2 loop-predictor entries

	UseSC        bool
	LogSC        uint  // log2 entries per SC table
	SCGlobalLens []int // global-history lengths of SC GEHL tables
	SCLocalLens  []int // local-history lengths of SC GEHL tables

	UResetPeriod uint64 // updates between usefulness-counter aging
}

// NewConfig builds a configuration targeting approximately kb kilobytes of
// predictor state, following the proportions of the CBP2016 design: the
// bulk of storage in the tagged tables, with bimodal, SC and loop
// components taking fixed shares.
func NewConfig(kb int) Config {
	if kb <= 0 {
		panic("tage: non-positive storage budget")
	}
	c := Config{
		Name:         fmt.Sprintf("tage-sc-l-%dKB", kb),
		SizeKB:       kb,
		NumTables:    12,
		MinHist:      4,
		MaxHist:      3000,
		UseLoop:      true,
		UseSC:        true,
		UResetPeriod: 1 << 18,
	}
	if kb < 64 {
		// The paper: TAGE-SC-L 8KB tracks histories up to 1,000; the 64KB
		// configuration extends to 3,000 (§IV-A).
		c.MaxHist = 1000
		c.NumTables = 10
	}

	budgetBits := kb * 8192
	// Component shares: bimodal 1/8, SC 1/8, loop 1/32, tagged the rest.
	bimodalBits := budgetBits / 8
	c.LogBimodal = log2floor(bimodalBits / 2) // 2 bits per bimodal counter
	clampLog(&c.LogBimodal, 8, 22)

	loopBits := budgetBits / 32
	c.LogLoop = log2floor(loopBits / 52) // ~52 bits per loop entry
	clampLog(&c.LogLoop, 4, 12)

	scBits := budgetBits / 8
	// SC has len(SCGlobalLens)+len(SCLocalLens)+2 bias+1 IMLI tables of
	// 6-bit counters.
	c.SCGlobalLens = []int{4, 11, 27}
	c.SCLocalLens = []int{5, 11}
	numSCTables := len(c.SCGlobalLens) + len(c.SCLocalLens) + 3
	c.LogSC = log2floor(scBits / (6 * numSCTables))
	clampLog(&c.LogSC, 6, 18)

	c.TagBits = make([]uint, c.NumTables)
	for i := range c.TagBits {
		t := 8 + uint(i)/2
		if t > 14 {
			t = 14
		}
		c.TagBits[i] = t
	}
	taggedBits := budgetBits - bimodalBits - loopBits - scBits
	avgEntryBits := 0
	for _, t := range c.TagBits {
		avgEntryBits += 3 + 2 + int(t) // ctr + u + tag
	}
	avgEntryBits /= c.NumTables
	perTable := taggedBits / (c.NumTables * avgEntryBits)
	logT := log2floor(perTable)
	clampLog(&logT, 6, 20)
	c.LogTagged = make([]uint, c.NumTables)
	for i := range c.LogTagged {
		c.LogTagged[i] = logT
	}
	return c
}

// Config8KB returns the practical baseline configuration the paper
// screens H2Ps against.
func Config8KB() Config { return NewConfig(8) }

// Config64KB returns the large CBP2016-class configuration.
func Config64KB() Config { return NewConfig(64) }

// HistLengths returns the geometric history-length series L(i) =
// MinHist * r^i with L(last) = MaxHist.
func (c *Config) HistLengths() []int {
	out := make([]int, c.NumTables)
	ratio := geomRatio(c.MinHist, c.MaxHist, c.NumTables)
	l := float64(c.MinHist)
	prev := 0
	for i := 0; i < c.NumTables; i++ {
		v := int(l + 0.5)
		if v <= prev {
			v = prev + 1 // keep lengths strictly increasing
		}
		out[i] = v
		prev = v
		l *= ratio
	}
	out[c.NumTables-1] = c.MaxHist
	return out
}

// StorageBits returns the modeled hardware budget of the configuration in
// bits (telemetry fields excluded).
func (c *Config) StorageBits() int {
	bits := 2 << c.LogBimodal // 2-bit bimodal counters
	for i := 0; i < c.NumTables; i++ {
		entry := 3 + 2 + int(c.TagBits[i])
		bits += entry << c.LogTagged[i]
	}
	if c.UseLoop {
		bits += 52 << c.LogLoop
	}
	if c.UseSC {
		numSC := len(c.SCGlobalLens) + len(c.SCLocalLens) + 3
		bits += 6 * numSC << c.LogSC
		bits += 11 * 256 // local histories
	}
	return bits
}

func geomRatio(min, max, n int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Pow(float64(max)/float64(min), 1/float64(n-1))
}

func log2floor(v int) uint {
	var l uint
	for v > 1 {
		v >>= 1
		l++
	}
	return l
}

func clampLog(l *uint, lo, hi uint) {
	if *l < lo {
		*l = lo
	}
	if *l > hi {
		*l = hi
	}
}
