package tage

// corrector is the statistical corrector (SC) of TAGE-SC-L: a GEHL-style
// ensemble of 6-bit counter tables over several signal modalities — a
// per-IP bias (conditioned on the TAGE prediction), short global history,
// the IMLI counter (Seznec et al., MICRO 2015), and per-IP local history.
// The signed sum of all counters yields a confidence value; when it
// disagrees with TAGE and its magnitude clears an adaptive threshold, the
// corrector overrides.
type corrector struct {
	logSize uint
	mask    uint64

	bias   []int8 // indexed by ip ^ tagePred
	biasSK []int8 // skewed second bias table
	global [][]int8
	gLens  []int
	local  [][]int8
	lLens  []int
	imliT  []int8

	ghist      uint64 // recent global history (SC only needs short windows)
	localHist  []uint16
	imli       uint32
	lastBackIP uint64

	threshold int32
	tc        int8 // threshold adaptation counter
}

const (
	scCtrMax       = 31
	scCtrMin       = -32
	scInitThresh   = 6
	scMinThresh    = 4
	scMaxThresh    = 120
	scLocalEntries = 256
)

func newCorrector(cfg Config) *corrector {
	c := &corrector{
		logSize:   cfg.LogSC,
		mask:      (1 << cfg.LogSC) - 1,
		bias:      make([]int8, 1<<cfg.LogSC),
		biasSK:    make([]int8, 1<<cfg.LogSC),
		imliT:     make([]int8, 1<<cfg.LogSC),
		gLens:     cfg.SCGlobalLens,
		lLens:     cfg.SCLocalLens,
		localHist: make([]uint16, scLocalEntries),
		threshold: scInitThresh,
	}
	c.global = make([][]int8, len(c.gLens))
	for i := range c.global {
		c.global[i] = make([]int8, 1<<cfg.LogSC)
	}
	c.local = make([][]int8, len(c.lLens))
	for i := range c.local {
		c.local[i] = make([]int8, 1<<cfg.LogSC)
	}
	return c
}

func scHash(ip, sig uint64) uint64 {
	x := ip ^ sig*0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

func (c *corrector) localIndex(ip uint64) int {
	return int((ip ^ ip>>9) & (scLocalEntries - 1))
}

// tableIndices fills idx with the index of every SC table for the branch
// at ip under TAGE prediction tagePred, in a fixed order: bias, biasSK,
// globals..., imli, locals...
func (c *corrector) tableIndices(ip uint64, tagePred bool, idx []uint64) {
	t := uint64(0)
	if tagePred {
		t = 1
	}
	k := 0
	idx[k] = (scHash(ip, 0)<<1 | t) & c.mask
	k++
	idx[k] = (scHash(ip, 0xABCD)<<1 | t) & c.mask
	k++
	for _, l := range c.gLens {
		sig := c.ghist & ((1 << uint(l)) - 1)
		idx[k] = scHash(ip, sig+uint64(l)<<32) & c.mask
		k++
	}
	idx[k] = scHash(ip, uint64(c.imli)) & c.mask
	k++
	lh := uint64(c.localHist[c.localIndex(ip)])
	for _, l := range c.lLens {
		sig := lh & ((1 << uint(l)) - 1)
		idx[k] = scHash(ip, sig+uint64(l)<<40) & c.mask
		k++
	}
}

func (c *corrector) numTables() int { return 3 + len(c.gLens) + len(c.lLens) }

func (c *corrector) tableAt(i int) []int8 {
	switch {
	case i == 0:
		return c.bias
	case i == 1:
		return c.biasSK
	case i < 2+len(c.gLens):
		return c.global[i-2]
	case i == 2+len(c.gLens):
		return c.imliT
	default:
		return c.local[i-3-len(c.gLens)]
	}
}

// sum returns the signed SC confidence for ip given the TAGE prediction.
func (c *corrector) sum(ip uint64, tagePred bool) int32 {
	var idx [16]uint64
	n := c.numTables()
	c.tableIndices(ip, tagePred, idx[:n])
	s := int32(0)
	for i := 0; i < n; i++ {
		s += 2*int32(c.tableAt(i)[idx[i]]) + 1
	}
	return s
}

// train updates SC state after the branch resolves. ctx carries the
// prediction-time sums so the update sees exactly what the predict path
// saw.
func (c *corrector) train(ip, target uint64, taken bool, ctx *predCtx) {
	// Threshold adaptation: when SC and TAGE disagreed, track which was
	// right and drift the override threshold accordingly.
	if ctx.scPred != ctx.tagePred {
		if ctx.scPred == taken {
			c.tc = satUpdate(c.tc, true, -64, 63)
		} else {
			c.tc = satUpdate(c.tc, false, -64, 63)
		}
		if c.tc == 63 {
			if c.threshold > scMinThresh {
				c.threshold--
			}
			c.tc = 0
		} else if c.tc == -64 {
			if c.threshold < scMaxThresh {
				c.threshold++
			}
			c.tc = 0
		}
	}

	// Counter updates: on SC misprediction or low confidence.
	scTaken := ctx.scSum >= 0
	if scTaken != taken || abs32(ctx.scSum) < c.threshold+10 {
		var idx [16]uint64
		n := c.numTables()
		c.tableIndices(ip, ctx.tagePred, idx[:n])
		for i := 0; i < n; i++ {
			tbl := c.tableAt(i)
			tbl[idx[i]] = satUpdate(tbl[idx[i]], taken, scCtrMin, scCtrMax)
		}
	}

	// Local history update.
	li := c.localIndex(ip)
	c.localHist[li] <<= 1
	if taken {
		c.localHist[li] |= 1
	}

	// IMLI: count consecutive taken backward branches (inner-most loop
	// iterations). target==0 means the driver had no target information.
	if target != 0 && target < ip {
		if taken {
			if ip == c.lastBackIP || c.lastBackIP == 0 {
				if c.imli < 1<<20 {
					c.imli++
				}
			} else {
				c.imli = 1
			}
			c.lastBackIP = ip
		} else if ip == c.lastBackIP {
			c.imli = 0
		}
	}
}

func (c *corrector) pushGlobal(taken bool) {
	c.ghist <<= 1
	if taken {
		c.ghist |= 1
	}
}
