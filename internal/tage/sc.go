package tage

// corrector is the statistical corrector (SC) of TAGE-SC-L: a GEHL-style
// ensemble of 6-bit counter tables over several signal modalities — a
// per-IP bias (conditioned on the TAGE prediction), short global history,
// the IMLI counter (Seznec et al., MICRO 2015), and per-IP local history.
// The signed sum of all counters yields a confidence value; when it
// disagrees with TAGE and its magnitude clears an adaptive threshold, the
// corrector overrides.
type corrector struct {
	logSize uint
	mask    uint64

	// flat holds every counter table back to back in index order (bias,
	// biasSK, globals..., imli, locals...), each 1<<logSize entries. The
	// cached scCtx indices are absolute into flat (table base folded in
	// by tableIndices), so the per-branch sum and update loops are single
	// strided array walks with no per-table slice dispatch.
	flat  []int8
	gLens []int
	lLens []int

	ghist      uint64 // recent global history (SC only needs short windows)
	localHist  []uint16
	imli       uint32
	lastBackIP uint64

	threshold int32
	tc        int8 // threshold adaptation counter
}

const (
	scCtrMax       = 31
	scCtrMin       = -32
	scInitThresh   = 6
	scMinThresh    = 4
	scMaxThresh    = 120
	scLocalEntries = 256
	scMaxTables    = 16
)

// scCtx is the corrector's prediction-time context, carried inside the
// engine's predCtx between evaluate and train. The table indices computed
// at prediction time are cached (with the prediction flag they were
// hashed with) so the common update path reuses them instead of re-hashing
// every table.
type scCtx struct {
	sum    int32
	pred   bool
	used   bool
	idx    [scMaxTables]uint32
	idxFor bool // the TAGE/final flag idx was computed with
}

func newCorrector(cfg Config) *corrector {
	c := &corrector{
		logSize:   cfg.LogSC,
		mask:      (1 << cfg.LogSC) - 1,
		gLens:     cfg.SCGlobalLens,
		lLens:     cfg.SCLocalLens,
		localHist: make([]uint16, scLocalEntries),
		threshold: scInitThresh,
	}
	if c.numTables() > scMaxTables {
		panic("tage: too many SC tables")
	}
	c.flat = make([]int8, c.numTables()<<cfg.LogSC)
	return c
}

func scHash(ip, sig uint64) uint64 {
	x := ip ^ sig*0x9e3779b97f4a7c15
	x ^= x >> 29
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 32
	return x
}

func (c *corrector) localIndex(ip uint64) int {
	return int((ip ^ ip>>9) & (scLocalEntries - 1))
}

// tableIndices fills idx with the absolute flat-array index of every SC
// counter for the branch at ip under TAGE prediction tagePred, in table
// order: bias, biasSK, globals..., imli, locals... Each entry carries
// its table's base offset (k << logSize), so the sum/update loops index
// flat directly.
func (c *corrector) tableIndices(ip uint64, tagePred bool, idx *[scMaxTables]uint32) {
	t := uint64(0)
	if tagePred {
		t = 1
	}
	log := c.logSize
	k := uint32(0)
	idx[k] = uint32((scHash(ip, 0)<<1|t)&c.mask) | k<<log
	k++
	idx[k] = uint32((scHash(ip, 0xABCD)<<1|t)&c.mask) | k<<log
	k++
	for _, l := range c.gLens {
		sig := c.ghist & ((1 << uint(l)) - 1)
		idx[k] = uint32(scHash(ip, sig+uint64(l)<<32)&c.mask) | k<<log
		k++
	}
	idx[k] = uint32(scHash(ip, uint64(c.imli))&c.mask) | k<<log
	k++
	lh := uint64(c.localHist[c.localIndex(ip)])
	for _, l := range c.lLens {
		sig := lh & ((1 << uint(l)) - 1)
		idx[k] = uint32(scHash(ip, sig+uint64(l)<<40)&c.mask) | k<<log
		k++
	}
}

func (c *corrector) numTables() int { return 3 + len(c.gLens) + len(c.lLens) }

// evaluate computes the signed SC confidence for ip given the prediction
// pred (TAGE after the loop override), filling s with the sum and the
// cached table indices for train to reuse.
func (c *corrector) evaluate(ip uint64, pred bool, s *scCtx) {
	c.tableIndices(ip, pred, &s.idx)
	s.idxFor = pred
	sum := int32(0)
	flat := c.flat
	for i, n := 0, c.numTables(); i < n; i++ {
		sum += 2*int32(flat[s.idx[i]]) + 1
	}
	s.sum = sum
	s.pred = sum >= 0
	s.used = false
}

// train updates SC state after the branch resolves. s carries the
// prediction-time sums and indices so the update sees exactly what the
// predict path saw; tagePred is the pre-loop TAGE prediction the update
// tables are conditioned on (which can differ from the flag evaluate
// hashed with when the loop predictor overrode — the cached indices are
// reused only when the flags coincide).
func (c *corrector) train(ip, target uint64, taken, tagePred bool, s *scCtx) {
	// Threshold adaptation: when SC and TAGE disagreed, track which was
	// right and drift the override threshold accordingly.
	if s.pred != tagePred {
		if s.pred == taken {
			c.tc = satUpdate(c.tc, true, -64, 63)
		} else {
			c.tc = satUpdate(c.tc, false, -64, 63)
		}
		if c.tc == 63 {
			if c.threshold > scMinThresh {
				c.threshold--
			}
			c.tc = 0
		} else if c.tc == -64 {
			if c.threshold < scMaxThresh {
				c.threshold++
			}
			c.tc = 0
		}
	}

	// Counter updates: on SC misprediction or low confidence.
	scTaken := s.sum >= 0
	if scTaken != taken || abs32(s.sum) < c.threshold+10 {
		idx := &s.idx
		if s.idxFor != tagePred {
			// The loop predictor overrode TAGE at prediction time, so the
			// cached indices were hashed with a different bias flag than
			// the update needs; recompute (rare).
			var tmp [scMaxTables]uint32
			c.tableIndices(ip, tagePred, &tmp)
			idx = &tmp
		}
		flat := c.flat
		for i, n := 0, c.numTables(); i < n; i++ {
			flat[idx[i]] = satUpdate(flat[idx[i]], taken, scCtrMin, scCtrMax)
		}
	}

	// Local history update.
	li := c.localIndex(ip)
	c.localHist[li] <<= 1
	if taken {
		c.localHist[li] |= 1
	}

	// IMLI: count consecutive taken backward branches (inner-most loop
	// iterations). target==0 means the driver had no target information.
	if target != 0 && target < ip {
		if taken {
			if ip == c.lastBackIP || c.lastBackIP == 0 {
				if c.imli < 1<<20 {
					c.imli++
				}
			} else {
				c.imli = 1
			}
			c.lastBackIP = ip
		} else if ip == c.lastBackIP {
			c.imli = 0
		}
	}
}

func (c *corrector) pushGlobal(taken bool) {
	c.ghist <<= 1
	if taken {
		c.ghist |= 1
	}
}
