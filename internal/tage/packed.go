package tage

// Packed tagged-table word layout (DESIGN.md §10). Each tagged-table
// entry is one uint32 in a single contiguous array per predictor, banks
// laid out back to back — a struct-of-arrays replacement for the old
// 16-byte array-of-structs entry whose scattered loads dominated the
// lookup path:
//
//	bits  0..15  tag     (partial tag, TagBits wide, at most 16 bits)
//	bits 16..18  ctr+4   (3-bit signed prediction counter, biased)
//	bits 19..20  u       (2-bit usefulness, stored value — see below)
//	bit  21      valid
//	bits 22..31  stamp   (epoch of the last write, mod 2^10)
//
// The stored u is the value as of the stamped epoch; the live value is
// u >> (epoch - stamp) (usefulness aging is a global halving every
// UResetPeriod updates). agedU applies that pending shift on read, and
// every write re-materializes u and restamps — the lazy equivalent of
// the old eager full-table sweep, without its O(total-entries) latency
// spike inside Train. normalize() bounds stamp deltas far below the
// 10-bit wrap so the modular subtraction in agedU is always exact.
//
// The old entry's owner field (allocation-churn telemetry, not modeled
// hardware state) lives in an optional side table that exists only while
// an AllocStats collector is attached.
const (
	packedTagMask    = 0xffff
	packedCtrShift   = 16
	packedCtrBias    = 4 // stored ctr = value + 4 ∈ [0, 7]
	packedUShift     = 19
	packedUMask      = 0x3
	packedValid      = 1 << 21
	packedStampShift = 22
	packedStampBits  = 10
	packedStampMask  = (1 << packedStampBits) - 1

	// packedUStampClear masks away the u and stamp fields, the pair every
	// u write replaces together.
	packedUStampClear = ^uint32(packedUMask<<packedUShift | packedStampMask<<packedStampShift)

	// normalizeEvery is the epoch period of the restamping sweep. Any
	// word holding a nonzero u is restamped at most normalizeEvery epochs
	// after its last write, so live stamp deltas never reach the 2^10
	// wrap (512 < 1024) and lazy aging stays exactly equivalent to the
	// eager sweep. The sweep itself runs once per normalizeEvery *
	// UResetPeriod updates — amortized noise next to the per-update
	// O(total-entries) the eager design paid every UResetPeriod.
	normalizeEvery = 512
)

// packedCtr extracts the 3-bit signed prediction counter in [-4, 3].
func packedCtr(w uint32) int8 {
	return int8(w>>packedCtrShift&0x7) - packedCtrBias
}

// packWord assembles a full entry word. u is the live value (stamped now
// by the caller's stamp argument).
func packWord(tag uint16, ctr int8, u uint32, valid bool, stamp uint32) uint32 {
	w := uint32(tag) |
		uint32(ctr+packedCtrBias)<<packedCtrShift |
		u<<packedUShift |
		stamp<<packedStampShift
	if valid {
		w |= packedValid
	}
	return w
}
