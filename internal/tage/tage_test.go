package tage

import (
	"math/bits"
	"testing"

	"branchlab/internal/bp"
	"branchlab/internal/xrand"
)

var _ bp.Predictor = (*Predictor)(nil)
var _ bp.BranchObserver = (*Predictor)(nil)

func run(p bp.Predictor, seq func(i int) (uint64, bool), n int) float64 {
	correct := 0
	for i := 0; i < n; i++ {
		ip, taken := seq(i)
		pred := p.Predict(ip)
		if pred == taken {
			correct++
		}
		p.Train(ip, taken, pred)
	}
	return float64(correct) / float64(n)
}

func accuracyAfterWarmup(p bp.Predictor, seq func(i int) (uint64, bool), warm, measure int) float64 {
	run(p, seq, warm)
	correct := 0
	for i := warm; i < warm+measure; i++ {
		ip, taken := seq(i)
		pred := p.Predict(ip)
		if pred == taken {
			correct++
		}
		p.Train(ip, taken, pred)
	}
	return float64(correct) / float64(measure)
}

func TestConfigBudgets(t *testing.T) {
	prev := 0
	for _, kb := range []int{8, 64, 128, 256, 512, 1024} {
		cfg := NewConfig(kb)
		bits := cfg.StorageBits()
		nominal := kb * 8192
		if bits < nominal/4 || bits > nominal*2 {
			t.Errorf("%s: %d bits for nominal %d", cfg.Name, bits, nominal)
		}
		if bits <= prev {
			t.Errorf("%s: storage (%d bits) not larger than previous budget (%d)", cfg.Name, bits, prev)
		}
		prev = bits
	}
}

func TestConfigHistoryCeilings(t *testing.T) {
	if got := NewConfig(8).MaxHist; got != 1000 {
		t.Errorf("8KB max history = %d, want 1000 (paper §IV-A)", got)
	}
	if got := NewConfig(64).MaxHist; got != 3000 {
		t.Errorf("64KB max history = %d, want 3000 (paper §IV-A)", got)
	}
}

func TestHistLengthsGeometricAndIncreasing(t *testing.T) {
	cfg := NewConfig(64)
	lens := cfg.HistLengths()
	if lens[0] != cfg.MinHist || lens[len(lens)-1] != cfg.MaxHist {
		t.Errorf("series endpoints: %v", lens)
	}
	for i := 1; i < len(lens); i++ {
		if lens[i] <= lens[i-1] {
			t.Errorf("series not increasing at %d: %v", i, lens)
		}
	}
	// Geometric growth: later gaps much larger than earlier ones.
	if lens[len(lens)-1]-lens[len(lens)-2] <= lens[1]-lens[0] {
		t.Errorf("series does not look geometric: %v", lens)
	}
}

func TestConfigPanicsOnBadBudget(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewConfig(0) did not panic")
		}
	}()
	NewConfig(0)
}

func TestLearnsBiasedBranch(t *testing.T) {
	rng := xrand.New(1)
	seq := func(i int) (uint64, bool) { return 0x400, rng.Bool(0.95) }
	acc := accuracyAfterWarmup(New(Config8KB()), seq, 2000, 20000)
	if acc < 0.93 {
		t.Errorf("biased branch accuracy %v, want >= 0.93", acc)
	}
}

func TestLearnsAlternating(t *testing.T) {
	seq := func(i int) (uint64, bool) { return 0x400, i%2 == 0 }
	acc := accuracyAfterWarmup(New(Config8KB()), seq, 1000, 10000)
	if acc < 0.99 {
		t.Errorf("alternating branch accuracy %v, want ~1.0", acc)
	}
}

func TestLearnsLongPattern(t *testing.T) {
	// Period-97 pattern requires history beyond any bimodal/short-history
	// mechanism; tagged tables with long histories capture it.
	rng := xrand.New(7)
	pattern := make([]bool, 97)
	for i := range pattern {
		pattern[i] = rng.Bool(0.5)
	}
	seq := func(i int) (uint64, bool) { return 0x400, pattern[i%len(pattern)] }
	acc := accuracyAfterWarmup(New(Config8KB()), seq, 60000, 30000)
	if acc < 0.95 {
		t.Errorf("period-97 pattern accuracy %v, want >= 0.95", acc)
	}
}

func TestLearnsCorrelatedBranch(t *testing.T) {
	// Branch B repeats branch A's direction from three branches back.
	rng := xrand.New(3)
	var hist []bool
	seq := func(i int) (uint64, bool) {
		var d bool
		switch i % 3 {
		case 0, 1:
			d = rng.Bool(0.5)
			hist = append(hist, d)
			return uint64(0xA00 + (i%3)*0x100), d
		default:
			d = hist[len(hist)-2]
			hist = append(hist, d)
			return 0xC00, d
		}
	}
	acc := accuracyAfterWarmup(New(Config8KB()), seq, 30000, 30000)
	// Two of three branches are coin flips (~50%), one is deterministic
	// given history (~100%): overall >= ~0.62, and well above if TAGE
	// finds the correlation. Require the correlated branch is learned.
	if acc < 0.62 {
		t.Errorf("correlated stream accuracy %v, want >= 0.62", acc)
	}
}

func TestLoopComponentCatchesFixedTrips(t *testing.T) {
	// Trip count 37 with noisy surroundings: the loop predictor should
	// lock on where plain TAGE struggles at 8KB with polluted history.
	rng := xrand.New(9)
	k := 0
	seq := func(i int) (uint64, bool) {
		if i%2 == 1 {
			return 0xF00 + uint64(rng.Intn(16))*4, rng.Bool(0.5)
		}
		k++
		if k == 37 {
			k = 0
			return 0x500, false
		}
		return 0x500, true
	}
	withLoop := New(Config8KB())
	cfgNoLoop := Config8KB()
	cfgNoLoop.UseLoop = false
	noLoop := New(cfgNoLoop)
	a := accuracyAfterWarmup(withLoop, seq, 40000, 40000)
	b := accuracyAfterWarmup(noLoop, seq, 40000, 40000)
	if a < b-0.005 {
		t.Errorf("loop component hurt accuracy: with=%v without=%v", a, b)
	}
}

func TestRandomBranchStaysHard(t *testing.T) {
	// An irreducibly random branch must hover near 50%: a predictor that
	// reports much better is broken (leaking the outcome), much worse is
	// anti-learning.
	rng := xrand.New(11)
	seq := func(i int) (uint64, bool) { return 0x400, rng.Bool(0.5) }
	acc := accuracyAfterWarmup(New(Config8KB()), seq, 20000, 40000)
	if acc < 0.44 || acc > 0.56 {
		t.Errorf("random branch accuracy %v, want ~0.5", acc)
	}
}

func TestMoreStorageHelpsOnManyPatternBranches(t *testing.T) {
	// Hundreds of distinct patterned branches overflow the 8KB tagged
	// tables; 64KB holds them. This is the capacity effect behind the
	// paper's Fig 7 (biggest step from 8KB to 64KB).
	rng := xrand.New(13)
	const numBranches = 600
	patterns := make([][]bool, numBranches)
	for i := range patterns {
		p := make([]bool, 8+rng.Intn(24))
		for j := range p {
			p[j] = rng.Bool(0.5)
		}
		patterns[i] = p
	}
	counts := make([]int, numBranches)
	seq := func(i int) (uint64, bool) {
		b := rng.Intn(numBranches)
		d := patterns[b][counts[b]%len(patterns[b])]
		counts[b]++
		return 0x1000 + uint64(b)*16, d
	}
	small := accuracyAfterWarmup(New(Config8KB()), seq, 200000, 100000)
	// Reset the shared sequence state for a fair second run.
	rng = xrand.New(13)
	for i := range patterns {
		p := make([]bool, 8+rng.Intn(24))
		for j := range p {
			p[j] = rng.Bool(0.5)
		}
		patterns[i] = p
	}
	counts = make([]int, numBranches)
	big := accuracyAfterWarmup(New(Config64KB()), seq, 200000, 100000)
	if big <= small {
		t.Errorf("64KB (%v) should beat 8KB (%v) under capacity pressure", big, small)
	}
}

func TestObserveBranchShiftsHistory(t *testing.T) {
	p := New(Config8KB())
	// Unconditional branches must move the history so they are not
	// invisible to pattern matching.
	before := p.tab[0].idxComp
	p.ObserveBranch(0x100, 0x200, 7 /* KindJump */, true)
	// History of all-zero bits folded stays 0 only if the pushed bit is
	// 0; unconditional pushes 1.
	after := p.tab[0].idxComp
	if before == after {
		t.Error("ObserveBranch did not shift folded history")
	}
	// Conditional kinds are ignored here (handled via Train).
	mid := p.tab[0].idxComp
	p.ObserveBranch(0x100, 0x200, 6 /* KindCondBr */, true)
	if p.tab[0].idxComp != mid {
		t.Error("ObserveBranch must ignore conditional branches")
	}
}

func TestAllocTelemetry(t *testing.T) {
	p := New(Config8KB())
	stats := p.EnableAllocTracking()
	rng := xrand.New(5)
	// A hard random branch forces continual allocation churn.
	hard := uint64(0xAAA0)
	for i := 0; i < 60000; i++ {
		var ip uint64
		var taken bool
		if i%3 == 0 {
			ip, taken = hard, rng.Bool(0.5)
		} else {
			ip, taken = 0xE00+uint64(i%7)*4, i%2 == 0
		}
		pred := p.Predict(ip)
		p.Train(ip, taken, pred)
	}
	if stats.TotalAllocs == 0 {
		t.Fatal("no allocations recorded")
	}
	if stats.Allocs(hard) == 0 {
		t.Error("hard branch has no allocations")
	}
	if stats.UniqueEntries(hard) == 0 {
		t.Error("hard branch has no unique entries")
	}
	if stats.Allocs(hard) < uint64(stats.UniqueEntries(hard)) {
		t.Error("allocations must be >= unique entries")
	}
	// The hard branch should dominate allocation share, as the paper
	// reports for H2Ps (3.6% each vs <0.01% for ordinary branches).
	if stats.ShareOfAllocs(hard) < 0.3 {
		t.Errorf("hard branch share of allocs = %v, want dominant", stats.ShareOfAllocs(hard))
	}
}

func TestFoldedHistoryMatchesDirect(t *testing.T) {
	// The incrementally folded value must equal folding the full history
	// directly, for every step.
	g := newGlobalHist(128)
	f := newFolded(37, 9)
	rng := xrand.New(21)
	var hist []uint8
	for step := 0; step < 2000; step++ {
		b := uint8(0)
		if rng.Bool(0.5) {
			b = 1
		}
		hist = append([]uint8{b}, hist...)
		g.push(b == 1)
		f.update(uint64(g.at(0)), uint64(g.at(f.origLen)))
		// Direct fold: XOR 9-bit chunks of the newest 37 bits.
		var direct uint64
		for i := 0; i < 37; i++ {
			var bit uint64
			if i < len(hist) {
				bit = uint64(hist[i])
			}
			direct ^= bit << (uint(i) % 9)
		}
		_ = direct
		// The exact chunking differs from the incremental scheme's
		// algebra; instead verify the invariant that the folded register
		// is a function of exactly the newest 37 bits: replaying the same
		// 37 bits from a clean state must give the same comp.
		if step > 50 {
			g2 := newGlobalHist(128)
			f2 := newFolded(37, 9)
			for i := min(len(hist), 37) - 1; i >= 0; i-- {
				g2.push(hist[i] == 1)
				f2.update(uint64(g2.at(0)), uint64(g2.at(f2.origLen)))
			}
			if f2.comp != f.comp {
				t.Fatalf("step %d: folded history is not a function of the last 37 bits: %x vs %x",
					step, f.comp, f2.comp)
			}
		}
	}
}

func TestPredictTrainWithoutPredictStillWorks(t *testing.T) {
	// Train must tolerate a missing Predict context (e.g. a driver that
	// batches predictions).
	p := New(Config8KB())
	for i := 0; i < 1000; i++ {
		p.Train(0x400, i%2 == 0, false)
	}
	// And still have learned something sane.
	acc := accuracyAfterWarmup(p, func(i int) (uint64, bool) { return 0x400, i%2 == 0 }, 100, 1000)
	if acc < 0.9 {
		t.Errorf("accuracy after context-less training: %v", acc)
	}
}

func TestIMLIRequiresTargets(t *testing.T) {
	// Smoke-test TrainWithTarget with backward targets; must not panic
	// and should keep accuracy on a loop-ish pattern.
	p := New(Config8KB())
	correct, n := 0, 20000
	k := 0
	for i := 0; i < n; i++ {
		k++
		taken := k != 9
		if !taken {
			k = 0
		}
		pred := p.Predict(0x900)
		if pred == taken {
			correct++
		}
		p.TrainWithTarget(0x900, 0x800, taken, pred)
	}
	if float64(correct)/float64(n) < 0.95 {
		t.Errorf("loop with IMLI targets: accuracy %v", float64(correct)/float64(n))
	}
}

func BenchmarkTAGE8(b *testing.B)   { benchTage(b, Config8KB()) }
func BenchmarkTAGE64(b *testing.B)  { benchTage(b, Config64KB()) }
func BenchmarkTAGE512(b *testing.B) { benchTage(b, NewConfig(512)) }

func benchTage(b *testing.B, cfg Config) {
	p := New(cfg)
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip := 0x400 + uint64(i%256)*4
		taken := rng.Bool(0.7)
		pred := p.Predict(ip)
		p.Train(ip, taken, pred)
	}
}

func TestPredictorDeterminism(t *testing.T) {
	// Two instances fed the identical sequence must produce identical
	// predictions — the property that makes experiment sweeps replayable.
	a, b := New(Config8KB()), New(Config8KB())
	rng := xrand.New(99)
	for i := 0; i < 30000; i++ {
		ip := 0x400 + uint64(rng.Intn(300))*64
		taken := rng.Bool(0.6)
		pa, pb := a.Predict(ip), b.Predict(ip)
		if pa != pb {
			t.Fatalf("diverged at step %d", i)
		}
		a.TrainWithTarget(ip, ip+64, taken, pa)
		b.TrainWithTarget(ip, ip+64, taken, pb)
	}
}

// --- SupraX-derived behavioral spec tests --------------------------------
//
// The SupraX CLZ-TAGE suite (SNIPPETS.md) treats its tests as a hardware
// behavioral spec: loop-dominated streams, tag discrimination under index
// aliasing, cold-start warmup, and allocation churn. The same contract is
// pinned here against both the packed engine and the scalar reference
// oracle — each behavior must hold for both, and the two must agree
// prediction for prediction.

// specEngine is the surface the spec tests drive; both engines satisfy it.
type specEngine interface {
	bp.Predictor
	TrainWithTarget(ip, target uint64, taken, pred bool)
}

var specEngines = []struct {
	name string
	mk   func(cfg Config) specEngine
}{
	{"packed", func(cfg Config) specEngine { return New(cfg) }},
	{"reference", func(cfg Config) specEngine { return NewReference(cfg) }},
}

// runSpec drives seq through a fresh instance of each engine, checks the
// post-warmup accuracy bound on both, and requires the engines to agree
// on every single prediction.
func runSpec(t *testing.T, cfg Config, seq func(i int) (uint64, bool), warm, measure int, minAcc float64) {
	t.Helper()
	ps := make([]specEngine, len(specEngines))
	for i, e := range specEngines {
		ps[i] = e.mk(cfg)
	}
	correct := make([]int, len(ps))
	for i := 0; i < warm+measure; i++ {
		ip, taken := seq(i)
		var first bool
		for k, p := range ps {
			pred := p.Predict(ip)
			if k == 0 {
				first = pred
			} else if pred != first {
				t.Fatalf("step %d: %s predicts %v, %s predicts %v",
					i, specEngines[0].name, first, specEngines[k].name, pred)
			}
			if pred == taken && i >= warm {
				correct[k]++
			}
			p.Train(ip, taken, pred)
		}
	}
	for k := range ps {
		acc := float64(correct[k]) / float64(measure)
		if acc < minAcc {
			t.Errorf("%s: accuracy %v, want >= %v", specEngines[k].name, acc, minAcc)
		}
	}
}

func TestSpecLoopDominated(t *testing.T) {
	// Nested fixed-trip loops (the SupraX loop-dominated vector): an inner
	// loop of 7 iterations inside an outer loop of 23. Both exit branches
	// are deterministic functions of history; a TAGE + loop-predictor
	// stack must be near-perfect once warm.
	inner, outer := 0, 0
	seq := func(i int) (uint64, bool) {
		if i%2 == 0 {
			inner++
			if inner == 7 {
				inner = 0
				return 0x1000, false
			}
			return 0x1000, true
		}
		outer++
		if outer == 23 {
			outer = 0
			return 0x2000, false
		}
		return 0x2000, true
	}
	runSpec(t, Config8KB(), seq, 30000, 30000, 0.98)
}

func TestSpecTagAliasing(t *testing.T) {
	// Two branches engineered to collide in table indices (IPs differing
	// only in high bits beyond the index fold) but with opposite fixed
	// directions. Partial tags must keep them apart: both sides predicted
	// nearly perfectly, rather than thrashing a shared entry.
	seq := func(i int) (uint64, bool) {
		if i%2 == 0 {
			return 0x40_0000_0400, true
		}
		return 0x80_0000_0400, false
	}
	runSpec(t, Config8KB(), seq, 4000, 20000, 0.99)
}

func TestSpecWarmup(t *testing.T) {
	// Cold-start contract: a fresh predictor must produce a defined
	// prediction for any IP (base-predictor fallback — there is no "no
	// match"), both engines must agree while stone cold, and accuracy on a
	// learnable pattern must improve from the cold window to the warm one.
	for _, e := range specEngines {
		a, b := e.mk(Config8KB()), e.mk(Config8KB())
		rng := xrand.New(17)
		for i := 0; i < 64; i++ {
			ip := rng.Uint64()
			if a.Predict(ip) != b.Predict(ip) {
				t.Errorf("%s: cold prediction not deterministic at ip %#x", e.name, ip)
			}
		}
	}
	pattern := []bool{true, true, false, true, false, false, true, false, true, true, false}
	seq := func(i int) (uint64, bool) { return 0x400, pattern[i%len(pattern)] }
	for _, e := range specEngines {
		p := e.mk(Config8KB())
		cold := accuracyAfterWarmup(p, seq, 0, 500)
		warm := accuracyAfterWarmup(p, seq, 10000, 10000)
		if warm <= cold {
			t.Errorf("%s: warmup did not help (cold %v, warm %v)", e.name, cold, warm)
		}
		if warm < 0.97 {
			t.Errorf("%s: warm accuracy %v on period-%d pattern", e.name, warm, len(pattern))
		}
	}
}

func TestSpecAllocationChurn(t *testing.T) {
	// Allocation-churn contract: a hard random branch keeps allocating
	// (the paper's H2P churn signature), and the packed engine's side-table
	// telemetry must agree event for event with the reference's inline
	// owner fields — same totals, same per-IP allocation counts, same
	// unique-entry sets, same victim attributions.
	packed := New(Config8KB())
	ref := NewReference(Config8KB())
	sa, sb := packed.EnableAllocTracking(), ref.EnableAllocTracking()
	rng := xrand.New(23)
	hard := uint64(0xAAA0)
	for i := 0; i < 50000; i++ {
		var ip uint64
		var taken bool
		if i%3 == 0 {
			ip, taken = hard, rng.Bool(0.5)
		} else {
			ip, taken = 0xE00+uint64(i%11)*4, i%2 == 0
		}
		pa, pb := packed.Predict(ip), ref.Predict(ip)
		if pa != pb {
			t.Fatalf("engines diverged at step %d", i)
		}
		packed.Train(ip, taken, pa)
		ref.Train(ip, taken, pb)
	}
	if sa.TotalAllocs == 0 {
		t.Fatal("no allocation churn generated")
	}
	if sa.TotalAllocs != sb.TotalAllocs {
		t.Errorf("TotalAllocs: packed %d, reference %d", sa.TotalAllocs, sb.TotalAllocs)
	}
	if len(sa.AllocsPerIP) != len(sb.AllocsPerIP) {
		t.Errorf("AllocsPerIP size: packed %d, reference %d", len(sa.AllocsPerIP), len(sb.AllocsPerIP))
	}
	for ip, n := range sa.AllocsPerIP {
		if sb.AllocsPerIP[ip] != n {
			t.Errorf("Allocs(%#x): packed %d, reference %d", ip, n, sb.AllocsPerIP[ip])
		}
		if sa.UniqueEntries(ip) != sb.UniqueEntries(ip) {
			t.Errorf("UniqueEntries(%#x): packed %d, reference %d", ip, sa.UniqueEntries(ip), sb.UniqueEntries(ip))
		}
	}
	if len(sa.EvictionsPerIP) != len(sb.EvictionsPerIP) {
		t.Errorf("EvictionsPerIP size: packed %d, reference %d", len(sa.EvictionsPerIP), len(sb.EvictionsPerIP))
	}
	for ip, n := range sa.EvictionsPerIP {
		if sb.EvictionsPerIP[ip] != n {
			t.Errorf("Evictions(%#x): packed %d, reference %d", ip, n, sb.EvictionsPerIP[ip])
		}
	}
}

func TestSpecLongestMatchBitmap(t *testing.T) {
	// The packed engine resolves longest-match provider/alternate selection
	// with bits.Len32 over the match bitmap (the SupraX CLZ idiom). Verify
	// it against the reference's top-down scan for every bitmap over 12
	// banks.
	const n = 12
	for match := uint32(0); match < 1<<n; match++ {
		provScan, altScan := -1, -1
		for i := n - 1; i >= 0; i-- {
			if match&(1<<uint(i)) != 0 {
				if provScan < 0 {
					provScan = i
				} else {
					altScan = i
					break
				}
			}
		}
		provCLZ, altCLZ := -1, -1
		if match != 0 {
			provCLZ = bits.Len32(match) - 1
			if rest := match &^ (1 << uint(provCLZ)); rest != 0 {
				altCLZ = bits.Len32(rest) - 1
			}
		}
		if provCLZ != provScan || altCLZ != altScan {
			t.Fatalf("bitmap %#03x: CLZ (%d, %d) != scan (%d, %d)",
				match, provCLZ, altCLZ, provScan, altScan)
		}
	}
}

func TestPackedWordRoundTrip(t *testing.T) {
	// Every field of the packed word must survive a pack/extract cycle,
	// for the full range of every field.
	for _, tag := range []uint16{0, 1, 0x7f, 0xff, 0x3fff, 0xffff} {
		for ctr := int8(-4); ctr <= 3; ctr++ {
			for u := uint32(0); u <= 3; u++ {
				for _, valid := range []bool{false, true} {
					for _, stamp := range []uint32{0, 1, 511, packedStampMask} {
						w := packWord(tag, ctr, u, valid, stamp)
						if got := uint16(w & packedTagMask); got != tag {
							t.Fatalf("tag: packed %#x, got %#x", tag, got)
						}
						if got := packedCtr(w); got != ctr {
							t.Fatalf("ctr: packed %d, got %d", ctr, got)
						}
						if got := w >> packedUShift & packedUMask; got != u {
							t.Fatalf("u: packed %d, got %d", u, got)
						}
						if got := w&packedValid != 0; got != valid {
							t.Fatalf("valid: packed %v, got %v", valid, got)
						}
						if got := w >> packedStampShift & packedStampMask; got != stamp {
							t.Fatalf("stamp: packed %d, got %d", stamp, got)
						}
					}
				}
			}
		}
	}
}

func TestStorageScalingMonotoneAccuracy(t *testing.T) {
	// Under capacity pressure, accuracy should not degrade as storage
	// grows 8 -> 64 -> 256KB (the monotonicity Fig 7 depends on).
	gen := func(p *Predictor) float64 {
		rng := xrand.New(7)
		patterns := make([]uint64, 800)
		for i := range patterns {
			patterns[i] = rng.Uint64() | 1
		}
		counts := make([]uint64, len(patterns))
		correct, total := 0, 0
		for i := 0; i < 250000; i++ {
			b := rng.Intn(len(patterns))
			taken := (patterns[b]>>(counts[b]%31))&1 == 1
			counts[b]++
			ip := 0x4000 + uint64(b)*64
			pred := p.Predict(ip)
			if i > 50000 {
				if pred == taken {
					correct++
				}
				total++
			}
			p.Train(ip, taken, pred)
		}
		return float64(correct) / float64(total)
	}
	a8 := gen(New(NewConfig(8)))
	a64 := gen(New(NewConfig(64)))
	a256 := gen(New(NewConfig(256)))
	if a64 < a8-0.01 || a256 < a64-0.01 {
		t.Errorf("accuracy not monotone in storage: 8KB=%v 64KB=%v 256KB=%v", a8, a64, a256)
	}
	if a256 <= a8 {
		t.Errorf("large budget (%v) should beat small (%v) under pressure", a256, a8)
	}
}
