package tage_test

import (
	"testing"

	"branchlab/internal/core"
	"branchlab/internal/tage"
	"branchlab/internal/trace"
	"branchlab/internal/workload"
	"branchlab/internal/xrand"
)

// The packed engine's contract is byte-identical behaviour with the
// scalar Reference oracle: same prediction stream, same mispredict
// counts, same allocation telemetry, over real workload traces and over
// every internal mechanism the rearchitecture touched (packed words,
// bitmap provider selection, cached SC indices, lazy usefulness aging,
// the batch block path). These property tests enforce that contract; the
// CI determinism matrix enforces the same thing end to end at the
// artifact level.

// engine is the scalar surface both implementations share.
type engine interface {
	Predict(ip uint64) bool
	TrainWithTarget(ip, target uint64, taken, pred bool)
	ObserveBranch(ip, target uint64, kind trace.Kind, taken bool)
}

// lockstep replays buf through both engines with the measurement loop's
// per-instruction semantics, failing on the first diverging prediction,
// and returns the (identical) mispredict count.
func lockstep(t *testing.T, name string, buf *trace.Buffer, a, b engine) uint64 {
	t.Helper()
	var mispreds uint64
	for i := 0; i < buf.Len(); i++ {
		inst := buf.At(i)
		if inst.Kind == trace.KindCondBr {
			pa, pb := a.Predict(inst.IP), b.Predict(inst.IP)
			if pa != pb {
				t.Fatalf("%s: engines diverged at instruction %d (ip %#x): packed %v, reference %v",
					name, i, inst.IP, pa, pb)
			}
			if pa != inst.Taken {
				mispreds++
			}
			a.TrainWithTarget(inst.IP, inst.Target, inst.Taken, pa)
			b.TrainWithTarget(inst.IP, inst.Target, inst.Taken, pb)
		} else if inst.Kind.IsBranch() {
			a.ObserveBranch(inst.IP, inst.Target, inst.Kind, inst.Taken)
			b.ObserveBranch(inst.IP, inst.Target, inst.Kind, inst.Taken)
		}
	}
	return mispreds
}

func allSpecs() []*workload.Spec {
	return append(workload.SPECint2017Like(), workload.LCFLike()...)
}

func TestPackedMatchesReferenceAllWorkloads(t *testing.T) {
	// Every workload of both suites, input 0: the packed engine and the
	// scalar reference must emit the same prediction for every dynamic
	// branch. 150k instructions reaches deep enough to exercise
	// allocation pressure, the loop predictor and the corrector on every
	// trace-visible signature in the suite.
	const budget = 150_000
	for _, spec := range allSpecs() {
		buf := spec.Record(0, budget)
		packed := tage.New(tage.Config8KB())
		ref := tage.NewReference(tage.Config8KB())
		miss := lockstep(t, spec.Name, buf, packed, ref)
		if miss == 0 {
			t.Errorf("%s: zero mispredictions over %d insts — stream not exercising the predictor", spec.Name, budget)
		}
	}
}

func TestPackedMatchesReferenceTelemetry(t *testing.T) {
	// With collectors attached, the packed engine's side-table owner
	// telemetry must reproduce the reference's inline owners exactly over
	// a real trace: same event totals, same per-IP counts, same victim
	// attributions.
	spec := allSpecs()[0]
	buf := spec.Record(0, 150_000)
	packed := tage.New(tage.Config8KB())
	ref := tage.NewReference(tage.Config8KB())
	sa, sb := packed.EnableAllocTracking(), ref.EnableAllocTracking()
	lockstep(t, spec.Name, buf, packed, ref)
	if sa.TotalAllocs == 0 {
		t.Fatal("trace generated no allocations")
	}
	if sa.TotalAllocs != sb.TotalAllocs {
		t.Errorf("TotalAllocs: packed %d, reference %d", sa.TotalAllocs, sb.TotalAllocs)
	}
	if len(sa.AllocsPerIP) != len(sb.AllocsPerIP) {
		t.Errorf("AllocsPerIP size: packed %d, reference %d", len(sa.AllocsPerIP), len(sb.AllocsPerIP))
	}
	for ip, n := range sa.AllocsPerIP {
		if sb.AllocsPerIP[ip] != n || sa.UniqueEntries(ip) != sb.UniqueEntries(ip) {
			t.Errorf("ip %#x: allocs packed %d/%d unique, reference %d/%d unique",
				ip, n, sa.UniqueEntries(ip), sb.AllocsPerIP[ip], sb.UniqueEntries(ip))
		}
	}
	for ip, n := range sa.EvictionsPerIP {
		if sb.EvictionsPerIP[ip] != n {
			t.Errorf("evictions of %#x: packed %d, reference %d", ip, n, sb.EvictionsPerIP[ip])
		}
	}
	if len(sa.EvictionsPerIP) != len(sb.EvictionsPerIP) {
		t.Errorf("EvictionsPerIP size: packed %d, reference %d", len(sa.EvictionsPerIP), len(sb.EvictionsPerIP))
	}
}

func TestLazyAgingMatchesEagerSweep(t *testing.T) {
	// The lazy epoch aging must be exactly equivalent to the reference's
	// eager full-table u >>= 1 sweep. The default UResetPeriod (2^18) is
	// never reached in a short test, so shrink it until epochs tick every
	// few updates — UResetPeriod=1 drives an epoch per train and crosses
	// the normalize() sweep hundreds of times, stressing the stamp
	// arithmetic far beyond any real configuration.
	for _, period := range []uint64{1, 64, 4096} {
		cfg := tage.Config8KB()
		cfg.UResetPeriod = period
		packed := tage.New(cfg)
		ref := tage.NewReference(cfg)
		sa, sb := packed.EnableAllocTracking(), ref.EnableAllocTracking()
		rng := xrand.New(31)
		for i := 0; i < 120_000; i++ {
			ip := 0x4000 + uint64(rng.Intn(200))*8
			var taken bool
			switch ip % 3 {
			case 0:
				taken = rng.Bool(0.5) // hard: churns allocations and u bits
			case 1:
				taken = i%2 == 0
			default:
				taken = rng.Bool(0.9)
			}
			pa, pb := packed.Predict(ip), ref.Predict(ip)
			if pa != pb {
				t.Fatalf("UResetPeriod=%d: diverged at step %d (ip %#x)", period, i, ip)
			}
			packed.TrainWithTarget(ip, ip+16, taken, pa)
			ref.TrainWithTarget(ip, ip+16, taken, pb)
		}
		if sa.TotalAllocs != sb.TotalAllocs {
			t.Errorf("UResetPeriod=%d: TotalAllocs packed %d, reference %d", period, sa.TotalAllocs, sb.TotalAllocs)
		}
	}
}

// scalarOnly hides the packed engine's RunBlock so core.RunBlocks falls
// back to the per-instruction loop, exposing the batch/scalar contrast.
type scalarOnly struct{ p *tage.Predictor }

func (s scalarOnly) Predict(ip uint64) bool            { return s.p.Predict(ip) }
func (s scalarOnly) Train(ip uint64, taken, pred bool) { s.p.Train(ip, taken, pred) }
func (s scalarOnly) Name() string                      { return s.p.Name() }
func (s scalarOnly) TrainWithTarget(ip, target uint64, taken, pred bool) {
	s.p.TrainWithTarget(ip, target, taken, pred)
}
func (s scalarOnly) ObserveBranch(ip, target uint64, kind trace.Kind, taken bool) {
	s.p.ObserveBranch(ip, target, kind, taken)
}

func TestBatchPathMatchesScalarPath(t *testing.T) {
	// core.RunBlocks must produce identical RunStats whether the packed
	// engine consumes whole blocks (bp.BlockRunner), the same engine is
	// driven per instruction (wrapper hiding RunBlock), or the reference
	// runs the scalar loop — at more than one block length, so nothing
	// depends on where block boundaries fall.
	const budget = 150_000
	for _, spec := range allSpecs()[:3] {
		buf := spec.Record(0, budget)
		for _, blockLen := range []int{512, trace.DefaultBlockLen} {
			batch := core.RunBlocks(buf.BlockStream(blockLen), tage.New(tage.Config8KB()))
			scalar := core.RunBlocks(buf.BlockStream(blockLen), scalarOnly{tage.New(tage.Config8KB())})
			ref := core.RunBlocks(buf.BlockStream(blockLen), tage.NewReference(tage.Config8KB()))
			if batch != scalar {
				t.Errorf("%s blockLen=%d: batch %+v != scalar %+v", spec.Name, blockLen, batch, scalar)
			}
			if batch != ref {
				t.Errorf("%s blockLen=%d: batch %+v != reference %+v", spec.Name, blockLen, batch, ref)
			}
		}
	}
}
