package tage

// AllocStats aggregates tagged-entry allocation telemetry, the instrument
// behind the paper's §IV-A finding that H2P branches churn through TAGE
// storage (median 13,093 allocations against 3,990 unique entries per
// H2P, versus 4 and 4 for ordinary branches).
type AllocStats struct {
	// AllocsPerIP counts allocation events per branch IP.
	AllocsPerIP map[uint64]uint64
	// unique tracks the set of (table, index) slots each IP has ever
	// occupied.
	unique map[uint64]map[uint32]struct{}
	// EvictionsPerIP counts, per victim IP, how many times one of its
	// entries was reclaimed by another branch.
	EvictionsPerIP map[uint64]uint64
	// TotalAllocs is the global allocation event count.
	TotalAllocs uint64
}

func newAllocStats() *AllocStats {
	return &AllocStats{
		AllocsPerIP:    make(map[uint64]uint64),
		unique:         make(map[uint64]map[uint32]struct{}),
		EvictionsPerIP: make(map[uint64]uint64),
	}
}

// EnableAllocTracking switches on allocation telemetry and returns the
// collector that will accumulate it. Tracking costs a map update per
// allocation; predictions are unaffected.
//
// The per-entry owner (the IP that allocated each tagged entry, needed
// for victim attribution) is measurement telemetry, not modeled hardware
// state: it lives in a side table that is only allocated here, so an
// untracked predictor carries no owner storage at all. Attach the
// collector before the first Train — entries allocated earlier have no
// recorded owner and their eviction would go unattributed.
func (p *Predictor) EnableAllocTracking() *AllocStats {
	p.allocs = newAllocStats()
	if p.owners == nil {
		p.owners = make([][]uint64, p.cfg.NumTables)
		for i := range p.owners {
			p.owners[i] = make([]uint64, int(p.tab[i].idxMask)+1)
		}
	}
	return p.allocs
}

// record accumulates one allocation event: ip claimed (table, index),
// evicting victim if victimValid.
func (a *AllocStats) record(ip uint64, table, index int, victim uint64, victimValid bool) {
	a.TotalAllocs++
	a.AllocsPerIP[ip]++
	slot := uint32(table)<<24 | uint32(index)
	set, ok := a.unique[ip]
	if !ok {
		set = make(map[uint32]struct{})
		a.unique[ip] = set
	}
	set[slot] = struct{}{}
	if victimValid && victim != ip {
		a.EvictionsPerIP[victim]++
	}
}

// UniqueEntries returns how many distinct table slots ip has ever been
// allocated.
func (a *AllocStats) UniqueEntries(ip uint64) int { return len(a.unique[ip]) }

// Allocs returns the number of allocation events for ip.
func (a *AllocStats) Allocs(ip uint64) uint64 { return a.AllocsPerIP[ip] }

// ShareOfAllocs returns ip's fraction of all allocation events.
func (a *AllocStats) ShareOfAllocs(ip uint64) float64 {
	if a.TotalAllocs == 0 {
		return 0
	}
	return float64(a.AllocsPerIP[ip]) / float64(a.TotalAllocs)
}
