package tage

import (
	"branchlab/internal/bp"
	"branchlab/internal/trace"
)

// entry is one tagged-table entry. Owner records the IP that allocated the
// entry; it is measurement telemetry for the §IV-A churn study, not part
// of the modeled hardware budget.
type entry struct {
	tag   uint16
	ctr   int8 // 3-bit signed, [-4, 3]
	u     uint8
	valid bool
	owner uint64
}

// Predictor is a TAGE-SC-L instance. It implements bp.Predictor and
// bp.BranchObserver; drivers that know branch targets should use
// TrainWithTarget so the IMLI component sees loop-back edges.
type Predictor struct {
	cfg      Config
	histLens []int

	bimodal []int8
	tables  [][]entry
	ghist   *globalHist
	phist   uint64 // path history (low IP bits)
	fIdx    []folded
	fTag0   []folded
	fTag1   []folded

	loop *bp.Loop
	sc   *corrector

	useAltOnNA int8 // chooses alt prediction for newly allocated entries
	tick       uint64
	rngState   uint64 // for probabilistic allocation spreading

	// Prediction context cached between Predict and Train.
	ctx    predCtx
	ctxOK  bool
	ctxIP  uint64
	allocs *AllocStats
}

type predCtx struct {
	idx      [maxTables]uint32
	tag      [maxTables]uint16
	provider int // -1 = bimodal
	altTable int // -1 = bimodal
	provPred bool
	altPred  bool
	newAlloc bool
	tagePred bool // post alt-choice TAGE prediction
	loopPred bool
	loopHit  bool
	scSum    int32
	scPred   bool
	scUsed   bool
	final    bool
}

const maxTables = 20

// New returns a TAGE-SC-L predictor for the given configuration.
func New(cfg Config) *Predictor {
	if cfg.NumTables > maxTables {
		panic("tage: too many tagged tables")
	}
	p := &Predictor{
		cfg:      cfg,
		histLens: cfg.HistLengths(),
		bimodal:  make([]int8, 1<<cfg.LogBimodal),
		ghist:    newGlobalHist(cfg.MaxHist + 64),
		rngState: 0x853c49e6748fea9b,
	}
	p.tables = make([][]entry, cfg.NumTables)
	p.fIdx = make([]folded, cfg.NumTables)
	p.fTag0 = make([]folded, cfg.NumTables)
	p.fTag1 = make([]folded, cfg.NumTables)
	for i := 0; i < cfg.NumTables; i++ {
		p.tables[i] = make([]entry, 1<<cfg.LogTagged[i])
		p.fIdx[i] = newFolded(p.histLens[i], cfg.LogTagged[i])
		p.fTag0[i] = newFolded(p.histLens[i], cfg.TagBits[i])
		p.fTag1[i] = newFolded(p.histLens[i], cfg.TagBits[i]-1)
	}
	if cfg.UseLoop {
		p.loop = bp.NewLoop(cfg.LogLoop)
	}
	if cfg.UseSC {
		p.sc = newCorrector(cfg)
	}
	return p
}

// Name implements bp.Predictor.
func (p *Predictor) Name() string { return p.cfg.Name }

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

func (p *Predictor) nextRand() uint32 {
	p.rngState = p.rngState*6364136223846793005 + 1442695040888963407
	return uint32(p.rngState >> 33)
}

// mixIP spreads instruction-pointer entropy across the low bits. Branch
// IPs are aligned and clustered in real programs; without full mixing,
// structured IP layouts systematically collide in the bimodal and tagged
// tables.
func mixIP(ip uint64) uint64 {
	x := ip >> 2
	x ^= x >> 17
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return x
}

func (p *Predictor) bimodalIndex(ip uint64) uint64 {
	return mixIP(ip) & ((1 << p.cfg.LogBimodal) - 1)
}

func (p *Predictor) compute(ip uint64) {
	hip := mixIP(ip)
	for i := 0; i < p.cfg.NumTables; i++ {
		logT := p.cfg.LogTagged[i]
		idx := hip ^ hip>>(logT-3) ^ p.fIdx[i].comp ^ p.phist&((1<<minU(uint(p.histLens[i]), 16))-1)
		p.ctx.idx[i] = uint32(idx & ((1 << logT) - 1))
		tag := hip>>7 ^ p.fTag0[i].comp ^ p.fTag1[i].comp<<1
		p.ctx.tag[i] = uint16(tag & ((1 << p.cfg.TagBits[i]) - 1))
	}
}

func minU(a, b uint) uint {
	if a < b {
		return a
	}
	return b
}

// predictInternal fills p.ctx for ip.
func (p *Predictor) predictInternal(ip uint64) {
	p.ctx = predCtx{provider: -1, altTable: -1}
	p.compute(ip)

	for i := p.cfg.NumTables - 1; i >= 0; i-- {
		e := &p.tables[i][p.ctx.idx[i]]
		if e.valid && e.tag == p.ctx.tag[i] {
			if p.ctx.provider < 0 {
				p.ctx.provider = i
			} else {
				p.ctx.altTable = i
				break
			}
		}
	}

	bimPred := p.bimodal[p.bimodalIndex(ip)] >= 0
	p.ctx.altPred = bimPred
	if p.ctx.altTable >= 0 {
		p.ctx.altPred = p.tables[p.ctx.altTable][p.ctx.idx[p.ctx.altTable]].ctr >= 0
	}
	if p.ctx.provider >= 0 {
		e := &p.tables[p.ctx.provider][p.ctx.idx[p.ctx.provider]]
		p.ctx.provPred = e.ctr >= 0
		p.ctx.newAlloc = e.u == 0 && (e.ctr == 0 || e.ctr == -1)
		if p.ctx.newAlloc && p.useAltOnNA >= 0 {
			p.ctx.tagePred = p.ctx.altPred
		} else {
			p.ctx.tagePred = p.ctx.provPred
		}
	} else {
		p.ctx.provPred = bimPred
		p.ctx.tagePred = bimPred
	}

	p.ctx.final = p.ctx.tagePred

	// Loop predictor override.
	if p.loop != nil {
		p.ctx.loopHit = p.loop.Confident(ip)
		if p.ctx.loopHit {
			p.ctx.loopPred = p.loop.Predict(ip)
			p.ctx.final = p.ctx.loopPred
		}
	}

	// Statistical corrector arbitration.
	if p.sc != nil {
		p.ctx.scSum = p.sc.sum(ip, p.ctx.final)
		p.ctx.scPred = p.ctx.scSum >= 0
		if p.ctx.scPred != p.ctx.final && abs32(p.ctx.scSum) >= p.sc.threshold {
			p.ctx.scUsed = true
			p.ctx.final = p.ctx.scPred
		}
	}
}

// Predict implements bp.Predictor.
func (p *Predictor) Predict(ip uint64) bool {
	p.predictInternal(ip)
	p.ctxOK = true
	p.ctxIP = ip
	return p.ctx.final
}

// Train implements bp.Predictor.
func (p *Predictor) Train(ip uint64, taken, pred bool) {
	p.TrainWithTarget(ip, 0, taken, pred)
}

// TrainWithTarget updates the predictor with the resolved direction of the
// conditional branch at ip targeting target. Passing the real target lets
// the IMLI component detect backward (loop) edges.
func (p *Predictor) TrainWithTarget(ip, target uint64, taken, pred bool) {
	if !p.ctxOK || p.ctxIP != ip {
		p.predictInternal(ip)
	}
	p.ctxOK = false
	ctx := &p.ctx

	if p.loop != nil {
		p.loop.Train(ip, taken, ctx.loopPred)
	}
	if p.sc != nil {
		p.sc.train(ip, target, taken, ctx)
	}

	// Newly-allocated arbitration counter: when the provider entry is
	// fresh and disagrees with the alternate, learn which to trust.
	if ctx.provider >= 0 && ctx.newAlloc && ctx.provPred != ctx.altPred {
		p.useAltOnNA = satUpdate(p.useAltOnNA, ctx.altPred == taken, -8, 7)
	}

	// Provider (or bimodal) counter update.
	if ctx.provider >= 0 {
		e := &p.tables[ctx.provider][ctx.idx[ctx.provider]]
		e.ctr = satUpdate(e.ctr, taken, -4, 3)
		if ctx.provPred != ctx.altPred {
			if ctx.provPred == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		// When the provider proves useless and the alternate was right,
		// the entry can be reclaimed sooner.
		if ctx.provPred != taken && ctx.altPred == taken && e.u > 0 {
			e.u--
		}
	} else {
		i := p.bimodalIndex(ip)
		p.bimodal[i] = satUpdate(p.bimodal[i], taken, -2, 1)
	}

	// Allocate on a TAGE misprediction (pre-SC/loop), as in the reference
	// design: SC/loop corrections do not stop TAGE from learning.
	if ctx.tagePred != taken && ctx.provider < p.cfg.NumTables-1 {
		p.allocate(ip, taken, ctx)
	}

	// Periodic graceful aging of usefulness bits.
	p.tick++
	if p.tick >= p.cfg.UResetPeriod {
		p.tick = 0
		for _, t := range p.tables {
			for j := range t {
				t[j].u >>= 1
			}
		}
	}

	p.pushHistory(ip, taken)
}

// allocate claims up to two entries in tables with longer history than the
// provider, preferring entries whose usefulness has decayed to zero.
func (p *Predictor) allocate(ip uint64, taken bool, ctx *predCtx) {
	start := ctx.provider + 1
	// Probabilistically skip the first candidate table to spread
	// allocations across history lengths (as in the reference design).
	if start < p.cfg.NumTables-1 && p.nextRand()&1 == 0 {
		start++
	}
	allocated := 0
	for i := start; i < p.cfg.NumTables && allocated < 2; i++ {
		e := &p.tables[i][ctx.idx[i]]
		if e.u != 0 {
			continue
		}
		victim, victimValid := e.owner, e.valid
		var ctr int8
		if !taken {
			ctr = -1
		}
		*e = entry{tag: ctx.tag[i], ctr: ctr, valid: true, owner: ip}
		p.recordAlloc(ip, i, int(ctx.idx[i]), victim, victimValid)
		allocated++
		i++ // leave a gap: at most every other table
	}
	if allocated == 0 {
		// No free entry: decay usefulness on the candidate path so a
		// future allocation can succeed.
		for i := ctx.provider + 1; i < p.cfg.NumTables; i++ {
			e := &p.tables[i][ctx.idx[i]]
			if e.u > 0 {
				e.u--
			}
		}
	}
}

func (p *Predictor) pushHistory(ip uint64, taken bool) {
	p.ghist.push(taken)
	for i := range p.fIdx {
		p.fIdx[i].update(p.ghist)
		p.fTag0[i].update(p.ghist)
		p.fTag1[i].update(p.ghist)
	}
	p.phist = (p.phist << 1) | (ip>>2)&1
	if p.sc != nil {
		p.sc.pushGlobal(taken)
	}
	p.ctxOK = false
}

// ObserveBranch implements bp.BranchObserver: unconditional control flow
// still shifts the global/path history, exactly as in the CBP harness.
func (p *Predictor) ObserveBranch(ip, target uint64, kind trace.Kind, taken bool) {
	if kind == trace.KindCondBr {
		return // conditionals are handled by Train
	}
	p.pushHistory(ip, true)
}

func satUpdate(c int8, up bool, min, max int8) int8 {
	if up {
		if c < max {
			return c + 1
		}
		return c
	}
	if c > min {
		return c - 1
	}
	return c
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}
