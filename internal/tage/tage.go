package tage

import (
	"math/bits"

	"branchlab/internal/bp"
	"branchlab/internal/trace"
)

// Predictor is a TAGE-SC-L instance, rearchitected for replay throughput
// (DESIGN.md §10): tagged tables are bit-packed struct-of-arrays words in
// one contiguous array (packed.go), every per-lookup derived constant is
// hoisted into per-table arrays built once in New, longest-match provider
// selection is a validity/tag-match bitmap resolved with math/bits, and
// usefulness aging is lazy (epoch-stamped) instead of an O(total-entries)
// sweep inside Train. It is behaviourally identical to the scalar
// Reference engine — the equivalence property tests byte-compare the two
// across every workload.
//
// Predictor implements bp.Predictor, bp.BranchObserver and
// bp.BlockRunner; drivers that know branch targets should use
// TrainWithTarget so the IMLI component sees loop-back edges.
type Predictor struct {
	cfg      Config
	histLens []int

	bimodal []int8
	bank    []uint32 // all tagged tables, packed, bank i at tab[i].off

	// tab fuses every tagged table's hot per-branch state: the history
	// push and the lookup each walk this one array instead of eight
	// parallel slices.
	tab []tableMeta

	ghist *globalHist
	phist uint64 // path history (low IP bits)

	loop *bp.Loop
	sc   *corrector

	useAltOnNA int8   // chooses alt prediction for newly allocated entries
	tick       uint64 // updates since the last aging epoch
	epoch      uint64 // aging epochs elapsed (each halves every live u)
	rngState   uint64 // for probabilistic allocation spreading

	// Prediction context cached between Predict and Train.
	ctx   predCtx
	ctxOK bool
	ctxIP uint64

	// Telemetry (only when an AllocStats collector is attached): owners
	// mirrors the banks with the allocating IP of each entry.
	allocs *AllocStats
	owners [][]uint64
}

// predCtx carries one branch's prediction-time state from Predict to
// Train. The idx/tag arrays are only live up to the configured table
// counts, so reset leaves them dirty instead of zeroing ~200 bytes per
// lookup.
type predCtx struct {
	idx      [maxTables]uint32
	tag      [maxTables]uint16
	bim      uint32 // bimodal index (mixIP computed once per branch)
	provider int    // -1 = bimodal
	altTable int    // -1 = bimodal
	provPred bool
	altPred  bool
	newAlloc bool
	tagePred bool   // post alt-choice TAGE prediction
	loopIdx  uint32 // loop predictor entry (hashed once per branch)
	loopTag  uint16
	loopPred bool
	loopHit  bool
	final    bool
	sc       scCtx
}

func (c *predCtx) reset() {
	c.provider, c.altTable = -1, -1
	c.provPred, c.altPred, c.newAlloc, c.tagePred = false, false, false, false
	c.loopPred, c.loopHit, c.final = false, false, false
}

const maxTables = 20

// tableMeta is one tagged table's per-branch working set: the three
// folded history registers with their static fold parameters (the same
// circular fold as the folded type, laid out flat), plus the lookup
// constants that used to be recomputed per lookup — the index fold
// shift, index/tag masks, the minU(histLen, 16) path-history mask — and
// the table's offset into the packed bank array. One struct per table
// keeps a branch's entire table-math footprint on two cache lines
// instead of spread over eight parallel slices.
type tableMeta struct {
	idxComp, tag0Comp, tag1Comp             uint64 // folded registers
	idxFoldMask, tag0FoldMask, tag1FoldMask uint64
	phistMask                               uint64
	idxCompLen, idxOut                      uint32 // fold width / retire position
	tag0CompLen, tag0Out                    uint32
	tag1CompLen, tag1Out                    uint32
	histLen                                 int32
	off                                     uint32
	idxShift                                uint32
	idxMask                                 uint32
	tagMask                                 uint32
}

// setFold installs one folded register's static parameters, mirroring
// newFolded's width adjustment.
func setFold(compLen *uint32, out *uint32, mask *uint64, origLen int, width uint) {
	if width == 0 {
		width = 1
	}
	*compLen = uint32(width)
	*out = uint32(uint(origLen) % width)
	*mask = 1<<width - 1
}

// New returns a TAGE-SC-L predictor for the given configuration.
func New(cfg Config) *Predictor {
	if cfg.NumTables > maxTables {
		panic("tage: too many tagged tables")
	}
	p := &Predictor{
		cfg:      cfg,
		histLens: cfg.HistLengths(),
		bimodal:  make([]int8, 1<<cfg.LogBimodal),
		ghist:    newGlobalHist(cfg.MaxHist + 64),
		rngState: 0x853c49e6748fea9b,
	}
	p.tab = make([]tableMeta, cfg.NumTables)
	total := uint64(0)
	for i := 0; i < cfg.NumTables; i++ {
		logT := cfg.LogTagged[i]
		t := &p.tab[i]
		t.off = uint32(total)
		total += 1 << logT
		t.idxShift = uint32(logT - 3)
		t.idxMask = 1<<logT - 1
		t.tagMask = uint32(uint64(1)<<cfg.TagBits[i] - 1)
		t.phistMask = 1<<minU(uint(p.histLens[i]), 16) - 1
		t.histLen = int32(p.histLens[i])
		setFold(&t.idxCompLen, &t.idxOut, &t.idxFoldMask, p.histLens[i], logT)
		setFold(&t.tag0CompLen, &t.tag0Out, &t.tag0FoldMask, p.histLens[i], cfg.TagBits[i])
		setFold(&t.tag1CompLen, &t.tag1Out, &t.tag1FoldMask, p.histLens[i], cfg.TagBits[i]-1)
	}
	p.bank = make([]uint32, total)
	if cfg.UseLoop {
		p.loop = bp.NewLoop(cfg.LogLoop)
	}
	if cfg.UseSC {
		p.sc = newCorrector(cfg)
	}
	return p
}

// Name implements bp.Predictor.
func (p *Predictor) Name() string { return p.cfg.Name }

// Config returns the predictor's configuration.
func (p *Predictor) Config() Config { return p.cfg }

func (p *Predictor) nextRand() uint32 {
	p.rngState = p.rngState*6364136223846793005 + 1442695040888963407
	return uint32(p.rngState >> 33)
}

// mixIP spreads instruction-pointer entropy across the low bits. Branch
// IPs are aligned and clustered in real programs; without full mixing,
// structured IP layouts systematically collide in the bimodal and tagged
// tables.
func mixIP(ip uint64) uint64 {
	x := ip >> 2
	x ^= x >> 17
	x *= 0xff51afd7ed558ccd
	x ^= x >> 29
	return x
}

func minU(a, b uint) uint {
	if a < b {
		return a
	}
	return b
}

// stamp returns the current epoch truncated to the packed stamp field.
func (p *Predictor) stamp() uint32 { return uint32(p.epoch) & packedStampMask }

// agedU returns the live usefulness of a word: the stored value shifted
// by the epochs elapsed since its stamp. Stored-zero words are zero under
// any shift, so only nonzero u pays the delta computation — and those
// words are restamped by normalize often enough that the 10-bit modular
// delta is always the true delta.
func (p *Predictor) agedU(w uint32) uint32 {
	u := w >> packedUShift & packedUMask
	if u == 0 {
		return 0
	}
	d := (uint32(p.epoch) - w>>packedStampShift) & packedStampMask
	if d >= 2 {
		return 0
	}
	return u >> d
}

// setU rewrites a word's u/stamp pair with a live value.
func (p *Predictor) setU(wi uint32, w, u uint32) {
	p.bank[wi] = w&packedUStampClear | u<<packedUShift | p.stamp()<<packedStampShift
}

// normalize re-materializes every pending lazy shift so no word keeps a
// nonzero stored u with a stamp older than normalizeEvery epochs — the
// invariant that keeps agedU's mod-2^10 arithmetic exact. Runs once per
// normalizeEvery aging epochs; words already at zero never alias (zero
// shifts to zero) and are skipped.
func (p *Predictor) normalize() {
	for wi, w := range p.bank {
		if w>>packedUShift&packedUMask == 0 {
			continue
		}
		p.setU(uint32(wi), w, p.agedU(w))
	}
}

// lookup computes every table's index and tag for ip (pre-hashed as hip)
// into ctx and returns the bank-match bitmap: bit i set iff table i holds
// a valid entry whose tag matches. Longest-match provider selection is
// then a bits.Len32 over the bitmap (CLZ-style, as in hardware CLZ-TAGE
// designs) instead of a conditional scan.
func (p *Predictor) lookup(ctx *predCtx, hip uint64) uint32 {
	var match uint32
	bank := p.bank
	phist := p.phist
	for i := range p.tab {
		t := &p.tab[i]
		idx := uint32(hip^hip>>t.idxShift^t.idxComp^phist&t.phistMask) & t.idxMask
		tag := uint16(hip>>7^t.tag0Comp^t.tag1Comp<<1) & uint16(t.tagMask)
		ctx.idx[i] = idx
		ctx.tag[i] = tag
		w := bank[t.off+idx]
		if w&packedValid != 0 && uint16(w&packedTagMask) == tag {
			match |= 1 << uint(i)
		}
	}
	return match
}

func (p *Predictor) word(table int, idx uint32) uint32 {
	return p.bank[p.tab[table].off+idx]
}

// predictInternal fills ctx for ip.
func (p *Predictor) predictInternal(ctx *predCtx, ip uint64) {
	ctx.reset()
	hip := mixIP(ip)
	ctx.bim = uint32(hip & (1<<p.cfg.LogBimodal - 1))
	match := p.lookup(ctx, hip)

	bimPred := p.bimodal[ctx.bim] >= 0
	ctx.altPred = bimPred
	if match != 0 {
		prov := bits.Len32(match) - 1
		ctx.provider = prov
		if rest := match &^ (1 << uint(prov)); rest != 0 {
			alt := bits.Len32(rest) - 1
			ctx.altTable = alt
			ctx.altPred = packedCtr(p.word(alt, ctx.idx[alt])) >= 0
		}
		w := p.word(prov, ctx.idx[prov])
		ctr := packedCtr(w)
		ctx.provPred = ctr >= 0
		ctx.newAlloc = p.agedU(w) == 0 && (ctr == 0 || ctr == -1)
		if ctx.newAlloc && p.useAltOnNA >= 0 {
			ctx.tagePred = ctx.altPred
		} else {
			ctx.tagePred = ctx.provPred
		}
	} else {
		ctx.provPred = bimPred
		ctx.tagePred = bimPred
	}

	ctx.final = ctx.tagePred

	// Loop predictor override.
	if p.loop != nil {
		ctx.loopIdx, ctx.loopTag = p.loop.Index(ip)
		ctx.loopHit = p.loop.ConfidentAt(ctx.loopIdx, ctx.loopTag)
		if ctx.loopHit {
			ctx.loopPred = p.loop.PredictAt(ctx.loopIdx, ctx.loopTag)
			ctx.final = ctx.loopPred
		}
	}

	// Statistical corrector arbitration.
	if p.sc != nil {
		p.sc.evaluate(ip, ctx.final, &ctx.sc)
		if ctx.sc.pred != ctx.final && abs32(ctx.sc.sum) >= p.sc.threshold {
			ctx.sc.used = true
			ctx.final = ctx.sc.pred
		}
	}
}

// Predict implements bp.Predictor.
func (p *Predictor) Predict(ip uint64) bool {
	p.predictInternal(&p.ctx, ip)
	p.ctxOK = true
	p.ctxIP = ip
	return p.ctx.final
}

// Train implements bp.Predictor.
func (p *Predictor) Train(ip uint64, taken, pred bool) {
	p.TrainWithTarget(ip, 0, taken, pred)
}

// TrainWithTarget updates the predictor with the resolved direction of the
// conditional branch at ip targeting target. Passing the real target lets
// the IMLI component detect backward (loop) edges.
func (p *Predictor) TrainWithTarget(ip, target uint64, taken, pred bool) {
	if !p.ctxOK || p.ctxIP != ip {
		p.predictInternal(&p.ctx, ip)
	}
	p.ctxOK = false
	p.trainResolved(&p.ctx, ip, target, taken)
}

// trainResolved applies the resolved direction to the state ctx captured
// at prediction time. It is the shared retire path of TrainWithTarget and
// RunBlock.
func (p *Predictor) trainResolved(ctx *predCtx, ip, target uint64, taken bool) {
	if p.loop != nil {
		p.loop.TrainAt(ctx.loopIdx, ctx.loopTag, taken)
	}
	if p.sc != nil {
		p.sc.train(ip, target, taken, ctx.tagePred, &ctx.sc)
	}

	// Newly-allocated arbitration counter: when the provider entry is
	// fresh and disagrees with the alternate, learn which to trust.
	if ctx.provider >= 0 && ctx.newAlloc && ctx.provPred != ctx.altPred {
		p.useAltOnNA = satUpdate(p.useAltOnNA, ctx.altPred == taken, -8, 7)
	}

	// Provider (or bimodal) counter update.
	if ctx.provider >= 0 {
		wi := p.tab[ctx.provider].off + ctx.idx[ctx.provider]
		w := p.bank[wi]
		ctr := satUpdate(packedCtr(w), taken, -4, 3)
		u := p.agedU(w)
		if ctx.provPred != ctx.altPred {
			if ctx.provPred == taken {
				if u < 3 {
					u++
				}
			} else if u > 0 {
				u--
			}
		}
		// When the provider proves useless and the alternate was right,
		// the entry can be reclaimed sooner.
		if ctx.provPred != taken && ctx.altPred == taken && u > 0 {
			u--
		}
		p.bank[wi] = packWord(uint16(w&packedTagMask), ctr, u, true, p.stamp())
	} else {
		p.bimodal[ctx.bim] = satUpdate(p.bimodal[ctx.bim], taken, -2, 1)
	}

	// Allocate on a TAGE misprediction (pre-SC/loop), as in the reference
	// design: SC/loop corrections do not stop TAGE from learning.
	if ctx.tagePred != taken && ctx.provider < p.cfg.NumTables-1 {
		p.allocate(ip, taken, ctx)
	}

	// Periodic graceful aging of usefulness bits: one epoch tick instead
	// of the eager full-table u >>= 1 sweep; pending shifts are applied
	// on touch by agedU, with normalize bounding stamp staleness.
	p.tick++
	if p.tick >= p.cfg.UResetPeriod {
		p.tick = 0
		p.epoch++
		if p.epoch%normalizeEvery == 0 {
			p.normalize()
		}
	}

	p.pushHistory(ip, taken)
}

// allocate claims up to two entries in tables with longer history than the
// provider, preferring entries whose usefulness has decayed to zero.
func (p *Predictor) allocate(ip uint64, taken bool, ctx *predCtx) {
	start := ctx.provider + 1
	// Probabilistically skip the first candidate table to spread
	// allocations across history lengths (as in the reference design).
	if start < p.cfg.NumTables-1 && p.nextRand()&1 == 0 {
		start++
	}
	allocated := 0
	for i := start; i < p.cfg.NumTables && allocated < 2; i++ {
		wi := p.tab[i].off + ctx.idx[i]
		w := p.bank[wi]
		if p.agedU(w) != 0 {
			continue
		}
		var ctr int8
		if !taken {
			ctr = -1
		}
		p.bank[wi] = packWord(ctx.tag[i], ctr, 0, true, p.stamp())
		if p.allocs != nil {
			victim := p.owners[i][ctx.idx[i]]
			p.allocs.record(ip, i, int(ctx.idx[i]), victim, w&packedValid != 0)
			p.owners[i][ctx.idx[i]] = ip
		}
		allocated++
		i++ // leave a gap: at most every other table
	}
	if allocated == 0 {
		// No free entry: decay usefulness on the candidate path so a
		// future allocation can succeed.
		for i := ctx.provider + 1; i < p.cfg.NumTables; i++ {
			wi := p.tab[i].off + ctx.idx[i]
			w := p.bank[wi]
			if u := p.agedU(w); u > 0 {
				p.setU(wi, w, u-1)
			}
		}
	}
}

func (p *Predictor) pushHistory(ip uint64, taken bool) {
	g := p.ghist
	g.push(taken)
	// Advance every folded register: the same circular fold as
	// folded.update, over the fused per-table state. The newest bit is
	// shared by all registers and each table's retiring bit is loaded
	// once for its three registers.
	ring := g.bits
	mask := g.mask
	ptr := g.ptr
	_ = ring[mask] // one bounds check for the whole register walk
	in := uint64(ring[ptr&mask])
	for i := range p.tab {
		t := &p.tab[i]
		out := uint64(ring[(ptr+int(t.histLen))&mask])
		c := t.idxComp<<1 | in
		c ^= out << t.idxOut
		c ^= c >> t.idxCompLen
		t.idxComp = c & t.idxFoldMask
		c = t.tag0Comp<<1 | in
		c ^= out << t.tag0Out
		c ^= c >> t.tag0CompLen
		t.tag0Comp = c & t.tag0FoldMask
		c = t.tag1Comp<<1 | in
		c ^= out << t.tag1Out
		c ^= c >> t.tag1CompLen
		t.tag1Comp = c & t.tag1FoldMask
	}
	p.phist = (p.phist << 1) | (ip>>2)&1
	if p.sc != nil {
		p.sc.pushGlobal(taken)
	}
	p.ctxOK = false
}

// ObserveBranch implements bp.BranchObserver: unconditional control flow
// still shifts the global/path history, exactly as in the CBP harness.
func (p *Predictor) ObserveBranch(ip, target uint64, kind trace.Kind, taken bool) {
	if kind == trace.KindCondBr {
		return // conditionals are handled by Train
	}
	p.pushHistory(ip, true)
}

// RunBlock implements bp.BlockRunner: the measurement loop hands a whole
// replay block to the predictor, which walks it with the predict/retire
// paths inlined — no per-branch interface dispatch, no cached-context
// revalidation — and returns the conditional/mispredict counts. State
// evolution is identical to the equivalent Predict/TrainWithTarget/
// ObserveBranch call sequence.
func (p *Predictor) RunBlock(blk []trace.Inst) (condExecs, mispreds uint64) {
	ctx := &p.ctx
	for j := range blk {
		inst := &blk[j]
		if inst.Kind == trace.KindCondBr {
			condExecs++
			p.predictInternal(ctx, inst.IP)
			if ctx.final != inst.Taken {
				mispreds++
			}
			p.trainResolved(ctx, inst.IP, inst.Target, inst.Taken)
		} else if inst.Kind.IsBranch() {
			p.pushHistory(inst.IP, true)
		}
	}
	return condExecs, mispreds
}

func satUpdate(c int8, up bool, min, max int8) int8 {
	if up {
		if c < max {
			return c + 1
		}
		return c
	}
	if c > min {
		return c - 1
	}
	return c
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}
