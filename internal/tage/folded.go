package tage

// globalHist is a long global-history ring buffer supporting the folded
// (compressed) history registers that make TAGE's O(1) index computation
// possible at history lengths in the thousands.
type globalHist struct {
	bits []uint8
	mask int
	ptr  int
}

func newGlobalHist(capacity int) *globalHist {
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &globalHist{bits: make([]uint8, size), mask: size - 1}
}

// push records the newest direction bit.
func (g *globalHist) push(taken bool) {
	g.ptr--
	var b uint8
	if taken {
		b = 1
	}
	g.bits[g.ptr&g.mask] = b
}

// at returns the direction bit d positions ago (0 = newest).
func (g *globalHist) at(d int) uint8 { return g.bits[(g.ptr+d)&g.mask] }

// folded is a circularly-folded compression of the most recent origLen
// history bits into compLen bits, updated incrementally as bits enter and
// leave the window (Michaud's CSHR, as used by every TAGE variant).
type folded struct {
	comp     uint64
	compLen  uint
	origLen  int
	outpoint uint
	mask     uint64
}

func newFolded(origLen int, compLen uint) folded {
	if compLen == 0 {
		compLen = 1
	}
	return folded{
		compLen:  compLen,
		origLen:  origLen,
		outpoint: uint(origLen) % compLen,
		mask:     (1 << compLen) - 1,
	}
}

// update incorporates the newest bit in and retires the bit out that just
// left the origLen window. The caller supplies both bits so that the
// three folded families sharing one history length load the ring buffer
// once per table instead of once per register.
func (f *folded) update(in, out uint64) {
	f.comp = (f.comp << 1) | in
	f.comp ^= out << f.outpoint
	f.comp ^= f.comp >> f.compLen
	f.comp &= f.mask
}

// updateFolded advances the index/tag0/tag1 folded registers of every
// table after a history push. fIdx[i], fTag0[i] and fTag1[i] share the
// same origLen (histLens[i], an invariant of New), so the retiring bit is
// loaded once per table — 2N fewer ring-buffer loads per branch than
// updating each register independently.
func updateFolded(g *globalHist, histLens []int, fIdx, fTag0, fTag1 []folded) {
	in := uint64(g.at(0))
	for i := range fIdx {
		out := uint64(g.at(histLens[i]))
		fIdx[i].update(in, out)
		fTag0[i].update(in, out)
		fTag1[i].update(in, out)
	}
}
