package tage

import (
	"branchlab/internal/bp"
	"branchlab/internal/trace"
)

// refEntry is one tagged-table entry of the scalar reference engine: the
// pre-packing array-of-structs layout (16 bytes with padding, owner
// telemetry inline).
type refEntry struct {
	tag   uint16
	ctr   int8 // 3-bit signed, [-4, 3]
	u     uint8
	valid bool
	owner uint64
}

// Reference is the scalar TAGE-SC-L engine the packed Predictor was
// derived from, kept verbatim as the behavioural oracle and the
// engine-level performance baseline: array-of-structs tables, per-lookup
// derived constants (including the minU path-history mask recomputed per
// table), conditional longest-match scan, and the eager O(total-entries)
// usefulness sweep inside Train. The equivalence property tests
// byte-compare its prediction and telemetry streams against the packed
// engine across every workload; BenchmarkTAGEPredictTrain measures the
// packed engine against it.
type Reference struct {
	cfg      Config
	histLens []int

	bimodal []int8
	tables  [][]refEntry
	ghist   *globalHist
	phist   uint64
	fIdx    []folded
	fTag0   []folded
	fTag1   []folded

	loop *bp.Loop
	sc   *corrector

	useAltOnNA int8
	tick       uint64
	rngState   uint64

	ctx    predCtx
	ctxOK  bool
	ctxIP  uint64
	allocs *AllocStats
}

// NewReference returns the scalar reference engine for the given
// configuration. It predicts identically to New's packed engine; use it
// only as a test oracle or benchmark baseline.
func NewReference(cfg Config) *Reference {
	if cfg.NumTables > maxTables {
		panic("tage: too many tagged tables")
	}
	p := &Reference{
		cfg:      cfg,
		histLens: cfg.HistLengths(),
		bimodal:  make([]int8, 1<<cfg.LogBimodal),
		ghist:    newGlobalHist(cfg.MaxHist + 64),
		rngState: 0x853c49e6748fea9b,
	}
	p.tables = make([][]refEntry, cfg.NumTables)
	p.fIdx = make([]folded, cfg.NumTables)
	p.fTag0 = make([]folded, cfg.NumTables)
	p.fTag1 = make([]folded, cfg.NumTables)
	for i := 0; i < cfg.NumTables; i++ {
		p.tables[i] = make([]refEntry, 1<<cfg.LogTagged[i])
		p.fIdx[i] = newFolded(p.histLens[i], cfg.LogTagged[i])
		p.fTag0[i] = newFolded(p.histLens[i], cfg.TagBits[i])
		p.fTag1[i] = newFolded(p.histLens[i], cfg.TagBits[i]-1)
	}
	if cfg.UseLoop {
		p.loop = bp.NewLoop(cfg.LogLoop)
	}
	if cfg.UseSC {
		p.sc = newCorrector(cfg)
	}
	return p
}

// Name implements bp.Predictor. The suffix distinguishes the oracle from
// the packed engine in reports and benchmark labels.
func (p *Reference) Name() string { return p.cfg.Name + "-reference" }

// Config returns the predictor's configuration.
func (p *Reference) Config() Config { return p.cfg }

// EnableAllocTracking mirrors the packed engine's telemetry hook; the
// reference keeps owners inline in its entries, as the original engine
// did.
func (p *Reference) EnableAllocTracking() *AllocStats {
	p.allocs = newAllocStats()
	return p.allocs
}

func (p *Reference) nextRand() uint32 {
	p.rngState = p.rngState*6364136223846793005 + 1442695040888963407
	return uint32(p.rngState >> 33)
}

func (p *Reference) bimodalIndex(ip uint64) uint64 {
	return mixIP(ip) & ((1 << p.cfg.LogBimodal) - 1)
}

// compute derives every table's index and tag the pre-PR8 way: masks and
// shifts (including the minU(histLen, 16) path-history mask) recomputed
// per lookup per table.
func (p *Reference) compute(ip uint64) {
	hip := mixIP(ip)
	for i := 0; i < p.cfg.NumTables; i++ {
		logT := p.cfg.LogTagged[i]
		idx := hip ^ hip>>(logT-3) ^ p.fIdx[i].comp ^ p.phist&((1<<minU(uint(p.histLens[i]), 16))-1)
		p.ctx.idx[i] = uint32(idx & ((1 << logT) - 1))
		tag := hip>>7 ^ p.fTag0[i].comp ^ p.fTag1[i].comp<<1
		p.ctx.tag[i] = uint16(tag & ((1 << p.cfg.TagBits[i]) - 1))
	}
}

// predictInternal fills p.ctx for ip with the conditional longest-match
// scan over the array-of-structs tables.
func (p *Reference) predictInternal(ip uint64) {
	p.ctx.reset()
	p.compute(ip)

	for i := p.cfg.NumTables - 1; i >= 0; i-- {
		e := &p.tables[i][p.ctx.idx[i]]
		if e.valid && e.tag == p.ctx.tag[i] {
			if p.ctx.provider < 0 {
				p.ctx.provider = i
			} else {
				p.ctx.altTable = i
				break
			}
		}
	}

	bimPred := p.bimodal[p.bimodalIndex(ip)] >= 0
	p.ctx.altPred = bimPred
	if p.ctx.altTable >= 0 {
		p.ctx.altPred = p.tables[p.ctx.altTable][p.ctx.idx[p.ctx.altTable]].ctr >= 0
	}
	if p.ctx.provider >= 0 {
		e := &p.tables[p.ctx.provider][p.ctx.idx[p.ctx.provider]]
		p.ctx.provPred = e.ctr >= 0
		p.ctx.newAlloc = e.u == 0 && (e.ctr == 0 || e.ctr == -1)
		if p.ctx.newAlloc && p.useAltOnNA >= 0 {
			p.ctx.tagePred = p.ctx.altPred
		} else {
			p.ctx.tagePred = p.ctx.provPred
		}
	} else {
		p.ctx.provPred = bimPred
		p.ctx.tagePred = bimPred
	}

	p.ctx.final = p.ctx.tagePred

	if p.loop != nil {
		p.ctx.loopHit = p.loop.Confident(ip)
		if p.ctx.loopHit {
			p.ctx.loopPred = p.loop.Predict(ip)
			p.ctx.final = p.ctx.loopPred
		}
	}

	if p.sc != nil {
		p.sc.evaluate(ip, p.ctx.final, &p.ctx.sc)
		if p.ctx.sc.pred != p.ctx.final && abs32(p.ctx.sc.sum) >= p.sc.threshold {
			p.ctx.sc.used = true
			p.ctx.final = p.ctx.sc.pred
		}
	}
}

// Predict implements bp.Predictor.
func (p *Reference) Predict(ip uint64) bool {
	p.predictInternal(ip)
	p.ctxOK = true
	p.ctxIP = ip
	return p.ctx.final
}

// Train implements bp.Predictor.
func (p *Reference) Train(ip uint64, taken, pred bool) {
	p.TrainWithTarget(ip, 0, taken, pred)
}

// TrainWithTarget updates the predictor with the resolved direction of
// the conditional branch at ip targeting target.
func (p *Reference) TrainWithTarget(ip, target uint64, taken, pred bool) {
	if !p.ctxOK || p.ctxIP != ip {
		p.predictInternal(ip)
	}
	p.ctxOK = false
	ctx := &p.ctx

	if p.loop != nil {
		p.loop.Train(ip, taken, ctx.loopPred)
	}
	if p.sc != nil {
		p.sc.train(ip, target, taken, ctx.tagePred, &ctx.sc)
	}

	if ctx.provider >= 0 && ctx.newAlloc && ctx.provPred != ctx.altPred {
		p.useAltOnNA = satUpdate(p.useAltOnNA, ctx.altPred == taken, -8, 7)
	}

	if ctx.provider >= 0 {
		e := &p.tables[ctx.provider][ctx.idx[ctx.provider]]
		e.ctr = satUpdate(e.ctr, taken, -4, 3)
		if ctx.provPred != ctx.altPred {
			if ctx.provPred == taken {
				if e.u < 3 {
					e.u++
				}
			} else if e.u > 0 {
				e.u--
			}
		}
		if ctx.provPred != taken && ctx.altPred == taken && e.u > 0 {
			e.u--
		}
	} else {
		i := p.bimodalIndex(ip)
		p.bimodal[i] = satUpdate(p.bimodal[i], taken, -2, 1)
	}

	if ctx.tagePred != taken && ctx.provider < p.cfg.NumTables-1 {
		p.allocate(ip, taken, ctx)
	}

	// Periodic graceful aging of usefulness bits: the eager full sweep —
	// an O(total-entries) latency spike inside Train that the packed
	// engine replaces with lazy epoch aging.
	p.tick++
	if p.tick >= p.cfg.UResetPeriod {
		p.tick = 0
		for _, t := range p.tables {
			for j := range t {
				t[j].u >>= 1
			}
		}
	}

	p.pushHistory(ip, taken)
}

func (p *Reference) allocate(ip uint64, taken bool, ctx *predCtx) {
	start := ctx.provider + 1
	if start < p.cfg.NumTables-1 && p.nextRand()&1 == 0 {
		start++
	}
	allocated := 0
	for i := start; i < p.cfg.NumTables && allocated < 2; i++ {
		e := &p.tables[i][ctx.idx[i]]
		if e.u != 0 {
			continue
		}
		victim, victimValid := e.owner, e.valid
		var ctr int8
		if !taken {
			ctr = -1
		}
		*e = refEntry{tag: ctx.tag[i], ctr: ctr, valid: true, owner: ip}
		if p.allocs != nil {
			p.allocs.record(ip, i, int(ctx.idx[i]), victim, victimValid)
		}
		allocated++
		i++ // leave a gap: at most every other table
	}
	if allocated == 0 {
		for i := ctx.provider + 1; i < p.cfg.NumTables; i++ {
			e := &p.tables[i][ctx.idx[i]]
			if e.u > 0 {
				e.u--
			}
		}
	}
}

func (p *Reference) pushHistory(ip uint64, taken bool) {
	p.ghist.push(taken)
	updateFolded(p.ghist, p.histLens, p.fIdx, p.fTag0, p.fTag1)
	p.phist = (p.phist << 1) | (ip>>2)&1
	if p.sc != nil {
		p.sc.pushGlobal(taken)
	}
	p.ctxOK = false
}

// ObserveBranch implements bp.BranchObserver.
func (p *Reference) ObserveBranch(ip, target uint64, kind trace.Kind, taken bool) {
	if kind == trace.KindCondBr {
		return
	}
	p.pushHistory(ip, true)
}
