package pipeline

import (
	"testing"

	"branchlab/internal/bp"
	"branchlab/internal/btb"
	"branchlab/internal/tage"
	"branchlab/internal/trace"
	"branchlab/internal/xrand"
)

func aluInst(ip uint64) trace.Inst {
	return trace.Inst{IP: ip, Kind: trace.KindALU, DstReg: trace.NoReg,
		SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}}
}

// independentALUTrace yields n ALU instructions with no dependencies.
func independentALUTrace(n int) *trace.Buffer {
	b := trace.NewBuffer(n)
	for i := 0; i < n; i++ {
		b.Append(aluInst(0x1000 + uint64(i%512)*4))
	}
	return b
}

// chainedALUTrace yields n ALU instructions forming one dependency chain.
func chainedALUTrace(n int) *trace.Buffer {
	b := trace.NewBuffer(n)
	for i := 0; i < n; i++ {
		inst := aluInst(0x1000 + uint64(i%512)*4)
		inst.DstReg = 1
		inst.SrcRegs[0] = 1
		b.Append(inst)
	}
	return b
}

// branchyTrace interleaves random conditional branches with filler ALU.
func branchyTrace(n int, seed uint64, takenProb float64) *trace.Buffer {
	rng := xrand.New(seed)
	b := trace.NewBuffer(n)
	for i := 0; i < n; i++ {
		if i%8 == 7 {
			inst := trace.Inst{
				IP: 0x2000 + uint64(i%64)*32, Kind: trace.KindCondBr,
				Target: 0x2000, Taken: rng.Bool(takenProb),
				DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg},
			}
			b.Append(inst)
		} else {
			b.Append(aluInst(0x1000 + uint64(i%512)*4))
		}
	}
	return b
}

func TestIndependentALUReachesWidth(t *testing.T) {
	core := New(Skylake())
	res := core.Run(independentALUTrace(100000).Stream(), Options{PerfectBP: true})
	if res.IPC < 5.0 || res.IPC > 6.01 {
		t.Errorf("independent ALU IPC = %v, want ~6 (machine width)", res.IPC)
	}
	if res.Insts != 100000 {
		t.Errorf("Insts = %d", res.Insts)
	}
}

func TestDependencyChainSerializes(t *testing.T) {
	core := New(Skylake())
	res := core.Run(chainedALUTrace(50000).Stream(), Options{PerfectBP: true})
	if res.IPC > 1.05 {
		t.Errorf("chained ALU IPC = %v, want <= ~1", res.IPC)
	}
	if res.IPC < 0.9 {
		t.Errorf("chained ALU IPC = %v, want ~1 (1-cycle ALU)", res.IPC)
	}
}

func TestMispredictionsCostIPC(t *testing.T) {
	// Same trace; random branches (unpredictable) vs perfect prediction.
	perfect := New(Skylake()).Run(branchyTrace(200000, 1, 0.5).Stream(), Options{PerfectBP: true})
	predicted := New(Skylake()).Run(branchyTrace(200000, 1, 0.5).Stream(),
		Options{Predictor: bp.NewGShare(14, 12)})
	if predicted.Mispreds == 0 {
		t.Fatal("random branches should mispredict")
	}
	if predicted.IPC >= perfect.IPC {
		t.Errorf("mispredictions should cost IPC: %v >= %v", predicted.IPC, perfect.IPC)
	}
	gap := perfect.IPC / predicted.IPC
	if gap < 1.1 {
		t.Errorf("IPC gap %v too small for ~6%% random branches", gap)
	}
}

func TestPredictableBranchesNearPerfect(t *testing.T) {
	// Always-taken branches are learned immediately; IPC should approach
	// the perfect-BP IPC.
	perfect := New(Skylake()).Run(branchyTrace(100000, 2, 1.0).Stream(), Options{PerfectBP: true})
	predicted := New(Skylake()).Run(branchyTrace(100000, 2, 1.0).Stream(),
		Options{Predictor: bp.NewBimodal(14)})
	if predicted.IPC < perfect.IPC*0.97 {
		t.Errorf("biased branches: predicted IPC %v « perfect %v", predicted.IPC, perfect.IPC)
	}
}

func TestPipelineScalingHelpsWithPerfectBP(t *testing.T) {
	tr := branchyTrace(200000, 3, 0.5)
	prev := 0.0
	for _, k := range []int{1, 4, 16} {
		res := New(Skylake().Scaled(k)).Run(tr.Stream(), Options{PerfectBP: true})
		if res.IPC <= prev {
			t.Errorf("scale %dx: IPC %v did not improve on %v", k, res.IPC, prev)
		}
		prev = res.IPC
	}
}

func TestMispredictGapGrowsWithScale(t *testing.T) {
	// The paper's central Fig 1 observation: the relative IPC opportunity
	// from perfect prediction grows as the pipeline scales.
	gapAt := func(k int) float64 {
		perfect := New(Skylake().Scaled(k)).Run(branchyTrace(200000, 4, 0.5).Stream(),
			Options{PerfectBP: true})
		pred := New(Skylake().Scaled(k)).Run(branchyTrace(200000, 4, 0.5).Stream(),
			Options{Predictor: bp.NewGShare(14, 12)})
		return perfect.IPC / pred.IPC
	}
	g1, g8 := gapAt(1), gapAt(8)
	if g8 <= g1 {
		t.Errorf("relative opportunity should grow with scale: 1x gap %v, 8x gap %v", g1, g8)
	}
}

func TestPerfectIPsSubsetBetweenBaselineAndPerfect(t *testing.T) {
	mkTrace := func() *trace.Buffer { return branchyTrace(150000, 5, 0.5) }
	base := New(Skylake()).Run(mkTrace().Stream(), Options{Predictor: bp.NewBimodal(12)})
	all := map[uint64]bool{}
	var inst trace.Inst
	s := mkTrace().Stream()
	for s.Next(&inst) {
		if inst.Kind == trace.KindCondBr {
			all[inst.IP] = true
		}
	}
	// Oracle only half the branch IPs.
	half := map[uint64]bool{}
	i := 0
	for ip := range all {
		if i%2 == 0 {
			half[ip] = true
		}
		i++
	}
	partial := New(Skylake()).Run(mkTrace().Stream(),
		Options{Predictor: bp.NewBimodal(12), PerfectIPs: half})
	full := New(Skylake()).Run(mkTrace().Stream(), Options{PerfectBP: true})
	if !(base.IPC < partial.IPC && partial.IPC < full.IPC) {
		t.Errorf("ordering violated: base %v, partial %v, perfect %v",
			base.IPC, partial.IPC, full.IPC)
	}
	if partial.Mispreds >= base.Mispreds {
		t.Errorf("oracled subset should reduce mispredictions: %d >= %d",
			partial.Mispreds, base.Mispreds)
	}
}

func TestMinExecsPerfectOracle(t *testing.T) {
	base := New(Skylake()).Run(branchyTrace(150000, 6, 0.5).Stream(),
		Options{Predictor: bp.NewBimodal(12)})
	oracled := New(Skylake()).Run(branchyTrace(150000, 6, 0.5).Stream(),
		Options{Predictor: bp.NewBimodal(12), MinExecsPerfect: 100})
	if oracled.Mispreds >= base.Mispreds {
		t.Errorf("exec-count oracle should cut mispredictions: %d >= %d",
			oracled.Mispreds, base.Mispreds)
	}
	if oracled.IPC <= base.IPC {
		t.Errorf("exec-count oracle should raise IPC: %v <= %v", oracled.IPC, base.IPC)
	}
}

func TestBranchHookSeesEveryCondBranch(t *testing.T) {
	var hooks, takens uint64
	opt := Options{
		Predictor: bp.NewBimodal(10),
		BranchHook: func(ip, target uint64, taken, pred bool) {
			hooks++
			if taken {
				takens++
			}
		},
	}
	res := New(Skylake()).Run(branchyTrace(80000, 7, 0.7).Stream(), opt)
	if hooks != res.CondExecs {
		t.Errorf("hook calls %d != cond execs %d", hooks, res.CondExecs)
	}
	if takens == 0 || takens == hooks {
		t.Errorf("taken mix looks wrong: %d/%d", takens, hooks)
	}
}

func TestLoadLatencyMatters(t *testing.T) {
	// Pointer-chase: each load feeds the next address; misses dominate.
	mk := func(stride uint64) *trace.Buffer {
		b := trace.NewBuffer(0)
		addr := uint64(0)
		for i := 0; i < 30000; i++ {
			b.Append(trace.Inst{
				IP: 0x1000, Kind: trace.KindLoad, MemAddr: addr,
				DstReg: 1, SrcRegs: [2]uint8{1, trace.NoReg},
			})
			addr += stride
		}
		return b
	}
	hot := New(Skylake()).Run(mk(0).Stream(), Options{PerfectBP: true})      // same line: hits
	cold := New(Skylake()).Run(mk(1<<20).Stream(), Options{PerfectBP: true}) // new region: misses
	if cold.IPC >= hot.IPC {
		t.Errorf("cache misses should hurt: cold %v >= hot %v", cold.IPC, hot.IPC)
	}
	if hot.IPC < 0.15 || hot.IPC > 0.35 {
		t.Errorf("chained L1-hit loads IPC = %v, want ~1/5", hot.IPC)
	}
}

func TestStoreForwardingBoundsLoad(t *testing.T) {
	// store to A; dependent-free load from A immediately after: the load
	// must not complete before the store.
	b := trace.NewBuffer(0)
	b.Append(trace.Inst{IP: 0x1, Kind: trace.KindStore, MemAddr: 0x100,
		DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})
	b.Append(trace.Inst{IP: 0x2, Kind: trace.KindLoad, MemAddr: 0x100,
		DstReg: 1, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})
	res := New(Skylake()).Run(b.Stream(), Options{PerfectBP: true})
	if res.Insts != 2 || res.Cycles == 0 {
		t.Errorf("tiny trace failed: %+v", res)
	}
}

func TestResultAccuracy(t *testing.T) {
	r := Result{CondExecs: 100, Mispreds: 5}
	if r.Accuracy() != 0.95 {
		t.Errorf("Accuracy = %v", r.Accuracy())
	}
	if (Result{}).Accuracy() != 1 {
		t.Error("empty Accuracy should be 1")
	}
}

func TestScaledConfig(t *testing.T) {
	c := Skylake().Scaled(4)
	base := Skylake()
	if c.FetchWidth != base.FetchWidth*4 || c.ROBSize != base.ROBSize*4 ||
		c.SchedSize != base.SchedSize*4 || c.RetireWidth != base.RetireWidth*4 {
		t.Errorf("Scaled(4) wrong: %+v", c)
	}
	if c.ScaleFactor != 4 {
		t.Errorf("ScaleFactor = %d", c.ScaleFactor)
	}
	if got := Skylake().Scaled(0).FetchWidth; got != base.FetchWidth {
		t.Errorf("Scaled(0) should clamp to 1x, got fetch %d", got)
	}
}

func TestWidthLimiter(t *testing.T) {
	w := newWidthLimiter(2)
	c1 := w.reserve(10)
	c2 := w.reserve(10)
	c3 := w.reserve(10)
	if c1 != 10 || c2 != 10 || c3 != 11 {
		t.Errorf("reservations: %d %d %d", c1, c2, c3)
	}
	// Advancing far clears old slots.
	c4 := w.reserve(10 + widthWindow)
	if c4 != 10+widthWindow {
		t.Errorf("post-wrap reservation: %d", c4)
	}
}

func TestTAGEDrivenRun(t *testing.T) {
	// End-to-end: TAGE-SC-L through the pipeline on a predictable trace
	// should land within a few percent of perfect.
	tr := branchyTrace(150000, 8, 0.9)
	perfect := New(Skylake()).Run(tr.Stream(), Options{PerfectBP: true})
	pred := New(Skylake()).Run(tr.Stream(), Options{Predictor: tage.New(tage.Config8KB())})
	if pred.Accuracy() < 0.85 {
		t.Errorf("TAGE accuracy on 90%%-biased branches = %v", pred.Accuracy())
	}
	if pred.IPC > perfect.IPC {
		t.Errorf("predictor IPC %v exceeds perfect %v", pred.IPC, perfect.IPC)
	}
}

func BenchmarkPipelineALU(b *testing.B) {
	tr := independentALUTrace(100000)
	core := New(Skylake())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Run(trace.Limit(tr.Stream(), 100000), Options{PerfectBP: true})
	}
}

func BenchmarkPipelineTAGE(b *testing.B) {
	tr := branchyTrace(100000, 1, 0.7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core := New(Skylake())
		core.Run(tr.Stream(), Options{Predictor: tage.New(tage.Config8KB())})
	}
}

func TestBTBMissesCostFetchBubbles(t *testing.T) {
	// A large set of taken branches with distinct targets: with target
	// prediction disabled vs enabled-but-cold, IPC differs; after the BTB
	// warms, repeated executions recover.
	mk := func() *trace.Buffer {
		b := trace.NewBuffer(0)
		for rep := 0; rep < 200; rep++ {
			for i := 0; i < 64; i++ {
				ip := 0x4000 + uint64(i)*256
				b.Append(trace.Inst{IP: ip, Kind: trace.KindCondBr, Taken: true,
					Target: ip + 128, DstReg: trace.NoReg,
					SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})
				for f := 0; f < 6; f++ {
					b.Append(aluInst(ip + 4 + uint64(f)*4))
				}
			}
		}
		return b
	}
	on := Skylake()
	off := Skylake()
	off.BTBMissPenalty = 0
	resOn := New(on).Run(mk().Stream(), Options{PerfectBP: true})
	resOff := New(off).Run(mk().Stream(), Options{PerfectBP: true})
	if resOn.IPC > resOff.IPC {
		t.Errorf("BTB modeling should not raise IPC: %v > %v", resOn.IPC, resOff.IPC)
	}
	core := New(on)
	core.Run(mk().Stream(), Options{PerfectBP: true})
	st := core.BTBStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Errorf("BTB stats look wrong: %+v", st)
	}
	// Warmed-up hit rate should dominate: 64 statics x 200 reps.
	if float64(st.Hits)/float64(st.Lookups) < 0.9 {
		t.Errorf("BTB hit rate %v too low after warmup", float64(st.Hits)/float64(st.Lookups))
	}
}

func TestBTBStatsDisabled(t *testing.T) {
	cfg := Skylake()
	cfg.BTBMissPenalty = 0
	core := New(cfg)
	core.Run(independentALUTrace(100).Stream(), Options{PerfectBP: true})
	if core.BTBStats() != (btb.Stats{}) {
		t.Error("disabled BTB should report zero stats")
	}
}
