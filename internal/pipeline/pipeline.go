// Package pipeline implements a trace-driven out-of-order core timing
// model in the style of ChampSim's Skylake configuration, the instrument
// the paper uses to convert branch prediction accuracy into IPC (Figs 1,
// 5, 7, 8).
//
// The model propagates per-instruction timestamps (fetch, dispatch, issue,
// complete, retire) under the capacity constraints the paper scales in its
// pipeline study — fetch/decode/issue/retire width, ROB, scheduler and
// load/store queues — plus data dependencies through registers and
// store-to-load forwarding, cache-latency variation, and branch
// misprediction redirects that restart fetch after the branch resolves.
// It is O(1) per instruction and deterministic.
package pipeline

import (
	"fmt"

	"branchlab/internal/bp"
	"branchlab/internal/btb"
	"branchlab/internal/cache"
	"branchlab/internal/trace"
)

// Config describes the core. All widths/capacities are per the baseline;
// use Scaled to produce the paper's 2x-32x configurations.
type Config struct {
	Name string

	FetchWidth  int // instructions fetched per cycle
	IssueWidth  int // instructions entering execution per cycle
	RetireWidth int // instructions retired per cycle

	ROBSize   int // reorder buffer entries
	SchedSize int // scheduler (reservation station) entries
	LQSize    int // load queue entries
	SQSize    int // store queue entries

	FrontDepth      uint64 // fetch-to-dispatch stages
	RedirectPenalty uint64 // extra cycles to restart fetch after a mispredict

	// BTBMissPenalty is the decode-redirect bubble charged when a taken
	// branch's target is not produced by the BTB/RAS at fetch. Zero
	// disables target-prediction modeling.
	BTBMissPenalty uint64
	BTB            btb.Config

	Caches cache.HierarchyConfig

	// Scale factor this config was derived with (1 = baseline).
	ScaleFactor int
}

// Skylake returns the baseline configuration, matching ChampSim's Skylake
// model: 6-wide front end, 224-entry ROB, 97-entry scheduler, 72/56-entry
// load/store queues.
func Skylake() Config {
	return Config{
		Name:            "skylake-1x",
		FetchWidth:      6,
		IssueWidth:      6,
		RetireWidth:     6,
		ROBSize:         224,
		SchedSize:       97,
		LQSize:          72,
		SQSize:          56,
		FrontDepth:      10,
		RedirectPenalty: 12,
		BTBMissPenalty:  3,
		BTB:             btb.DefaultConfig(),
		Caches:          cache.DefaultHierarchy(),
		ScaleFactor:     1,
	}
}

// Scaled multiplies the pipeline-capacity resources by k, as in the
// paper's Fig 1 study ("fetch, decode, execution, load/store buffer, ROB,
// scheduler, and retire resources"). Cache geometry and latencies are
// intentionally unchanged.
func (c Config) Scaled(k int) Config {
	if k < 1 {
		k = 1
	}
	s := c
	s.Name = fmt.Sprintf("skylake-%dx", k)
	s.FetchWidth *= k
	s.IssueWidth *= k
	s.RetireWidth *= k
	s.ROBSize *= k
	s.SchedSize *= k
	s.LQSize *= k
	s.SQSize *= k
	s.ScaleFactor = k
	return s
}

// Options selects the prediction regime for a run.
type Options struct {
	// Predictor drives speculation; ignored when PerfectBP.
	Predictor bp.Predictor
	// PerfectBP models oracle prediction for every conditional branch.
	PerfectBP bool
	// PerfectIPs are predicted perfectly regardless of the predictor
	// ("Perfect H2Ps" in Figs 1 and 5). The predictor is still trained on
	// these branches so its history state matches the deployment.
	PerfectIPs map[uint64]bool
	// MinExecsPerfect, when > 0, perfectly predicts any IP whose dynamic
	// execution count so far exceeds the threshold (Fig 8's ">1000" and
	// ">100" oracles).
	MinExecsPerfect uint64
	// BranchHook, when non-nil, observes every conditional branch with
	// its prediction outcome.
	BranchHook func(ip, target uint64, taken, pred bool)
}

// Result reports a run's timing and prediction outcomes.
type Result struct {
	Insts      uint64
	Cycles     uint64
	CondExecs  uint64
	Mispreds   uint64
	IPC        float64
	MPKI       float64
	L1DMissPKI float64
}

// Accuracy returns conditional-branch prediction accuracy.
func (r Result) Accuracy() float64 {
	if r.CondExecs == 0 {
		return 1
	}
	return 1 - float64(r.Mispreds)/float64(r.CondExecs)
}

// cycle-indexed width limiter: counts events per cycle in a ring. The
// window must exceed any look-back distance, which is bounded by the
// largest latency chain (memory latency + penalties « window).
const widthWindow = 1 << 15

type widthLimiter struct {
	counts []uint16
	limit  uint16
	// cleared marks the highest cycle whose slot has been reset.
	lastSeen uint64
}

func newWidthLimiter(limit int) *widthLimiter {
	return &widthLimiter{counts: make([]uint16, widthWindow), limit: uint16(limit)}
}

// reserve finds the first cycle >= want with a free slot and claims it.
func (w *widthLimiter) reserve(want uint64) uint64 {
	for {
		w.advance(want)
		i := want & (widthWindow - 1)
		if w.counts[i] < w.limit {
			w.counts[i]++
			return want
		}
		want++
	}
}

// advance lazily clears ring slots the simulation has moved past.
func (w *widthLimiter) advance(cycle uint64) {
	if cycle <= w.lastSeen {
		return
	}
	// Clear slots in (lastSeen, cycle]; they belong to new cycles.
	d := cycle - w.lastSeen
	if d > widthWindow {
		d = widthWindow
	}
	for i := uint64(1); i <= d; i++ {
		w.counts[(w.lastSeen+i)&(widthWindow-1)] = 0
	}
	w.lastSeen = cycle
}

// Core is a reusable pipeline simulator instance.
type Core struct {
	cfg  Config
	hier *cache.Hierarchy
	btb  *btb.BTB
}

// New returns a Core for the configuration.
func New(cfg Config) *Core {
	c := &Core{cfg: cfg, hier: cache.NewHierarchy(cfg.Caches)}
	if cfg.BTBMissPenalty > 0 {
		c.btb = btb.New(cfg.BTB)
	}
	return c
}

// BTBStats returns target-prediction statistics (zero value when target
// prediction is disabled).
func (c *Core) BTBStats() btb.Stats {
	if c.btb == nil {
		return btb.Stats{}
	}
	return c.btb.Stats()
}

// Hierarchy exposes the cache hierarchy (for stats reporting).
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

func execLatency(kind trace.Kind) uint64 {
	switch kind {
	case trace.KindALU, trace.KindNop:
		return 1
	case trace.KindMul:
		return 3
	case trace.KindDiv:
		return 18
	case trace.KindFP:
		return 4
	case trace.KindStore:
		return 1
	default: // branches resolve in one cycle once operands are ready
		return 1
	}
}

// Run simulates the stream to completion and returns timing results.
// The stream is consumed in blocks (zero-copy for Buffer replays), the
// same batching discipline as core.Run.
func (c *Core) Run(s trace.Stream, opt Options) Result {
	return c.RunBlocks(trace.AsBlocks(s, trace.DefaultBlockLen), opt)
}

// RunBlocks is Run over an explicit block stream.
func (c *Core) RunBlocks(bs trace.BlockStream, opt Options) Result {
	cfg := c.cfg
	var res Result

	var (
		regReady [trace.NumRegs]uint64

		// Ring buffers holding per-entry release cycles for each bounded
		// structure: an instruction cannot claim entry i%N until the
		// previous holder released it.
		robRelease   = make([]uint64, cfg.ROBSize)
		schedRelease = make([]uint64, cfg.SchedSize)
		lqRelease    = make([]uint64, cfg.LQSize)
		sqRelease    = make([]uint64, cfg.SQSize)
		robIdx       int
		schedIdx     int
		lqIdx        int
		sqIdx        int

		fetchLim  = newWidthLimiter(cfg.FetchWidth)
		issueLim  = newWidthLimiter(cfg.IssueWidth)
		retireLim = newWidthLimiter(cfg.RetireWidth)

		fetchReady uint64 // earliest cycle fetch may proceed (redirects)
		lastRetire uint64
		lastCycle  uint64

		// Store-to-load forwarding over the most recent stores.
		storeAddr  = make([]uint64, cfg.SQSize)
		storeDone  = make([]uint64, cfg.SQSize)
		execCounts = make(map[uint64]uint64) // for MinExecsPerfect
	)

	// Resolve the predictor's optional interfaces once, outside the
	// per-instruction loop (same hoist as core.Run).
	var predTT targetTrainer
	var predBO bp.BranchObserver
	if opt.Predictor != nil {
		predTT, _ = opt.Predictor.(targetTrainer)
		predBO, _ = opt.Predictor.(bp.BranchObserver)
	}
	train := func(ip, target uint64, taken, pred bool) {
		if predTT != nil {
			predTT.TrainWithTarget(ip, target, taken, pred)
			return
		}
		opt.Predictor.Train(ip, taken, pred)
	}

	blk := bs.NextBlock()
	j := 0
	for {
		if j >= len(blk) {
			if blk = bs.NextBlock(); len(blk) == 0 {
				break
			}
			j = 0
		}
		inst := &blk[j]
		j++
		res.Insts++

		// --- Fetch ---------------------------------------------------
		fetch := fetchLim.reserve(maxU(fetchReady, lastCycle0(lastRetire, cfg)))
		// Instruction-cache access delays fetch on miss (block-granular:
		// the hierarchy caches the line after the first access).
		if lat := c.hier.L1I.Access(inst.IP); lat > 0 {
			fetch += lat
		}

		// --- Dispatch: ROB + scheduler occupancy ----------------------
		dispatch := fetch + cfg.FrontDepth
		if r := robRelease[robIdx]; r > dispatch {
			dispatch = r
		}
		if r := schedRelease[schedIdx]; r > dispatch {
			dispatch = r
		}
		if inst.Kind == trace.KindLoad {
			if r := lqRelease[lqIdx]; r > dispatch {
				dispatch = r
			}
		}
		if inst.Kind == trace.KindStore {
			if r := sqRelease[sqIdx]; r > dispatch {
				dispatch = r
			}
		}

		// --- Issue: operand readiness + issue bandwidth ---------------
		ready := dispatch
		for _, r := range inst.SrcRegs {
			if r != trace.NoReg && regReady[r] > ready {
				ready = regReady[r]
			}
		}
		issue := issueLim.reserve(ready)

		// --- Execute ---------------------------------------------------
		var done uint64
		switch inst.Kind {
		case trace.KindLoad:
			lat := c.hier.L1D.Access(inst.MemAddr)
			// Store-to-load forwarding: a recent store to the same block
			// bounds the load's completion from below.
			block := inst.MemAddr >> 3
			fwd := uint64(0)
			for i := range storeAddr {
				if storeAddr[i] == block && storeDone[i] > fwd {
					fwd = storeDone[i]
				}
			}
			done = maxU(issue+lat, fwd)
		case trace.KindStore:
			done = issue + execLatency(inst.Kind)
			storeAddr[sqIdx] = inst.MemAddr >> 3
			storeDone[sqIdx] = done
		default:
			done = issue + execLatency(inst.Kind)
		}
		if inst.DstReg != trace.NoReg {
			regReady[inst.DstReg] = done
		}

		// --- Branch handling -------------------------------------------
		if inst.Kind == trace.KindCondBr {
			res.CondExecs++
			pred := inst.Taken
			switch {
			case opt.PerfectBP:
				// oracle
			case opt.PerfectIPs != nil && opt.PerfectIPs[inst.IP]:
				// oracle for the selected set; still train the predictor
				// so shared history matches deployment.
				if opt.Predictor != nil {
					p := opt.Predictor.Predict(inst.IP)
					train(inst.IP, inst.Target, inst.Taken, p)
				}
			case opt.MinExecsPerfect > 0 && execCounts[inst.IP] >= opt.MinExecsPerfect:
				if opt.Predictor != nil {
					p := opt.Predictor.Predict(inst.IP)
					train(inst.IP, inst.Target, inst.Taken, p)
				}
			case opt.Predictor != nil:
				pred = opt.Predictor.Predict(inst.IP)
				train(inst.IP, inst.Target, inst.Taken, pred)
			}
			if opt.MinExecsPerfect > 0 {
				execCounts[inst.IP]++
			}
			if pred != inst.Taken {
				res.Mispreds++
				// Wrong-path fetch is squashed when the branch resolves;
				// fetch restarts after the redirect penalty.
				if nr := done + cfg.RedirectPenalty; nr > fetchReady {
					fetchReady = nr
				}
			}
			if opt.BranchHook != nil {
				opt.BranchHook(inst.IP, inst.Target, inst.Taken, pred)
			}
		} else if inst.Kind.IsBranch() {
			if predBO != nil && !opt.PerfectBP {
				predBO.ObserveBranch(inst.IP, inst.Target, inst.Kind, inst.Taken)
			}
		}

		// Target prediction: a taken branch whose target the BTB/RAS did
		// not produce at fetch costs a decode-redirect bubble.
		if c.btb != nil && inst.Kind.IsBranch() {
			predTarget, hit := c.btb.Lookup(inst.IP, inst.Kind)
			if !c.btb.Update(inst.IP, inst.Target, inst.Kind, inst.Taken, predTarget, hit) {
				if nr := fetch + cfg.BTBMissPenalty; nr > fetchReady {
					fetchReady = nr
				}
			}
		}

		// --- Retire -----------------------------------------------------
		retire := retireLim.reserve(maxU(done+1, lastRetire))
		lastRetire = retire
		lastCycle = maxU(lastCycle, retire)

		// Release bounded structures.
		robRelease[robIdx] = retire
		robIdx++
		if robIdx == cfg.ROBSize {
			robIdx = 0
		}
		schedRelease[schedIdx] = issue
		schedIdx++
		if schedIdx == cfg.SchedSize {
			schedIdx = 0
		}
		if inst.Kind == trace.KindLoad {
			lqRelease[lqIdx] = done
			lqIdx++
			if lqIdx == cfg.LQSize {
				lqIdx = 0
			}
		}
		if inst.Kind == trace.KindStore {
			sqRelease[sqIdx] = retire
			sqIdx++
			if sqIdx == cfg.SQSize {
				sqIdx = 0
			}
		}
	}

	res.Cycles = lastCycle
	if res.Cycles > 0 {
		res.IPC = float64(res.Insts) / float64(res.Cycles)
	}
	if res.Insts > 0 {
		res.MPKI = 1000 * float64(res.Mispreds) / float64(res.Insts)
		res.L1DMissPKI = 1000 * float64(c.hier.L1D.Stats().Misses) / float64(res.Insts)
	}
	return res
}

// targetTrainer mirrors core's optional target-aware training interface;
// Run resolves it once per timed run rather than per branch.
type targetTrainer interface {
	TrainWithTarget(ip, target uint64, taken, pred bool)
}

func maxU(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// lastCycle0 bounds fetch from below so that fetch cannot fall
// unboundedly behind retirement bookkeeping (keeps the width-limiter ring
// windows aligned).
func lastCycle0(lastRetire uint64, cfg Config) uint64 {
	if lastRetire > uint64(cfg.ROBSize)+cfg.FrontDepth+widthWindow/2 {
		return lastRetire - uint64(cfg.ROBSize) - cfg.FrontDepth - widthWindow/2
	}
	return 0
}
