// Package analysistest runs a lint analyzer over golden-file packages
// and checks its diagnostics against // want comments, mirroring the
// x/tools package of the same name.
//
// A test package lives under testdata/src/<path>/ and is loaded
// GOPATH-style: imports resolve against testdata/src first, so a
// golden file that needs "time" or "math/rand" imports a tiny fake
// defined in the same testdata tree — the analyzers match packages by
// import path and symbol name, never by behavior, so a fake with the
// right path exercises exactly the production code path without
// needing compiled standard-library export data.
//
// Expectations are comments of the form
//
//	code() // want "regexp" "second regexp"
//
// Each quoted pattern must match the message of one diagnostic
// reported on that line; diagnostics with no matching pattern, and
// patterns with no matching diagnostic, both fail the test.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"branchlab/internal/lint/analysis"
)

// Run loads each package path from dir (a testdata root) and applies
// the analyzer, failing t on any mismatch between diagnostics and
// // want expectations.
//
// Facts cross package boundaries in-process: each imported testdata
// package runs the analyzer in facts-only mode (no // want checking)
// as it loads, depth-first, so by the time a named package is checked
// the shared store already holds its dependencies' facts — the same
// visibility order the vet driver gets from cmd/go.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	ld := &loader{
		src:      filepath.Join(dir, "src"),
		fset:     token.NewFileSet(),
		pkgs:     make(map[string]*loadedPkg),
		analyzer: a,
		facts:    analysis.NewFactStore(),
	}
	for _, path := range pkgpaths {
		lp, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		findings, err := analysis.RunAnalyzersFacts(ld.fset, lp.files, lp.pkg, lp.info, ld.facts, []*analysis.Analyzer{a})
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, path, err)
		}
		check(t, ld.fset, lp.files, findings)
	}
}

type loadedPkg struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

type loader struct {
	src      string
	fset     *token.FileSet
	pkgs     map[string]*loadedPkg
	analyzer *analysis.Analyzer
	facts    *analysis.FactStore
}

// load parses and type-checks the package in src/<path>, resolving its
// imports recursively through the same testdata tree.
func (ld *loader) load(path string) (*loadedPkg, error) {
	if lp, ok := ld.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(ld.src, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	conf := types.Config{
		Importer: importerFunc(func(importPath string) (*types.Package, error) {
			if importPath == "unsafe" {
				return types.Unsafe, nil
			}
			dep, err := ld.load(importPath)
			if err != nil {
				return nil, err
			}
			return dep.pkg, nil
		}),
	}
	info := analysis.NewTypesInfo()
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{pkg: pkg, files: files, info: info}
	ld.pkgs[path] = lp
	// Populate the shared store with this package's facts. Imports
	// recursed above, so dependencies are already done — the named
	// packages get a second, diagnostic-producing pass in Run.
	if err := analysis.ComputeFacts(ld.fset, files, pkg, info, ld.facts, []*analysis.Analyzer{ld.analyzer}); err != nil {
		return nil, err
	}
	return lp, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// expectation is one still-unmatched // want pattern.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
}

// errorSink abstracts the failure reporting of check so the matching
// logic itself is testable; *testing.T satisfies it.
type errorSink interface {
	Errorf(format string, args ...interface{})
}

// check compares findings against the files' // want comments.
func check(t *testing.T, fset *token.FileSet, files []*ast.File, findings []analysis.Finding) {
	t.Helper()
	var want []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				posn := fset.Position(c.Pos())
				for _, pat := range wantPatterns(t, posn, c.Text) {
					want = append(want, &expectation{file: posn.Filename, line: posn.Line, re: pat})
				}
			}
		}
	}
	matchFindings(t, want, findings)
}

// matchFindings reports every diagnostic with no matching expectation
// and every expectation with no matching diagnostic to sink. Each
// expectation consumes at most one diagnostic.
func matchFindings(sink errorSink, want []*expectation, findings []analysis.Finding) {
	for _, fd := range findings {
		matched := false
		for i, w := range want {
			if w != nil && w.file == fd.Posn.Filename && w.line == fd.Posn.Line && w.re.MatchString(fd.Message) {
				want[i] = nil
				matched = true
				break
			}
		}
		if !matched {
			sink.Errorf("unexpected diagnostic: %s", fd)
		}
	}
	for _, w := range want {
		if w != nil {
			sink.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// wantPatterns extracts the quoted regexps of one // want comment.
func wantPatterns(t *testing.T, posn token.Position, comment string) []*regexp.Regexp {
	t.Helper()
	rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(comment, "//")), "want ")
	if !ok {
		return nil
	}
	var pats []*regexp.Regexp
	rest = strings.TrimSpace(rest)
	for rest != "" {
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s: malformed // want comment at %q", posn, rest)
		}
		unq, err := strconv.Unquote(q)
		if err != nil {
			t.Fatalf("%s: unquoting %s: %v", posn, q, err)
		}
		re, err := regexp.Compile(unq)
		if err != nil {
			t.Fatalf("%s: bad // want pattern %q: %v", posn, unq, err)
		}
		pats = append(pats, re)
		rest = strings.TrimSpace(rest[len(q):])
	}
	return pats
}
