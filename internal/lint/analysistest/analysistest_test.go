package analysistest

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
	"testing"

	"branchlab/internal/lint/analysis"
)

// recordingSink captures matchFindings failures so the harness's own
// failure paths are testable without failing the real test.
type recordingSink struct {
	msgs []string
}

func (s *recordingSink) Errorf(format string, args ...interface{}) {
	s.msgs = append(s.msgs, fmt.Sprintf(format, args...))
}

func finding(file string, line int, msg string) analysis.Finding {
	return analysis.Finding{
		Analyzer: "fake",
		Posn:     token.Position{Filename: file, Line: line, Column: 1},
		Message:  msg,
	}
}

func expect(file string, line int, pattern string) *expectation {
	return &expectation{file: file, line: line, re: regexp.MustCompile(pattern)}
}

// A diagnostic with no matching // want expectation must fail the test
// — silently tolerating extra diagnostics would let analyzer
// regressions slip through golden files unnoticed.
func TestMatchFindingsUnexpectedDiagnostic(t *testing.T) {
	sink := &recordingSink{}
	matchFindings(sink,
		[]*expectation{expect("a.go", 3, "deterministic")},
		[]analysis.Finding{
			finding("a.go", 3, "deterministic seed required"),
			finding("a.go", 9, "surprise diagnostic"),
		})
	if len(sink.msgs) != 1 {
		t.Fatalf("got %d failures, want 1: %q", len(sink.msgs), sink.msgs)
	}
	if !strings.Contains(sink.msgs[0], "unexpected diagnostic") ||
		!strings.Contains(sink.msgs[0], "surprise diagnostic") {
		t.Errorf("failure does not identify the stray diagnostic: %q", sink.msgs[0])
	}
}

// An expectation with no matching diagnostic must fail the test — a
// deleted check would otherwise leave its golden // want comments
// passing vacuously.
func TestMatchFindingsMissingDiagnostic(t *testing.T) {
	sink := &recordingSink{}
	matchFindings(sink,
		[]*expectation{
			expect("a.go", 3, "deterministic"),
			expect("a.go", 5, "never reported"),
		},
		[]analysis.Finding{finding("a.go", 3, "deterministic seed required")})
	if len(sink.msgs) != 1 {
		t.Fatalf("got %d failures, want 1: %q", len(sink.msgs), sink.msgs)
	}
	if !strings.Contains(sink.msgs[0], "a.go:5") ||
		!strings.Contains(sink.msgs[0], "never reported") {
		t.Errorf("failure does not identify the unmet expectation: %q", sink.msgs[0])
	}
}

// Matching is positional: the same message on the wrong line satisfies
// nothing, and both failure modes fire at once.
func TestMatchFindingsWrongLine(t *testing.T) {
	sink := &recordingSink{}
	matchFindings(sink,
		[]*expectation{expect("a.go", 3, "seed required")},
		[]analysis.Finding{finding("a.go", 4, "seed required")})
	if len(sink.msgs) != 2 {
		t.Fatalf("got %d failures, want 2 (unexpected + missing): %q", len(sink.msgs), sink.msgs)
	}
}

// Same line, same file, message does not match the pattern: both sides
// fail rather than fuzzily pairing up.
func TestMatchFindingsPatternMismatch(t *testing.T) {
	sink := &recordingSink{}
	matchFindings(sink,
		[]*expectation{expect("a.go", 3, "^exact message$")},
		[]analysis.Finding{finding("a.go", 3, "a different message")})
	if len(sink.msgs) != 2 {
		t.Fatalf("got %d failures, want 2: %q", len(sink.msgs), sink.msgs)
	}
}

// Each expectation consumes at most one diagnostic: two identical
// diagnostics on one line need two // want patterns.
func TestMatchFindingsExpectationConsumedOnce(t *testing.T) {
	sink := &recordingSink{}
	matchFindings(sink,
		[]*expectation{expect("a.go", 3, "dup")},
		[]analysis.Finding{
			finding("a.go", 3, "dup message"),
			finding("a.go", 3, "dup message"),
		})
	if len(sink.msgs) != 1 || !strings.Contains(sink.msgs[0], "unexpected diagnostic") {
		t.Fatalf("second duplicate should be unexpected, got %q", sink.msgs)
	}

	// And symmetric: two patterns, one diagnostic.
	sink = &recordingSink{}
	matchFindings(sink,
		[]*expectation{expect("a.go", 3, "dup"), expect("a.go", 3, "dup")},
		[]analysis.Finding{finding("a.go", 3, "dup message")})
	if len(sink.msgs) != 1 || !strings.Contains(sink.msgs[0], "expected diagnostic") {
		t.Fatalf("second unmet pattern should fail, got %q", sink.msgs)
	}
}

// The clean cases: empty/empty and a full pairing produce no failures.
func TestMatchFindingsClean(t *testing.T) {
	sink := &recordingSink{}
	matchFindings(sink, nil, nil)
	matchFindings(sink,
		[]*expectation{expect("a.go", 3, "one"), expect("b.go", 7, "two")},
		[]analysis.Finding{
			finding("b.go", 7, "two of them"),
			finding("a.go", 3, "one of them"),
		})
	if len(sink.msgs) != 0 {
		t.Fatalf("clean match produced failures: %q", sink.msgs)
	}
}

// wantPatterns grammar: multiple quoted patterns per comment,
// non-want comments ignored.
func TestWantPatterns(t *testing.T) {
	posn := token.Position{Filename: "a.go", Line: 1}
	pats := wantPatterns(t, posn, `// want "first" "sec.nd"`)
	if len(pats) != 2 || !pats[0].MatchString("first") || !pats[1].MatchString("second") {
		t.Fatalf("parsed %v, want two patterns", pats)
	}
	if got := wantPatterns(t, posn, "// an ordinary comment"); got != nil {
		t.Fatalf("ordinary comment yielded patterns %v", got)
	}
	if got := wantPatterns(t, posn, "// wanting is not want"); got != nil {
		t.Fatalf("near-miss prefix yielded patterns %v", got)
	}
}
