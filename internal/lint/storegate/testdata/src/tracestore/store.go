// Package tracestore is the target package: exported functions
// returning file-tainted payload on ungated paths are flagged.
package tracestore

import (
	"blob"
	"os"
	"program"
	"trace"
)

type Pin struct {
	insts []trace.Inst
}

// --- raw bytes straight out: flagged ---

func ReadRaw(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return b, nil // want `returning unverified \[\]byte`
}

// --- the verify-then-return shape: clean ---

func ReadVerified(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := verifyBlob(path, b); err != nil {
		return nil, err
	}
	return b, nil
}

func verifyBlob(path string, b []byte) error { return nil }

// --- decoding through a directive-marked gate: clean ---

//storegate:gate
func decodeInsts(b []byte) ([]trace.Inst, error) { return nil, nil }

func Load(path string) ([]trace.Inst, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeInsts(b)
}

// --- taint through an unexported raw loader (mapFile shape) ---

// mapFile gets a ReadsUnverified fact, not a diagnostic: returning
// raw bytes is its documented job.
func mapFile(f *os.File, n int) ([]byte, error) {
	buf := make([]byte, n)
	if _, err := f.Read(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

func castInsts(b []byte) []trace.Inst { return nil }

// Payload struct leaves without a gate: flagged, through the local
// fact on mapFile.
func PinRaw(f *os.File, n int) (*Pin, error) {
	raw, err := mapFile(f, n)
	if err != nil {
		return nil, err
	}
	return &Pin{insts: castInsts(raw)}, nil // want `returning unverified \*tracestore.Pin`
}

// Same flow, gated before the return: clean.
func PinVerified(f *os.File, n int) (*Pin, error) {
	raw, err := mapFile(f, n)
	if err != nil {
		return nil, err
	}
	if err := verifyBlob("", raw); err != nil {
		return nil, err
	}
	return &Pin{insts: castInsts(raw)}, nil
}

// --- checkpoint blobs: flagged ungated, clean when gated ---

func parseCkpts(b []byte) []program.Checkpoint { return nil }

func Checkpoints(path string) ([]program.Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return parseCkpts(b), nil // want `returning unverified \[\]program.Checkpoint`
}

func CheckpointsVerified(path string) ([]program.Checkpoint, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if err := verifyBlob(path, b); err != nil {
		return nil, err
	}
	return parseCkpts(b), nil
}

// --- facts crossing the package boundary ---

// Flagged via the imported ReadsUnverified fact on blob.RawLoad.
func FromBlob(path string) ([]byte, error) {
	b, err := blob.RawLoad(path)
	if err != nil {
		return nil, err
	}
	return b, nil // want `returning unverified \[\]byte`
}

// Clean via the imported Gated facts: VerifyBlob dominates, Decode
// blesses.
func FromBlobVerified(path string) ([]byte, error) {
	b, err := blob.RawLoad(path)
	if err != nil {
		return nil, err
	}
	if err := blob.VerifyBlob(b); err != nil {
		return nil, err
	}
	return blob.Decode(b), nil
}

// --- non-payload results and cached data: clean ---

func Count(path string) (int, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

func (p *Pin) PinnedInsts() []trace.Inst {
	return p.insts
}

// --- a justified suppression silences the site ---

func Escape(path string) ([]byte, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore storegate golden-file justification for the raw escape hatch
	return b, nil
}
