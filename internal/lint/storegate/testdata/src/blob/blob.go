// Package blob is not a store package — no diagnostics fire here —
// but its facts must reach importers: RawLoad's ReadsUnverified and
// Decode's Gated.
package blob

import "os"

// RawLoad returns file bytes untouched: exports a ReadsUnverified
// fact, making its callers' data tainted.
func RawLoad(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// VerifyBlob is a gate by naming convention.
func VerifyBlob(b []byte) error { return nil }

// Decode is a gate by directive: its results are blessed.
//
//storegate:gate
func Decode(b []byte) []byte { return b }
