// Package trace declares the payload element type storegate matches
// by package basename and type name.
package trace

type Inst struct {
	PC     uint64
	Target uint64
}
