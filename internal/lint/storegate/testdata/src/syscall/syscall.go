// Package syscall is a minimal stand-in matched by import path and
// symbol name.
package syscall

func Mmap(fd int, offset int64, length int, prot int, flags int) ([]byte, error) {
	return nil, nil
}
