// Package os is a minimal stand-in matched by import path and symbol
// name.
package os

type File struct{}

func (f *File) Read(b []byte) (int, error)              { return 0, nil }
func (f *File) ReadAt(b []byte, off int64) (int, error) { return 0, nil }
func (f *File) Close() error                            { return nil }

func Open(name string) (*File, error)      { return nil, nil }
func ReadFile(name string) ([]byte, error) { return nil, nil }
