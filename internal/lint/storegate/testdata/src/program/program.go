// Package program declares the checkpoint payload type storegate
// matches by package basename and type name.
package program

type Checkpoint struct {
	ID   int
	Seed uint64
}
