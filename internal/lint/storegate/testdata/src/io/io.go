// Package io is a minimal stand-in matched by import path and symbol
// name.
package io

type Reader interface {
	Read(p []byte) (int, error)
}

func ReadAll(r Reader) ([]byte, error)           { return nil, nil }
func ReadFull(r Reader, buf []byte) (int, error) { return 0, nil }
