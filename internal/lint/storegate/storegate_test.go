package storegate_test

import (
	"testing"

	"branchlab/internal/lint/analysistest"
	"branchlab/internal/lint/storegate"
)

// TestStoregate covers the intra-package shapes and, through the blob
// dependency, the ReadsUnverified and Gated facts crossing a package
// boundary.
func TestStoregate(t *testing.T) {
	analysistest.Run(t, "testdata", storegate.Analyzer, "tracestore")
}
