// Package storegate enforces the trace-store verification contract of
// DESIGN.md §8: bytes read from disk (or mapped from it) are untrusted
// until a verification gate has vouched for them, and no path in
// internal/tracestore may hand payload data — raw bytes, decoded
// instruction slices, checkpoint blobs, or structs carrying them — to
// a caller without passing a gate first.
//
// Mechanics:
//
//   - Sources. A call to os.ReadFile, io.ReadAll, or syscall.Mmap
//     taints its result; io.ReadFull and (*File).Read/ReadAt taint the
//     buffer they fill. A call to any function carrying a
//     "ReadsUnverified" fact is likewise a source — the fact marks raw
//     loaders (tracestore's mapFile) so their callers inherit the
//     taint, across package boundaries.
//
//   - Gates. A function whose name begins with "verify"/"Verify", or
//     whose declaration carries a //storegate:gate directive, or that
//     holds an imported "Gated" fact, is a gate. A gate call's result
//     is clean, and a gate call dominating a return blesses the data
//     flowing past it: a statement containing a gate call (including
//     an if/for/switch init or condition — the verify-then-return
//     shape) gates every later statement in its block; a gate call
//     inside a branch body gates only that branch.
//
//   - Diagnostics fire on return statements of exported functions in
//     packages named tracestore that return file-tainted payload on an
//     ungated path. Unexported raw-returners anywhere get the
//     ReadsUnverified fact instead of a diagnostic: returning raw
//     bytes is their documented job, and the fact keeps their callers
//     honest.
//
// Known under-approximations, inherited from the Taint engine
// (dataflow.go) plus two of storegate's own: returns inside function
// literals are not checked, and gate calls are recognized
// syntactically — a gate reached through a function value is missed.
package storegate

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"branchlab/internal/lint/analysis"
)

// ReadsUnverified marks a function that returns file-derived data
// without passing it through a verification gate; its callers treat
// its results as tainted.
type ReadsUnverified struct{}

func (*ReadsUnverified) AFact() {}

// Gated marks a verification gate: calls to it bless the data they
// dominate. Exported for name-matched and directive-marked functions
// so importers recognize gates across package boundaries.
type Gated struct{}

func (*Gated) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "storegate",
	Doc:       "flags trace-store paths returning file-derived payload not dominated by a verification gate",
	Run:       run,
	FactTypes: []analysis.Fact{(*ReadsUnverified)(nil), (*Gated)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	var decls []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				decls = append(decls, fd)
			}
		}
	}

	// Phase 1: publish gates, so phase 2's taint analysis recognizes
	// calls to them (local or imported) as blessing.
	for _, fd := range decls {
		if gateName(fd.Name.Name) || hasGateDirective(fd) {
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				pass.ExportObjectFact(fn, &Gated{})
			}
		}
	}

	// Phase 2: fixpoint over ReadsUnverified — marking one function a
	// raw loader makes its callers' returns tainted in the next round.
	violations := make(map[*ast.FuncDecl][]violation)
	marked := make(map[*types.Func]bool) // this run's exports, not the store's
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			v := scanFunc(pass, fd)
			violations[fd] = v
			if len(v) > 0 && !marked[fn] {
				marked[fn] = true
				pass.ExportObjectFact(fn, &ReadsUnverified{})
				changed = true
			}
		}
	}

	// Phase 3: diagnostics, only for the exported surface of the store
	// package itself.
	if pathBase(pass.Pkg.Path()) != "tracestore" {
		return nil, nil
	}
	for _, fd := range decls {
		if !fd.Name.IsExported() || isTestFile(pass, fd.Pos()) {
			continue
		}
		for _, v := range violations[fd] {
			pass.Reportf(v.pos,
				"returning unverified %s read from the store: dominate this path with a verification gate (verify*, //storegate:gate) or decode through one (DESIGN.md §8)",
				v.what)
		}
	}
	return nil, nil
}

type violation struct {
	pos  token.Pos
	what string // printed type of the offending result
}

// scanFunc taints fd's body from its file-read sources and returns the
// ungated returns of tainted payload.
func scanFunc(pass *analysis.Pass, fd *ast.FuncDecl) []violation {
	t := analysis.NewTaint(pass.TypesInfo)
	t.SetSource(func(e ast.Expr) bool {
		call, ok := e.(*ast.CallExpr)
		return ok && isRawReadCall(pass, call)
	})
	t.SetExempt(func(call *ast.CallExpr) bool {
		return isGateCall(pass, call)
	})
	seedReaderBuffers(pass, fd.Body, t)
	t.Analyze(fd.Body)

	var out []violation
	scanStmts(pass, t, fd.Body.List, false, &out)
	return out
}

// scanStmts walks a statement list in order, tracking whether a gate
// call has dominated the flow, and records ungated tainted-payload
// returns. It returns the gated state at the end of the list so bare
// blocks propagate domination outward.
func scanStmts(pass *analysis.Pass, t *analysis.Taint, stmts []ast.Stmt, gated bool, out *[]violation) bool {
	for _, s := range stmts {
		for {
			ls, ok := s.(*ast.LabeledStmt)
			if !ok {
				break
			}
			s = ls.Stmt
		}
		switch s := s.(type) {
		case *ast.ReturnStmt:
			if !gated && !pass.SuppressedAt(s.Pos()) {
				for _, r := range s.Results {
					typ := pass.TypesInfo.Types[r].Type
					if isPayloadType(typ) && t.Tainted(r) {
						*out = append(*out, violation{pos: s.Pos(), what: typ.String()})
					}
				}
			}
		case *ast.IfStmt:
			hg := gated || hasGateCall(pass, s.Init) || hasGateCall(pass, s.Cond)
			scanStmts(pass, t, s.Body.List, hg, out)
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				scanStmts(pass, t, e.List, hg, out)
			case *ast.IfStmt:
				scanStmts(pass, t, []ast.Stmt{e}, hg, out)
			}
			gated = hg // the header runs on the fall-through path too
		case *ast.ForStmt:
			hg := gated || hasGateCall(pass, s.Init) || hasGateCall(pass, s.Cond)
			scanStmts(pass, t, s.Body.List, hg, out)
			gated = hg
		case *ast.RangeStmt:
			scanStmts(pass, t, s.Body.List, gated, out)
		case *ast.SwitchStmt:
			hg := gated || hasGateCall(pass, s.Init) || hasGateCall(pass, s.Tag)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanStmts(pass, t, cc.Body, hg, out)
				}
			}
			gated = hg
		case *ast.TypeSwitchStmt:
			hg := gated || hasGateCall(pass, s.Init) || hasGateCall(pass, s.Assign)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					scanStmts(pass, t, cc.Body, hg, out)
				}
			}
			gated = hg
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					scanStmts(pass, t, cc.Body, gated, out)
				}
			}
		case *ast.BlockStmt:
			gated = scanStmts(pass, t, s.List, gated, out)
		case *ast.DeferStmt, *ast.GoStmt:
			// Deferred and concurrent gate calls do not dominate.
		default:
			if hasGateCall(pass, s) {
				gated = true
			}
		}
	}
	return gated
}

// hasGateCall reports whether n (a statement or expression, possibly
// nil) contains a gate call outside any function literal.
func hasGateCall(pass *analysis.Pass, n ast.Node) bool {
	if n == nil {
		return false
	}
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if isGateCall(pass, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isGateCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	if gateName(fn.Name()) {
		return true
	}
	var fact Gated
	return pass.ImportObjectFact(fn, &fact)
}

func gateName(name string) bool {
	return strings.HasPrefix(name, "verify") || strings.HasPrefix(name, "Verify")
}

func hasGateDirective(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == "//storegate:gate" {
			return true
		}
	}
	return false
}

// isRawReadCall reports whether the call's result is file-derived:
// a known raw-read function, or a callee carrying a ReadsUnverified
// fact.
func isRawReadCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	switch pathBase(fn.Pkg().Path()) + "." + fn.Name() {
	case "os.ReadFile", "io.ReadAll", "syscall.Mmap":
		return true
	}
	var fact ReadsUnverified
	return pass.ImportObjectFact(fn, &fact)
}

// seedReaderBuffers taints the destination buffers of fill-style
// readers — io.ReadFull(r, buf) and f.Read(buf)/f.ReadAt(buf, off)
// write file bytes through their argument rather than returning them.
func seedReaderBuffers(pass *analysis.Pass, body *ast.BlockStmt, t *analysis.Taint) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil {
			return true
		}
		var buf ast.Expr
		switch {
		case fn.Name() == "ReadFull" && fn.Pkg() != nil && pathBase(fn.Pkg().Path()) == "io" && len(call.Args) == 2:
			buf = call.Args[1]
		case (fn.Name() == "Read" || fn.Name() == "ReadAt") && isMethodCall(call) && len(call.Args) >= 1:
			buf = call.Args[0]
		default:
			return true
		}
		if obj := rootObj(pass, buf); obj != nil {
			t.Seed(obj)
		}
		return true
	})
}

func isMethodCall(call *ast.CallExpr) bool {
	_, ok := call.Fun.(*ast.SelectorExpr)
	return ok
}

// rootObj resolves an expression to the object it reads or writes
// through (x, x.f, x[i], *x all root at x).
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if o := pass.TypesInfo.Uses[x]; o != nil {
				return o
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isPayloadType reports whether t is store payload: raw bytes, decoded
// instruction or checkpoint slices, or a composite carrying one.
func isPayloadType(t types.Type) bool {
	return containsPayload(t, make(map[types.Type]bool))
}

func containsPayload(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Slice:
		if b, ok := t.Elem().(*types.Basic); ok && b.Kind() == types.Byte {
			return true // payload bytes
		}
		return containsPayload(t.Elem(), seen)
	case *types.Pointer:
		return containsPayload(t.Elem(), seen)
	case *types.Named:
		if isPayloadNamed(t) {
			return true
		}
		return containsPayload(t.Underlying(), seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsPayload(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsPayload(t.Elem(), seen)
	case *types.Tuple:
		// A forwarded multi-value call: return loadRaw(path).
		for i := 0; i < t.Len(); i++ {
			if containsPayload(t.At(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}

// isPayloadNamed matches the decoded payload element types by package
// basename and type name: trace.Inst and program.Checkpoint.
func isPayloadNamed(t *types.Named) bool {
	obj := t.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	base := pathBase(obj.Pkg().Path())
	return (base == "trace" && obj.Name() == "Inst") ||
		(base == "program" && obj.Name() == "Checkpoint")
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}
