// Package errcontract enforces the error-surface contract of
// DESIGN.md §8: the library layers (program, tracecache, tracestore,
// engine, xrand) report failures as error values, never as panics
// reachable from caller-controlled input, and callers discriminate
// errors with errors.Is — not pointer identity, not string matching.
//
// Two independent checks:
//
//  1. Input-dependent panics. A panic is input-dependent when its
//     argument, or any enclosing branch condition, derives from the
//     function's parameters or receiver (the intra-function Taint
//     engine decides "derives"). The property propagates
//     interprocedurally as a "MayPanic" fact: a function that forwards
//     tainted data into a may-panic callee may itself panic on its
//     input, across package boundaries. Diagnostics fire only on
//     exported functions of the target packages; internal helpers may
//     panic freely as long as no exported path reaches them.
//
//     A function whose body calls recover() absorbs the property — it
//     is its own panic boundary. A //lint:ignore errcontract on the
//     panic (or call) line suppresses the site and stops propagation,
//     so one justified suppression at a deliberate escalation point
//     (engine's abortPanic, program's typed unwinds) keeps every
//     transitive caller clean.
//
//  2. Sentinel discrimination. Comparing an error against a
//     package-level sentinel with == or !=, or matching on the
//     Error() string (== or strings.Contains and friends), breaks as
//     soon as anyone wraps the error; errors.Is is the contract.
//     This check applies everywhere, tests included — tests are where
//     the bad idiom breeds.
//
// Soundness follows the Taint engine's over-approximations
// (dataflow.go): a panic guarded by a condition that merely mentions a
// parameter is input-dependent even if unreachable; panics hidden
// behind interface dispatch or function values are missed.
package errcontract

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"branchlab/internal/lint/analysis"
)

// MayPanic marks a function that may panic on a path dependent on its
// parameters or receiver. At is the source position of the originating
// panic, carried through propagation as the witness.
type MayPanic struct {
	At string
}

func (*MayPanic) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "errcontract",
	Doc:       "flags exported library functions that may panic on input-dependent paths, and ==/string comparisons of sentinel errors",
	Run:       run,
	FactTypes: []analysis.Fact{(*MayPanic)(nil)},
}

// targetBases are the package basenames whose exported surface must be
// panic-free; sentinel checks apply to every package.
var targetBases = map[string]bool{
	"program":    true,
	"tracecache": true,
	"tracestore": true,
	"engine":     true,
	"xrand":      true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	checkSentinels(pass)
	checkPanics(pass)
	return nil, nil
}

// --- check 1: input-dependent panics ---

type funcInfo struct {
	fn      *types.Func
	decl    *ast.FuncDecl
	taint   *analysis.Taint
	absorbs bool // body calls recover(): its own panic boundary
}

func checkPanics(pass *analysis.Pass) {
	var funcs []*funcInfo
	byObj := make(map[*types.Func]*funcInfo)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{fn: fn, decl: fd, absorbs: callsRecover(pass, fd.Body)}
			fi.taint = analysis.NewTaint(pass.TypesInfo)
			fi.taint.Seed(inputObjects(pass, fd)...)
			fi.taint.Analyze(fd.Body)
			funcs = append(funcs, fi)
			byObj[fn] = fi
		}
	}

	// Fixpoint: a function becomes may-panic when it contains an
	// unsuppressed input-dependent panic, or forwards tainted data into
	// a may-panic callee (local or via an imported fact).
	mayPanic := make(map[*types.Func]string) // witness position
	for changed := true; changed; {
		changed = false
		for _, fi := range funcs {
			if fi.absorbs {
				continue
			}
			if _, done := mayPanic[fi.fn]; done {
				continue
			}
			if at, found := scanPanicSites(pass, fi, byObj, mayPanic); found {
				mayPanic[fi.fn] = at
				changed = true
			}
		}
	}

	for fn, at := range mayPanic {
		pass.ExportObjectFact(fn, &MayPanic{At: at})
	}

	if !targetBases[pathBase(pass.Pkg.Path())] {
		return
	}
	for _, fi := range funcs {
		at, found := mayPanic[fi.fn]
		if !found || !exportedSurface(fi.decl) {
			continue
		}
		if isTestFile(pass, fi.decl.Pos()) {
			continue
		}
		pass.Reportf(fi.decl.Name.Pos(),
			"exported %s may panic on an input-dependent path (panic at %s): return an error, or justify the panic site with //lint:ignore errcontract (DESIGN.md §8)",
			fi.fn.Name(), at)
	}
}

// scanPanicSites walks one function body looking for a reachable
// input-dependent panic: a direct panic(...) whose argument or
// enclosing conditions are tainted, or a call forwarding tainted data
// into a may-panic callee. Suppressed sites are skipped — the
// suppression both silences the site and stops propagation.
func scanPanicSites(pass *analysis.Pass, fi *funcInfo,
	byObj map[*types.Func]*funcInfo, mayPanic map[*types.Func]string) (string, bool) {

	var at string
	found := false
	var stack []ast.Node
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPanicCall(pass, call) {
			if pass.SuppressedAt(call.Pos()) {
				return true
			}
			arg := ast.Expr(nil)
			if len(call.Args) == 1 {
				arg = call.Args[0]
			}
			if fi.taint.Tainted(arg) || condsTainted(fi.taint, stack) {
				at = pass.Fset.Position(call.Pos()).String()
				found = true
			}
			return true
		}
		callee := calleeFunc(pass, call)
		if callee == nil {
			return true
		}
		witness, panics := mayPanic[callee]
		if !panics {
			if _, isLocal := byObj[callee]; !isLocal {
				var fact MayPanic
				if pass.ImportObjectFact(callee, &fact) {
					witness, panics = fact.At, true
				}
			}
		}
		if !panics || pass.SuppressedAt(call.Pos()) {
			return true
		}
		if anyInputTainted(fi.taint, call) {
			at = witness
			found = true
		}
		return true
	})
	return at, found
}

// anyInputTainted reports whether the call forwards tainted data: an
// argument or the method receiver expression.
func anyInputTainted(t *analysis.Taint, call *ast.CallExpr) bool {
	for _, a := range call.Args {
		if t.Tainted(a) {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && t.Tainted(sel.X) {
		return true
	}
	return false
}

// condsTainted reports whether any enclosing branch condition on the
// stack derives from the seeds: the `if n < 0 { panic(...) }` shape.
func condsTainted(t *analysis.Taint, stack []ast.Node) bool {
	for _, n := range stack {
		switch s := n.(type) {
		case *ast.IfStmt:
			if t.Tainted(s.Cond) {
				return true
			}
		case *ast.ForStmt:
			if t.Tainted(s.Cond) {
				return true
			}
		case *ast.SwitchStmt:
			if t.Tainted(s.Tag) {
				return true
			}
		case *ast.RangeStmt:
			if t.Tainted(s.X) {
				return true
			}
		}
	}
	return false
}

// inputObjects collects the taint seeds of a declaration: named
// parameters and the receiver.
func inputObjects(pass *analysis.Pass, fd *ast.FuncDecl) []types.Object {
	var objs []types.Object
	add := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := pass.TypesInfo.Defs[name]; obj != nil {
					objs = append(objs, obj)
				}
			}
		}
	}
	add(fd.Recv)
	add(fd.Type.Params)
	return objs
}

func callsRecover(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "recover" {
			if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
				found = true
			}
		}
		return !found
	})
	return found
}

func isPanicCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

// exportedSurface reports whether the declaration is callable from
// outside the package: an exported function, or an exported method on
// an exported type.
func exportedSurface(fd *ast.FuncDecl) bool {
	if !fd.Name.IsExported() {
		return false
	}
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.IsExported()
	}
	return true
}

// --- check 2: sentinel discrimination ---

func checkSentinels(pass *analysis.Pass) {
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				if inErrorsIsMethod(pass, stack) {
					// An Is(target error) bool method IS the errors.Is
					// protocol: identity comparison is its implementation.
					return true
				}
				if sent := sentinelOperand(pass, n.X, n.Y); sent != "" {
					pass.Reportf(n.Pos(), "compare against sentinel %s with errors.Is, not %s (wrapping breaks identity; DESIGN.md §8)", sent, n.Op)
					return true
				}
				if isEmptyString(pass, n.X) || isEmptyString(pass, n.Y) {
					// err.Error() == "" asserts a message exists; it does
					// not discriminate between errors.
					return true
				}
				if errorStringOperand(pass, n.X) || errorStringOperand(pass, n.Y) {
					pass.Reportf(n.Pos(), "match errors with errors.Is/errors.As, not by comparing Error() strings (DESIGN.md §8)")
				}
			case *ast.CallExpr:
				if fn := calleeFunc(pass, n); fn != nil && fn.Pkg() != nil &&
					pathBase(fn.Pkg().Path()) == "strings" && stringMatchers[fn.Name()] {
					for _, a := range n.Args {
						if errorStringOperand(pass, a) {
							pass.Reportf(n.Pos(), "match errors with errors.Is/errors.As, not strings.%s on Error() output (DESIGN.md §8)", fn.Name())
							break
						}
					}
				}
			}
			return true
		})
	}
}

var stringMatchers = map[string]bool{
	"Contains": true, "HasPrefix": true, "HasSuffix": true, "EqualFold": true,
}

// inErrorsIsMethod reports whether the innermost enclosing function on
// the stack is a method implementing the errors.Is protocol:
// func (T) Is(target error) bool. A nested function literal is not.
func inErrorsIsMethod(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return false
		case *ast.FuncDecl:
			fn, ok := pass.TypesInfo.Defs[f.Name].(*types.Func)
			if !ok || f.Recv == nil || fn.Name() != "Is" {
				return false
			}
			sig := fn.Type().(*types.Signature)
			return sig.Params().Len() == 1 && isErrorType(sig.Params().At(0).Type()) &&
				sig.Results().Len() == 1 &&
				sig.Results().At(0).Type() == types.Typ[types.Bool]
		}
	}
	return false
}

// isEmptyString reports whether e is the literal "".
func isEmptyString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
	return ok && tv.Value != nil && tv.Value.ExactString() == `""`
}

// sentinelOperand returns the printed form of whichever operand is a
// package-level error variable (a sentinel), if the other operand is
// error-typed and not the nil literal.
func sentinelOperand(pass *analysis.Pass, x, y ast.Expr) string {
	if name := sentinelName(pass, x); name != "" && !isNilExpr(pass, y) {
		return name
	}
	if name := sentinelName(pass, y); name != "" && !isNilExpr(pass, x) {
		return name
	}
	return ""
}

func sentinelName(pass *analysis.Pass, e ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !isErrorType(v.Type()) {
		return ""
	}
	return v.Name()
}

// errorStringOperand reports whether e is a call to the Error() method
// of an error value.
func errorStringOperand(pass *analysis.Pass, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Error" || len(call.Args) != 0 {
		return false
	}
	t := pass.TypesInfo.Types[sel.X].Type
	return t != nil && isErrorType(t)
}

func isNilExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// --- shared helpers ---

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func pathBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func isTestFile(pass *analysis.Pass, pos token.Pos) bool {
	return strings.HasSuffix(pass.Fset.Position(pos).Filename, "_test.go")
}
