package errcontract_test

import (
	"testing"

	"branchlab/internal/lint/analysistest"
	"branchlab/internal/lint/errcontract"
)

func TestErrcontract(t *testing.T) {
	analysistest.Run(t, "testdata", errcontract.Analyzer, "program")
}

// TestCrossPackageFact checks the MayPanic fact crossing a package
// boundary: engine's only diagnostic depends on the fact exported
// while loading dep.
func TestCrossPackageFact(t *testing.T) {
	analysistest.Run(t, "testdata", errcontract.Analyzer, "engine")
}
