// Package strings is a minimal stand-in for the standard library's
// strings package — matched by import path and symbol name.
package strings

func Contains(s, substr string) bool  { return false }
func HasPrefix(s, prefix string) bool { return false }
func HasSuffix(s, suffix string) bool { return false }
func EqualFold(s, t string) bool      { return false }
