// Package dep is not a target package — no diagnostics fire here —
// but its MayPanic facts must reach importers.
package dep

// Explode panics on its input: exports a MayPanic fact.
func Explode(n int) {
	if n < 0 {
		panic("boom")
	}
}

// Safe never panics.
func Safe(n int) int { return n }

// Contained panics internally but recovers: no fact.
func Contained(n int) (err error) {
	defer func() { _ = recover() }()
	if n < 0 {
		panic("boom")
	}
	return nil
}
