// Package errors is a minimal stand-in for the standard library's
// errors package — the analyzer only needs the import path to resolve.
package errors

type errorString struct{ s string }

func (e *errorString) Error() string { return e.s }

func New(text string) error { return &errorString{text} }

func Is(err, target error) bool { return err == target }

func As(err error, target interface{}) bool { return false }
