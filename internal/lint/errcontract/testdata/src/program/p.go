// Package program is a target package: exported functions reaching
// input-dependent panics are flagged, sentinel misuse is flagged
// everywhere.
package program

import (
	"errors"
	"strings"
)

var ErrBadInput = errors.New("bad input")

// --- input-dependent panics ---

// Panic guarded by a parameter-derived condition: flagged.
func Validate(n int) { // want `exported Validate may panic on an input-dependent path`
	if n < 0 {
		panic("negative count")
	}
}

// Panic whose argument derives from the parameter: flagged.
func Describe(name string) { // want `exported Describe may panic on an input-dependent path`
	panic("unknown name " + name)
}

// Method on an exported type, receiver-dependent: flagged.
type Table struct{ rows int }

func (t *Table) Row(i int) int { // want `exported Row may panic on an input-dependent path`
	if i >= t.rows {
		panic("row out of range")
	}
	return i
}

// Unconditional panic with a constant argument is not input-dependent:
// an assertion about the program, not the input.
func Unreachable() {
	panic("unreachable: covered all cases above")
}

// A recover() in the body absorbs panics: this is its own boundary.
func Guarded(n int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = ErrBadInput
		}
	}()
	if n < 0 {
		panic("negative")
	}
	return nil
}

// A justified suppression at the panic site silences it and stops
// propagation: callers stay clean.
func escalate(n int) {
	if n < 0 {
		//lint:ignore errcontract deliberate escalation boundary for the golden test
		panic("negative")
	}
}

func UsesEscalate(n int) {
	escalate(n)
}

// Propagation through a local helper: the unexported helper panics on
// its input, the exported wrapper forwards its parameter into it.
func mustPositive(n int) int {
	if n <= 0 {
		panic("not positive")
	}
	return n
}

func Scale(n int) int { // want `exported Scale may panic on an input-dependent path`
	return mustPositive(n) * 2
}

// Forwarding a constant is not input-dependent.
func ScaleFixed() int {
	return mustPositive(8) * 2
}

// --- sentinel discrimination ---

func check(err error) bool {
	return err == ErrBadInput // want `compare against sentinel ErrBadInput with errors.Is`
}

func checkNeq(err error) bool {
	return err != ErrBadInput // want `compare against sentinel ErrBadInput with errors.Is`
}

func checkString(err error) bool {
	return err.Error() == "bad input" // want `not by comparing Error\(\) strings`
}

func checkContains(err error) bool {
	return strings.Contains(err.Error(), "bad") // want `not strings.Contains on Error\(\) output`
}

// The contract-conforming forms are clean.
func checkIs(err error) bool {
	return errors.Is(err, ErrBadInput)
}

func checkNil(err error) bool {
	return err == nil || err != nil
}

// Asserting that a message exists is not discrimination: clean.
func checkHasMessage(err error) bool {
	return err.Error() != ""
}

// An Is method implements the errors.Is protocol: identity comparison
// inside it is the implementation, not a violation.
type wrappedError struct{ cause error }

func (e *wrappedError) Error() string { return "wrapped: " + e.cause.Error() }

func (e *wrappedError) Is(target error) bool { return target == ErrBadInput }

func (e *wrappedError) Unwrap() error { return e.cause }
