// Package engine is a target package importing dep: the MayPanic fact
// on dep.Explode must cross the package boundary to flag Forward.
package engine

import "dep"

// Forwards its parameter into a may-panic dependency: flagged via the
// imported fact.
func Forward(n int) { // want `exported Forward may panic on an input-dependent path`
	dep.Explode(n)
}

// Forwarding a constant is not input-dependent.
func ForwardFixed() {
	dep.Explode(1)
}

// A panic-free callee keeps the caller clean.
func ForwardSafe(n int) int {
	return dep.Safe(n)
}

// The recovered callee exports no fact.
func ForwardContained(n int) error {
	return dep.Contained(n)
}
