// Package fmt is a minimal stand-in for the standard library's fmt
// package; the analyzer matches call names, not signatures.
package fmt

// Fprintf mimics fmt.Fprintf.
func Fprintf(w interface{}, format string, args ...interface{}) (int, error) {
	return 0, nil
}

// Printf mimics fmt.Printf.
func Printf(format string, args ...interface{}) (int, error) { return 0, nil }

// Sprintf mimics fmt.Sprintf.
func Sprintf(format string, args ...interface{}) string { return "" }
