// Package time is a minimal stand-in for the standard library's time
// package: the determinism analyzer matches by import path and symbol
// name only, so golden tests need the names, not the behavior.
package time

// Time is a placeholder for time.Time.
type Time struct{ wall uint64 }

// Now mimics time.Now's signature.
func Now() Time { return Time{} }
