// Package sort is a minimal stand-in for the standard library's sort
// package, for golden tests of the collect-then-sort exemption.
package sort

// Strings mimics sort.Strings.
func Strings(s []string) {}

// Ints mimics sort.Ints.
func Ints(s []int) {}

// Slice mimics sort.Slice.
func Slice(x interface{}, less func(i, j int) bool) {}
