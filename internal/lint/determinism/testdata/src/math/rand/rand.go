// Package rand is a minimal stand-in for math/rand: the analyzers
// flag the import path itself, so only the names matter.
package rand

// Int mimics rand.Int.
func Int() int { return 4 }

// Intn mimics rand.Intn.
func Intn(n int) int { return 0 }
