// Package a is the determinism analyzer's golden file: each // want
// comment asserts one diagnostic, and the unannotated declarations
// assert the idiomatic fixes stay clean.
package a

import (
	"fmt"
	"math/rand" // want `import of math/rand: its streams are not reproducible`
	"sort"
	"time"
)

// --- ambient entropy ---

func wallClock() time.Time {
	return time.Now() // want `time\.Now: artifacts must be pure functions`
}

func draw() int {
	// The import is the diagnostic; uses are not re-flagged.
	return rand.Int()
}

// --- float accumulation over map order ---

func sumFloats(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `float accumulation in map-range loop`
	}
	return total
}

func sumFloatsSelfAssign(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total = total + v // want `float accumulation in map-range loop`
	}
	return total
}

func sumFloatsField(m map[string]float64, acc *struct{ Sum float64 }) {
	for _, v := range m {
		acc.Sum += v // want `float accumulation in map-range loop`
	}
}

// The fix: extract and sort the keys first, then iterate a slice.
func sumFloatsSorted(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort idiom: exempt
	}
	sort.Strings(keys)
	var total float64
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// Integer accumulation commutes exactly; not flagged.
func sumInts(m map[string]uint64) uint64 {
	var total uint64
	for _, v := range m {
		total += v
	}
	return total
}

// Per-key updates touch independent entries; not flagged.
func fold(dst, src map[string]float64) {
	for k, v := range src {
		dst[k] += v
	}
}

// A per-iteration accumulator resets each pass; not flagged.
func perIteration(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		total := 0.0
		for _, v := range vs {
			total += v
		}
		out[k] = total
	}
	return out
}

// --- appends in map order ---

func collectValues(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `append to out inside a map-range loop`
	}
	return out
}

func collectThenSort(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // sorted below: exempt
	}
	sort.Ints(out)
	return out
}

// --- writes in map order ---

func dump(w interface{}, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `Fprintf inside a map-range loop`
	}
}

func dumpStdout(m map[string]int) {
	for k := range m {
		fmt.Printf("%s\n", k) // want `Printf inside a map-range loop`
	}
}

type builder struct{ s string }

func (b *builder) WriteString(s string) {}

// A per-iteration buffer cannot observe iteration order; not flagged.
func perKeyBuffer(m map[string]int, out map[string]string) {
	for k := range m {
		var b builder
		b.WriteString(k)
		out[k] = b.s
	}
}

func sharedBuffer(b *builder, m map[string]int) {
	for k := range m {
		b.WriteString(k) // want `WriteString inside a map-range loop`
	}
}

// --- suppression ---

func suppressed(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		//lint:ignore determinism diagnostic-only total, never reaches an artifact
		total += v
	}
	return total
}
