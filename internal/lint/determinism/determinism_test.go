package determinism_test

import (
	"testing"

	"branchlab/internal/lint/analysistest"
	"branchlab/internal/lint/determinism"
)

func TestDeterminism(t *testing.T) {
	analysistest.Run(t, "testdata", determinism.Analyzer, "a")
}
