// Package determinism flags code whose output can depend on map
// iteration order or ambient entropy — the bug class behind PR 1's
// sortedTotals fix, where a float accumulation over an unsorted map
// range produced artifacts that differed between byte-identical runs.
//
// Every branchlab artifact must be a pure function of (workload, seed,
// budget, geometry); see DESIGN.md "Statically enforced invariants".
// The analyzer reports:
//
//   - range loops over maps whose bodies accumulate into a shared
//     float accumulator, append to a slice that is never sorted in the
//     same function, or write output through Print/Fprint/Write/Encode
//     calls — all order-sensitive; iterate sorted keys instead;
//   - imports of math/rand and math/rand/v2 anywhere outside
//     internal/xrand: their streams are not stable across Go releases,
//     and unseeded draws differ across runs;
//   - calls to time.Now outside _test.go files: wall-clock values must
//     never reach an artifact.
//
// Per-key updates (m[k] += v), integer accumulation, and deletes
// inside map ranges are order-independent and are not flagged.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"branchlab/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc:  "flags map-iteration-order and ambient-entropy dependencies in artifact-producing code",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	// xrand is the one place entropy primitives are allowed to live.
	exempt := strings.HasSuffix(pass.Pkg.Path(), "internal/xrand")
	for _, file := range pass.Files {
		if !exempt {
			checkEntropy(pass, file)
		}
		checkMapRanges(pass, file)
	}
	return nil, nil
}

// checkEntropy flags math/rand imports and time.Now calls.
func checkEntropy(pass *analysis.Pass, file *ast.File) {
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if path == "math/rand" || path == "math/rand/v2" {
			pass.Reportf(imp.Pos(),
				"import of %s: its streams are not reproducible across Go releases; use internal/xrand (seeded, version-stable)", path)
		}
	}
	// Wall-clock timing is fine in tests (deadlines, benchmarks) but
	// never in code that can feed an artifact.
	if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
		return
	}
	ast.Inspect(file, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			fn.Name() == "Now" && fn.Pkg() != nil && fn.Pkg().Path() == "time" {
			pass.Reportf(sel.Pos(),
				"time.Now: artifacts must be pure functions of (seed, budget); keep wall-clock time out of output paths or //lint:ignore with a reason")
		}
		return true
	})
}

// checkMapRanges flags order-sensitive statements inside `range m`
// loops where m is a map.
func checkMapRanges(pass *analysis.Pass, file *ast.File) {
	// Map from function body to the range statements it contains, so
	// the append check can look for a later sort in the same function.
	var funcStack []ast.Node
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					funcStack = append(funcStack, n.Body)
					walk(n.Body)
					funcStack = funcStack[:len(funcStack)-1]
				}
				return false
			case *ast.FuncLit:
				funcStack = append(funcStack, n.Body)
				walk(n.Body)
				funcStack = funcStack[:len(funcStack)-1]
				return false
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						var scope ast.Node
						if len(funcStack) > 0 {
							scope = funcStack[len(funcStack)-1]
						}
						checkMapRangeBody(pass, n, scope)
					}
				}
			}
			return true
		})
	}
	walk(file)
}

func checkMapRangeBody(pass *analysis.Pass, rng *ast.RangeStmt, funcBody ast.Node) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkFloatAccum(pass, rng, n)
			checkAppend(pass, rng, funcBody, n)
		case *ast.CallExpr:
			checkWrite(pass, rng, n)
		}
		return true
	})
}

// checkFloatAccum flags `acc += v` (and `acc = acc + v`) where acc is
// a float accumulator shared across iterations. Per-key map updates
// (m[k] += v) touch independent entries and are exempt.
func checkFloatAccum(pass *analysis.Pass, rng *ast.RangeStmt, as *ast.AssignStmt) {
	if len(as.Lhs) != 1 {
		return
	}
	lhs := as.Lhs[0]
	if _, perKey := lhs.(*ast.IndexExpr); perKey {
		return
	}
	if !isFloat(pass, lhs) {
		return
	}
	accumulates := false
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		accumulates = true
	case token.ASSIGN:
		// x = x + v style self-reference.
		if obj := rootObject(pass, lhs); obj != nil {
			ast.Inspect(as.Rhs[0], func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					accumulates = true
				}
				return true
			})
		}
	}
	if !accumulates {
		return
	}
	// An accumulator declared inside the loop body resets per
	// iteration and cannot observe iteration order.
	if obj := rootObject(pass, lhs); obj != nil && within(obj.Pos(), rng.Body) {
		return
	}
	pass.Reportf(as.Pos(),
		"float accumulation in map-range loop: float addition is not associative, so the result depends on map iteration order; iterate sorted keys")
}

// checkAppend flags appends to a slice declared outside the loop,
// unless the same function later passes that slice to a sort — the
// collect-then-sort idiom is the canonical fix and stays legal.
func checkAppend(pass *analysis.Pass, rng *ast.RangeStmt, funcBody ast.Node, as *ast.AssignStmt) {
	for _, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
			continue
		} else if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
			continue
		}
		obj := rootObject(pass, call.Args[0])
		if obj == nil || within(obj.Pos(), rng.Body) {
			continue
		}
		if funcBody != nil && sortedInFunc(pass, funcBody, obj) {
			continue
		}
		pass.Reportf(as.Pos(),
			"append to %s inside a map-range loop: element order follows map iteration order; sort %s afterwards or iterate sorted keys", obj.Name(), obj.Name())
	}
}

// sortedInFunc reports whether obj is passed to (or is the receiver
// of) a sort-like call anywhere in the function body.
func sortedInFunc(pass *analysis.Pass, funcBody ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		name := ""
		switch fun := call.Fun.(type) {
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		case *ast.Ident:
			name = fun.Name
		}
		if !strings.Contains(name, "Sort") && !sortFuncNames[name] {
			return true
		}
		for _, arg := range call.Args {
			if rootObject(pass, arg) == obj {
				found = true
			}
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && rootObject(pass, sel.X) == obj {
			found = true
		}
		return !found
	})
	return found
}

// sortFuncNames are sort-package entry points that do not contain
// "Sort" in their name.
var sortFuncNames = map[string]bool{
	"Strings": true, "Ints": true, "Float64s": true, "Slice": true,
	"SliceStable": true, "Stable": true,
}

// checkWrite flags output calls (Print/Fprint/Write/Encode families)
// whose destination outlives the loop.
func checkWrite(pass *analysis.Pass, rng *ast.RangeStmt, call *ast.CallExpr) {
	name := ""
	var dest ast.Expr
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		dest = fun.X // method call: the receiver is the destination
	case *ast.Ident:
		name = fun.Name
	}
	if !writeName(name) {
		return
	}
	if strings.HasPrefix(name, "Fprint") && len(call.Args) > 0 {
		dest = call.Args[0] // Fprint family: first argument is the writer
	}
	if dest != nil {
		// A destination declared inside the loop body (a per-iteration
		// buffer) resets each pass and cannot observe iteration order.
		// Package qualifiers (fmt.Println) are not destinations.
		if obj := rootObject(pass, dest); obj != nil {
			if _, isPkg := obj.(*types.PkgName); !isPkg && within(obj.Pos(), rng.Body) {
				return
			}
		}
	}
	pass.Reportf(call.Pos(),
		"%s inside a map-range loop writes output in map iteration order; iterate sorted keys", name)
}

func writeName(name string) bool {
	for _, prefix := range []string{"Fprint", "Print", "Write", "Encode"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// rootObject unwraps selectors, indexes, parens, derefs and slices to
// the base identifier's object.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// within reports whether pos falls inside node's extent.
func within(pos token.Pos, node ast.Node) bool {
	return node != nil && node.Pos() <= pos && pos < node.End()
}
