// Package a is the blockalias analyzer's golden file. The stream type
// mirrors the trace.BlockStream shape: matching is structural (any
// no-arg NextBlock method returning a slice), so the golden package
// needs no import of the real trace package.
package a

type Inst struct{ IP uint64 }

type stream struct{ buf []Inst }

func (s *stream) NextBlock() []Inst { return s.buf }

type sink struct {
	held []Inst
	all  [][]Inst
	byIP map[uint64][]Inst
	ch   chan []Inst
}

var global []Inst

// --- retaining positions: all flagged ---

func storeField(k *sink, s *stream) {
	blk := s.NextBlock()
	k.held = blk // want `stored in a field`
}

func storeFieldDirect(k *sink, s *stream) {
	k.held = s.NextBlock() // want `stored in a field`
}

func storeElement(k *sink, s *stream) {
	blk := s.NextBlock()
	k.byIP[blk[0].IP] = blk // want `stored in a map or slice element`
}

func storePackageLevel(s *stream) {
	global = s.NextBlock() // want `stored in a package-level variable`
}

func send(k *sink, s *stream) {
	k.ch <- s.NextBlock() // want `sent on a channel`
}

func appendWhole(k *sink, s *stream) {
	blk := s.NextBlock()
	k.all = append(k.all, blk) // want `appended as a whole block`
}

func ret(s *stream) []Inst {
	return s.NextBlock() // want `returned to the caller`
}

func retSliced(s *stream) []Inst {
	blk := s.NextBlock()
	return blk[:1] // want `returned to the caller`
}

// Reslicing aliases the same storage; the alias is tracked.
func aliasThroughReslice(k *sink, s *stream) {
	blk := s.NextBlock()
	tail := blk[1:]
	k.held = tail // want `stored in a field`
}

func literal(s *stream) [][]Inst {
	blk := s.NextBlock()
	return [][]Inst{blk} // want `stored in a composite literal`
}

// --- legal uses: never flagged ---

// Consuming the block before the next call is the intended pattern.
func consume(s *stream) (n uint64) {
	for blk := s.NextBlock(); len(blk) > 0; blk = s.NextBlock() {
		for i := range blk {
			n += blk[i].IP
		}
	}
	return
}

// Copying detaches from the shared storage: append with ... copies
// the elements, not the slice header.
func copyOut(k *sink, s *stream) {
	blk := s.NextBlock()
	k.held = append([]Inst(nil), blk...)
}

// Stream adapters named NextBlock hand blocks through by design.
type limited struct {
	s   *stream
	rem int
}

func (l *limited) NextBlock() []Inst {
	blk := l.s.NextBlock()
	if len(blk) > l.rem {
		blk = blk[:l.rem]
	}
	l.rem -= len(blk)
	return blk
}

// A method that takes arguments is not a BlockStream.
type notAStream struct{ buf []Inst }

func (n *notAStream) NextBlock(max int) []Inst { return n.buf[:max] }

func otherNextBlock(k *sink, n *notAStream) {
	k.held = n.NextBlock(1)
}

// --- tracestore pins: PinnedInsts is the same bug class ---

// pin mirrors the tracestore.Pin shape: a no-arg PinnedInsts method
// returning one slice. Its result aliases an mmap'd store file that
// goes away when the store closes.
type pin struct{ insts []Inst }

func (p *pin) PinnedInsts() []Inst { return p.insts }

func storePinField(k *sink, p *pin) {
	k.held = p.PinnedInsts() // want `stored in a field`
}

func retPin(p *pin) []Inst {
	return p.PinnedInsts() // want `returned to the caller`
}

func aliasPinThroughReslice(k *sink, p *pin) {
	insts := p.PinnedInsts()
	window := insts[2:8]
	k.byIP[window[0].IP] = window // want `stored in a map or slice element`
}

func sendPin(k *sink, p *pin) {
	k.ch <- p.PinnedInsts() // want `sent on a channel`
}

// Consuming the pinned window in place is the intended pattern.
func consumePin(p *pin) (n uint64) {
	for _, in := range p.PinnedInsts() {
		n += in.IP
	}
	return
}

// Copying detaches from the mapped storage.
func copyPinOut(k *sink, p *pin) {
	k.held = append([]Inst(nil), p.PinnedInsts()...)
}

// A pin accessor itself (any function named PinnedInsts) hands the
// slice through by design.
type wrappedPin struct{ p *pin }

func (w *wrappedPin) PinnedInsts() []Inst { return w.p.PinnedInsts() }

// A method that takes arguments is not a pin accessor.
type notAPin struct{ insts []Inst }

func (n *notAPin) PinnedInsts(max int) []Inst { return n.insts[:max] }

func otherPinnedInsts(k *sink, n *notAPin) {
	k.held = n.PinnedInsts(1)
}

// --- suppression ---

func suppressedStore(k *sink, s *stream) {
	//lint:ignore blockalias the sink is drained before the next NextBlock call
	k.held = s.NextBlock()
}

func suppressedPinStore(k *sink, p *pin) {
	//lint:ignore blockalias the slice is handed to a replay that finishes before the store closes
	k.held = p.PinnedInsts()
}
