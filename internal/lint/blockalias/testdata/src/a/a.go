// Package a is the blockalias analyzer's golden file. The stream type
// mirrors the trace.BlockStream shape: matching is structural (any
// no-arg NextBlock method returning a slice), so the golden package
// needs no import of the real trace package.
package a

type Inst struct{ IP uint64 }

type stream struct{ buf []Inst }

func (s *stream) NextBlock() []Inst { return s.buf }

type sink struct {
	held []Inst
	all  [][]Inst
	byIP map[uint64][]Inst
	ch   chan []Inst
}

var global []Inst

// --- retaining positions: all flagged ---

func storeField(k *sink, s *stream) {
	blk := s.NextBlock()
	k.held = blk // want `stored in a field`
}

func storeFieldDirect(k *sink, s *stream) {
	k.held = s.NextBlock() // want `stored in a field`
}

func storeElement(k *sink, s *stream) {
	blk := s.NextBlock()
	k.byIP[blk[0].IP] = blk // want `stored in a map or slice element`
}

func storePackageLevel(s *stream) {
	global = s.NextBlock() // want `stored in a package-level variable`
}

func send(k *sink, s *stream) {
	k.ch <- s.NextBlock() // want `sent on a channel`
}

func appendWhole(k *sink, s *stream) {
	blk := s.NextBlock()
	k.all = append(k.all, blk) // want `appended as a whole block`
}

func ret(s *stream) []Inst {
	return s.NextBlock() // want `returned to the caller`
}

func retSliced(s *stream) []Inst {
	blk := s.NextBlock()
	return blk[:1] // want `returned to the caller`
}

// Reslicing aliases the same storage; the alias is tracked.
func aliasThroughReslice(k *sink, s *stream) {
	blk := s.NextBlock()
	tail := blk[1:]
	k.held = tail // want `stored in a field`
}

func literal(s *stream) [][]Inst {
	blk := s.NextBlock()
	return [][]Inst{blk} // want `stored in a composite literal`
}

// --- legal uses: never flagged ---

// Consuming the block before the next call is the intended pattern.
func consume(s *stream) (n uint64) {
	for blk := s.NextBlock(); len(blk) > 0; blk = s.NextBlock() {
		for i := range blk {
			n += blk[i].IP
		}
	}
	return
}

// Copying detaches from the shared storage: append with ... copies
// the elements, not the slice header.
func copyOut(k *sink, s *stream) {
	blk := s.NextBlock()
	k.held = append([]Inst(nil), blk...)
}

// Stream adapters named NextBlock hand blocks through by design.
type limited struct {
	s   *stream
	rem int
}

func (l *limited) NextBlock() []Inst {
	blk := l.s.NextBlock()
	if len(blk) > l.rem {
		blk = blk[:l.rem]
	}
	l.rem -= len(blk)
	return blk
}

// A method that takes arguments is not a BlockStream.
type notAStream struct{ buf []Inst }

func (n *notAStream) NextBlock(max int) []Inst { return n.buf[:max] }

func otherNextBlock(k *sink, n *notAStream) {
	k.held = n.NextBlock(1)
}

// --- suppression ---

func suppressedStore(k *sink, s *stream) {
	//lint:ignore blockalias the sink is drained before the next NextBlock call
	k.held = s.NextBlock()
}
