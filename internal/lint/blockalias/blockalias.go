// Package blockalias flags code that retains a slice returned by a
// BlockStream's NextBlock method or a tracestore Pin's PinnedInsts
// method past its bounded lifetime — the zero-copy corruption bug
// class from the PR 3/4 block replay work, extended to the persistent
// store's mmap-backed pins.
//
// The trace.BlockStream contract: NextBlock hands out a window into
// shared backing storage (a cached trace's slice array, a generator's
// batch buffer) that is valid only until the next NextBlock call.
// The tracestore.Pin contract is the same bug with a longer fuse:
// PinnedInsts hands out a window into an mmap'd store file that is
// valid only until the pin's store is closed. Storing either slice
// anywhere that outlives the call site — a struct field, a channel, an
// element of a longer-lived slice or map, a package-level variable, a
// return value — aliases storage the stream will overwrite or the
// store will unmap, and the corruption shows up far away, as a
// byte-diff (or a fault) in a later replay.
//
// Matching is structural: any no-argument method named NextBlock or
// PinnedInsts returning a single slice is treated as a block source,
// which covers every trace.BlockStream implementation and
// tracestore.Pin without needing either type in scope. Functions
// themselves named NextBlock or PinnedInsts are exempt from the return
// check: stream adapters and pin accessors legitimately hand blocks
// through (trace.Limit, trace.Concat, the cache's view streams, the
// pin type itself).
//
// The fix is always one of: consume the block before the next call (or
// before the pin can be released), or copy it
// (append([]trace.Inst(nil), blk...)) before retaining.
package blockalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"branchlab/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "blockalias",
	Doc:  "flags retaining a NextBlock or PinnedInsts slice past its lifetime (zero-copy aliasing corruption)",
	Run:  run,
}

// sourceMethods are the no-arg one-slice-result methods whose results
// alias shared storage with a bounded lifetime.
var sourceMethods = map[string]bool{
	"NextBlock":   true, // valid until the next NextBlock call
	"PinnedInsts": true, // valid until the pin's store is closed
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
				return false
			}
			return true
		})
	}
	return nil, nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	// Stream adapters named NextBlock and pin accessors named
	// PinnedInsts delegate blocks by design.
	isAdapter := sourceMethods[fd.Name.Name]

	blockVars := collectBlockVars(pass, fd)
	isBlock := func(e ast.Expr) bool { return isBlockExpr(pass, blockVars, e) }

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isBlock(rhs) || i >= len(n.Lhs) {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.SelectorExpr:
					report(pass, n.Pos(), "stored in a field")
				case *ast.IndexExpr:
					report(pass, n.Pos(), "stored in a map or slice element")
				case *ast.Ident:
					if obj := pass.TypesInfo.Uses[lhs]; obj != nil && isPackageLevel(obj) {
						report(pass, n.Pos(), "stored in a package-level variable")
					}
				case *ast.StarExpr:
					report(pass, n.Pos(), "stored through a pointer")
				}
			}
		case *ast.SendStmt:
			if isBlock(n.Value) {
				report(pass, n.Pos(), "sent on a channel")
			}
		case *ast.CallExpr:
			if isAppend(pass, n) && n.Ellipsis == token.NoPos {
				for _, arg := range n.Args[1:] {
					if isBlock(arg) {
						report(pass, n.Pos(), "appended as a whole block (append(dst, blk...) copies and is safe; append(dst, blk) aliases)")
					}
				}
			}
		case *ast.ReturnStmt:
			if isAdapter {
				return true
			}
			for _, res := range n.Results {
				if isBlock(res) {
					report(pass, n.Pos(), "returned to the caller")
				}
			}
		case *ast.CompositeLit:
			for _, elt := range n.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				if isBlock(elt) {
					report(pass, n.Pos(), "stored in a composite literal")
				}
			}
		}
		return true
	})
}

func report(pass *analysis.Pass, pos token.Pos, how string) {
	pass.Reportf(pos,
		"block returned by NextBlock/PinnedInsts %s: the slice aliases shared trace storage with a bounded lifetime (the next NextBlock call overwrites it; closing a pin's store unmaps it); consume it first or copy it with append([]trace.Inst(nil), blk...)", how)
}

// collectBlockVars finds every variable bound (transitively, through
// plain assignments and reslicings) to a NextBlock result.
func collectBlockVars(pass *analysis.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	vars := make(map[types.Object]bool)
	for {
		grew := false
		add := func(id *ast.Ident) {
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil && !vars[obj] {
				vars[obj] = true
				grew = true
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) && isBlockExpr(pass, vars, rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok {
							add(id)
						}
					}
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if i < len(n.Names) && isBlockExpr(pass, vars, v) {
						add(n.Names[i])
					}
				}
			}
			return true
		})
		if !grew {
			return vars
		}
	}
}

// isBlockExpr reports whether e evaluates to (a reslicing of) a
// NextBlock result or a variable holding one.
func isBlockExpr(pass *analysis.Pass, vars map[types.Object]bool, e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return vars[pass.TypesInfo.Uses[x]]
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.CallExpr:
			return isNextBlockCall(pass, x)
		default:
			return false
		}
	}
}

// isNextBlockCall matches a call of any method named NextBlock or
// PinnedInsts taking no arguments and returning one slice.
func isNextBlockCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !sourceMethods[sel.Sel.Name] {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 0 || sig.Results().Len() != 1 {
		return false
	}
	_, isSlice := sig.Results().At(0).Type().Underlying().(*types.Slice)
	return isSlice
}

func isAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) < 2 {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func isPackageLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}
