package blockalias_test

import (
	"testing"

	"branchlab/internal/lint/analysistest"
	"branchlab/internal/lint/blockalias"
)

func TestBlockAlias(t *testing.T) {
	analysistest.Run(t, "testdata", blockalias.Analyzer, "a")
}
