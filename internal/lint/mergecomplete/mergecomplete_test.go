package mergecomplete_test

import (
	"testing"

	"branchlab/internal/lint/analysistest"
	"branchlab/internal/lint/mergecomplete"
)

func TestMergeComplete(t *testing.T) {
	analysistest.Run(t, "testdata", mergecomplete.Analyzer, "a")
}
