// Package mergecomplete flags sharded-observation collector types
// whose Merge method does not account for every field — the
// silent-wrong-results bug when a collector grows a field: the new
// state accumulates per shard, Merge drops all but one shard's copy,
// and every parallel run is quietly wrong while the sequential run
// (the one tests usually exercise) stays right.
//
// A type is held to the contract when it has both a Merge method
// taking another value of the same type (the mergeable-collector shape
// from PR 3: core.Collector, simpoint.BBVCollector,
// phase.RecurrenceTracker, phase.Detector, depgraph.Analyzer,
// stats.Reservoir) and an observation-style method (Inst, Branch,
// Observe, or Add) that feeds it per-instruction state.
//
// "Accounts for" means the field is referenced — on the receiver or
// the argument — inside Merge or inside any same-package function
// Merge calls, transitively. A field that is deliberately not merged
// (per-process scratch, configuration fixed at construction, replay
// state whose sharding mode never splits it) is declared with a
// suppression on its own line:
//
//	closure map[uint64]struct{} //lint:ignore mergecomplete scratch, rebuilt per analyze call
//
// which doubles as documentation of why the field may be dropped.
package mergecomplete

import (
	"go/ast"
	"go/types"

	"branchlab/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "mergecomplete",
	Doc:  "flags mergeable collectors whose Merge method drops fields",
	Run:  run,
}

// observationMethods are the method names that mark a type as an
// ObserveFrom-style sharded collector.
var observationMethods = map[string]bool{
	"Inst": true, "Branch": true, "Observe": true, "Add": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	decls := funcDecls(pass)

	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		merge := mergeMethod(named)
		if merge == nil || !observes(named) {
			continue
		}
		md := decls[merge]
		if md == nil {
			continue // Merge defined in another file set (impossible in one unit)
		}
		referenced := fieldsReferenced(pass, named, md, decls)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !referenced[f.Name()] {
				pass.Reportf(f.Pos(),
					"field %s of %s is not referenced by Merge (directly or via same-package calls): a sharded run would silently drop its state; fold it in or annotate the field //lint:ignore mergecomplete <why it need not merge>",
					f.Name(), named.Obj().Name())
			}
		}
	}
	return nil, nil
}

// mergeMethod returns T's Merge method if its sole parameter is T or *T.
func mergeMethod(named *types.Named) *types.Func {
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "Merge" {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() != 1 {
			return nil
		}
		if sameNamed(sig.Params().At(0).Type(), named) {
			return m
		}
		return nil
	}
	return nil
}

func observes(named *types.Named) bool {
	for i := 0; i < named.NumMethods(); i++ {
		if observationMethods[named.Method(i).Name()] {
			return true
		}
	}
	return false
}

// funcDecls indexes the unit's function declarations by their object.
func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fd
				}
			}
		}
	}
	return out
}

// fieldsReferenced returns the names of T's fields selected on any
// T-typed value inside merge's body or, transitively, inside any
// same-package function it calls.
func fieldsReferenced(pass *analysis.Pass, named *types.Named,
	merge *ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl) map[string]bool {

	referenced := make(map[string]bool)
	seen := map[*ast.FuncDecl]bool{}
	work := []*ast.FuncDecl{merge}
	for len(work) > 0 {
		fd := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[fd] {
			continue
		}
		seen[fd] = true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				sel := pass.TypesInfo.Selections[n]
				if sel == nil || sel.Kind() != types.FieldVal {
					return true
				}
				if sameNamed(sel.Recv(), named) && len(sel.Index()) > 0 {
					st := named.Underlying().(*types.Struct)
					referenced[st.Field(sel.Index()[0]).Name()] = true
				}
			case *ast.CallExpr:
				var callee types.Object
				switch fun := n.Fun.(type) {
				case *ast.Ident:
					callee = pass.TypesInfo.Uses[fun]
				case *ast.SelectorExpr:
					callee = pass.TypesInfo.Uses[fun.Sel]
				}
				if fn, ok := callee.(*types.Func); ok {
					if fd2 := decls[fn]; fd2 != nil {
						work = append(work, fd2)
					}
				}
			}
			return true
		})
	}
	return referenced
}

// sameNamed reports whether t (possibly behind a pointer) is the named
// type itself.
func sameNamed(t types.Type, named *types.Named) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == named.Obj()
}
