// Package a is the mergecomplete analyzer's golden file: mergeable
// collectors in the shapes the real tree uses, one of which drops a
// field in Merge.
package a

// leaky drops its reservoir rng state on merge: the seeded-violation
// case. The diagnostic lands on the field, so the annotation that
// waives it would document the field itself.
type leaky struct {
	K      int
	Sample []uint64
	N      uint64
	rng    uint64 // want `field rng of leaky is not referenced by Merge`
}

func (r *leaky) next() uint64 {
	r.rng += 0x9e3779b97f4a7c15
	return r.rng
}

func (r *leaky) Add(v uint64) {
	r.N++
	if len(r.Sample) < r.K {
		r.Sample = append(r.Sample, v)
	}
}

func (r *leaky) Merge(o *leaky) {
	for _, v := range o.Sample {
		r.Add(v)
	}
	r.N += o.N - uint64(len(o.Sample))
}

// complete references every field, partly through a same-package
// helper: the transitive closure keeps it clean.
type complete struct {
	a, b uint64
	hist []uint64
}

func (c *complete) Observe(v uint64) {
	c.a += v
	c.hist = append(c.hist, v)
}

func (c *complete) Merge(o *complete) {
	c.a += o.a
	c.fold(o)
}

func (c *complete) fold(o *complete) {
	c.b += o.b
	c.hist = append(c.hist, o.hist...)
}

// noObserver has no observation method, so it is outside the sharded
// collector contract: nothing is flagged.
type noObserver struct {
	x, y int
}

func (n *noObserver) Merge(o *noObserver) { n.x += o.x }

// mismatched's Merge takes a different type: not a mergeable
// collector, nothing is flagged.
type mismatched struct {
	z int
}

func (m *mismatched) Add(v int)         { m.z += v }
func (m *mismatched) Merge(o *complete) { _ = o }

// annotated declares why its config field does not merge.
type annotated struct {
	vals []uint64
	cfg  int //lint:ignore mergecomplete construction-time configuration, identical across shards
}

func (t *annotated) Observe(v uint64) {
	t.vals = append(t.vals, v)
	_ = t.cfg
}

func (t *annotated) Merge(o *annotated) {
	t.vals = append(t.vals, o.vals...)
}
