// Package apkg imports bpkg: the HasCtxVariant facts computed while
// loading bpkg must be visible here, across the package boundary.
package apkg

import (
	"bpkg"
	"context"
)

func drive(ctx context.Context) error {
	_ = ctx
	return bpkg.Process() // want `Process has a context variant ProcessCtx`
}

func driveStore(ctx context.Context, s *bpkg.Store) error {
	_ = ctx
	return s.Flush() // want `Flush has a context variant FlushCtx`
}

// Passing the context to the variant is the fix.
func driveFixed(ctx context.Context, s *bpkg.Store) error {
	if err := bpkg.ProcessCtx(ctx); err != nil {
		return err
	}
	return s.FlushCtx(ctx)
}

// No variant exists for Plain, and no context is in scope below:
// both clean.
func drivePlain(ctx context.Context) error {
	_ = ctx
	return bpkg.Plain()
}

func noCtx() error {
	return bpkg.Process()
}
