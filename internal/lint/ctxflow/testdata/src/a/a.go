// Package a exercises ctxflow's intra-package checks: fresh roots in
// library code, roots minted despite a context parameter, the three
// clean idioms, and the Ctx-variant preference within one package.
package a

import "context"

// --- check 1: fresh roots in library code ---

func freshRoot() {
	_ = context.Background() // want `context.Background\(\) in library code`
}

func freshTODO() {
	_ = context.TODO() // want `context.TODO\(\) in library code`
}

// --- check 2: minting a root despite holding a context ---

func alreadyHasCtx(ctx context.Context) {
	_ = ctx
	_ = context.Background() // want `already receives a context.Context`
}

func litWithCtx() {
	f := func(ctx context.Context) {
		_ = ctx
		_ = context.TODO() // want `already receives a context.Context`
	}
	_ = f
}

// --- clean idiom: legacy bridge (Run has a RunCtx sibling) ---

func Run() error {
	return RunCtx(context.Background())
}

func RunCtx(ctx context.Context) error {
	_ = ctx
	return nil
}

type Pool struct{ ctx context.Context }

func (p *Pool) Record() error {
	return p.RecordCtx(context.Background())
}

func (p *Pool) RecordCtx(ctx context.Context) error {
	_ = ctx
	return nil
}

// --- clean idiom: defaulting accessor (returns a context) ---

func (p *Pool) Context() context.Context {
	if p.ctx == nil {
		return context.Background()
	}
	return p.ctx
}

// --- clean idiom: nil guard (plain = over a context variable) ---

func nilGuard(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	_ = ctx
}

// A fresh declaration is not the guard: := mints a new root.
func notAGuard() {
	ctx := context.Background() // want `context.Background\(\) in library code`
	_ = ctx
}

// --- check 3: preferring the Ctx variant inside the package ---

func caller(ctx context.Context) error {
	_ = ctx
	return Run() // want `Run has a context variant RunCtx`
}

func callerMethod(ctx context.Context, p *Pool) error {
	_ = ctx
	return p.Record() // want `Record has a context variant RecordCtx`
}

// Calling the variant itself is the fix and is clean.
func fixedCaller(ctx context.Context, p *Pool) error {
	if err := RunCtx(ctx); err != nil {
		return err
	}
	return p.RecordCtx(ctx)
}

// Without a context in scope there is nothing to pass: clean.
func noCtxCaller() error {
	return Run()
}
