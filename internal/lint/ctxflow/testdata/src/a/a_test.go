package a

import "context"

// Tests sit at the process edge: fresh roots are fine here.
func helperForTests() context.Context {
	return context.Background()
}

func testishRoot() {
	_ = context.TODO()
}

// But a context parameter still wins, even in a test file.
func testHelperWithCtx(ctx context.Context) {
	_ = ctx
	_ = context.Background() // want `already receives a context.Context`
}
