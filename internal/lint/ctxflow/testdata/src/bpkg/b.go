// Package bpkg declares a function with a Ctx sibling; the
// HasCtxVariant fact it exports must reach importers.
package bpkg

import "context"

func Process() error {
	return ProcessCtx(context.Background())
}

func ProcessCtx(ctx context.Context) error {
	_ = ctx
	return nil
}

type Store struct{}

func (s *Store) Flush() error {
	return s.FlushCtx(context.Background())
}

func (s *Store) FlushCtx(ctx context.Context) error {
	_ = ctx
	return nil
}

// No sibling: calling this from a ctx-holding importer is clean.
func Plain() error { return nil }
