// Package context is a minimal stand-in for the standard library's
// context package: ctxflow matches by import path and symbol name, so
// this fake exercises exactly the production code path.
package context

type Context interface {
	Done() <-chan struct{}
	Err() error
}

type emptyCtx struct{}

func (emptyCtx) Done() <-chan struct{} { return nil }
func (emptyCtx) Err() error            { return nil }

func Background() Context { return emptyCtx{} }
func TODO() Context       { return emptyCtx{} }
