package ctxflow_test

import (
	"testing"

	"branchlab/internal/lint/analysistest"
	"branchlab/internal/lint/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "a")
}

// TestCrossPackageFact checks that bpkg's HasCtxVariant facts survive
// the package boundary: apkg's diagnostics depend entirely on facts
// exported while its dependency was loaded.
func TestCrossPackageFact(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "apkg")
}
