// Package ctxflow enforces the context-threading contract of
// DESIGN.md §9: a context enters the process at exactly one place —
// package main, or a test — and flows explicitly down every call
// chain. Fresh roots minted in library code (context.Background,
// context.TODO) detach the work below them from cancellation and
// deadlines, which is how a -deadline run ends up with recordings that
// outlive it.
//
// Three checks:
//
//  1. A call to context.Background()/context.TODO() outside package
//     main and _test.go files is flagged, unless it is one of the
//     recognized idioms below.
//  2. Inside a function that already receives a context.Context
//     parameter, minting a fresh root is flagged even in main — the
//     caller's context exists precisely to be passed on.
//  3. A call to a function F from a function that holds a
//     context.Context parameter is flagged when F has a sibling
//     FCtx accepting a context — recorded as a cross-package
//     "HasCtxVariant" fact when F's package is analyzed, so the check
//     sees variants through the import graph.
//
// Recognized clean idioms for check 1:
//
//   - the legacy bridge: a function F whose own Ctx sibling exists
//     (program.Run calling RunCtx(context.Background(), ...)) is the
//     designated compatibility shim;
//   - the defaulting accessor: a function whose result type is
//     context.Context (Pool.Context, Config.Context) exists to give
//     callers a never-nil context;
//   - the nil guard: `ctx = context.Background()` assigning over an
//     existing context variable (the documented no-context fast path).
//
// Everything else needs a justified //lint:ignore ctxflow — the
// deliberately context-free refill paths in tracecache carry one.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"branchlab/internal/lint/analysis"
)

// HasCtxVariant is exported for every function or method F that does
// not take a context itself but whose package declares a sibling
// F+"Ctx" (same receiver type) that does.
type HasCtxVariant struct {
	Variant string // the sibling's name, e.g. "RunCtx"
}

func (*HasCtxVariant) AFact() {}

var Analyzer = &analysis.Analyzer{
	Name:      "ctxflow",
	Doc:       "flags fresh context roots in library code and calls that bypass a callee's Ctx variant",
	Run:       run,
	FactTypes: []analysis.Fact{(*HasCtxVariant)(nil)},
}

func run(pass *analysis.Pass) (interface{}, error) {
	exportVariantFacts(pass)
	isMain := pass.Pkg.Name() == "main"
	for _, file := range pass.Files {
		isTest := strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go")
		checkFile(pass, file, isMain, isTest)
	}
	return nil, nil
}

// exportVariantFacts records a HasCtxVariant fact for every function
// that has a context-accepting Ctx sibling. Methods pair within the
// same receiver base type.
func exportVariantFacts(pass *analysis.Pass) {
	type key struct{ recv, name string }
	decls := make(map[key]*types.Func)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[key{recvBaseName(fn), fn.Name()}] = fn
		}
	}
	for k, fn := range decls {
		if strings.HasSuffix(k.name, "Ctx") || takesContext(fn) {
			continue
		}
		sibling, ok := decls[key{k.recv, k.name + "Ctx"}]
		if ok && takesContext(sibling) {
			pass.ExportObjectFact(fn, &HasCtxVariant{Variant: sibling.Name()})
		}
	}
}

func checkFile(pass *analysis.Pass, file *ast.File, isMain, isTest bool) {
	// Walk with an explicit stack so each call site knows its nearest
	// enclosing function (decl or literal).
	var stack []ast.Node
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		encl, hasCtx := enclosingFunc(pass, stack)
		if name, fresh := freshRootCall(pass, call); fresh {
			switch {
			case nilGuardIdiom(pass, stack):
				// The `if ctx == nil { ctx = context.Background() }`
				// defaulting guard, with or without a context param.
			case hasCtx:
				pass.Reportf(call.Pos(), "context.%s() inside a function that already receives a context.Context: pass the parameter through (DESIGN.md §9)", name)
			case isMain || isTest:
				// Roots belong at the process edge.
			case bridgeIdiom(pass, encl) || accessorIdiom(pass, encl):
				// Recognized threading idioms.
			default:
				pass.Reportf(call.Pos(), "context.%s() in library code: thread a context from the caller, add a Ctx variant, or justify with //lint:ignore ctxflow (DESIGN.md §9)", name)
			}
			return true
		}
		if hasCtx {
			if callee := calleeFunc(pass, call); callee != nil && !takesContext(callee) {
				var fact HasCtxVariant
				if pass.ImportObjectFact(callee, &fact) {
					pass.Reportf(call.Pos(), "call to %s drops the context in scope: %s has a context variant %s (DESIGN.md §9)", callee.Name(), callee.Name(), fact.Variant)
				}
			}
		}
		return true
	})
}

// enclosingFunc returns the nearest enclosing function declaration or
// literal on the stack and whether it has a context.Context parameter.
func enclosingFunc(pass *analysis.Pass, stack []ast.Node) (*ast.FuncDecl, bool) {
	for i := len(stack) - 2; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncLit:
			return nil, fieldListHasContext(pass, f.Type.Params)
		case *ast.FuncDecl:
			return f, fieldListHasContext(pass, f.Type.Params)
		}
	}
	return nil, false
}

func fieldListHasContext(pass *analysis.Pass, params *ast.FieldList) bool {
	if params == nil {
		return false
	}
	for _, f := range params.List {
		if isContextType(pass.TypesInfo.Types[f.Type].Type) {
			return true
		}
	}
	return false
}

// freshRootCall reports whether call is context.Background() or
// context.TODO(), returning the function name.
func freshRootCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || !isContextPkg(fn.Pkg().Path()) {
		return "", false
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name, true
	}
	return "", false
}

// bridgeIdiom reports whether the enclosing declaration is the legacy
// compatibility shim: a function whose own Ctx sibling exists, whose
// body is the sanctioned place to mint the default root.
func bridgeIdiom(pass *analysis.Pass, encl *ast.FuncDecl) bool {
	if encl == nil {
		return false
	}
	fn, ok := pass.TypesInfo.Defs[encl.Name].(*types.Func)
	if !ok {
		return false
	}
	var fact HasCtxVariant
	return pass.ImportObjectFact(fn, &fact)
}

// accessorIdiom reports whether the enclosing declaration returns a
// context.Context — a defaulting accessor whose whole purpose is to
// hand back a never-nil context.
func accessorIdiom(pass *analysis.Pass, encl *ast.FuncDecl) bool {
	if encl == nil || encl.Type.Results == nil {
		return false
	}
	for _, r := range encl.Type.Results.List {
		if isContextType(pass.TypesInfo.Types[r.Type].Type) {
			return true
		}
	}
	return false
}

// nilGuardIdiom reports whether the fresh root is the right-hand side
// of a plain assignment over an existing context variable — the
// `if ctx == nil { ctx = context.Background() }` defaulting guard.
func nilGuardIdiom(pass *analysis.Pass, stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch s := stack[i].(type) {
		case *ast.AssignStmt:
			if s.Tok.String() != "=" || len(s.Lhs) != 1 {
				return false
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok {
				return false
			}
			obj := pass.TypesInfo.Uses[id]
			return obj != nil && isContextType(obj.Type())
		case ast.Stmt, *ast.FuncLit, *ast.FuncDecl:
			// Any other statement (or a function boundary) between the
			// call and an assignment means this is not the guard shape.
			_ = s
			return false
		}
	}
	return false
}

// calleeFunc resolves the static callee of a call, if any.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func recvBaseName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isContextType matches context.Context by name and package so the
// golden testdata's fake context package exercises the production
// path.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Context" && isContextPkg(named.Obj().Pkg().Path())
}

func isContextPkg(path string) bool {
	return path == "context" || strings.HasSuffix(path, "/context")
}
