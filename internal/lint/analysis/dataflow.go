// A lightweight intra-function dataflow helper: reaching-definitions
// taint over ast/types, no SSA, stdlib-only like the rest of the
// framework.
//
// Taint answers one question for the analyzers: "may this expression's
// value derive from one of these seeds?" — where a seed is a set of
// objects (errcontract seeds a function's parameters and receiver) or
// an expression predicate (storegate seeds file-read call results).
// Analyze iterates the function's assignment edges to a fixed point,
// so definitions reaching through loops converge.
//
// Soundness caveats, deliberate for an over-approximating linter
// (DESIGN.md §8 documents these next to each analyzer's contract):
//
//   - Flow-insensitive per object: one tainting assignment anywhere in
//     the body taints the object everywhere, including before the
//     assignment. Over-approximates; never misses a real flow within
//     the function.
//   - Calls propagate taint from any argument or receiver to the
//     result (len(p) is tainted when p is). Functions that launder
//     their inputs are over-approximated; functions that smuggle state
//     through globals or channels are missed.
//   - Writes through selectors, indexes, and dereferences taint the
//     root object (m.insts = raw taints m), an aliasing
//     over-approximation. Aliases created before the function was
//     entered are invisible.
//   - Channel operations and goroutine interleavings are not modeled.
//   - Function literals share the enclosing scope's taint map, in both
//     directions.
package analysis

import (
	"go/ast"
	"go/types"
)

// Taint is one function body's taint state. Zero value is not usable;
// call NewTaint.
type Taint struct {
	info    *types.Info
	tainted map[types.Object]bool
	source  func(ast.Expr) bool
	exempt  func(*ast.CallExpr) bool
}

// NewTaint returns an engine reading type information from info.
func NewTaint(info *types.Info) *Taint {
	return &Taint{info: info, tainted: make(map[types.Object]bool)}
}

// Seed marks objects as taint roots (parameters, receivers).
func (t *Taint) Seed(objs ...types.Object) {
	for _, o := range objs {
		if o != nil {
			t.tainted[o] = true
		}
	}
}

// SetSource installs an expression-level taint root predicate: any
// expression source reports true for is tainted (e.g. an os.ReadFile
// call). Evaluated on every subexpression.
func (t *Taint) SetSource(f func(ast.Expr) bool) { t.source = f }

// SetExempt installs a call predicate that stops propagation: an
// exempt call's result is clean regardless of its arguments (e.g. a
// verification gate returning blessed bytes).
func (t *Taint) SetExempt(f func(*ast.CallExpr) bool) { t.exempt = f }

// Analyze iterates body's assignment edges until the tainted set stops
// growing.
func (t *Taint) Analyze(body ast.Node) {
	if body == nil {
		return
	}
	for t.scan(body) {
	}
}

// TaintedObj reports whether obj is in the tainted set.
func (t *Taint) TaintedObj(obj types.Object) bool { return obj != nil && t.tainted[obj] }

// Tainted reports whether e may evaluate to a tainted value: it
// mentions a tainted object or a source expression outside any exempt
// call.
func (t *Taint) Tainted(e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if ex, isExpr := n.(ast.Expr); isExpr && t.source != nil && t.source(ex) {
			found = true
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if t.exempt != nil && t.exempt(n) {
				return false // blessed result: the whole call subtree is clean
			}
		case *ast.Ident:
			if t.tainted[t.obj(n)] {
				found = true
				return false
			}
		case *ast.FuncLit:
			return false // a closure value is not data
		}
		return true
	})
	return found
}

func (t *Taint) obj(id *ast.Ident) types.Object {
	if o := t.info.Uses[id]; o != nil {
		return o
	}
	return t.info.Defs[id]
}

// scan performs one propagation pass, reporting whether anything new
// was tainted.
func (t *Taint) scan(body ast.Node) bool {
	changed := false
	mark := func(e ast.Expr) {
		if obj := t.rootObj(e); obj != nil && !t.tainted[obj] {
			t.tainted[obj] = true
			changed = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
				// x, y := f(...): one tainted producer taints every
				// destination.
				if t.Tainted(n.Rhs[0]) {
					for _, l := range n.Lhs {
						mark(l)
					}
				}
				return true
			}
			for i, r := range n.Rhs {
				if i < len(n.Lhs) && t.Tainted(r) {
					mark(n.Lhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 1 && len(n.Names) > 1 {
				if t.Tainted(n.Values[0]) {
					for _, id := range n.Names {
						mark(id)
					}
				}
				return true
			}
			for i, v := range n.Values {
				if i < len(n.Names) && t.Tainted(v) {
					mark(n.Names[i])
				}
			}
		case *ast.RangeStmt:
			if t.Tainted(n.X) {
				mark(n.Key)
				mark(n.Value)
			}
		case *ast.CallExpr:
			// copy(dst, src) writes through dst.
			if id, isIdent := n.Fun.(*ast.Ident); isIdent && id.Name == "copy" && len(n.Args) == 2 {
				if _, isBuiltin := t.obj(id).(*types.Builtin); isBuiltin && t.Tainted(n.Args[1]) {
					mark(n.Args[0])
				}
			}
		}
		return true
	})
	return changed
}

// rootObj resolves an assignment destination to the object it writes
// through: x, x.f, x[i], *x, and parenthesized forms all root at x.
func (t *Taint) rootObj(e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return t.obj(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
