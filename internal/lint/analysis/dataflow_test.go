package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"testing"
)

// taintHarness type-checks src, finds the function named fn, seeds the
// engine with its parameters, runs Analyze, and returns everything a
// test needs to interrogate the result.
type taintHarness struct {
	taint *Taint
	info  *types.Info
	decl  *ast.FuncDecl
	pkg   *types.Package
}

func newTaintHarness(t *testing.T, src, fn string, opts ...func(*Taint)) *taintHarness {
	t.Helper()
	_, files, pkg, info := checkPkg(t, src)
	var decl *ast.FuncDecl
	for _, d := range files[0].Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == fn {
			decl = fd
		}
	}
	if decl == nil {
		t.Fatalf("function %s not found", fn)
	}
	taint := NewTaint(info)
	for _, o := range opts {
		o(taint)
	}
	sig := info.Defs[decl.Name].Type().(*types.Signature)
	if r := sig.Recv(); r != nil {
		taint.Seed(r)
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		taint.Seed(params.At(i))
	}
	taint.Analyze(decl.Body)
	return &taintHarness{taint: taint, info: info, decl: decl, pkg: pkg}
}

// local resolves a name to the object defined (or used) somewhere in
// the analyzed function body.
func (h *taintHarness) local(t *testing.T, name string) types.Object {
	t.Helper()
	var obj types.Object
	ast.Inspect(h.decl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if o := h.info.Defs[id]; o != nil {
				obj = o
			} else if o := h.info.Uses[id]; obj == nil && o != nil {
				obj = o
			}
		}
		return true
	})
	if obj == nil {
		t.Fatalf("object %s not found in %s", name, h.decl.Name.Name)
	}
	return obj
}

func (h *taintHarness) assertTainted(t *testing.T, names ...string) {
	t.Helper()
	for _, n := range names {
		if !h.taint.TaintedObj(h.local(t, n)) {
			t.Errorf("%s should be tainted", n)
		}
	}
}

func (h *taintHarness) assertClean(t *testing.T, names ...string) {
	t.Helper()
	for _, n := range names {
		if h.taint.TaintedObj(h.local(t, n)) {
			t.Errorf("%s should be clean", n)
		}
	}
}

func TestTaintAssignmentChains(t *testing.T) {
	h := newTaintHarness(t, `package fake

func f(p int) {
	a := p
	b := a + 1
	c := 42
	d := c
	var e, g = b, c
	_ = d
	_, _ = e, g
}
`, "f")
	h.assertTainted(t, "a", "b", "e")
	h.assertClean(t, "c", "d", "g")
}

// A definition later in the body reaches a use earlier in the loop —
// the fixpoint must converge through the back edge.
func TestTaintLoopFixpoint(t *testing.T) {
	h := newTaintHarness(t, `package fake

func f(p int) {
	x := 0
	y := 0
	for i := 0; i < 10; i++ {
		y = x // x only becomes tainted on a later pass
		x = p
	}
	_ = y
}
`, "f")
	h.assertTainted(t, "x", "y")
}

func TestTaintMultiValueAndRange(t *testing.T) {
	h := newTaintHarness(t, `package fake

func pair(n int) (int, int) { return n, n }

func f(p []int, n int) {
	a, b := pair(n)
	c, d := pair(7)
	for k, v := range p {
		_, _ = k, v
	}
	_, _, _, _ = a, b, c, d
}
`, "f")
	h.assertTainted(t, "a", "b", "k", "v")
	h.assertClean(t, "c", "d")
}

// Writes through selectors, indexes, and dereferences taint the root
// object — the documented aliasing over-approximation.
func TestTaintRootObjectWrites(t *testing.T) {
	h := newTaintHarness(t, `package fake

type box struct{ v int }

func f(p int) {
	var b box
	b.v = p
	alias := b
	s := make([]int, 4)
	s[0] = p
	var q box
	ptr := &q
	(*ptr).v = p
	_ = alias
}
`, "f")
	h.assertTainted(t, "b", "alias", "s", "ptr")
	h.assertClean(t, "q") // aliasing through ptr is invisible by design
}

func TestTaintCopyBuiltin(t *testing.T) {
	h := newTaintHarness(t, `package fake

func f(p []byte) {
	dst := make([]byte, len(p))
	copy(dst, p)
	clean := make([]byte, 4)
	other := make([]byte, 4)
	copy(clean, other)
	_, _ = dst, clean
}
`, "f")
	h.assertTainted(t, "dst")
	h.assertClean(t, "clean", "other")
}

func TestTaintSourcePredicate(t *testing.T) {
	src := `package fake

func read(name string) []byte { return nil }

func f() {
	raw := read("trace.bin")
	n := len(raw)
	fixed := []byte("header")
	_, _ = n, fixed
}
`
	h := newTaintHarness(t, src, "f", func(tt *Taint) {
		tt.SetSource(func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "read"
		})
	})
	h.assertTainted(t, "raw", "n")
	h.assertClean(t, "fixed")
}

// An exempt call launders taint: its result is clean even when an
// argument (or a source call inside an argument) is tainted.
func TestTaintExemptCall(t *testing.T) {
	src := `package fake

func read(name string) []byte { return nil }
func verify(b []byte) []byte  { return b }

func f() {
	raw := read("trace.bin")
	blessed := verify(raw)
	nested := verify(read("other.bin"))
	still := raw
	_, _, _ = blessed, nested, still
}
`
	h := newTaintHarness(t, src, "f", func(tt *Taint) {
		tt.SetSource(func(e ast.Expr) bool {
			call, ok := e.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "read"
		})
		tt.SetExempt(func(call *ast.CallExpr) bool {
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "verify"
		})
	})
	h.assertTainted(t, "raw", "still")
	h.assertClean(t, "blessed", "nested")
}

// Tainted must see through compound expressions but stop at function
// literals: a closure value is not data.
func TestTaintedExpressionQueries(t *testing.T) {
	h := newTaintHarness(t, `package fake

func f(p int) {
	clean := 1
	g := func() int { return p }
	_, _ = clean, g
}
`, "f")
	// Find the expressions to query: the RHS of each assignment.
	var rhs []ast.Expr
	ast.Inspect(h.decl, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok && len(as.Rhs) == len(as.Lhs) {
			rhs = append(rhs, as.Rhs...)
		}
		return true
	})
	if len(rhs) < 2 {
		t.Fatalf("expected at least 2 assignment RHS, got %d", len(rhs))
	}
	if h.taint.Tainted(rhs[0]) {
		t.Error("literal 1 reported tainted")
	}
	if h.taint.Tainted(rhs[1]) {
		t.Error("func literal mentioning p reported tainted: a closure value is not data")
	}
	if h.taint.TaintedObj(h.local(t, "g")) {
		t.Error("closure variable g should be clean")
	}
}

func TestTaintNilSafety(t *testing.T) {
	taint := NewTaint(NewTypesInfo())
	taint.Analyze(nil)
	if taint.Tainted(nil) {
		t.Error("nil expression reported tainted")
	}
	if taint.TaintedObj(nil) {
		t.Error("nil object reported tainted")
	}
	taint.Seed(nil) // must not panic or store nil
	if len(taintedSet(taint)) != 0 {
		t.Error("Seed(nil) stored an entry")
	}
}

func taintedSet(t *Taint) []string {
	var out []string
	for o := range t.tainted {
		out = append(out, o.Name())
	}
	sort.Strings(out)
	return out
}

// Guard against accidental name-based matching: two distinct objects
// with the same name in sibling scopes must be tracked separately.
func TestTaintScopedObjects(t *testing.T) {
	h := newTaintHarness(t, `package fake

func f(p int) (a, b int) {
	{
		x := p
		a = x
	}
	{
		x := 3
		b = x
	}
	return
}
`, "f")
	h.assertTainted(t, "a")
	h.assertClean(t, "b")
	// Sanity: the two x objects resolved to distinct entries.
	taintedX := 0
	for _, name := range taintedSet(h.taint) {
		if name == "x" {
			taintedX++
		}
	}
	if taintedX != 1 {
		t.Errorf("expected exactly one tainted x, got %d", taintedX)
	}
}
