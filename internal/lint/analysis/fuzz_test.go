package analysis

import (
	"encoding/json"
	"errors"
	"testing"
)

// FuzzVetConfig drives parseVetConfig with arbitrary bytes: every
// rejection must be a typed ErrBadConfig, and no input may panic the
// unitchecker before it even reaches the type checker. cmd/go
// materializes vet.cfg itself in normal operation, but the tool also
// accepts a path on its command line — the parser's contract is
// "hostile input returns an error".
func FuzzVetConfig(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"ImportPath":"branchlab/internal/trace"}`))
	f.Add([]byte(`{"ImportPath":"p","Compiler":"gc","GoFiles":["a.go"]}`))
	f.Add([]byte(`{"ImportPath":"p","Compiler":"gc","GoFiles":[""]}`))
	f.Add([]byte(`{"ImportPath":"p","Compiler":"gc","ImportMap":{"":"x"}}`))
	f.Add([]byte(`{"ImportPath":"p","Compiler":"gc","PackageFile":{"q":""}}`))
	f.Add([]byte(`{"ImportPath":"p","Compiler":"gc","PackageVetx":{"":"/tmp/x"}}`))
	f.Add([]byte(`{"ImportPath":"../../../etc","Compiler":"gc","VetxOnly":true}`))
	f.Add([]byte(`{"ImportPath":"p","Compiler":"gc","GoVersion":"go9999.1"}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"ImportPath":4}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := parseVetConfig(data)
		if err != nil {
			if cfg != nil {
				t.Fatalf("parseVetConfig returned both a config and error %v", err)
			}
			if !errors.Is(err, ErrBadConfig) {
				t.Fatalf("rejection is not typed: %v", err)
			}
			return
		}
		// Accepted configs satisfy the invariants the unitchecker
		// relies on without re-checking.
		if cfg.ImportPath == "" || cfg.Compiler == "" {
			t.Fatalf("accepted config missing required fields: %+v", cfg)
		}
		for _, name := range cfg.GoFiles {
			if name == "" {
				t.Fatalf("accepted config with empty GoFiles entry")
			}
		}
		for src, canon := range cfg.ImportMap {
			if src == "" || canon == "" {
				t.Fatalf("accepted config with empty ImportMap entry %q -> %q", src, canon)
			}
		}
		for path, file := range cfg.PackageFile {
			if path == "" || file == "" {
				t.Fatalf("accepted config with empty PackageFile entry %q -> %q", path, file)
			}
		}
		for path, file := range cfg.PackageVetx {
			if path == "" || file == "" {
				t.Fatalf("accepted config with empty PackageVetx entry %q -> %q", path, file)
			}
		}
		// Any accepted input was valid JSON to begin with.
		if !json.Valid(data) {
			t.Fatalf("accepted non-JSON input %q", data)
		}
	})
}
