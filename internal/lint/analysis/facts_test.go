package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

type testFact struct {
	Payload string
}

func (*testFact) AFact() {}

type otherFact struct {
	N int
}

func (*otherFact) AFact() {}

func checkPkg(t *testing.T, src string) (*token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := NewTypesInfo()
	pkg, err := (&types.Config{}).Check("branchlab/internal/fake", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}, pkg, info
}

const factSrc = `package fake

type Widget struct{}

func (w *Widget) Spin() {}

func Exported() {}

func unexported() {}
`

func lookupFunc(t *testing.T, pkg *types.Package, recv, name string) types.Object {
	t.Helper()
	obj := resolveObject(pkg, recv, name)
	if obj == nil {
		t.Fatalf("lookup (%q, %q) in %s failed", recv, name, pkg.Path())
	}
	return obj
}

// TestFactRoundTrip exercises the full store lifecycle: export, encode
// to vetx bytes, decode into a fresh store against the same package,
// import — with per-analyzer namespacing intact.
func TestFactRoundTrip(t *testing.T) {
	_, _, pkg, _ := checkPkg(t, factSrc)

	store := NewFactStore()
	store.export("alpha", lookupFunc(t, pkg, "", "Exported"), &testFact{Payload: "on Exported"})
	store.export("alpha", lookupFunc(t, pkg, "Widget", "Spin"), &testFact{Payload: "on Spin"})
	store.export("alpha", lookupFunc(t, pkg, "", "unexported"), &otherFact{N: 7})
	store.export("beta", lookupFunc(t, pkg, "", "Exported"), &testFact{Payload: "beta namespace"})

	data, err := store.EncodePackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("EncodePackage returned no bytes for a store with facts")
	}

	analyzers := []*Analyzer{
		{Name: "alpha", FactTypes: []Fact{(*testFact)(nil), (*otherFact)(nil)}},
		{Name: "beta", FactTypes: []Fact{(*testFact)(nil)}},
	}
	fresh := NewFactStore()
	if err := fresh.DecodePackage(pkg, data, analyzers); err != nil {
		t.Fatal(err)
	}

	var got testFact
	if !fresh.importFact("alpha", lookupFunc(t, pkg, "", "Exported"), &got) || got.Payload != "on Exported" {
		t.Errorf("alpha/Exported fact = %+v, want Payload %q", got, "on Exported")
	}
	if !fresh.importFact("alpha", lookupFunc(t, pkg, "Widget", "Spin"), &got) || got.Payload != "on Spin" {
		t.Errorf("alpha/Widget.Spin fact = %+v, want Payload %q", got, "on Spin")
	}
	if !fresh.importFact("beta", lookupFunc(t, pkg, "", "Exported"), &got) || got.Payload != "beta namespace" {
		t.Errorf("beta/Exported fact = %+v, want Payload %q", got, "beta namespace")
	}
	var other otherFact
	if !fresh.importFact("alpha", lookupFunc(t, pkg, "", "unexported"), &other) || other.N != 7 {
		t.Errorf("alpha/unexported otherFact = %+v, want N=7", other)
	}

	// Namespacing: beta never exported otherFact, alpha's Spin fact is
	// invisible to beta.
	if fresh.importFact("beta", lookupFunc(t, pkg, "", "unexported"), &other) {
		t.Error("otherFact leaked into the beta namespace")
	}
	if fresh.importFact("beta", lookupFunc(t, pkg, "Widget", "Spin"), &got) {
		t.Error("alpha's Spin fact leaked into the beta namespace")
	}
}

// TestEncodeEmptyStore pins the compatibility contract: a package with
// no facts encodes to zero bytes (the file cmd/go still requires), and
// zero bytes decode as no facts.
func TestEncodeEmptyStore(t *testing.T) {
	_, _, pkg, _ := checkPkg(t, factSrc)
	store := NewFactStore()
	data, err := store.EncodePackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Fatalf("empty store encoded to %d bytes, want 0", len(data))
	}
	if err := NewFactStore().DecodePackage(pkg, nil, nil); err != nil {
		t.Fatalf("decoding empty facts: %v", err)
	}
}

// TestDecodeSkipsUnknown pins forward compatibility: fact records
// naming analyzers, types, or objects this binary does not know are
// skipped, not errors; malformed JSON is an error.
func TestDecodeSkipsUnknown(t *testing.T) {
	_, _, pkg, _ := checkPkg(t, factSrc)
	analyzers := []*Analyzer{{Name: "alpha", FactTypes: []Fact{(*testFact)(nil)}}}

	for _, tc := range []struct {
		name string
		data string
	}{
		{"unknown analyzer", `[{"analyzer":"gone","recv":"","name":"Exported","type":"testFact","data":{"Payload":"x"}}]`},
		{"unknown fact type", `[{"analyzer":"alpha","recv":"","name":"Exported","type":"vanishedFact","data":{"Payload":"x"}}]`},
		{"unknown object", `[{"analyzer":"alpha","recv":"","name":"NoSuchFunc","type":"testFact","data":{"Payload":"x"}}]`},
		{"unknown method recv", `[{"analyzer":"alpha","recv":"NoSuchType","name":"Spin","type":"testFact","data":{"Payload":"x"}}]`},
	} {
		store := NewFactStore()
		if err := store.DecodePackage(pkg, []byte(tc.data), analyzers); err != nil {
			t.Errorf("%s: decode errored (%v), want skip", tc.name, err)
		}
		var got testFact
		if store.importFact("alpha", lookupFunc(t, pkg, "", "Exported"), &got) {
			t.Errorf("%s: skipped record still imported a fact", tc.name)
		}
	}

	if err := NewFactStore().DecodePackage(pkg, []byte(`{truncated`), analyzers); err == nil {
		t.Error("malformed facts JSON decoded without error")
	}
}

// TestEncodeFiltersForeignObjects pins that EncodePackage serializes
// only facts on the package's own objects: a dependency's facts held
// in the same store must not be re-exported downstream.
func TestEncodeFiltersForeignObjects(t *testing.T) {
	_, _, pkg, _ := checkPkg(t, factSrc)
	_, _, dep, _ := checkPkg(t, `package fake2

func DepFunc() {}
`)
	store := NewFactStore()
	store.export("alpha", lookupFunc(t, pkg, "", "Exported"), &testFact{Payload: "ours"})
	store.export("alpha", lookupFunc(t, dep, "", "DepFunc"), &testFact{Payload: "theirs"})

	data, err := store.EncodePackage(pkg)
	if err != nil {
		t.Fatal(err)
	}
	fresh := NewFactStore()
	analyzers := []*Analyzer{{Name: "alpha", FactTypes: []Fact{(*testFact)(nil)}}}
	if err := fresh.DecodePackage(pkg, data, analyzers); err != nil {
		t.Fatal(err)
	}
	var got testFact
	if !fresh.importFact("alpha", lookupFunc(t, pkg, "", "Exported"), &got) {
		t.Error("own-package fact lost in round trip")
	}
	if fresh.importFact("alpha", lookupFunc(t, dep, "", "DepFunc"), &got) {
		t.Error("dependency's fact serialized into this package's vetx")
	}
}
