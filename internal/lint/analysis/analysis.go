// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface that branchlab's custom
// vet analyzers (cmd/branchlabvet) are written against.
//
// The real x/tools module is deliberately not a dependency: branchlab
// builds offline from a bare toolchain, and the four analyzers need
// nothing beyond the standard library's go/ast and go/types. The types
// here mirror the upstream API closely enough that the analyzers would
// compile against x/tools with only an import-path change, should the
// module ever grow that dependency.
//
// Two drivers run analyzers built on this package: Vet (unitchecker.go)
// speaks cmd/go's -vettool protocol so the suite runs as
// `go vet -vettool=$(scripts/lint.sh --print-tool) ./...`, and the
// analysistest sibling package replays golden-file packages in tests.
//
// # Suppression
//
// A diagnostic is suppressed by a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the flagged line or alone on the line directly
// above it. The reason is mandatory; a bare //lint:ignore without one
// has no effect. DESIGN.md ("Statically enforced invariants") lists
// the convention next to each contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name (used in diagnostics and
// //lint:ignore directives), documentation, and the function that runs
// the check over a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (interface{}, error)
}

// Pass is the interface between one Analyzer and one package being
// analyzed: the syntax, the type information, and the Report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report emits one diagnostic. Drivers install a sink that applies
	// //lint:ignore suppression before recording.
	Report func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a Diagnostic resolved to a concrete file position and
// stamped with the analyzer that produced it; drivers collect these.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Posn, f.Message, f.Analyzer)
}

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int
	analyzers map[string]bool
}

// parseIgnores collects the //lint:ignore directives of the files.
// Only well-formed directives (at least one analyzer name and a
// non-empty reason) take effect.
func parseIgnores(fset *token.FileSet, files []*ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no reason given: directive has no effect
				}
				names := make(map[string]bool)
				for _, n := range strings.Split(fields[0], ",") {
					if n != "" {
						names[n] = true
					}
				}
				posn := fset.Position(c.Pos())
				out = append(out, ignoreDirective{file: posn.Filename, line: posn.Line, analyzers: names})
			}
		}
	}
	return out
}

// suppressed reports whether a finding by the named analyzer at posn is
// covered by a directive: same line, or the directive sits alone on the
// line directly above.
func suppressed(dirs []ignoreDirective, name string, posn token.Position) bool {
	for _, d := range dirs {
		if d.file != posn.Filename || !d.analyzers[name] {
			continue
		}
		if d.line == posn.Line || d.line == posn.Line-1 {
			return true
		}
	}
	return false
}

// RunAnalyzers applies each analyzer to the package and returns the
// surviving findings sorted by position. It is the single entry point
// both drivers share, so suppression semantics cannot diverge between
// `go vet` runs and golden-file tests.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, analyzers []*Analyzer) ([]Finding, error) {

	dirs := parseIgnores(fset, files)
	var findings []Finding
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		name := a.Name
		emitted := make(map[Finding]bool)
		pass.Report = func(d Diagnostic) {
			posn := fset.Position(d.Pos)
			if suppressed(dirs, name, posn) {
				return
			}
			f := Finding{Analyzer: name, Posn: posn, Message: d.Message}
			if emitted[f] {
				return // e.g. nested map ranges can visit a statement twice
			}
			emitted[f] = true
			findings = append(findings, f)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Posn, findings[j].Posn
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
	return findings, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers
// consult allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
