// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface that branchlab's custom
// vet analyzers (cmd/branchlabvet) are written against.
//
// The real x/tools module is deliberately not a dependency: branchlab
// builds offline from a bare toolchain, and the four analyzers need
// nothing beyond the standard library's go/ast and go/types. The types
// here mirror the upstream API closely enough that the analyzers would
// compile against x/tools with only an import-path change, should the
// module ever grow that dependency.
//
// Two drivers run analyzers built on this package: Vet (unitchecker.go)
// speaks cmd/go's -vettool protocol so the suite runs as
// `go vet -vettool=$(scripts/lint.sh --print-tool) ./...`, and the
// analysistest sibling package replays golden-file packages in tests.
//
// # Suppression
//
// A diagnostic is suppressed by a comment of the form
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed either on the flagged line or alone on the line directly
// above it. The reason is mandatory; a bare //lint:ignore without one
// has no effect. DESIGN.md ("Statically enforced invariants") lists
// the convention next to each contract.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check: a name (used in diagnostics and
// //lint:ignore directives), documentation, the function that runs the
// check over a single package, and the fact types it exchanges across
// package boundaries (facts.go).
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass) (interface{}, error)
	FactTypes []Fact
}

// Pass is the interface between one Analyzer and one package being
// analyzed: the syntax, the type information, and the Report sink.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Report emits one diagnostic. Drivers install a sink that applies
	// //lint:ignore suppression before recording.
	Report func(Diagnostic)

	facts      *FactStore
	suppressed func(token.Pos) bool
}

// ExportObjectFact attaches fact to obj, visible to later passes over
// packages that import this one (and to this pass via
// ImportObjectFact).
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if p.facts != nil && obj != nil {
		p.facts.export(p.Analyzer.Name, obj, fact)
	}
}

// ImportObjectFact copies the fact of fact's type attached to obj into
// fact, reporting whether one exists. Facts are namespaced per
// analyzer.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts != nil && obj != nil && p.facts.importFact(p.Analyzer.Name, obj, fact)
}

// SuppressedAt reports whether a //lint:ignore directive naming this
// analyzer covers pos. Analyzers whose findings feed facts consult it
// so a justified suppression also stops interprocedural propagation —
// suppressing a deliberate panic site keeps every caller clean, rather
// than demanding a suppression per caller. A true result marks the
// directive used for the -checkignores audit.
func (p *Pass) SuppressedAt(pos token.Pos) bool {
	return p.suppressed != nil && p.suppressed(pos)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf emits a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a Diagnostic resolved to a concrete file position and
// stamped with the analyzer that produced it; drivers collect these.
type Finding struct {
	Analyzer string
	Posn     token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Posn, f.Message, f.Analyzer)
}

// ignoreDirective is one parsed //lint:ignore comment. hit records
// whether any enabled analyzer's diagnostic (or SuppressedAt query)
// was actually covered by it — the -checkignores staleness signal.
type ignoreDirective struct {
	file      string
	line      int
	column    int
	names     string // the analyzer list as written
	analyzers map[string]bool
	hit       bool
}

// parseIgnores collects the //lint:ignore directives of the files.
// Only well-formed directives (at least one analyzer name and a
// non-empty reason) take effect.
func parseIgnores(fset *token.FileSet, files []*ast.File) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) < 2 {
					continue // no reason given: directive has no effect
				}
				names := make(map[string]bool)
				for _, n := range strings.Split(fields[0], ",") {
					if n != "" {
						names[n] = true
					}
				}
				posn := fset.Position(c.Pos())
				out = append(out, &ignoreDirective{
					file: posn.Filename, line: posn.Line, column: posn.Column,
					names: fields[0], analyzers: names,
				})
			}
		}
	}
	return out
}

// suppressed reports whether a finding by the named analyzer at posn is
// covered by a directive: same line, or the directive sits alone on the
// line directly above. A covering directive is marked hit.
func suppressed(dirs []*ignoreDirective, name string, posn token.Position) bool {
	covered := false
	for _, d := range dirs {
		if d.file != posn.Filename || !d.analyzers[name] {
			continue
		}
		if d.line == posn.Line || d.line == posn.Line-1 {
			d.hit = true
			covered = true
		}
	}
	return covered
}

// RunAnalyzers applies each analyzer to the package and returns the
// surviving findings sorted by position. It is the single entry point
// both drivers share, so suppression semantics cannot diverge between
// `go vet` runs and golden-file tests. Facts are confined to a fresh
// store; use RunAnalyzersFacts to thread cross-package facts.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := runAnalyzers(fset, files, pkg, info, NewFactStore(), analyzers, false)
	return findings, err
}

// RunAnalyzersFacts is RunAnalyzers against a caller-owned fact store:
// facts decoded from dependencies are visible to the analyzers, and
// facts they export land in the store for the driver to serialize.
func RunAnalyzersFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, store *FactStore, analyzers []*Analyzer) ([]Finding, error) {
	findings, _, err := runAnalyzers(fset, files, pkg, info, store, analyzers, false)
	return findings, err
}

// ComputeFacts runs the analyzers for their fact side effects only —
// the dependencies-of-the-checked-package path: no diagnostics are
// collected.
func ComputeFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, store *FactStore, analyzers []*Analyzer) error {
	_, _, err := runAnalyzers(fset, files, pkg, info, store, analyzers, true)
	return err
}

// CheckIgnores runs the analyzers and returns one finding per stale
// //lint:ignore directive: a directive none of whose named analyzers
// report (or consult SuppressedAt for) a finding at the covered site,
// or that names an analyzer that does not exist. Regular diagnostics
// are discarded — the audit's subject is the suppressions themselves.
func CheckIgnores(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, store *FactStore, analyzers []*Analyzer) ([]Finding, error) {

	_, dirs, err := runAnalyzers(fset, files, pkg, info, store, analyzers, false)
	if err != nil {
		return nil, err
	}
	enabled := make(map[string]bool)
	for _, a := range analyzers {
		enabled[a.Name] = true
	}
	var stale []Finding
	for _, d := range dirs {
		var unknown []string
		for n := range d.analyzers {
			if !enabled[n] {
				unknown = append(unknown, n)
			}
		}
		sort.Strings(unknown)
		posn := token.Position{Filename: d.file, Line: d.line, Column: d.column}
		switch {
		case len(unknown) > 0:
			stale = append(stale, Finding{
				Analyzer: "checkignores", Posn: posn,
				Message: fmt.Sprintf("//lint:ignore names unknown analyzer %s: fix the name or delete the directive", strings.Join(unknown, ", ")),
			})
		case !d.hit:
			stale = append(stale, Finding{
				Analyzer: "checkignores", Posn: posn,
				Message: fmt.Sprintf("stale //lint:ignore: %s no longer reports a finding at this site; delete the directive", d.names),
			})
		}
	}
	sortFindings(stale)
	return stale, nil
}

func runAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package,
	info *types.Info, store *FactStore, analyzers []*Analyzer, factsOnly bool) ([]Finding, []*ignoreDirective, error) {

	dirs := parseIgnores(fset, files)
	var findings []Finding
	for _, a := range analyzers {
		name := a.Name
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			facts:     store,
			suppressed: func(pos token.Pos) bool {
				return suppressed(dirs, name, fset.Position(pos))
			},
		}
		emitted := make(map[Finding]bool)
		pass.Report = func(d Diagnostic) {
			posn := fset.Position(d.Pos)
			if suppressed(dirs, name, posn) || factsOnly {
				return
			}
			f := Finding{Analyzer: name, Posn: posn, Message: d.Message}
			if emitted[f] {
				return // e.g. nested map ranges can visit a statement twice
			}
			emitted[f] = true
			findings = append(findings, f)
		}
		if _, err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("analyzer %s: %v", a.Name, err)
		}
	}
	sortFindings(findings)
	return findings, dirs, nil
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Posn, findings[j].Posn
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
}

// NewTypesInfo returns a types.Info with every map the analyzers
// consult allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
