package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

const suppressionSrc = `package p

func flagged() {
	bad() // line 4: no directive
	//lint:ignore testcheck justified on the next line
	bad() // line 6: suppressed by the line above
	bad() //lint:ignore testcheck justified on the same line
	//lint:ignore othercheck wrong analyzer name
	bad() // line 9: not suppressed for testcheck
	//lint:ignore testcheck,othercheck multi-analyzer directive
	bad() // line 11: suppressed
	//lint:ignore testcheck
	bad() // line 13: directive above has no reason, so it has no effect
}

func bad() {}
`

// checkAnalyzer flags every call of bad().
var checkAnalyzer = &Analyzer{
	Name: "testcheck",
	Doc:  "flags calls of bad",
	Run: func(pass *Pass) (interface{}, error) {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "bad" {
						pass.Reportf(call.Pos(), "call of bad")
						pass.Reportf(call.Pos(), "call of bad") // duplicate: must be deduped
					}
				}
				return true
			})
		}
		return nil, nil
	},
}

func TestSuppressionAndDedup(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", suppressionSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	conf := types.Config{}
	info := NewTypesInfo()
	pkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunAnalyzers(fset, []*ast.File{file}, pkg, info, []*Analyzer{checkAnalyzer})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, f := range findings {
		lines = append(lines, f.Posn.Line)
	}
	want := []int{4, 9, 13}
	if len(lines) != len(want) {
		t.Fatalf("findings on lines %v, want %v", lines, want)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("findings on lines %v, want %v", lines, want)
		}
	}
	for _, f := range findings {
		if !strings.Contains(f.String(), "testcheck") {
			t.Errorf("finding %q does not name its analyzer", f)
		}
	}
}
