// Cross-package facts: the channel that makes the analyzers
// interprocedural.
//
// A fact is a small serializable statement an analyzer attaches to a
// types.Object while analyzing the package that declares it — "Run has
// a Ctx variant", "Intn may panic on an input-dependent path", "this
// helper serves unverified file bytes". When a later unit imports that
// package, the driver hands the facts back to the analyzer, which can
// then judge a call site against the callee's contract without seeing
// the callee's body.
//
// Transport follows the vet protocol's existing channel: cmd/go tells
// every unit where to write its facts file (vet.cfg's VetxOutput) and
// where each dependency's sits (PackageVetx), and round-trips the
// files through its action cache keyed on the tool's build ID. The
// file body is ours to define; branchlabvet writes a sorted JSON array
// of per-object records. An object is named by (receiver type, name) —
// enough for every package-level function, method, type, and variable,
// which is exactly the set visible to an importer. On the way back in,
// records are resolved against the importer-loaded *types.Package
// (Scope lookup, then LookupFieldOrMethod for methods); records naming
// objects the export data does not surface are dropped, which is
// sound: a caller cannot reference an object it cannot see.
//
// In-process drivers (analysistest) skip serialization entirely and
// share one FactStore across packages, keyed by object identity.
package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// Fact is a serializable statement about a types.Object. Implementations
// must be pointers to JSON-marshalable structs; AFact is a marker.
// Analyzers list their fact types in Analyzer.FactTypes so drivers can
// decode records produced by other processes.
type Fact interface{ AFact() }

// factKey namespaces stored facts: two analyzers (or two fact types of
// one analyzer) never see each other's facts.
type factKey struct {
	analyzer string
	typ      string
}

// FactStore holds the facts visible to one analysis unit: everything
// decoded from dependency .vetx files plus everything exported while
// analyzing the unit itself.
type FactStore struct {
	objFacts map[types.Object]map[factKey]Fact
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{objFacts: make(map[types.Object]map[factKey]Fact)}
}

func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	if t == nil || t.Kind() != reflect.Ptr {
		return ""
	}
	return t.Elem().Name()
}

func (s *FactStore) export(analyzer string, obj types.Object, f Fact) {
	name := factTypeName(f)
	if name == "" {
		return
	}
	m := s.objFacts[obj]
	if m == nil {
		m = make(map[factKey]Fact)
		s.objFacts[obj] = m
	}
	m[factKey{analyzer, name}] = f
}

// importFact copies the stored fact of dst's type into dst, reporting
// whether one existed.
func (s *FactStore) importFact(analyzer string, obj types.Object, dst Fact) bool {
	f, ok := s.objFacts[obj][factKey{analyzer, factTypeName(dst)}]
	if !ok {
		return false
	}
	reflect.ValueOf(dst).Elem().Set(reflect.ValueOf(f).Elem())
	return true
}

// factRecord is the serialized form of one fact in a .vetx file.
type factRecord struct {
	Analyzer string          `json:"analyzer"`
	Recv     string          `json:"recv,omitempty"`
	Name     string          `json:"name"`
	Type     string          `json:"type"`
	Data     json.RawMessage `json:"data"`
}

// objectKey names obj for serialization: ("", name) for package-scope
// objects, (receiver type name, method name) for methods. Objects an
// importer cannot resolve — locals, methods on unnamed receivers —
// report ok=false and are not serialized.
func objectKey(obj types.Object) (recv, name string, ok bool) {
	if fn, isFunc := obj.(*types.Func); isFunc {
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil {
			return "", "", false
		}
		if r := sig.Recv(); r != nil {
			t := r.Type()
			if p, isPtr := t.(*types.Pointer); isPtr {
				t = p.Elem()
			}
			named, isNamed := t.(*types.Named)
			if !isNamed {
				return "", "", false
			}
			return named.Obj().Name(), fn.Name(), true
		}
		return "", fn.Name(), true
	}
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return "", obj.Name(), true
	}
	return "", "", false
}

// resolveObject is objectKey's inverse against an importer-loaded
// package; nil when the export data does not surface the object.
func resolveObject(pkg *types.Package, recv, name string) types.Object {
	if recv == "" {
		return pkg.Scope().Lookup(name)
	}
	tn, ok := pkg.Scope().Lookup(recv).(*types.TypeName)
	if !ok {
		return nil
	}
	obj, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pkg, name)
	return obj
}

// EncodePackage serializes every fact attached to pkg's objects,
// sorted so the bytes are deterministic (cmd/go content-addresses the
// file). A package with no facts encodes as zero bytes — the form the
// pre-facts tool wrote, so old and new vetx files interoperate.
func (s *FactStore) EncodePackage(pkg *types.Package) ([]byte, error) {
	var recs []factRecord
	for obj, m := range s.objFacts {
		if obj == nil || obj.Pkg() != pkg {
			continue
		}
		recv, name, ok := objectKey(obj)
		if !ok {
			continue
		}
		for k, f := range m {
			data, err := json.Marshal(f)
			if err != nil {
				return nil, fmt.Errorf("encoding %s fact for %s: %v", k.analyzer, obj.Name(), err)
			}
			recs = append(recs, factRecord{Analyzer: k.analyzer, Recv: recv, Name: name, Type: k.typ, Data: data})
		}
	}
	if len(recs) == 0 {
		return nil, nil
	}
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		if a.Recv != b.Recv {
			return a.Recv < b.Recv
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Type < b.Type
	})
	return json.Marshal(recs)
}

// DecodePackage resolves a .vetx file's records against the loaded
// dependency package and installs the facts. Records naming objects or
// fact types this tool build does not know are skipped (the object is
// invisible to importers, or the file came from a different analyzer
// set); malformed JSON is an error — cmd/go regenerates vetx files
// whenever the tool binary changes, so corruption means a real bug.
func (s *FactStore) DecodePackage(pkg *types.Package, data []byte, analyzers []*Analyzer) error {
	if len(data) == 0 {
		return nil
	}
	var recs []factRecord
	if err := json.Unmarshal(data, &recs); err != nil {
		return fmt.Errorf("decoding facts for %s: %v", pkg.Path(), err)
	}
	byName := make(map[factKey]reflect.Type)
	for _, a := range analyzers {
		for _, ft := range a.FactTypes {
			t := reflect.TypeOf(ft)
			if t == nil || t.Kind() != reflect.Ptr {
				continue
			}
			byName[factKey{a.Name, t.Elem().Name()}] = t.Elem()
		}
	}
	for _, r := range recs {
		t, ok := byName[factKey{r.Analyzer, r.Type}]
		if !ok {
			continue
		}
		obj := resolveObject(pkg, r.Recv, r.Name)
		if obj == nil {
			continue
		}
		f, isFact := reflect.New(t).Interface().(Fact)
		if !isFact {
			continue
		}
		if err := json.Unmarshal(r.Data, f); err != nil {
			return fmt.Errorf("decoding %s/%s fact for %s.%s: %v", r.Analyzer, r.Type, pkg.Path(), r.Name, err)
		}
		s.export(r.Analyzer, obj, f)
	}
	return nil
}
