// The -vettool protocol, reimplemented from the standard library up.
//
// `go vet -vettool=prog ./...` drives prog through a small protocol:
//
//  1. `prog -V=full` must print "name version ... buildID=<id>" so
//     cmd/go can key its action cache on the tool's content.
//  2. `prog -flags` must print a JSON description of the analyzer
//     flags the tool accepts (ours: none, the empty list).
//  3. For every package unit, cmd/go materializes a vet.cfg JSON file
//     (file lists, the import map, and per-dependency export-data
//     paths) and invokes `prog [flags] path/to/vet.cfg`. The tool
//     parses and type-checks the unit itself, writes the "facts"
//     output file cmd/go told it to (VetxOutput — empty for us, the
//     analyzers are fact-free), prints diagnostics to stderr, and
//     exits 2 when it found any.
//
// Dependencies are type-checked from the export-data files named in
// the config via go/importer's lookup hook, so a whole-module run
// costs one parse+check per package, the same as stock `go vet`.
package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// vetConfig mirrors the vet.cfg JSON that cmd/go hands a vettool; the
// field set tracks cmd/go/internal/work's vetConfig struct. Unknown
// fields are ignored, so newer toolchains that add fields stay
// compatible.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string // source import path -> canonical path
	PackageFile map[string]string // canonical path -> export data file
	Standard    map[string]bool

	PackageVetx map[string]string // canonical path -> dependency facts (unused)
	VetxOnly    bool              // only facts are wanted: no diagnostics
	VetxOutput  string            // where to write this unit's facts

	SucceedOnTypecheckFailure bool
}

// Vet is the entry point of a vettool binary: it interprets the
// cmd/go protocol flags and runs the analyzers over the unit.
func Vet(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (cmd/go protocol)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags as JSON and exit (cmd/go protocol)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON")
	fs.Int("c", -1, "display offending line plus this many lines of context (accepted, ignored)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] vet.cfg\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, doc)
		}
	}
	fs.Parse(os.Args[1:])

	if *versionFlag != "" {
		// cmd/go requires at least "name version ver", and for a
		// "devel" version a trailing buildID= token that identifies
		// this exact binary; hash the executable for that.
		if *versionFlag != "full" {
			fmt.Fprintf(os.Stderr, "%s: unsupported flag -V=%s\n", progname, *versionFlag)
			os.Exit(1)
		}
		data, err := os.ReadFile(os.Args[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: reading self for build ID: %v\n", progname, err)
			os.Exit(1)
		}
		sum := sha256.Sum256(data)
		fmt.Printf("%s version devel buildID=%02x\n", progname, sum)
		os.Exit(0)
	}
	if *flagsFlag {
		// No analyzer exposes flags; cmd/go expects a JSON array.
		fmt.Println("[]")
		os.Exit(0)
	}

	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		fs.Usage()
		os.Exit(1)
	}

	findings, err := runUnit(fs.Arg(0), analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(findings) > 0 {
		if *jsonFlag {
			json.NewEncoder(os.Stderr).Encode(findings)
		} else {
			for _, f := range findings {
				fmt.Fprintf(os.Stderr, "%s: %s\n", f.Posn, f.Message)
			}
		}
		os.Exit(2)
	}
	os.Exit(0)
}

// runUnit analyzes one vet.cfg unit and returns the findings.
func runUnit(cfgPath string, analyzers []*Analyzer) ([]Finding, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}

	// cmd/go records the facts file as this action's output and feeds
	// it to dependents, so it must exist even though our analyzers are
	// fact-free (an empty file decodes as "no facts").
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, fmt.Errorf("writing facts: %v", err)
		}
	}
	if cfg.VetxOnly {
		// A dependency analyzed only for facts: nothing to report.
		return nil, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// The lookup may be queried with either spelling of a path:
		// as written in source (resolve through ImportMap) or already
		// canonical (references inside export data).
		file, ok := cfg.PackageFile[path]
		if !ok {
			if canon, mapped := cfg.ImportMap[path]; mapped {
				file, ok = cfg.PackageFile[canon]
			}
		}
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	typesImporter := importerFunc(func(importPath string) (*types.Package, error) {
		canon, ok := cfg.ImportMap[importPath]
		if !ok {
			canon = importPath
		}
		if canon == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.(types.ImporterFrom).ImportFrom(canon, cfg.Dir, 0)
	})

	arch := os.Getenv("GOARCH")
	if arch == "" {
		arch = runtime.GOARCH
	}
	tconf := types.Config{
		Importer:  typesImporter,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, arch),
	}
	info := NewTypesInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	return RunAnalyzers(fset, files, pkg, info, analyzers)
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
