// The -vettool protocol, reimplemented from the standard library up.
//
// `go vet -vettool=prog ./...` drives prog through a small protocol:
//
//  1. `prog -V=full` must print "name version ... buildID=<id>" so
//     cmd/go can key its action cache on the tool's content.
//  2. `prog -flags` must print a JSON description of the analyzer
//     flags the tool accepts (ours: -json and -checkignores); flags
//     the user passes to `go vet` from that set are forwarded to every
//     tool invocation.
//  3. For every package unit, cmd/go materializes a vet.cfg JSON file
//     (file lists, the import map, and per-dependency export-data
//     paths) and invokes `prog [flags] path/to/vet.cfg`. The tool
//     parses and type-checks the unit itself, writes the facts file
//     cmd/go told it to (VetxOutput), prints diagnostics to stderr,
//     and exits 2 when it found any.
//
// Dependencies are type-checked from the export-data files named in
// the config via go/importer's lookup hook, so a whole-module run
// costs one parse+check per package, the same as stock `go vet`.
//
// Facts ride the same channel (facts.go): cmd/go also vets every
// dependency (VetxOnly units, diagnostics discarded) and hands each
// dependency's facts file back through PackageVetx, so an analyzer
// checking a caller sees the facts its callees' packages exported.
// Only this module's packages carry facts — for the standard library
// the tool writes an empty facts file without parsing anything, which
// keeps whole-module runs as fast as the fact-free tool was.
package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// factModulePrefix limits fact computation to this module's packages:
// analyzers state contracts about branchlab code only, and skipping
// the standard library keeps VetxOnly units free (empty facts file, no
// parse or type-check).
const factModulePrefix = "branchlab"

// ErrBadConfig is wrapped by every config-shape failure: malformed
// JSON, missing required fields, bogus entries. The unitchecker never
// panics on a hostile vet.cfg — FuzzVetConfig pins that.
var ErrBadConfig = errors.New("invalid vet.cfg")

// vetConfig mirrors the vet.cfg JSON that cmd/go hands a vettool; the
// field set tracks cmd/go/internal/work's vetConfig struct. Unknown
// fields are ignored, so newer toolchains that add fields stay
// compatible.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string // source import path -> canonical path
	PackageFile map[string]string // canonical path -> export data file
	Standard    map[string]bool

	PackageVetx map[string]string // canonical path -> dependency facts file
	VetxOnly    bool              // only facts are wanted: no diagnostics
	VetxOutput  string            // where to write this unit's facts

	SucceedOnTypecheckFailure bool
}

// parseVetConfig decodes and validates a vet.cfg. All rejections wrap
// ErrBadConfig; this is the surface FuzzVetConfig drives.
func parseVetConfig(data []byte) (*vetConfig, error) {
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if cfg.ImportPath == "" {
		return nil, fmt.Errorf("%w: missing ImportPath", ErrBadConfig)
	}
	if cfg.Compiler == "" {
		return nil, fmt.Errorf("%w: missing Compiler", ErrBadConfig)
	}
	for _, name := range cfg.GoFiles {
		if name == "" {
			return nil, fmt.Errorf("%w: empty GoFiles entry", ErrBadConfig)
		}
	}
	for src, canon := range cfg.ImportMap {
		if src == "" || canon == "" {
			return nil, fmt.Errorf("%w: empty ImportMap entry %q -> %q", ErrBadConfig, src, canon)
		}
	}
	for path, file := range cfg.PackageFile {
		if path == "" || file == "" {
			return nil, fmt.Errorf("%w: empty PackageFile entry %q -> %q", ErrBadConfig, path, file)
		}
	}
	for path, file := range cfg.PackageVetx {
		if path == "" || file == "" {
			return nil, fmt.Errorf("%w: empty PackageVetx entry %q -> %q", ErrBadConfig, path, file)
		}
	}
	return &cfg, nil
}

// jsonFinding is the -json record shape: one object per line, fixed
// field order, parsed by the GitHub Actions problem matcher
// (.github/problem-matchers/branchlabvet.json).
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Vet is the entry point of a vettool binary: it interprets the
// cmd/go protocol flags and runs the analyzers over the unit.
func Vet(analyzers ...*Analyzer) {
	progname := filepath.Base(os.Args[0])

	fs := flag.NewFlagSet(progname, flag.ExitOnError)
	versionFlag := fs.String("V", "", "print version and exit (cmd/go protocol)")
	flagsFlag := fs.Bool("flags", false, "print analyzer flags as JSON and exit (cmd/go protocol)")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON records, one per line")
	ignoresFlag := fs.Bool("checkignores", false, "report stale //lint:ignore directives instead of diagnostics")
	fs.Int("c", -1, "display offending line plus this many lines of context (accepted, ignored)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] vet.cfg\n\nAnalyzers:\n", progname)
		for _, a := range analyzers {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Fprintf(os.Stderr, "  %-14s %s\n", a.Name, doc)
		}
	}
	fs.Parse(os.Args[1:])

	if *versionFlag != "" {
		// cmd/go requires at least "name version ver", and for a
		// "devel" version a trailing buildID= token that identifies
		// this exact binary; hash the executable for that.
		if *versionFlag != "full" {
			fmt.Fprintf(os.Stderr, "%s: unsupported flag -V=%s\n", progname, *versionFlag)
			os.Exit(1)
		}
		data, err := os.ReadFile(os.Args[0])
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: reading self for build ID: %v\n", progname, err)
			os.Exit(1)
		}
		sum := sha256.Sum256(data)
		fmt.Printf("%s version devel buildID=%02x\n", progname, sum)
		os.Exit(0)
	}
	if *flagsFlag {
		// The flags a user may pass through `go vet`; cmd/go parses
		// this list to know what to forward.
		fmt.Println(`[` +
			`{"Name":"json","Bool":true,"Usage":"emit diagnostics as JSON records, one per line"},` +
			`{"Name":"checkignores","Bool":true,"Usage":"report stale //lint:ignore directives instead of diagnostics"}` +
			`]`)
		os.Exit(0)
	}

	if fs.NArg() != 1 || !strings.HasSuffix(fs.Arg(0), ".cfg") {
		fs.Usage()
		os.Exit(1)
	}

	findings, err := runUnit(fs.Arg(0), analyzers, *ignoresFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", progname, err)
		os.Exit(1)
	}
	if len(findings) > 0 {
		if *jsonFlag {
			enc := json.NewEncoder(os.Stdout)
			for _, f := range findings {
				enc.Encode(jsonFinding{
					File: f.Posn.Filename, Line: f.Posn.Line, Col: f.Posn.Column,
					Analyzer: f.Analyzer, Message: f.Message,
				})
			}
		} else {
			for _, f := range findings {
				fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", f.Posn, f.Message, f.Analyzer)
			}
		}
		os.Exit(2)
	}
	os.Exit(0)
}

// runUnit analyzes one vet.cfg unit and returns the findings (the
// stale-suppression findings instead, under -checkignores).
func runUnit(cfgPath string, analyzers []*Analyzer, checkIgnores bool) ([]Finding, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	cfg, err := parseVetConfig(data)
	if err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// cmd/go records the facts file as this action's output and feeds
	// it to dependents, so it must exist even when there is nothing to
	// say (an empty file decodes as "no facts"). Packages outside this
	// module never carry facts: write the empty file and skip the
	// parse entirely.
	if cfg.VetxOnly && !strings.HasPrefix(cfg.ImportPath, factModulePrefix) {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				return nil, fmt.Errorf("writing facts: %v", err)
			}
		}
		return nil, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		// The lookup may be queried with either spelling of a path:
		// as written in source (resolve through ImportMap) or already
		// canonical (references inside export data).
		file, ok := cfg.PackageFile[path]
		if !ok {
			if canon, mapped := cfg.ImportMap[path]; mapped {
				file, ok = cfg.PackageFile[canon]
			}
		}
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	typesImporter := importerFunc(func(importPath string) (*types.Package, error) {
		canon, ok := cfg.ImportMap[importPath]
		if !ok {
			canon = importPath
		}
		if canon == "unsafe" {
			return types.Unsafe, nil
		}
		return compilerImporter.(types.ImporterFrom).ImportFrom(canon, cfg.Dir, 0)
	})

	arch := os.Getenv("GOARCH")
	if arch == "" {
		arch = runtime.GOARCH
	}
	tconf := types.Config{
		Importer:  typesImporter,
		GoVersion: cfg.GoVersion,
		Sizes:     types.SizesFor(cfg.Compiler, arch),
	}
	info := NewTypesInfo()
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	store := NewFactStore()
	if err := loadDepFacts(store, cfg, pkg, analyzers); err != nil {
		return nil, err
	}

	var findings []Finding
	switch {
	case cfg.VetxOnly:
		err = ComputeFacts(fset, files, pkg, info, store, analyzers)
	case checkIgnores:
		findings, err = CheckIgnores(fset, files, pkg, info, store, analyzers)
	default:
		findings, err = RunAnalyzersFacts(fset, files, pkg, info, store, analyzers)
	}
	if err != nil {
		return nil, err
	}

	if cfg.VetxOutput != "" {
		facts, err := store.EncodePackage(pkg)
		if err != nil {
			return nil, fmt.Errorf("encoding facts: %v", err)
		}
		if err := os.WriteFile(cfg.VetxOutput, facts, 0o666); err != nil {
			return nil, fmt.Errorf("writing facts: %v", err)
		}
	}
	return findings, nil
}

// loadDepFacts decodes every dependency facts file named in the config
// against the type-checked import graph. cmd/go names dependencies by
// their canonical path, which for a package recompiled into a test
// binary carries a " [pkg.test]" suffix the export data does not —
// both sides are normalized before matching. A PackageVetx entry whose
// package the unit never actually imported resolves to nothing and is
// skipped: no caller can reference its objects.
func loadDepFacts(store *FactStore, cfg *vetConfig, pkg *types.Package, analyzers []*Analyzer) error {
	if len(cfg.PackageVetx) == 0 {
		return nil
	}
	byPath := make(map[string]*types.Package)
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		if byPath[p.Path()] != nil {
			return
		}
		byPath[p.Path()] = p
		for _, imp := range p.Imports() {
			walk(imp)
		}
	}
	for _, imp := range pkg.Imports() {
		walk(imp)
	}

	paths := make([]string, 0, len(cfg.PackageVetx))
	for path := range cfg.PackageVetx {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		plain := path
		if i := strings.Index(plain, " ["); i >= 0 {
			plain = plain[:i]
		}
		if !strings.HasPrefix(plain, factModulePrefix) {
			continue // outside the module: always fact-free
		}
		dep := byPath[plain]
		if dep == nil {
			continue
		}
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return fmt.Errorf("reading facts for %s: %v", path, err)
		}
		if err := store.DecodePackage(dep, data, analyzers); err != nil {
			return err
		}
	}
	return nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
