// Package rand is a minimal stand-in for math/rand (the analyzer
// matches by import path and symbol name).
package rand

// Uint64 mimics rand.Uint64.
func Uint64() uint64 { return 0 }
