// Package a is the checkpointpure analyzer's golden file: a payload
// whose save/restore methods touch ambient state, next to one that
// honors the contract.
package a

import (
	"math/rand"
	"time"
)

var captureCount uint64

var errRejected error // sentinel: identity comparison is pure

type impure struct {
	state []uint64
	stamp time.Time
}

func (p *impure) CheckpointSave() []uint64 {
	captureCount++       // want `CheckpointSave references package-level variable captureCount`
	p.stamp = time.Now() // want `CheckpointSave calls time\.Now`
	_ = rand.Uint64()    // want `CheckpointSave uses math/rand\.Uint64`
	return p.state
}

func (p *impure) CheckpointRestore(st []uint64) bool {
	if captureCount > 0 { // want `CheckpointRestore references package-level variable captureCount`
		return false
	}
	p.state = append(p.state[:0], st...)
	return true
}

type pure struct {
	state []uint64
	err   error
}

func (p *pure) CheckpointSave() []uint64 {
	// Receiver state and sentinel-error identity are both pure.
	if p.err == errRejected {
		return nil
	}
	return append([]uint64(nil), p.state...)
}

func (p *pure) CheckpointRestore(st []uint64) bool {
	p.state = append(p.state[:0], st...)
	return true
}

// Methods outside the checkpoint contract may use package state.
func (p *pure) observe() {
	captureCount++
}

// --- suppression ---

type counted struct{ state []uint64 }

func (c *counted) CheckpointSave() []uint64 {
	//lint:ignore checkpointpure capture metric only, never serialized into the snapshot
	captureCount++
	return c.state
}

func (c *counted) CheckpointRestore(st []uint64) bool {
	c.state = st
	return true
}
