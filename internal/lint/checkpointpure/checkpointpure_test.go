package checkpointpure_test

import (
	"testing"

	"branchlab/internal/lint/analysistest"
	"branchlab/internal/lint/checkpointpure"
)

func TestCheckpointPure(t *testing.T) {
	analysistest.Run(t, "testdata", checkpointpure.Analyzer, "a")
}
