// Package checkpointpure flags CheckpointSave / CheckpointRestore
// methods that reference package-level mutable state or draw ambient
// entropy — the failure mode PR 5's typed-error resume fallback exists
// to contain.
//
// The checkpoint contract (internal/program, DESIGN.md §6): a
// checkpoint resumed on any worker at any time must regenerate
// byte-identical instructions. That holds only if save and restore are
// pure functions of the receiver and their arguments. A save that
// reads a package-level counter bakes one process's history into the
// snapshot; a restore that consults a global produces state the
// capture never saw; either way the resumed generation silently
// diverges from the skim path and the determinism matrix reports a
// byte diff with no hint of the cause.
//
// Matching is structural: any method named CheckpointSave or
// CheckpointRestore is held to the contract (every implementation of
// program.CheckpointPayload is, by construction). Flagged inside them:
//
//   - reads or writes of package-level variables, in any package
//     (sentinel error values are exempt: comparing against a fixed
//     error identity is pure);
//   - time.Now calls and any use of math/rand — entropy must come
//     from the xrand stream captured in the checkpoint itself.
package checkpointpure

import (
	"go/ast"
	"go/types"

	"branchlab/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "checkpointpure",
	Doc:  "flags checkpoint save/restore methods that touch package-level state or ambient entropy",
	Run:  run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok {
				return true
			}
			if fd.Recv == nil || fd.Body == nil {
				return false
			}
			if name := fd.Name.Name; name == "CheckpointSave" || name == "CheckpointRestore" {
				checkBody(pass, fd)
			}
			return false
		})
	}
	return nil, nil
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl) {
	method := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			return true
		}
		switch obj := obj.(type) {
		case *types.Var:
			if isPackageLevel(obj) && !isSentinelError(obj) {
				pass.Reportf(id.Pos(),
					"%s references package-level variable %s: checkpoint save/restore must be a pure function of the receiver (a resumed generation would diverge from the skim path)",
					method, obj.Name())
			}
		case *types.Func:
			if obj.Pkg() == nil {
				return true
			}
			switch path := obj.Pkg().Path(); {
			case path == "time" && obj.Name() == "Now":
				pass.Reportf(id.Pos(),
					"%s calls time.Now: checkpoints must not capture wall-clock entropy", method)
			case path == "math/rand" || path == "math/rand/v2":
				pass.Reportf(id.Pos(),
					"%s uses %s.%s: checkpoint entropy must come from the captured xrand stream", method, path, obj.Name())
			}
		}
		return true
	})
}

func isPackageLevel(v *types.Var) bool {
	return !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// isSentinelError reports whether v is an error-typed package variable
// (errors.New-style sentinel); comparing against one is pure.
func isSentinelError(v *types.Var) bool {
	named, ok := v.Type().(*types.Named)
	if ok && named.Obj() != nil && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
		return true
	}
	// Also accept interfaces with an Error() string method (wrapped
	// sentinel types).
	iface, ok := v.Type().Underlying().(*types.Interface)
	if !ok {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		if iface.Method(i).Name() == "Error" {
			return true
		}
	}
	return false
}
