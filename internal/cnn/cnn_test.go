package cnn

import (
	"testing"

	"branchlab/internal/bp"
	"branchlab/internal/core"
	"branchlab/internal/tage"
	"branchlab/internal/trace"
	"branchlab/internal/xrand"
)

// correlatedTrace builds a trace with an H2P whose direction copies a
// dependency branch's direction from a variable distance back — the
// pattern TAGE struggles with and position-pooled helpers learn.
func correlatedTrace(seed uint64, n int, noise float64) *trace.Buffer {
	rng := xrand.New(seed)
	b := trace.NewBuffer(0)
	cond := func(ip uint64, taken bool) {
		b.Append(trace.Inst{IP: ip, Kind: trace.KindCondBr, Taken: taken, Target: ip + 64,
			DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})
	}
	v := uint64(1000)
	for b.Len() < n {
		v += uint64(rng.Intn(3)) - 1
		dep := (v>>4)&1 == 1
		cond(0xD00, dep)
		for j, gap := 0, rng.Intn(6); j < gap; j++ {
			cond(0xE00+uint64(rng.Intn(8))*64, true)
		}
		cond(0xAAA0, dep != rng.Bool(noise)) // the H2P
		for j := 0; j < 4; j++ {
			b.Append(trace.Inst{IP: 0x100, Kind: trace.KindALU,
				DstReg: trace.NoReg, SrcRegs: [2]uint8{trace.NoReg, trace.NoReg}})
		}
	}
	return b
}

const h2pIP = 0xAAA0

func collect(t *testing.T, cfg Config, seed uint64, n int) []Sample {
	t.Helper()
	col := NewHistoryCollector(cfg, h2pIP)
	tr := correlatedTrace(seed, n, 0.1)
	core.Run(tr.Stream(), bp.NewStatic(true), col)
	if len(col.Samples) == 0 {
		t.Fatal("no samples collected")
	}
	return col.Samples
}

func TestEncodeFoldsDirection(t *testing.T) {
	cfg := DefaultConfig()
	a := Encode(cfg, 0x1234, true)
	b := Encode(cfg, 0x1234, false)
	if a == b {
		t.Error("direction not encoded")
	}
	if a/2 != b/2 {
		t.Error("same IP must share a bucket")
	}
	if int(a) >= 2*cfg.Buckets || int(b) >= 2*cfg.Buckets {
		t.Error("slot out of range")
	}
}

func TestHistoryCollectorShapes(t *testing.T) {
	cfg := DefaultConfig()
	samples := collect(t, cfg, 1, 120000)
	for _, s := range samples {
		if len(s.Slots) != cfg.HistLen {
			t.Fatalf("sample history length %d", len(s.Slots))
		}
	}
	takens := 0
	for _, s := range samples {
		if s.Taken {
			takens++
		}
	}
	if takens == 0 || takens == len(samples) {
		t.Error("labels are constant; trace generator broken")
	}
}

func TestModelLearnsCorrelation(t *testing.T) {
	cfg := DefaultConfig()
	train := collect(t, cfg, 1, 300000)
	test := collect(t, cfg, 99, 120000) // unseen "input"
	m := NewModel(cfg)
	m.Train(train)
	if !m.Quantized() {
		t.Fatal("model not quantized after training")
	}
	acc := m.Accuracy(test)
	// Noise 0.1 puts the ceiling at 0.9; the helper must recover most of
	// the correlation despite variable positions.
	if acc < 0.8 {
		t.Errorf("helper accuracy on unseen input = %v, want >= 0.8", acc)
	}
}

func TestHelperBeatsTAGEOnH2P(t *testing.T) {
	// The paper's core §V claim: an offline-trained helper beats the
	// online baseline on the specific H2P it was trained for.
	cfg := DefaultConfig()
	train := collect(t, cfg, 1, 300000)
	m := NewModel(cfg)
	m.Train(train)

	// Baseline TAGE accuracy on the H2P in a fresh trace.
	tr := correlatedTrace(123, 150000, 0.1)
	col := core.NewCollector(uint64(tr.Len()))
	core.Run(tr.Stream(), tage.New(tage.Config8KB()), col)
	tageAcc := col.Totals()[h2pIP].Accuracy()

	// Overlay accuracy on the same trace.
	overlay := NewOverlay(cfg, tage.New(tage.Config8KB()))
	overlay.Attach(h2pIP, m)
	col2 := core.NewCollector(uint64(tr.Len()))
	core.Run(tr.Stream(), overlay, col2)
	helperAcc := col2.Totals()[h2pIP].Accuracy()

	if overlay.HelperPredictions == 0 {
		t.Fatal("helper never engaged")
	}
	if helperAcc <= tageAcc {
		t.Errorf("helper (%v) did not beat TAGE (%v) on the H2P", helperAcc, tageAcc)
	}
	t.Logf("TAGE %.3f -> helper %.3f on H2P", tageAcc, helperAcc)
}

func TestOverlayLeavesOtherBranchesToBase(t *testing.T) {
	cfg := DefaultConfig()
	overlay := NewOverlay(cfg, bp.NewBimodal(12))
	tr := correlatedTrace(5, 50000, 0.1)
	// No helpers attached: behaves exactly like the base.
	st := core.Run(tr.Stream(), overlay)
	base := core.Run(tr.Stream(), bp.NewBimodal(12))
	if st.Mispreds != base.Mispreds {
		t.Errorf("empty overlay diverges from base: %d vs %d", st.Mispreds, base.Mispreds)
	}
	if overlay.HelperPredictions != 0 {
		t.Error("helper predictions counted with no helpers attached")
	}
}

func TestQuantizedWeightsAreTwoBit(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Epochs = 3
	samples := collect(t, cfg, 2, 150000)
	m := NewModel(cfg)
	m.Train(samples)
	if !m.Quantized() {
		t.Fatal("not quantized")
	}
	checkLevels := func(vals []int8) {
		for _, v := range vals {
			if v < -2 || v > 2 {
				t.Fatalf("weight level %d outside 2-bit magnitude range", v)
			}
		}
	}
	for _, row := range m.q1 {
		checkLevels(row)
	}
	checkLevels(m.q2)
	// The dead zone must actually fire: untrained embedding rows (slots
	// that never occurred in this branch's history) quantize to zero.
	zeroRows := 0
	for _, row := range m.q1 {
		all := true
		for _, v := range row {
			if v != 0 {
				all = false
				break
			}
		}
		if all {
			zeroRows++
		}
	}
	if zeroRows == 0 {
		t.Error("no all-zero embedding rows; dead-zone quantization not effective")
	}
}

func TestQuantizationPreservesAccuracy(t *testing.T) {
	cfg := DefaultConfig()
	train := collect(t, cfg, 2, 250000)
	test := collect(t, cfg, 77, 100000)
	m := NewModel(cfg)
	m.Train(train)
	qAcc := m.Accuracy(test)
	floatModel := *m
	floatModel.quantized = false
	fAcc := floatModel.Accuracy(test)
	if qAcc < fAcc-0.08 {
		t.Errorf("quantization costs too much: float %v -> quantized %v", fAcc, qAcc)
	}
}

func TestTrainOnEmptyIsNoop(t *testing.T) {
	m := NewModel(DefaultConfig())
	m.Train(nil)
	if m.Quantized() {
		t.Error("empty training must not quantize")
	}
}

func TestAccuracyEmpty(t *testing.T) {
	m := NewModel(DefaultConfig())
	if m.Accuracy(nil) != 0 {
		t.Error("accuracy of empty sample set should be 0")
	}
}
