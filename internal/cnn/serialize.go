package cnn

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Serialization implements the §V-D deployment story: once helpers are
// trained offline, "the predictors' model parameters (e.g., network
// weights in the case of a CNN) could be stored as application metadata,
// e.g., under a new segment type in an ELF binary", loaded onto the BPU
// by the OS at program start. The format stores only the quantized
// deployment weights — the 2-bit magnitudes plus their scale factors —
// not the float training state.
//
// Format ("BLH1"):
//
//	magic    [4]byte "BLH1"
//	config   histLen, buckets, filters, segments (uvarint each)
//	bias     float32 bits (uvarint)
//	scale2   float32 bits (uvarint)
//	q2       segments*filters bytes (int8 + 2)
//	scale1   2*buckets float32 bits (uvarint each)
//	q1       2*buckets rows of filters bytes (int8 + 2)

var helperMagic = [4]byte{'B', 'L', 'H', '1'}

// ErrBadHelperFile is returned when decoding a stream that is not a
// serialized helper model.
var ErrBadHelperFile = errors.New("cnn: bad magic (not a BLH1 helper model)")

// WriteTo serializes the quantized model. It fails if the model has not
// been trained (there is nothing deployable to write).
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	if !m.quantized {
		return 0, errors.New("cnn: model not trained/quantized; nothing to serialize")
	}
	bw := bufio.NewWriter(w)
	var n int64
	write := func(p []byte) error {
		k, err := bw.Write(p)
		n += int64(k)
		return err
	}
	if err := write(helperMagic[:]); err != nil {
		return n, err
	}
	var buf [binary.MaxVarintLen64]byte
	putUv := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		return write(buf[:k])
	}
	putF32 := func(f float32) error {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], floatBits(f))
		return write(b[:])
	}
	for _, v := range []uint64{
		uint64(m.Cfg.HistLen), uint64(m.Cfg.Buckets),
		uint64(m.Cfg.Filters), uint64(m.Cfg.Segments),
	} {
		if err := putUv(v); err != nil {
			return n, err
		}
	}
	if err := putF32(m.b); err != nil {
		return n, err
	}
	if err := putF32(m.scale2); err != nil {
		return n, err
	}
	q2b := make([]byte, len(m.q2))
	for i, q := range m.q2 {
		q2b[i] = byte(q + 2)
	}
	if err := write(q2b); err != nil {
		return n, err
	}
	for i, row := range m.q1 {
		if err := putF32(m.scale1[i]); err != nil {
			return n, err
		}
		rb := make([]byte, len(row))
		for j, q := range row {
			rb[j] = byte(q + 2)
		}
		if err := write(rb); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadModel deserializes a helper model written by WriteTo. The returned
// model predicts with the stored quantized weights; it cannot be further
// trained (the float state is not persisted).
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, err
	}
	if hdr != helperMagic {
		return nil, ErrBadHelperFile
	}
	readUv := func() (uint64, error) { return binary.ReadUvarint(br) }
	readF32 := func() (float32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, err
		}
		return floatFrom(binary.LittleEndian.Uint32(b[:])), nil
	}
	var cfg Config
	vals := make([]uint64, 4)
	for i := range vals {
		v, err := readUv()
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	cfg.HistLen, cfg.Buckets = int(vals[0]), int(vals[1])
	cfg.Filters, cfg.Segments = int(vals[2]), int(vals[3])
	if cfg.HistLen <= 0 || cfg.Buckets <= 0 || cfg.Filters <= 0 || cfg.Segments <= 0 ||
		cfg.HistLen > 1<<16 || cfg.Buckets > 1<<20 || cfg.Filters > 1<<12 || cfg.Segments > 1<<12 {
		return nil, fmt.Errorf("cnn: implausible helper geometry %+v", cfg)
	}
	m := &Model{Cfg: cfg, quantized: true}
	var err error
	if m.b, err = readF32(); err != nil {
		return nil, err
	}
	if m.scale2, err = readF32(); err != nil {
		return nil, err
	}
	q2b := make([]byte, cfg.Segments*cfg.Filters)
	if _, err := io.ReadFull(br, q2b); err != nil {
		return nil, err
	}
	m.q2 = make([]int8, len(q2b))
	for i, b := range q2b {
		m.q2[i] = int8(b) - 2
		if m.q2[i] < -2 || m.q2[i] > 2 {
			return nil, fmt.Errorf("cnn: weight level %d out of range", m.q2[i])
		}
	}
	rows := 2 * cfg.Buckets
	m.scale1 = make([]float32, rows)
	m.q1 = make([][]int8, rows)
	rb := make([]byte, cfg.Filters)
	for i := 0; i < rows; i++ {
		if m.scale1[i], err = readF32(); err != nil {
			return nil, err
		}
		if _, err := io.ReadFull(br, rb); err != nil {
			return nil, err
		}
		m.q1[i] = make([]int8, cfg.Filters)
		for j, b := range rb {
			m.q1[i][j] = int8(b) - 2
			if m.q1[i][j] < -2 || m.q1[i][j] > 2 {
				return nil, fmt.Errorf("cnn: weight level %d out of range", m.q1[i][j])
			}
		}
	}
	return m, nil
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }
func floatFrom(u uint32) float32 { return math.Float32frombits(u) }
