// Package cnn implements the offline-trained convolutional helper
// predictor the paper proposes in §V-C and develops in its companion
// paper (Tarsa et al., "Improving Branch Prediction By Modeling Global
// History with Convolutional Neural Networks", AIDArc 2019).
//
// Architecture, following the companion paper's deployable variant:
//
//   - input: the last HistLen (IP, direction) pairs, each one-hot encoded
//     by hashing into Buckets*2 slots (direction folded into the slot);
//   - a width-1 convolution (an embedding) mapping each slot to Filters
//     features;
//   - sum pooling within Segments contiguous history segments — the step
//     that buys robustness to the history-position variation that defeats
//     TAGE's exact matching (paper §IV-A, Fig 6);
//   - a fully-connected sigmoid output over the pooled features.
//
// Training runs offline in float32 over traces from multiple application
// inputs; inference quantizes weights to 2-bit magnitudes as in the
// companion paper so the online helper is hardware-plausible.
package cnn

import (
	"math"

	"branchlab/internal/trace"
	"branchlab/internal/xrand"
)

// Config sizes a helper model.
type Config struct {
	HistLen  int // history length in conditional branches
	Buckets  int // hashed IP buckets (input dim = 2*Buckets)
	Filters  int
	Segments int
	Epochs   int
	LR       float64
	Seed     uint64
}

// DefaultConfig returns the configuration used by the experiments.
func DefaultConfig() Config {
	return Config{HistLen: 64, Buckets: 128, Filters: 16, Segments: 8,
		Epochs: 8, LR: 0.05, Seed: 7}
}

// Sample is one training/evaluation example for a single target branch: a
// snapshot of encoded history and the resolved direction.
type Sample struct {
	Slots []uint16 // len = HistLen, newest last
	Taken bool
}

// Encode hashes an (ip, direction) pair into an input slot.
func Encode(cfg Config, ip uint64, taken bool) uint16 {
	h := xrand.Mix64(ip) % uint64(cfg.Buckets)
	slot := uint16(h) * 2
	if taken {
		slot++
	}
	return slot
}

// HistoryCollector gathers samples for one target branch from a
// measurement run. It implements the core.Observer contract.
type HistoryCollector struct {
	Cfg     Config
	Target  uint64
	Samples []Sample

	hist []uint16
}

// NewHistoryCollector returns a collector for target.
func NewHistoryCollector(cfg Config, target uint64) *HistoryCollector {
	return &HistoryCollector{Cfg: cfg, Target: target}
}

// Inst implements the observer contract.
func (h *HistoryCollector) Inst(_ uint64, inst *trace.Inst) {
	if inst.Kind != trace.KindCondBr {
		return
	}
	if inst.IP == h.Target && len(h.hist) >= h.Cfg.HistLen {
		slots := make([]uint16, h.Cfg.HistLen)
		copy(slots, h.hist[len(h.hist)-h.Cfg.HistLen:])
		h.Samples = append(h.Samples, Sample{Slots: slots, Taken: inst.Taken})
	}
	h.hist = append(h.hist, Encode(h.Cfg, inst.IP, inst.Taken))
	if len(h.hist) > 4*h.Cfg.HistLen {
		h.hist = h.hist[len(h.hist)-h.Cfg.HistLen:]
	}
}

// Branch implements the observer contract.
func (h *HistoryCollector) Branch(uint64, *trace.Inst, bool) {}

// Model is a trained helper predictor for one static branch.
type Model struct {
	Cfg Config
	// Float weights (training).
	w1 [][]float32 // [2*Buckets][Filters]
	w2 []float32   // [Segments*Filters]
	b  float32
	// Quantized weights (deployment): 2-bit magnitudes with per-row
	// (embedding) and per-tensor (output) scale factors, the
	// grouped-scaling standard for low-precision inference.
	q1        [][]int8
	q2        []int8
	scale1    []float32 // per-row scale for q1
	scale2    float32   // per-tensor scale for q2
	quantized bool
}

// NewModel returns an untrained model with small random weights.
func NewModel(cfg Config) *Model {
	rng := xrand.New(cfg.Seed)
	m := &Model{Cfg: cfg}
	// Embeddings start at zero so that slots never seen during training
	// contribute nothing at inference (and quantize to the dead zone);
	// the random output layer breaks filter symmetry, and the ReLU
	// subgradient at zero lets embedding gradients flow from the start.
	m.w1 = make([][]float32, 2*cfg.Buckets)
	for i := range m.w1 {
		m.w1[i] = make([]float32, cfg.Filters)
	}
	m.w2 = make([]float32, cfg.Segments*cfg.Filters)
	for i := range m.w2 {
		m.w2[i] = float32(rng.NormFloat64() * 0.1)
	}
	return m
}

// pooled computes the raw (pre-ReLU) segment-pooled feature vector for
// one sample under the given embedding weights.
func (m *Model) pooled(w1 [][]float32, slots []uint16, out []float32) {
	for i := range out {
		out[i] = 0
	}
	segLen := (len(slots) + m.Cfg.Segments - 1) / m.Cfg.Segments
	for t, slot := range slots {
		seg := t / segLen
		if seg >= m.Cfg.Segments {
			seg = m.Cfg.Segments - 1
		}
		w := w1[slot]
		base := seg * m.Cfg.Filters
		for f := 0; f < m.Cfg.Filters; f++ {
			out[base+f] += w[f]
		}
	}
}

// forward returns the pre-sigmoid logit under the given weights, filling
// raw with the pre-ReLU pooled features.
func (m *Model) forward(w1 [][]float32, w2 []float32, slots []uint16, raw []float32) float32 {
	m.pooled(w1, slots, raw)
	z := m.b
	for i, r := range raw {
		if r > 0 {
			z += w2[i] * r
		}
	}
	return z
}

// Train fits the model to the samples with SGD on binary cross-entropy,
// then runs quantization-aware epochs: the forward pass uses the
// quantized weights while gradients update the float shadow weights (the
// straight-through estimator of the BNN line of work the companion paper
// builds on). Call with samples aggregated over multiple application
// inputs for the generalization the paper argues for (§V-B).
func (m *Model) Train(samples []Sample) {
	if len(samples) == 0 {
		return
	}
	rng := xrand.New(m.Cfg.Seed + 1)
	order := make([]int, len(samples))
	for i := range order {
		order[i] = i
	}
	lr := float32(m.Cfg.LR)
	for epoch := 0; epoch < m.Cfg.Epochs; epoch++ {
		m.epoch(samples, order, rng, lr, false)
		lr *= 0.8
	}
	// Quantization-aware refinement at a damped rate: large steps make
	// weights oscillate across the coarse quantization boundaries.
	lr *= 0.3
	qatEpochs := m.Cfg.Epochs/2 + 1
	for epoch := 0; epoch < qatEpochs; epoch++ {
		m.quantize()
		if !m.quantized {
			return
		}
		m.epoch(samples, order, rng, lr, true)
		lr *= 0.8
	}
	m.quantize()
}

// epoch runs one SGD pass. With ste set, the forward pass sees the
// dequantized weights (refreshed every steRefresh samples so the forward
// function tracks the drifting float shadows) while updates flow to the
// float weights — the straight-through estimator.
func (m *Model) epoch(samples []Sample, order []int, rng *xrand.Rand, lr float32, ste bool) {
	const steRefresh = 256
	feat := make([]float32, m.Cfg.Segments*m.Cfg.Filters)
	fw1, fw2 := m.w1, m.w2
	if ste {
		fw1 = dequant2D(m.q1, m.scale1)
		fw2 = dequant1D(m.q2, m.scale2)
	}
	// Fisher-Yates shuffle for SGD.
	for i := len(order) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	for step, idx := range order {
		if ste && step > 0 && step%steRefresh == 0 {
			m.quantize()
			fw1 = dequant2D(m.q1, m.scale1)
			fw2 = dequant1D(m.q2, m.scale2)
		}
		s := samples[idx]
		z := m.forward(fw1, fw2, s.Slots, feat)
		p := sigmoid(z)
		y := float32(0)
		if s.Taken {
			y = 1
		}
		g := p - y // dL/dz
		m.b -= lr * g
		segLen := (len(s.Slots) + m.Cfg.Segments - 1) / m.Cfg.Segments
		for i, r := range feat {
			// ReLU subgradient of 1 at exactly zero lets zero-initialized
			// embeddings start learning.
			if r >= 0 {
				m.w1grad(s.Slots, segLen, i, lr*g*fw2[i])
			}
			if r > 0 {
				m.w2[i] -= lr * g * r
			}
		}
	}
}

func dequant2D(q [][]int8, scales []float32) [][]float32 {
	out := make([][]float32, len(q))
	for i, row := range q {
		out[i] = make([]float32, len(row))
		for j, v := range row {
			out[i][j] = float32(v) * scales[i]
		}
	}
	return out
}

func dequant1D(q []int8, scale float32) []float32 {
	out := make([]float32, len(q))
	for i, v := range q {
		out[i] = float32(v) * scale
	}
	return out
}

// w1grad applies the embedding gradient for pooled feature i.
func (m *Model) w1grad(slots []uint16, segLen, i int, delta float32) {
	seg := i / m.Cfg.Filters
	f := i % m.Cfg.Filters
	lo := seg * segLen
	hi := lo + segLen
	if hi > len(slots) {
		hi = len(slots)
	}
	for t := lo; t < hi; t++ {
		m.w1[slots[t]][f] -= delta
	}
}

// quantize snaps each weight tensor to sign + 2-bit magnitude with a
// dead zone: levels {-2,-1,0,+1,+2}·scale, scale chosen per tensor. The
// dead zone is essential — most embedding rows are never trained (their
// input slot never fires for this branch) and must quantize to exactly
// zero rather than inject ±1 noise into every lookup.
func (m *Model) quantize() {
	scaleOf := func(rows ...[]float32) float32 {
		var sum float64
		var n int
		for _, row := range rows {
			for _, w := range row {
				if a := math.Abs(float64(w)); a > 1e-6 {
					sum += a
					n++
				}
			}
		}
		if n == 0 {
			return 0
		}
		return float32(sum / float64(n))
	}
	quant := func(w, scale float32) int8 {
		if scale == 0 {
			return 0
		}
		v := w / scale
		switch {
		case v <= -1.5:
			return -2
		case v <= -0.5:
			return -1
		case v < 0.5:
			return 0
		case v < 1.5:
			return 1
		default:
			return 2
		}
	}
	m.scale2 = scaleOf(m.w2)
	if m.scale2 == 0 {
		return
	}
	m.scale1 = make([]float32, len(m.w1))
	m.q1 = make([][]int8, len(m.w1))
	for i, row := range m.w1 {
		s := scaleOf(row)
		m.scale1[i] = s
		m.q1[i] = make([]int8, len(row))
		for j, w := range row {
			m.q1[i][j] = quant(w, s)
		}
	}
	m.q2 = make([]int8, len(m.w2))
	for i, w := range m.w2 {
		m.q2[i] = quant(w, m.scale2)
	}
	m.quantized = true
}

// Predict returns the predicted direction for a history snapshot using
// the quantized weights when available (integer dot products, as deployed
// on a BPU), falling back to float weights before quantization.
func (m *Model) Predict(slots []uint16) bool {
	if !m.quantized {
		feat := make([]float32, m.Cfg.Segments*m.Cfg.Filters)
		return m.forward(m.w1, m.w2, slots, feat) >= 0
	}
	segLen := (len(slots) + m.Cfg.Segments - 1) / m.Cfg.Segments
	feat := make([]float32, m.Cfg.Segments*m.Cfg.Filters)
	for t, slot := range slots {
		seg := t / segLen
		if seg >= m.Cfg.Segments {
			seg = m.Cfg.Segments - 1
		}
		w := m.q1[slot]
		s := m.scale1[slot]
		if s == 0 {
			continue
		}
		base := seg * m.Cfg.Filters
		for f := range w {
			feat[base+f] += float32(w[f]) * s
		}
	}
	var z float64
	for i, f := range feat {
		if f > 0 { // ReLU
			z += float64(f) * float64(m.q2[i])
		}
	}
	return z*float64(m.scale2)+float64(m.b) >= 0
}

// Accuracy evaluates the model on samples.
func (m *Model) Accuracy(samples []Sample) float64 {
	if len(samples) == 0 {
		return 0
	}
	correct := 0
	for _, s := range samples {
		if m.Predict(s.Slots) == s.Taken {
			correct++
		}
	}
	return float64(correct) / float64(len(samples))
}

// Quantized reports whether the model carries 2-bit inference weights.
func (m *Model) Quantized() bool { return m.quantized }

func sigmoid(z float32) float32 {
	return float32(1 / (1 + math.Exp(-float64(z))))
}
