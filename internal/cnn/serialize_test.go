package cnn

import (
	"bytes"
	"errors"
	"testing"
)

func trainedModel(t *testing.T) (*Model, []Sample) {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Epochs = 3
	samples := collect(t, cfg, 2, 150000)
	m := NewModel(cfg)
	m.Train(samples)
	return m, samples
}

func TestSerializeRoundTrip(t *testing.T) {
	m, samples := trainedModel(t)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	got, err := ReadModel(&buf)
	if err != nil {
		t.Fatalf("ReadModel: %v", err)
	}
	// Only the deployment geometry persists; training hyperparameters
	// (Epochs, LR, Seed) are not part of the shipped metadata.
	if got.Cfg.HistLen != m.Cfg.HistLen || got.Cfg.Buckets != m.Cfg.Buckets ||
		got.Cfg.Filters != m.Cfg.Filters || got.Cfg.Segments != m.Cfg.Segments {
		t.Errorf("geometry mismatch: %+v vs %+v", got.Cfg, m.Cfg)
	}
	// The deployed model must make identical predictions.
	for i, s := range samples {
		if i >= 2000 {
			break
		}
		if got.Predict(s.Slots) != m.Predict(s.Slots) {
			t.Fatalf("prediction diverges at sample %d", i)
		}
	}
}

func TestSerializeCompact(t *testing.T) {
	m, _ := trainedModel(t)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// 2-bit weights + per-row scales: 2*Buckets rows of (4B scale +
	// Filters bytes) plus the output layer. Far smaller than float32
	// weights would be; this is the "application metadata" footprint.
	maxBytes := 2*m.Cfg.Buckets*(4+m.Cfg.Filters) + m.Cfg.Segments*m.Cfg.Filters + 64
	if buf.Len() > maxBytes {
		t.Errorf("serialized model %dB exceeds bound %dB", buf.Len(), maxBytes)
	}
}

func TestSerializeUntrainedFails(t *testing.T) {
	m := NewModel(DefaultConfig())
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err == nil {
		t.Error("untrained model serialized")
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	if _, err := ReadModel(bytes.NewReader([]byte("NOPEnope"))); !errors.Is(err, ErrBadHelperFile) {
		t.Errorf("garbage accepted: %v", err)
	}
	// Truncated stream after a valid header.
	m, _ := trainedModel(t)
	var buf bytes.Buffer
	m.WriteTo(&buf)
	if _, err := ReadModel(bytes.NewReader(buf.Bytes()[:20])); err == nil {
		t.Error("truncated model accepted")
	}
}
