package cnn

import (
	"branchlab/internal/bp"
	"branchlab/internal/trace"
)

// Overlay deploys trained helper models alongside a baseline predictor,
// the paper's §V deployment model: TAGE-SC-L stays in place for the vast
// majority of branches; offline-trained helpers take over prediction for
// the specific H2P IPs they were trained on.
type Overlay struct {
	Base    bp.Predictor
	cfg     Config
	helpers map[uint64]*Model

	hist     []uint16
	lastBase bool
	lastIP   uint64
	haveLast bool

	// HelperPredictions counts predictions served by helpers.
	HelperPredictions uint64
}

// NewOverlay wraps base with an (initially empty) helper table.
func NewOverlay(cfg Config, base bp.Predictor) *Overlay {
	return &Overlay{Base: base, cfg: cfg, helpers: make(map[uint64]*Model)}
}

// Attach installs a trained helper for the branch at ip.
func (o *Overlay) Attach(ip uint64, m *Model) { o.helpers[ip] = m }

// Predict implements bp.Predictor.
func (o *Overlay) Predict(ip uint64) bool {
	o.lastBase = o.Base.Predict(ip)
	o.lastIP = ip
	o.haveLast = true
	if m, ok := o.helpers[ip]; ok && len(o.hist) >= o.cfg.HistLen {
		o.HelperPredictions++
		return m.Predict(o.hist[len(o.hist)-o.cfg.HistLen:])
	}
	return o.lastBase
}

// Train implements bp.Predictor. The base predictor is always trained
// with its own prediction so its internal state matches a solo
// deployment; helpers are frozen (offline-trained).
func (o *Overlay) Train(ip uint64, taken, pred bool) {
	basePred := o.lastBase
	if !o.haveLast || o.lastIP != ip {
		basePred = o.Base.Predict(ip)
	}
	o.haveLast = false
	o.Base.Train(ip, taken, basePred)
	o.push(Encode(o.cfg, ip, taken))
}

// ObserveBranch implements bp.BranchObserver.
func (o *Overlay) ObserveBranch(ip, target uint64, kind trace.Kind, taken bool) {
	bp.Observe(o.Base, ip, target, kind, taken)
}

// Name implements bp.Predictor.
func (o *Overlay) Name() string { return "cnn-overlay(" + o.Base.Name() + ")" }

func (o *Overlay) push(slot uint16) {
	o.hist = append(o.hist, slot)
	if len(o.hist) > 4*o.cfg.HistLen {
		o.hist = o.hist[len(o.hist)-o.cfg.HistLen:]
	}
}
