// Quickstart: generate a workload trace, run TAGE-SC-L over it, screen
// for hard-to-predict branches and convert accuracy into IPC — the
// complete measurement loop of the paper in ~40 lines.
package main

import (
	"fmt"
	"log"

	"branchlab"
)

func main() {
	spec, ok := branchlab.Workload("605.mcf_s")
	if !ok {
		log.Fatal("workload not found")
	}
	const budget = 1_000_000
	const sliceLen = 250_000

	// Synthesize a deterministic trace for application input 0.
	tr := branchlab.RecordTrace(spec, 0, budget)
	fmt.Printf("workload %s: %d instructions\n", spec.Name, tr.Len())

	// Predict every conditional branch with TAGE-SC-L 8KB and collect
	// per-slice, per-branch statistics.
	pred := branchlab.NewTAGESCL(8)
	col := branchlab.NewCollector(sliceLen)
	stats := branchlab.Run(tr.Stream(), pred, col)
	fmt.Printf("accuracy %.4f (%.2f MPKI) over %d conditional branches\n",
		stats.Accuracy(), stats.MPKI(), stats.CondExecs)

	// Screen H2Ps with the paper's criteria, scaled to our slice length.
	rep := branchlab.ScreenH2Ps(col, sliceLen)
	fmt.Printf("H2P branches: %d (%.1f per slice), causing %.1f%% of mispredictions\n",
		len(rep.Set()), rep.AvgPerSlice(), 100*rep.MispredShare())
	for i, hh := range rep.HeavyHitters() {
		if i >= 3 {
			break
		}
		fmt.Printf("  heavy hitter %d: ip=%#x execs=%d mispreds=%d\n",
			i+1, hh.IP, hh.Execs, hh.Mispreds)
	}

	// Close the loop to IPC on the Skylake-like pipeline model.
	base := branchlab.SimulateIPC(tr.Stream(), branchlab.SkylakeConfig(),
		branchlab.PipelineOptions{Predictor: branchlab.NewTAGESCL(8)})
	perfect := branchlab.SimulateIPC(tr.Stream(), branchlab.SkylakeConfig(),
		branchlab.PipelineOptions{PerfectBP: true})
	fmt.Printf("IPC %.3f with TAGE-SC-L 8KB, %.3f with perfect prediction (%.1f%% opportunity)\n",
		base.IPC, perfect.IPC, 100*(perfect.IPC/base.IPC-1))
}
