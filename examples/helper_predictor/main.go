// Helper predictor: the paper's §V proposal end to end — train a 2-bit
// CNN helper offline on traces from multiple application inputs, deploy
// it alongside TAGE-SC-L for one H2P branch, and evaluate on an input
// never seen during training.
package main

import (
	"fmt"
	"log"

	"branchlab"
)

func main() {
	spec, ok := branchlab.Workload("605.mcf_s")
	if !ok {
		log.Fatal("workload not found")
	}
	const budget = 1_000_000
	const sliceLen = 250_000

	// Find the H2P to target (screened on input 0).
	scout := branchlab.RecordTrace(spec, 0, budget)
	col := branchlab.NewCollector(sliceLen)
	branchlab.Run(scout.Stream(), branchlab.NewTAGESCL(8), col)
	hh := branchlab.ScreenH2Ps(col, sliceLen).HeavyHitters()
	if len(hh) == 0 {
		log.Fatal("no H2P found")
	}
	target := hh[0].IP
	fmt.Printf("target H2P: ip=%#x\n", target)

	// Offline training on inputs 0 and 1 (the paper's multi-input trace
	// library, §V-B).
	cfg := branchlab.DefaultHelperConfig()
	model := branchlab.TrainHelper(cfg, target,
		branchlab.RecordTrace(spec, 0, budget),
		branchlab.RecordTrace(spec, 1, budget))
	fmt.Printf("helper trained; 2-bit quantized: %v\n", model.Quantized())

	// Deployment on unseen input 2.
	eval := branchlab.RecordTrace(spec, 2, budget)

	baseCol := branchlab.NewCollector(sliceLen)
	branchlab.Run(eval.Stream(), branchlab.NewTAGESCL(8), baseCol)
	baseAcc := baseCol.Totals()[target].Accuracy()

	overlay := branchlab.NewHelperOverlay(cfg, branchlab.NewTAGESCL(8))
	overlay.Attach(target, model)
	helpCol := branchlab.NewCollector(sliceLen)
	branchlab.Run(eval.Stream(), overlay, helpCol)
	helpAcc := helpCol.Totals()[target].Accuracy()

	fmt.Printf("on unseen input: TAGE-SC-L %.3f -> helper %.3f (%+.1f%%), %d predictions served by the helper\n",
		baseAcc, helpAcc, 100*(helpAcc-baseAcc), overlay.HelperPredictions)
}
