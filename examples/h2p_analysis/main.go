// H2P analysis: the paper's §IV deep dive on one benchmark — find the
// top hard-to-predict branch, trace its dependency branches through the
// operand dependency graph, and show how their history positions scatter
// (the reason exact pattern matching fails), plus the TAGE allocation
// churn it causes.
package main

import (
	"fmt"
	"log"
	"sort"

	"branchlab"
	"branchlab/internal/core"
	"branchlab/internal/depgraph"
	"branchlab/internal/tage"
)

func main() {
	spec, ok := branchlab.Workload("605.mcf_s")
	if !ok {
		log.Fatal("workload not found")
	}
	const budget = 1_500_000
	const sliceLen = 500_000
	tr := branchlab.RecordTrace(spec, 0, budget)

	// Pass 1: screen for the top H2P heavy hitter with alloc telemetry.
	pred := tage.New(tage.Config8KB())
	telemetry := pred.EnableAllocTracking()
	col := branchlab.NewCollector(sliceLen)
	branchlab.Run(tr.Stream(), pred, col)
	rep := branchlab.ScreenH2Ps(col, sliceLen)
	hh := rep.HeavyHitters()
	if len(hh) == 0 {
		log.Fatal("no H2Ps found")
	}
	target := hh[0].IP
	fmt.Printf("top H2P heavy hitter: ip=%#x execs=%d mispreds=%d (accuracy %.3f)\n",
		target, hh[0].Execs, hh[0].Mispreds,
		1-float64(hh[0].Mispreds)/float64(hh[0].Execs))
	fmt.Printf("TAGE allocation churn: %d allocations over %d unique entries (%.2f%% of all allocations)\n",
		telemetry.Allocs(target), telemetry.UniqueEntries(target),
		100*telemetry.ShareOfAllocs(target))

	// Pass 2: dependency-graph analysis over the prior 5,000 instructions
	// of each execution (paper §IV-A, Table III, Fig 6).
	an := depgraph.New(depgraph.DefaultWindow, 5000, target)
	branchlab.Run(tr.Stream(), tage.New(tage.Config8KB()), an)
	sum := an.Summarize(target)
	fmt.Printf("\ndependency branches: %d, history positions %d..%d (%.1f positions per dependency)\n",
		sum.DepBranches, sum.MinPos, sum.MaxPos, sum.PositionsPerDep)

	fmt.Println("\nper-dependency position spread (the Fig 6 phenomenon):")
	byDep := map[uint64][]depgraph.PosCount{}
	for _, p := range an.Positions(target) {
		byDep[p.DepIP] = append(byDep[p.DepIP], p)
	}
	deps := make([]uint64, 0, len(byDep))
	for ip := range byDep {
		deps = append(deps, ip)
	}
	sort.Slice(deps, func(i, j int) bool { return deps[i] < deps[j] })
	for _, ip := range deps {
		ps := byDep[ip]
		var total uint64
		minP, maxP := ps[0].Pos, ps[0].Pos
		for _, p := range ps {
			total += p.Count
			if p.Pos < minP {
				minP = p.Pos
			}
			if p.Pos > maxP {
				maxP = p.Pos
			}
		}
		fmt.Printf("  dep %#x: %d occurrences across %d distinct positions (%d..%d)\n",
			ip, total, len(ps), minP, maxP)
	}

	// Register values immediately preceding the H2P (paper Fig 10).
	rv := core.NewRegValueTracker(target, 8, 18)
	branchlab.Run(tr.Stream(), tage.New(tage.Config8KB()), rv)
	fmt.Printf("\nregister values before %d executions:\n", rv.Execs())
	for r := uint8(8); r < 12; r++ {
		if n := rv.DistinctValues(r); n > 0 {
			fmt.Printf("  r%d: %d distinct values\n", r, n)
		}
	}
}
