// Pipeline scaling: reproduce the shape of the paper's Fig 1 on a single
// workload — as pipeline capacity scales 1x..32x, the IPC left on the
// table by branch mispredictions grows to the size of a process-node
// advance.
package main

import (
	"fmt"
	"log"

	"branchlab"
)

func main() {
	spec, ok := branchlab.Workload("641.leela_s")
	if !ok {
		log.Fatal("workload not found")
	}
	tr := branchlab.RecordTrace(spec, 0, 1_000_000)

	fmt.Printf("%-8s %12s %12s %14s\n", "scale", "TAGE8 IPC", "perfect IPC", "opportunity")
	for _, scale := range []int{1, 2, 4, 8, 16, 32} {
		cfg := branchlab.SkylakeConfig().Scaled(scale)
		base := branchlab.SimulateIPC(tr.Stream(), cfg,
			branchlab.PipelineOptions{Predictor: branchlab.NewTAGESCL(8)})
		perfect := branchlab.SimulateIPC(tr.Stream(), cfg,
			branchlab.PipelineOptions{PerfectBP: true})
		fmt.Printf("%-8s %12.3f %12.3f %13.1f%%\n",
			fmt.Sprintf("%dx", scale), base.IPC, perfect.IPC,
			100*(perfect.IPC/base.IPC-1))
	}
	fmt.Println("\nwithout better branch prediction, wider/deeper pipelines return less and less (paper Fig 1)")
}
