// Command experiments regenerates the paper's tables and figures from
// scratch. Each experiment synthesizes its workloads, runs the
// predictors/pipeline, and prints the artifact that corresponds to one
// published table or figure (see DESIGN.md for the index).
//
// Examples:
//
//	experiments -list
//	experiments -run fig1
//	experiments -run all -budget 3000000
//	experiments -run table1 -quick
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"branchlab/internal/experiments"
)

func main() {
	var (
		run    = flag.String("run", "all", "experiment id or 'all'")
		list   = flag.Bool("list", false, "list experiments")
		quick  = flag.Bool("quick", false, "use the reduced quick configuration")
		budget = flag.Uint64("budget", 0, "override instruction budget per workload")
		slice  = flag.Uint64("slice", 0, "override slice length")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *budget > 0 {
		cfg.Budget = *budget
	}
	if *slice > 0 {
		cfg.SliceLen = *slice
	}

	runners := experiments.All()
	if *run != "all" {
		r, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *run)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}
	for _, r := range runners {
		start := time.Now()
		artifact := r.Run(cfg)
		fmt.Print(artifact.String())
		fmt.Printf("[%s completed in %v]\n\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
