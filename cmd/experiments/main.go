// Command experiments regenerates the paper's tables and figures from
// scratch. Each experiment synthesizes its workloads, runs the
// predictors/pipeline, and prints the artifact that corresponds to one
// published table or figure (see DESIGN.md for the index).
//
// Examples:
//
//	experiments -list
//	experiments -run fig1
//	experiments -run all -budget 3000000
//	experiments -run table1 -quick
//	experiments -run all -quick -parallel 8
//
// Each experiment's independent simulation cells run on the engine
// worker pool; -parallel selects the worker count (0 = NumCPU, 1 =
// sequential). Output is byte-identical at every worker count.
//
// Workload traces are recorded once per (workload, input) through a
// shared in-memory cache and replayed by every experiment that needs
// them; -tracecache bounds the cache in MiB (0 disables it) and
// -cacheslice sets its eviction granularity in instructions: the cache
// evicts cold fixed-size slices of a trace rather than whole
// recordings, and an evicted slice re-records deterministically the
// next time a replay reaches it, so a capped cache stays byte-identical
// to an unbounded one. -ckptslice sets the payload checkpoint spacing
// captured during first recording (0 = none): with checkpoints in the
// cache header an evicted slice refills in O(window) by resuming from
// the nearest checkpoint instead of regenerating the whole prefix.
// Cache counters print to stderr behind -cachestats, keeping stdout
// diff-able. -recshards N records each trace on N workers (sharded
// deterministic recording); output stays byte-identical in every
// combination of flags.
//
// -tracestore DIR adds a persistent content-addressed tier beneath the
// RAM cache (DESIGN.md §11): recordings write through to DIR, evicted
// slices promote back from disk (mmap, zero-copy) instead of
// re-recording, and a later invocation against the same DIR restores
// whole traces — header, checkpoints and slices — without recording at
// all. Every stored file is checksummed; a corrupt or mismatched file
// is rejected and re-recorded, so a warm store can cost extra
// recording but never wrong bytes. -tracestorecap bounds the store in
// MiB (0 = unbounded) with whole-trace LRU eviction. Store counters
// print alongside the cache's behind -cachestats.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"branchlab/internal/cliutil"
	"branchlab/internal/engine"
	"branchlab/internal/experiments"
	"branchlab/internal/faultinject"
	"branchlab/internal/tracecache"
	"branchlab/internal/tracestore"
)

func main() {
	var (
		run      = flag.String("run", "all", "experiment id or 'all'")
		list     = flag.Bool("list", false, "list experiments")
		quick    = flag.Bool("quick", false, "use the reduced quick configuration")
		budget   = flag.Uint64("budget", 0, "override instruction budget per workload")
		slice    = flag.Uint64("slice", 0, "override slice length")
		parallel = flag.Int("parallel", 0, "engine workers per experiment (0 = NumCPU)")
		cacheMB  = flag.Int64("tracecache", 4096, "shared trace cache size in MiB (-1 = unbounded, 0 = off)")
		cacheSl  = flag.Uint64("cacheslice", tracecache.DefaultSliceInsts, "trace cache slice granularity in instructions (0 = whole-trace eviction)")
		ckptSl   = flag.Uint64("ckptslice", tracecache.DefaultSliceInsts, "payload checkpoint spacing in instructions for O(window) evicted-slice refills (0 = no checkpoints)")
		shards   = flag.Int("recshards", 0, "record each trace on this many workers (<= 1 = sequential; output is byte-identical)")
		storeDir = flag.String("tracestore", "", "persistent trace store directory (\"\" = off); warm runs replay stored traces without recording")
		storeCap = flag.Int64("tracestorecap", 0, "trace store disk budget in MiB (0 = unbounded); coldest whole traces evict first")
		deadline = flag.Duration("deadline", 0, "per-experiment wall-clock bound (0 = none); an expired run fails typed, never prints partial artifacts")
		stats    = tracecache.StatsFlag(nil)
	)
	flag.Parse()

	// Fault-injection sweeps arm a seeded plan via BRANCHLAB_FAULTSEED;
	// builds without the faultinject tag refuse the variable so a sweep
	// can never silently run unfaulted.
	if err := faultinject.ActivateFromEnv(os.LookupEnv); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *budget > 0 {
		cfg.Budget = *budget
	}
	if *slice > 0 {
		cfg.SliceLen = *slice
	}
	cfg.Workers = *parallel
	cfg.RecordShards = *shards
	cfg.CacheSlice = *cacheSl
	cfg.CkptSlice = *ckptSl
	// An explicit zero override is a user error, not "use the default".
	effBudget, effSlice := cfg.Budget, cfg.SliceLen
	if cliutil.Provided(nil, "budget") {
		effBudget = *budget
	}
	if cliutil.Provided(nil, "slice") {
		effSlice = *slice
	}
	if err := (cliutil.RunFlags{
		Budget:        effBudget,
		SliceLen:      effSlice,
		Parallel:      *parallel,
		RecShards:     *shards,
		CacheEnabled:  *cacheMB != 0,
		CacheSliceSet: cliutil.Provided(nil, "cacheslice"),
		CkptSliceSet:  cliutil.Provided(nil, "ckptslice"),
		StoreSet:      *storeDir != "",
		StoreCap:      *storeCap,
		StoreCapSet:   cliutil.Provided(nil, "tracestorecap"),
		Deadline:      *deadline,
		DeadlineSet:   cliutil.Provided(nil, "deadline"),
	}).Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	cfg.Deadline = *deadline
	if *storeDir != "" {
		store, err := tracestore.Open(*storeDir, *storeCap<<20)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer store.Close()
		cfg.Store = store
	}
	if *cacheMB != 0 {
		limit := *cacheMB << 20
		if limit < 0 {
			limit = 0 // unbounded
		}
		cfg.Cache = cfg.NewCache(limit)
	}

	runners := experiments.All()
	if *run != "all" {
		r, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *run)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}
	// Artifacts go to stdout; timing goes to stderr so stdout is
	// byte-identical across runs and worker counts (diff-able). A run
	// that fails — deadline, injected fault, poisoned cell — stops at
	// the first failed experiment with a typed error on stderr: stdout
	// stays a byte-prefix of a successful run's output, never a partial
	// or wrong artifact (DESIGN.md §9).
	completed := 0
	for _, r := range runners {
		//lint:ignore determinism progress timing goes to stderr only; the artifact on stdout never sees it
		start := time.Now()
		artifact, err := r.RunErr(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			var ce *engine.CancelError
			if errors.As(err, &ce) {
				fmt.Fprintf(os.Stderr, "experiments: %s cancelled with %d/%d work units complete\n",
					r.ID, len(ce.Completed), ce.Total)
			}
			fmt.Fprintf(os.Stderr, "experiments: completed %d/%d experiments\n", completed, len(runners))
			if *stats {
				tracecache.WriteStats(os.Stderr, cfg.Cache)
				tracestore.WriteStats(os.Stderr, cfg.Store)
			}
			os.Exit(1)
		}
		fmt.Print(artifact.String())
		fmt.Println()
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", r.ID, time.Since(start).Round(time.Millisecond))
		completed++
	}
	if *stats {
		tracecache.WriteStats(os.Stderr, cfg.Cache)
		tracestore.WriteStats(os.Stderr, cfg.Store)
	}
}
