// Command experiments regenerates the paper's tables and figures from
// scratch. Each experiment synthesizes its workloads, runs the
// predictors/pipeline, and prints the artifact that corresponds to one
// published table or figure (see DESIGN.md for the index).
//
// Examples:
//
//	experiments -list
//	experiments -run fig1
//	experiments -run all -budget 3000000
//	experiments -run table1 -quick
//	experiments -run all -quick -parallel 8
//
// Each experiment's independent simulation cells run on the engine
// worker pool; -parallel selects the worker count (0 = NumCPU, 1 =
// sequential). Output is byte-identical at every worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"branchlab/internal/experiments"
)

func main() {
	var (
		run      = flag.String("run", "all", "experiment id or 'all'")
		list     = flag.Bool("list", false, "list experiments")
		quick    = flag.Bool("quick", false, "use the reduced quick configuration")
		budget   = flag.Uint64("budget", 0, "override instruction budget per workload")
		slice    = flag.Uint64("slice", 0, "override slice length")
		parallel = flag.Int("parallel", 0, "engine workers per experiment (0 = NumCPU)")
	)
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-8s %s\n", r.ID, r.Title)
		}
		return
	}

	cfg := experiments.Default()
	if *quick {
		cfg = experiments.Quick()
	}
	if *budget > 0 {
		cfg.Budget = *budget
	}
	if *slice > 0 {
		cfg.SliceLen = *slice
	}
	cfg.Workers = *parallel

	runners := experiments.All()
	if *run != "all" {
		r, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown id %q (use -list)\n", *run)
			os.Exit(1)
		}
		runners = []experiments.Runner{r}
	}
	// Artifacts go to stdout; timing goes to stderr so stdout is
	// byte-identical across runs and worker counts (diff-able).
	for _, r := range runners {
		start := time.Now()
		artifact := r.Run(cfg)
		fmt.Print(artifact.String())
		fmt.Println()
		fmt.Fprintf(os.Stderr, "[%s completed in %v]\n", r.ID, time.Since(start).Round(time.Millisecond))
	}
}
