// Command tracegen synthesizes a workload trace and stores it in the
// compact BLT1 binary format, building the offline trace library the
// paper's §V-B training methodology calls for.
//
// Example:
//
//	tracegen -workload 605.mcf_s -input 1 -budget 5000000 -o mcf.1.blt
package main

import (
	"flag"
	"fmt"
	"os"

	"branchlab/internal/trace"
	"branchlab/internal/workload"
)

func main() {
	var (
		name   = flag.String("workload", "", "workload name")
		input  = flag.Int("input", 0, "application input index")
		budget = flag.Uint64("budget", 5_000_000, "instruction budget")
		out    = flag.String("o", "", "output file (default <workload>.<input>.blt)")
	)
	flag.Parse()
	if err := run(*name, *input, *budget, *out); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run(name string, input int, budget uint64, out string) error {
	spec, ok := workload.ByName(name)
	if !ok {
		return fmt.Errorf("unknown workload %q", name)
	}
	if out == "" {
		out = fmt.Sprintf("%s.%d.blt", spec.Name, input)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()

	s := spec.Stream(input, budget)
	defer trace.CloseStream(s)
	w := trace.NewWriter(f)
	var inst trace.Inst
	var n uint64
	for s.Next(&inst) {
		if err := w.WriteInst(&inst); err != nil {
			return err
		}
		n++
	}
	if err := w.Flush(); err != nil {
		return err
	}
	info, err := f.Stat()
	if err != nil {
		return err
	}
	fmt.Printf("wrote %d instructions to %s (%.2f bytes/inst)\n",
		n, out, float64(info.Size())/float64(n))
	return nil
}
